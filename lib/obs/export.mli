(** The snapshot/export pipeline over a {!Registry.t}: JSONL time-series
    snapshots, a Prometheus-style text dump, and a terminal summary with
    sparklines.

    All three render metrics in registration order and use only integer
    metric values (histograms export count/sum and p50/p95/p99 upper
    bounds in their native units), so output is deterministic whenever the
    underlying registry is. *)

(** [snapshot_line ~t r] is one flat JSON object:
    [{"t":<sim-time>,"<name>":<int>,...}] with ["%.9g"] time formatting
    (matching the trace sinks).  Histograms contribute
    [<name>/count], [<name>/sum], [<name>/p50], [<name>/p95] and
    [<name>/p99] keys.  No trailing newline. *)
val snapshot_line : t:float -> Registry.t -> string

(** Prometheus-style text exposition: [# TYPE] comments, names mangled to
    [kar_<area>_<metric>] ([/] and [-] become [_]), histograms as
    cumulative [_bucket{le="..."}] lines over non-empty buckets plus
    [_sum]/[_count]. *)
val prometheus : Registry.t -> string

(** End-of-run terminal summary: a key/value table of scalars, then one
    block per histogram with count/percentiles and a sparkline over the
    occupied bucket range. *)
val summary : Registry.t -> string
