(** Virtual-clock spans for the control plane, recorded into a
    fixed-record binary ring in the style of [Trace.Binary].

    Each record is 25 bytes — kind tag (u8), detail (i64), start and end
    virtual times (exact IEEE-754 bits, f64 LE) — written into a
    preallocated [Bytes.t] ring that overwrites its oldest records when
    full.  Recording boxes only the two [Int64.bits_of_float] timestamp
    conversions; spans are control-plane-rate events (plan compiles, batch
    dispatches, epoch invalidations), not per-packet events, so this is
    acceptable. *)

type kind =
  | Plan_compile  (** one plan computed on a modelled worker *)
  | Batch_dispatch  (** a batcher flush: dispatch to last completion *)
  | Epoch_invalidate  (** a cache epoch bump (instantaneous) *)
  | Verify_sweep  (** one verifier sweep unit *)
  | Snapshot  (** a metrics snapshot emission (instantaneous) *)
  | Epoch
      (** one conservative-simulation epoch: virtual interval a sharded
          net ran between two region barriers; detail = epoch index *)
  | Scenario_event
      (** one scenario fail/repair event applied to a net
          ({!Kar_scenario}); detail = link id *)

val kind_to_string : kind -> string

type t

(** [create ?capacity ()] makes a ring retaining the last [capacity]
    spans (default 4096). *)
val create : ?capacity:int -> unit -> t

(** [record t kind ~t0 ~t1 ~detail] appends a span.  [detail] is a
    kind-specific integer (batch size, epoch number, unit index, ...). *)
val record : t -> kind -> t0:float -> t1:float -> detail:int -> unit

(** Total spans ever recorded (including overwritten ones). *)
val recorded : t -> int

(** Spans lost to ring overwrite. *)
val overwritten : t -> int

type span = { kind : kind; t0 : float; t1 : float; detail : int }

(** Retained spans, oldest first. *)
val contents : t -> span list

(** One-line JSONL rendering, ["%.9g"] timestamps (matching the trace
    sinks). *)
val span_to_jsonl : span -> string

(** Per-kind count / total-duration summary table. *)
val summary : t -> string
