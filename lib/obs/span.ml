type kind =
  | Plan_compile
  | Batch_dispatch
  | Epoch_invalidate
  | Verify_sweep
  | Snapshot
  | Epoch
  | Scenario_event

let kind_to_string = function
  | Plan_compile -> "plan-compile"
  | Batch_dispatch -> "batch-dispatch"
  | Epoch_invalidate -> "epoch-invalidate"
  | Verify_sweep -> "verify-sweep"
  | Snapshot -> "snapshot"
  | Epoch -> "epoch"
  | Scenario_event -> "scenario-event"

let tag_of_kind = function
  | Plan_compile -> 0
  | Batch_dispatch -> 1
  | Epoch_invalidate -> 2
  | Verify_sweep -> 3
  | Snapshot -> 4
  | Epoch -> 5
  | Scenario_event -> 6

let kind_of_tag = function
  | 0 -> Plan_compile
  | 1 -> Batch_dispatch
  | 2 -> Epoch_invalidate
  | 3 -> Verify_sweep
  | 4 -> Snapshot
  | 5 -> Epoch
  | 6 -> Scenario_event
  | t -> invalid_arg (Printf.sprintf "Span: bad tag %d" t)

(* record layout: [0] kind u8 | [1..8] detail i64 LE | [9..16] t0 bits LE
   | [17..24] t1 bits LE *)
let record_len = 25

type t = {
  ring : Bytes.t;
  capacity : int; (* in records *)
  mutable count : int; (* total ever recorded *)
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Span.create: capacity must be >= 1";
  { ring = Bytes.make (capacity * record_len) '\000'; capacity; count = 0 }

let record t kind ~t0 ~t1 ~detail =
  let off = t.count mod t.capacity * record_len in
  Bytes.unsafe_set t.ring off (Char.unsafe_chr (tag_of_kind kind));
  Bytes.set_int64_le t.ring (off + 1) (Int64.of_int detail);
  Bytes.set_int64_le t.ring (off + 9) (Int64.bits_of_float t0);
  Bytes.set_int64_le t.ring (off + 17) (Int64.bits_of_float t1);
  t.count <- t.count + 1

let recorded t = t.count
let overwritten t = if t.count > t.capacity then t.count - t.capacity else 0

type span = { kind : kind; t0 : float; t1 : float; detail : int }

let read_at t slot =
  let off = slot * record_len in
  {
    kind = kind_of_tag (Char.code (Bytes.get t.ring off));
    detail = Int64.to_int (Bytes.get_int64_le t.ring (off + 1));
    t0 = Int64.float_of_bits (Bytes.get_int64_le t.ring (off + 9));
    t1 = Int64.float_of_bits (Bytes.get_int64_le t.ring (off + 17));
  }

let contents t =
  let retained = if t.count < t.capacity then t.count else t.capacity in
  let first = t.count - retained in
  List.init retained (fun i -> read_at t ((first + i) mod t.capacity))

let span_to_jsonl s =
  Printf.sprintf
    {|{"span":"%s","t0":%.9g,"t1":%.9g,"detail":%d}|}
    (kind_to_string s.kind) s.t0 s.t1 s.detail

let summary t =
  let kinds =
    [ Plan_compile; Batch_dispatch; Epoch_invalidate; Verify_sweep; Snapshot;
      Epoch; Scenario_event ]
  in
  let spans = contents t in
  let rows =
    List.filter_map
      (fun k ->
        let matching = List.filter (fun s -> s.kind = k) spans in
        match matching with
        | [] -> None
        | _ ->
          let n = List.length matching in
          let total =
            List.fold_left (fun acc s -> acc +. (s.t1 -. s.t0)) 0.0 matching
          in
          Some [ kind_to_string k; string_of_int n; Printf.sprintf "%.6f" total ])
      kinds
  in
  let header =
    Printf.sprintf "spans (last %d of %d, %d overwritten)"
      (List.length spans) t.count (overwritten t)
  in
  match rows with
  | [] -> header ^ ": none\n"
  | _ ->
    header ^ "\n"
    ^ Util.Texttab.render ~header:[ "kind"; "count"; "total-s" ] rows
