(* All scalars (counters and gauges) live in one registry-owned growable
   [int array]; a handle is the registry plus an index.  Updates read the
   mutable [cells] field and poke one slot — no allocation, and safe
   across growth because the field is re-read on every update.  Histogram
   buckets are one preallocated [int array] per histogram. *)

type t = {
  mutable cells : int array;
  mutable n_cells : int;
  mutable items_rev : (string * metric) list;
  index : (string, metric) Hashtbl.t;
}

and cell = { reg : t; idx : int }
and counter = cell
and gauge = cell

and histogram = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
}

and metric =
  | Counter of counter
  | Gauge of gauge
  | Probe of (unit -> int)
  | Histogram of histogram

let create () =
  { cells = Array.make 16 0; n_cells = 0; items_rev = []; index = Hashtbl.create 32 }

let register t name m =
  if Hashtbl.mem t.index name then
    invalid_arg (Printf.sprintf "Kar_obs.Registry: duplicate metric %S" name);
  Hashtbl.add t.index name m;
  t.items_rev <- (name, m) :: t.items_rev

let alloc_cell t =
  let cap = Array.length t.cells in
  if t.n_cells >= cap then begin
    let grown = Array.make (2 * cap) 0 in
    Array.blit t.cells 0 grown 0 cap;
    t.cells <- grown
  end;
  let idx = t.n_cells in
  t.n_cells <- idx + 1;
  { reg = t; idx }

let counter t name =
  let c = alloc_cell t in
  register t name (Counter c);
  c

let gauge t name =
  let g = alloc_cell t in
  register t name (Gauge g);
  g

let probe t name f = register t name (Probe f)

let[@inline] incr c =
  let cells = c.reg.cells in
  Array.unsafe_set cells c.idx (Array.unsafe_get cells c.idx + 1)

let[@inline] add c n =
  let cells = c.reg.cells in
  Array.unsafe_set cells c.idx (Array.unsafe_get cells c.idx + n)

let[@inline] value c = Array.unsafe_get c.reg.cells c.idx
let[@inline] set g v = Array.unsafe_set g.reg.cells g.idx v

let[@inline] set_max g v =
  let cells = g.reg.cells in
  if v > Array.unsafe_get cells g.idx then Array.unsafe_set cells g.idx v

let gauge_value = value

(* --- histogram bucket geometry ---------------------------------------

   Sub-bucketed base-2 (HdrHistogram-style), [sub_bits] = 3 so every
   octave at or above 2^4 splits into 8 equal sub-buckets:

     bucket 0            : v <= 0
     buckets 1..15       : v = bucket exactly (values below 2^4)
     bucket 16 + 8e + s  : v in [2^(4+e) + s*2^(1+e), .. + 2^(1+e) - 1]

   Relative bucket width above 16 is <= 1/8, so a quantile read off the
   bucket's upper bound is within 12.5% (one bucket width) of the exact
   nearest-rank value.  The top octave is 2^62 (max_int is 2^62 - 1 on
   64-bit), giving 16 + 59*8 = 488 buckets. *)

let sub_bits = 3
let first_octave = sub_bits + 1 (* 4: values below 2^4 are exact *)
let n_buckets = 16 + ((62 - first_octave + 1) * 8)

let[@inline] msb v =
  (* floor(log2 v) for v >= 1, branch-free-ish shift cascade *)
  let e = ref 0 and v = ref v in
  if !v >= 1 lsl 32 then (e := !e + 32; v := !v lsr 32);
  if !v >= 1 lsl 16 then (e := !e + 16; v := !v lsr 16);
  if !v >= 1 lsl 8 then (e := !e + 8; v := !v lsr 8);
  if !v >= 1 lsl 4 then (e := !e + 4; v := !v lsr 4);
  if !v >= 1 lsl 2 then (e := !e + 2; v := !v lsr 2);
  if !v >= 2 then e := !e + 1;
  !e

let[@inline] bucket_of_value v =
  if v <= 0 then 0
  else if v < 16 then v
  else
    let e = msb v in
    16 + ((e - first_octave) * 8) + ((v - (1 lsl e)) lsr (e - sub_bits))

let bucket_bounds b =
  if b < 0 || b >= n_buckets then invalid_arg "Registry.bucket_bounds";
  if b = 0 then (min_int, 0)
  else if b < 16 then (b, b)
  else begin
    let i = b - 16 in
    let e = first_octave + (i / 8) in
    let s = i mod 8 in
    let w = 1 lsl (e - sub_bits) in
    let lo = (1 lsl e) + (s * w) in
    (lo, lo + w - 1)
  end

let histogram t name =
  let h = { buckets = Array.make n_buckets 0; count = 0; sum = 0 } in
  register t name (Histogram h);
  h

let[@inline] observe h v =
  let b = bucket_of_value v in
  let buckets = h.buckets in
  Array.unsafe_set buckets b (Array.unsafe_get buckets b + 1);
  h.count <- h.count + 1;
  h.sum <- h.sum + (if v > 0 then v else 0)

let[@inline] observe_s h seconds = observe h (int_of_float (seconds *. 1e9))
let h_count h = h.count
let h_sum h = h.sum
let h_bucket h b = h.buckets.(b)

let h_quantile h p =
  if h.count = 0 then 0
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int h.count)) in
    let rank = if rank < 1 then 1 else if rank > h.count then h.count else rank in
    let cum = ref 0 and b = ref 0 and found = ref (-1) in
    while !found < 0 && !b < n_buckets do
      cum := !cum + Array.unsafe_get h.buckets !b;
      if !cum >= rank then found := !b;
      b := !b + 1
    done;
    if !found <= 0 then 0 else snd (bucket_bounds !found)
  end

(* --- enumeration ------------------------------------------------------ *)

let metrics t = List.rev t.items_rev
let find t name = Hashtbl.find_opt t.index name

let read t name =
  match Hashtbl.find_opt t.index name with
  | Some (Counter c) | Some (Gauge c) -> value c
  | Some (Probe f) -> f ()
  | Some (Histogram _) | None -> raise Not_found

(* --- shards and deterministic merge ----------------------------------- *)

let shards t ~n =
  if n < 1 then invalid_arg "Registry.shards: n must be >= 1";
  let make_one () =
    let s = create () in
    List.iter
      (fun (name, m) ->
        match m with
        | Counter _ -> ignore (counter s name)
        | Gauge _ -> ignore (gauge s name)
        | Histogram _ -> ignore (histogram s name)
        | Probe _ -> ())
      (metrics t);
    s
  in
  Array.init n (fun _ -> make_one ())

let zero src =
  List.iter
    (fun (_, m) ->
      match m with
      | Counter c | Gauge c -> set c 0
      | Histogram h ->
        Array.fill h.buckets 0 n_buckets 0;
        h.count <- 0;
        h.sum <- 0
      | Probe _ -> ())
    (metrics src)

let merge_into ~into src =
  List.iter
    (fun (name, m) ->
      match m with
      | Probe _ -> ()
      | _ ->
        let dst =
          match Hashtbl.find_opt into.index name with
          | Some d -> d
          | None ->
            invalid_arg
              (Printf.sprintf "Registry.merge_into: %S missing in target" name)
        in
        (match (m, dst) with
         | Counter c, Counter d -> add d (value c)
         | Gauge g, Gauge d -> set_max d (value g)
         | Histogram h, Histogram d ->
           for b = 0 to n_buckets - 1 do
             d.buckets.(b) <- d.buckets.(b) + h.buckets.(b)
           done;
           d.count <- d.count + h.count;
           d.sum <- d.sum + h.sum
         | _ ->
           invalid_arg
             (Printf.sprintf "Registry.merge_into: kind mismatch for %S" name)))
    (metrics src)

let drain_into ~into src =
  merge_into ~into src;
  zero src
