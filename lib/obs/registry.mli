(** A unified metrics registry: named counters, gauges and log2-bucketed
    histograms, all backed by preallocated int storage.

    Design goals, in order:

    - {b Zero allocation on the hot path.}  [incr], [add], [set], [set_max]
      and [observe] allocate 0 minor words.  Every scalar lives in a
      registry-owned [int array]; a handle is a (registry, index) pair and
      each update is one array read-modify-write.  Histogram buckets are a
      preallocated [int array] per histogram.
    - {b Determinism.}  Snapshots iterate metrics in registration order.
      Shard registries ([shards]/[merge_into]) merge with commutative,
      associative operations (sum for counters and histograms, max for
      gauges), so a fan-out over [Util.Pool] produces byte-identical
      snapshots at any [-j].
    - {b One schema.}  Metric names are [area/metric] slugs
      (e.g. ["svc/cache-hits"], ["netsim/drop-ttl"], ["svc/latency-ns"]);
      histograms of durations carry a [-ns] suffix and store integer
      nanoseconds.

    Registries are single-domain structures: a registry must only be
    mutated from the domain that owns it.  Cross-domain aggregation goes
    through [shards] (one private registry per task index) and
    [merge_into] after the join. *)

type t

val create : unit -> t

(** {1 Scalar metrics} *)

type counter
type gauge

(** [counter t name] registers a monotonically increasing counter.
    Raises [Invalid_argument] if [name] is already registered. *)
val counter : t -> string -> counter

(** [gauge t name] registers a last-value-wins (or high-watermark, via
    [set_max]) gauge. *)
val gauge : t -> string -> gauge

(** [probe t name f] registers a read-only gauge whose value is sampled by
    calling [f] at snapshot/export time only — for values already tracked
    elsewhere (engine event counts, cache occupancy, derived ratios).
    Probes are skipped by [shards]/[merge_into]. *)
val probe : t -> string -> (unit -> int) -> unit

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val set : gauge -> int -> unit

(** [set_max g v] raises the gauge to [v] if [v] is larger — a
    high-watermark update. *)
val set_max : gauge -> int -> unit

val gauge_value : gauge -> int

(** {1 Histograms}

    Sub-bucketed base-2 histograms (HdrHistogram-style, 8 sub-buckets per
    octave): values 0..15 are exact, larger values land in a bucket whose
    relative width is <= 1/8.  Buckets are preallocated; [observe] is one
    bucket-index computation plus three int updates. *)

type histogram

val histogram : t -> string -> histogram
val observe : histogram -> int -> unit

(** [observe_s h seconds] records a duration in seconds as integer
    nanoseconds. *)
val observe_s : histogram -> float -> unit

val h_count : histogram -> int
val h_sum : histogram -> int

(** [h_bucket h b] is the raw occupancy of bucket [b]. *)
val h_bucket : histogram -> int -> int

(** [h_quantile h p] is an upper bound for the nearest-rank [p]-th
    percentile (rank [ceil (p/100 * count)] over the recorded values):
    the inclusive upper bound of the bucket containing that rank.  It
    exceeds the exact nearest-rank value by at most one bucket width.
    Returns 0 for an empty histogram. *)
val h_quantile : histogram -> float -> int

(** {2 Bucket geometry} — exposed for tests and exporters. *)

val n_buckets : int
val bucket_of_value : int -> int

(** [bucket_bounds b] is the inclusive [(lo, hi)] value range of bucket
    [b].  Bucket 0 holds every value <= 0 and reports [(min_int, 0)]. *)
val bucket_bounds : int -> int * int

(** {1 Sharding and merging} *)

(** [shards t ~n] creates [n] fresh registries with the same schema as [t]
    (same names, kinds and registration order; probes omitted), all values
    zero.  Typical use: one shard per [Util.Pool] task index, merged after
    the join. *)
val shards : t -> n:int -> t array

(** [merge_into ~into src] folds [src] into [into]: counters and histogram
    buckets/count/sum add, gauges take the max.  Every metric of [src]
    must exist in [into] with the same kind.  Sum and max are commutative
    and associative, so any merge order yields the same result. *)
val merge_into : into:t -> t -> unit

(** [drain_into ~into src] is {!merge_into} followed by zeroing every
    non-probe metric of [src], so a long-lived shard (a simulation
    region's private registry) can be folded into the main registry
    repeatedly without double counting. *)
val drain_into : into:t -> t -> unit

(** {1 Enumeration} — registration order, for exporters. *)

type metric =
  | Counter of counter
  | Gauge of gauge
  | Probe of (unit -> int)
  | Histogram of histogram

val metrics : t -> (string * metric) list

(** [read t name] samples a scalar metric (counter, gauge or probe) by
    name.  Raises [Not_found] for unknown names and histograms. *)
val read : t -> string -> int

val find : t -> string -> metric option
