let hist_quantiles = [ ("p50", 50.0); ("p95", 95.0); ("p99", 99.0) ]

let snapshot_line ~t r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf {|{"t":%.9g|} t);
  List.iter
    (fun (name, m) ->
      match m with
      | Registry.Counter c ->
        Buffer.add_string buf
          (Printf.sprintf {|,"%s":%d|} name (Registry.value c))
      | Registry.Gauge g ->
        Buffer.add_string buf
          (Printf.sprintf {|,"%s":%d|} name (Registry.gauge_value g))
      | Registry.Probe f ->
        Buffer.add_string buf (Printf.sprintf {|,"%s":%d|} name (f ()))
      | Registry.Histogram h ->
        Buffer.add_string buf
          (Printf.sprintf {|,"%s/count":%d,"%s/sum":%d|} name
             (Registry.h_count h) name (Registry.h_sum h));
        List.iter
          (fun (label, q) ->
            Buffer.add_string buf
              (Printf.sprintf {|,"%s/%s":%d|} name label
                 (Registry.h_quantile h q)))
          hist_quantiles)
    (Registry.metrics r);
  Buffer.add_char buf '}';
  Buffer.contents buf

let mangle name =
  let b = Bytes.of_string ("kar_" ^ name) in
  Bytes.iteri
    (fun i c -> if c = '/' || c = '-' || c = '.' then Bytes.set b i '_')
    b;
  Bytes.to_string b

let prometheus r =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, m) ->
      let p = mangle name in
      match m with
      | Registry.Counter c ->
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s counter\n%s %d\n" p p (Registry.value c))
      | Registry.Gauge g ->
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s gauge\n%s %d\n" p p (Registry.gauge_value g))
      | Registry.Probe f ->
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s gauge\n%s %d\n" p p (f ()))
      | Registry.Histogram h ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" p);
        let cum = ref 0 in
        for b = 0 to Registry.n_buckets - 1 do
          let count_b = Registry.h_bucket h b in
          if count_b > 0 then begin
            cum := !cum + count_b;
            let _, hi = Registry.bucket_bounds b in
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" p hi !cum)
          end
        done;
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n"
             p (Registry.h_count h) p (Registry.h_sum h) p (Registry.h_count h)))
    (Registry.metrics r);
  Buffer.contents buf

let summary r =
  let scalars = ref [] and hists = ref [] in
  List.iter
    (fun (name, m) ->
      match m with
      | Registry.Counter c ->
        scalars := (name, string_of_int (Registry.value c)) :: !scalars
      | Registry.Gauge g ->
        scalars := (name, string_of_int (Registry.gauge_value g)) :: !scalars
      | Registry.Probe f -> scalars := (name, string_of_int (f ())) :: !scalars
      | Registry.Histogram h -> hists := (name, h) :: !hists)
    (Registry.metrics r);
  let buf = Buffer.create 1024 in
  (match List.rev !scalars with
   | [] -> ()
   | kv -> Buffer.add_string buf (Util.Texttab.render_kv kv));
  List.iter
    (fun (name, h) ->
      let count = Registry.h_count h in
      Buffer.add_string buf
        (Printf.sprintf "%s: count=%d p50=%d p95=%d p99=%d\n" name count
           (Registry.h_quantile h 50.0) (Registry.h_quantile h 95.0)
           (Registry.h_quantile h 99.0));
      if count > 0 then begin
        (* sparkline over the occupied bucket range *)
        let lo = ref max_int and hi = ref (-1) in
        for b = 0 to Registry.n_buckets - 1 do
          if Registry.h_bucket h b > 0 then begin
            if b < !lo then lo := b;
            if b > !hi then hi := b
          end
        done;
        let vals = ref [] in
        for b = !hi downto !lo do
          vals := float_of_int (Registry.h_bucket h b) :: !vals
        done;
        let lo_v = if !lo = 0 then 0 else fst (Registry.bucket_bounds !lo) in
        let hi_v = snd (Registry.bucket_bounds !hi) in
        Buffer.add_string buf
          (Printf.sprintf "  [%d..%d] %s\n" lo_v hi_v
             (Util.Texttab.spark !vals))
      end)
    (List.rev !hists);
  Buffer.contents buf
