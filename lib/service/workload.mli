(** Deterministic open-loop request generator for the serving control plane.

    An online route-plan server is driven by {e open-loop} load: requests
    arrive on a Poisson process whose rate does not react to service latency
    (the regime production front-ends see, and the one under which queueing
    delay actually shows).  Popularity over (src, dst) edge pairs is
    Zipf-skewed — a small working set dominates, which is what makes a
    bounded plan cache worth having and an epoch invalidation measurable.

    The whole request sequence is materialised {e before} serving starts,
    from {!Util.Prng} streams split off one seed, so a workload is a pure
    function of [(graph, spec)]: byte-identical at any pool width, and
    replayable against any server configuration. *)

module Graph = Topo.Graph

type request = {
  seq : int; (** 0-based position in the generated sequence *)
  arrival : float; (** absolute virtual arrival time, seconds *)
  src : Graph.node; (** source edge node *)
  dst : Graph.node; (** destination edge node, distinct from [src] *)
  level : Kar.Controller.level; (** requested protection level *)
  policy : Kar.Policy.t; (** requested deflection policy *)
}

type spec = {
  n : int; (** number of requests *)
  rate : float; (** mean arrival rate, requests per second *)
  skew : float;
      (** Zipf exponent over pair popularity ranks; [0.0] is uniform *)
  levels : Kar.Controller.level array; (** drawn uniformly per request *)
  policies : Kar.Policy.t array; (** drawn uniformly per request *)
  seed : int;
}

(** 10 k requests at 2 000 req/s, skew 0.9, all three protection levels,
    NIP only, seed 1. *)
val default : spec

(** [pairs g ~seed] is the ranked (src, dst) universe the generator draws
    from: every ordered pair of distinct edge nodes, in a seed-determined
    popularity order (rank is decoupled from node numbering so the popular
    keys are not systematically the low-labelled ones).
    @raise Invalid_argument when [g] has fewer than two edge nodes. *)
val pairs : Graph.t -> seed:int -> (Graph.node * Graph.node) array

(** [generate g spec] materialises the request sequence; arrivals are
    strictly increasing. *)
val generate : Graph.t -> spec -> request array
