(** Serving-layer event stream: one compact record per control-plane step,
    mirroring the data plane's flight recorder ({!Trace.Event}) — same
    one-line JSON rendering with a stable field order and the same [%.9g]
    timestamp format, so service traces diff and replay the same way packet
    traces do.

    The stream is the subsystem's determinism witness: a seeded workload
    served at any pool width must produce byte-identical event sequences
    (the committed golden fixture asserts exactly this). *)

(** How a request's cache lookup resolved.  [Stale] is a miss caused by
    epoch invalidation: an entry was present but encoded against an older
    topology version. *)
type outcome =
  | Hit
  | Miss
  | Stale

val outcome_to_string : outcome -> string

type t =
  | Request of {
      seq : int; (** workload sequence number *)
      t : float; (** virtual arrival time, seconds *)
      src : int; (** source edge node label *)
      dst : int; (** destination edge node label *)
      level : string; (** protection level short name *)
      policy : string; (** deflection policy short name *)
      outcome : outcome;
    }
  | Dispatch of {
      t : float;
      batch : int; (** batch sequence number *)
      size : int; (** distinct keys in the batch *)
    }
  | Complete of {
      t : float; (** virtual completion time under the planner model *)
      batch : int;
      src : int;
      dst : int;
      ok : bool; (** false: no route exists under the current topology *)
      stale : bool; (** plan outlived its epoch; served but not cached *)
    }
  | Epoch of {
      t : float;
      epoch : int; (** the new topology version *)
      cause : string; (** "fail SW7-SW13" / "repair ..." style slug *)
    }

(** One-line JSON rendering, stable field order; the [--trace] and
    golden-fixture format. *)
val to_jsonl : t -> string

val pp : Format.formatter -> t -> unit
