module Graph = Topo.Graph
module Engine = Netsim.Engine
module Registry = Kar_obs.Registry
module Span = Kar_obs.Span
module Export = Kar_obs.Export

type key = {
  src : Graph.node;
  dst : Graph.node;
  level : Kar.Controller.level;
  policy : Kar.Policy.t;
}

type config = {
  cache_capacity : int;
  batch_size : int;
  batch_delay : float;
  workers : int;
  dispatch_overhead : float;
  hit_latency : float;
  plan_base_cost : float;
  plan_residue_cost : float;
}

let default_config =
  {
    cache_capacity = 256;
    batch_size = 16;
    batch_delay = 2e-4;
    workers = 4;
    dispatch_overhead = 2e-5;
    hit_latency = 5e-6;
    plan_base_cost = 2e-4;
    plan_residue_cost = 2e-5;
  }

(* What the batcher computes per key: the plan (None = unroutable) and the
   epoch its topology view belonged to. *)
type computed = { plan : Kar.Route.plan option; born : int }

type t = {
  config : config;
  graph : Graph.t;
  pool : Util.Pool.t option;
  registry : Registry.t;
  spans : Span.t;
  cache : (key, Kar.Route.plan option) Cache.t;
  latency_h : Registry.histogram;
  unroutable_c : Registry.counter;
  stale_completion_c : Registry.counter;
  max_depth_g : Registry.gauge;
  max_waiting_g : Registry.gauge;
  topo_fail_c : Registry.counter;
  topo_repair_c : Registry.counter;
  failed : (Graph.link_id, unit) Hashtbl.t;
  mutable ran : bool;
}

let create ?(config = default_config) ?pool ?registry ~graph () =
  let registry =
    match registry with Some r -> r | None -> Registry.create ()
  in
  let cache = Cache.create ~registry ~capacity:config.cache_capacity () in
  (* basis-point hit ratio as a probe: snapshots carry the derived series
     without any per-event work *)
  Registry.probe registry "svc/hit-ratio-bp" (fun () ->
      let total = Cache.hits cache + Cache.misses cache + Cache.stale cache in
      if total = 0 then 0 else Cache.hits cache * 10_000 / total);
  (* stale-serve pressure as the same basis-point construction: lookups
     that found an entry from a dead epoch, over all lookups *)
  Registry.probe registry "svc/stale-rate-bp" (fun () ->
      let total = Cache.hits cache + Cache.misses cache + Cache.stale cache in
      if total = 0 then 0 else Cache.stale cache * 10_000 / total);
  (* explicit registration order: it is the snapshot column order *)
  let latency_h = Registry.histogram registry "svc/latency-ns" in
  let unroutable_c = Registry.counter registry "svc/unroutable" in
  let stale_completion_c = Registry.counter registry "svc/stale-completion" in
  let max_depth_g = Registry.gauge registry "svc/max-depth" in
  let max_waiting_g = Registry.gauge registry "svc/max-waiting" in
  let topo_fail_c = Registry.counter registry "svc/topo-fail-events" in
  let topo_repair_c = Registry.counter registry "svc/topo-repair-events" in
  {
    config;
    graph;
    pool;
    registry;
    spans = Span.create ();
    cache;
    latency_h;
    unroutable_c;
    stale_completion_c;
    max_depth_g;
    max_waiting_g;
    topo_fail_c;
    topo_repair_c;
    failed = Hashtbl.create 16;
    ran = false;
  }

let registry t = t.registry
let spans t = t.spans

let fail_link t l =
  Registry.incr t.topo_fail_c;
  Hashtbl.replace t.failed l ();
  Cache.bump_epoch t.cache

let repair_link t l =
  Registry.incr t.topo_repair_c;
  Hashtbl.remove t.failed l;
  Cache.bump_epoch t.cache

(* Plan for a key on the current topology view: shortest path avoiding
   failed links, then the level's protection members folded in one hop at a
   time (conflicting hops skipped), exactly as the offline experiments
   build protected plans.  Protection trees are computed on the failure-
   free graph — protection is a data-plane safety net whose liveness the
   switches check themselves. *)
let plan_for t key =
  let g = t.graph in
  let usable l = not (Hashtbl.mem t.failed l.Graph.id) in
  match Kar.Controller.route ~usable g ~src:key.src ~dst:key.dst ~protection:[] with
  | exception Invalid_argument _ -> None
  | base ->
    (match key.level with
     | Kar.Controller.Unprotected -> Some base
     | Kar.Controller.Partial | Kar.Controller.Full ->
       let path = base.Kar.Route.core_path in
       let members =
         match key.level with
         | Kar.Controller.Partial ->
           Kar.Protection.off_path_members g ~path ~radius:1
         | _ -> Kar.Protection.full_members g ~path
       in
       (match List.rev path with
        | [] -> Some base
        | dest_core :: _ ->
          let path_labels = List.map (Graph.label g) path in
          let hops =
            Kar.Protection.tree_hops g ~dest:dest_core members
            |> List.filter (fun (s, _) -> not (List.mem s path_labels))
          in
          Some
            (List.fold_left
               (fun acc hop ->
                 match Kar.Route.protect g acc [ hop ] with
                 | Ok plan -> plan
                 | Error _ -> acc)
               base hops)))

let link_cause t action l =
  let link = Graph.link t.graph l in
  Printf.sprintf "%s SW%d-SW%d" action
    (Graph.label t.graph link.Graph.ep0.Graph.node)
    (Graph.label t.graph link.Graph.ep1.Graph.node)

type record = {
  arrival : float;
  completion : float;
  outcome : Event.outcome;
  ok : bool;
}

type report = {
  requests : int;
  unroutable : int;
  makespan : float;
  virtual_rps : float;
  mean_latency : float;
  p50 : float;
  p95 : float;
  p99 : float;
  cache_hits : int;
  cache_misses : int;
  cache_stale : int;
  cache_evictions : int;
  cache_size : int;
  epoch : int;
  hit_ratio : float;
  stale_rate : float;
  batches : int;
  planned : int;
  coalesced : int;
  max_batch : int;
  stale_completions : int;
  max_depth : int;
  max_waiting : int;
  records : record array;
}

(* histogram percentile (integer ns, bucket upper bound) back to seconds *)
let q_s h p = float_of_int (Registry.h_quantile h p) /. 1e9

let run t ?(sink = fun _ -> ()) ?(failures = []) ?(keep_records = false)
    ?metrics_every ?metrics_sink requests =
  if t.ran then invalid_arg "Server.run: a server instance runs one workload";
  t.ran <- true;
  let cfg = t.config in
  let g = t.graph in
  let engine = Engine.create () in
  Registry.probe t.registry "engine/events" (fun () -> Engine.processed engine);
  Registry.probe t.registry "engine/pending" (fun () -> Engine.pending engine);
  let n = Array.length requests in
  (* The latency histogram replaces the materialised per-request list: a
     10^6-request run keeps percentiles in a fixed 488-bucket array.
     [records] is only populated on request (timeline bucketing). *)
  let records =
    Array.make
      (if keep_records then n else 0)
      { arrival = 0.0; completion = 0.0; outcome = Event.Miss; ok = false }
  in
  let makespan = ref 0.0 in
  let compute key = { plan = plan_for t key; born = Cache.epoch t.cache } in
  let cost _key result =
    match result with
    | Ok { plan = Some p; _ } ->
      cfg.plan_base_cost
      +. (cfg.plan_residue_cost *. float_of_int (List.length p.Kar.Route.residues))
    | Ok { plan = None; _ } | Error _ -> cfg.plan_base_cost
  in
  let on_dispatch ~batch ~keys =
    sink (Event.Dispatch { t = Engine.now engine; batch; size = Array.length keys })
  in
  let on_key_complete ~batch ~key result =
    let ok, stale, value =
      match result with
      | Ok v -> (v.plan <> None, v.born <> Cache.epoch t.cache, Some v.plan)
      | Error _ -> (false, false, None)
    in
    if stale then Registry.incr t.stale_completion_c
    else
      (* plans that raised unexpectedly are not cached either: transient *)
      Option.iter (fun plan -> Cache.put t.cache key plan) value;
    sink
      (Event.Complete
         {
           t = Engine.now engine;
           batch;
           src = Graph.label g key.src;
           dst = Graph.label g key.dst;
           ok;
           stale;
         })
  in
  let batcher =
    Batcher.create ~engine ~batch_size:cfg.batch_size ~max_delay:cfg.batch_delay
      ~workers:cfg.workers ~dispatch_overhead:cfg.dispatch_overhead ?pool:t.pool
      ~registry:t.registry ~spans:t.spans ~on_dispatch ~on_key_complete ~compute
      ~cost ()
  in
  let sample_gauges () =
    Registry.set_max t.max_depth_g (Batcher.queued batcher + Batcher.in_flight batcher);
    Registry.set_max t.max_waiting_g (Batcher.waiting batcher)
  in
  let finish seq ~arrival ~outcome ~ok =
    let completion = Engine.now engine in
    Registry.observe_s t.latency_h (completion -. arrival);
    if not ok then Registry.incr t.unroutable_c;
    if completion > !makespan then makespan := completion;
    if keep_records then records.(seq) <- { arrival; completion; outcome; ok }
  in
  let process (r : Workload.request) =
    let key = { src = r.src; dst = r.dst; level = r.level; policy = r.policy } in
    let lookup = Cache.lookup t.cache key in
    let outcome =
      match lookup with
      | Cache.Hit _ -> Event.Hit
      | Cache.Miss -> Event.Miss
      | Cache.Stale -> Event.Stale
    in
    sink
      (Event.Request
         {
           seq = r.seq;
           t = r.arrival;
           src = Graph.label g r.src;
           dst = Graph.label g r.dst;
           level = Kar.Controller.level_to_string r.level;
           policy = Kar.Policy.to_string r.policy;
           outcome;
         });
    (match lookup with
     | Cache.Hit plan ->
       let ok = plan <> None in
       ignore
         (Engine.schedule_in engine cfg.hit_latency (fun () ->
              finish r.seq ~arrival:r.arrival ~outcome ~ok))
     | Cache.Miss | Cache.Stale ->
       Batcher.request batcher key ~ready:(fun result ->
           let ok = match result with Ok { plan = Some _; _ } -> true | _ -> false in
           finish r.seq ~arrival:r.arrival ~outcome ~ok));
    sample_gauges ()
  in
  (* topology events first so same-timestamp ties resolve failure-first *)
  List.iter
    (fun (at, action) ->
      ignore
        (Engine.schedule_at engine at (fun () ->
             (match action with
              | `Fail l -> fail_link t l
              | `Repair l -> repair_link t l);
             let now = Engine.now engine in
             Span.record t.spans Span.Epoch_invalidate ~t0:now ~t1:now
               ~detail:(Cache.epoch t.cache);
             sink
               (Event.Epoch
                  {
                    t = now;
                    epoch = Cache.epoch t.cache;
                    cause =
                      (match action with
                       | `Fail l -> link_cause t "fail" l
                       | `Repair l -> link_cause t "repair" l);
                  }))))
    failures;
  (* periodic sim-clock snapshots: a self-chaining event that emits one
     JSONL line per interval and stops once the rest of the run has
     drained (its own event does not count, having just been popped).
     Purely virtual-clock scheduling, so the series is byte-identical at
     any pool width. *)
  (match metrics_sink with
   | None -> ()
   | Some emit ->
     let every =
       match metrics_every with
       | Some e when e > 0.0 -> e
       | _ ->
         (* default: ~64 samples over the arrival horizon *)
         if n = 0 then 1.0
         else Stdlib.max 1e-6 (requests.(n - 1).Workload.arrival /. 64.0)
     in
     let rec snap () =
       let now = Engine.now engine in
       emit (Export.snapshot_line ~t:now t.registry);
       Span.record t.spans Span.Snapshot ~t0:now ~t1:now ~detail:0;
       if Engine.pending engine > 0 then
         ignore (Engine.schedule_in engine every snap)
     in
     ignore (Engine.schedule_at engine every snap));
  (* arrivals chain one ahead instead of loading the heap with the whole
     open-loop schedule up front *)
  let rec arrive i () =
    process requests.(i);
    if i + 1 < n then
      ignore (Engine.schedule_at engine requests.(i + 1).Workload.arrival (arrive (i + 1)))
  in
  if n > 0 then ignore (Engine.schedule_at engine requests.(0).Workload.arrival (arrive 0));
  Engine.run engine;
  let makespan = !makespan in
  let h = t.latency_h in
  {
    requests = n;
    unroutable = Registry.value t.unroutable_c;
    makespan;
    virtual_rps = (if makespan > 0.0 then float_of_int n /. makespan else 0.0);
    mean_latency =
      (if n = 0 then 0.0
       else float_of_int (Registry.h_sum h) /. 1e9 /. float_of_int n);
    p50 = (if n = 0 then 0.0 else q_s h 50.0);
    p95 = (if n = 0 then 0.0 else q_s h 95.0);
    p99 = (if n = 0 then 0.0 else q_s h 99.0);
    cache_hits = Cache.hits t.cache;
    cache_misses = Cache.misses t.cache;
    cache_stale = Cache.stale t.cache;
    cache_evictions = Cache.evictions t.cache;
    cache_size = Cache.size t.cache;
    epoch = Cache.epoch t.cache;
    hit_ratio = Cache.hit_ratio t.cache;
    stale_rate =
      (let total = Cache.hits t.cache + Cache.misses t.cache + Cache.stale t.cache in
       if total = 0 then 0.0 else float_of_int (Cache.stale t.cache) /. float_of_int total);
    batches = Batcher.batches batcher;
    planned = Batcher.computed batcher;
    coalesced = Batcher.coalesced batcher;
    max_batch = Batcher.max_batch batcher;
    stale_completions = Registry.value t.stale_completion_c;
    max_depth = Registry.gauge_value t.max_depth_g;
    max_waiting = Registry.gauge_value t.max_waiting_g;
    records;
  }
