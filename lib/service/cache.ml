(* Hashtbl over intrusive doubly-linked entries: O(1) lookup, refresh,
   insert and evict.  [head] is most-recently-used, [tail] least. *)

type ('k, 'v) entry = {
  key : 'k;
  mutable value : 'v;
  mutable born : int; (* epoch the value was inserted under *)
  mutable prev : ('k, 'v) entry option; (* toward head *)
  mutable next : ('k, 'v) entry option; (* toward tail *)
}

module Registry = Kar_obs.Registry

(* Counters are [svc/cache-*] registry cells; the epoch is mirrored into a
   gauge and occupancy sampled by a probe, so the serving layer's cache
   health shows up in every metrics snapshot for free. *)
type ('k, 'v) t = {
  cap : int;
  table : ('k, ('k, 'v) entry) Hashtbl.t;
  mutable head : ('k, 'v) entry option;
  mutable tail : ('k, 'v) entry option;
  mutable now : int; (* current epoch *)
  hit_c : Registry.counter;
  miss_c : Registry.counter;
  stale_c : Registry.counter;
  evict_c : Registry.counter;
  epoch_g : Registry.gauge;
}

let create ?registry ~capacity () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  let r = match registry with Some r -> r | None -> Registry.create () in
  let table = Hashtbl.create (2 * capacity) in
  (* explicit registration order: it is the snapshot column order *)
  let hit_c = Registry.counter r "svc/cache-hit" in
  let miss_c = Registry.counter r "svc/cache-miss" in
  let stale_c = Registry.counter r "svc/cache-stale" in
  let evict_c = Registry.counter r "svc/cache-evict" in
  let epoch_g = Registry.gauge r "svc/cache-epoch" in
  Registry.probe r "svc/cache-size" (fun () -> Hashtbl.length table);
  {
    cap = capacity;
    table;
    head = None;
    tail = None;
    now = 0;
    hit_c;
    miss_c;
    stale_c;
    evict_c;
    epoch_g;
  }

let capacity t = t.cap
let epoch t = t.now

let bump_epoch t =
  t.now <- t.now + 1;
  Registry.set t.epoch_g t.now

let detach t e =
  (match e.prev with
   | Some p -> p.next <- e.next
   | None -> t.head <- e.next);
  (match e.next with
   | Some n -> n.prev <- e.prev
   | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.head;
  (match t.head with
   | Some h -> h.prev <- Some e
   | None -> t.tail <- Some e);
  t.head <- Some e

let remove t e =
  detach t e;
  Hashtbl.remove t.table e.key

type 'v lookup =
  | Hit of 'v
  | Miss
  | Stale

let lookup t k =
  match Hashtbl.find_opt t.table k with
  | None ->
    Registry.incr t.miss_c;
    Miss
  | Some e when e.born = t.now ->
    Registry.incr t.hit_c;
    detach t e;
    push_front t e;
    Hit e.value
  | Some e ->
    (* epoch moved on under this entry: drop it so it neither gets served
       nor occupies capacity a fresh plan needs *)
    Registry.incr t.stale_c;
    remove t e;
    Stale

let find t k =
  match lookup t k with
  | Hit v -> Some v
  | Miss | Stale -> None

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some e ->
    remove t e;
    Registry.incr t.evict_c

let put t k v =
  match Hashtbl.find_opt t.table k with
  | Some e ->
    e.value <- v;
    e.born <- t.now;
    detach t e;
    push_front t e
  | None ->
    while Hashtbl.length t.table >= t.cap do
      evict_lru t
    done;
    let e = { key = k; value = v; born = t.now; prev = None; next = None } in
    Hashtbl.add t.table k e;
    push_front t e

let hits t = Registry.value t.hit_c
let misses t = Registry.value t.miss_c
let stale t = Registry.value t.stale_c
let evictions t = Registry.value t.evict_c
let size t = Hashtbl.length t.table

let hit_ratio (t : _ t) =
  let total = hits t + misses t + stale t in
  if total = 0 then 0.0 else float_of_int (hits t) /. float_of_int total
