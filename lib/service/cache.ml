(* Hashtbl over intrusive doubly-linked entries: O(1) lookup, refresh,
   insert and evict.  [head] is most-recently-used, [tail] least. *)

type ('k, 'v) entry = {
  key : 'k;
  mutable value : 'v;
  mutable born : int; (* epoch the value was inserted under *)
  mutable prev : ('k, 'v) entry option; (* toward head *)
  mutable next : ('k, 'v) entry option; (* toward tail *)
}

type ('k, 'v) t = {
  cap : int;
  table : ('k, ('k, 'v) entry) Hashtbl.t;
  mutable head : ('k, 'v) entry option;
  mutable tail : ('k, 'v) entry option;
  mutable now : int; (* current epoch *)
  mutable hits : int;
  mutable misses : int;
  mutable stale : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  stale : int;
  evictions : int;
  size : int;
  epoch : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    cap = capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    now = 0;
    hits = 0;
    misses = 0;
    stale = 0;
    evictions = 0;
  }

let capacity t = t.cap
let epoch t = t.now
let bump_epoch t = t.now <- t.now + 1

let detach t e =
  (match e.prev with
   | Some p -> p.next <- e.next
   | None -> t.head <- e.next);
  (match e.next with
   | Some n -> n.prev <- e.prev
   | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.prev <- None;
  e.next <- t.head;
  (match t.head with
   | Some h -> h.prev <- Some e
   | None -> t.tail <- Some e);
  t.head <- Some e

let remove t e =
  detach t e;
  Hashtbl.remove t.table e.key

type 'v lookup =
  | Hit of 'v
  | Miss
  | Stale

let lookup t k =
  match Hashtbl.find_opt t.table k with
  | None ->
    t.misses <- t.misses + 1;
    Miss
  | Some e when e.born = t.now ->
    t.hits <- t.hits + 1;
    detach t e;
    push_front t e;
    Hit e.value
  | Some e ->
    (* epoch moved on under this entry: drop it so it neither gets served
       nor occupies capacity a fresh plan needs *)
    t.stale <- t.stale + 1;
    remove t e;
    Stale

let find t k =
  match lookup t k with
  | Hit v -> Some v
  | Miss | Stale -> None

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some e ->
    remove t e;
    t.evictions <- t.evictions + 1

let put t k v =
  match Hashtbl.find_opt t.table k with
  | Some e ->
    e.value <- v;
    e.born <- t.now;
    detach t e;
    push_front t e
  | None ->
    while Hashtbl.length t.table >= t.cap do
      evict_lru t
    done;
    let e = { key = k; value = v; born = t.now; prev = None; next = None } in
    Hashtbl.add t.table k e;
    push_front t e

let stats (t : _ t) =
  {
    hits = t.hits;
    misses = t.misses;
    stale = t.stale;
    evictions = t.evictions;
    size = Hashtbl.length t.table;
    epoch = t.now;
  }

let hit_ratio (t : _ t) =
  let total = t.hits + t.misses + t.stale in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total
