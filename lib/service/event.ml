type outcome =
  | Hit
  | Miss
  | Stale

let outcome_to_string = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Stale -> "stale"

type t =
  | Request of {
      seq : int;
      t : float;
      src : int;
      dst : int;
      level : string;
      policy : string;
      outcome : outcome;
    }
  | Dispatch of { t : float; batch : int; size : int }
  | Complete of {
      t : float;
      batch : int;
      src : int;
      dst : int;
      ok : bool;
      stale : bool;
    }
  | Epoch of { t : float; epoch : int; cause : string }

(* %.9g keeps virtual timestamps byte-stable without printing noise digits —
   the same convention as Trace.Event.to_jsonl. *)
let to_jsonl = function
  | Request r ->
    Printf.sprintf
      {|{"ev":"req","seq":%d,"t":%.9g,"src":%d,"dst":%d,"level":"%s","policy":"%s","outcome":"%s"}|}
      r.seq r.t r.src r.dst r.level r.policy (outcome_to_string r.outcome)
  | Dispatch d ->
    Printf.sprintf {|{"ev":"dispatch","t":%.9g,"batch":%d,"size":%d}|} d.t
      d.batch d.size
  | Complete c ->
    Printf.sprintf
      {|{"ev":"complete","t":%.9g,"batch":%d,"src":%d,"dst":%d,"ok":%b,"stale":%b}|}
      c.t c.batch c.src c.dst c.ok c.stale
  | Epoch e ->
    Printf.sprintf {|{"ev":"epoch","t":%.9g,"epoch":%d,"cause":"%s"}|} e.t
      e.epoch e.cause

let pp ppf e = Format.pp_print_string ppf (to_jsonl e)
