(** The online route-plan server: cache in front, single-flight batcher
    behind, driven by the discrete-event clock.

    A request asks for a route plan keyed by [(src, dst, level, policy)].
    The server answers from the epoch-checked LRU {!Cache} when it can
    ([hit_latency] later); otherwise the key goes to the {!Batcher}, which
    plans batches of distinct keys on the domain pool and completes them on
    the modelled planner timeline.  Completed plans are inserted into the
    cache {e unless} the topology epoch moved while they were in flight —
    stale plans are still served to their waiters (they were correct when
    requested) but never cached, so one failure produces exactly one replan
    storm and the hit ratio recovers as the cache refills against the new
    epoch.

    Plans are computed with {!Kar.Controller.route} restricted to the
    currently-failed link set, so post-failure plans route around known
    failures; protection members and their tree hops are recomputed per plan
    exactly as the offline experiments do.

    Every virtual timestamp in the run (arrivals, dispatches, completions)
    is independent of the real pool width, so reports and event streams are
    byte-identical at any [-j]. *)

module Graph = Topo.Graph

(** The unit of caching and of single-flight deduplication. *)
type key = {
  src : Graph.node;
  dst : Graph.node;
  level : Kar.Controller.level;
  policy : Kar.Policy.t;
}

type config = {
  cache_capacity : int;
  batch_size : int; (** dispatch threshold, distinct keys *)
  batch_delay : float; (** max virtual seconds a batch stays open *)
  workers : int; (** modelled planner threads (fixed; not the pool width) *)
  dispatch_overhead : float; (** virtual cost of firing a batch *)
  hit_latency : float; (** virtual response time on a cache hit *)
  plan_base_cost : float; (** modelled seconds per plan computation *)
  plan_residue_cost : float; (** additional modelled seconds per residue *)
}

(** 256 entries, batches of 16 or 200 us, 4 modelled workers, 5 us hits,
    200 us + 20 us/residue plans. *)
val default_config : config

type t

(** [create ?config ?pool ~graph ()] — [pool] routes batch computation to a
    private domain pool instead of the shared one (bench isolation). *)
val create : ?config:config -> ?pool:Util.Pool.t -> graph:Graph.t -> unit -> t

(** Mark a link failed / repaired and bump the cache epoch.  Used directly
    for set-up; during a run prefer the [failures] schedule. *)
val fail_link : t -> Graph.link_id -> unit

val repair_link : t -> Graph.link_id -> unit

(** What one request experienced; [report.records] holds them in sequence
    order for timeline bucketing. *)
type record = {
  arrival : float;
  completion : float;
  outcome : Event.outcome; (** how the cache lookup resolved *)
  ok : bool; (** false: unroutable under the topology it was planned on *)
}

type report = {
  requests : int;
  unroutable : int;
  makespan : float; (** virtual time of the last completion *)
  virtual_rps : float; (** requests / makespan *)
  mean_latency : float; (** seconds; 0 when no requests *)
  p50 : float;
  p95 : float;
  p99 : float;
  cache : Cache.stats;
  hit_ratio : float;
  batches : int;
  planned : int; (** plans actually computed *)
  coalesced : int; (** requests that shared another request's plan *)
  max_batch : int;
  stale_completions : int; (** plans that outlived their epoch in flight *)
  max_depth : int; (** max distinct keys queued + in flight *)
  max_waiting : int; (** max requests pending a plan *)
  records : record array;
}

(** [run t ?sink ?failures requests] serves the whole workload to
    completion and reports.  [failures] is a schedule of topology events
    [(time, `Fail l | `Repair l)]; each bumps the epoch and is announced on
    [sink].  Single-shot: a server instance runs one workload. *)
val run :
  t ->
  ?sink:(Event.t -> unit) ->
  ?failures:(float * [ `Fail of Graph.link_id | `Repair of Graph.link_id ]) list ->
  Workload.request array ->
  report
