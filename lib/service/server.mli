(** The online route-plan server: cache in front, single-flight batcher
    behind, driven by the discrete-event clock.

    A request asks for a route plan keyed by [(src, dst, level, policy)].
    The server answers from the epoch-checked LRU {!Cache} when it can
    ([hit_latency] later); otherwise the key goes to the {!Batcher}, which
    plans batches of distinct keys on the domain pool and completes them on
    the modelled planner timeline.  Completed plans are inserted into the
    cache {e unless} the topology epoch moved while they were in flight —
    stale plans are still served to their waiters (they were correct when
    requested) but never cached, so one failure produces exactly one replan
    storm and the hit ratio recovers as the cache refills against the new
    epoch.

    Plans are computed with {!Kar.Controller.route} restricted to the
    currently-failed link set, so post-failure plans route around known
    failures; protection members and their tree hops are recomputed per plan
    exactly as the offline experiments do.

    Every virtual timestamp in the run (arrivals, dispatches, completions)
    is independent of the real pool width, so reports and event streams are
    byte-identical at any [-j]. *)

module Graph = Topo.Graph

(** The unit of caching and of single-flight deduplication. *)
type key = {
  src : Graph.node;
  dst : Graph.node;
  level : Kar.Controller.level;
  policy : Kar.Policy.t;
}

type config = {
  cache_capacity : int;
  batch_size : int; (** dispatch threshold, distinct keys *)
  batch_delay : float; (** max virtual seconds a batch stays open *)
  workers : int; (** modelled planner threads (fixed; not the pool width) *)
  dispatch_overhead : float; (** virtual cost of firing a batch *)
  hit_latency : float; (** virtual response time on a cache hit *)
  plan_base_cost : float; (** modelled seconds per plan computation *)
  plan_residue_cost : float; (** additional modelled seconds per residue *)
}

(** 256 entries, batches of 16 or 200 us, 4 modelled workers, 5 us hits,
    200 us + 20 us/residue plans. *)
val default_config : config

type t

(** [create ?config ?pool ?registry ~graph ()] — [pool] routes batch
    computation to a private domain pool instead of the shared one (bench
    isolation); [registry] is the metrics registry the server's cache,
    batcher and latency histogram register on (a fresh private registry
    when omitted). *)
val create :
  ?config:config ->
  ?pool:Util.Pool.t ->
  ?registry:Kar_obs.Registry.t ->
  graph:Graph.t ->
  unit ->
  t

(** The server's metrics registry: [svc/*] cache, batcher, latency
    ([svc/latency-ns] histogram) and depth metrics, plus [engine/*] probes
    once {!run} has started. *)
val registry : t -> Kar_obs.Registry.t

(** Control-plane spans: one [Batch_dispatch] per batch, one
    [Plan_compile] per planned key, one [Epoch_invalidate] per topology
    event, one [Snapshot] per emitted metrics snapshot. *)
val spans : t -> Kar_obs.Span.t

(** Mark a link failed / repaired and bump the cache epoch.  Used directly
    for set-up; during a run prefer the [failures] schedule. *)
val fail_link : t -> Graph.link_id -> unit

val repair_link : t -> Graph.link_id -> unit

(** What one request experienced; [report.records] holds them in sequence
    order for timeline bucketing. *)
type record = {
  arrival : float;
  completion : float;
  outcome : Event.outcome; (** how the cache lookup resolved *)
  ok : bool; (** false: unroutable under the topology it was planned on *)
}

(** Latency percentiles come from the streaming [svc/latency-ns]
    histogram (8 sub-buckets per octave), so they are bucket upper bounds:
    within one bucket width (<= 12.5% relative) above the exact
    nearest-rank value, at O(1) memory for any workload size. *)
type report = {
  requests : int;
  unroutable : int;
  makespan : float; (** virtual time of the last completion *)
  virtual_rps : float; (** requests / makespan *)
  mean_latency : float; (** seconds; 0 when no requests *)
  p50 : float;
  p95 : float;
  p99 : float;
  cache_hits : int;
  cache_misses : int;
  cache_stale : int;
  cache_evictions : int;
  cache_size : int;
  epoch : int;
  hit_ratio : float;
  stale_rate : float;
      (** stale lookups / all lookups — how often the cache answered with
          an entry from a dead epoch and had to replan *)
  batches : int;
  planned : int; (** plans actually computed *)
  coalesced : int; (** requests that shared another request's plan *)
  max_batch : int;
  stale_completions : int; (** plans that outlived their epoch in flight *)
  max_depth : int; (** max distinct keys queued + in flight *)
  max_waiting : int; (** max requests pending a plan *)
  records : record array; (** empty unless [keep_records] *)
}

(** [run t ?sink ?failures ?keep_records ?metrics_every ?metrics_sink
    requests] serves the whole workload to completion and reports.
    [failures] is a schedule of topology events
    [(time, `Fail l | `Repair l)]; each bumps the epoch and is announced
    on [sink].  [keep_records] (default false) materialises the
    per-request {!record} array — off, memory stays bounded at
    10^6-request workloads.  [metrics_sink] receives one
    {!Kar_obs.Export.snapshot_line} per [metrics_every] virtual seconds
    (default: arrival horizon / 64) — a sim-clock time series that is
    byte-identical at any pool width.  Single-shot: a server instance
    runs one workload. *)
val run :
  t ->
  ?sink:(Event.t -> unit) ->
  ?failures:(float * [ `Fail of Graph.link_id | `Repair of Graph.link_id ]) list ->
  ?keep_records:bool ->
  ?metrics_every:float ->
  ?metrics_sink:(string -> unit) ->
  Workload.request array ->
  report
