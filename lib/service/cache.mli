(** Bounded LRU plan cache with epoch-based invalidation.

    The serving layer keys plans by [(src, dst, level, policy)]; this module
    keeps the structure generic (['k] keys under structural equality, ['v]
    values) so it can be tested in isolation.

    {b Epochs.} The cache carries a topology-version counter.  A link
    failure or repair bumps it ({!bump_epoch}) in O(1); every entry remembers
    the epoch it was inserted under, and a lookup that finds an entry from an
    older epoch treats it as {!lookup.Stale}: the entry is dropped on the
    spot and the caller must replan.  Invalidation is therefore {e lazy} —
    nothing is scanned at bump time — but no stale route is ever served,
    which is what turns a failure into a measurable replan storm instead of
    silent wrong answers. *)

type ('k, 'v) t

(** [create ?registry ~capacity ()] with [capacity >= 1].  Counters
    register on [registry] (a fresh private registry when omitted) as
    [svc/cache-hit]/[svc/cache-miss]/[svc/cache-stale]/[svc/cache-evict],
    plus a [svc/cache-epoch] gauge and a [svc/cache-size] occupancy
    probe. *)
val create : ?registry:Kar_obs.Registry.t -> capacity:int -> unit -> ('k, 'v) t

val capacity : ('k, 'v) t -> int
val epoch : ('k, 'v) t -> int

(** Invalidate every resident entry, O(1). *)
val bump_epoch : ('k, 'v) t -> unit

type 'v lookup =
  | Hit of 'v
  | Miss
  | Stale (** present but from an older epoch; dropped by this lookup *)

(** [lookup t k] classifies and counts; a [Hit] refreshes the entry's LRU
    position. *)
val lookup : ('k, 'v) t -> 'k -> 'v lookup

(** [find t k] is [lookup] flattened to an option. *)
val find : ('k, 'v) t -> 'k -> 'v option

(** [put t k v] inserts (or refreshes) [k] at the current epoch and evicts
    from the least-recently-used end while over capacity. *)
val put : ('k, 'v) t -> 'k -> 'v -> unit

(** Lookups answered from a current-epoch entry. *)
val hits : ('k, 'v) t -> int

(** Cold misses: key never present (or evicted). *)
val misses : ('k, 'v) t -> int

(** Misses caused by epoch invalidation. *)
val stale : ('k, 'v) t -> int

(** Capacity evictions, not stale drops. *)
val evictions : ('k, 'v) t -> int

(** Current entries, stale residents included. *)
val size : ('k, 'v) t -> int

(** [hits / (hits + misses + stale)]; 0 before any lookup. *)
val hit_ratio : ('k, 'v) t -> float
