module Graph = Topo.Graph
module Prng = Util.Prng

type request = {
  seq : int;
  arrival : float;
  src : Graph.node;
  dst : Graph.node;
  level : Kar.Controller.level;
  policy : Kar.Policy.t;
}

type spec = {
  n : int;
  rate : float;
  skew : float;
  levels : Kar.Controller.level array;
  policies : Kar.Policy.t array;
  seed : int;
}

let default =
  {
    n = 10_000;
    rate = 2_000.0;
    skew = 0.9;
    levels = [| Kar.Controller.Unprotected; Kar.Controller.Partial; Kar.Controller.Full |];
    policies = [| Kar.Policy.Not_input_port |];
    seed = 1;
  }

let pairs g ~seed =
  let edges = Graph.edge_nodes g in
  if List.length edges < 2 then
    invalid_arg "Workload.pairs: graph needs at least two edge nodes";
  let all =
    List.concat_map
      (fun s -> List.filter_map (fun d -> if s = d then None else Some (s, d)) edges)
      edges
    |> Array.of_list
  in
  (* Decouple popularity rank from node numbering: the Zipf head should be
     an arbitrary working set, not "whatever the builder added first". *)
  Prng.shuffle (Prng.create (Int64.of_int (seed * 2654435761 + 97))) all;
  all

(* Cumulative Zipf weights over ranks 1..k; sampling is a binary search for
   the first cumulative weight exceeding the draw. *)
let zipf_cumulative ~skew k =
  let cum = Array.make k 0.0 in
  let acc = ref 0.0 in
  for i = 0 to k - 1 do
    acc := !acc +. (1.0 /. (float_of_int (i + 1) ** skew));
    cum.(i) <- !acc
  done;
  cum

let sample_rank cum u =
  let total = cum.(Array.length cum - 1) in
  let x = u *. total in
  let lo = ref 0 and hi = ref (Array.length cum - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) > x then hi := mid else lo := mid + 1
  done;
  !lo

let generate g spec =
  if spec.n < 0 then invalid_arg "Workload.generate: negative n";
  if spec.rate <= 0.0 then invalid_arg "Workload.generate: rate must be positive";
  if spec.skew < 0.0 then invalid_arg "Workload.generate: negative skew";
  if Array.length spec.levels = 0 then
    invalid_arg "Workload.generate: empty level set";
  if Array.length spec.policies = 0 then
    invalid_arg "Workload.generate: empty policy set";
  let universe = pairs g ~seed:spec.seed in
  let cum = zipf_cumulative ~skew:spec.skew (Array.length universe) in
  (* One independent stream per decision dimension, split before any draw,
     so adding a dimension never perturbs the others. *)
  let streams = Prng.split_n (Prng.of_int spec.seed) 4 in
  let arrivals = streams.(0)
  and pair_rng = streams.(1)
  and level_rng = streams.(2)
  and policy_rng = streams.(3) in
  let t = ref 0.0 in
  Array.init spec.n (fun seq ->
      let dt = Prng.exponential arrivals ~mean:(1.0 /. spec.rate) in
      (* strictly increasing arrivals keep the engine's FIFO tie-break out
         of the picture entirely *)
      t := !t +. Stdlib.max dt 1e-12;
      let src, dst = universe.(sample_rank cum (Prng.float pair_rng)) in
      {
        seq;
        arrival = !t;
        src;
        dst;
        level = Prng.choice level_rng spec.levels;
        policy = Prng.choice policy_rng spec.policies;
      })
