module Engine = Netsim.Engine

type ('k, 'v) pending = { mutable waiters : (('v, exn) result -> unit) list }

type ('k, 'v) t = {
  engine : Engine.t;
  batch_size : int;
  max_delay : float;
  workers : int;
  dispatch_overhead : float;
  pool : Util.Pool.t option;
  on_dispatch : batch:int -> keys:'k array -> unit;
  on_key_complete : batch:int -> key:'k -> ('v, exn) result -> unit;
  compute : 'k -> 'v;
  cost : 'k -> ('v, exn) result -> float;
  (* keys queued or in flight; single-flight subscription point *)
  pending : ('k, ('k, 'v) pending) Hashtbl.t;
  mutable queue : 'k list; (* open batch, reversed accumulation order *)
  mutable n_queued : int;
  mutable n_inflight : int;
  mutable n_waiting : int;
  mutable timer : Engine.event option;
  mutable batches : int;
  mutable computed : int;
  mutable coalesced : int;
  mutable max_batch : int;
}

let create ~engine ~batch_size ~max_delay ~workers ~dispatch_overhead ?pool
    ?(on_dispatch = fun ~batch:_ ~keys:_ -> ())
    ?(on_key_complete = fun ~batch:_ ~key:_ _ -> ()) ~compute ~cost () =
  if batch_size < 1 then invalid_arg "Batcher.create: batch_size must be >= 1";
  if max_delay < 0.0 then invalid_arg "Batcher.create: negative max_delay";
  if workers < 1 then invalid_arg "Batcher.create: workers must be >= 1";
  {
    engine;
    batch_size;
    max_delay;
    workers;
    dispatch_overhead;
    pool;
    on_dispatch;
    on_key_complete;
    compute;
    cost;
    pending = Hashtbl.create 64;
    queue = [];
    n_queued = 0;
    n_inflight = 0;
    n_waiting = 0;
    timer = None;
    batches = 0;
    computed = 0;
    coalesced = 0;
    max_batch = 0;
  }

let complete t ~batch key result =
  match Hashtbl.find_opt t.pending key with
  | None -> () (* unreachable: completions fire exactly once per key *)
  | Some p ->
    Hashtbl.remove t.pending key;
    t.n_inflight <- t.n_inflight - 1;
    t.on_key_complete ~batch ~key result;
    let waiters = List.rev p.waiters in
    t.n_waiting <- t.n_waiting - List.length waiters;
    List.iter (fun ready -> ready result) waiters

let dispatch t =
  (match t.timer with
   | Some ev ->
     Engine.cancel ev;
     t.timer <- None
   | None -> ());
  let keys = Array.of_list (List.rev t.queue) in
  t.queue <- [];
  t.n_queued <- 0;
  let n = Array.length keys in
  if n > 0 then begin
    t.batches <- t.batches + 1;
    let batch = t.batches in
    t.max_batch <- Stdlib.max t.max_batch n;
    t.n_inflight <- t.n_inflight + n;
    t.on_dispatch ~batch ~keys;
    (* the real computation: one pool map over the batch's distinct keys *)
    let f ~idx:_ k = try Ok (t.compute k) with e -> Error e in
    let results =
      match t.pool with
      | Some p -> Util.Pool.map p keys ~f
      | None -> Util.Pool.run keys ~f
    in
    t.computed <- t.computed + n;
    (* the modelled timeline: round-robin the keys over [workers] planner
       threads; completion = dispatch + overhead + the thread's cumulative
       cost.  Independent of the pool width by construction. *)
    let now = Engine.now t.engine in
    let worker_busy = Array.make t.workers 0.0 in
    Array.iteri
      (fun i key ->
        let result = results.(i) in
        let w = i mod t.workers in
        worker_busy.(w) <- worker_busy.(w) +. t.cost key result;
        let at = now +. t.dispatch_overhead +. worker_busy.(w) in
        ignore
          (Engine.schedule_at t.engine at (fun () ->
               complete t ~batch key result)))
      keys
  end

let request t key ~ready =
  t.n_waiting <- t.n_waiting + 1;
  match Hashtbl.find_opt t.pending key with
  | Some p ->
    (* single flight: whether queued or already computing, subscribe only *)
    t.coalesced <- t.coalesced + 1;
    p.waiters <- ready :: p.waiters
  | None ->
    Hashtbl.add t.pending key { waiters = [ ready ] };
    t.queue <- key :: t.queue;
    t.n_queued <- t.n_queued + 1;
    if t.n_queued >= t.batch_size then dispatch t
    else if t.timer = None then
      t.timer <-
        Some
          (Engine.schedule_in t.engine t.max_delay (fun () ->
               t.timer <- None;
               if t.n_queued > 0 then dispatch t))

let queued t = t.n_queued
let in_flight t = t.n_inflight
let waiting t = t.n_waiting

type stats = { batches : int; computed : int; coalesced : int; max_batch : int }

let stats (t : _ t) =
  {
    batches = t.batches;
    computed = t.computed;
    coalesced = t.coalesced;
    max_batch = t.max_batch;
  }
