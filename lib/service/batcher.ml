module Engine = Netsim.Engine
module Registry = Kar_obs.Registry
module Span = Kar_obs.Span

type ('k, 'v) pending = { mutable waiters : (('v, exn) result -> unit) list }

type ('k, 'v) t = {
  engine : Engine.t;
  batch_size : int;
  max_delay : float;
  workers : int;
  dispatch_overhead : float;
  pool : Util.Pool.t option;
  on_dispatch : batch:int -> keys:'k array -> unit;
  on_key_complete : batch:int -> key:'k -> ('v, exn) result -> unit;
  compute : 'k -> 'v;
  cost : 'k -> ('v, exn) result -> float;
  (* keys queued or in flight; single-flight subscription point *)
  pending : ('k, ('k, 'v) pending) Hashtbl.t;
  mutable queue : 'k list; (* open batch, reversed accumulation order *)
  mutable n_queued : int;
  mutable n_inflight : int;
  mutable n_waiting : int;
  mutable timer : Engine.event option;
  mutable n_batches : int;
  batches_c : Registry.counter;
  computed_c : Registry.counter;
  coalesced_c : Registry.counter;
  max_batch_g : Registry.gauge;
  spans : Span.t option;
}

let create ~engine ~batch_size ~max_delay ~workers ~dispatch_overhead ?pool
    ?registry ?spans
    ?(on_dispatch = fun ~batch:_ ~keys:_ -> ())
    ?(on_key_complete = fun ~batch:_ ~key:_ _ -> ()) ~compute ~cost () =
  if batch_size < 1 then invalid_arg "Batcher.create: batch_size must be >= 1";
  if max_delay < 0.0 then invalid_arg "Batcher.create: negative max_delay";
  if workers < 1 then invalid_arg "Batcher.create: workers must be >= 1";
  let r = match registry with Some r -> r | None -> Registry.create () in
  (* explicit registration order: it is the snapshot column order *)
  let batches_c = Registry.counter r "svc/batches" in
  let computed_c = Registry.counter r "svc/planned" in
  let coalesced_c = Registry.counter r "svc/coalesced" in
  let max_batch_g = Registry.gauge r "svc/max-batch" in
  {
    engine;
    batch_size;
    max_delay;
    workers;
    dispatch_overhead;
    pool;
    on_dispatch;
    on_key_complete;
    compute;
    cost;
    pending = Hashtbl.create 64;
    queue = [];
    n_queued = 0;
    n_inflight = 0;
    n_waiting = 0;
    timer = None;
    n_batches = 0;
    batches_c;
    computed_c;
    coalesced_c;
    max_batch_g;
    spans;
  }

let complete t ~batch key result =
  match Hashtbl.find_opt t.pending key with
  | None -> () (* unreachable: completions fire exactly once per key *)
  | Some p ->
    Hashtbl.remove t.pending key;
    t.n_inflight <- t.n_inflight - 1;
    t.on_key_complete ~batch ~key result;
    let waiters = List.rev p.waiters in
    t.n_waiting <- t.n_waiting - List.length waiters;
    List.iter (fun ready -> ready result) waiters

let dispatch t =
  (match t.timer with
   | Some ev ->
     Engine.cancel ev;
     t.timer <- None
   | None -> ());
  let keys = Array.of_list (List.rev t.queue) in
  t.queue <- [];
  t.n_queued <- 0;
  let n = Array.length keys in
  if n > 0 then begin
    t.n_batches <- t.n_batches + 1;
    Registry.incr t.batches_c;
    let batch = t.n_batches in
    Registry.set_max t.max_batch_g n;
    t.n_inflight <- t.n_inflight + n;
    t.on_dispatch ~batch ~keys;
    (* the real computation: one pool map over the batch's distinct keys *)
    let f ~idx:_ k = try Ok (t.compute k) with e -> Error e in
    let results =
      match t.pool with
      | Some p -> Util.Pool.map p keys ~f
      | None -> Util.Pool.run keys ~f
    in
    Registry.add t.computed_c n;
    (* the modelled timeline: round-robin the keys over [workers] planner
       threads; completion = dispatch + overhead + the thread's cumulative
       cost.  Independent of the pool width by construction. *)
    let now = Engine.now t.engine in
    let worker_busy = Array.make t.workers 0.0 in
    let last_completion = ref now in
    Array.iteri
      (fun i key ->
        let result = results.(i) in
        let w = i mod t.workers in
        let start = now +. t.dispatch_overhead +. worker_busy.(w) in
        worker_busy.(w) <- worker_busy.(w) +. t.cost key result;
        let at = now +. t.dispatch_overhead +. worker_busy.(w) in
        if at > !last_completion then last_completion := at;
        (match t.spans with
         | Some s -> Span.record s Span.Plan_compile ~t0:start ~t1:at ~detail:batch
         | None -> ());
        ignore
          (Engine.schedule_at t.engine at (fun () ->
               complete t ~batch key result)))
      keys;
    match t.spans with
    | Some s ->
      Span.record s Span.Batch_dispatch ~t0:now ~t1:!last_completion ~detail:n
    | None -> ()
  end

let request t key ~ready =
  t.n_waiting <- t.n_waiting + 1;
  match Hashtbl.find_opt t.pending key with
  | Some p ->
    (* single flight: whether queued or already computing, subscribe only *)
    Registry.incr t.coalesced_c;
    p.waiters <- ready :: p.waiters
  | None ->
    Hashtbl.add t.pending key { waiters = [ ready ] };
    t.queue <- key :: t.queue;
    t.n_queued <- t.n_queued + 1;
    if t.n_queued >= t.batch_size then dispatch t
    else if t.timer = None then
      t.timer <-
        Some
          (Engine.schedule_in t.engine t.max_delay (fun () ->
               t.timer <- None;
               if t.n_queued > 0 then dispatch t))

let queued t = t.n_queued
let in_flight t = t.n_inflight
let waiting t = t.n_waiting
let batches t = Registry.value t.batches_c
let computed t = Registry.value t.computed_c
let coalesced t = Registry.value t.coalesced_c
let max_batch t = Registry.gauge_value t.max_batch_g
