(** Miss batching with single-flight deduplication over the domain pool.

    Cache misses are not planned one at a time: they accumulate in a batch
    that is dispatched when it reaches [batch_size] distinct keys or when
    [max_delay] of virtual time passes since the batch opened, whichever
    comes first.  Dispatch computes every key of the batch with one
    {!Util.Pool} map — the actual multicore win — and {e single-flight}
    deduplication guarantees that N concurrent requests for the same key
    cost exactly one plan computation: late arrivals for a key that is
    queued or already in flight just subscribe to its completion.

    {b Determinism.} Wall-clock speed must not leak into results, so
    {e virtual} completion times come from a fixed planner model, not from
    the pool: a batch dispatched at [t] is served by [workers] modelled
    planner threads, keys assigned round-robin in accumulation order, each
    key costing [cost key result] seconds; key [i]'s completion fires at
    [t + dispatch_overhead +] its modelled worker's cumulative cost.  The
    real pool width only changes how fast the simulation runs, never what
    it computes — the same argument the experiment engine makes, applied to
    a server. *)

type ('k, 'v) t

(** [create ~engine ~batch_size ~max_delay ~workers ~dispatch_overhead
    ?pool ?on_dispatch ?on_key_complete ~compute ~cost ()]:

    - [compute] runs once per distinct key at dispatch (on the pool);
      exceptions are captured per key as [Error].
    - [cost key result] is the modelled planning time for the virtual
      timeline (it may inspect the result, e.g. charge per residue).
    - [pool]: compute on this private pool instead of the shared
      {!Util.Pool.run} (the bench harness measures j1 vs j4 this way).
    - [registry]: counters register there as [svc/batches]/[svc/planned]/
      [svc/coalesced] plus the [svc/max-batch] gauge (a fresh private
      registry when omitted).
    - [spans]: each dispatch records one [Batch_dispatch] span (dispatch
      to last modelled completion, detail = batch size) and one
      [Plan_compile] span per key (its modelled worker slot, detail =
      batch number).
    - [on_dispatch ~batch ~keys] fires at dispatch time (event stream).
    - [on_key_complete ~batch ~key result] fires once per key at its
      virtual completion, before the per-request waiters. *)
val create :
  engine:Netsim.Engine.t ->
  batch_size:int ->
  max_delay:float ->
  workers:int ->
  dispatch_overhead:float ->
  ?pool:Util.Pool.t ->
  ?registry:Kar_obs.Registry.t ->
  ?spans:Kar_obs.Span.t ->
  ?on_dispatch:(batch:int -> keys:'k array -> unit) ->
  ?on_key_complete:(batch:int -> key:'k -> ('v, exn) result -> unit) ->
  compute:('k -> 'v) ->
  cost:('k -> ('v, exn) result -> float) ->
  unit ->
  ('k, 'v) t

(** [request t k ~ready] subscribes [ready] to [k]'s result; it fires (via
    the engine) at the key's virtual completion time.  Queues [k] unless it
    is already queued or in flight. *)
val request : ('k, 'v) t -> 'k -> ready:(('v, exn) result -> unit) -> unit

(** Distinct keys waiting in the open batch. *)
val queued : ('k, 'v) t -> int

(** Distinct keys dispatched whose completion has not fired yet. *)
val in_flight : ('k, 'v) t -> int

(** Requests subscribed to queued or in-flight keys. *)
val waiting : ('k, 'v) t -> int

(** Dispatches performed. *)
val batches : ('k, 'v) t -> int

(** Keys actually planned. *)
val computed : ('k, 'v) t -> int

(** Requests deduplicated onto an existing key. *)
val coalesced : ('k, 'v) t -> int

(** Largest dispatched batch. *)
val max_batch : ('k, 'v) t -> int
