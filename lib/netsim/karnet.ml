module Graph = Topo.Graph

let log_src = Logs.Src.create "kar.switch" ~doc:"KAR switch forwarding decisions"

module Log = (val Logs.src_log log_src : Logs.LOG)

let install_switches net ~policy ~seed =
  let master = Util.Prng.of_int seed in
  List.iter
    (fun v ->
      let rng = Util.Prng.split master in
      let switch_id = Graph.label (Net.graph net) v in
      let handler net _node (packet : Packet.t) ~in_port =
        packet.Packet.hops <- packet.Packet.hops + 1;
        if packet.Packet.hops > Net.ttl net then Net.drop net packet Net.Ttl_exceeded
        else begin
          let ports = Net.port_states net v in
          let view =
            {
              Kar.Policy.route_id = packet.Packet.route_id;
              in_port;
              deflected = packet.Packet.deflected;
            }
          in
          let decision, deflected =
            Kar.Policy.forward policy ~switch_id ~ports ~packet:view rng
          in
          if deflected && not packet.Packet.deflected then begin
            Net.count_deflection net;
            Log.debug (fun m ->
                m "SW%d deflected %a (in port %d)" switch_id Packet.pp packet
                  in_port);
            packet.Packet.deflected <- true
          end;
          match decision with
          | Kar.Policy.Forward port -> Net.send net ~from_node:v ~port packet
          | Kar.Policy.Drop -> Net.drop net packet Net.No_route
        end
      in
      Net.set_node_handler net v handler)
    (Graph.core_nodes (Net.graph net))

type receive = Net.t -> Packet.t -> unit

let install_edge net node ?(reencode_delay_s = 1e-3) ~reencode ~receive () =
  let handler net _node (packet : Packet.t) ~in_port =
    if packet.Packet.dst = node then begin
      Net.delivered net packet;
      receive net packet
    end
    else if in_port < 0 then begin
      (* Locally injected by the host stack: ship toward the core.  An edge
         node has exactly one (or more) uplink; use port 0. *)
      Net.send net ~from_node:node ~port:0 packet
    end
    else begin
      (* Stranded packet: ask the controller for a fresh route ID from this
         edge, then re-inject after the control-plane round trip. *)
      match reencode packet with
      | None -> Net.drop net packet Net.No_route
      | Some route_id ->
        Net.count_reencode net;
        packet.Packet.route_id <- route_id;
        packet.Packet.deflected <- false;
        packet.Packet.reencoded <- packet.Packet.reencoded + 1;
        ignore
          (Engine.schedule_in (Net.engine net) reencode_delay_s (fun () ->
               Net.send net ~from_node:node ~port:0 packet))
    end
  in
  Net.set_node_handler net node handler

let install_standard_edges net ~controller_reencode =
  List.iter
    (fun v ->
      install_edge net v ~reencode:controller_reencode
        ~receive:(fun _ _ -> ())
        ())
    (Graph.edge_nodes (Net.graph net))
