module Graph = Topo.Graph

let log_src = Logs.Src.create "kar.switch" ~doc:"KAR switch forwarding decisions"

module Log = (val Logs.src_log log_src : Logs.LOG)

let install_switches ?plan net ~policy ~seed =
  let master = Util.Prng.of_int seed in
  List.iter
    (fun v ->
      let rng = Util.Prng.split master in
      let switch_id = Graph.label (Net.graph net) v in
      (* The modulo answer for this switch, read straight off the packet's
         flat buffer: a residue-table read when a plan is threaded through
         (missing automatically for packets whose route ID the table was
         not built from, e.g. after an edge re-encode), the in-place
         remainder kernel otherwise.  Resolved once per switch at install
         time, not per packet. *)
      let computed_for =
        match plan with
        | Some p -> fun buf -> Kar.Route.cached_port_flat p buf ~switch_id
        | None -> fun buf -> Kar.Policy.computed_port_flat ~switch_id buf
      in
      let handler net _node (packet : Packet.t) ~in_port =
        let hops = Packet.hops packet + 1 in
        Packet.set_hops packet hops;
        Net.count_hop net;
        if hops > Net.ttl net then
          Net.drop ~at:v ~in_port net packet Net.Ttl_exceeded
        else begin
          let ports = Net.port_states net v in
          let was_deflected = Packet.deflected packet in
          let c = computed_for (Packet.bytes packet) in
          (* Steady state (computed port healthy, no recorder): everything
             from here to [Net.send] stays off the minor heap. *)
          let d =
            Kar.Policy.decide policy ~computed:c ~in_port
              ~deflected:was_deflected ~ports rng
          in
          let port = Kar.Policy.code_port d in
          let deflected = Kar.Policy.code_deflected d in
          (* Flight recorder: classify the decision (computed forward,
             random deflection, or driven deflection) and tally it.  Only
             entered with a recorder attached, so the default path pays
             nothing beyond the [None] test. *)
          (match Net.recorder net with
           | Some r when port >= 0 ->
             let action =
               Trace.Event.decision_action
                 ~via_computed:
                   (Kar.Policy.via_computed_port policy ~computed:c ~in_port
                      ~deflected:was_deflected ~port)
                 ~deflected:was_deflected
                 ~protected_:(Trace.Recorder.is_protected r switch_id)
                 ~policy:(Kar.Policy.to_string policy)
             in
             (match action with
              | Trace.Event.Deflect _ -> Net.note_deflect net v
              | Trace.Event.Drive -> Net.note_drive net v
              | _ -> ());
             Net.record_decision net ~switch:switch_id ~in_port ~out_port:port
               packet action
           | _ -> ());
          if deflected && not was_deflected then begin
            Net.count_deflection net;
            Log.debug (fun m ->
                m "SW%d deflected %a (in port %d)" switch_id Packet.pp packet
                  in_port);
            Packet.set_deflected packet true
          end;
          if port >= 0 then Net.send net ~from_node:v ~port packet
          else Net.drop ~at:v ~in_port net packet Net.No_route
        end
      in
      Net.set_node_handler net v handler)
    (Graph.core_nodes (Net.graph net))

type receive = Net.t -> Packet.t -> unit

let install_edge net node ?(reencode_delay_s = 1e-3) ~reencode ~receive () =
  let handler net _node (packet : Packet.t) ~in_port =
    if Packet.dst packet = node then begin
      Net.delivered ~in_port net packet;
      receive net packet;
      (* Terminal point: the receive callback may read the packet but not
         keep it; the buffer goes back to the pool. *)
      Net.free net packet
    end
    else if in_port < 0 then begin
      (* Locally injected by the host stack: ship toward the core.  An edge
         node has exactly one (or more) uplink; use port 0. *)
      Net.send net ~from_node:node ~port:0 packet
    end
    else begin
      (* Stranded packet: ask the controller for a fresh route ID from this
         edge, then re-inject after the control-plane round trip. *)
      match reencode packet with
      | None -> Net.drop ~at:node ~in_port net packet Net.No_route
      | Some route_id ->
        Net.count_reencode net;
        Packet.set_route_id packet route_id;
        Packet.set_deflected packet false;
        Packet.set_reencoded packet (Packet.reencoded packet + 1);
        ignore
          (Engine.schedule_in (Net.engine net) reencode_delay_s (fun () ->
               (* Recorded at actual send time, so the event's place in the
                  trace matches its place in the FIFO order. *)
               Net.record_decision net
                 ~switch:(Graph.label (Net.graph net) node)
                 ~in_port:(-1) ~out_port:0 packet Trace.Event.Reencode;
               Net.send net ~from_node:node ~port:0 packet))
    end
  in
  Net.set_node_handler net node handler

let install_standard_edges net ~controller_reencode =
  List.iter
    (fun v ->
      install_edge net v ~reencode:controller_reencode
        ~receive:(fun _ _ -> ())
        ())
    (Graph.edge_nodes (Net.graph net))
