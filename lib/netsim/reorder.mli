(** Network-level packet reordering metrics (RFC 4737 flavoured).

    TCP throughput measures reordering only through its consequences; this
    analyzer measures it directly from the arrival sequence.  Feed it the
    sequence numbers in arrival order (sequence numbers are assigned in
    send order) and read off:

    - the {e reordered fraction}: packets arriving with a sequence number
      smaller than one already seen (RFC 4737 Type-P-Reordered);
    - {e reordering extents}: for each reordered packet, how many packets
      with larger sequence numbers preceded it — the buffer a receiver
      would need to restore order;
    - {e displacement}: arrival position minus send position, whose spread
      is what defeats a fixed duplicate-ACK threshold.

    Used by the reordering ablation to compare deflection policies on the
    same footing the paper discusses ("the effect of packets
    disordering"). *)

type t

val create : unit -> t

(** [observe t seq] records the next arrival.  Sequence numbers need not be
    dense (losses leave gaps) but must be distinct.  Extents are computed
    over a 4096-packet lookback window (larger extents are undercounted —
    far beyond anything a deflection walk produces). *)
val observe : t -> int -> unit

type metrics = {
  received : int;
  reordered : int; (** RFC 4737 reordered-packet count *)
  reordered_fraction : float;
  max_extent : int; (** largest reordering extent, in packets *)
  mean_extent : float; (** over reordered packets only; 0 if none *)
  max_late : int; (** most positions any packet arrived late *)
  buffer_packets : int;
      (** minimum reorder buffer (= max extent) to restore order *)
}

val metrics : t -> metrics

(** [pp_metrics] renders a compact one-line summary. *)
val pp_metrics : Format.formatter -> metrics -> unit
