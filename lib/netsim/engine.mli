(** Discrete-event simulation engine: a monotone virtual clock and a binary
    heap of timestamped callbacks.  Replaces the wall-clock of the paper's
    Mininet emulation with a deterministic, reproducible timeline. *)

type t

(** A handle for cancelling a scheduled event. *)
type event

(** [create ()] makes an engine with the clock at [0.0]. *)
val create : unit -> t

(** [now e] is the current virtual time in seconds. *)
val now : t -> float

(** [schedule_at e t f] runs [f] at absolute time [t].
    @raise Invalid_argument if [t] is in the past. *)
val schedule_at : t -> float -> (unit -> unit) -> event

(** [schedule_in e dt f] runs [f] after [dt >= 0] seconds. *)
val schedule_in : t -> float -> (unit -> unit) -> event

(** [schedule_keyed e ~time ~sched ~sched2 f] schedules [f] at [time]
    with an explicit determinism key.  Events fire in
    [(time, sched, sched2, seq)] order: [sched] is the virtual time the
    event was scheduled at and [sched2] the scheduling event's own
    [sched] — one causal level deeper, disambiguating ties between
    lock-stepped streams.  {!schedule_at} uses
    [sched = now e, sched2 = sched_now e]; on a single engine both extra
    keys are monotone in [seq], so the order reduces to classic
    (time, seq) FIFO.  The sharded net uses explicit keys so a
    cross-region arrival sorts against local events exactly where the
    serial engine would have fired it.  No past-time check — the caller
    (the barrier loop) guarantees [time] is beyond every region's
    committed horizon. *)
val schedule_keyed :
  t -> time:float -> sched:float -> sched2:float -> (unit -> unit) -> event

(** [cancel ev] prevents a pending event from firing (idempotent; events
    that already ran are unaffected).  Cancelled events are purged from the
    heap in bulk once they outnumber the live ones, so long runs that
    cancel many timers (e.g. TCP retransmits) do not bloat the heap. *)
val cancel : event -> unit

(** [run e] processes events in timestamp order (FIFO among equal
    timestamps) until the queue empties or {!stop} is called. *)
val run : t -> unit

(** [run_until e t] processes events with timestamp [<= t], then sets the
    clock to [t]. *)
val run_until : t -> float -> unit

(** [run_before e t] processes events with timestamp strictly [< t] and
    leaves the clock on the last event run: the epoch half of
    {!run_until}, letting a barrier inject time-[t] events before the
    epoch containing [t] executes.  Use {!advance_clock} to commit the
    horizon afterwards. *)
val run_before : t -> float -> unit

(** Timestamp of the next live event, if any (cancelled events are
    skimmed).  Lets the sharded scheduler fast-forward idle regions. *)
val next_time : t -> float option

(** [advance_clock e t] moves the clock forward to [t] (never backward). *)
val advance_clock : t -> float -> unit

(** Determinism key ([sched]) of the event currently executing — the
    virtual time at which it was scheduled.  Meaningful only inside a
    callback; region trace buffers capture it to merge-sort records. *)
val sched_now : t -> float

(** Second-level key ([sched2]) of the event currently executing. *)
val sched2_now : t -> float

(** [set_context_sched e ~sched ~sched2] overrides the executing-context
    keys: subsequent {!schedule_at}/{!schedule_in} calls hand out
    [sched2 = sched], and {!sched_now}/{!sched2_now} read the pair.  The
    sharded barrier sets it before running an admin action, so events the
    action schedules (and records it emits) carry the key the serial
    engine would have given them. *)
val set_context_sched : t -> sched:float -> sched2:float -> unit

(** [stop e] makes {!run} return after the current callback. *)
val stop : t -> unit

(** [pending e] is the number of queued (uncancelled) events.  O(1): the
    engine counts cancellations instead of scanning the heap. *)
val pending : t -> int

(** [processed e] counts callbacks run so far (for bench reporting). *)
val processed : t -> int

(** [heap_peak e] is the high-watermark heap occupancy (queued events,
    including cancelled ones still awaiting purge) — an engine queue-depth
    gauge for the metrics registry. *)
val heap_peak : t -> int
