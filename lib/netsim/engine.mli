(** Discrete-event simulation engine: a monotone virtual clock and a binary
    heap of timestamped callbacks.  Replaces the wall-clock of the paper's
    Mininet emulation with a deterministic, reproducible timeline. *)

type t

(** A handle for cancelling a scheduled event. *)
type event

(** [create ()] makes an engine with the clock at [0.0]. *)
val create : unit -> t

(** [now e] is the current virtual time in seconds. *)
val now : t -> float

(** [schedule_at e t f] runs [f] at absolute time [t].
    @raise Invalid_argument if [t] is in the past. *)
val schedule_at : t -> float -> (unit -> unit) -> event

(** [schedule_in e dt f] runs [f] after [dt >= 0] seconds. *)
val schedule_in : t -> float -> (unit -> unit) -> event

(** [cancel ev] prevents a pending event from firing (idempotent; events
    that already ran are unaffected).  Cancelled events are purged from the
    heap in bulk once they outnumber the live ones, so long runs that
    cancel many timers (e.g. TCP retransmits) do not bloat the heap. *)
val cancel : event -> unit

(** [run e] processes events in timestamp order (FIFO among equal
    timestamps) until the queue empties or {!stop} is called. *)
val run : t -> unit

(** [run_until e t] processes events with timestamp [<= t], then sets the
    clock to [t]. *)
val run_until : t -> float -> unit

(** [stop e] makes {!run} return after the current callback. *)
val stop : t -> unit

(** [pending e] is the number of queued (uncancelled) events.  O(1): the
    engine counts cancellations instead of scanning the heap. *)
val pending : t -> int

(** [processed e] counts callbacks run so far (for bench reporting). *)
val processed : t -> int

(** [heap_peak e] is the high-watermark heap occupancy (queued events,
    including cancelled ones still awaiting purge) — an engine queue-depth
    gauge for the metrics registry. *)
val heap_peak : t -> int
