(** Simulated packets, carried as flat {!Wire.Flat} byte images.

    A packet handle wraps one fixed-size [Bytes.t] holding every header
    field (uid, src, dst, size, hops, reencoded, deflected, route-ID limbs);
    core switches read the route ID straight off the limb words via
    {!Kar.Route.cached_port_flat} — no record, no [Z.t], no allocation on
    the forwarding path.  [payload] is an extensible variant so higher
    layers (TCP, probe workloads) attach their own data without the
    simulator depending on them; [born] stays an exact float for latency
    stats.

    Handles are either {e unpooled} (from {!make}: one-shot, never
    recycled) or {e pooled} (from {!Pool.acquire}: recycled through a
    free list so the steady-state loop allocates zero minor words per
    packet).  The image's live bit tracks ownership: {!Pool.release} is a
    no-op on unpooled or already-released handles, so boundary code may
    release unconditionally. *)

module Z = Bignum.Z

type payload = ..

type payload += Raw (** contentless filler traffic *)

type t

(** The underlying flat image, for direct kernel access
    ({!Kar.Policy.computed_port_flat}, {!Kar.Route.cached_port_flat}). *)
val bytes : t -> Bytes.t

val uid : t -> int
val src : t -> Topo.Graph.node
val dst : t -> Topo.Graph.node
val size_bytes : t -> int

(** Materialises the route ID from the limb words (allocates; boundary use
    only — the data plane reads the image directly). *)
val route_id : t -> Z.t

(** Rewrite the route ID in place (edge re-encoding, ingress stamping). *)
val set_route_id : t -> Z.t -> unit

val deflected : t -> bool
val set_deflected : t -> bool -> unit
val hops : t -> int
val set_hops : t -> int -> unit
val reencoded : t -> int
val set_reencoded : t -> int -> unit
val payload : t -> payload
val set_payload : t -> payload -> unit

(** Creation time, for latency stats. *)
val born : t -> float

(** The image's live bit: true between stamp/acquire and pool release. *)
val live : t -> bool

(** Re-initialise every field of an existing handle in place.  Writes only
    into the byte image (plus the two non-image fields), so it allocates
    nothing when [born] is an already-boxed float and [payload] a constant
    constructor. *)
val stamp :
  t ->
  uid:int ->
  src:Topo.Graph.node ->
  dst:Topo.Graph.node ->
  size_bytes:int ->
  route_id:Z.t ->
  born:float ->
  payload ->
  unit

(** [make ~uid ~src ~dst ~size_bytes ~route_id ~born payload] builds a fresh
    unpooled packet (not yet injected). *)
val make :
  uid:int ->
  src:Topo.Graph.node ->
  dst:Topo.Graph.node ->
  size_bytes:int ->
  route_id:Z.t ->
  born:float ->
  payload ->
  t

(** Free-list pool of reusable packet buffers.  Counters are
    {!Kar_obs.Registry} cells ([netsim/pool-hit], [netsim/pool-grow],
    [netsim/pool-release]) registered on the caller's registry (or a
    private one), so pool health shows up in the unified metrics schema
    without any extra bookkeeping. *)
module Pool : sig
  type packet = t
  type t

  (** [create ?registry ()] makes an empty pool; its counters register on
      [registry] (a fresh private registry when omitted). *)
  val create : ?registry:Kar_obs.Registry.t -> unit -> t

  (** Pop a buffer from the free list (or allocate one on first use) and
      mark it live.  The image's other fields are stale — callers must
      {!stamp} before use. *)
  val acquire : t -> packet

  (** Return a packet to the free list.  No-op on unpooled handles and on
      packets already released (live bit guard), so releasing at every
      terminal point (drop, delivery) is safe even when paths overlap. *)
  val release : t -> packet -> unit

  (** Acquires served from the free list. *)
  val hits : t -> int

  (** Acquires that had to allocate a new buffer. *)
  val grows : t -> int

  (** Effective releases (double-release no-ops excluded). *)
  val releases : t -> int

  (** Pooled packets currently out (not on the free list). *)
  val in_flight : t -> int

  (** Buffers currently parked in the free list.  A sharded net sums
      this over its per-region pools to compute a pool-placement-
      independent in-flight figure. *)
  val free_count : t -> int
end

val pp : Format.formatter -> t -> unit
