(** Simulated packets.

    The route ID is the only header field KAR core switches read; edges may
    rewrite it (ingress stamping, stranded-packet re-encoding).  [payload]
    is an extensible variant so higher layers (TCP, probe workloads) attach
    their own data without the simulator depending on them. *)

module Z = Bignum.Z

type payload = ..

type payload += Raw (** contentless filler traffic *)

type t = {
  uid : int; (** unique per simulation, for tracing *)
  src : Topo.Graph.node; (** originating edge node *)
  dst : Topo.Graph.node; (** intended egress edge node *)
  size_bytes : int;
  mutable route_id : Z.t; (** KAR header; edges may rewrite *)
  mutable deflected : bool; (** set after the first deflection (HP state) *)
  mutable hops : int; (** switch traversals so far *)
  mutable reencoded : int; (** times an edge re-encoded this packet *)
  born : float; (** creation time, for latency stats *)
  payload : payload;
}

(** [make ~uid ~src ~dst ~size_bytes ~route_id ~born payload] builds a fresh
    packet (not yet injected). *)
val make :
  uid:int ->
  src:Topo.Graph.node ->
  dst:Topo.Graph.node ->
  size_bytes:int ->
  route_id:Z.t ->
  born:float ->
  payload ->
  t

val pp : Format.formatter -> t -> unit
