type t = {
  mutable arrivals : int list; (* reversed arrival order *)
  mutable received : int;
  mutable max_seen : int; (* largest sequence number so far *)
  mutable reordered : int;
  mutable extent_total : int;
  mutable max_extent : int;
}

let create () =
  {
    arrivals = [];
    received = 0;
    max_seen = min_int;
    reordered = 0;
    extent_total = 0;
    max_extent = 0;
  }

(* Lookback bound for extent computation; deflection walks displace packets
   by far less than this. *)
let extent_window = 4096

let observe t seq =
  t.received <- t.received + 1;
  if seq >= t.max_seen then begin
    t.arrivals <- seq :: t.arrivals;
    t.max_seen <- seq
  end
  else begin
    (* reordered: count earlier arrivals with larger sequence numbers (the
       RFC 4737 extent), walking the existing list without copying *)
    t.reordered <- t.reordered + 1;
    let extent = ref 0 in
    let rec walk remaining = function
      | [] -> ()
      | _ when remaining = 0 -> ()
      | other :: rest ->
        if other > seq then incr extent;
        walk (remaining - 1) rest
    in
    walk extent_window t.arrivals;
    t.arrivals <- seq :: t.arrivals;
    t.extent_total <- t.extent_total + !extent;
    if !extent > t.max_extent then t.max_extent <- !extent
  end

type metrics = {
  received : int;
  reordered : int;
  reordered_fraction : float;
  max_extent : int;
  mean_extent : float;
  max_late : int;
  buffer_packets : int;
}

let metrics t =
  (* displacement: compare arrival rank with send rank among received
     packets (losses removed by ranking the received set) *)
  let arrivals = Array.of_list (List.rev t.arrivals) in
  let by_seq = Array.copy arrivals in
  Array.sort Stdlib.compare by_seq;
  let send_rank = Hashtbl.create (Array.length by_seq) in
  Array.iteri (fun rank seq -> Hashtbl.replace send_rank seq rank) by_seq;
  let max_late = ref 0 in
  Array.iteri
    (fun arrival_rank seq ->
      let late = arrival_rank - Hashtbl.find send_rank seq in
      if late > !max_late then max_late := late)
    arrivals;
  {
    received = t.received;
    reordered = t.reordered;
    reordered_fraction =
      (if t.received = 0 then 0.0
       else float_of_int t.reordered /. float_of_int t.received);
    max_extent = t.max_extent;
    mean_extent =
      (if t.reordered = 0 then 0.0
       else float_of_int t.extent_total /. float_of_int t.reordered);
    max_late = !max_late;
    buffer_packets = t.max_extent;
  }

let pp_metrics ppf m =
  Format.fprintf ppf
    "%d received, %.2f%% reordered, extent mean %.1f / max %d, max lateness %d"
    m.received
    (100.0 *. m.reordered_fraction)
    m.mean_extent m.max_extent m.max_late
