(** The simulated network: links with rate/delay/queues, link failures, and
    per-node packet handlers.

    Each undirected {!Topo.Graph.link} is simulated as two independent
    directed channels.  A channel transmits one packet at a time
    (store-and-forward: serialisation at [rate_bps], then propagation after
    [delay_s]) and queues up to [queue_capacity_bytes] behind the
    transmitter, dropping from the tail beyond that.

    Node behaviour is pluggable: {!set_node_handler} assigns the callback
    run when a packet arrives at a node.  The KAR switch behaviour lives in
    {!Karnet}; hosts are assigned by the workload/TCP layers. *)

type t

(** The simulator's log source (["kar.netsim"]): link failures and repairs
    at [Info], per-packet drops at [Debug].  Silent unless the application
    sets up a [Logs] reporter. *)
val log_src : Logs.src

(** Reasons for packet loss, tallied in {!stats}. *)
type drop_reason =
  | Link_down (** sent into a failed link, or queued there when it failed *)
  | Queue_full
  | No_route (** the forwarding decision was [Drop] *)
  | Ttl_exceeded

(** An immutable snapshot of the [netsim/*] registry counters (the live
    values are {!Kar_obs.Registry} cells; see {!registry}). *)
type stats = {
  injected : int;
  delivered : int; (** packets consumed by a host handler *)
  dropped_link_down : int;
  dropped_queue_full : int;
  dropped_no_route : int;
  dropped_ttl : int;
  total_switch_hops : int; (** forwarding decisions taken at core switches *)
  deflections : int; (** forwarding decisions that deflected *)
  reencodes : int; (** stranded packets re-encoded at an edge *)
}

(** [handler net node packet ~in_port] consumes a packet arriving at
    [node] via [in_port] ([-1] for locally injected packets). *)
type handler = t -> Topo.Graph.node -> Packet.t -> in_port:int -> unit

(** [create ~graph ~engine ()] builds an idle network; all links start up.
    [queue_capacity_bytes] defaults to 1 MiB per channel (Mininet-like deep
    queues); [ttl] (maximum switch hops per packet) defaults to 128.
    [detection_delay_s] (default 0: oracle detection, the paper's implicit
    assumption) delays the moment switches {e observe} a liveness change:
    until then they keep forwarding into a dead link and those packets are
    lost — the loss-of-signal / BFD window of a real deployment.
    [registry] is the metrics registry the network's counters, gauges and
    engine probes register on (a fresh private registry when omitted). *)
val create :
  graph:Topo.Graph.t ->
  engine:Engine.t ->
  ?registry:Kar_obs.Registry.t ->
  ?queue_capacity_bytes:int ->
  ?ttl:int ->
  ?detection_delay_s:float ->
  unit ->
  t

(** {2 Sharded (conservative parallel) simulation}

    [create_partitioned ~graph ~partition ()] builds a network whose
    switches are split across [partition.n_regions] regions.  Each region
    owns a private event heap, metrics shard, packet pool and the
    [busy_until] state of the channels transmitting out of its nodes, and
    is simulated on its own domain; {!run_until} advances all regions in
    lockstep epochs of width [partition.lookahead] (the minimum
    propagation delay across cut links), exchanging boundary packets
    through per-region-pair mailboxes drained in a canonical order at
    each barrier.  Failures of cut links (and anything else registered
    with {!schedule_admin}) execute single-threaded at barriers.

    A 1-region partition degenerates to exactly the serial structure (no
    barriers, no buffering) with a private engine.

    Determinism: a sharded run produces byte-identical traces and
    equivalent [netsim/*] flow counters at any region count.  Metrics
    that describe the {e execution} rather than the {e simulated network}
    — [engine/*] probes, [netsim/epochs], [netsim/region-*],
    [netsim/pool-hit]/[netsim/pool-grow], [topo/cut-edges-ppm] — depend
    on the partition by nature and are excluded from that guarantee
    ([netsim/pool-release] and [netsim/queue-peak-bytes] remain
    invariant).

    @raise Invalid_argument if the partition does not match [graph], or
    if (with 2+ regions) a cut link has a non-positive delay — a
    zero-delay cut would force zero-width epochs and deadlock the
    barrier. *)
val create_partitioned :
  graph:Topo.Graph.t ->
  partition:Topo.Partition.t ->
  ?registry:Kar_obs.Registry.t ->
  ?queue_capacity_bytes:int ->
  ?ttl:int ->
  ?detection_delay_s:float ->
  unit ->
  t

(** [run_until net t] advances the simulation to virtual time [t]: on a
    solo net, exactly [Engine.run_until]; on a sharded net, the epoch
    barrier loop (spinning up a {!Util.Pool.Team} of
    [min regions (Util.Pool.current_jobs ())] domains for the duration of
    the call).  After it returns, every region's metrics shard has been
    drained into {!registry}. *)
val run_until : t -> float -> unit

(** Region count (1 for solo nets). *)
val n_regions : t -> int

(** [region_of net node] is the region owning [node] (0 for solo nets). *)
val region_of : t -> Topo.Graph.node -> int

(** The epoch width: minimum cut-link delay ([infinity] for solo nets). *)
val lookahead : t -> float

(** [schedule_admin net ~at f] runs [f] at virtual time [at] in the
    global (single-threaded) context: at an epoch barrier on sharded
    nets, as an ordinary engine event on solo nets.  All regions' clocks
    read exactly [at] while [f] runs, so [f] may observe or mutate
    cross-region state consistently. *)
val schedule_admin : t -> at:float -> (unit -> unit) -> unit

(** [schedule_at_node net node ~at f] schedules [f] on the region that
    owns [node] — required for setup-time code entering a sharded
    timeline (e.g. a TCP flow kickoff at its source host).  On solo nets
    with [at] not in the future, [f] runs immediately (the historical
    behaviour). *)
val schedule_at_node :
  t -> Topo.Graph.node -> at:float -> (unit -> unit) -> unit

(** Attach a span ring: sharded runs record one {!Kar_obs.Span.Epoch}
    span per barrier interval ([detail] = epoch index). *)
val set_spans : t -> Kar_obs.Span.t option -> unit

val graph : t -> Topo.Graph.t

(** The engine of the calling context's region: the net's single engine
    on solo nets; inside a sharded run, the engine of the region whose
    event is currently executing (handlers use it for [now] and local
    timer scheduling, exactly as in the serial simulator). *)
val engine : t -> Engine.t

(** The network's metrics registry: [netsim/*] counters (injected,
    delivered, per-reason drops, switch-hops, deflections, reencodes,
    pool-hit/grow/release), the [netsim/queue-peak-bytes] high-watermark
    gauge, and [engine/*] probes (events, pending, heap-peak). *)
val registry : t -> Kar_obs.Registry.t

(** [stats net] snapshots the registry counters into a plain record. *)
val stats : t -> stats

val ttl : t -> int

(** [set_node_handler net node h] routes arriving packets at [node] to
    [h].  Nodes without a handler count arrivals as delivered if the packet
    is addressed to them and as [No_route] drops otherwise. *)
val set_node_handler : t -> Topo.Graph.node -> handler -> unit

(** [send net ~from_node ~port packet] enqueues [packet] on the directed
    channel out of [from_node]'s [port].  If the link is down the packet is
    dropped and counted. *)
val send : t -> from_node:Topo.Graph.node -> port:int -> Packet.t -> unit

(** [inject net ~at packet] delivers [packet] to [at]'s handler immediately
    (in-node injection from a host stack; [in_port = -1]). *)
val inject : t -> at:Topo.Graph.node -> Packet.t -> unit

(** [drop net packet reason] records a loss (exposed for node handlers).
    [?at]/[?in_port] locate the loss for the flight recorder (omitted =
    on-wire / unknown). *)
val drop :
  ?at:Topo.Graph.node -> ?in_port:int -> t -> Packet.t -> drop_reason -> unit

(** [delivered net packet] records a completed delivery (for host
    handlers).  [?in_port] is the arrival port, for the flight recorder. *)
val delivered : ?in_port:int -> t -> Packet.t -> unit

(** [count_deflection net] bumps the deflection counter (used by Karnet). *)
val count_deflection : t -> unit

val count_reencode : t -> unit

(** [count_hop net] bumps the switch-hop counter — one forwarding decision
    taken at a core switch (used by Karnet). *)
val count_hop : t -> unit

(** [link_up net id] is the current liveness of link [id]. *)
val link_up : t -> Topo.Graph.link_id -> bool

(** [fail_link net id] takes the link down immediately, discarding both
    channels' queues and any packet mid-flight on them. *)
val fail_link : t -> Topo.Graph.link_id -> unit

(** [repair_link net id] restores the link. *)
val repair_link : t -> Topo.Graph.link_id -> unit

(** [schedule_failure net id ~at ~duration] arranges a failure window. *)
val schedule_failure : t -> Topo.Graph.link_id -> at:float -> duration:float -> unit

(** [fresh_uid net] allocates a packet uid. *)
val fresh_uid : t -> int

(** {2 Packet buffer pool}

    The network owns a free-list pool of flat packet buffers.  [alloc]
    recycles a released buffer (or grows the pool on first use), stamps a
    fresh uid and the current time, and returns a live packet — the
    steady-state injection path allocates zero minor words once the pool is
    warm.  Packets reach the pool again at every terminal point: {!drop}
    releases internally, handler-less delivery releases after counting, and
    {!Karnet} edge handlers release after the receive callback.  [free] is
    for custom handlers that consume packets themselves; it is a no-op on
    unpooled ({!Packet.make}) handles and on already-released packets, so
    calling it defensively is safe. *)

val alloc :
  t ->
  src:Topo.Graph.node ->
  dst:Topo.Graph.node ->
  size_bytes:int ->
  route_id:Bignum.Z.t ->
  Packet.payload ->
  Packet.t

val free : t -> Packet.t -> unit

(** The network's main buffer pool (counter accessors: {!Packet.Pool.hits},
    {!Packet.Pool.grows}, {!Packet.Pool.in_flight},
    {!Packet.Pool.releases}).  On a sharded net the counters aggregate all
    region pools once {!run_until} has drained the shards; use
    {!pool_in_flight} for the in-flight figure. *)
val pool : t -> Packet.Pool.t

(** Packets currently alive across every region pool (equals
    [Packet.Pool.in_flight (pool net)] on solo nets). *)
val pool_in_flight : t -> int

(** [port_states net node] is the current {!Kar.Policy.port_state} array of
    [node] (liveness from the failure state, orientation from the graph). *)
val port_states : t -> Topo.Graph.node -> Kar.Policy.port_state array

(** {2 Flight recorder}

    Attaching a {!Trace.Recorder.t} makes the network emit a
    {!Trace.Event.t} per packet lifecycle step (inject, forwarding
    decision, re-encode, deliver, drop) and maintain per-switch
    deflection/drive tallies.  Detached (the default) the data plane does
    no event work at all. *)

val set_recorder : t -> Trace.Recorder.t option -> unit
val recorder : t -> Trace.Recorder.t option

(** [record_decision net ~switch ~in_port ~out_port packet action] appends
    a flight-recorder event through the network's ordering machinery: a
    direct append on solo nets, the region's canonical-merge buffer on
    sharded nets.  {!Karnet} uses it for forwarding decisions and
    re-encodes; handlers must never call {!Trace.Recorder.record} on the
    attached recorder themselves, which would break sharded trace order. *)
val record_decision :
  t ->
  switch:int ->
  in_port:int ->
  out_port:int ->
  Packet.t ->
  Trace.Event.action ->
  unit

(** [note_deflect net node] / [note_drive net node] bump the per-switch
    observability tallies (called by {!Karnet} while a recorder is
    attached). *)
val note_deflect : t -> Topo.Graph.node -> unit

val note_drive : t -> Topo.Graph.node -> unit

(** Per-switch deflections/drives observed while a recorder was attached. *)
val deflections_at : t -> Topo.Graph.node -> int

val drives_at : t -> Topo.Graph.node -> int

(** [queue_drops_on net link] — tail drops on [link] (either direction),
    maintained unconditionally. *)
val queue_drops_on : t -> Topo.Graph.link_id -> int
