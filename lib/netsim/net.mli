(** The simulated network: links with rate/delay/queues, link failures, and
    per-node packet handlers.

    Each undirected {!Topo.Graph.link} is simulated as two independent
    directed channels.  A channel transmits one packet at a time
    (store-and-forward: serialisation at [rate_bps], then propagation after
    [delay_s]) and queues up to [queue_capacity_bytes] behind the
    transmitter, dropping from the tail beyond that.

    Node behaviour is pluggable: {!set_node_handler} assigns the callback
    run when a packet arrives at a node.  The KAR switch behaviour lives in
    {!Karnet}; hosts are assigned by the workload/TCP layers. *)

type t

(** The simulator's log source (["kar.netsim"]): link failures and repairs
    at [Info], per-packet drops at [Debug].  Silent unless the application
    sets up a [Logs] reporter. *)
val log_src : Logs.src

(** Reasons for packet loss, tallied in {!stats}. *)
type drop_reason =
  | Link_down (** sent into a failed link, or queued there when it failed *)
  | Queue_full
  | No_route (** the forwarding decision was [Drop] *)
  | Ttl_exceeded

(** An immutable snapshot of the [netsim/*] registry counters (the live
    values are {!Kar_obs.Registry} cells; see {!registry}). *)
type stats = {
  injected : int;
  delivered : int; (** packets consumed by a host handler *)
  dropped_link_down : int;
  dropped_queue_full : int;
  dropped_no_route : int;
  dropped_ttl : int;
  total_switch_hops : int; (** forwarding decisions taken at core switches *)
  deflections : int; (** forwarding decisions that deflected *)
  reencodes : int; (** stranded packets re-encoded at an edge *)
}

(** [handler net node packet ~in_port] consumes a packet arriving at
    [node] via [in_port] ([-1] for locally injected packets). *)
type handler = t -> Topo.Graph.node -> Packet.t -> in_port:int -> unit

(** [create ~graph ~engine ()] builds an idle network; all links start up.
    [queue_capacity_bytes] defaults to 1 MiB per channel (Mininet-like deep
    queues); [ttl] (maximum switch hops per packet) defaults to 128.
    [detection_delay_s] (default 0: oracle detection, the paper's implicit
    assumption) delays the moment switches {e observe} a liveness change:
    until then they keep forwarding into a dead link and those packets are
    lost — the loss-of-signal / BFD window of a real deployment.
    [registry] is the metrics registry the network's counters, gauges and
    engine probes register on (a fresh private registry when omitted). *)
val create :
  graph:Topo.Graph.t ->
  engine:Engine.t ->
  ?registry:Kar_obs.Registry.t ->
  ?queue_capacity_bytes:int ->
  ?ttl:int ->
  ?detection_delay_s:float ->
  unit ->
  t

val graph : t -> Topo.Graph.t
val engine : t -> Engine.t

(** The network's metrics registry: [netsim/*] counters (injected,
    delivered, per-reason drops, switch-hops, deflections, reencodes,
    pool-hit/grow/release), the [netsim/queue-peak-bytes] high-watermark
    gauge, and [engine/*] probes (events, pending, heap-peak). *)
val registry : t -> Kar_obs.Registry.t

(** [stats net] snapshots the registry counters into a plain record. *)
val stats : t -> stats

val ttl : t -> int

(** [set_node_handler net node h] routes arriving packets at [node] to
    [h].  Nodes without a handler count arrivals as delivered if the packet
    is addressed to them and as [No_route] drops otherwise. *)
val set_node_handler : t -> Topo.Graph.node -> handler -> unit

(** [send net ~from_node ~port packet] enqueues [packet] on the directed
    channel out of [from_node]'s [port].  If the link is down the packet is
    dropped and counted. *)
val send : t -> from_node:Topo.Graph.node -> port:int -> Packet.t -> unit

(** [inject net ~at packet] delivers [packet] to [at]'s handler immediately
    (in-node injection from a host stack; [in_port = -1]). *)
val inject : t -> at:Topo.Graph.node -> Packet.t -> unit

(** [drop net packet reason] records a loss (exposed for node handlers).
    [?at]/[?in_port] locate the loss for the flight recorder (omitted =
    on-wire / unknown). *)
val drop :
  ?at:Topo.Graph.node -> ?in_port:int -> t -> Packet.t -> drop_reason -> unit

(** [delivered net packet] records a completed delivery (for host
    handlers).  [?in_port] is the arrival port, for the flight recorder. *)
val delivered : ?in_port:int -> t -> Packet.t -> unit

(** [count_deflection net] bumps the deflection counter (used by Karnet). *)
val count_deflection : t -> unit

val count_reencode : t -> unit

(** [count_hop net] bumps the switch-hop counter — one forwarding decision
    taken at a core switch (used by Karnet). *)
val count_hop : t -> unit

(** [link_up net id] is the current liveness of link [id]. *)
val link_up : t -> Topo.Graph.link_id -> bool

(** [fail_link net id] takes the link down immediately, discarding both
    channels' queues and any packet mid-flight on them. *)
val fail_link : t -> Topo.Graph.link_id -> unit

(** [repair_link net id] restores the link. *)
val repair_link : t -> Topo.Graph.link_id -> unit

(** [schedule_failure net id ~at ~duration] arranges a failure window. *)
val schedule_failure : t -> Topo.Graph.link_id -> at:float -> duration:float -> unit

(** [fresh_uid net] allocates a packet uid. *)
val fresh_uid : t -> int

(** {2 Packet buffer pool}

    The network owns a free-list pool of flat packet buffers.  [alloc]
    recycles a released buffer (or grows the pool on first use), stamps a
    fresh uid and the current time, and returns a live packet — the
    steady-state injection path allocates zero minor words once the pool is
    warm.  Packets reach the pool again at every terminal point: {!drop}
    releases internally, handler-less delivery releases after counting, and
    {!Karnet} edge handlers release after the receive callback.  [free] is
    for custom handlers that consume packets themselves; it is a no-op on
    unpooled ({!Packet.make}) handles and on already-released packets, so
    calling it defensively is safe. *)

val alloc :
  t ->
  src:Topo.Graph.node ->
  dst:Topo.Graph.node ->
  size_bytes:int ->
  route_id:Bignum.Z.t ->
  Packet.payload ->
  Packet.t

val free : t -> Packet.t -> unit

(** The network's buffer pool (counter accessors: {!Packet.Pool.hits},
    {!Packet.Pool.grows}, {!Packet.Pool.in_flight},
    {!Packet.Pool.releases}). *)
val pool : t -> Packet.Pool.t

(** [port_states net node] is the current {!Kar.Policy.port_state} array of
    [node] (liveness from the failure state, orientation from the graph). *)
val port_states : t -> Topo.Graph.node -> Kar.Policy.port_state array

(** {2 Flight recorder}

    Attaching a {!Trace.Recorder.t} makes the network emit a
    {!Trace.Event.t} per packet lifecycle step (inject, forwarding
    decision, re-encode, deliver, drop) and maintain per-switch
    deflection/drive tallies.  Detached (the default) the data plane does
    no event work at all. *)

val set_recorder : t -> Trace.Recorder.t option -> unit
val recorder : t -> Trace.Recorder.t option

(** [note_deflect net node] / [note_drive net node] bump the per-switch
    observability tallies (called by {!Karnet} while a recorder is
    attached). *)
val note_deflect : t -> Topo.Graph.node -> unit

val note_drive : t -> Topo.Graph.node -> unit

(** Per-switch deflections/drives observed while a recorder was attached. *)
val deflections_at : t -> Topo.Graph.node -> int

val drives_at : t -> Topo.Graph.node -> int

(** [queue_drops_on net link] — tail drops on [link] (either direction),
    maintained unconditionally. *)
val queue_drops_on : t -> Topo.Graph.link_id -> int
