module Graph = Topo.Graph

let log_src = Logs.Src.create "kar.netsim" ~doc:"KAR network simulator events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type drop_reason =
  | Link_down
  | Queue_full
  | No_route
  | Ttl_exceeded

module Registry = Kar_obs.Registry

(* Immutable end-of-run snapshot over the registry counters; the live
   values are ordinary [netsim/*] registry cells. *)
type stats = {
  injected : int;
  delivered : int;
  dropped_link_down : int;
  dropped_queue_full : int;
  dropped_no_route : int;
  dropped_ttl : int;
  total_switch_hops : int;
  deflections : int;
  reencodes : int;
}

(* Handles for every hot-path counter: one unsafe int-array poke each, so
   the forwarding loop keeps its zero-minor-words property. *)
type counters = {
  c_injected : Registry.counter;
  c_delivered : Registry.counter;
  c_drop_link_down : Registry.counter;
  c_drop_queue_full : Registry.counter;
  c_drop_no_route : Registry.counter;
  c_drop_ttl : Registry.counter;
  c_switch_hops : Registry.counter;
  c_deflections : Registry.counter;
  c_reencodes : Registry.counter;
  g_queue_peak : Registry.gauge;
}

(* One direction of a link: a serialising transmitter behind a byte-bounded
   FIFO.  [dst] is the receiving node and [dst_port] its input port.  The
   transmitter is modelled by a free-at time ([busy_until], kept in the
   net-level float array so updating it per hop stays unboxed) instead of a
   busy flag + completion event: an idle channel forwards a packet with a
   single merged serialisation+propagation event, and only a backlogged
   channel schedules wake events to drain its queue. *)
type channel = {
  link_id : Graph.link_id;
  idx : int; (* index into [busy_until]: 2*link_id + direction *)
  dst : Graph.node;
  dst_port : int;
  rate_bps : float;
  delay_s : float;
  queue : Packet.t Queue.t;
  mutable queued_bytes : int;
  mutable wake_scheduled : bool;
  mutable epoch : int; (* bumped on failure: invalidates in-flight events *)
}

type t = {
  graph : Graph.t;
  engine : Engine.t;
  queue_capacity_bytes : int;
  ttl : int;
  detection_delay_s : float;
  up : bool array; (* per link *)
  busy_until : float array; (* per channel; unboxed float array *)
  channels : channel array array; (* channels.(link).(dir) *)
  out_channel : channel array array; (* out_channel.(node).(port) *)
  handlers : handler option array;
  port_cache : Kar.Policy.port_state array array;
  registry : Registry.t;
  counters : counters;
  pool : Packet.Pool.t;
  mutable next_uid : int;
  (* Observability: [None] recorder (the default) keeps the hot path
     event-free; per-switch deflect/drive tallies are only maintained while
     a recorder is attached (classification costs an extra modulo). *)
  mutable recorder : Trace.Recorder.t option;
  switch_deflections : int array; (* per node *)
  switch_drives : int array; (* per node *)
  link_queue_drops : int array; (* per link, always maintained *)
}

and handler = t -> Graph.node -> Packet.t -> in_port:int -> unit

let make_counters r =
  (* explicit registration order: it is the snapshot column order *)
  let c_injected = Registry.counter r "netsim/injected" in
  let c_delivered = Registry.counter r "netsim/delivered" in
  let c_drop_link_down = Registry.counter r "netsim/drop-link-down" in
  let c_drop_queue_full = Registry.counter r "netsim/drop-queue-full" in
  let c_drop_no_route = Registry.counter r "netsim/drop-no-route" in
  let c_drop_ttl = Registry.counter r "netsim/drop-ttl" in
  let c_switch_hops = Registry.counter r "netsim/switch-hops" in
  let c_deflections = Registry.counter r "netsim/deflections" in
  let c_reencodes = Registry.counter r "netsim/reencodes" in
  let g_queue_peak = Registry.gauge r "netsim/queue-peak-bytes" in
  {
    c_injected;
    c_delivered;
    c_drop_link_down;
    c_drop_queue_full;
    c_drop_no_route;
    c_drop_ttl;
    c_switch_hops;
    c_deflections;
    c_reencodes;
    g_queue_peak;
  }

let create ~graph ~engine ?registry ?(queue_capacity_bytes = 1_048_576)
    ?(ttl = 128) ?(detection_delay_s = 0.0) () =
  let n_links = Graph.n_links graph in
  let channel_of link dir =
    let far = if dir = 0 then link.Graph.ep1 else link.Graph.ep0 in
    {
      link_id = link.Graph.id;
      idx = (2 * link.Graph.id) + dir;
      dst = far.Graph.node;
      dst_port = far.Graph.port;
      rate_bps = link.Graph.rate_bps;
      delay_s = link.Graph.delay_s;
      queue = Queue.create ();
      queued_bytes = 0;
      wake_scheduled = false;
      epoch = 0;
    }
  in
  let channels =
    Array.init n_links (fun id ->
        let link = Graph.link graph id in
        [| channel_of link 0; channel_of link 1 |])
  in
  let out_channel =
    Array.init (Graph.n_nodes graph) (fun v ->
        Array.init (Graph.degree graph v) (fun p ->
            let link = Graph.link_at graph v p in
            let dir = if link.Graph.ep0.node = v then 0 else 1 in
            channels.(link.Graph.id).(dir)))
  in
  let port_cache =
    Array.init (Graph.n_nodes graph) (fun v ->
        Array.init (Graph.degree graph v) (fun p ->
            let link = Graph.link_at graph v p in
            let far = (Graph.other_end link v).Graph.node in
            { Kar.Policy.up = true; to_host = not (Graph.is_core graph far) }))
  in
  let registry =
    match registry with Some r -> r | None -> Registry.create ()
  in
  Registry.probe registry "engine/events" (fun () -> Engine.processed engine);
  Registry.probe registry "engine/pending" (fun () -> Engine.pending engine);
  Registry.probe registry "engine/heap-peak" (fun () -> Engine.heap_peak engine);
  let counters = make_counters registry in
  let pool = Packet.Pool.create ~registry () in
  {
    graph;
    engine;
    queue_capacity_bytes;
    ttl;
    detection_delay_s;
    up = Array.make n_links true;
    busy_until = Array.make (2 * n_links) 0.0;
    channels;
    out_channel;
    handlers = Array.make (Graph.n_nodes graph) None;
    port_cache;
    registry;
    counters;
    pool;
    next_uid = 0;
    recorder = None;
    switch_deflections = Array.make (Graph.n_nodes graph) 0;
    switch_drives = Array.make (Graph.n_nodes graph) 0;
    link_queue_drops = Array.make n_links 0;
  }

let graph net = net.graph
let engine net = net.engine
let registry net = net.registry

let stats net =
  let c = net.counters in
  {
    injected = Registry.value c.c_injected;
    delivered = Registry.value c.c_delivered;
    dropped_link_down = Registry.value c.c_drop_link_down;
    dropped_queue_full = Registry.value c.c_drop_queue_full;
    dropped_no_route = Registry.value c.c_drop_no_route;
    dropped_ttl = Registry.value c.c_drop_ttl;
    total_switch_hops = Registry.value c.c_switch_hops;
    deflections = Registry.value c.c_deflections;
    reencodes = Registry.value c.c_reencodes;
  }

let ttl net = net.ttl

let set_recorder net r = net.recorder <- r
let recorder net = net.recorder
let note_deflect net v = net.switch_deflections.(v) <- net.switch_deflections.(v) + 1
let note_drive net v = net.switch_drives.(v) <- net.switch_drives.(v) + 1
let deflections_at net v = net.switch_deflections.(v)
let drives_at net v = net.switch_drives.(v)
let queue_drops_on net id = net.link_queue_drops.(id)

let reason_slug = function
  | Link_down -> "link_down"
  | Queue_full -> "queue_full"
  | No_route -> "no_route"
  | Ttl_exceeded -> "ttl"

let record_event net ~switch ~in_port ~out_port (packet : Packet.t) action =
  match net.recorder with
  | None -> ()
  | Some r ->
    ignore
      (Trace.Recorder.record r ~vtime:(Engine.now net.engine)
         ~uid:(Packet.uid packet) ~switch ~in_port ~out_port
         ~ttl:(net.ttl - Packet.hops packet) action)

(* Drops are terminal: the packet goes back to the pool (a no-op for
   unpooled handles), so every loss path recycles its buffer. *)
let drop ?at ?(in_port = -1) net (packet : Packet.t) reason =
  Log.debug (fun m ->
      m "t=%.6f drop %a (%s)" (Engine.now net.engine) Packet.pp packet
        (match reason with
         | Link_down -> "link down"
         | Queue_full -> "queue full"
         | No_route -> "no route"
         | Ttl_exceeded -> "ttl"));
  (if net.recorder <> None then
     let switch = match at with Some v -> Graph.label net.graph v | None -> -1 in
     record_event net ~switch ~in_port ~out_port:(-1) packet
       (Trace.Event.Drop (reason_slug reason)));
  let c = net.counters in
  (match reason with
   | Link_down -> Registry.incr c.c_drop_link_down
   | Queue_full -> Registry.incr c.c_drop_queue_full
   | No_route -> Registry.incr c.c_drop_no_route
   | Ttl_exceeded -> Registry.incr c.c_drop_ttl);
  Packet.Pool.release net.pool packet

let delivered ?(in_port = -1) net (packet : Packet.t) =
  record_event net
    ~switch:(Graph.label net.graph (Packet.dst packet))
    ~in_port ~out_port:(-1) packet Trace.Event.Deliver;
  Registry.incr net.counters.c_delivered

let count_deflection net = Registry.incr net.counters.c_deflections
let count_reencode net = Registry.incr net.counters.c_reencodes
let count_hop net = Registry.incr net.counters.c_switch_hops

let set_node_handler net node h = net.handlers.(node) <- Some h

let fresh_uid net =
  let uid = net.next_uid in
  net.next_uid <- uid + 1;
  uid

let link_up net id = net.up.(id)

let alloc net ~src ~dst ~size_bytes ~route_id payload =
  let p = Packet.Pool.acquire net.pool in
  Packet.stamp p ~uid:(fresh_uid net) ~src ~dst ~size_bytes ~route_id
    ~born:(Engine.now net.engine) payload;
  p

let free net p = Packet.Pool.release net.pool p
let pool net = net.pool

let deliver net node packet ~in_port =
  match net.handlers.(node) with
  | Some h -> h net node packet ~in_port
  | None ->
    if Packet.dst packet = node then begin
      delivered ~in_port net packet;
      Packet.Pool.release net.pool packet
    end
    else drop ~at:node ~in_port net packet No_route

(* Put a packet on the wire of an idle channel: one merged event covers
   serialisation and propagation (the transmitter frees at [busy_until];
   the packet arrives [delay_s] later).  A failure during either phase is
   caught by the epoch check when the event fires. *)
let transmit net ch packet =
  let tx_time = float_of_int (Packet.size_bytes packet * 8) /. ch.rate_bps in
  net.busy_until.(ch.idx) <- Engine.now net.engine +. tx_time;
  let epoch = ch.epoch in
  ignore
    (Engine.schedule_in net.engine (tx_time +. ch.delay_s) (fun () ->
         if ch.epoch = epoch then deliver net ch.dst packet ~in_port:ch.dst_port
         else drop net packet Link_down))

(* Backlogged channels drain via wake events at the transmitter's free
   time.  [wake_scheduled] dedups the common case; stray extra wakes (after
   a failure reset the flag's event) are harmless because service is guarded
   by [busy_until] and FIFO order by the single queue. *)
let rec wake net ch () =
  ch.wake_scheduled <- false;
  if
    net.up.(ch.link_id)
    && (not (Queue.is_empty ch.queue))
    && Engine.now net.engine >= net.busy_until.(ch.idx)
  then begin
    let packet = Queue.pop ch.queue in
    ch.queued_bytes <- ch.queued_bytes - Packet.size_bytes packet;
    transmit net ch packet
  end;
  schedule_wake net ch

and schedule_wake net ch =
  if (not ch.wake_scheduled) && (not (Queue.is_empty ch.queue)) && net.up.(ch.link_id)
  then begin
    ch.wake_scheduled <- true;
    let now = Engine.now net.engine in
    let t = net.busy_until.(ch.idx) in
    ignore (Engine.schedule_at net.engine (if t > now then t else now) (wake net ch))
  end

let send net ~from_node ~port packet =
  let ch = net.out_channel.(from_node).(port) in
  if not net.up.(ch.link_id) then drop ~at:from_node net packet Link_down
  else if ch.queued_bytes + Packet.size_bytes packet > net.queue_capacity_bytes
  then begin
    net.link_queue_drops.(ch.link_id) <- net.link_queue_drops.(ch.link_id) + 1;
    drop ~at:from_node net packet Queue_full
  end
  else if Queue.is_empty ch.queue && Engine.now net.engine >= net.busy_until.(ch.idx)
  then transmit net ch packet
  else begin
    Queue.push packet ch.queue;
    ch.queued_bytes <- ch.queued_bytes + Packet.size_bytes packet;
    Registry.set_max net.counters.g_queue_peak ch.queued_bytes;
    schedule_wake net ch
  end

let inject net ~at packet =
  Registry.incr net.counters.c_injected;
  record_event net ~switch:(Graph.label net.graph at) ~in_port:(-1)
    ~out_port:(-1) packet Trace.Event.Inject;
  deliver net at packet ~in_port:(-1)

let set_cached_up net id value =
  let link = Graph.link net.graph id in
  List.iter
    (fun ep ->
      let states = net.port_cache.(ep.Graph.node) in
      states.(ep.Graph.port) <- { (states.(ep.Graph.port)) with Kar.Policy.up = value })
    [ link.Graph.ep0; link.Graph.ep1 ]

(* Liveness as the data plane *sees* it lags physical state by the
   detection delay (loss-of-signal / BFD time): until detection, switches
   keep selecting the dead port and those packets black-hole. *)
let schedule_detection net id =
  if net.detection_delay_s <= 0.0 then set_cached_up net id net.up.(id)
  else
    ignore
      (Engine.schedule_in net.engine net.detection_delay_s (fun () ->
           (* apply whatever the physical state is at detection time *)
           set_cached_up net id net.up.(id)))

let fail_link net id =
  if net.up.(id) then begin
    Log.info (fun m ->
        let l = Graph.link net.graph id in
        m "t=%.6f link %d (SW%d-SW%d) failed" (Engine.now net.engine) id
          (Graph.label net.graph l.Graph.ep0.Graph.node)
          (Graph.label net.graph l.Graph.ep1.Graph.node));
    net.up.(id) <- false;
    schedule_detection net id;
    Array.iter
      (fun ch ->
        ch.epoch <- ch.epoch + 1;
        net.busy_until.(ch.idx) <- 0.0;
        Queue.iter (fun p -> drop net p Link_down) ch.queue;
        Queue.clear ch.queue;
        ch.queued_bytes <- 0)
      net.channels.(id)
  end

let repair_link net id =
  if not net.up.(id) then begin
    Log.info (fun m -> m "t=%.6f link %d repaired" (Engine.now net.engine) id);
    net.up.(id) <- true;
    schedule_detection net id;
    Array.iter (fun ch -> schedule_wake net ch) net.channels.(id)
  end

let schedule_failure net id ~at ~duration =
  ignore (Engine.schedule_at net.engine at (fun () -> fail_link net id));
  ignore
    (Engine.schedule_at net.engine (at +. duration) (fun () -> repair_link net id))

let port_states net node = net.port_cache.(node)
