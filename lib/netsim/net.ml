module Graph = Topo.Graph

let log_src = Logs.Src.create "kar.netsim" ~doc:"KAR network simulator events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type drop_reason =
  | Link_down
  | Queue_full
  | No_route
  | Ttl_exceeded

module Registry = Kar_obs.Registry

(* Immutable end-of-run snapshot over the registry counters; the live
   values are ordinary [netsim/*] registry cells. *)
type stats = {
  injected : int;
  delivered : int;
  dropped_link_down : int;
  dropped_queue_full : int;
  dropped_no_route : int;
  dropped_ttl : int;
  total_switch_hops : int;
  deflections : int;
  reencodes : int;
}

(* Handles for every hot-path counter: one unsafe int-array poke each, so
   the forwarding loop keeps its zero-minor-words property. *)
type counters = {
  c_injected : Registry.counter;
  c_delivered : Registry.counter;
  c_drop_link_down : Registry.counter;
  c_drop_queue_full : Registry.counter;
  c_drop_no_route : Registry.counter;
  c_drop_ttl : Registry.counter;
  c_switch_hops : Registry.counter;
  c_deflections : Registry.counter;
  c_reencodes : Registry.counter;
  g_queue_peak : Registry.gauge;
}

(* One direction of a link: a serialising transmitter behind a byte-bounded
   FIFO.  [dst] is the receiving node and [dst_port] its input port.  The
   transmitter is modelled by a free-at time ([busy_until], kept in the
   net-level float array so updating it per hop stays unboxed) instead of a
   busy flag + completion event: an idle channel forwards a packet with a
   single merged serialisation+propagation event, and only a backlogged
   channel schedules wake events to drain its queue. *)
type channel = {
  link_id : Graph.link_id;
  idx : int; (* index into [busy_until]: 2*link_id + direction *)
  dst : Graph.node;
  dst_port : int;
  rate_bps : float;
  delay_s : float;
  queue : Packet.t Queue.t;
  mutable queued_bytes : int;
  mutable wake_scheduled : bool;
  mutable epoch : int; (* bumped on failure: invalidates in-flight events *)
  mutable owner_rid : int; (* region of the transmitting endpoint *)
  mutable x_cut : bool; (* receiving endpoint lives in another region *)
}

(* A packet crossing a region boundary: the flat buffer itself changes
   hands (zero-copy), together with the exact (time, sched) key the serial
   engine would have given its delivery event, so the receiving region can
   slot it into its timeline deterministically. *)
type handoff = {
  h_time : float;
  h_sched : float;
  h_sched2 : float;
  h_src : int; (* sending region *)
  h_ctr : int; (* per-region monotone counter: stable drain order *)
  h_epoch : int;
  h_ch : channel;
  h_packet : Packet.t;
}

(* A trace record buffered inside a region during an epoch.  At the
   barrier, all regions' buffers merge-sort on (vtime, sched, rid, ctr)
   and replay into the main recorder — (rid, ctr) preserves each region's
   exact engine order, so intra-region sequences (e.g. the FIFO drops of a
   failing queue) reproduce the serial trace byte for byte. *)
type tev = {
  tv_vtime : float;
  tv_sched : float;
  tv_sched2 : float;
  tv_rid : int;
  tv_ctr : int;
  tv_uid : int;
  tv_switch : int;
  tv_in : int;
  tv_out : int;
  tv_ttl : int;
  tv_action : Trace.Event.action;
}

(* Everything a region owns privately: its event heap, metrics shard,
   packet pool, trace buffer and one outbox per peer region.  In a solo
   net there is exactly one region and its engine/registry/counters/pool
   are the net's own (no indirection cost, bit-identical behaviour). *)
type region = {
  rid : int;
  r_engine : Engine.t;
  r_registry : Registry.t;
  r_counters : counters;
  r_pool : Packet.Pool.t;
  mutable r_tbuf : tev list; (* newest first *)
  mutable r_tctr : int;
  mutable r_octr : int;
  outboxes : handoff list array; (* newest first, indexed by dst region *)
  mutable r_mark : int; (* processed watermark for stall accounting *)
}

type t = {
  graph : Graph.t;
  queue_capacity_bytes : int;
  ttl : int;
  detection_delay_s : float;
  up : bool array; (* per link *)
  busy_until : float array; (* per channel; unboxed float array *)
  channels : channel array array; (* channels.(link).(dir) *)
  out_channel : channel array array; (* out_channel.(node).(port) *)
  handlers : handler option array;
  port_cache : Kar.Policy.port_state array array;
  registry : Registry.t; (* the main (merged) registry *)
  counters : counters; (* main counter handles *)
  pool : Packet.Pool.t; (* main pool (the only pool when solo) *)
  mutable next_uid : int; (* the [fresh_uid] stream *)
  uid_ctr : int array; (* per-node [alloc] uid streams *)
  (* Observability: [None] recorder (the default) keeps the hot path
     event-free; per-switch deflect/drive tallies are only maintained while
     a recorder is attached (classification costs an extra modulo). *)
  mutable recorder : Trace.Recorder.t option;
  switch_deflections : int array; (* per node *)
  switch_drives : int array; (* per node *)
  link_queue_drops : int array; (* per channel (2*link+dir) *)
  (* Sharding state.  [solo] nets (legacy [create], or a 1-region
     partition) never touch any of it beyond [regions.(0)]. *)
  regions : region array;
  region_of_node : int array;
  solo : bool;
  lookahead : float; (* min cut-link delay; [infinity] when solo *)
  mutable in_admin : bool; (* true between epochs: barrier context *)
  mutable admin : (float * float * float * int * (unit -> unit)) list;
      (* (time, sched, sched2, seq, fn), sorted *)
  mutable admin_seq : int;
  c_epochs : Registry.counter;
  c_boundary : Registry.counter;
  c_stalls : Registry.counter;
  g_cut_ppm : Registry.gauge;
  mutable spans : Kar_obs.Span.t option;
  mutable epoch_idx : int;
}

and handler = t -> Graph.node -> Packet.t -> in_port:int -> unit

(* Which region this domain is currently simulating.  Worker domains set
   it before running a region's epoch; the default 0 makes every solo net
   (and all setup-time code) resolve to the main context. *)
let cur_rid : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let[@inline] ctx net =
  if net.solo then net.regions.(0)
  else net.regions.(Domain.DLS.get cur_rid)

let make_counters r =
  (* explicit registration order: it is the snapshot column order *)
  let c_injected = Registry.counter r "netsim/injected" in
  let c_delivered = Registry.counter r "netsim/delivered" in
  let c_drop_link_down = Registry.counter r "netsim/drop-link-down" in
  let c_drop_queue_full = Registry.counter r "netsim/drop-queue-full" in
  let c_drop_no_route = Registry.counter r "netsim/drop-no-route" in
  let c_drop_ttl = Registry.counter r "netsim/drop-ttl" in
  let c_switch_hops = Registry.counter r "netsim/switch-hops" in
  let c_deflections = Registry.counter r "netsim/deflections" in
  let c_reencodes = Registry.counter r "netsim/reencodes" in
  let g_queue_peak = Registry.gauge r "netsim/queue-peak-bytes" in
  {
    c_injected;
    c_delivered;
    c_drop_link_down;
    c_drop_queue_full;
    c_drop_no_route;
    c_drop_ttl;
    c_switch_hops;
    c_deflections;
    c_reencodes;
    g_queue_peak;
  }

(* Sharding metrics live on the main registry only (the barrier loop is
   single-threaded); they read zero on solo nets but keep the snapshot
   schema identical across [--regions] values. *)
let make_shard_metrics r =
  ( Registry.counter r "netsim/epochs",
    Registry.counter r "netsim/region-boundary-packets",
    Registry.counter r "netsim/region-stalls",
    Registry.gauge r "topo/cut-edges-ppm" )

let build_channels graph =
  let n_links = Graph.n_links graph in
  let channel_of link dir =
    let far = if dir = 0 then link.Graph.ep1 else link.Graph.ep0 in
    {
      link_id = link.Graph.id;
      idx = (2 * link.Graph.id) + dir;
      dst = far.Graph.node;
      dst_port = far.Graph.port;
      rate_bps = link.Graph.rate_bps;
      delay_s = link.Graph.delay_s;
      queue = Queue.create ();
      queued_bytes = 0;
      wake_scheduled = false;
      epoch = 0;
      owner_rid = 0;
      x_cut = false;
    }
  in
  let channels =
    Array.init n_links (fun id ->
        let link = Graph.link graph id in
        [| channel_of link 0; channel_of link 1 |])
  in
  let out_channel =
    Array.init (Graph.n_nodes graph) (fun v ->
        Array.init (Graph.degree graph v) (fun p ->
            let link = Graph.link_at graph v p in
            let dir = if link.Graph.ep0.node = v then 0 else 1 in
            channels.(link.Graph.id).(dir)))
  in
  (channels, out_channel)

let build_port_cache graph =
  Array.init (Graph.n_nodes graph) (fun v ->
      Array.init (Graph.degree graph v) (fun p ->
          let link = Graph.link_at graph v p in
          let far = (Graph.other_end link v).Graph.node in
          { Kar.Policy.up = true; to_host = not (Graph.is_core graph far) }))

let create ~graph ~engine ?registry ?(queue_capacity_bytes = 1_048_576)
    ?(ttl = 128) ?(detection_delay_s = 0.0) () =
  let n_links = Graph.n_links graph in
  let n_nodes = Graph.n_nodes graph in
  let channels, out_channel = build_channels graph in
  let registry =
    match registry with Some r -> r | None -> Registry.create ()
  in
  Registry.probe registry "engine/events" (fun () -> Engine.processed engine);
  Registry.probe registry "engine/pending" (fun () -> Engine.pending engine);
  Registry.probe registry "engine/heap-peak" (fun () -> Engine.heap_peak engine);
  let counters = make_counters registry in
  let pool = Packet.Pool.create ~registry () in
  let c_epochs, c_boundary, c_stalls, g_cut_ppm = make_shard_metrics registry in
  let region =
    {
      rid = 0;
      r_engine = engine;
      r_registry = registry;
      r_counters = counters;
      r_pool = pool;
      r_tbuf = [];
      r_tctr = 0;
      r_octr = 0;
      outboxes = [||];
      r_mark = 0;
    }
  in
  {
    graph;
    queue_capacity_bytes;
    ttl;
    detection_delay_s;
    up = Array.make n_links true;
    busy_until = Array.make (2 * n_links) 0.0;
    channels;
    out_channel;
    handlers = Array.make n_nodes None;
    port_cache = build_port_cache graph;
    registry;
    counters;
    pool;
    next_uid = 0;
    uid_ctr = Array.make n_nodes 0;
    recorder = None;
    switch_deflections = Array.make n_nodes 0;
    switch_drives = Array.make n_nodes 0;
    link_queue_drops = Array.make (2 * n_links) 0;
    regions = [| region |];
    region_of_node = Array.make n_nodes 0;
    solo = true;
    lookahead = infinity;
    in_admin = false;
    admin = [];
    admin_seq = 0;
    c_epochs;
    c_boundary;
    c_stalls;
    g_cut_ppm;
    spans = None;
    epoch_idx = 0;
  }

let create_partitioned ~graph ~partition ?registry ?queue_capacity_bytes ?ttl
    ?detection_delay_s () =
  let p : Topo.Partition.t = partition in
  if Array.length p.Topo.Partition.region_of <> Graph.n_nodes graph then
    invalid_arg "Net.create_partitioned: partition does not match the graph";
  if p.Topo.Partition.n_regions = 1 then begin
    (* One region degenerates to the solo structure: exactly the serial
       net (same engine path, same pool, same metrics cells). *)
    let net =
      create ~graph ~engine:(Engine.create ()) ?registry
        ?queue_capacity_bytes ?ttl ?detection_delay_s ()
    in
    Registry.set net.g_cut_ppm
      (int_of_float (p.Topo.Partition.cut_ratio *. 1e6));
    net
  end
  else begin
    (* Conservative simulation needs strictly positive lookahead: a cut
       through a zero-delay link would force zero-width epochs and the
       barrier would never advance.  Reject it up front. *)
    if not (p.Topo.Partition.lookahead > 0.0) then
      invalid_arg
        (Printf.sprintf
           "Net.create_partitioned: region cut crosses %d zero-delay \
            link(s); lookahead would be %g — repartition or give cut \
            links a positive delay"
           (List.length
              (List.filter
                 (fun id -> (Graph.link graph id).Graph.delay_s <= 0.0)
                 p.Topo.Partition.cut_links))
           p.Topo.Partition.lookahead);
    let n_regions = p.Topo.Partition.n_regions in
    let region_of_node = Array.copy p.Topo.Partition.region_of in
    let n_links = Graph.n_links graph in
    let n_nodes = Graph.n_nodes graph in
    let channels, out_channel = build_channels graph in
    (* channel ownership and cut marking *)
    Array.iter
      (fun chans ->
        let link = Graph.link graph chans.(0).link_id in
        let r0 = region_of_node.(link.Graph.ep0.Graph.node) in
        let r1 = region_of_node.(link.Graph.ep1.Graph.node) in
        chans.(0).owner_rid <- r0;
        chans.(1).owner_rid <- r1;
        chans.(0).x_cut <- r0 <> r1;
        chans.(1).x_cut <- r0 <> r1)
      channels;
    let registry =
      match registry with Some r -> r | None -> Registry.create ()
    in
    let engines = Array.init n_regions (fun _ -> Engine.create ()) in
    Registry.probe registry "engine/events" (fun () ->
        Array.fold_left (fun acc e -> acc + Engine.processed e) 0 engines);
    Registry.probe registry "engine/pending" (fun () ->
        Array.fold_left (fun acc e -> acc + Engine.pending e) 0 engines);
    Registry.probe registry "engine/heap-peak" (fun () ->
        Array.fold_left (fun acc e -> max acc (Engine.heap_peak e)) 0 engines);
    let counters = make_counters registry in
    let pool = Packet.Pool.create ~registry () in
    let c_epochs, c_boundary, c_stalls, g_cut_ppm =
      make_shard_metrics registry
    in
    Registry.set g_cut_ppm (int_of_float (p.Topo.Partition.cut_ratio *. 1e6));
    let regions =
      Array.init n_regions (fun rid ->
          let r_registry = Registry.create () in
          let r_counters = make_counters r_registry in
          let r_pool = Packet.Pool.create ~registry:r_registry () in
          {
            rid;
            r_engine = engines.(rid);
            r_registry;
            r_counters;
            r_pool;
            r_tbuf = [];
            r_tctr = 0;
            r_octr = 0;
            outboxes = Array.make n_regions [];
            r_mark = 0;
          })
    in
    {
      graph;
      queue_capacity_bytes =
        (match queue_capacity_bytes with Some b -> b | None -> 1_048_576);
      ttl = (match ttl with Some v -> v | None -> 128);
      detection_delay_s =
        (match detection_delay_s with Some d -> d | None -> 0.0);
      up = Array.make n_links true;
      busy_until = Array.make (2 * n_links) 0.0;
      channels;
      out_channel;
      handlers = Array.make n_nodes None;
      port_cache = build_port_cache graph;
      registry;
      counters;
      pool;
      next_uid = 0;
      uid_ctr = Array.make n_nodes 0;
      recorder = None;
      switch_deflections = Array.make n_nodes 0;
      switch_drives = Array.make n_nodes 0;
      link_queue_drops = Array.make (2 * n_links) 0;
      regions;
      region_of_node;
      solo = false;
      lookahead = p.Topo.Partition.lookahead;
      in_admin = false;
      admin = [];
      admin_seq = 0;
      c_epochs;
      c_boundary;
      c_stalls;
      g_cut_ppm;
      spans = None;
      epoch_idx = 0;
    }
  end

let graph net = net.graph
let engine net = (ctx net).r_engine
let registry net = net.registry
let n_regions net = Array.length net.regions
let region_of net node = net.region_of_node.(node)
let lookahead net = net.lookahead
let set_spans net s = net.spans <- s

let stats net =
  let c = net.counters in
  {
    injected = Registry.value c.c_injected;
    delivered = Registry.value c.c_delivered;
    dropped_link_down = Registry.value c.c_drop_link_down;
    dropped_queue_full = Registry.value c.c_drop_queue_full;
    dropped_no_route = Registry.value c.c_drop_no_route;
    dropped_ttl = Registry.value c.c_drop_ttl;
    total_switch_hops = Registry.value c.c_switch_hops;
    deflections = Registry.value c.c_deflections;
    reencodes = Registry.value c.c_reencodes;
  }

let ttl net = net.ttl

let set_recorder net r = net.recorder <- r
let recorder net = net.recorder
let note_deflect net v = net.switch_deflections.(v) <- net.switch_deflections.(v) + 1
let note_drive net v = net.switch_drives.(v) <- net.switch_drives.(v) + 1
let deflections_at net v = net.switch_deflections.(v)
let drives_at net v = net.switch_drives.(v)

let queue_drops_on net id =
  net.link_queue_drops.(2 * id) + net.link_queue_drops.((2 * id) + 1)

let reason_slug = function
  | Link_down -> "link_down"
  | Queue_full -> "queue_full"
  | No_route -> "no_route"
  | Ttl_exceeded -> "ttl"

let record_event net ~switch ~in_port ~out_port (packet : Packet.t) action =
  match net.recorder with
  | None -> ()
  | Some r ->
    let rg = ctx net in
    if net.solo || net.in_admin then
      (* Solo nets record straight through (the recorder canonicalises
         same-instant tie groups); admin records happen at a barrier,
         after every region's buffer below the barrier time has been
         flushed, with the admin action's own key. *)
      Trace.Recorder.record r
        ~key:(Engine.sched_now rg.r_engine, Engine.sched2_now rg.r_engine)
        ~vtime:(Engine.now rg.r_engine) ~uid:(Packet.uid packet) ~switch
        ~in_port ~out_port
        ~ttl:(net.ttl - Packet.hops packet)
        action
    else begin
      rg.r_tbuf <-
        {
          tv_vtime = Engine.now rg.r_engine;
          tv_sched = Engine.sched_now rg.r_engine;
          tv_sched2 = Engine.sched2_now rg.r_engine;
          tv_rid = rg.rid;
          tv_ctr = rg.r_tctr;
          tv_uid = Packet.uid packet;
          tv_switch = switch;
          tv_in = in_port;
          tv_out = out_port;
          tv_ttl = net.ttl - Packet.hops packet;
          tv_action = action;
        }
        :: rg.r_tbuf;
      rg.r_tctr <- rg.r_tctr + 1
    end

let record_decision = record_event

(* Drops are terminal: the packet goes back to the pool (a no-op for
   unpooled handles), so every loss path recycles its buffer. *)
let drop ?at ?(in_port = -1) net (packet : Packet.t) reason =
  let rg = ctx net in
  Log.debug (fun m ->
      m "t=%.6f drop %a (%s)" (Engine.now rg.r_engine) Packet.pp packet
        (match reason with
         | Link_down -> "link down"
         | Queue_full -> "queue full"
         | No_route -> "no route"
         | Ttl_exceeded -> "ttl"));
  (if net.recorder <> None then
     let switch = match at with Some v -> Graph.label net.graph v | None -> -1 in
     record_event net ~switch ~in_port ~out_port:(-1) packet
       (Trace.Event.Drop (reason_slug reason)));
  let c = rg.r_counters in
  (match reason with
   | Link_down -> Registry.incr c.c_drop_link_down
   | Queue_full -> Registry.incr c.c_drop_queue_full
   | No_route -> Registry.incr c.c_drop_no_route
   | Ttl_exceeded -> Registry.incr c.c_drop_ttl);
  Packet.Pool.release rg.r_pool packet

let delivered ?(in_port = -1) net (packet : Packet.t) =
  record_event net
    ~switch:(Graph.label net.graph (Packet.dst packet))
    ~in_port ~out_port:(-1) packet Trace.Event.Deliver;
  Registry.incr (ctx net).r_counters.c_delivered

let count_deflection net = Registry.incr (ctx net).r_counters.c_deflections
let count_reencode net = Registry.incr (ctx net).r_counters.c_reencodes
let count_hop net = Registry.incr (ctx net).r_counters.c_switch_hops

let set_node_handler net node h = net.handlers.(node) <- Some h

let fresh_uid net =
  let uid = net.next_uid in
  net.next_uid <- uid + 1;
  uid

let link_up net id = net.up.(id)

(* Pooled packets draw their uid from a per-source-node stream
   ([k * n_nodes + node]): the k-th allocation at a node gets the same uid
   at any region count, because each node's allocation sequence is a
   function of its own local timeline only.  A single global stream would
   depend on the global interleaving of allocations — exactly what a
   sharded run does not reproduce. *)
let alloc net ~src ~dst ~size_bytes ~route_id payload =
  let rg = ctx net in
  let p = Packet.Pool.acquire rg.r_pool in
  let k = net.uid_ctr.(src) in
  net.uid_ctr.(src) <- k + 1;
  let uid = (k * Array.length net.uid_ctr) + src in
  Packet.stamp p ~uid ~src ~dst ~size_bytes ~route_id
    ~born:(Engine.now rg.r_engine) payload;
  p

let free net p = Packet.Pool.release (ctx net).r_pool p
let pool net = net.pool

let pool_in_flight net =
  if net.solo then Packet.Pool.in_flight net.pool
  else
    (* grows have been drained into the main cells; buffers parked in any
       region free list (or the unused main one) are not in flight. *)
    Packet.Pool.grows net.pool
    - Packet.Pool.free_count net.pool
    - Array.fold_left
        (fun acc rg -> acc + Packet.Pool.free_count rg.r_pool)
        0 net.regions

let deliver net node packet ~in_port =
  match net.handlers.(node) with
  | Some h -> h net node packet ~in_port
  | None ->
    if Packet.dst packet = node then begin
      delivered ~in_port net packet;
      Packet.Pool.release (ctx net).r_pool packet
    end
    else drop ~at:node ~in_port net packet No_route

(* Put a packet on the wire of an idle channel: one merged event covers
   serialisation and propagation (the transmitter frees at [busy_until];
   the packet arrives [delay_s] later).  A failure during either phase is
   caught by the epoch check when the event fires.  On a cut channel the
   event becomes a handoff in the peer region's outbox instead, carrying
   the (time, sched) key the serial engine would have used. *)
let transmit net ch packet =
  let rg = ctx net in
  let e = rg.r_engine in
  let now = Engine.now e in
  let tx_time = float_of_int (Packet.size_bytes packet * 8) /. ch.rate_bps in
  net.busy_until.(ch.idx) <- now +. tx_time;
  let epoch = ch.epoch in
  if ch.x_cut then begin
    let dst_rid = net.region_of_node.(ch.dst) in
    rg.outboxes.(dst_rid) <-
      {
        (* Associated exactly as the engine path below computes it
           ([now + (tx + delay)], via [schedule_in]) — a cut crossing must
           produce the bit-identical arrival time the serial run gets, or
           exact-tie groups desynchronise downstream. *)
        h_time = now +. (tx_time +. ch.delay_s);
        h_sched = now;
        h_sched2 = Engine.sched_now e;
        h_src = rg.rid;
        h_ctr = rg.r_octr;
        h_epoch = epoch;
        h_ch = ch;
        h_packet = packet;
      }
      :: rg.outboxes.(dst_rid);
    rg.r_octr <- rg.r_octr + 1
  end
  else
    ignore
      (Engine.schedule_in e (tx_time +. ch.delay_s) (fun () ->
           if ch.epoch = epoch then deliver net ch.dst packet ~in_port:ch.dst_port
           else drop net packet Link_down))

(* Backlogged channels drain via wake events at the transmitter's free
   time.  [wake_scheduled] dedups the common case; stray extra wakes (after
   a failure reset the flag's event) are harmless because service is guarded
   by [busy_until] and FIFO order by the single queue.  Wakes always target
   the owning region's engine — [repair_link] may run at a barrier, where
   the calling context is not the channel's region. *)
let rec wake net ch () =
  ch.wake_scheduled <- false;
  if
    net.up.(ch.link_id)
    && (not (Queue.is_empty ch.queue))
    && Engine.now net.regions.(ch.owner_rid).r_engine >= net.busy_until.(ch.idx)
  then begin
    let packet = Queue.pop ch.queue in
    ch.queued_bytes <- ch.queued_bytes - Packet.size_bytes packet;
    transmit net ch packet
  end;
  schedule_wake net ch

and schedule_wake net ch =
  if (not ch.wake_scheduled) && (not (Queue.is_empty ch.queue)) && net.up.(ch.link_id)
  then begin
    ch.wake_scheduled <- true;
    let e = net.regions.(ch.owner_rid).r_engine in
    let now = Engine.now e in
    let t = net.busy_until.(ch.idx) in
    ignore (Engine.schedule_at e (if t > now then t else now) (wake net ch))
  end

let send net ~from_node ~port packet =
  let ch = net.out_channel.(from_node).(port) in
  if not net.up.(ch.link_id) then drop ~at:from_node net packet Link_down
  else if ch.queued_bytes + Packet.size_bytes packet > net.queue_capacity_bytes
  then begin
    net.link_queue_drops.(ch.idx) <- net.link_queue_drops.(ch.idx) + 1;
    drop ~at:from_node net packet Queue_full
  end
  else if
    Queue.is_empty ch.queue
    && Engine.now net.regions.(ch.owner_rid).r_engine >= net.busy_until.(ch.idx)
  then transmit net ch packet
  else begin
    Queue.push packet ch.queue;
    ch.queued_bytes <- ch.queued_bytes + Packet.size_bytes packet;
    Registry.set_max (ctx net).r_counters.g_queue_peak ch.queued_bytes;
    schedule_wake net ch
  end

let inject net ~at packet =
  Registry.incr (ctx net).r_counters.c_injected;
  record_event net ~switch:(Graph.label net.graph at) ~in_port:(-1)
    ~out_port:(-1) packet Trace.Event.Inject;
  deliver net at packet ~in_port:(-1)

(* --- global administration: failures, repairs, detection ------------- *)

(* Admin actions on CUT links touch state owned by two regions at once, so
   on a sharded net they run single-threaded at an epoch barrier, in
   (time, insertion) order.  Everything region-internal (non-cut links,
   solo nets) stays an ordinary engine event on the owning region. *)
let push_admin net ~at ~sched ~sched2 fn =
  let seq = net.admin_seq in
  net.admin_seq <- seq + 1;
  let rec ins = function
    | [] -> [ (at, sched, sched2, seq, fn) ]
    | ((t, s, s2, _, _) as hd) :: tl ->
      if
        t < at
        || (t = at && (s < sched || (s = sched && s2 <= sched2)))
      then hd :: ins tl
      else (at, sched, sched2, seq, fn) :: hd :: tl
  in
  net.admin <- ins net.admin

let schedule_admin net ~at f =
  if net.solo then ignore (Engine.schedule_at net.regions.(0).r_engine at f)
  else
    let e = (ctx net).r_engine in
    push_admin net ~at ~sched:(Engine.now e) ~sched2:(Engine.sched_now e) f

let set_cached_up net id value =
  let link = Graph.link net.graph id in
  List.iter
    (fun ep ->
      let states = net.port_cache.(ep.Graph.node) in
      states.(ep.Graph.port) <- { (states.(ep.Graph.port)) with Kar.Policy.up = value })
    [ link.Graph.ep0; link.Graph.ep1 ]

(* Liveness as the data plane *sees* it lags physical state by the
   detection delay (loss-of-signal / BFD time): until detection, switches
   keep selecting the dead port and those packets black-hole. *)
let schedule_detection net id =
  if net.detection_delay_s <= 0.0 then set_cached_up net id net.up.(id)
  else begin
    let fn () = set_cached_up net id net.up.(id) in
    let ch0 = net.channels.(id).(0) in
    if (not net.solo) && ch0.x_cut then
      (* detection flips port caches in two regions: barrier action *)
      (let e = (ctx net).r_engine in
       push_admin net
         ~at:(Engine.now e +. net.detection_delay_s)
         ~sched:(Engine.now e) ~sched2:(Engine.sched_now e) fn)
    else
      ignore
        (Engine.schedule_in net.regions.(ch0.owner_rid).r_engine
           net.detection_delay_s fn)
  end

(* [with_channel_region] pins counter/pool/trace attribution to the
   channel's owning region while a barrier action (cut-link failure)
   discards its queue — so the drops land in the same region shard a
   region-internal failure would have used. *)
let with_channel_region ch f =
  let saved = Domain.DLS.get cur_rid in
  Domain.DLS.set cur_rid ch.owner_rid;
  Fun.protect ~finally:(fun () -> Domain.DLS.set cur_rid saved) f

let fail_link net id =
  if net.up.(id) then begin
    Log.info (fun m ->
        let l = Graph.link net.graph id in
        m "t=%.6f link %d (SW%d-SW%d) failed" (Engine.now (ctx net).r_engine) id
          (Graph.label net.graph l.Graph.ep0.Graph.node)
          (Graph.label net.graph l.Graph.ep1.Graph.node));
    net.up.(id) <- false;
    schedule_detection net id;
    Array.iter
      (fun ch ->
        with_channel_region ch (fun () ->
            ch.epoch <- ch.epoch + 1;
            net.busy_until.(ch.idx) <- 0.0;
            Queue.iter (fun p -> drop net p Link_down) ch.queue;
            Queue.clear ch.queue;
            ch.queued_bytes <- 0))
      net.channels.(id)
  end

let repair_link net id =
  if not net.up.(id) then begin
    Log.info (fun m -> m "t=%.6f link %d repaired" (Engine.now (ctx net).r_engine) id);
    net.up.(id) <- true;
    schedule_detection net id;
    Array.iter (fun ch -> schedule_wake net ch) net.channels.(id)
  end

let schedule_failure net id ~at ~duration =
  let ch0 = net.channels.(id).(0) in
  if net.solo || not ch0.x_cut then begin
    let e = net.regions.(ch0.owner_rid).r_engine in
    ignore (Engine.schedule_at e at (fun () -> fail_link net id));
    ignore (Engine.schedule_at e (at +. duration) (fun () -> repair_link net id))
  end
  else begin
    let e = (ctx net).r_engine in
    let sched = Engine.now e and sched2 = Engine.sched_now e in
    push_admin net ~at ~sched ~sched2 (fun () -> fail_link net id);
    push_admin net ~at:(at +. duration) ~sched ~sched2 (fun () ->
        repair_link net id)
  end

let port_states net node = net.port_cache.(node)

(* [schedule_at_node] books work onto the region that owns [node] — the
   only safe way for setup-time code (e.g. a TCP flow's kickoff) to enter
   a sharded timeline.  Solo nets preserve the historical call-now
   semantics exactly. *)
let schedule_at_node net node ~at f =
  let rg = net.regions.(net.region_of_node.(node)) in
  let now = Engine.now rg.r_engine in
  if net.solo && at <= now then f ()
  else
    ignore
      (Engine.schedule_keyed rg.r_engine
         ~time:(if at > now then at else now)
         ~sched:now
         ~sched2:(Engine.sched_now rg.r_engine)
         f)

(* --- the conservative parallel run loop ------------------------------- *)

let tev_compare a b =
  let c = Float.compare a.tv_vtime b.tv_vtime in
  if c <> 0 then c
  else
    let c = Float.compare a.tv_sched b.tv_sched in
    if c <> 0 then c
    else
      let c = Float.compare a.tv_sched2 b.tv_sched2 in
      if c <> 0 then c
      else
        let c = compare a.tv_rid b.tv_rid in
        if c <> 0 then c else compare a.tv_ctr b.tv_ctr

let flush_traces net =
  match net.recorder with
  | None -> Array.iter (fun rg -> rg.r_tbuf <- []) net.regions
  | Some r ->
    let all =
      Array.fold_left
        (fun acc rg ->
          let l = rg.r_tbuf in
          rg.r_tbuf <- [];
          List.rev_append l acc)
        [] net.regions
    in
    List.iter
      (fun tv ->
        Trace.Recorder.record r
          ~key:(tv.tv_sched, tv.tv_sched2)
          ~vtime:tv.tv_vtime ~uid:tv.tv_uid ~switch:tv.tv_switch
          ~in_port:tv.tv_in ~out_port:tv.tv_out ~ttl:tv.tv_ttl tv.tv_action)
      (List.sort tev_compare all)

let handoff_compare a b =
  let c = Float.compare a.h_time b.h_time in
  if c <> 0 then c
  else
    let c = Float.compare a.h_sched b.h_sched in
    if c <> 0 then c
    else
      let c = Float.compare a.h_sched2 b.h_sched2 in
      if c <> 0 then c
      else
        let c = compare a.h_src b.h_src in
        if c <> 0 then c else compare a.h_ctr b.h_ctr

(* Drain every outbox into the destination engines in canonical order.
   All arrivals lie at or beyond the barrier (send time + cut delay >=
   epoch start + lookahead), so they are future events for every region. *)
let drain_outboxes net =
  let all =
    Array.fold_left
      (fun acc rg ->
        let acc = ref acc in
        Array.iteri
          (fun dst l ->
            if l <> [] then begin
              acc := List.rev_append l !acc;
              rg.outboxes.(dst) <- []
            end)
          rg.outboxes;
        !acc)
      [] net.regions
  in
  List.iter
    (fun h ->
      Registry.incr net.c_boundary;
      let dst_rid = net.region_of_node.(h.h_ch.dst) in
      ignore
        (Engine.schedule_keyed net.regions.(dst_rid).r_engine ~time:h.h_time
           ~sched:h.h_sched ~sched2:h.h_sched2 (fun () ->
             if h.h_ch.epoch = h.h_epoch then
               deliver net h.h_ch.dst h.h_packet ~in_port:h.h_ch.dst_port
             else drop net h.h_packet Link_down)))
    (List.sort handoff_compare all)

let run_sharded net t_stop =
  let n = Array.length net.regions in
  let size = max 1 (min n (Util.Pool.current_jobs ())) in
  let team = Util.Pool.Team.create ~size in
  Fun.protect ~finally:(fun () -> Util.Pool.Team.shutdown team) @@ fun () ->
  let section f =
    net.in_admin <- false;
    Util.Pool.Team.run team (fun w ->
        let rid = ref w in
        while !rid < n do
          Domain.DLS.set cur_rid !rid;
          f net.regions.(!rid);
          rid := !rid + size
        done;
        Domain.DLS.set cur_rid 0);
    net.in_admin <- true
  in
  let admin_next () =
    match net.admin with [] -> infinity | (t, _, _, _, _) :: _ -> t
  in
  let region_next () =
    Array.fold_left
      (fun acc rg ->
        match Engine.next_time rg.r_engine with
        | Some u -> Float.min acc u
        | None -> acc)
      infinity net.regions
  in
  let commit ~from ~upto =
    Array.iter (fun rg -> Engine.advance_clock rg.r_engine upto) net.regions;
    Array.iter
      (fun rg ->
        let p = Engine.processed rg.r_engine in
        if p = rg.r_mark then Registry.incr net.c_stalls;
        rg.r_mark <- p)
      net.regions;
    flush_traces net;
    drain_outboxes net;
    Registry.incr net.c_epochs;
    (match net.spans with
     | Some ring ->
       Kar_obs.Span.record ring Kar_obs.Span.Epoch ~t0:from ~t1:upto
         ~detail:net.epoch_idx
     | None -> ());
    net.epoch_idx <- net.epoch_idx + 1
  in
  let pump_admin upto =
    let rec go () =
      match net.admin with
      | (t, sched, sched2, _, fn) :: rest when t <= upto ->
        net.admin <- rest;
        (* Events the action schedules (and records it emits) must carry
           the keys the serial engine would have given them: the action's
           own scheduling keys. *)
        Array.iter
          (fun rg -> Engine.set_context_sched rg.r_engine ~sched ~sched2)
          net.regions;
        fn ();
        go ()
      | _ -> ()
    in
    go ()
  in
  net.in_admin <- true;
  let continue_ = ref true in
  while !continue_ do
    let t0 = Engine.now net.regions.(0).r_engine in
    (* Fast-forward: if nothing anywhere can happen before [tn], the next
       epoch may start there instead of crawling in lookahead steps. *)
    let tn = Float.min (region_next ()) (admin_next ()) in
    let t0 = if tn > t0 then Float.min tn t_stop else t0 in
    let ta = admin_next () in
    let e = Float.min (t0 +. net.lookahead) (Float.min ta t_stop) in
    if ta <= e && ta < t_stop then begin
      (* the next admin action bounds the epoch: run up to it, commit,
         then apply every admin entry due at that instant *)
      section (fun rg -> Engine.run_before rg.r_engine ta);
      commit ~from:t0 ~upto:ta;
      pump_admin ta
    end
    else if e < t_stop then begin
      section (fun rg -> Engine.run_before rg.r_engine e);
      commit ~from:t0 ~upto:e
    end
    else begin
      (* Final window: [t0, t_stop) fits within one lookahead, so first
         run strictly below t_stop, settle admin due exactly at t_stop
         (admin sorts before data at equal times, as in a serial run),
         then take the inclusive final step. *)
      section (fun rg -> Engine.run_before rg.r_engine t_stop);
      commit ~from:t0 ~upto:t_stop;
      pump_admin t_stop;
      section (fun rg -> Engine.run_until rg.r_engine t_stop);
      commit ~from:t_stop ~upto:t_stop;
      continue_ := false
    end
  done;
  net.in_admin <- false;
  Array.iter
    (fun rg -> Registry.drain_into ~into:net.registry rg.r_registry)
    net.regions

let run_until net t_stop =
  if net.solo then Engine.run_until net.regions.(0).r_engine t_stop
  else run_sharded net t_stop
