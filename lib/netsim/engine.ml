type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable stopped : bool;
  mutable done_count : int;
  mutable cancelled_in_heap : int;
  mutable heap_peak : int;
  mutable cur_sched : float;
  mutable cur_sched2 : float;
}

and event = {
  time : float;
  sched : float; (* clock at scheduling time: the determinism key *)
  sched2 : float; (* the scheduling event's own [sched] — one causal level
                     deeper, for ties where [sched] alone is ambiguous *)
  seq : int;
  fn : unit -> unit;
  mutable cancelled : bool;
  mutable queued : bool;
  owner : t;
}

let create () =
  {
    heap = [||];
    size = 0;
    clock = 0.0;
    next_seq = 0;
    stopped = false;
    done_count = 0;
    cancelled_in_heap = 0;
    heap_peak = 0;
    cur_sched = 0.0;
    cur_sched2 = 0.0;
  }

let now e = e.clock

(* Events fire in (time, sched, seq) order.  Within one engine the clock
   never regresses and everything is scheduled at the current clock, so
   [sched] is monotone in [seq] and this order equals the classic
   (time, seq) FIFO.  The extra key matters when several region engines
   are merged: ties between a locally-scheduled event and a
   cross-region arrival then resolve by *scheduling time* — the same
   order the serial engine's global seq would have produced. *)
let before a b =
  a.time < b.time
  || (a.time = b.time
      && (a.sched < b.sched
          || (a.sched = b.sched
              && (a.sched2 < b.sched2
                  || (a.sched2 = b.sched2 && a.seq < b.seq)))))

let swap e i j =
  let tmp = e.heap.(i) in
  e.heap.(i) <- e.heap.(j);
  e.heap.(j) <- tmp

let sift_down e start =
  let i = ref start and continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let first = ref !i in
    if l < e.size && before e.heap.(l) e.heap.(!first) then first := l;
    if r < e.size && before e.heap.(r) e.heap.(!first) then first := r;
    if !first = !i then continue := false
    else begin
      swap e !i !first;
      i := !first
    end
  done

let push e ev =
  if e.size = Array.length e.heap then begin
    let bigger = Array.make (max 64 (2 * e.size)) ev in
    Array.blit e.heap 0 bigger 0 e.size;
    e.heap <- bigger
  end;
  e.heap.(e.size) <- ev;
  let i = ref e.size in
  e.size <- e.size + 1;
  if e.size > e.heap_peak then e.heap_peak <- e.size;
  while !i > 0 && before e.heap.(!i) e.heap.((!i - 1) / 2) do
    swap e ((!i - 1) / 2) !i;
    i := (!i - 1) / 2
  done

let pop e =
  if e.size = 0 then None
  else begin
    let top = e.heap.(0) in
    e.size <- e.size - 1;
    e.heap.(0) <- e.heap.(e.size);
    sift_down e 0;
    top.queued <- false;
    if top.cancelled then e.cancelled_in_heap <- e.cancelled_in_heap - 1;
    Some top
  end

let schedule_keyed e ~time ~sched ~sched2 f =
  let ev =
    { time; sched; sched2; seq = e.next_seq; fn = f; cancelled = false;
      queued = true; owner = e }
  in
  e.next_seq <- e.next_seq + 1;
  push e ev;
  ev

let schedule_at e t f =
  if t < e.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now (%g)" t e.clock);
  schedule_keyed e ~time:t ~sched:e.clock ~sched2:e.cur_sched f

let schedule_in e dt f =
  if dt < 0.0 then invalid_arg "Engine.schedule_in: negative delay";
  schedule_at e (e.clock +. dt) f

(* Only purge heaps worth the O(n) rebuild; tiny heaps just pop the
   cancellations out. *)
let purge_min_size = 64

(* Compact out every cancelled event and re-establish the heap property
   with a bottom-up Floyd heapify. *)
let purge e =
  let live = ref 0 in
  for i = 0 to e.size - 1 do
    let ev = e.heap.(i) in
    if not ev.cancelled then begin
      e.heap.(!live) <- ev;
      incr live
    end
  done;
  e.size <- !live;
  e.cancelled_in_heap <- 0;
  for i = (e.size / 2) - 1 downto 0 do
    sift_down e i
  done

let cancel ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    if ev.queued then begin
      let e = ev.owner in
      e.cancelled_in_heap <- e.cancelled_in_heap + 1;
      (* Long runs accumulate cancelled retransmit timers that bloat the
         heap and slow every sift; drop them all once they outnumber the
         live events. *)
      if e.size >= purge_min_size && e.cancelled_in_heap > e.size / 2 then
        purge e
    end
  end

let step e =
  match pop e with
  | None -> false
  | Some ev ->
    if not ev.cancelled then begin
      e.clock <- ev.time;
      e.cur_sched <- ev.sched;
      e.cur_sched2 <- ev.sched2;
      e.done_count <- e.done_count + 1;
      ev.fn ()
    end;
    true

let run e =
  e.stopped <- false;
  while (not e.stopped) && step e do
    ()
  done

let run_until e t =
  e.stopped <- false;
  let continue = ref true in
  while !continue && not e.stopped do
    match e.size with
    | 0 -> continue := false
    | _ ->
      if e.heap.(0).time > t then continue := false
      else ignore (step e)
  done;
  if not e.stopped then e.clock <- max e.clock t

(* Epoch half of [run_until]: strictly-before the horizon, and the clock
   is left on the last event run — the caller advances it explicitly
   with [advance_clock] once the whole barrier has committed. *)
let run_before e t =
  let continue = ref true in
  while !continue do
    match e.size with
    | 0 -> continue := false
    | _ ->
      if e.heap.(0).time >= t then continue := false
      else ignore (step e)
  done

let next_time e =
  (* Skim cancelled tops so an all-cancelled heap reads as idle. *)
  while e.size > 0 && e.heap.(0).cancelled do
    ignore (pop e)
  done;
  if e.size = 0 then None else Some e.heap.(0).time

let advance_clock e t = if t > e.clock then e.clock <- t

let sched_now e = e.cur_sched
let sched2_now e = e.cur_sched2
let set_context_sched e ~sched ~sched2 =
  e.cur_sched <- sched;
  e.cur_sched2 <- sched2

let stop e = e.stopped <- true

let pending e = e.size - e.cancelled_in_heap

let processed e = e.done_count
let heap_peak e = e.heap_peak
