type event = { time : float; seq : int; fn : unit -> unit; mutable cancelled : bool }

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable stopped : bool;
  mutable done_count : int;
}

let create () =
  {
    heap = [||];
    size = 0;
    clock = 0.0;
    next_seq = 0;
    stopped = false;
    done_count = 0;
  }

let now e = e.clock

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap e i j =
  let tmp = e.heap.(i) in
  e.heap.(i) <- e.heap.(j);
  e.heap.(j) <- tmp

let push e ev =
  if e.size = Array.length e.heap then begin
    let bigger = Array.make (max 64 (2 * e.size)) ev in
    Array.blit e.heap 0 bigger 0 e.size;
    e.heap <- bigger
  end;
  e.heap.(e.size) <- ev;
  let i = ref e.size in
  e.size <- e.size + 1;
  while !i > 0 && before e.heap.(!i) e.heap.((!i - 1) / 2) do
    swap e ((!i - 1) / 2) !i;
    i := (!i - 1) / 2
  done

let pop e =
  if e.size = 0 then None
  else begin
    let top = e.heap.(0) in
    e.size <- e.size - 1;
    e.heap.(0) <- e.heap.(e.size);
    let i = ref 0 and continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let first = ref !i in
      if l < e.size && before e.heap.(l) e.heap.(!first) then first := l;
      if r < e.size && before e.heap.(r) e.heap.(!first) then first := r;
      if !first = !i then continue := false
      else begin
        swap e !i !first;
        i := !first
      end
    done;
    Some top
  end

let schedule_at e t f =
  if t < e.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: time %g is before now (%g)" t e.clock);
  let ev = { time = t; seq = e.next_seq; fn = f; cancelled = false } in
  e.next_seq <- e.next_seq + 1;
  push e ev;
  ev

let schedule_in e dt f =
  if dt < 0.0 then invalid_arg "Engine.schedule_in: negative delay";
  schedule_at e (e.clock +. dt) f

let cancel ev =
  ev.cancelled <- true

let step e =
  match pop e with
  | None -> false
  | Some ev ->
    if not ev.cancelled then begin
      e.clock <- ev.time;
      e.done_count <- e.done_count + 1;
      ev.fn ()
    end;
    true

let run e =
  e.stopped <- false;
  while (not e.stopped) && step e do
    ()
  done

let run_until e t =
  e.stopped <- false;
  let continue = ref true in
  while !continue && not e.stopped do
    match e.size with
    | 0 -> continue := false
    | _ ->
      if e.heap.(0).time > t then continue := false
      else ignore (step e)
  done;
  if not e.stopped then e.clock <- max e.clock t

let stop e = e.stopped <- true

let pending e =
  let count = ref 0 in
  for i = 0 to e.size - 1 do
    if not e.heap.(i).cancelled then incr count
  done;
  !count

let processed e = e.done_count
