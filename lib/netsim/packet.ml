module Z = Bignum.Z

type payload = ..
type payload += Raw

type t = {
  uid : int;
  src : Topo.Graph.node;
  dst : Topo.Graph.node;
  size_bytes : int;
  mutable route_id : Z.t;
  mutable deflected : bool;
  mutable hops : int;
  mutable reencoded : int;
  born : float;
  payload : payload;
}

let make ~uid ~src ~dst ~size_bytes ~route_id ~born payload =
  {
    uid;
    src;
    dst;
    size_bytes;
    route_id;
    deflected = false;
    hops = 0;
    reencoded = 0;
    born;
    payload;
  }

let pp ppf p =
  Format.fprintf ppf "pkt#%d %d->%d %dB R=%a hops=%d%s" p.uid p.src p.dst
    p.size_bytes Z.pp p.route_id p.hops
    (if p.deflected then " deflected" else "")
