module Z = Bignum.Z
module Flat = Wire.Flat

type payload = ..
type payload += Raw

type t = {
  buf : Bytes.t;
  pooled : bool;
  mutable payload : payload;
  mutable born : float;
}

let bytes p = p.buf
let uid p = Flat.uid p.buf
let src p = Flat.src p.buf
let dst p = Flat.dst p.buf
let size_bytes p = Flat.size_bytes p.buf
let route_id p = Flat.route_id p.buf
let set_route_id p z = Flat.set_route_id p.buf z
let deflected p = Flat.deflected p.buf
let set_deflected p v = Flat.set_deflected p.buf v
let hops p = Flat.hops p.buf
let set_hops p v = Flat.set_hops p.buf v
let reencoded p = Flat.reencoded p.buf
let set_reencoded p v = Flat.set_reencoded p.buf v
let payload p = p.payload
let set_payload p v = p.payload <- v
let born p = p.born
let live p = Flat.live p.buf

(* [born] is the only field outside the byte image: cbr latency stats need
   the exact float, and round-tripping it through bits would box on every
   read ([Int64.bits_of_float] allocates).  Storing an already-boxed float
   into the mutable mixed-record field allocates nothing, so the hot path
   keeps its zero-minor-words property as long as callers pass a float they
   already hold (Engine.now reads the clock's box straight through). *)
let stamp p ~uid ~src ~dst ~size_bytes ~route_id ~born payload =
  Flat.stamp p.buf ~uid ~src ~dst ~size_bytes ~route_id;
  p.born <- born;
  p.payload <- payload

let make ~uid ~src ~dst ~size_bytes ~route_id ~born payload =
  let p = { buf = Flat.create (); pooled = false; payload; born } in
  stamp p ~uid ~src ~dst ~size_bytes ~route_id ~born payload;
  p

module Pool = struct
  module Registry = Kar_obs.Registry

  type packet = t

  (* Counters live in a metrics registry ([netsim/pool-*]); a private
     registry is created for standalone pools.  [Registry.incr] is one
     int-array poke, so acquire/release stay at zero minor words. *)
  type t = {
    mutable free : packet array;
    mutable free_top : int; (* free.(0 .. free_top-1) are available *)
    hit_c : Registry.counter;
    grow_c : Registry.counter;
    release_c : Registry.counter;
  }

  let create ?registry () =
    let r = match registry with Some r -> r | None -> Registry.create () in
    (* explicit registration order: it is the snapshot column order *)
    let hit_c = Registry.counter r "netsim/pool-hit" in
    let grow_c = Registry.counter r "netsim/pool-grow" in
    let release_c = Registry.counter r "netsim/pool-release" in
    { free = [||]; free_top = 0; hit_c; grow_c; release_c }

  let acquire (pool : t) =
    if pool.free_top > 0 then begin
      pool.free_top <- pool.free_top - 1;
      Registry.incr pool.hit_c;
      let p = Array.unsafe_get pool.free pool.free_top in
      Flat.set_live p.buf true;
      p
    end
    else begin
      Registry.incr pool.grow_c;
      let p = { buf = Flat.create (); pooled = true; payload = Raw; born = 0.0 } in
      Flat.set_live p.buf true;
      p
    end

  let release (pool : t) p =
    if p.pooled && Flat.live p.buf then begin
      Flat.set_live p.buf false;
      p.payload <- Raw;
      Registry.incr pool.release_c;
      let cap = Array.length pool.free in
      if pool.free_top >= cap then begin
        let grown = Array.make (Stdlib.max 8 (2 * cap)) p in
        Array.blit pool.free 0 grown 0 cap;
        pool.free <- grown
      end;
      Array.unsafe_set pool.free pool.free_top p;
      pool.free_top <- pool.free_top + 1
    end

  let hits pool = Registry.value pool.hit_c
  let grows pool = Registry.value pool.grow_c
  let releases pool = Registry.value pool.release_c
  let in_flight pool = grows pool - pool.free_top
  let free_count pool = pool.free_top
end

let pp ppf p =
  Format.fprintf ppf "pkt#%d %d->%d %dB R=%a hops=%d%s" (uid p) (src p) (dst p)
    (size_bytes p) Z.pp (route_id p) (hops p)
    (if deflected p then " deflected" else "")
