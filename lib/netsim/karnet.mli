(** KAR node behaviours for the simulator: the modified software switch of
    the paper's prototype (modulo forwarding + deflection) and the edge-node
    logic (delivery, stranded-packet re-encoding).

    Each core switch gets its own PRNG stream (split from one seed), so a
    whole run is reproducible from topology + policy + seed. *)

(** The switches' log source (["kar.switch"]): first deflections of each
    packet at [Debug]. *)
val log_src : Logs.src

(** [install_switches net ~policy ?plan ~seed] sets the handler of every
    core node: on arrival the packet's hop count is bumped (TTL enforced),
    the output port is computed per [policy], and the packet is forwarded
    or dropped.  The first deflection of each packet is tallied in the net
    stats.

    With [?plan], each switch answers the modulo computation through the
    plan's residue cache ([Kar.Route.cached_port]): an int-array read for
    packets carrying the plan's route ID, the remainder kernel for any
    other route ID (e.g. after an edge re-encode) — behaviour is identical
    either way, byte-for-byte in the flight-recorder trace.  The
    steady-state forward path (computed port healthy, no recorder
    attached) performs no minor-heap allocation. *)
val install_switches :
  ?plan:Kar.Route.plan -> Net.t -> policy:Kar.Policy.t -> seed:int -> unit

(** What an edge node does with a packet addressed to itself. *)
type receive = Net.t -> Packet.t -> unit

(** [install_edge net node ~reencode ~receive] sets an edge handler:
    packets addressed to [node] are counted delivered and passed to
    [receive]; stranded packets (addressed elsewhere) get a new route ID
    from [reencode] — the paper's "controller recalculates the route ID
    based on the best path from the edge node to the destination" — and are
    re-injected after [reencode_delay_s] (default 1 ms of control-plane
    latency), with the HP deflected flag cleared; [reencode] returning
    [None] drops the packet. *)
val install_edge :
  Net.t ->
  Topo.Graph.node ->
  ?reencode_delay_s:float ->
  reencode:(Packet.t -> Bignum.Z.t option) ->
  receive:receive ->
  unit ->
  unit

(** [install_standard_edges net ~controller_reencode] installs every edge
    node of the graph with {!install_edge}, using a shared re-encoding
    function and a [receive] that just counts delivery (suitable for
    non-TCP workloads; TCP installs its own edges). *)
val install_standard_edges :
  Net.t -> controller_reencode:(Packet.t -> Bignum.Z.t option) -> unit
