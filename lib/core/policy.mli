(** KAR data-plane forwarding: the modulo computation and the three
    deflection techniques of section 2.1.

    A KAR core switch is stateless: the forwarding decision is a pure
    function of the packet's route ID, the switch's own ID, the input port,
    the liveness of the local ports — plus a random draw when deflecting.
    The only per-packet state is the [deflected] flag that Hot-Potato needs
    ("once a packet is deflected, it follows a complete random path").

    Deflection picks uniformly among {e all healthy} ports (for NIP, minus
    the input port).  A deflection into an edge node strands the packet
    there; the edge then asks the controller for a fresh route ID — the
    paper's second edge-handling approach, used in all its tests.  The port
    selected by the modulo computation is always honoured wherever it
    points; delivery to the egress host works through it. *)

type t =
  | No_deflection
      (** baseline: drop when the computed port is unusable (the paper's
          "no deflection" curve in Fig. 4) *)
  | Hot_potato
      (** HP: first unusable computed port marks the packet deflected;
          deflected packets random-walk over healthy ports *)
  | Any_valid_port
      (** AVP: always recompute the modulo; random pick (including the
          input port) only when the computed port is unusable *)
  | Not_input_port
      (** NIP: AVP, additionally never returning the packet through its
          input port (Algorithm 1) *)

val all : t list
val to_string : t -> string
val of_string : string -> t option

(** Liveness and orientation of one local port. *)
type port_state = {
  up : bool; (** link currently usable *)
  to_host : bool; (** far end is an edge node *)
}

type decision =
  | Forward of int (** output port index *)
  | Drop

(** What the switch needs to know about the packet in flight. *)
type packet_view = {
  route_id : Bignum.Z.t;
  in_port : int;
  deflected : bool;
}

(** [forward policy ~switch_id ~ports ~packet rng] is the forwarding
    decision and the packet's updated [deflected] flag.  [ports.(p)]
    describes local port [p]; [rng] is only consulted on deflection, so
    failure-free forwarding is deterministic.

    This is a convenience wrapper over {!decide} that allocates its result;
    per-packet hot paths (the simulator's switch handler) call {!decide}
    directly and stay off the heap. *)
val forward :
  t ->
  switch_id:int ->
  ports:port_state array ->
  packet:packet_view ->
  Util.Prng.t ->
  decision * bool

(** {2 Allocation-free fast path}

    [decide policy ~computed ~in_port ~deflected ~ports rng] is the same
    forwarding decision with the modulo result supplied by the caller
    (either {!computed_port} or a per-plan residue-table lookup, see
    [Kar.Route.cached_port]) and the result packed into an immediate int:
    {!code_port} is the output port (-1 = drop) and {!code_deflected} the
    packet's updated deflected flag.  The steady-state path (computed port
    healthy) performs no minor-heap allocation; the deflection draw samples
    the healthy ports directly off the [ports] array, consuming the PRNG
    stream draw-for-draw identically to the candidate-list implementation
    it replaced (seeded traces are unchanged). *)
val decide :
  t ->
  computed:int ->
  in_port:int ->
  deflected:bool ->
  ports:port_state array ->
  Util.Prng.t ->
  int

val code_port : int -> int
val code_deflected : int -> bool

(** {2 Symbolic decisions}

    The plan compiler ({!Kar_verify.Compiler}) needs the forwarding
    decision as a {e set}, not a sample: which port is taken
    deterministically, or exactly which candidates a deflection draw
    ranges over.  [enumerate] is that mirror of {!decide}; the
    differential test suite pins the two together for every policy, mask,
    input port and deflected flag. *)
type choice =
  | Take of int
      (** the computed port, taken deterministically; the deflected flag
          is preserved *)
  | Pick of int
      (** a uniform draw over the ports in this bitmask (bit [p] = port
          [p]); the packet's deflected flag becomes [true].  Includes
          NIP's forced bounce through the input port as the singleton
          case. *)
  | Stuck  (** no usable port: {!decide} drops *)

(** [enumerate policy ~computed ~in_port ~deflected ~degree ~up] is the
    symbolic forwarding decision at a switch of [degree] ports whose
    liveness is [up].  Agrees with {!decide} pointwise: [Take p] iff
    [decide] returns [p] without consulting the PRNG, [Pick m] iff
    [decide]'s result is a uniform draw over exactly the ports in [m],
    [Stuck] iff [decide] drops. *)
val enumerate :
  t ->
  computed:int ->
  in_port:int ->
  deflected:bool ->
  degree:int ->
  up:(int -> bool) ->
  choice

(** [computed_port ~switch_id ~route_id] is the raw modulo result
    [<R>_s] (which may not name an existing port), via the remainder-only
    kernel {!Bignum.Z.rem_int}. *)
val computed_port : switch_id:int -> route_id:Bignum.Z.t -> int

(** [computed_port_flat ~switch_id buf] is {!computed_port} over a
    {!Wire.Flat} packet image: the remainder fold runs directly on the
    buffer's route-ID limb words, allocating nothing. *)
val computed_port_flat : switch_id:int -> Bytes.t -> int

(** [via_computed policy ~switch_id ~packet ~port] — given that [forward]
    chose [port] for [packet], was that the modulo computation rather than
    a random deflection draw?  Sound because every policy's random draw is
    constrained away from the computed port in the relevant state (HP
    random-walks deflected packets; NIP excludes the input port).  Used by
    the flight recorder to classify decisions offline. *)
val via_computed :
  t -> switch_id:int -> packet:packet_view -> port:int -> bool

(** [via_computed_port] is {!via_computed} with the modulo result already
    in hand — the form used next to {!decide}, where the computed port was
    a cached-table lookup and need not be recomputed. *)
val via_computed_port :
  t -> computed:int -> in_port:int -> deflected:bool -> port:int -> bool
