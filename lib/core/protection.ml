module Graph = Topo.Graph
module Paths = Topo.Paths

let core_link l g =
  Graph.is_core g l.Graph.ep0.node && Graph.is_core g l.Graph.ep1.node

let tree_hops g ~dest members =
  let usable l = core_link l g in
  let dist, parent = Paths.bfs g ~usable dest in
  List.filter_map
    (fun m_label ->
      match Graph.find_label g m_label with
      | None -> None
      | Some m ->
        if m = dest || dist.(m) = max_int then None
        else Some (m_label, Graph.label g parent.(m)))
    members

let off_path_members g ~path ~radius =
  let on_path v = List.mem v path in
  let usable l = core_link l g in
  (* Multi-source BFS from the path. *)
  let n = Graph.n_nodes g in
  let dist = Array.make n max_int in
  let q = Queue.create () in
  List.iter
    (fun v ->
      dist.(v) <- 0;
      Queue.add v q)
    path;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun (_, l, far) ->
        if usable l && dist.(far) = max_int then begin
          dist.(far) <- dist.(v) + 1;
          Queue.add far q
        end)
      (Graph.ports g v)
  done;
  Graph.core_nodes g
  |> List.filter (fun v -> (not (on_path v)) && dist.(v) <> max_int && dist.(v) <= radius)
  |> List.map (fun v -> (dist.(v), Graph.label g v))
  |> List.sort Stdlib.compare
  |> List.map snd

let full_members g ~path =
  off_path_members g ~path ~radius:max_int

let select_within_budget g ~plan ~dest ~members ~bits =
  let hops = tree_hops g ~dest members in
  List.fold_left
    (fun (plan, chosen) hop ->
      match Route.protect g plan [ hop ] with
      | Ok candidate when candidate.Route.bit_length <= bits ->
        (candidate, chosen @ [ hop ])
      | Ok _ | Error _ -> (plan, chosen))
    (plan, []) hops

let coverage g ~plan ~failed =
  let failed_link = Graph.link g failed in
  (* Find the path switch whose forward hop uses the failed link. *)
  let rec upstream = function
    | a :: (b :: _ as rest) ->
      (match Graph.link_between g a b with
       | Some id when id = failed -> Some (a, b)
       | _ -> upstream rest)
    | _ -> None
  in
  let residue_port label =
    List.find_map
      (fun r -> if r.Rns.modulus = label then Some r.Rns.value else None)
      plan.Route.residues
  in
  let dest =
    match List.rev plan.Route.core_path with
    | [] -> invalid_arg "Protection.coverage: empty path"
    | last :: _ -> last
  in
  match upstream plan.Route.core_path with
  | None -> 1.0 (* the failed link is not on the path: nothing to cover *)
  | Some (v, _) ->
    let in_node =
      (* predecessor of v on the path, if any *)
      let rec pred = function
        | a :: b :: _ when b = v -> Some a
        | _ :: rest -> pred rest
        | [] -> None
      in
      pred plan.Route.core_path
    in
    (* Deterministic drive: follow residues (and forced degree-2 moves)
       until the destination, a dead end, or a revisit. *)
    let rec driven visited node from_node =
      if node = dest then true
      else if List.mem node visited then false
      else begin
        let next =
          match residue_port (Graph.label g node) with
          | Some p when p < Graph.degree g node ->
            let l = Graph.link_at g node p in
            if l.Graph.id = failed then None
            else Some (Graph.other_end l node).Graph.node
          | Some _ -> None
          | None ->
            (* unprotected: only a forced move counts as driven *)
            let candidates =
              List.filter_map
                (fun (_, l, far) ->
                  if l.Graph.id = failed || far = from_node
                     || not (Graph.is_core g far)
                  then None
                  else Some far)
                (Graph.ports g node)
            in
            (match candidates with [ only ] -> Some only | _ -> None)
        in
        match next with
        | Some far -> driven (node :: visited) far node
        | None -> false
      end
    in
    let alternatives =
      List.filter_map
        (fun (_, l, far) ->
          let excluded_in =
            match in_node with Some p -> far = p | None -> false
          in
          if l.Graph.id = failed_link.Graph.id || excluded_in
             || not (Graph.is_core g far)
          then None
          else Some far)
        (Graph.ports g v)
    in
    match alternatives with
    | [] -> 0.0
    | alts ->
      let covered = List.filter (fun far -> driven [ v ] far v) alts in
      float_of_int (List.length covered) /. float_of_int (List.length alts)
