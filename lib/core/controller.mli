(** The KAR network controller: the component that knows the topology,
    assigns protection, computes route IDs for flows, and re-encodes
    stranded packets (section 2's router component).

    The controller is a pure planning layer over {!Route} and
    {!Protection}; it holds no per-flow network state (KAR cores are
    stateless) and — matching the paper's evaluation setup — ignores
    failure notifications: plans are computed on the failure-free
    topology. *)

module Graph = Topo.Graph

(** The paper's three protection levels (Table 1, Fig. 5). *)
type level =
  | Unprotected
  | Partial
  | Full

val all_levels : level list
val level_to_string : level -> string

(** [scenario_hops sc level] is the protection hop set a scenario uses at
    [level]: [[]] / the scenario's partial hops / partial plus full. *)
val scenario_hops : Topo.Nets.scenario -> level -> (int * int) list

(** [scenario_plan sc level] encodes the scenario's forward route (ingress
    to egress over the primary path) with [level] protection. *)
val scenario_plan : Topo.Nets.scenario -> level -> Route.plan

(** [scenario_reverse_plan sc level] encodes the route for reverse traffic
    (ACKs): the reversed primary path, protected by giving the {e same}
    member switches their tree hop toward the reverse destination. *)
val scenario_reverse_plan : Topo.Nets.scenario -> level -> Route.plan

(** [route g ~src ~dst ~protection] plans a shortest-path route between two
    edge nodes and folds in the given protection hops.  [usable] (default:
    everything) restricts the links the primary path may use — the serving
    control plane ({!Kar_service}) passes the currently-failed link set so
    post-failure replans route around known failures; protection hops are
    not filtered (they are data-plane residues, vetted by the data plane's
    own liveness check).
    @raise Invalid_argument when no path exists or encoding fails. *)
val route :
  ?usable:(Graph.link -> bool) ->
  Graph.t -> src:Graph.node -> dst:Graph.node -> protection:(int * int) list -> Route.plan

(** [protected_route g ~src ~dst ~level] plans a shortest-path route and
    folds in protection computed uniformly for the pair (rather than the
    hand-pinned scenario hops): a shortest-path tree rooted at the egress
    core switch over the off-path members the level selects — radius-1
    neighbours of the path for [Partial], every off-path core switch in
    the component for [Full].  This is the planner the resilience
    verifier sweeps across all edge pairs.
    @raise Invalid_argument when no path exists or encoding fails. *)
val protected_route :
  Graph.t -> src:Graph.node -> dst:Graph.node -> level:level -> Route.plan

(** [disjoint_plans g ~src ~dst ~k] plans up to [k] mutually edge-disjoint
    routes between two edge nodes (greedy shortest-path extraction), each
    encoded as its own route ID.  This is the substrate for 1+1 ingress
    failover and for the multipath use the paper lists as future work: the
    ingress can stripe or switch between the returned route IDs without any
    core involvement. *)
val disjoint_plans :
  Graph.t -> src:Graph.node -> dst:Graph.node -> k:int -> Route.plan list

(** Memoised stranded-packet re-encoding service (the paper's second edge
    approach: "the controller recalculates the route ID based on the best
    path from the edge node to the destination").  Plans are computed on
    the failure-free topology, unprotected, and cached per
    [(edge, destination)] pair. *)
type cache

(** [create_cache ?registry g] — the [ctl/plans-computed] counter registers
    on [registry] (a fresh private registry when omitted). *)
val create_cache : ?registry:Kar_obs.Registry.t -> Graph.t -> cache

(** [reencode cache ~at ~dst] is the fresh route ID from edge [at] to edge
    [dst], or [None] when no path exists or encoding fails. *)
val reencode : cache -> at:Graph.node -> dst:Graph.node -> Bignum.Z.t option

(** [plans_computed cache] counts the [(at, dst)] pairs actually planned so
    far (failed plans included); repeated {!reencode} calls for a cached
    pair do not move it.  Observability for tests and the serving layer. *)
val plans_computed : cache -> int
