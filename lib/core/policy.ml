module Z = Bignum.Z

type t =
  | No_deflection
  | Hot_potato
  | Any_valid_port
  | Not_input_port

let all = [ No_deflection; Hot_potato; Any_valid_port; Not_input_port ]

let to_string = function
  | No_deflection -> "none"
  | Hot_potato -> "hp"
  | Any_valid_port -> "avp"
  | Not_input_port -> "nip"

let of_string = function
  | "none" -> Some No_deflection
  | "hp" -> Some Hot_potato
  | "avp" -> Some Any_valid_port
  | "nip" -> Some Not_input_port
  | _ -> None

type port_state = { up : bool; to_host : bool }

type decision =
  | Forward of int
  | Drop

type packet_view = { route_id : Z.t; in_port : int; deflected : bool }

let computed_port ~switch_id ~route_id = Z.rem_int route_id switch_id

(* Same kernel over a flat packet image: the remainder fold runs directly on
   the buffer's limb words, no Z.t in sight. *)
let computed_port_flat ~switch_id buf = Wire.Flat.rem_route_id buf switch_id

(* Packed forwarding decision: the steady-state data plane must not touch
   the minor heap, so [decide] returns port and deflected-flag in one
   immediate int instead of a (decision * bool) pair.  Port -1 encodes
   Drop; the +1 bias keeps the packed value non-negative. *)
let code ~port ~deflected = ((port + 1) lsl 1) lor (if deflected then 1 else 0)
let code_port c = (c lsr 1) - 1
let code_deflected c = c land 1 = 1

(* Uniform draw over the healthy ports (for NIP, minus the input port),
   straight off the [ports] array: count the candidates, draw one index,
   select it — no candidate list, no [List.nth].  [exclude = -1] excludes
   nothing.  Consumes exactly one PRNG draw when there are >= 2 candidates
   and none otherwise ([Prng.int _ 1] short-circuits), draw-for-draw
   identical to the list-based pick it replaces, so seeded traces are
   unchanged.  Returns the port, or -1 when no candidate is healthy. *)
let draw_healthy ports ~exclude rng =
  let n = Array.length ports in
  let rec count p acc =
    if p >= n then acc
    else count (p + 1) (if ports.(p).up && p <> exclude then acc + 1 else acc)
  in
  match count 0 0 with
  | 0 -> -1
  | k ->
    let rec nth p remaining =
      if ports.(p).up && p <> exclude then
        if remaining = 0 then p else nth (p + 1) (remaining - 1)
      else nth (p + 1) remaining
    in
    nth 0 (Util.Prng.int rng k)

let decide policy ~computed:c ~in_port ~deflected ~ports rng =
  let n_ports = Array.length ports in
  let computed_usable = c < n_ports && ports.(c).up in
  match policy with
  | No_deflection ->
    if computed_usable then code ~port:c ~deflected else code ~port:(-1) ~deflected
  | Hot_potato ->
    if deflected then code ~port:(draw_healthy ports ~exclude:(-1) rng) ~deflected:true
    else if computed_usable then code ~port:c ~deflected:false
    else code ~port:(draw_healthy ports ~exclude:(-1) rng) ~deflected:true
  | Any_valid_port ->
    if computed_usable then code ~port:c ~deflected
    else code ~port:(draw_healthy ports ~exclude:(-1) rng) ~deflected:true
  | Not_input_port ->
    if computed_usable && c <> in_port then code ~port:c ~deflected
    else begin
      match draw_healthy ports ~exclude:in_port rng with
      | -1 ->
        (* Degree-one dead end: the paper's Algorithm 1 would spin forever;
           we send the packet back where it came from if that port is up. *)
        code
          ~port:
            (if in_port >= 0 && in_port < n_ports && ports.(in_port).up then
               in_port
             else -1)
          ~deflected:true
      | port -> code ~port ~deflected:true
    end

(* The symbolic mirror of [decide]: instead of drawing one candidate, name
   the full decision — the computed port taken deterministically, the exact
   candidate set a deflection draw ranges over, or a dead end.  The plan
   compiler ([Kar_verify.Compiler]) lowers switches through this, and the
   differential test in test_verify pins it draw-for-draw to [decide]:
   [Take p] iff [decide] returns [p] with the flag preserved, [Pick m] iff
   [decide] returns a member of [m] with the flag set, [Stuck] iff [decide]
   drops. *)
type choice =
  | Take of int
  | Pick of int
  | Stuck

let healthy_mask ~degree ~up ~exclude =
  let rec go p acc =
    if p >= degree then acc
    else go (p + 1) (if up p && p <> exclude then acc lor (1 lsl p) else acc)
  in
  go 0 0

let enumerate policy ~computed:c ~in_port ~deflected ~degree ~up =
  let computed_usable = c >= 0 && c < degree && up c in
  let pick_or_stuck mask = if mask = 0 then Stuck else Pick mask in
  match policy with
  | No_deflection -> if computed_usable then Take c else Stuck
  | Hot_potato ->
    if deflected then pick_or_stuck (healthy_mask ~degree ~up ~exclude:(-1))
    else if computed_usable then Take c
    else pick_or_stuck (healthy_mask ~degree ~up ~exclude:(-1))
  | Any_valid_port ->
    if computed_usable then Take c
    else pick_or_stuck (healthy_mask ~degree ~up ~exclude:(-1))
  | Not_input_port ->
    if computed_usable && c <> in_port then Take c
    else begin
      match healthy_mask ~degree ~up ~exclude:in_port with
      | 0 ->
        (* Degree-one dead end: [decide] bounces the packet back through
           its input port when that port is up — a forced singleton
           choice, not a computed forward. *)
        if in_port >= 0 && in_port < degree && up in_port then
          Pick (1 lsl in_port)
        else Stuck
      | mask -> Pick mask
    end

(* Could [forward] have returned [port] via the modulo computation rather
   than a random draw?  Decidable after the fact because every random draw
   is constrained: HP random-walks deflected packets regardless of the
   computed port, and NIP never re-emits the computed port when it equals
   the input port.  Used by the flight recorder to classify decisions
   without touching the hot path. *)
let via_computed_port policy ~computed:c ~in_port ~deflected ~port =
  port = c
  && (match policy with
      | No_deflection -> true
      | Hot_potato -> not deflected
      | Any_valid_port -> true
      | Not_input_port -> c <> in_port)

let via_computed policy ~switch_id ~(packet : packet_view) ~port =
  via_computed_port policy
    ~computed:(computed_port ~switch_id ~route_id:packet.route_id)
    ~in_port:packet.in_port ~deflected:packet.deflected ~port

let forward policy ~switch_id ~ports ~packet rng =
  let c = computed_port ~switch_id ~route_id:packet.route_id in
  let d =
    decide policy ~computed:c ~in_port:packet.in_port
      ~deflected:packet.deflected ~ports rng
  in
  let port = code_port d in
  ((if port < 0 then Drop else Forward port), code_deflected d)
