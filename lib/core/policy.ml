module Z = Bignum.Z

type t =
  | No_deflection
  | Hot_potato
  | Any_valid_port
  | Not_input_port

let all = [ No_deflection; Hot_potato; Any_valid_port; Not_input_port ]

let to_string = function
  | No_deflection -> "none"
  | Hot_potato -> "hp"
  | Any_valid_port -> "avp"
  | Not_input_port -> "nip"

let of_string = function
  | "none" -> Some No_deflection
  | "hp" -> Some Hot_potato
  | "avp" -> Some Any_valid_port
  | "nip" -> Some Not_input_port
  | _ -> None

type port_state = { up : bool; to_host : bool }

type decision =
  | Forward of int
  | Drop

type packet_view = { route_id : Z.t; in_port : int; deflected : bool }

let computed_port ~switch_id ~route_id =
  Z.to_int_exn (Z.erem route_id (Z.of_int switch_id))

(* Candidate set for a random deflection draw: every healthy port
   (host-facing ones included -- a packet deflected into an edge strands
   there and is re-encoded, the paper's second edge-handling approach).
   [exclude] removes the input port for NIP. *)
let random_candidates ports ~exclude =
  let acc = ref [] in
  Array.iteri
    (fun p st ->
      if st.up && (match exclude with Some q -> p <> q | None -> true) then
        acc := p :: !acc)
    ports;
  List.rev !acc

let pick rng = function
  | [] -> Drop
  | [ p ] -> Forward p
  | candidates -> Forward (List.nth candidates (Util.Prng.int rng (List.length candidates)))

(* Could [forward] have returned [port] via the modulo computation rather
   than a random draw?  Decidable after the fact because every random draw
   is constrained: HP random-walks deflected packets regardless of the
   computed port, and NIP never re-emits the computed port when it equals
   the input port.  Used by the flight recorder to classify decisions
   without touching the hot path. *)
let via_computed policy ~switch_id ~(packet : packet_view) ~port =
  let c = computed_port ~switch_id ~route_id:packet.route_id in
  port = c
  && (match policy with
      | No_deflection -> true
      | Hot_potato -> not packet.deflected
      | Any_valid_port -> true
      | Not_input_port -> c <> packet.in_port)

let forward policy ~switch_id ~ports ~packet rng =
  let n_ports = Array.length ports in
  let c = computed_port ~switch_id ~route_id:packet.route_id in
  let computed_usable = c < n_ports && ports.(c).up in
  match policy with
  | No_deflection ->
    ((if computed_usable then Forward c else Drop), packet.deflected)
  | Hot_potato ->
    if packet.deflected then
      (pick rng (random_candidates ports ~exclude:None), true)
    else if computed_usable then (Forward c, false)
    else (pick rng (random_candidates ports ~exclude:None), true)
  | Any_valid_port ->
    if computed_usable then (Forward c, packet.deflected)
    else (pick rng (random_candidates ports ~exclude:None), true)
  | Not_input_port ->
    if computed_usable && c <> packet.in_port then (Forward c, packet.deflected)
    else begin
      match random_candidates ports ~exclude:(Some packet.in_port) with
      | [] ->
        (* Degree-one dead end: the paper's Algorithm 1 would spin forever;
           we send the packet back where it came from if that port is up. *)
        ((if packet.in_port < n_ports && ports.(packet.in_port).up then
            Forward packet.in_port
          else Drop),
         true)
      | candidates -> (pick rng candidates, true)
    end
