module Graph = Topo.Graph
module Paths = Topo.Paths

type strategy =
  | Primes_ascending
  | Degree_descending
  | Prime_powers
  | Random_primes of int

let strategy_to_string = function
  | Primes_ascending -> "primes-ascending"
  | Degree_descending -> "degree-descending"
  | Prime_powers -> "prime-powers"
  | Random_primes seed -> Printf.sprintf "random-primes(%d)" seed

let is_prime n =
  if n < 2 then false
  else begin
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
    go 2
  end

let primes n =
  if n < 0 then invalid_arg "Ids.primes: negative count";
  let rec collect acc found candidate =
    if found = n then List.rev acc
    else if is_prime candidate then collect (candidate :: acc) (found + 1) (candidate + 1)
    else collect acc found (candidate + 1)
  in
  collect [] 0 2

(* Prime powers up to [bound], sorted ascending, tagged with their base
   prime (pairwise coprimality allows at most one value per base). *)
let prime_power_pool bound =
  let pool = ref [] in
  for p = 2 to bound do
    if is_prime p then begin
      let v = ref p in
      while !v <= bound do
        pool := (!v, p) :: !pool;
        v := !v * p
      done
    end
  done;
  List.sort Stdlib.compare !pool

let assign g strategy =
  let core = Graph.core_nodes g in
  let edge_labels =
    List.map (Graph.label g) (Graph.edge_nodes g)
  in
  let n_core = List.length core in
  let order =
    match strategy with
    | Primes_ascending | Prime_powers -> core
    | Degree_descending ->
      List.sort
        (fun a b -> Stdlib.compare (Graph.degree g b) (Graph.degree g a))
        core
    | Random_primes seed ->
      let arr = Array.of_list core in
      Util.Prng.shuffle (Util.Prng.of_int seed) arr;
      Array.to_list arr
  in
  (* Candidate pool: (value, base prime) pairs ascending. *)
  let pool =
    match strategy with
    | Prime_powers -> prime_power_pool (max 64 (16 * n_core))
    | Primes_ascending | Degree_descending | Random_primes _ ->
      List.map (fun p -> (p, p)) (primes (max 16 (4 * n_core)))
  in
  let used_bases = Hashtbl.create 64 in
  let used_values = Hashtbl.create 64 in
  List.iter (fun l -> Hashtbl.replace used_values l ()) edge_labels;
  let pick ~min_value =
    let rec go = function
      | [] -> failwith "Ids.assign: candidate pool exhausted"
      | (v, base) :: rest ->
        if v > min_value && (not (Hashtbl.mem used_bases base))
           && not (Hashtbl.mem used_values v)
        then begin
          Hashtbl.replace used_bases base ();
          Hashtbl.replace used_values v ();
          v
        end
        else go rest
    in
    go pool
  in
  let mapping = Array.init (Graph.n_nodes g) (fun v -> Graph.label g v) in
  List.iter
    (fun v ->
      (* strictly greater than the degree so every port is encodable *)
      mapping.(v) <- pick ~min_value:(max 1 (Graph.degree g v)))
    order;
  Graph.relabel g mapping

type issue =
  | Not_coprime of int * int
  | Id_too_small of int
  | Port_unencodable of { id : int; degree : int }

let pp_issue ppf = function
  | Not_coprime (a, b) -> Format.fprintf ppf "SW%d and SW%d share a factor" a b
  | Id_too_small id -> Format.fprintf ppf "SW%d: id must exceed 1" id
  | Port_unencodable { id; degree } ->
    Format.fprintf ppf "SW%d: degree %d has ports its id cannot encode" id degree

let is_fatal = function
  | Not_coprime _ | Id_too_small _ -> true
  | Port_unencodable _ -> false

let validate_issues g =
  let issues = ref [] in
  let core = Graph.core_nodes g in
  List.iter
    (fun v ->
      let id = Graph.label g v in
      if id <= 1 then issues := Id_too_small id :: !issues;
      if id <= Graph.degree g v - 1 then
        issues := Port_unencodable { id; degree = Graph.degree g v } :: !issues)
    core;
  let rec pairs = function
    | [] -> ()
    | v :: rest ->
      List.iter
        (fun u ->
          let a = Graph.label g v and b = Graph.label g u in
          if not (Rns.coprime a b) then issues := Not_coprime (a, b) :: !issues)
        rest;
      pairs rest
  in
  pairs core;
  List.rev !issues

let validate g =
  List.map (fun i -> Format.asprintf "%a" pp_issue i) (validate_issues g)

let route_bits g labels =
  ignore g;
  Rns.bit_length_bound (Rns.modulus_product labels)

let mean_route_bits g ~trials ~seed =
  if trials <= 0 then invalid_arg "Ids.mean_route_bits: trials must be positive";
  let rng = Util.Prng.of_int seed in
  let core = Array.of_list (Graph.core_nodes g) in
  if Array.length core < 2 then invalid_arg "Ids.mean_route_bits: need two core nodes";
  let total = ref 0 and counted = ref 0 in
  while !counted < trials do
    let a = Util.Prng.choice rng core and b = Util.Prng.choice rng core in
    if a <> b then begin
      match Paths.shortest_path g a b with
      | None -> ()
      | Some path ->
        let labels = List.map (Graph.label g) path in
        total := !total + route_bits g labels;
        incr counted
    end
  done;
  float_of_int !total /. float_of_int trials
