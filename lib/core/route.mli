(** Route-ID construction: turning a path (plus driven-deflection protection
    hops) into the single integer a KAR edge node stamps on packets.

    A {!plan} records everything the controller decided: the residues
    (switch ID, output port), the CRT-encoded route ID and modulus, the core
    path, and the protection hops folded in.  Plans are immutable values;
    stamping a packet is just copying [route_id]. *)

module Z = Bignum.Z

type plan = {
  route_id : Z.t;
  modulus : Z.t; (** product of all switch IDs in the plan (Eq. 1) *)
  residues : Rns.residue list; (** in path order, protection hops last *)
  core_path : Topo.Graph.node list; (** primary path, core nodes only *)
  protection : (int * int) list; (** directed hops (switch, next) included *)
  bit_length : int; (** Eq. 9 bound for this plan's modulus *)
  residue_ports : int array;
      (** the per-plan residue cache, built once at encode/extend time:
          [residue_ports.(switch_id)] is the plan's port at that switch, or
          [-1] when the switch carries no residue.  Rebuilt whenever the
          plan is re-encoded ({!protect}, [Rns.extend]); read through
          {!cached_port} on the data plane. *)
}

type error =
  | Rns_error of Rns.error
  | Not_adjacent of int * int (** labels of a non-adjacent consecutive pair *)
  | Not_core of int (** label of a non-core node used as a switch *)
  | Port_not_encodable of int * int
      (** (switch label, port): port index >= switch ID, so the residue
          cannot represent it *)
  | Duplicate_switch of int
      (** a switch can carry only one residue per route ID (the paper's
          intrinsic constraint discussed around Fig. 8) *)

val pp_error : Format.formatter -> error -> unit

(** [of_core_path g path ~egress_port] encodes the pure source route: each
    core node forwards toward its successor; the last core node uses
    [egress_port] (its port toward the destination edge).  No protection. *)
val of_core_path :
  Topo.Graph.t -> Topo.Graph.node list -> egress_port:int -> (plan, error) result

(** [of_labels g labels ~egress_label] is {!of_core_path} with nodes given
    by switch ID, the egress port resolved toward the edge node labelled
    [egress_label].  Convenience for scenario code. *)
val of_labels : Topo.Graph.t -> int list -> egress_label:int -> (plan, error) result

(** [protect g plan hops] folds directed protection hops
    [(switch_label, next_label)] into the plan, recomputing the route ID
    with the extra residues (still one CRT; order irrelevant by Eq. 4
    commutativity). *)
val protect : Topo.Graph.t -> plan -> (int * int) list -> (plan, error) result

(** [protect_exn], [of_labels_exn]: raising variants for scenario code
    where failure is a programming error. *)
val of_labels_exn : Topo.Graph.t -> int list -> egress_label:int -> plan

val protect_exn : Topo.Graph.t -> plan -> (int * int) list -> plan

(** [cached_port plan ~route_id ~switch_id] is the data-plane forwarding
    answer with the residue cache in front of the modulo kernel: when
    [route_id] is the plan's own ID and [switch_id] carries a residue, one
    int-array read; otherwise (stray switch, or a packet re-encoded at an
    edge with a fresh route ID) it falls back to
    [Policy.computed_port].  Always equal to [<route_id>_switch_id]. *)
val cached_port : plan -> route_id:Z.t -> switch_id:int -> int

(** [cached_port_flat plan buf ~switch_id] is {!cached_port} over a
    {!Wire.Flat} packet image: the cache guard compares the buffer's limb
    words against the plan's route ID (no pointer identity on flat buffers),
    falling back to the in-place remainder fold on a miss.  Allocation-free
    either way. *)
val cached_port_flat : plan -> Bytes.t -> switch_id:int -> int

(** [residue_table plan] is the plan's switch-to-port map as a function:
    the cached port for switches in the plan, the computed [<R>_s] (for the
    plan's own route ID) otherwise. *)
val residue_table : plan -> int -> int

(** [next_hop g plan v] is the port switch [v] will compute for this plan's
    route ID ([<R>_s]), whether or not [v] is in the plan — useful for
    predicting where stray packets go. *)
val next_hop : plan -> switch_id:int -> int

(** [verify g plan] checks the invariant that every residue in the plan is
    recovered by the modulo operation ([<R>_{s_i} = p_i], Eq. 3); returns
    the list of violations (empty when the encoding is sound). *)
val verify : plan -> (int * int * int) list
