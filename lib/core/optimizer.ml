module Graph = Topo.Graph

type objective =
  | Worst_delivery
  | Mean_delivery
  | Expected_hops

let objective_to_string = function
  | Worst_delivery -> "worst-case delivery"
  | Mean_delivery -> "mean delivery"
  | Expected_hops -> "expected hops"

type step = {
  hop : int * int;
  score_before : float;
  score_after : float;
  bits_after : int;
}

type result = {
  plan : Route.plan;
  steps : step list;
  score : float;
}

let score g ~plan ~policy ~failures ~src ~dst ~objective =
  let analyses =
    List.map
      (fun link -> Markov.analyze g ~plan ~policy ~failed:[ link ] ~src ~dst)
      failures
  in
  match analyses with
  | [] -> 1.0
  | _ ->
    let deliveries = List.map (fun a -> a.Markov.p_delivered) analyses in
    (match objective with
     | Worst_delivery -> List.fold_left Stdlib.min 1.0 deliveries
     | Mean_delivery ->
       List.fold_left ( +. ) 0.0 deliveries /. float_of_int (List.length deliveries)
     | Expected_hops ->
       (* higher is better: negative hops, with undelivered mass heavily
          penalised so delivery still dominates *)
       let total =
         List.fold_left
           (fun acc a ->
             let hops =
               if Float.is_nan a.Markov.expected_hops_delivered then 1000.0
               else a.Markov.expected_hops_delivered
             in
             acc -. hops -. (1000.0 *. (1.0 -. a.Markov.p_delivered)))
           0.0 analyses
       in
       total /. float_of_int (List.length analyses))

let default_candidates g plan =
  let dest =
    match List.rev plan.Route.core_path with
    | last :: _ -> last
    | [] -> invalid_arg "Optimizer: empty plan path"
  in
  let members = Protection.off_path_members g ~path:plan.Route.core_path ~radius:max_int in
  Protection.tree_hops g ~dest members

let optimize g ~plan ~policy ~failures ~src ~dst ~candidates ~bits ~objective =
  let candidates =
    match candidates with [] -> default_candidates g plan | cs -> cs
  in
  let evaluate plan = score g ~plan ~policy ~failures ~src ~dst ~objective in
  let rec loop plan current steps remaining =
    (* try every remaining hop; keep the best strict improvement *)
    let best =
      List.fold_left
        (fun best hop ->
          match Route.protect g plan [ hop ] with
          | Error _ -> best
          | Ok candidate ->
            if candidate.Route.bit_length > bits then best
            else begin
              let s = evaluate candidate in
              match best with
              | Some (_, _, best_score) when best_score >= s -> best
              | _ when s > current +. 1e-12 -> Some (hop, candidate, s)
              | _ -> best
            end)
        None remaining
    in
    match best with
    | None -> (plan, current, List.rev steps)
    | Some (hop, better, s) ->
      let step =
        {
          hop;
          score_before = current;
          score_after = s;
          bits_after = better.Route.bit_length;
        }
      in
      loop better s (step :: steps) (List.filter (fun h -> h <> hop) remaining)
  in
  let initial = evaluate plan in
  let plan, final, steps = loop plan initial [] candidates in
  { plan; steps; score = final }
