module Graph = Topo.Graph

type outcome =
  | Delivered of int
  | Stranded of Graph.node * int
  | Dropped of int
  | Ttl_exceeded

type result = {
  trials : int;
  delivered : int;
  stranded : int;
  dropped : int;
  ttl_exceeded : int;
  mean_hops : float;
  max_hops : int;
  p_delivery : float;
}

let port_states g ~failed v =
  Array.init (Graph.degree g v) (fun p ->
      let link = Graph.link_at g v p in
      let far = (Graph.other_end link v).Graph.node in
      {
        Policy.up = not (List.mem link.Graph.id failed);
        to_host = not (Graph.is_core g far);
      })

(* Per-core-switch PRNG streams split from one master seed, in the exact
   order {!Netsim.Karnet.install_switches} splits them — the contract that
   makes a walk and a zero-delay netsim run take identical random draws. *)
let switch_rngs g ~seed =
  let master = Util.Prng.of_int seed in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v -> Hashtbl.add tbl v (Util.Prng.split master))
    (Graph.core_nodes g);
  fun v ->
    match Hashtbl.find_opt tbl v with
    | Some rng -> rng
    | None -> invalid_arg "Walk.switch_rngs: not a core node"

let walk g ~plan ~policy ~failed ~src ~dst ~ttl ?recorder ?(uid = 0) ?rng_for
    rng =
  let rng_for = match rng_for with Some f -> f | None -> fun _ -> rng in
  let record ~vtime ~switch ~in_port ~out_port ~ttl:remaining action =
    match recorder with
    | None -> ()
    | Some r ->
      ignore
        (Trace.Recorder.record r ~vtime ~uid ~switch ~in_port ~out_port
           ~ttl:remaining action)
  in
  record ~vtime:0.0 ~switch:(Graph.label g src) ~in_port:(-1) ~out_port:(-1)
    ~ttl Trace.Event.Inject;
  (* Enter the core through the source edge's first healthy port. *)
  let first_hop () =
    let rec find p =
      if p >= Graph.degree g src then None
      else begin
        let link = Graph.link_at g src p in
        if List.mem link.Graph.id failed then find (p + 1)
        else Some (Graph.other_end link src)
      end
    in
    find 0
  in
  match first_hop () with
  | None ->
    record ~vtime:0.0 ~switch:(-1) ~in_port:(-1) ~out_port:(-1) ~ttl
      (Trace.Event.Drop "link_down");
    Dropped 0
  | Some entry ->
    let rec step (node : Graph.node) in_port hops deflected =
      let label = Graph.label g node in
      if node = dst then begin
        record ~vtime:(float_of_int hops) ~switch:label ~in_port ~out_port:(-1)
          ~ttl:(ttl - hops) Trace.Event.Deliver;
        Delivered hops
      end
      else if not (Graph.is_core g node) then begin
        record ~vtime:(float_of_int hops) ~switch:label ~in_port ~out_port:(-1)
          ~ttl:(ttl - hops) (Trace.Event.Drop "stranded");
        Stranded (node, hops)
      end
      else if hops >= ttl then begin
        record ~vtime:(float_of_int hops) ~switch:label ~in_port ~out_port:(-1)
          ~ttl:(ttl - hops - 1) (Trace.Event.Drop "ttl");
        Ttl_exceeded
      end
      else begin
        let view =
          { Policy.route_id = plan.Route.route_id; in_port; deflected }
        in
        let decision, deflected' =
          Policy.forward policy ~switch_id:label
            ~ports:(port_states g ~failed node)
            ~packet:view (rng_for node)
        in
        match decision with
        | Policy.Drop ->
          record ~vtime:(float_of_int hops) ~switch:label ~in_port
            ~out_port:(-1) ~ttl:(ttl - hops - 1) (Trace.Event.Drop "no_route");
          Dropped hops
        | Policy.Forward port ->
          (match recorder with
           | None -> ()
           | Some r ->
             let action =
               Trace.Event.decision_action
                 ~via_computed:
                   (Policy.via_computed policy ~switch_id:label ~packet:view
                      ~port)
                 ~deflected:view.Policy.deflected
                 ~protected_:(Trace.Recorder.is_protected r label)
                 ~policy:(Policy.to_string policy)
             in
             record ~vtime:(float_of_int hops) ~switch:label ~in_port
               ~out_port:port ~ttl:(ttl - hops - 1) action);
          let far = Graph.other_end (Graph.link_at g node port) node in
          step far.Graph.node far.Graph.port (hops + 1) deflected'
      end
    in
    step entry.Graph.node entry.Graph.port 0 false

let run g ~plan ~policy ~failed ~src ~dst ~trials ~seed ?(ttl = 128) () =
  if trials <= 0 then invalid_arg "Walk.run: trials must be positive";
  let rng = Util.Prng.of_int seed in
  let delivered = ref 0
  and stranded = ref 0
  and dropped = ref 0
  and ttl_exceeded = ref 0
  and hop_total = ref 0
  and hop_max = ref 0 in
  for _ = 1 to trials do
    match walk g ~plan ~policy ~failed ~src ~dst ~ttl rng with
    | Delivered h ->
      incr delivered;
      hop_total := !hop_total + h;
      if h > !hop_max then hop_max := h
    | Stranded _ -> incr stranded
    | Dropped _ -> incr dropped
    | Ttl_exceeded -> incr ttl_exceeded
  done;
  {
    trials;
    delivered = !delivered;
    stranded = !stranded;
    dropped = !dropped;
    ttl_exceeded = !ttl_exceeded;
    mean_hops =
      (if !delivered = 0 then nan
       else float_of_int !hop_total /. float_of_int !delivered);
    max_hops = !hop_max;
    p_delivery = float_of_int !delivered /. float_of_int trials;
  }

let hop_histogram g ~plan ~policy ~failed ~src ~dst ~trials ~seed ?(ttl = 128) () =
  let rng = Util.Prng.of_int seed in
  let hist = Array.make (ttl + 1) 0 in
  for _ = 1 to trials do
    match walk g ~plan ~policy ~failed ~src ~dst ~ttl rng with
    | Delivered h -> hist.(h) <- hist.(h) + 1
    | Stranded _ | Dropped _ | Ttl_exceeded -> ()
  done;
  hist
