(** Analysis-guided protection planning.

    {!Protection.select_within_budget} fills a bit budget in
    distance-from-path order — the natural heuristic, but (as the budget
    ablation shows) early hops can even {e hurt} when they funnel deflected
    packets back toward the failure.  This module plans protection using
    the exact {!Markov} analysis as the objective: each greedy step adds
    the hop that most improves the chosen objective over a set of failure
    cases, and steps that do not improve it are skipped rather than
    blindly included.

    Objectives are evaluated exactly (no sampling), so optimization is
    deterministic and reproducible. *)

module Graph = Topo.Graph

(** What to optimize, aggregated over the given failure cases. *)
type objective =
  | Worst_delivery (** maximize the minimum delivery probability *)
  | Mean_delivery (** maximize the average delivery probability *)
  | Expected_hops
      (** minimize the average expected hop count of delivered packets
          (ties broken by delivery probability) *)

val objective_to_string : objective -> string

type step = {
  hop : int * int; (** the protection hop added *)
  score_before : float;
  score_after : float;
  bits_after : int;
}

type result = {
  plan : Route.plan;
  steps : step list; (** in the order taken *)
  score : float; (** final objective value *)
}

(** [optimize g ~plan ~policy ~failures ~src ~dst ~candidates ~bits
     ~objective] greedily folds candidate hops into [plan] while the
    encoded size stays within [bits], keeping only hops that strictly
    improve the objective (scores are "higher is better" internally; for
    {!Expected_hops} the score is negated hops weighted by delivery).
    Candidates default to tree hops of all off-path switches when [[]] is
    given.  O(|candidates|^2) exact analyses — fine for the paper-scale
    topologies this targets. *)
val optimize :
  Graph.t ->
  plan:Route.plan ->
  policy:Policy.t ->
  failures:Graph.link_id list ->
  src:Graph.node ->
  dst:Graph.node ->
  candidates:(int * int) list ->
  bits:int ->
  objective:objective ->
  result

(** [score g ~plan ~policy ~failures ~src ~dst ~objective] evaluates a plan
    (exposed for tests and for comparing planners). *)
val score :
  Graph.t ->
  plan:Route.plan ->
  policy:Policy.t ->
  failures:Graph.link_id list ->
  src:Graph.node ->
  dst:Graph.node ->
  objective:objective ->
  float
