module Graph = Topo.Graph

type analysis = {
  states : int;
  p_delivered : float;
  p_stranded : float;
  p_dropped : float;
  p_loop : float;
  expected_hops : float;
  expected_hops_delivered : float;
}

let solve a b =
  let n = Array.length b in
  let m = Array.map Array.copy a in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    (* partial pivoting *)
    let pivot = ref col in
    for row = col + 1 to n - 1 do
      if Float.abs m.(row).(col) > Float.abs m.(!pivot).(col) then pivot := row
    done;
    if Float.abs m.(!pivot).(col) < 1e-12 then failwith "Markov.solve: singular system";
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let tb = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- tb
    end;
    for row = col + 1 to n - 1 do
      let factor = m.(row).(col) /. m.(col).(col) in
      if factor <> 0.0 then begin
        for k = col to n - 1 do
          m.(row).(k) <- m.(row).(k) -. (factor *. m.(col).(k))
        done;
        x.(row) <- x.(row) -. (factor *. x.(col))
      end
    done
  done;
  for row = n - 1 downto 0 do
    let acc = ref x.(row) in
    for k = row + 1 to n - 1 do
      acc := !acc -. (m.(row).(k) *. x.(k))
    done;
    x.(row) <- !acc /. m.(row).(row)
  done;
  x

(* Absorption targets of a single transition. *)
type target =
  | To of int (* transient state index *)
  | Absorb_delivered
  | Absorb_stranded
  | Absorb_dropped

let analyze g ~plan ~policy ~failed ~src ~dst =
  if Graph.is_core g src then invalid_arg "Markov.analyze: src must be an edge node";
  let link_down id = List.mem id failed in
  (* State indexing: (node, in_port, deflected) for core nodes. *)
  let index = Hashtbl.create 256 in
  let states = ref [] in
  let n_states = ref 0 in
  let state_id node port defl =
    let key = (node, port, defl) in
    match Hashtbl.find_opt index key with
    | Some i -> i
    | None ->
      let i = !n_states in
      Hashtbl.replace index key i;
      states := key :: !states;
      incr n_states;
      i
  in
  (* Where does a packet leaving [v] by [port] end up? *)
  let classify_exit v port defl =
    let link = Graph.link_at g v port in
    let far = Graph.other_end link v in
    let u = far.Graph.node in
    if u = dst then Absorb_delivered
    else if not (Graph.is_core g u) then Absorb_stranded
    else To (state_id u far.Graph.port defl)
  in
  (* The forwarding distribution at a state: list of (probability, target).
     Mirrors Policy.forward exactly; Test suite cross-checks against the
     Monte-Carlo walker. *)
  let distribution (v, in_port, defl) =
    let switch_id = Graph.label g v in
    let deg = Graph.degree g v in
    let healthy p = not (link_down (Graph.link_at g v p).Graph.id) in
    let all_healthy = List.filter healthy (List.init deg (fun p -> p)) in
    let c =
      Policy.computed_port ~switch_id ~route_id:plan.Route.route_id
    in
    let computed_usable = c < deg && healthy c in
    let uniform targets defl' =
      let k = List.length targets in
      List.map (fun p -> (1.0 /. float_of_int k, classify_exit v p defl')) targets
    in
    match policy with
    | Policy.No_deflection ->
      if computed_usable then [ (1.0, classify_exit v c defl) ]
      else [ (1.0, Absorb_dropped) ]
    | Policy.Hot_potato ->
      if defl then
        (match all_healthy with
         | [] -> [ (1.0, Absorb_dropped) ]
         | ps -> uniform ps true)
      else if computed_usable then [ (1.0, classify_exit v c false) ]
      else
        (match all_healthy with
         | [] -> [ (1.0, Absorb_dropped) ]
         | ps -> uniform ps true)
    | Policy.Any_valid_port ->
      if computed_usable then [ (1.0, classify_exit v c defl) ]
      else
        (match all_healthy with
         | [] -> [ (1.0, Absorb_dropped) ]
         | ps -> uniform ps true)
    | Policy.Not_input_port ->
      if computed_usable && c <> in_port then [ (1.0, classify_exit v c defl) ]
      else begin
        match List.filter (fun p -> p <> in_port) all_healthy with
        | [] ->
          if in_port < deg && in_port >= 0 && healthy in_port then
            [ (1.0, classify_exit v in_port true) ]
          else [ (1.0, Absorb_dropped) ]
        | ps -> uniform ps true
      end
  in
  (* Entry: the packet leaves [src] by its first healthy port. *)
  let entry =
    let rec find p =
      if p >= Graph.degree g src then None
      else if link_down (Graph.link_at g src p).Graph.id then find (p + 1)
      else Some (classify_exit src p false)
    in
    find 0
  in
  match entry with
  | None ->
    {
      states = 0;
      p_delivered = 0.0;
      p_stranded = 0.0;
      p_dropped = 1.0;
      p_loop = 0.0;
      expected_hops = 0.0;
      expected_hops_delivered = nan;
    }
  | Some start ->
    (* Explore reachable states breadth-first, memoising distributions. *)
    let dists : (int, (float * target) list) Hashtbl.t = Hashtbl.create 256 in
    let rec explore i =
      if not (Hashtbl.mem dists i) then begin
        let key = List.nth (List.rev !states) i in
        let dist = distribution key in
        Hashtbl.replace dists i dist;
        List.iter (function _, To j -> explore j | _ -> ()) dist
      end
    in
    (match start with To i -> explore i | _ -> ());
    let n = !n_states in
    if n = 0 then begin
      (* absorbed on the very first hop *)
      let one target =
        match start with
        | t when t = target -> 1.0
        | _ -> 0.0
      in
      {
        states = 0;
        p_delivered = one Absorb_delivered;
        p_stranded = one Absorb_stranded;
        p_dropped = one Absorb_dropped;
        p_loop = 0.0;
        expected_hops = 0.0;
        expected_hops_delivered =
          (if start = Absorb_delivered then 0.0 else nan);
      }
    end
    else begin
      (* Build (I - Q) and the absorption vectors.  Each transition costs
         one hop (the switch traversal that forwarded the packet). *)
      let identity_minus_q = Array.init n (fun _ -> Array.make n 0.0) in
      let b_deliver = Array.make n 0.0
      and b_strand = Array.make n 0.0
      and b_drop = Array.make n 0.0 in
      for i = 0 to n - 1 do
        identity_minus_q.(i).(i) <- 1.0;
        List.iter
          (fun (p, target) ->
            match target with
            | To j -> identity_minus_q.(i).(j) <- identity_minus_q.(i).(j) -. p
            | Absorb_delivered -> b_deliver.(i) <- b_deliver.(i) +. p
            | Absorb_stranded -> b_strand.(i) <- b_strand.(i) +. p
            | Absorb_dropped -> b_drop.(i) <- b_drop.(i) +. p)
          (Hashtbl.find dists i)
      done;
      let try_solve b = try Some (solve identity_minus_q b) with Failure _ -> None in
      let a_deliver = try_solve b_deliver in
      let a_strand = try_solve b_strand in
      let a_drop = try_solve b_drop in
      (* expected hops: t = 1 + Q t, i.e. (I - Q) t = 1 *)
      let t_hops = try_solve (Array.make n 1.0) in
      (* cost restricted to delivered trajectories:
         m_i = sum_j q_ij (1 * a_j + m_j) + (direct delivery prob * 1) *)
      let m_deliver =
        match a_deliver with
        | None -> None
        | Some a ->
          let rhs = Array.make n 0.0 in
          for i = 0 to n - 1 do
            List.iter
              (fun (p, target) ->
                match target with
                | To j -> rhs.(i) <- rhs.(i) +. (p *. a.(j))
                | Absorb_delivered -> rhs.(i) <- rhs.(i) +. p
                | Absorb_stranded | Absorb_dropped -> ())
              (Hashtbl.find dists i)
          done;
          try_solve rhs
      in
      let start_index = match start with To i -> i | _ -> assert false in
      let value opt default =
        match opt with Some arr -> arr.(start_index) | None -> default
      in
      let p_del = value a_deliver 0.0 in
      let p_str = value a_strand 0.0 in
      let p_drp = value a_drop 0.0 in
      let p_loop = Float.max 0.0 (1.0 -. p_del -. p_str -. p_drp) in
      {
        states = n;
        p_delivered = p_del;
        p_stranded = p_str;
        p_dropped = p_drp;
        p_loop;
        expected_hops =
          (if p_loop > 1e-9 then infinity else value t_hops infinity);
        expected_hops_delivered =
          (if p_del <= 1e-12 then nan
           else
             match m_deliver with
             | Some m -> m.(start_index) /. p_del
             | None -> nan);
      }
    end
