(** Exact analysis of deflection walks as an absorbing Markov chain.

    The chain state is the packet's arrival situation [(node, in_port,
    deflected)]; absorbing states are delivery at the destination edge,
    stranding at a foreign edge (where the controller would re-encode), and
    a forwarding drop.  Solving the linear systems gives exact delivery
    probabilities and expected hop counts — no sampling noise — which both
    cross-checks the Monte-Carlo walker ({!Walk}) and powers the protection
    ablation benches (expected hop inflation per policy and protection
    level). *)

module Graph = Topo.Graph

type analysis = {
  states : int; (** transient states in the chain *)
  p_delivered : float;
  p_stranded : float;
  p_dropped : float;
      (** the three absorption probabilities (sum to 1 when every walk
          terminates; deterministic loops make them sum to less) *)
  p_loop : float; (** probability mass trapped in deterministic loops *)
  expected_hops : float;
      (** expected switch hops to absorption, [infinity] when loops have
          positive probability *)
  expected_hops_delivered : float;
      (** expected hops conditional on delivery; [nan] if undeliverable *)
}

(** [analyze g ~plan ~policy ~failed ~src ~dst] builds and solves the chain
    for a packet injected at edge [src] toward edge [dst].
    @raise Invalid_argument if [src] is not an edge node. *)
val analyze :
  Graph.t ->
  plan:Route.plan ->
  policy:Policy.t ->
  failed:Graph.link_id list ->
  src:Graph.node ->
  dst:Graph.node ->
  analysis

(** [solve a b] solves the dense linear system [a x = b] by Gaussian
    elimination with partial pivoting ([a] is copied, not clobbered).
    Exposed for tests.
    @raise Failure on a (numerically) singular system. *)
val solve : float array array -> float array -> float array
