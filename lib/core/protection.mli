(** Driven-deflection protection planning.

    A protection plan is a set of directed hops [(switch, next)] folded into
    a route ID so that a deflected packet reaching any protected switch is
    deterministically driven toward the destination — the logical tree
    "with its root at destination" of section 2.  This module computes such
    trees and selects members under a bit budget (the paper's partial
    protection, section 2.3). *)

module Graph = Topo.Graph

(** [tree_hops g ~dest members] gives each member switch its next hop on a
    shortest-path tree (over core links only) rooted at [dest]: the paper's
    driven-deflection forwarding paths.  Members already adjacent to the
    tree route through it; unreachable members are omitted.  [dest] is a
    core node; members are given and returned as labels. *)
val tree_hops : Graph.t -> dest:Graph.node -> int list -> (int * int) list

(** [off_path_members g ~path ~radius] lists the labels of core switches
    within [radius] hops of any node of [path] (excluding the path's own
    nodes) — candidate protection members ordered by increasing distance
    from the path, then by label. *)
val off_path_members : Graph.t -> path:Graph.node list -> radius:int -> int list

(** [full_members g ~path] is every off-path core switch in [path]'s
    connected component ("full protection"). *)
val full_members : Graph.t -> path:Graph.node list -> int list

(** [select_within_budget g ~plan ~members ~bits] greedily folds members'
    tree hops into [plan] (in the given order) while the encoded bit length
    (Eq. 9) stays within [bits] — the paper's partial protection under a
    header-size constraint.  Returns the extended plan and the hops actually
    included. *)
val select_within_budget :
  Graph.t ->
  plan:Route.plan ->
  dest:Graph.node ->
  members:int list ->
  bits:int ->
  Route.plan * (int * int) list

(** [coverage g ~plan ~failed] estimates static protection coverage: for
    the failure of link [failed] on the plan's path, the fraction of
    deflection alternatives at the upstream switch that lead (following
    plan residues and forced moves only) to the destination without further
    random choices.  1.0 means every alternative is driven home (the
    deterministic Fig. 7 SW7-SW13 case). *)
val coverage : Graph.t -> plan:Route.plan -> failed:Graph.link_id -> float
