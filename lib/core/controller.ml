module Graph = Topo.Graph
module Paths = Topo.Paths
module Nets = Topo.Nets

type level =
  | Unprotected
  | Partial
  | Full

let all_levels = [ Unprotected; Partial; Full ]

let level_to_string = function
  | Unprotected -> "unprotected"
  | Partial -> "partial"
  | Full -> "full"

let scenario_hops sc level =
  match level with
  | Unprotected -> []
  | Partial -> sc.Nets.partial_protection
  | Full -> sc.Nets.partial_protection @ sc.Nets.full_protection

let scenario_plan sc level =
  let g = sc.Nets.graph in
  let base =
    Route.of_labels_exn g sc.Nets.primary
      ~egress_label:(Graph.label g sc.Nets.egress)
  in
  Route.protect_exn g base (scenario_hops sc level)

(* The reverse (ACK) route prefers a path edge-disjoint from the forward
   primary, so that a failure under study disturbs only the direction being
   measured — the standard bidirectional-resilience arrangement, and the
   regime the paper's reported sensitivities correspond to.  When no
   disjoint path exists (e.g. the six-node example), the mirrored primary
   is used. *)
let scenario_reverse_plan sc level =
  let g = sc.Nets.graph in
  let primary_nodes = List.map (Graph.node_of_label g) sc.Nets.primary in
  (* Only the primary's core-core links are avoided: the single host
     uplinks at each end are necessarily shared by both directions. *)
  let forward_links = Paths.path_links g primary_nodes in
  let disjoint l = not (List.mem l.Graph.id forward_links) in
  let reverse_core =
    match Paths.shortest_path g ~usable:disjoint sc.Nets.egress sc.Nets.ingress with
    | Some (_ :: rest) ->
      (* strip both edge endpoints, keep the core interior *)
      let rec interior acc = function
        | [] | [ _ ] -> List.rev acc
        | x :: tl -> interior (x :: acc) tl
      in
      let core = interior [] rest in
      if core = [] then List.rev sc.Nets.primary
      else List.map (Graph.label g) core
    | Some [] | None -> List.rev sc.Nets.primary
  in
  let base =
    Route.of_labels_exn g reverse_core
      ~egress_label:(Graph.label g sc.Nets.ingress)
  in
  (* Protect the reverse route with the same member switches, re-rooted
     toward the reverse destination over links off the reverse path. *)
  let members =
    List.filter
      (fun m -> not (List.mem m reverse_core))
      (List.map fst (scenario_hops sc level))
  in
  let reverse_dest =
    match List.rev reverse_core with
    | last :: _ -> Graph.node_of_label g last
    | [] -> invalid_arg "Controller.scenario_reverse_plan: empty reverse"
  in
  let hops = Protection.tree_hops g ~dest:reverse_dest members in
  let hops = List.filter (fun (s, _) -> not (List.mem s reverse_core)) hops in
  Route.protect_exn g base hops

(* Paths may only transit core switches: a link incident to an edge node is
   usable only when that edge node is one of the endpoints (multi-homed
   hosts in user-supplied topologies must not become transit). *)
let no_edge_transit g ~src ~dst l =
  let ok v = Graph.is_core g v || v = src || v = dst in
  ok l.Graph.ep0.Graph.node && ok l.Graph.ep1.Graph.node

let core_route ?(usable = fun _ -> true) g ~src ~dst =
  let usable l = no_edge_transit g ~src ~dst l && usable l in
  match Paths.shortest_path g ~usable src dst with
  | None ->
    invalid_arg
      (Printf.sprintf "Controller.route: no path between %d and %d" src dst)
  | Some path ->
    (match path with
     | _ :: core_and_dst ->
       (* strip the src edge; the last element is the dst edge *)
       let rec split_last acc = function
         | [ last ] -> (List.rev acc, last)
         | x :: rest -> split_last (x :: acc) rest
         | [] -> invalid_arg "Controller.route: degenerate path"
       in
       let core, _ = split_last [] core_and_dst in
       core
     | [] -> invalid_arg "Controller.route: empty path")

let route ?usable g ~src ~dst ~protection =
  let core = core_route ?usable g ~src ~dst in
  let labels = List.map (Graph.label g) core in
  let base = Route.of_labels_exn g labels ~egress_label:(Graph.label g dst) in
  Route.protect_exn g base protection

(* Per-pair protection planning for arbitrary (src, dst) pairs — the
   scenario bundles pin their protection hops by hand to match the paper's
   figures, but the resilience verifier sweeps every edge pair, so it needs
   the same recipe applied uniformly: a shortest-path tree toward the
   egress core switch over the off-path members the level selects (radius-1
   neighbours for partial, the whole component for full). *)
let protected_route g ~src ~dst ~level =
  let core = core_route g ~src ~dst in
  let dest =
    match List.rev core with
    | last :: _ -> last
    | [] ->
      invalid_arg "Controller.protected_route: route transits no core switch"
  in
  let members =
    match level with
    | Unprotected -> []
    | Partial -> Protection.off_path_members g ~path:core ~radius:1
    | Full -> Protection.full_members g ~path:core
  in
  let hops = Protection.tree_hops g ~dest members in
  let labels = List.map (Graph.label g) core in
  let base = Route.of_labels_exn g labels ~egress_label:(Graph.label g dst) in
  Route.protect_exn g base hops

(* Edge-disjoint route plans between two edge nodes: greedy shortest-path
   extraction (Topo.Paths.edge_disjoint_paths) over the core, each path
   encoded unprotected.  The basis for 1+1 edge failover and for the
   multipath exploration the paper lists as future work. *)
let disjoint_plans g ~src ~dst ~k =
  if k <= 0 then invalid_arg "Controller.disjoint_plans: k must be positive";
  (* Disjointness applies to core-core links only: the single host uplinks
     at each end are necessarily shared by every plan. *)
  let used = Hashtbl.create 16 in
  let usable l =
    no_edge_transit g ~src ~dst l
    && ((not (Hashtbl.mem used l.Graph.id))
       || (not (Graph.is_core g l.Graph.ep0.Graph.node))
       || not (Graph.is_core g l.Graph.ep1.Graph.node))
  in
  let rec collect n acc =
    if n = 0 then List.rev acc
    else
      match Paths.shortest_path g ~usable src dst with
      | None -> List.rev acc
      | Some path ->
        List.iter (fun id -> Hashtbl.replace used id ()) (Paths.path_links g path);
        collect (n - 1) (path :: acc)
  in
  collect k []
  |> List.filter_map (fun path ->
         (* strip the edge endpoints *)
         let rec interior acc = function
           | [] | [ _ ] -> List.rev acc
           | x :: rest -> interior (x :: acc) rest
         in
         match path with
         | _ :: rest ->
           (match interior [] rest with
            | [] -> None
            | core ->
              let labels = List.map (Graph.label g) core in
              (match
                 Route.of_labels g labels ~egress_label:(Graph.label g dst)
               with
               | Ok plan -> Some plan
               | Error _ -> None))
         | [] -> None)

type cache = {
  graph : Graph.t;
  plans : (Graph.node * Graph.node, Bignum.Z.t option) Hashtbl.t;
  computed_c : Kar_obs.Registry.counter;
}

let create_cache ?registry graph =
  let r =
    match registry with Some r -> r | None -> Kar_obs.Registry.create ()
  in
  {
    graph;
    plans = Hashtbl.create 64;
    computed_c = Kar_obs.Registry.counter r "ctl/plans-computed";
  }

let reencode cache ~at ~dst =
  match Hashtbl.find_opt cache.plans (at, dst) with
  | Some cached -> cached
  | None ->
    let result =
      try Some (route cache.graph ~src:at ~dst ~protection:[]).Route.route_id
      with Invalid_argument _ -> None
    in
    Kar_obs.Registry.incr cache.computed_c;
    Hashtbl.replace cache.plans (at, dst) result;
    result

let plans_computed cache = Kar_obs.Registry.value cache.computed_c
