(** Switch-ID assignment.

    KAR requires core switch IDs to be pairwise coprime, and every encodable
    output port index must be smaller than its switch's ID (a residue modulo
    [s] can only name ports [0 .. s-1]).  The choice of IDs drives the
    route-ID bit length (Eq. 9: bits grow with the product of the IDs on the
    route), so assignment strategy is a real design knob — exercised by the
    ablation bench. *)

module Graph = Topo.Graph

type strategy =
  | Primes_ascending
      (** nodes in index order take the smallest unused feasible prime *)
  | Degree_descending
      (** highest-degree nodes first, smallest feasible prime — hubs appear
          on many routes, so they get the cheapest IDs *)
  | Prime_powers
      (** candidate pool also includes prime powers (4, 8, 9, 25, 27, ...);
          at most one candidate per base prime keeps pairwise coprimality *)
  | Random_primes of int (** a seeded random permutation of feasible primes *)

val strategy_to_string : strategy -> string

(** [primes n] is the first [n] primes (sieve). *)
val primes : int -> int list

val is_prime : int -> bool

(** [assign g strategy] relabels the core nodes of [g]; edge-node labels are
    preserved.  The result satisfies: pairwise-coprime core labels, every
    label strictly greater than its node's degree, and no collision with
    edge labels.
    @raise Failure if the candidate pool is exhausted (never for sane
    graphs). *)
val assign : Graph.t -> strategy -> Graph.t

(** A labelling problem found by {!validate_issues}.  Coprimality
    violations break forwarding outright; an unencodable port only limits
    which residues that switch can carry. *)
type issue =
  | Not_coprime of int * int (** two core labels sharing a factor *)
  | Id_too_small of int (** label [<= 1] *)
  | Port_unencodable of { id : int; degree : int }
      (** the switch has ports no residue modulo its ID can name *)

val pp_issue : Format.formatter -> issue -> unit

(** [is_fatal issue] is [true] for problems that break forwarding
    ([Not_coprime], [Id_too_small]); [Port_unencodable] is advisory. *)
val is_fatal : issue -> bool

(** [validate_issues g] checks the KAR labelling invariants on core
    nodes. *)
val validate_issues : Graph.t -> issue list

(** [validate g] is {!validate_issues} rendered as strings (empty when
    valid). *)
val validate : Graph.t -> string list

(** [route_bits g labels] is the Eq. 9 bit length of a route through the
    switches [labels] (the cost metric the ablation compares). *)
val route_bits : Graph.t -> int list -> int

(** [mean_route_bits g ~trials ~seed] draws random connected node pairs,
    routes them by shortest path, and averages the route-ID bit length —
    the headline number for comparing strategies. *)
val mean_route_bits : Graph.t -> trials:int -> seed:int -> float
