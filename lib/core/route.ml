module Z = Bignum.Z
module Graph = Topo.Graph

type plan = {
  route_id : Z.t;
  modulus : Z.t;
  residues : Rns.residue list;
  core_path : Graph.node list;
  protection : (int * int) list;
  bit_length : int;
  residue_ports : int array;
}

type error =
  | Rns_error of Rns.error
  | Not_adjacent of int * int
  | Not_core of int
  | Port_not_encodable of int * int
  | Duplicate_switch of int

let pp_error ppf = function
  | Rns_error e -> Rns.pp_error ppf e
  | Not_adjacent (a, b) -> Format.fprintf ppf "SW%d and SW%d are not adjacent" a b
  | Not_core l -> Format.fprintf ppf "node %d is not a core switch" l
  | Port_not_encodable (s, p) ->
    Format.fprintf ppf "port %d of SW%d is not encodable (port >= switch ID)" p s
  | Duplicate_switch s ->
    Format.fprintf ppf
      "SW%d already carries a residue; a switch can appear only once per route ID" s

let ( let* ) = Result.bind

(* Build a residue for switch node [v] exiting through [port]. *)
let residue g v port =
  let id = Graph.label g v in
  if not (Graph.is_core g v) then Error (Not_core id)
  else if port >= id then Error (Port_not_encodable (id, port))
  else Ok { Rns.modulus = id; value = port }

(* The per-plan residue cache: a switch_id-indexed port table (-1 = switch
   not in the plan), built once per encode/extend.  The data plane then
   answers <R>_s for every switch in the plan with one array read instead
   of a bignum reduction. *)
let residue_ports_of residues =
  let max_id = List.fold_left (fun m r -> max m r.Rns.modulus) 0 residues in
  let ports = Array.make (max_id + 1) (-1) in
  List.iter (fun r -> ports.(r.Rns.modulus) <- r.Rns.value) residues;
  ports

let encode_plan ~core_path ~protection residues =
  match Rns.encode residues with
  | Error e -> Error (Rns_error e)
  | Ok (route_id, modulus) ->
    Ok
      {
        route_id;
        modulus;
        residues;
        core_path;
        protection;
        bit_length = Rns.bit_length_bound modulus;
        residue_ports = residue_ports_of residues;
      }

let check_no_duplicates residues =
  let rec go seen = function
    | [] -> Ok ()
    | r :: rest ->
      if List.mem r.Rns.modulus seen then Error (Duplicate_switch r.Rns.modulus)
      else go (r.Rns.modulus :: seen) rest
  in
  go [] residues

let of_core_path g path ~egress_port =
  let rec residues acc = function
    | [] -> Ok (List.rev acc)
    | [ last ] ->
      let* r = residue g last egress_port in
      Ok (List.rev (r :: acc))
    | a :: (b :: _ as rest) ->
      (match Graph.port_towards g a b with
       | None -> Error (Not_adjacent (Graph.label g a, Graph.label g b))
       | Some p ->
         let* r = residue g a p in
         residues (r :: acc) rest)
  in
  match path with
  | [] -> Error (Rns_error Rns.Empty_system)
  | _ ->
    let* rs = residues [] path in
    let* () = check_no_duplicates rs in
    encode_plan ~core_path:path ~protection:[] rs

let of_labels g labels ~egress_label =
  let nodes = List.map (Graph.node_of_label g) labels in
  match List.rev nodes with
  | [] -> Error (Rns_error Rns.Empty_system)
  | last :: _ ->
    let egress = Graph.node_of_label g egress_label in
    (match Graph.port_towards g last egress with
     | None -> Error (Not_adjacent (Graph.label g last, egress_label))
     | Some p -> of_core_path g nodes ~egress_port:p)

let protect g plan hops =
  let rec build acc = function
    | [] -> Ok (List.rev acc)
    | (s_label, next_label) :: rest ->
      let s = Graph.node_of_label g s_label in
      let next = Graph.node_of_label g next_label in
      (match Graph.port_towards g s next with
       | None -> Error (Not_adjacent (s_label, next_label))
       | Some p ->
         let* r = residue g s p in
         build (r :: acc) rest)
  in
  let* extra = build [] hops in
  let residues = plan.residues @ extra in
  let* () = check_no_duplicates residues in
  encode_plan ~core_path:plan.core_path ~protection:(plan.protection @ hops) residues

let raise_error e = invalid_arg (Format.asprintf "Route: %a" pp_error e)

let of_labels_exn g labels ~egress_label =
  match of_labels g labels ~egress_label with
  | Ok p -> p
  | Error e -> raise_error e

let protect_exn g plan hops =
  match protect g plan hops with
  | Ok p -> p
  | Error e -> raise_error e

(* Data-plane lookup with the cache guard: the table only answers for the
   route ID it was built from, so packets re-encoded at an edge (fresh
   route ID) automatically miss and fall back to the modulo kernel — the
   cache never needs explicit invalidation beyond plan re-encode.  The
   physical-equality test catches the common case (packets stamped straight
   from this plan) in O(1); [Z.equal] covers structurally equal IDs. *)
let cached_port plan ~route_id ~switch_id =
  if
    switch_id >= 0
    && switch_id < Array.length plan.residue_ports
    && plan.residue_ports.(switch_id) >= 0
    && (plan.route_id == route_id || Z.equal plan.route_id route_id)
  then plan.residue_ports.(switch_id)
  else Policy.computed_port ~switch_id ~route_id

(* The same lookup over a flat packet image.  Pointer identity is gone (the
   buffer holds limb words, not the plan's Z.t), so the guard is the limb
   comparison — O(limbs) machine-int equality, still allocation-free and
   still a cheap win over the fold for multi-limb IDs. *)
let cached_port_flat plan buf ~switch_id =
  if
    switch_id >= 0
    && switch_id < Array.length plan.residue_ports
    && plan.residue_ports.(switch_id) >= 0
    && Wire.Flat.route_id_equal buf plan.route_id
  then plan.residue_ports.(switch_id)
  else Policy.computed_port_flat ~switch_id buf

let residue_table plan =
  fun switch_id ->
    if switch_id >= 0
       && switch_id < Array.length plan.residue_ports
       && plan.residue_ports.(switch_id) >= 0
    then plan.residue_ports.(switch_id)
    else Policy.computed_port ~switch_id ~route_id:plan.route_id

let next_hop plan ~switch_id =
  Policy.computed_port ~switch_id ~route_id:plan.route_id

let verify plan =
  List.filter_map
    (fun r ->
      let got = Policy.computed_port ~switch_id:r.Rns.modulus ~route_id:plan.route_id in
      if got = r.Rns.value then None else Some (r.Rns.modulus, r.Rns.value, got))
    plan.residues
