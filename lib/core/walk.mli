(** Monte-Carlo simulation of single-packet deflection walks.

    Queue-free and time-free: only the forwarding decisions are exercised,
    which makes it cheap enough to estimate delivery probabilities and
    hop-count distributions over thousands of trials, and to cross-check
    the exact {!Markov} analysis.  The packet-level simulator ({!Netsim})
    is the heavyweight counterpart that adds queues, rates and TCP. *)

module Graph = Topo.Graph

type outcome =
  | Delivered of int (** switch hops taken to reach the destination edge *)
  | Stranded of Graph.node * int
      (** reached a foreign edge node (would be re-encoded) after [hops] *)
  | Dropped of int (** forwarding decision was Drop after [hops] *)
  | Ttl_exceeded

type result = {
  trials : int;
  delivered : int;
  stranded : int;
  dropped : int;
  ttl_exceeded : int;
  mean_hops : float; (** over delivered walks; [nan] if none delivered *)
  max_hops : int; (** over delivered walks *)
  p_delivery : float;
}

(** [switch_rngs g ~seed] is an independent PRNG stream per core switch,
    split from [seed] in the same order as
    [Netsim.Karnet.install_switches] — pass it as [?rng_for] to make a walk
    consume the exact random draws a netsim run with the same seed would. *)
val switch_rngs : Graph.t -> seed:int -> Graph.node -> Util.Prng.t

(** [walk g ~plan ~policy ~failed ~src ~dst ~ttl rng] runs one packet from
    edge [src] toward edge [dst] with the plan's route ID, treating links
    in [failed] as down.

    [?recorder] attaches a flight recorder: the walk emits the same
    {!Trace.Event.t} stream as the packet-level simulator (with hop index
    as virtual time and [uid], default 0, as the packet id), which is what
    the differential Walk↔Netsim tests diff.  [?rng_for] overrides the
    single [rng] with a per-switch stream lookup (see {!switch_rngs}). *)
val walk :
  Graph.t ->
  plan:Route.plan ->
  policy:Policy.t ->
  failed:Graph.link_id list ->
  src:Graph.node ->
  dst:Graph.node ->
  ttl:int ->
  ?recorder:Trace.Recorder.t ->
  ?uid:int ->
  ?rng_for:(Graph.node -> Util.Prng.t) ->
  Util.Prng.t ->
  outcome

(** [run g ~plan ~policy ~failed ~src ~dst ~trials ~seed ()] aggregates
    [trials] independent walks.  [ttl] defaults to 128. *)
val run :
  Graph.t ->
  plan:Route.plan ->
  policy:Policy.t ->
  failed:Graph.link_id list ->
  src:Graph.node ->
  dst:Graph.node ->
  trials:int ->
  seed:int ->
  ?ttl:int ->
  unit ->
  result

(** [hop_histogram g ~plan ~policy ~failed ~src ~dst ~trials ~seed ()] is
    the hop-count histogram of delivered walks (index = hops). *)
val hop_histogram :
  Graph.t ->
  plan:Route.plan ->
  policy:Policy.t ->
  failed:Graph.link_id list ->
  src:Graph.node ->
  dst:Graph.node ->
  trials:int ->
  seed:int ->
  ?ttl:int ->
  unit ->
  int array
