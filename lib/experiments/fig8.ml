type result = {
  nominal : Util.Stats.summary;
  failed : Util.Stats.summary;
  ratio : float;
  analysis : Kar.Markov.analysis;
  loop_hops_histogram : int array;
}

let paper_note =
  "Paper: the protection loop (73->71->17->41->73, escape via SW109 with \
   probability 1/2 per visit) inflates hop counts geometrically; measured \
   throughput decreases to 54.8% of the nominal bandwidth."

let run ?(profile = Profile.from_env ()) () =
  let sc = Topo.Nets.rnp_fig8 in
  let fc = List.hd sc.Topo.Nets.failures in
  let config failure =
    {
      Workload.Runner.default_iperf with
      policy = Workload.Runner.Kar Kar.Policy.Not_input_port;
      level = Kar.Controller.Partial;
      failure;
      reps = profile.Profile.iperf_reps;
      rep_duration_s = profile.Profile.iperf_duration_s;
    }
  in
  let nominal = Workload.Runner.iperf_reps sc (config None) in
  let failed = Workload.Runner.iperf_reps sc (config (Some fc)) in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Partial in
  let analysis =
    Kar.Markov.analyze sc.Topo.Nets.graph ~plan ~policy:Kar.Policy.Not_input_port
      ~failed:[ fc.Topo.Nets.link ] ~src:sc.Topo.Nets.ingress
      ~dst:sc.Topo.Nets.egress
  in
  let loop_hops_histogram =
    Kar.Walk.hop_histogram sc.Topo.Nets.graph ~plan
      ~policy:Kar.Policy.Not_input_port ~failed:[ fc.Topo.Nets.link ]
      ~src:sc.Topo.Nets.ingress ~dst:sc.Topo.Nets.egress
      ~trials:profile.Profile.walk_trials ~seed:11 ()
  in
  {
    nominal;
    failed;
    ratio = failed.Util.Stats.mean /. nominal.Util.Stats.mean;
    analysis;
    loop_hops_histogram;
  }

let to_string ?(profile = Profile.from_env ()) () =
  let r = run ~profile () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Fig. 8: redundant-path worst case (route ...73->107->113, failure \
     SW73-SW107, NIP)\n";
  Buffer.add_string buf
    (Util.Texttab.render_kv
       [
         ("nominal goodput", Printf.sprintf "%.1f Mb/s +/- %.1f" r.nominal.Util.Stats.mean r.nominal.Util.Stats.ci95);
         ("under failure", Printf.sprintf "%.1f Mb/s +/- %.1f" r.failed.Util.Stats.mean r.failed.Util.Stats.ci95);
         ("ratio", Printf.sprintf "%.1f%% of nominal (paper: 54.8%%)" (100.0 *. r.ratio));
         ("exact P(deliver)", Printf.sprintf "%.4f" r.analysis.Kar.Markov.p_delivered);
         ("exact E[hops|deliver]", Printf.sprintf "%.2f (5 without failure)" r.analysis.Kar.Markov.expected_hops_delivered);
       ]);
  (* Hop histogram: the geometric loop signature (mass at 5, 9, 13, ...). *)
  let interesting =
    let hist = r.loop_hops_histogram in
    let upto = Stdlib.min 40 (Array.length hist - 1) in
    List.filter_map
      (fun h -> if hist.(h) > 0 then Some (Printf.sprintf "%d:%d" h hist.(h)) else None)
      (List.init (upto + 1) (fun i -> i))
  in
  Buffer.add_string buf
    ("delivered-hops histogram (hops:count): " ^ String.concat " " interesting ^ "\n");
  Buffer.add_string buf paper_note;
  Buffer.add_char buf '\n';
  Buffer.contents buf
