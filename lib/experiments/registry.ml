type entry = {
  id : string;
  doc : string;
  run : Profile.t -> string;
  metrics : (Profile.t -> string) option;
}

type group = {
  name : string;
  alias : string;
  entries : entry list;
}

let e ?metrics id doc run = { id; doc; run; metrics }

let groups =
  [
    {
      name = "Figures";
      alias = "figures";
      entries =
        [
          e "fig1" "Section 2 worked example (route IDs 44 and 660)"
            (fun _ -> Fig1.to_string ());
          e "fig4" "Fig. 4: goodput timeline across a failure, per policy"
            (fun p -> Fig4.to_string ~profile:p ());
          e "fig5" "Fig. 5: goodput vs failure x protection x technique"
            (fun p -> Fig5.to_string ~profile:p ());
          e "fig7" "Fig. 7: RNP backbone failures under NIP + partial protection"
            (fun p -> Fig7.to_string ~profile:p ());
          e "fig8" "Fig. 8: redundant-path worst case"
            (fun p -> Fig8.to_string ~profile:p ());
        ];
    };
    {
      name = "Tables";
      alias = "tables";
      entries =
        [
          e "table1" "Table 1: route-ID bit lengths per protection level"
            (fun _ -> Table1.to_string ());
          e "table2" "Table 2: design-space comparison with measured evidence"
            (fun _ -> Table2.to_string ());
        ];
    };
    {
      name = "Ablations";
      alias = "ablations";
      entries =
        [
          e "hops" "Ablation: exact vs Monte-Carlo walk metrics per policy"
            (fun _ -> Ablations.policy_hops_table ());
          e "ids" "Ablation: switch-ID assignment strategies"
            (fun _ -> Ablations.ids_table ());
          e "budget" "Ablation: protection bit budget vs delivery"
            (fun _ -> Ablations.budget_table ());
          e "planner" "Ablation: distance-ordered vs analysis-guided protection"
            (fun _ -> Ablations.planner_table ());
          e "cc" "Ablation: Reno vs CUBIC under deflection"
            (fun p -> Ablations.cc_table ~profile:p ());
          e "delivery" "Ablation: UDP delivery ratio per policy"
            (fun p -> Ablations.delivery_table ~profile:p ());
        ];
    };
    {
      name = "Beyond the paper";
      alias = "beyond";
      entries =
        [
          e "schemes" "Beyond the paper: reaction-scheme comparison"
            (fun p -> Reaction.compare_to_string ~profile:p ());
          e "detection" "Beyond the paper: failure-detection sensitivity"
            (fun p -> Reaction.detection_to_string ~profile:p ());
          e "bystander" "Beyond the paper: interference with bystander traffic"
            (fun p -> Congestion.to_string ~profile:p ());
          e "scaling" "Beyond the paper: route-ID bits vs network size"
            (fun _ -> Scaling.to_string ());
          e "multipath" "Beyond the paper: multipath header cost"
            (fun _ -> Scaling.multipath_to_string ());
          e "multifail" "Beyond the paper: simultaneous multiple failures"
            (fun _ -> Multifailure.to_string ());
          e "churn"
            "Beyond the paper: KAR vs baselines under flapping, regional \
             and adversarial failure schedules, both planes"
            (fun p -> Churn.to_string ~profile:p ())
            ~metrics:(fun p -> Churn.to_string ~profile:p ~metrics:true ());
        ];
    };
    {
      name = "Verification";
      alias = "verification";
      entries =
        [
          e "invariants"
            "Trace-checked invariants over every single core-link failure"
            (fun _ -> Invariants.to_string ());
          e "verify"
            "Exhaustive k-failure resilience verifier (compiled tables, \
             adversarial deflection)"
            (fun _ -> Verify.to_string ())
            ~metrics:(fun _ -> Verify.to_string ~metrics:true ());
        ];
    };
    {
      name = "Service";
      alias = "service";
      entries =
        [
          e "svc" "Online plan server: steady state, skew sweep, replan storm"
            (fun p -> Service.to_string ~profile:p ())
            ~metrics:(fun p -> Service.to_string ~profile:p ~metrics:true ());
        ];
    };
  ]

let all = List.concat_map (fun g -> g.entries) groups

(* Classic two-row Levenshtein, for suggesting the closest name on a
   typo. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) (fun j -> j) in
  let curr = Array.make (lb + 1) 0 in
  for i = 1 to la do
    curr.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit curr 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let find name =
  match List.find_opt (fun en -> en.id = name) all with
  | Some en -> `Entry en
  | None ->
    (match List.find_opt (fun g -> g.alias = name) groups with
     | Some g -> `Group g
     | None -> `Unknown)

(* Every runnable name: ids plus the group aliases — the suggestion pool
   must cover both, so `kar_experiments figure` points at the alias and
   not just at fig1..fig8. *)
let names = List.map (fun en -> en.id) all @ List.map (fun g -> g.alias) groups

let nearest name =
  List.fold_left
    (fun (best, d) candidate ->
      let d' = edit_distance name candidate in
      if d' < d then (candidate, d') else (best, d))
    ("", max_int) names
