(** Execution profiles for the reproduction harness.

    [quick] compresses the paper's timelines (seconds instead of the
    paper's 30 s phases, 10 instead of 30 iperf repetitions) so the whole
    suite regenerates in minutes; [paper] uses the published durations.
    The topology, rates and mechanisms are identical — only measurement
    windows and repetition counts change. *)

type t = {
  name : string;
  fig4_phase_s : float; (** per-phase duration (before / failure / after) *)
  iperf_reps : int;
  iperf_duration_s : float;
  walk_trials : int;
  cbr_duration_s : float;
}

val quick : t
val paper : t

(** [from_env ()] picks [paper] when the environment variable
    [KAR_PROFILE=paper] is set, else [quick]. *)
val from_env : unit -> t
