(** Ablations beyond the paper's figures — the design choices DESIGN.md
    calls out, each quantified:

    - deflection-policy hop inflation, measured exactly by the Markov
      analysis and cross-checked by Monte Carlo, across the paper's failure
      cases;
    - protection-level delivery probability on synthetic topologies;
    - switch-ID assignment strategies versus route-ID bit growth;
    - CRT versus Garner reconstruction agreement (timings live in the
      bechamel benches);
    - partial-protection bit budgets versus coverage (the section 2.3
      loose-source-routing trade-off);
    - UDP delivery ratio and hop inflation per policy (loss-avoidance
      claim of the conclusion). *)

(** Exact per-policy walk metrics for every scenario failure case. *)
val policy_hops_table : unit -> string

(** Route-ID bit growth per assignment strategy on generated topologies. *)
val ids_table : unit -> string

(** Protection bit budget versus delivery probability (net15, SW13-SW29
    failure, NIP): the loose-source-routing trade-off of section 2.3. *)
val budget_table : unit -> string

(** Distance-ordered versus analysis-guided protection placement at equal
    bit budgets (see {!Kar.Optimizer}). *)
val planner_table : unit -> string

(** Reno vs CUBIC congestion control under each deflection policy. *)
val cc_table : ?profile:Profile.t -> unit -> string

(** UDP/CBR delivery ratio per policy during failure (net15, SW7-SW13). *)
val delivery_table : ?profile:Profile.t -> unit -> string
