(** Fig. 5 reproduction: mean TCP goodput with 95 % confidence intervals on
    the 15-node network, varying the failure location (SW10-SW7, SW7-SW13,
    SW13-SW29), the protection level (unprotected / partial / full) and the
    deflection technique (AVP, NIP).

    Paper methodology: for every simulated failure, 30 iperf runs of 5 s
    each, reporting the mean and 95 % CI.  The run count and duration come
    from the active {!Profile}. *)

type point = {
  failure : string;
  level : Kar.Controller.level;
  policy : Kar.Policy.t;
  goodput : Util.Stats.summary;
}

val run : ?profile:Profile.t -> unit -> point list

val to_string : ?profile:Profile.t -> unit -> string

val paper_note : string
