type scheme_row = {
  scheme : string;
  multiple_failures : string;
  source_routing : string;
  core_state : string;
}

let matrix =
  [
    { scheme = "MPLS Fast Reroute"; multiple_failures = "Yes"; source_routing = "Yes"; core_state = "Stateless" };
    { scheme = "SafeGuard"; multiple_failures = "Yes"; source_routing = "No"; core_state = "Stateful" };
    { scheme = "OpenFlow Fast Failover"; multiple_failures = "Yes"; source_routing = "No"; core_state = "Stateful" };
    { scheme = "Routing Deflections"; multiple_failures = "Yes"; source_routing = "Yes"; core_state = "Stateful" };
    { scheme = "Path Splicing"; multiple_failures = "Yes"; source_routing = "No"; core_state = "Stateful" };
    { scheme = "Slick Packets"; multiple_failures = "No"; source_routing = "Yes"; core_state = "Stateless" };
    { scheme = "KeyFlow / SlickFlow"; multiple_failures = "No"; source_routing = "Yes"; core_state = "Stateless" };
    { scheme = "KAR"; multiple_failures = "Yes"; source_routing = "Yes"; core_state = "Stateless" };
  ]

type evidence = {
  kar_table_entries : int;
  ff_table_entries : int;
  pairs_considered : int; (* double failures keeping src-dst connected *)
  kar_survives : int; (* pairs where every packet is delivered or
                         re-encodable at an edge (no drop, no loop) *)
  ff_survives : int; (* pairs where the single-backup scheme still
                        reaches the destination *)
}

(* Sweep every pair of simultaneous core-link failures on net15 that keeps
   ingress and egress connected, and ask each scheme whether packets still
   reach the destination.  KAR (NIP, full protection) counts as surviving
   when the exact chain analysis leaves no probability mass on drops or
   loops — stranded packets are re-encoded by edges, which is part of the
   KAR design. *)
(* Every link pair is an independent exact analysis against the shared
   (immutable) plan, so the sweep fans out on the domain pool: enumerate
   the pairs, evaluate each on its own task, fold the counts back in
   enumeration order.  [pool] lets the bench harness time the sweep at a
   specific parallelism; experiments use the shared pool. *)
let measure ?pool () =
  let sc = Topo.Nets.net15 in
  let g = sc.Topo.Nets.graph in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Full in
  let core_links =
    List.filter
      (fun l ->
        Topo.Graph.is_core g l.Topo.Graph.ep0.Topo.Graph.node
        && Topo.Graph.is_core g l.Topo.Graph.ep1.Topo.Graph.node)
      (Topo.Graph.links g)
    |> List.map (fun l -> l.Topo.Graph.id)
    |> Array.of_list
  in
  let m = Array.length core_links in
  let pairs = Array.make (m * (m - 1) / 2) (0, 0) in
  let u = ref 0 in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      pairs.(!u) <- (core_links.(i), core_links.(j));
      incr u
    done
  done;
  let evaluate ~idx:_ (a, b) =
    let failed = [ a; b ] in
    let usable l = not (List.mem l.Topo.Graph.id failed) in
    match
      Topo.Paths.shortest_path g ~usable sc.Topo.Nets.ingress
        sc.Topo.Nets.egress
    with
    | None -> None
    | Some _ ->
      let analysis =
        Kar.Markov.analyze g ~plan ~policy:Kar.Policy.Not_input_port ~failed
          ~src:sc.Topo.Nets.ingress ~dst:sc.Topo.Nets.egress
      in
      let kar_ok =
        analysis.Kar.Markov.p_delivered +. analysis.Kar.Markov.p_stranded
        >= 0.999
      in
      let ff_ok =
        match
          Baselines.Fast_failover.hops_between g sc.Topo.Nets.ingress
            sc.Topo.Nets.egress ~failed
        with
        | Some _ -> true
        | None -> false
      in
      Some (kar_ok, ff_ok)
  in
  let results =
    match pool with
    | Some p -> Util.Pool.map p pairs ~f:evaluate
    | None -> Util.Pool.run pairs ~f:evaluate
  in
  let considered = ref 0 and kar_ok = ref 0 and ff_ok = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some (kar, ff) ->
        incr considered;
        if kar then incr kar_ok;
        if ff then incr ff_ok)
    results;
  {
    kar_table_entries = 0;
    ff_table_entries = Baselines.Fast_failover.table_size g;
    pairs_considered = !considered;
    kar_survives = !kar_ok;
    ff_survives = !ff_ok;
  }

let to_string () =
  let header = [ "Work"; "Multiple failures"; "Source routing"; "Core state" ] in
  let body =
    List.map
      (fun r -> [ r.scheme; r.multiple_failures; r.source_routing; r.core_state ])
      matrix
  in
  let e = measure () in
  "Table 2: design-space comparison (as published)\n"
  ^ Util.Texttab.render ~header body
  ^ "\nMeasured evidence (this implementation):\n"
  ^ Util.Texttab.render_kv
      [
        ( "KAR core state",
          Printf.sprintf "%d flow entries per switch (forwarding = route_id mod switch_id)"
            e.kar_table_entries );
        ( "Fast-failover core state",
          Printf.sprintf "%d entries per switch (one per destination)" e.ff_table_entries );
        ( "Double-failure sweep",
          Printf.sprintf "%d link pairs keep ingress-egress connected" e.pairs_considered );
        ( "KAR survives (NIP, full protection)",
          Printf.sprintf "%d/%d pairs (all traffic delivered or edge re-encoded)"
            e.kar_survives e.pairs_considered );
        ( "Fast failover survives",
          Printf.sprintf "%d/%d pairs (single backup per hop black-holes the rest)"
            e.ff_survives e.pairs_considered );
      ]
