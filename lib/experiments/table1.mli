(** Table 1 reproduction: maximum route-ID bit length per protection
    mechanism on the 15-node network (paper: 15 / 28 / 43 bits for 4 / 7 /
    10 switches in the route ID). *)

type row = {
  mechanism : string;
  bit_length : int;
  switches_in_route_id : int;
  route_id : Bignum.Z.t; (** the concrete encoded value *)
}

val rows : unit -> row list

(** Rendered exactly as the paper's table columns. *)
val to_string : unit -> string

(** Paper-reported values for EXPERIMENTS.md comparison:
    (mechanism, bits, switches). *)
val paper_values : (string * int * int) list
