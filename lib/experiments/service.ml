module Graph = Topo.Graph
module Workload = Kar_service.Workload
module Server = Kar_service.Server

(* A serving testbed needs a (src, dst) universe big enough to pressure a
   bounded cache: a KAR-labelled Waxman core with one edge host per switch
   gives n*(n-1) orderable pairs (992 at the default 32 cores). *)
let testbed ?(n_core = 32) ?(seed = 7) () =
  let base = Topo.Gen.waxman ~n:n_core ~alpha:0.9 ~beta:0.35 ~seed in
  let g = Kar.Ids.assign base Kar.Ids.Prime_powers in
  let g, _hosts = Topo.Gen.with_edge_hosts g (Graph.core_nodes g) in
  g

(* Full protection on a 32-core graph folds ~30 tree hops into every plan;
   the serving studies stay with the levels a production planner would
   batch at rate: unprotected and radius-1 partial. *)
(* 10 k req/s keeps the miss inter-arrival time inside the batch window, so
   dispatches actually carry batches (and replan storms coalesce). *)
let spec ~requests =
  {
    Workload.default with
    Workload.n = requests;
    rate = 10_000.0;
    skew = 0.9;
    levels = [| Kar.Controller.Unprotected; Kar.Controller.Partial |];
    seed = 11;
  }

let bench_workload ~requests =
  let g = testbed () in
  (g, Workload.generate g (spec ~requests))

let bench_serve ?pool g reqs =
  let server = Server.create ?pool ~graph:g () in
  Server.run server reqs

let is_paper = function
  | Some p -> p.Profile.name = Profile.paper.Profile.name
  | None -> (Profile.from_env ()).Profile.name = Profile.paper.Profile.name

let ms v = Printf.sprintf "%.3f" (v *. 1e3)
let pct v = Printf.sprintf "%.1f%%" (100.0 *. v)

(* --- steady state --- *)

let steady_to_string ~paper () =
  let requests = if paper then 40_000 else 4_000 in
  let g, reqs = bench_workload ~requests in
  let r = bench_serve g reqs in
  "Service steady state: open-loop Zipf workload against the plan server\n"
  ^ Util.Texttab.render_kv
      [
        ("requests", string_of_int r.Server.requests);
        ("virtual throughput (req/s)", Printf.sprintf "%.0f" r.Server.virtual_rps);
        ("cache hit ratio", pct r.Server.hit_ratio);
        ("latency p50 (ms)", ms r.Server.p50);
        ("latency p95 (ms)", ms r.Server.p95);
        ("latency p99 (ms)", ms r.Server.p99);
        ("plans computed", string_of_int r.Server.planned);
        ("batches", string_of_int r.Server.batches);
        ( "mean batch size",
          Printf.sprintf "%.1f"
            (if r.Server.batches = 0 then 0.0
             else float_of_int r.Server.planned /. float_of_int r.Server.batches) );
        ("coalesced (single-flight)", string_of_int r.Server.coalesced);
        ("max keys in flight", string_of_int r.Server.max_depth);
        ("unroutable", string_of_int r.Server.unroutable);
      ]

(* --- hit ratio vs Zipf skew --- *)

let skew_sweep_to_string ~paper () =
  let requests = if paper then 20_000 else 3_000 in
  let g = testbed () in
  let rows =
    (* each skew is an independent server over the same immutable graph *)
    Util.Pool.run [| 0.0; 0.5; 0.9; 1.2; 1.5 |] ~f:(fun ~idx:_ skew ->
        let reqs =
          Workload.generate g { (spec ~requests) with Workload.skew }
        in
        let r = bench_serve g reqs in
        [
          Printf.sprintf "%.1f" skew;
          pct r.Server.hit_ratio;
          ms r.Server.p50;
          ms r.Server.p99;
          string_of_int r.Server.planned;
          string_of_int r.Server.coalesced;
          string_of_int r.Server.cache_evictions;
        ])
    |> Array.to_list
  in
  "Cache hit ratio vs Zipf skew (same testbed, same request count)\n"
  ^ Util.Texttab.render
      ~header:
        [ "Skew"; "Hit ratio"; "p50 (ms)"; "p99 (ms)"; "Planned"; "Coalesced";
          "Evictions" ]
      rows
  ^ "Uniform traffic (skew 0) defeats a bounded cache; with a realistic \
     head (skew >= 0.9) most requests are answered in microseconds and the \
     planner only sees the tail.\n"

(* --- the replan storm --- *)

type storm = {
  report : Server.report;
  bucket_s : float;
  hit_ratio_per_bucket : float array;
  fail_at : float;
  repair_at : float;
  metrics_summary : string; (* end-of-run registry summary *)
  span_summary : string;
}

(* The failed link: a core-core link on the most popular pair's primary
   path when it has one, else the graph's first core-core link.  What
   matters is the epoch bump; routing around the failure is a bonus the
   report's unroutable column keeps honest. *)
let storm_link g =
  let core_core l =
    Graph.is_core g l.Graph.ep0.Graph.node && Graph.is_core g l.Graph.ep1.Graph.node
  in
  let fallback () = (List.find core_core (Graph.links g)).Graph.id in
  let src, dst = (Workload.pairs g ~seed:11).(0) in
  match (Kar.Controller.route g ~src ~dst ~protection:[]).Kar.Route.core_path with
  | a :: b :: _ -> (match Graph.link_between g a b with Some l -> l | None -> fallback ())
  | _ -> fallback ()

let storm ?profile () =
  let paper = is_paper profile in
  let requests = if paper then 30_000 else 4_000 in
  let g = testbed () in
  let sp = spec ~requests in
  let reqs = Workload.generate g sp in
  let horizon = float_of_int requests /. sp.Workload.rate in
  let fail_at = 0.5 *. horizon and repair_at = 0.75 *. horizon in
  let link = storm_link g in
  let server = Server.create ~graph:g () in
  let report =
    Server.run server ~keep_records:true
      ~failures:[ (fail_at, `Fail link); (repair_at, `Repair link) ]
      reqs
  in
  let buckets = 16 in
  let bucket_s = horizon /. float_of_int buckets in
  let hits = Array.make buckets 0 and totals = Array.make buckets 0 in
  Array.iter
    (fun (r : Server.record) ->
      let b = Stdlib.min (buckets - 1) (int_of_float (r.Server.arrival /. bucket_s)) in
      totals.(b) <- totals.(b) + 1;
      if r.Server.outcome = Kar_service.Event.Hit then hits.(b) <- hits.(b) + 1)
    report.Server.records;
  let hit_ratio_per_bucket =
    Array.init buckets (fun b ->
        if totals.(b) = 0 then 0.0
        else float_of_int hits.(b) /. float_of_int totals.(b))
  in
  {
    report;
    bucket_s;
    hit_ratio_per_bucket;
    fail_at;
    repair_at;
    metrics_summary = Kar_obs.Export.summary (Server.registry server);
    span_summary = Kar_obs.Span.summary (Server.spans server);
  }

let storm_to_string ?profile () =
  let s = storm ?profile () in
  let buckets = Array.length s.hit_ratio_per_bucket in
  let r = s.report in
  let stale_per_bucket = Array.make buckets 0 and totals = Array.make buckets 0 in
  Array.iter
    (fun (rec_ : Server.record) ->
      let b =
        Stdlib.min (buckets - 1) (int_of_float (rec_.Server.arrival /. s.bucket_s))
      in
      totals.(b) <- totals.(b) + 1;
      if rec_.Server.outcome = Kar_service.Event.Stale then
        stale_per_bucket.(b) <- stale_per_bucket.(b) + 1)
    r.Server.records;
  let rows =
    List.init buckets (fun b ->
        let t0 = float_of_int b *. s.bucket_s in
        let mark =
          if s.fail_at >= t0 && s.fail_at < t0 +. s.bucket_s then "  <- fail"
          else if s.repair_at >= t0 && s.repair_at < t0 +. s.bucket_s then
            "  <- repair"
          else ""
        in
        [
          Printf.sprintf "%.2f" t0;
          string_of_int totals.(b);
          pct s.hit_ratio_per_bucket.(b);
          string_of_int stale_per_bucket.(b);
          mark;
        ])
  in
  Printf.sprintf
    "Replan storm: link failure at t=%.2fs (epoch bump), repair at t=%.2fs\n"
    s.fail_at s.repair_at
  ^ Util.Texttab.render
      ~header:[ "t (s)"; "Requests"; "Hit ratio"; "Stale"; "" ]
      rows
  ^ "hit ratio  "
  ^ Util.Texttab.spark (Array.to_list s.hit_ratio_per_bucket)
  ^ "\n"
  ^ Printf.sprintf
      "Each epoch bump invalidates the whole cache at once: the next bucket \
       pays a miss storm (stale column), the batcher coalesces it (%d \
       coalesced, %d stale-in-flight plans served uncached), and the hit \
       ratio recovers as plans re-fill against the new epoch.\n"
      r.Server.coalesced r.Server.stale_completions

(* --- golden fixture --- *)

(* The canonical 1k-request trace committed under test/fixtures/: a smaller
   testbed, failure and repair mid-run, every event on the sink.  The
   replay test byte-compares a fresh run (at -j 1 and -j 8) against the
   checked-in file; regenerate with test/gen_fixtures.exe after an
   intentional change to the serving decision sequence. *)
let canonical_trace () =
  let g = testbed ~n_core:16 () in
  let sp = { (spec ~requests:1_000) with Workload.seed = 42 } in
  let reqs = Workload.generate g sp in
  let horizon = float_of_int sp.Workload.n /. sp.Workload.rate in
  let link = storm_link g in
  let buf = Buffer.create (1 lsl 16) in
  let sink e =
    Buffer.add_string buf (Kar_service.Event.to_jsonl e);
    Buffer.add_char buf '\n'
  in
  let server = Server.create ~graph:g () in
  let (_ : Server.report) =
    Server.run server ~sink
      ~failures:[ (0.5 *. horizon, `Fail link); (0.75 *. horizon, `Repair link) ]
      reqs
  in
  Buffer.contents buf

(* --- metrics time series (the --metrics view and its golden fixture) ---

   A canonical kar_serve-style run with one mid-run failure, snapshotted
   every horizon/16 virtual seconds: the JSONL series shows the replan
   storm as data — hit-ratio dip, latency p99 spike, recovery.  Committed
   under test/fixtures/ and byte-compared at -j1/-j8 by test_obs. *)
let canonical_metrics () =
  let g = testbed ~n_core:16 () in
  let sp = { (spec ~requests:1_000) with Workload.seed = 42 } in
  let reqs = Workload.generate g sp in
  let horizon = float_of_int sp.Workload.n /. sp.Workload.rate in
  let link = storm_link g in
  let buf = Buffer.create (1 lsl 14) in
  let metrics_sink line =
    Buffer.add_string buf line;
    Buffer.add_char buf '\n'
  in
  let server = Server.create ~graph:g () in
  let (_ : Server.report) =
    Server.run server ~metrics_every:(horizon /. 16.0) ~metrics_sink
      ~failures:[ (0.5 *. horizon, `Fail link) ]
      reqs
  in
  Buffer.contents buf

let metrics_to_string ?profile () =
  let s = storm ?profile () in
  "Replan-storm registry snapshot (end of run)\n"
  ^ s.metrics_summary ^ s.span_summary

let to_string ?profile ?(metrics = false) () =
  let paper = is_paper profile in
  steady_to_string ~paper ()
  ^ "\n"
  ^ skew_sweep_to_string ~paper ()
  ^ "\n"
  ^ storm_to_string ?profile ()
  ^ (if metrics then "\n" ^ metrics_to_string ?profile () else "")
