module Graph = Topo.Graph
module Nets = Topo.Nets
module Net = Netsim.Net
module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Event = Kar_scenario.Event
module Spec = Kar_scenario.Spec
module Sgen = Kar_scenario.Gen
module Driver = Kar_scenario.Driver
module Server = Kar_service.Server
module Workload = Kar_service.Workload
module Z = Bignum.Z

type schedule = [ `Flap | `Regional | `Adversarial ]

let schedule_name = function
  | `Flap -> "flapping"
  | `Regional -> "regional"
  | `Adversarial -> "adversarial"

let spec_for = function
  | `Flap -> "flap:links=4,period=0.5,duty=0.4,seed=7"
  | `Regional -> "regional:groups=3,mtbf=0.6,mttr=0.25,seed=7"
  | `Adversarial -> "adversarial:k=2,period=0.5,hold=0.45,level=full"

let events_for sc ~horizon schedule =
  let spec =
    match Spec.parse (spec_for schedule) with
    | Ok s -> s
    | Error e -> invalid_arg ("Churn.events_for: " ^ e)
  in
  match
    Sgen.generate sc.Nets.graph ~horizon
      ~pairs:[ (sc.Nets.ingress, sc.Nets.egress) ]
      spec
  with
  | Ok evs -> evs
  | Error e -> invalid_arg ("Churn.events_for: " ^ e)

type technique = Kar | Fast_failover | Reroute | One_plus_one

let technique_name = function
  | Kar -> "KAR full+NIP"
  | Fast_failover -> "fast failover"
  | Reroute -> "ctl reroute"
  | One_plus_one -> "1+1 failover"

let all_techniques = [ Kar; Fast_failover; Reroute; One_plus_one ]

type data_result = {
  sent : int;
  delivered : int;
  delivery_ratio : float;
  deflections : int;
  reencodes : int;
  dropped : int;
}

(* Controller-notification latency for the reroute baseline and the 1+1
   ingress's loss-of-signal detection window, in virtual seconds. *)
let reroute_notify_s = 0.05
let failover_detect_s = 0.01

type Packet.payload += Probe of int

let run_data sc ~events ~technique ?(regions = 0) ?recorder ~rate_pps
    ~duration_s ~seed () =
  if rate_pps <= 0 then invalid_arg "Churn.run_data: rate must be positive";
  let g = sc.Nets.graph in
  let net =
    if regions <= 1 then Net.create ~graph:g ~engine:(Engine.create ()) ()
    else
      Net.create_partitioned ~graph:g
        ~partition:(Topo.Partition.make g ~regions)
        ()
  in
  Net.set_recorder net recorder;
  let ingress = sc.Nets.ingress and egress = sc.Nets.egress in
  (* The current route ID the ingress stamps — a cell the reroute / 1+1
     reactions update from the admin (barrier) context. *)
  let current = ref Z.zero in
  let reencode_of v =
    match technique with
    | Kar ->
      (* precomputed, immutable: stranded-packet replans from every edge
         toward the egress, so sharded edge handlers share no mutable
         controller state *)
      let fresh =
        if v = egress then None
        else
          match Kar.Controller.route g ~src:v ~dst:egress ~protection:[] with
          | plan -> Some plan.Kar.Route.route_id
          | exception Invalid_argument _ -> None
      in
      fun (_ : Packet.t) -> fresh
    | Fast_failover | Reroute | One_plus_one -> fun _ -> None
  in
  (match technique with
   | Kar ->
     let plan = Kar.Controller.scenario_plan sc Kar.Controller.Full in
     current := plan.Kar.Route.route_id;
     Netsim.Karnet.install_switches ~plan net ~policy:Kar.Policy.Not_input_port
       ~seed
   | Fast_failover ->
     current := Z.of_int 1;
     Baselines.Fast_failover.install net
   | Reroute ->
     let base = Kar.Controller.route g ~src:ingress ~dst:egress ~protection:[] in
     current := base.Kar.Route.route_id;
     Netsim.Karnet.install_switches net ~policy:Kar.Policy.No_deflection ~seed;
     let failed = Hashtbl.create 8 in
     List.iter
       (fun (e : Event.t) ->
         Net.schedule_admin net ~at:(e.Event.at +. reroute_notify_s) (fun () ->
             (match e.Event.action with
              | Event.Fail -> Hashtbl.replace failed e.Event.link ()
              | Event.Repair -> Hashtbl.remove failed e.Event.link);
             let usable (l : Graph.link) = not (Hashtbl.mem failed l.Graph.id) in
             match Kar.Controller.route ~usable g ~src:ingress ~dst:egress
                     ~protection:[]
             with
             | plan -> current := plan.Kar.Route.route_id
             | exception Invalid_argument _ -> ()))
       (Event.normalize events)
   | One_plus_one ->
     let plans = Kar.Controller.disjoint_plans g ~src:ingress ~dst:egress ~k:2 in
     (match plans with
      | [] -> invalid_arg "Churn.run_data: no route between ingress and egress"
      | first :: _ -> current := first.Kar.Route.route_id);
     Netsim.Karnet.install_switches net ~policy:Kar.Policy.No_deflection ~seed;
     let with_links =
       List.map (fun p -> (p, Topo.Paths.path_links g p.Kar.Route.core_path)) plans
     in
     let failed = Hashtbl.create 8 in
     List.iter
       (fun (e : Event.t) ->
         Net.schedule_admin net ~at:(e.Event.at +. failover_detect_s) (fun () ->
             (match e.Event.action with
              | Event.Fail -> Hashtbl.replace failed e.Event.link ()
              | Event.Repair -> Hashtbl.remove failed e.Event.link);
             match
               List.find_opt
                 (fun (_, links) ->
                   List.for_all (fun l -> not (Hashtbl.mem failed l)) links)
                 with_links
             with
             | Some (p, _) -> current := p.Kar.Route.route_id
             | None -> ()))
       (Event.normalize events));
  List.iter
    (fun v ->
      Netsim.Karnet.install_edge net v ~reencode:(reencode_of v)
        ~receive:(fun _ _ -> ())
        ())
    (Graph.edge_nodes g);
  Driver.arm net events;
  let interval = 1.0 /. float_of_int rate_pps in
  let sent = ref 0 in
  let rec emit t () =
    incr sent;
    let packet =
      Net.alloc net ~src:ingress ~dst:egress ~size_bytes:1500
        ~route_id:!current (Probe !sent)
    in
    Net.inject net ~at:ingress packet;
    let next = t +. interval in
    if next <= duration_s then
      ignore (Engine.schedule_at (Net.engine net) next (emit next))
  in
  Net.schedule_at_node net ingress ~at:interval (emit interval);
  Net.run_until net (duration_s +. 2.0);
  Option.iter Trace.Recorder.flush recorder;
  let ns = Net.stats net in
  {
    sent = !sent;
    delivered = ns.Net.delivered;
    delivery_ratio =
      (if !sent = 0 then 0.0
       else float_of_int ns.Net.delivered /. float_of_int !sent);
    deflections = ns.Net.deflections;
    reencodes = ns.Net.reencodes;
    dropped =
      ns.Net.dropped_link_down + ns.Net.dropped_queue_full
      + ns.Net.dropped_no_route + ns.Net.dropped_ttl;
  }

let run_control g ~events ~requests ~rate ~seed =
  let spec = { Workload.default with Workload.n = requests; rate; seed } in
  let reqs = Workload.generate g spec in
  let server = Server.create ~graph:g () in
  Server.run server ~failures:(Event.to_failures events) reqs

let fixture_lines () =
  let sc = Nets.net15 in
  Event.to_jsonl_lines sc.Nets.graph (events_for sc ~horizon:3.0 `Flap)

let pct v = Printf.sprintf "%5.1f%%" (100.0 *. v)

let to_string ?(profile = Profile.from_env ()) ?(metrics = false) () =
  let paper = profile.Profile.name = "paper" in
  let duration_s = profile.Profile.cbr_duration_s +. 1.0 in
  let rate_pps = if paper then 2000 else 500 in
  let requests = if paper then 20_000 else 4_000 in
  let seed = 42 in
  let topos = [ ("net15", Nets.net15); ("rnp28", Nets.rnp28) ] in
  let schedules = [ `Flap; `Regional; `Adversarial ] in
  let cells =
    List.concat_map
      (fun (tname, sc) ->
        let events sch = events_for sc ~horizon:duration_s sch in
        List.concat_map
          (fun sch ->
            List.map (fun tech -> (tname, sc, sch, events sch, tech)) all_techniques)
          schedules)
      topos
  in
  (* every data run is independent and internally seeded: fan them out on
     the pool, order restored on join *)
  let data =
    Util.Pool.run (Array.of_list cells)
      ~f:(fun ~idx:_ (_, sc, _, events, tech) ->
        run_data sc ~events ~technique:tech ~rate_pps ~duration_s ~seed ())
  in
  let result tname sch tech =
    let rec find i = function
      | [] -> invalid_arg "Churn.to_string: missing cell"
      | (tn, _, sc_, _, te) :: rest ->
        if tn = tname && sc_ = sch && te = tech then data.(i)
        else find (i + 1) rest
    in
    find 0 cells
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "Churn: KAR vs baselines under sustained failure schedules\n";
  Buffer.add_string b
    (Printf.sprintf
       "(CBR %d pps for %.0f s; schedules: %s | %s | %s)\n\n" rate_pps
       duration_s (spec_for `Flap) (spec_for `Regional) (spec_for `Adversarial));
  Buffer.add_string b "Delivery ratio under churn\n";
  Buffer.add_string b
    (Util.Texttab.render
       ~header:
         ("topology" :: "schedule"
         :: List.map technique_name all_techniques)
       (List.concat_map
          (fun (tname, _) ->
            List.map
              (fun sch ->
                tname :: schedule_name sch
                :: List.map
                     (fun tech -> pct (result tname sch tech).delivery_ratio)
                     all_techniques)
              schedules)
          topos));
  Buffer.add_string b "\nKAR data-plane reactions (full protection, NIP)\n";
  Buffer.add_string b
    (Util.Texttab.render
       ~header:[ "topology"; "schedule"; "deflections"; "re-encodes"; "drops" ]
       (List.concat_map
          (fun (tname, _) ->
            List.map
              (fun sch ->
                let r = result tname sch Kar in
                [
                  tname;
                  schedule_name sch;
                  string_of_int r.deflections;
                  string_of_int r.reencodes;
                  string_of_int r.dropped;
                ])
              schedules)
          topos));
  (* control plane: the same streams as the server's failure schedule *)
  let control =
    List.concat_map
      (fun (tname, sc) ->
        List.map
          (fun sch ->
            let events = events_for sc ~horizon:duration_s sch in
            let rate = float_of_int requests /. duration_s in
            ( tname,
              sch,
              List.length events,
              run_control sc.Nets.graph ~events ~requests ~rate ~seed ))
          schedules)
      topos
  in
  Buffer.add_string b
    "\nControl plane under the same streams (replan storms)\n";
  Buffer.add_string b
    (Util.Texttab.render
       ~header:
         [
           "topology"; "schedule"; "events"; "epochs"; "p99 (ms)"; "stale rate";
           "stale served"; "planned"; "hit ratio";
         ]
       (List.map
          (fun (tname, sch, n_events, (r : Server.report)) ->
            [
              tname;
              schedule_name sch;
              string_of_int n_events;
              string_of_int r.Server.epoch;
              Printf.sprintf "%.3f" (r.Server.p99 *. 1e3);
              pct r.Server.stale_rate;
              string_of_int r.Server.stale_completions;
              string_of_int r.Server.planned;
              pct r.Server.hit_ratio;
            ])
          control));
  if metrics then begin
    (* one representative run with the full instrumentation surface:
       scenario/* counters on the net registry plus per-event spans *)
    let sc = Nets.net15 in
    let events = events_for sc ~horizon:duration_s `Adversarial in
    let spans = Kar_obs.Span.create () in
    let engine = Engine.create () in
    let net = Net.create ~graph:sc.Nets.graph ~engine () in
    let plan = Kar.Controller.scenario_plan sc Kar.Controller.Full in
    Netsim.Karnet.install_switches ~plan net ~policy:Kar.Policy.Not_input_port
      ~seed;
    List.iter
      (fun v ->
        Netsim.Karnet.install_edge net v
          ~reencode:(fun _ -> None)
          ~receive:(fun _ _ -> ())
          ())
      (Graph.edge_nodes sc.Nets.graph);
    Driver.arm net ~spans events;
    (* a probe flow rides the schedule so the netsim/* counters show the
       deflection/re-encode reactions, not an idle net *)
    let interval = duration_s /. 256.0 in
    let rec emit t () =
      let p =
        Net.alloc net ~src:sc.Nets.ingress ~dst:sc.Nets.egress ~size_bytes:1500
          ~route_id:plan.Kar.Route.route_id Netsim.Packet.Raw
      in
      Net.inject net ~at:sc.Nets.ingress p;
      let next = t +. interval in
      if next <= duration_s then ignore (Engine.schedule_at engine next (emit next))
    in
    ignore (Engine.schedule_at engine interval (emit interval));
    Net.run_until net (duration_s +. 1.0);
    Buffer.add_string b "\n-- metrics (net15, adversarial, KAR) --\n";
    Buffer.add_string b (Kar_obs.Export.summary (Net.registry net));
    Buffer.add_string b (Kar_obs.Span.summary spans)
  end;
  Buffer.contents b
