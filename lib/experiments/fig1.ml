module Z = Bignum.Z

type result = {
  primary_route_id : Z.t;
  primary_modulus : Z.t;
  protected_route_id : Z.t;
  protected_modulus : Z.t;
  ports_of_660 : int list;
  healthy_hops : int;
  deflected_delivery : float;
  deflected_hops : float;
}

let run () =
  let sc = Topo.Nets.fig1_six in
  let g = sc.Topo.Nets.graph in
  let primary = Kar.Controller.scenario_plan sc Kar.Controller.Unprotected in
  let protected_plan = Kar.Controller.scenario_plan sc Kar.Controller.Partial in
  let failure = List.hd sc.Topo.Nets.failures in
  let healthy =
    Kar.Markov.analyze g ~plan:protected_plan ~policy:Kar.Policy.Not_input_port
      ~failed:[] ~src:sc.Topo.Nets.ingress ~dst:sc.Topo.Nets.egress
  in
  let broken =
    Kar.Markov.analyze g ~plan:protected_plan ~policy:Kar.Policy.Not_input_port
      ~failed:[ failure.Topo.Nets.link ] ~src:sc.Topo.Nets.ingress
      ~dst:sc.Topo.Nets.egress
  in
  {
    primary_route_id = primary.Kar.Route.route_id;
    primary_modulus = primary.Kar.Route.modulus;
    protected_route_id = protected_plan.Kar.Route.route_id;
    protected_modulus = protected_plan.Kar.Route.modulus;
    ports_of_660 = Rns.decode protected_plan.Kar.Route.route_id [ 4; 7; 11; 5 ];
    healthy_hops = int_of_float healthy.Kar.Markov.expected_hops_delivered;
    deflected_delivery = broken.Kar.Markov.p_delivered;
    deflected_hops = broken.Kar.Markov.expected_hops_delivered;
  }

let to_string () =
  let r = run () in
  "Fig. 1 worked example (six-node network)\n"
  ^ Util.Texttab.render_kv
      [
        ( "primary route ID",
          Printf.sprintf "%s mod %s (paper: 44 mod 308)" (Z.to_string r.primary_route_id)
            (Z.to_string r.primary_modulus) );
        ( "protected route ID",
          Printf.sprintf "%s mod %s (paper: 660 mod 1540)"
            (Z.to_string r.protected_route_id)
            (Z.to_string r.protected_modulus) );
        ( "ports of 660 at {4,7,11,5}",
          String.concat ", " (List.map string_of_int r.ports_of_660)
          ^ " (paper: 0, 2, 0, 0)" );
        ("hops, healthy", string_of_int r.healthy_hops);
        ( "SW7-SW11 failed",
          Printf.sprintf "delivery probability %.3f, expected hops %.2f"
            r.deflected_delivery r.deflected_hops );
      ]
