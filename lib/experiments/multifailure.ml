module Graph = Topo.Graph
module Nets = Topo.Nets

type row = {
  k : int;
  samples : int;
  kar_mean_delivery : float;
  kar_min_delivery : float;
  kar_mean_direct : float;
  kar_guaranteed : int;
  ff_survives : int;
}

let core_links g =
  List.filter
    (fun l ->
      Graph.is_core g l.Graph.ep0.Graph.node && Graph.is_core g l.Graph.ep1.Graph.node)
    (Graph.links g)
  |> List.map (fun l -> l.Graph.id)

(* Draw a k-subset uniformly (Floyd's algorithm would be fancier; the pool
   is 40 links, a shuffle is fine). *)
let sample_subset rng pool k =
  let arr = Array.of_list pool in
  Util.Prng.shuffle rng arr;
  Array.to_list (Array.sub arr 0 k)

let run ?(samples = 60) ?(seed = 2718) () =
  let sc = Nets.rnp28 in
  let g = sc.Nets.graph in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Partial in
  let pool = core_links g in
  let rng = Util.Prng.of_int seed in
  List.map
    (fun k ->
      (* Give every attempt its own stream, split from the parent before
         any work is dispatched: which failure sets get analyzed depends
         only on (seed, k, attempt index), never on scheduling.  The
         cheap part — drawing subsets and filtering for connectivity —
         stays serial; the exact analyses fan out on the domain pool. *)
      let max_attempts = samples * 20 in
      let attempt_rngs = Util.Prng.split_n rng max_attempts in
      let chosen = ref [] in
      let count = ref 0 in
      let attempt = ref 0 in
      while !count < samples && !attempt < max_attempts do
        let failed = sample_subset attempt_rngs.(!attempt) pool k in
        incr attempt;
        let usable l = not (List.mem l.Graph.id failed) in
        if
          Topo.Paths.shortest_path g ~usable sc.Nets.ingress sc.Nets.egress
          <> None
        then begin
          chosen := failed :: !chosen;
          incr count
        end
      done;
      let sets = Array.of_list (List.rev !chosen) in
      let evals =
        Util.Pool.run sets ~f:(fun ~idx:_ failed ->
            let a =
              Kar.Markov.analyze g ~plan ~policy:Kar.Policy.Not_input_port
                ~failed ~src:sc.Nets.ingress ~dst:sc.Nets.egress
            in
            (* stranded packets are re-encoded by the edge: count them as
               eventually delivered, as the design intends *)
            let ff =
              Baselines.Fast_failover.hops_between g sc.Nets.ingress
                sc.Nets.egress ~failed
              <> None
            in
            ( a.Kar.Markov.p_delivered +. a.Kar.Markov.p_stranded,
              a.Kar.Markov.p_delivered,
              ff ))
      in
      let n = Array.length evals in
      let sum f = Array.fold_left (fun acc e -> acc +. f e) 0.0 evals in
      let count p = Array.fold_left (fun acc e -> if p e then acc + 1 else acc) 0 evals in
      let delivery (d, _, _) = d in
      {
        k;
        samples = n;
        kar_mean_delivery =
          (if n = 0 then nan else sum delivery /. float_of_int n);
        kar_min_delivery =
          Array.fold_left (fun m e -> Stdlib.min m (delivery e)) 1.0 evals;
        kar_mean_direct =
          (if n = 0 then nan else sum (fun (_, d, _) -> d) /. float_of_int n);
        kar_guaranteed = count (fun e -> delivery e >= 0.999999);
        ff_survives = count (fun (_, _, ff) -> ff);
      })
    [ 1; 2; 3; 4; 5 ]

let to_string ?samples ?seed () =
  let rows = run ?samples ?seed () in
  "Multiple simultaneous failures (RNP, NIP + partial protection; exact \
   analysis per sampled failure set)\n"
  ^ Util.Texttab.render
      ~header:
        [ "k failures"; "Sets"; "KAR delivery"; "KAR worst set";
          "KAR w/o re-encode"; "KAR certain"; "Fast failover survives" ]
      (List.map
         (fun r ->
           [
             string_of_int r.k;
             string_of_int r.samples;
             Printf.sprintf "%.4f" r.kar_mean_delivery;
             Printf.sprintf "%.4f" r.kar_min_delivery;
             Printf.sprintf "%.4f" r.kar_mean_direct;
             Printf.sprintf "%d/%d" r.kar_guaranteed r.samples;
             Printf.sprintf "%d/%d" r.ff_survives r.samples;
           ])
         rows)
  ^ "On every sampled failure set that leaves the endpoints connected, KAR \
     delivers with certainty (deflection walks end at the destination or \
     at an edge that re-encodes); what grows with k is the share needing \
     the re-encode detour.  The single-backup baseline silently black-holes \
     a slice of the sets — the 'multiple link failures' row of Table 2, \
     measured.\n"
