module Graph = Topo.Graph
module Nets = Topo.Nets

type row = {
  k : int;
  samples : int;
  kar_mean_delivery : float;
  kar_min_delivery : float;
  kar_mean_direct : float;
  kar_guaranteed : int;
  ff_survives : int;
}

let core_links g =
  List.filter
    (fun l ->
      Graph.is_core g l.Graph.ep0.Graph.node && Graph.is_core g l.Graph.ep1.Graph.node)
    (Graph.links g)
  |> List.map (fun l -> l.Graph.id)

(* Draw a k-subset uniformly (Floyd's algorithm would be fancier; the pool
   is 40 links, a shuffle is fine). *)
let sample_subset rng pool k =
  let arr = Array.of_list pool in
  Util.Prng.shuffle rng arr;
  Array.to_list (Array.sub arr 0 k)

let run ?(samples = 60) ?(seed = 2718) () =
  let sc = Nets.rnp28 in
  let g = sc.Nets.graph in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Partial in
  let pool = core_links g in
  let rng = Util.Prng.of_int seed in
  List.map
    (fun k ->
      let collected = ref [] in
      let direct = ref [] in
      let ff_ok = ref 0 in
      let attempts = ref 0 in
      while List.length !collected < samples && !attempts < samples * 20 do
        incr attempts;
        let failed = sample_subset rng pool k in
        let usable l = not (List.mem l.Graph.id failed) in
        let connected =
          Topo.Paths.shortest_path g ~usable sc.Nets.ingress sc.Nets.egress
          <> None
        in
        if connected then begin
          let a =
            Kar.Markov.analyze g ~plan ~policy:Kar.Policy.Not_input_port
              ~failed ~src:sc.Nets.ingress ~dst:sc.Nets.egress
          in
          (* stranded packets are re-encoded by the edge: count them as
             eventually delivered, as the design intends *)
          let delivery = a.Kar.Markov.p_delivered +. a.Kar.Markov.p_stranded in
          collected := delivery :: !collected;
          direct := a.Kar.Markov.p_delivered :: !direct;
          match
            Baselines.Fast_failover.hops_between g sc.Nets.ingress
              sc.Nets.egress ~failed
          with
          | Some _ -> incr ff_ok
          | None -> ()
        end
      done;
      let deliveries = !collected in
      let n = List.length deliveries in
      {
        k;
        samples = n;
        kar_mean_delivery =
          (if n = 0 then nan
           else List.fold_left ( +. ) 0.0 deliveries /. float_of_int n);
        kar_min_delivery = List.fold_left Stdlib.min 1.0 deliveries;
        kar_mean_direct =
          (if n = 0 then nan
           else List.fold_left ( +. ) 0.0 !direct /. float_of_int n);
        kar_guaranteed =
          List.length (List.filter (fun d -> d >= 0.999999) deliveries);
        ff_survives = !ff_ok;
      })
    [ 1; 2; 3; 4; 5 ]

let to_string ?samples ?seed () =
  let rows = run ?samples ?seed () in
  "Multiple simultaneous failures (RNP, NIP + partial protection; exact \
   analysis per sampled failure set)\n"
  ^ Util.Texttab.render
      ~header:
        [ "k failures"; "Sets"; "KAR delivery"; "KAR worst set";
          "KAR w/o re-encode"; "KAR certain"; "Fast failover survives" ]
      (List.map
         (fun r ->
           [
             string_of_int r.k;
             string_of_int r.samples;
             Printf.sprintf "%.4f" r.kar_mean_delivery;
             Printf.sprintf "%.4f" r.kar_min_delivery;
             Printf.sprintf "%.4f" r.kar_mean_direct;
             Printf.sprintf "%d/%d" r.kar_guaranteed r.samples;
             Printf.sprintf "%d/%d" r.ff_survives r.samples;
           ])
         rows)
  ^ "On every sampled failure set that leaves the endpoints connected, KAR \
     delivers with certainty (deflection walks end at the destination or \
     at an edge that re-encodes); what grows with k is the share needing \
     the re-encode detour.  The single-backup baseline silently black-holes \
     a slice of the sets — the 'multiple link failures' row of Table 2, \
     measured.\n"
