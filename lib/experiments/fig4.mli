(** Fig. 4 reproduction: TCP goodput time series across a SW7-SW13 failure
    window on the 15-node network, one curve per deflection technique
    (no deflection / HP / AVP / NIP), full protection.

    Paper methodology: goodput collected 30 s before the failure, the
    failure lasts 30 s, measurement stops 30 s after repair.  The [quick]
    profile compresses each phase; [KAR_PROFILE=paper] restores 30 s. *)

type curve = {
  policy : Kar.Policy.t;
  series : float list; (** Mb/s per bin *)
  mean_pre : float;
  mean_fail : float;
  mean_post : float;
  flow : Tcp.Flow.stats;
}

val run : ?profile:Profile.t -> unit -> curve list

val to_string : ?profile:Profile.t -> unit -> string

(** The paper's headline: with NIP the disorder penalty during failure is
    roughly 25 % of the 200 Mb/s nominal. *)
val paper_note : string
