type scheme_result = {
  scheme : string;
  mean_onset : float;
  mean_fail : float;
  mean_post : float;
  drops : int;
}

let failure () = List.nth Topo.Nets.net15.Topo.Nets.failures 1 (* SW7-SW13 *)

let timeline_config profile =
  {
    Workload.Runner.default_timeline with
    failure = Some (failure ());
    pre_s = profile.Profile.fig4_phase_s /. 2.0;
    fail_s = profile.Profile.fig4_phase_s;
    post_s = profile.Profile.fig4_phase_s /. 2.0;
  }

let compare_schemes ?(profile = Profile.from_env ()) () =
  let base = timeline_config profile in
  let run scheme config =
    let r = Workload.Runner.timeline Topo.Nets.net15 config in
    {
      scheme;
      mean_onset = r.Workload.Runner.mean_onset;
      mean_fail = r.Workload.Runner.mean_fail;
      mean_post = r.Workload.Runner.mean_post;
      drops = r.Workload.Runner.net_drops;
    }
  in
  [
    run "KAR deflection (NIP, full protection)"
      { base with policy = Workload.Runner.Kar Kar.Policy.Not_input_port };
    run "KAR deflection (AVP, full protection)"
      { base with policy = Workload.Runner.Kar Kar.Policy.Any_valid_port };
    run "1+1 ingress failover (10 ms reaction)"
      {
        base with
        policy = Workload.Runner.Kar Kar.Policy.No_deflection;
        level = Kar.Controller.Unprotected;
        reaction = Workload.Runner.Ingress_failover 0.01;
      };
    run "controller reroute (200 ms notification)"
      {
        base with
        policy = Workload.Runner.Kar Kar.Policy.No_deflection;
        level = Kar.Controller.Unprotected;
        reaction = Workload.Runner.Controller_reroute 0.2;
      };
    run "stateful fast failover (per-hop backup)"
      { base with policy = Workload.Runner.Fast_failover };
    run "no reaction at all"
      {
        base with
        policy = Workload.Runner.Kar Kar.Policy.No_deflection;
        level = Kar.Controller.Unprotected;
      };
  ]

let compare_to_string ?(profile = Profile.from_env ()) () =
  let rows = compare_schemes ~profile () in
  "Reaction-scheme comparison (net15, SW7-SW13 failure)\n"
  ^ Util.Texttab.render
      ~header:
        [ "Scheme"; "Onset (first 1s, Mb/s)"; "During failure"; "After repair";
          "Drops" ]
      (List.map
         (fun r ->
           [
             r.scheme;
             Printf.sprintf "%.1f" r.mean_onset;
             Printf.sprintf "%.1f" r.mean_fail;
             Printf.sprintf "%.1f" r.mean_post;
             string_of_int r.drops;
           ])
         rows)
  ^ "KAR reacts in zero time with zero core state; every alternative pays \
     either a reaction delay (loss window) or per-hop state.\n"

type detection_point = {
  detection_s : float;
  mean_onset : float;
  mean_fail : float;
  drops : int;
}

let detection_sweep ?(profile = Profile.from_env ()) () =
  let base = timeline_config profile in
  List.map
    (fun detection_s ->
      let r =
        Workload.Runner.timeline Topo.Nets.net15
          { base with detection_delay_s = detection_s }
      in
      {
        detection_s;
        mean_onset = r.Workload.Runner.mean_onset;
        mean_fail = r.Workload.Runner.mean_fail;
        drops = r.Workload.Runner.net_drops;
      })
    [ 0.0; 0.001; 0.01; 0.05; 0.2 ]

let detection_to_string ?(profile = Profile.from_env ()) () =
  let rows = detection_sweep ~profile () in
  "Failure-detection sensitivity (net15, NIP + full protection, SW7-SW13)\n"
  ^ Util.Texttab.render
      ~header:
        [ "Detection delay"; "Onset (first 1s, Mb/s)"; "During failure"; "Drops" ]
      (List.map
         (fun p ->
           [
             (if p.detection_s = 0.0 then "oracle (paper)"
              else Printf.sprintf "%.0f ms" (1e3 *. p.detection_s));
             Printf.sprintf "%.1f" p.mean_onset;
             Printf.sprintf "%.1f" p.mean_fail;
             string_of_int p.drops;
           ])
         rows)
  ^ "Deflection needs the switch to notice the dead link; until detection, \
     packets black-hole exactly as in any local-repair scheme.\n"
