module Graph = Topo.Graph
module Nets = Topo.Nets
module Compiler = Kar_verify.Compiler
module Verifier = Kar_verify.Verifier
module Counterexample = Kar_verify.Counterexample
module Registry = Kar_obs.Registry
module Span = Kar_obs.Span

(* CLI override (kar_experiments --max-k, and the CI smoke run): caps the
   sweep depth on every topology.  Mirrors the Pool.set_jobs precedent of
   a process-wide knob set once at startup. *)
let max_k_override : int option ref = ref None

let n_classes = List.length Verifier.all_classifications

let class_index c =
  let rec go i = function
    | [] -> assert false
    | x :: rest -> if x = c then i else go (i + 1) rest
  in
  go 0 Verifier.all_classifications

type pair_report = {
  src : int; (* edge labels *)
  dst : int;
  per_k : int array array; (* per_k.(k-1).(class_index c) = #failure sets *)
  adv_k : int;
      (* largest k <= max_k such that every connected failure set with
         |F| <= k is Guaranteed (adversarial resilience) *)
  ang_k : int; (* ditto for can_deliver (angelic resilience) *)
}

type counterexample = {
  cx_class : Verifier.classification;
  cx_src : int;
  cx_dst : int;
  cx_failed : string list; (* failed links as "SWa-SWb" *)
  cx_events : Trace.Event.t list;
  cx_violations : Trace.Invariant.violation list;
}

type topo_report = {
  topology : string;
  max_k : int;
  policy : Kar.Policy.t;
  n_core_links : int;
  pairs : pair_report list;
  counterexamples : counterexample list;
      (* first refutation per refuted class, machine-checked *)
}

let core_links g =
  List.filter
    (fun (l : Graph.link) ->
      Graph.is_core g l.Graph.ep0.Graph.node
      && Graph.is_core g l.Graph.ep1.Graph.node)
    (Graph.links g)
  |> List.map (fun (l : Graph.link) -> l.Graph.id)

let link_name g id =
  let l = Graph.link g id in
  Printf.sprintf "SW%d-SW%d"
    (Graph.label g l.Graph.ep0.Graph.node)
    (Graph.label g l.Graph.ep1.Graph.node)

(* All k-subsets in lexicographic order of the input list — the sweep
   order is part of the deterministic output contract. *)
let failure_sets links ~k =
  let rec combos k = function
    | _ when k = 0 -> [ [] ]
    | [] -> []
    | x :: rest -> List.map (fun c -> x :: c) (combos (k - 1) rest) @ combos k rest
  in
  combos k links

(* find-or-create handles: [run] sweeps several topologies over one
   registry, so the second topology must reuse the metrics the first one
   registered. *)
let counter_of r name =
  match Registry.find r name with
  | Some (Registry.Counter c) -> c
  | Some _ -> invalid_arg ("Verify: " ^ name ^ " is not a counter")
  | None -> Registry.counter r name

let histogram_of r name =
  match Registry.find r name with
  | Some (Registry.Histogram h) -> h
  | Some _ -> invalid_arg ("Verify: " ^ name ^ " is not a histogram")
  | None -> Registry.histogram r name

let verdict_metric cls =
  "verify/verdict-" ^ Verifier.classification_to_string cls

let instance_for g ~src ~dst ~policy =
  let plan =
    Kar.Controller.protected_route g ~src ~dst ~level:Kar.Controller.Full
  in
  Verifier.prepare g ~plan ~policy ~src ~dst ()

let ordered_pairs g =
  let edges = Graph.edge_nodes g in
  List.concat_map
    (fun src -> List.filter_map (fun dst -> if src <> dst then Some (src, dst) else None) edges)
    edges

let run_topology ?registry ?spans ~name (sc : Nets.scenario) ~max_k ~policy
    () =
  let reg =
    match registry with Some r -> r | None -> Registry.create ()
  in
  (* schema on the main registry, reused across topologies *)
  ignore (counter_of reg "verify/failure-sets");
  List.iter
    (fun cls -> ignore (counter_of reg (verdict_metric cls)))
    Verifier.all_classifications;
  ignore (histogram_of reg "verify/states");
  let g = sc.Nets.graph in
  let pairs = ordered_pairs g in
  let instances =
    Array.of_list
      (List.map (fun (src, dst) -> instance_for g ~src ~dst ~policy) pairs)
  in
  let links = core_links g in
  let sets_per_k =
    Array.init max_k (fun i -> Array.of_list (failure_sets links ~k:(i + 1)))
  in
  (* One unit per (pair, failure set), pair-major then k then subset order:
     the exhaustive sweep is embarrassingly parallel and needs no
     randomness, so Pool's order-restoring join alone makes the output
     identical at any -j. *)
  let units =
    Array.of_list
      (List.concat_map
         (fun pi ->
           List.concat_map
             (fun ki ->
               Array.to_list
                 (Array.map (fun f -> (pi, ki, f)) sets_per_k.(ki)))
             (List.init max_k Fun.id))
         (List.init (Array.length instances) Fun.id))
  in
  (* The sweep counters tally on one registry shard per chunk of units
     (contiguous chunks; each chunk is a single Pool task, so its shard is
     touched by exactly one domain).  The shards merge in index order
     after the join; sums are commutative and associative, so the merged
     totals — and hence any snapshot — are identical at any -j and any
     chunk count. *)
  let n_units = Array.length units in
  let n_chunks = max 1 (min n_units 64) in
  let bounds ci = (ci * n_units / n_chunks, (ci + 1) * n_units / n_chunks) in
  let shards = Registry.shards reg ~n:n_chunks in
  let result_chunks =
    Util.Pool.run (Array.init n_chunks Fun.id) ~f:(fun ~idx:_ ci ->
        let sh = shards.(ci) in
        let s_sets = counter_of sh "verify/failure-sets" in
        let s_cls =
          Array.of_list
            (List.map
               (fun cls -> counter_of sh (verdict_metric cls))
               Verifier.all_classifications)
        in
        let s_states = histogram_of sh "verify/states" in
        let lo, hi = bounds ci in
        Array.init (hi - lo) (fun j ->
            let pi, _, failed = units.(lo + j) in
            let ((cls, outcome) : Verifier.classification * Verifier.outcome)
                =
              Verifier.verify instances.(pi) ~failed
            in
            Registry.incr s_sets;
            Registry.incr s_cls.(class_index cls);
            Registry.observe s_states outcome.Verifier.states;
            (cls, outcome)))
  in
  let results = Array.concat (Array.to_list result_chunks) in
  Array.iter (fun sh -> Registry.merge_into ~into:reg sh) shards;
  (* the sweep "clock" is its own progress: one unit of virtual time per
     verified failure set, so the span is deterministic *)
  Option.iter
    (fun sp ->
      Span.record sp Span.Verify_sweep ~t0:0.0 ~t1:(float_of_int n_units)
        ~detail:n_units)
    spans;
  (* aggregate *)
  let counts =
    Array.init (Array.length instances) (fun _ ->
        Array.init max_k (fun _ -> Array.make n_classes 0))
  in
  let all_adv = Array.make_matrix (Array.length instances) max_k true in
  let all_ang = Array.make_matrix (Array.length instances) max_k true in
  Array.iteri
    (fun i (pi, ki, _) ->
      let cls, (outcome : Verifier.outcome) = results.(i) in
      let row = counts.(pi).(ki) in
      row.(class_index cls) <- row.(class_index cls) + 1;
      if cls <> Verifier.Disconnected then begin
        if cls <> Verifier.Guaranteed then all_adv.(pi).(ki) <- false;
        if not outcome.Verifier.can_deliver then all_ang.(pi).(ki) <- false
      end)
    units;
  let resilience all pi =
    let rec go k = if k < max_k && all.(pi).(k) then go (k + 1) else k in
    go 0
  in
  let pair_reports =
    List.mapi
      (fun pi (src, dst) ->
        {
          src = Graph.label g src;
          dst = Graph.label g dst;
          per_k = counts.(pi);
          adv_k = resilience all_adv pi;
          ang_k = resilience all_ang pi;
        })
      pairs
  in
  (* first refutation per refuted class, in sweep order *)
  let refuted = [ Verifier.Policy_dependent; Verifier.Loop; Verifier.Blackhole ] in
  let counterexamples =
    List.filter_map
      (fun cls ->
        let found = ref None in
        Array.iteri
          (fun i (pi, _, failed) ->
            if !found = None && fst results.(i) = cls then
              found := Some (pi, failed))
          units;
        match !found with
        | None -> None
        | Some (pi, failed) ->
          let inst = instances.(pi) in
          (match Verifier.refute inst ~failed with
           | None, _ -> None
           | Some r, init_stranded ->
             let events = Counterexample.events inst r ~init_stranded in
             let violations =
               Counterexample.check inst r ~init_stranded
             in
             Some
               {
                 cx_class = cls;
                 cx_src = Graph.label g inst.Verifier.src;
                 cx_dst = Graph.label g inst.Verifier.dst;
                 cx_failed = List.map (link_name g) failed;
                 cx_events = events;
                 cx_violations = violations;
               }))
      refuted
  in
  {
    topology = name;
    max_k;
    policy;
    n_core_links = List.length links;
    pairs = pair_reports;
    counterexamples;
  }

let effective_k default =
  match !max_k_override with Some k -> max 1 k | None -> default

let run ?registry ?spans ?(policy = Kar.Policy.Not_input_port) () =
  [
    run_topology ?registry ?spans ~name:"net15" Nets.net15
      ~max_k:(effective_k 3) ~policy ();
    run_topology ?registry ?spans ~name:"rnp28" Nets.rnp28
      ~max_k:(effective_k 2) ~policy ();
  ]

let class_abbrev = function
  | Verifier.Guaranteed -> "G"
  | Verifier.Policy_dependent -> "PD"
  | Verifier.Loop -> "L"
  | Verifier.Blackhole -> "B"
  | Verifier.Disconnected -> "X"

let cell_to_string row =
  let parts =
    List.filter_map
      (fun cls ->
        let n = row.(class_index cls) in
        if n = 0 then None
        else Some (Printf.sprintf "%d%s" n (class_abbrev cls)))
      Verifier.all_classifications
  in
  if parts = [] then "-" else String.concat " " parts

let resilience_to_string ~max_k k =
  if k >= max_k then Printf.sprintf ">=%d" max_k else string_of_int k

let report_to_string (r : topo_report) =
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "%s: %d edge pairs, %d core links, k <= %d, policy %s, full protection\n"
    r.topology (List.length r.pairs) r.n_core_links r.max_k
    (Kar.Policy.to_string r.policy);
  let header =
    [ "Pair" ]
    @ List.init r.max_k (fun i -> Printf.sprintf "k=%d" (i + 1))
    @ [ "adv. k"; "angelic k" ]
  in
  let rows =
    List.map
      (fun p ->
        [ Printf.sprintf "%d->%d" p.src p.dst ]
        @ List.init r.max_k (fun i -> cell_to_string p.per_k.(i))
        @ [
            resilience_to_string ~max_k:r.max_k p.adv_k;
            resilience_to_string ~max_k:r.max_k p.ang_k;
          ])
      r.pairs
  in
  Buffer.add_string b (Util.Texttab.render ~header rows);
  let topo_adv =
    List.fold_left (fun acc p -> min acc p.adv_k) r.max_k r.pairs
  in
  let topo_ang =
    List.fold_left (fun acc p -> min acc p.ang_k) r.max_k r.pairs
  in
  Printf.bprintf b
    "%s resilience (Chiesa-style, over all pairs): adversarial %s, angelic \
     %s (of %d verified)\n"
    r.topology
    (resilience_to_string ~max_k:r.max_k topo_adv)
    (resilience_to_string ~max_k:r.max_k topo_ang)
    r.max_k;
  List.iter
    (fun cx ->
      let ok =
        Counterexample.well_formed cx.cx_violations
        && Counterexample.refutes cx.cx_violations
      in
      Printf.bprintf b
        "counterexample [%s] %d->%d failed={%s}: %d events, machine check \
         %s\n"
        (Verifier.classification_to_string cx.cx_class)
        cx.cx_src cx.cx_dst
        (String.concat "," cx.cx_failed)
        (List.length cx.cx_events)
        (if ok then "OK (delivery refuted, trace well-formed)"
         else "FAILED"))
    r.counterexamples;
  Buffer.contents b

let to_string ?policy ?(metrics = false) () =
  let registry = Registry.create () in
  let spans = Span.create () in
  let reports = run ~registry ~spans ?policy () in
  "Exhaustive k-failure resilience verification (compiled forwarding \
   tables;\ndeflection draws treated as adversarial choice; G guaranteed, \
   PD policy-dependent,\nL loop, B blackhole, X disconnected)\n\n"
  ^ String.concat "\n" (List.map report_to_string reports)
  ^
  if metrics then
    "\n-- metrics --\n" ^ Kar_obs.Export.summary registry
    ^ Span.summary spans
  else ""

(* --- golden fixture (test/fixtures/verify_net15_k2.jsonl) --- *)

let fixture_lines () =
  let r =
    run_topology ~name:"net15" Nets.net15 ~max_k:2
      ~policy:Kar.Policy.Not_input_port ()
  in
  let verdicts =
    List.concat_map
      (fun p ->
        List.init r.max_k (fun ki ->
            let row = p.per_k.(ki) in
            Printf.sprintf
              "{\"type\":\"verdict\",\"topology\":\"net15\",\"src\":%d,\"dst\":%d,\"k\":%d,\"guaranteed\":%d,\"policy_dependent\":%d,\"loop\":%d,\"blackhole\":%d,\"disconnected\":%d}"
              p.src p.dst (ki + 1)
              row.(class_index Verifier.Guaranteed)
              row.(class_index Verifier.Policy_dependent)
              row.(class_index Verifier.Loop)
              row.(class_index Verifier.Blackhole)
              row.(class_index Verifier.Disconnected)))
      r.pairs
  in
  let cx_lines =
    match r.counterexamples with
    | [] -> []
    | cx :: _ ->
      Printf.sprintf
        "{\"type\":\"counterexample\",\"topology\":\"net15\",\"src\":%d,\"dst\":%d,\"class\":\"%s\",\"failed\":\"%s\"}"
        cx.cx_src cx.cx_dst
        (Verifier.classification_to_string cx.cx_class)
        (String.concat "+" cx.cx_failed)
      :: List.map Trace.Event.to_jsonl cx.cx_events
  in
  verdicts @ cx_lines
