(** Beyond the paper: how the route-ID header grows with network scale.

    Section 2.3 notes that the bit length grows with the product of the
    switch IDs on the (protected) route and that this "restriction should
    be considered for implementation purposes".  This experiment quantifies
    it: for synthetic topologies of increasing size, it measures the
    route-ID bit length of diameter-length routes at each protection level,
    and checks them against the wire format's capacity. *)

type row = {
  nodes : int;
  diameter : int;
  bits_unprotected : int; (** a diameter route, no protection *)
  bits_radius1 : int; (** + tree hops for all switches adjacent to it *)
  bits_full : int; (** + tree hops for every off-path switch *)
  fits_header : bool; (** does full protection fit {!Wire.Header}? *)
}

val run : unit -> row list

val to_string : unit -> string

(** Multipath variant of the same question (the paper's future work): total
    header bits for [k] edge-disjoint unprotected route IDs versus one
    fully protected one, on the same topologies. *)
val multipath_to_string : unit -> string
