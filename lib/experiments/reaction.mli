(** Beyond-the-paper experiments on the failure-reaction design space.

    The paper's introduction frames KAR against two alternatives: waiting
    for a source notification, and in-network protection state.  These
    experiments quantify the whole spectrum on the 15-node network:

    - {!compare_schemes}: goodput during the failure window for KAR
      deflection (NIP/AVP), 1+1 ingress failover, controller rerouting
      with a realistic notification delay, and the stateful fast-failover
      data plane;
    - {!detection_sweep}: KAR's one hidden dependency — local failure
      {e detection} — swept from the paper's implicit oracle (0) to
      hundreds of milliseconds, showing how the advantage over reactive
      schemes shrinks as detection slows. *)

type scheme_result = {
  scheme : string;
  mean_onset : float; (** goodput in the first second after the failure *)
  mean_fail : float; (** goodput during the failure window, Mb/s *)
  mean_post : float; (** after repair *)
  drops : int; (** packets lost across the run *)
}

val compare_schemes : ?profile:Profile.t -> unit -> scheme_result list

val compare_to_string : ?profile:Profile.t -> unit -> string

type detection_point = {
  detection_s : float;
  mean_onset : float;
  mean_fail : float;
  drops : int;
}

val detection_sweep : ?profile:Profile.t -> unit -> detection_point list

val detection_to_string : ?profile:Profile.t -> unit -> string
