module Graph = Topo.Graph

type case = {
  topology : string;
  failure : string;
  level : Kar.Controller.level;
  policy : Kar.Policy.t;
  packets : int;
  delivered : int;
  events : int;
  violations : Trace.Invariant.violation list;
}

(* Delivery is the paper's claim only for full protection with a
   deterministic deflection technique: HP random-walks deflected packets
   (no driven deflection ever fires for it), and the no-deflection baseline
   drops on the first dead port. *)
let expect_delivery level policy =
  level = Kar.Controller.Full
  && (policy = Kar.Policy.Any_valid_port || policy = Kar.Policy.Not_input_port)

let core_links g =
  List.filter
    (fun id ->
      let l = Graph.link g id in
      Graph.is_core g l.Graph.ep0.Graph.node
      && Graph.is_core g l.Graph.ep1.Graph.node)
    (List.init (Graph.n_links g) Fun.id)

let failure_name g id =
  let l = Graph.link g id in
  Printf.sprintf "SW%d-SW%d"
    (Graph.label g l.Graph.ep0.Graph.node)
    (Graph.label g l.Graph.ep1.Graph.node)

(* One traced simulation: [packets] packets ingress->egress over the
   scenario plan, [link] down from t=0, run to drain.  Returns the case
   record and the full event list. *)
let run_case ~topology (sc : Topo.Nets.scenario) ~link ~level ~policy ~packets
    ~seed =
  let g = sc.Topo.Nets.graph in
  let engine = Netsim.Engine.create () in
  let net = Netsim.Net.create ~graph:g ~engine () in
  let plan = Kar.Controller.scenario_plan sc level in
  let protected_switches =
    List.map (fun r -> r.Rns.modulus) plan.Kar.Route.residues
  in
  let recorder = Trace.Recorder.create ~protected_switches () in
  Netsim.Net.set_recorder net (Some recorder);
  (* The sweep runs with the residue cache on; the differential test in
     test_trace re-runs cases with it off and diffs the JSONL. *)
  Netsim.Karnet.install_switches ~plan net ~policy ~seed;
  let cache = Kar.Controller.create_cache g in
  List.iter
    (fun v ->
      Netsim.Karnet.install_edge net v
        ~reencode:(fun (p : Netsim.Packet.t) ->
          Kar.Controller.reencode cache ~at:v ~dst:(Netsim.Packet.dst p))
        ~receive:(fun _ _ -> ())
        ())
    (Graph.edge_nodes g);
  Netsim.Net.fail_link net link;
  for i = 0 to packets - 1 do
    ignore
      (Netsim.Engine.schedule_at engine
         (float_of_int i *. 1e-3)
         (fun () ->
           let packet =
             Netsim.Packet.make
               ~uid:(Netsim.Net.fresh_uid net)
               ~src:sc.Topo.Nets.ingress ~dst:sc.Topo.Nets.egress
               ~size_bytes:512 ~route_id:plan.Kar.Route.route_id
               ~born:(Netsim.Engine.now engine) Netsim.Packet.Raw
           in
           Netsim.Net.inject net ~at:sc.Topo.Nets.ingress packet))
  done;
  Netsim.Engine.run engine;
  let events = Trace.Recorder.contents recorder in
  let violations =
    Trace.Invariant.check ~drained:true
      ~expect_delivery:(expect_delivery level policy)
      events
  in
  ( {
      topology;
      failure = failure_name g link;
      level;
      policy;
      packets;
      delivered = (Netsim.Net.stats net).Netsim.Net.delivered;
      events = List.length events;
      violations;
    },
    events )

let scenarios =
  [ ("net15", Topo.Nets.net15); ("rnp28", Topo.Nets.rnp28) ]

let run ?(packets = 4) ?(seed = 42) () =
  List.concat_map
    (fun (topology, sc) ->
      List.concat_map
        (fun link ->
          List.concat_map
            (fun level ->
              List.map
                (fun policy ->
                  fst
                    (run_case ~topology sc ~link ~level ~policy ~packets ~seed))
                Kar.Policy.all)
            Kar.Controller.all_levels)
        (core_links sc.Topo.Nets.graph))
    scenarios

let to_string ?(packets = 4) ?(seed = 42) () =
  let cases = run ~packets ~seed () in
  (* Aggregate per (topology, level, policy): the per-link detail only
     matters when something is wrong. *)
  let keys =
    List.concat_map
      (fun (topology, _) ->
        List.concat_map
          (fun level ->
            List.map (fun policy -> (topology, level, policy)) Kar.Policy.all)
          Kar.Controller.all_levels)
      scenarios
  in
  let body =
    List.map
      (fun (topology, level, policy) ->
        let cs =
          List.filter
            (fun c ->
              c.topology = topology && c.level = level && c.policy = policy)
            cases
        in
        let sum f = List.fold_left (fun acc c -> acc + f c) 0 cs in
        [
          topology;
          Kar.Controller.level_to_string level;
          Kar.Policy.to_string policy;
          string_of_int (List.length cs);
          string_of_int (sum (fun c -> c.packets));
          string_of_int (sum (fun c -> c.delivered));
          string_of_int (sum (fun c -> List.length c.violations));
          (if expect_delivery level policy then "yes" else "-");
        ])
      keys
  in
  let header =
    [
      "Topology"; "Protection"; "Technique"; "Failures"; "Injected";
      "Delivered"; "Violations"; "Delivery required";
    ]
  in
  let detail =
    List.concat_map
      (fun c ->
        List.map
          (fun v ->
            Printf.sprintf "  %s %s %s %s: %s" c.topology c.failure
              (Kar.Controller.level_to_string c.level)
              (Kar.Policy.to_string c.policy)
              (Format.asprintf "%a" Trace.Invariant.pp_violation v))
          c.violations)
      cases
  in
  Printf.sprintf
    "Invariant sweep: every single core-link failure x policy x protection \
     (%d packets/case, seed %d)\n"
    packets seed
  ^ Util.Texttab.render ~header body
  ^ (match detail with
     | [] -> "All invariants hold.\n"
     | lines -> "Violations:\n" ^ String.concat "\n" lines ^ "\n")

let canonical_trace which =
  match which with
  | `Fig1 ->
    let sc = Topo.Nets.fig1_six in
    let fc = List.hd sc.Topo.Nets.failures in
    snd
      (run_case ~topology:"fig1" sc ~link:fc.Topo.Nets.link
         ~level:Kar.Controller.Partial ~policy:Kar.Policy.Not_input_port
         ~packets:2 ~seed:7)
  | `Net15 ->
    let sc = Topo.Nets.net15 in
    let fc = List.nth sc.Topo.Nets.failures 1 in
    snd
      (run_case ~topology:"net15" sc ~link:fc.Topo.Nets.link
         ~level:Kar.Controller.Full ~policy:Kar.Policy.Not_input_port
         ~packets:3 ~seed:11)
