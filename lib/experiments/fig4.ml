type curve = {
  policy : Kar.Policy.t;
  series : float list;
  mean_pre : float;
  mean_fail : float;
  mean_post : float;
  flow : Tcp.Flow.stats;
}

let paper_note =
  "Paper: traffic survives the failure under every deflection technique; NIP \
   keeps the highest goodput (~150 of 200 Mb/s, a ~25% disorder penalty); \
   without deflection the flow stalls for the whole failure window."

let failure () = List.nth Topo.Nets.net15.Topo.Nets.failures 1 (* SW7-SW13 *)

let run ?(profile = Profile.from_env ()) () =
  List.map
    (fun policy ->
      let config =
        {
          Workload.Runner.default_timeline with
          policy = Workload.Runner.Kar policy;
          level = Kar.Controller.Full;
          failure = Some (failure ());
          pre_s = profile.Profile.fig4_phase_s;
          fail_s = profile.Profile.fig4_phase_s;
          post_s = profile.Profile.fig4_phase_s;
        }
      in
      let r = Workload.Runner.timeline Topo.Nets.net15 config in
      {
        policy;
        series = r.Workload.Runner.series;
        mean_pre = r.Workload.Runner.mean_pre;
        mean_fail = r.Workload.Runner.mean_fail;
        mean_post = r.Workload.Runner.mean_post;
        flow = r.Workload.Runner.flow;
      })
    Kar.Policy.all

let to_string ?(profile = Profile.from_env ()) () =
  let curves = run ~profile () in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "Fig. 4: TCP goodput across a SW7-SW13 failure (net15, full protection, \
        %gs phases)\n"
       profile.Profile.fig4_phase_s);
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%-5s pre=%6.1f fail=%6.1f post=%6.1f Mb/s  %s\n"
           (Kar.Policy.to_string c.policy)
           c.mean_pre c.mean_fail c.mean_post
           (Util.Texttab.spark c.series)))
    curves;
  Buffer.add_string buf paper_note;
  Buffer.add_char buf '\n';
  Buffer.contents buf
