(** Invariant sweep: run the packet simulator with the flight recorder on
    and check every trace with {!Trace.Invariant.check}.

    The sweep covers {b every single core-link failure} on the two
    evaluation topologies ({!Topo.Nets.net15}, {!Topo.Nets.rnp28}) crossed
    with all four deflection policies and all three protection levels —
    the machine-checked version of the paper's §III claims: driven
    deflections are loop-free, and under full protection the evaluated
    routes survive any single core-link failure (Fig. 5/7).

    Delivery (invariant 5) is only {e expected} where the paper claims it:
    full protection with a deterministic deflection technique (AVP, NIP).
    Hot-potato random-walks deflected packets, and unprotected/partial
    plans legitimately lose packets — those cases still must satisfy
    invariants 1-4. *)

type case = {
  topology : string;
  failure : string; (** failed link as ["SWa-SWb"] *)
  level : Kar.Controller.level;
  policy : Kar.Policy.t;
  packets : int; (** injected *)
  delivered : int;
  events : int; (** trace events recorded *)
  violations : Trace.Invariant.violation list;
}

(** Does the paper promise delivery for this cell? *)
val expect_delivery : Kar.Controller.level -> Kar.Policy.t -> bool

(** [run ()] executes the full sweep ([packets] per case, default 4;
    deterministic in [seed], default 42). *)
val run : ?packets:int -> ?seed:int -> unit -> case list

(** [to_string ()] renders the sweep as a summary table plus any violation
    details. *)
val to_string : ?packets:int -> ?seed:int -> unit -> string

(** Canonical single-case traces used as golden JSONL fixtures (fig1 with
    the Fig. 1 failure, net15 with a Fig. 5 failure).  Fully deterministic:
    same events, sequence numbers and timestamps on every run. *)
val canonical_trace : [ `Fig1 | `Net15 ] -> Trace.Event.t list
