(** Beyond the paper: what deflection does to {e bystander} traffic.

    The paper measures the protected flow only.  But deflected packets
    travel links other flows are using: resilience for one flow is
    interference for another.  This experiment runs the paper's protected
    flow (AS1 -> AS3 over net15) next to a bystander flow (AS2 -> AS3) and
    measures both, with and without the SW7-SW13 failure, for each
    deflection policy — quantifying the "performance indicators" trade-off
    the paper defers to future work. *)

type point = {
  policy : Kar.Policy.t;
  failed : bool;
  primary_mbps : float; (** the protected AS1 -> AS3 flow *)
  bystander_mbps : float; (** the AS2 -> AS3 flow sharing the egress *)
}

val run : ?profile:Profile.t -> unit -> point list

val to_string : ?profile:Profile.t -> unit -> string
