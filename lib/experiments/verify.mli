(** Beyond the paper: exhaustive k-failure resilience verification.

    The simulation experiments sample what KAR does under failures; this
    one {e decides} it.  Every (src, dst) edge pair of the two evaluation
    topologies is compiled ({!Kar_verify.Compiler}) and every failure set
    of up to [max_k] core links is classified by the exhaustive verifier
    ({!Kar_verify.Verifier}) with deflection draws treated as adversarial
    choice.  Refuted classes come with a machine-checked counterexample
    trace (replayed through {!Trace.Invariant}).

    The per-pair summary is the Chiesa-style resilience number: the
    largest k for which {e every} connected failure set of size at most k
    is classified Guaranteed (adversarial) or still admits a delivering
    resolution (angelic).

    The sweep is exhaustive and randomness-free; it parallelises over the
    shared {!Util.Pool} with an order-restoring join, so output is
    byte-identical at any [-j]. *)

module Graph = Topo.Graph
module Verifier = Kar_verify.Verifier

(** Sweep-depth override ([kar_experiments verify --max-k], CI smoke);
    [None] uses the defaults: net15 k <= 3, rnp28 k <= 2. *)
val max_k_override : int option ref

type pair_report = {
  src : int;  (** edge label *)
  dst : int;
  per_k : int array array;
      (** [per_k.(k-1).(i)] = failure sets of size k classified as
          [List.nth Verifier.all_classifications i] *)
  adv_k : int;
      (** largest k <= max_k with every connected set Guaranteed *)
  ang_k : int;
      (** largest k <= max_k with every connected set deliverable under
          some resolution of the deflection draws *)
}

type counterexample = {
  cx_class : Verifier.classification;
  cx_src : int;
  cx_dst : int;
  cx_failed : string list;  (** failed links as ["SWa-SWb"] *)
  cx_events : Trace.Event.t list;
  cx_violations : Trace.Invariant.violation list;
}

type topo_report = {
  topology : string;
  max_k : int;
  policy : Kar.Policy.t;
  n_core_links : int;
  pairs : pair_report list;
  counterexamples : counterexample list;
      (** first refutation per refuted class, in sweep order *)
}

(** Core-to-core link ids, in link-id order. *)
val core_links : Graph.t -> Graph.link_id list

(** All k-subsets in lexicographic order of the input — the deterministic
    sweep order. *)
val failure_sets : Graph.link_id list -> k:int -> Graph.link_id list list

(** [instance_for g ~src ~dst ~policy] prepares a verification instance
    over {!Kar.Controller.protected_route} at full protection. *)
val instance_for :
  Graph.t ->
  src:Graph.node ->
  dst:Graph.node ->
  policy:Kar.Policy.t ->
  Verifier.instance

(** [run_topology ?registry ?spans ~name sc ~max_k ~policy ()] sweeps one
    topology.  When [registry] is given, the sweep tallies
    [verify/failure-sets], one [verify/verdict-*] counter per
    classification, and the [verify/states] state-space-size histogram —
    counted on one registry shard per chunk of work
    ({!Kar_obs.Registry.shards}) and merged after the {!Util.Pool} join,
    so totals are identical at any [-j].  When [spans] is given, one
    [Verify_sweep] span is recorded per topology; the sweep has no
    simulation clock, so the span's virtual time is its own progress (one
    unit per verified failure set) and [detail] is the unit count. *)
val run_topology :
  ?registry:Kar_obs.Registry.t ->
  ?spans:Kar_obs.Span.t ->
  name:string ->
  Topo.Nets.scenario ->
  max_k:int ->
  policy:Kar.Policy.t ->
  unit ->
  topo_report

(** [run ()] sweeps both evaluation topologies (NIP by default);
    [registry]/[spans] as in {!run_topology}. *)
val run :
  ?registry:Kar_obs.Registry.t ->
  ?spans:Kar_obs.Span.t ->
  ?policy:Kar.Policy.t ->
  unit ->
  topo_report list

(** [to_string ~metrics:true ()] appends the sweep's registry summary and
    span table to the report. *)
val to_string : ?policy:Kar.Policy.t -> ?metrics:bool -> unit -> string

(** The golden-fixture content (test/fixtures/verify_net15_k2.jsonl):
    per-pair verdict lines for net15 at k <= 2 plus the first
    counterexample trace, one JSON object per line. *)
val fixture_lines : unit -> string list
