module Graph = Topo.Graph
module Paths = Topo.Paths

type row = {
  nodes : int;
  diameter : int;
  bits_unprotected : int;
  bits_radius1 : int;
  bits_full : int;
  fits_header : bool;
}

(* A diameter-length route on a KAR-labelled Waxman graph with one host at
   each end. *)
let scenario_for n =
  let base = Topo.Gen.waxman ~n ~alpha:0.9 ~beta:0.35 ~seed:(1000 + n) in
  let g = Kar.Ids.assign base Kar.Ids.Prime_powers in
  (* find a diameter endpoint pair *)
  let best = ref (0, 0, 0) in
  Graph.iter_nodes g ~f:(fun v ->
      let dist, _ = Paths.bfs g v in
      Array.iteri
        (fun u d ->
          if d <> max_int && d > (fun (_, _, d') -> d') !best then best := (v, u, d))
        dist);
  let src_core, dst_core, diameter = !best in
  let g, hosts = Topo.Gen.with_edge_hosts g [ src_core; dst_core ] in
  match hosts with
  | [ src; dst ] -> (g, src, dst, diameter)
  | _ -> assert false

let plan_bits g ~src ~dst ~members =
  let plan =
    Kar.Controller.route g ~src ~dst ~protection:[]
  in
  let dest_core =
    match List.rev plan.Kar.Route.core_path with
    | last :: _ -> last
    | [] -> invalid_arg "Scaling: empty route"
  in
  let hops =
    Kar.Protection.tree_hops g ~dest:dest_core (members plan.Kar.Route.core_path)
  in
  let hops =
    List.filter
      (fun (s, _) ->
        not (List.mem s (List.map (Graph.label g) plan.Kar.Route.core_path)))
      hops
  in
  (* fold hops one at a time, skipping any that conflict *)
  let protected_plan =
    List.fold_left
      (fun acc hop ->
        match Kar.Route.protect g acc [ hop ] with
        | Ok plan -> plan
        | Error _ -> acc)
      plan hops
  in
  (plan.Kar.Route.bit_length, protected_plan.Kar.Route.bit_length)

(* Each network size is an independent unit (its own generated graph,
   seeded by [n]), so the sizes sweep in parallel on the domain pool. *)
let run () =
  Util.Pool.run [| 16; 32; 64; 128; 256 |] ~f:(fun ~idx:_ n ->
      let g, src, dst, diameter = scenario_for n in
      let radius1 path = Kar.Protection.off_path_members g ~path ~radius:1 in
      let full path = Kar.Protection.full_members g ~path in
      let unprotected, bits_radius1 = plan_bits g ~src ~dst ~members:radius1 in
      let _, bits_full = plan_bits g ~src ~dst ~members:full in
      {
        nodes = n;
        diameter;
        bits_unprotected = unprotected;
        bits_radius1;
        bits_full;
        fits_header = bits_full <= Wire.Header.max_route_bits;
      })
  |> Array.to_list

let to_string () =
  let rows = run () in
  "Scaling: route-ID bits vs network size (Waxman graphs, prime-power IDs, \
   diameter routes)\n"
  ^ Util.Texttab.render
      ~header:
        [ "Nodes"; "Diameter"; "Unprotected (bits)"; "Radius-1 protection";
          "Full protection"; "Fits wire header" ]
      (List.map
         (fun r ->
           [
             string_of_int r.nodes;
             string_of_int r.diameter;
             string_of_int r.bits_unprotected;
             string_of_int r.bits_radius1;
             string_of_int r.bits_full;
             (if r.fits_header then "yes" else "NO");
           ])
         rows)
  ^ Printf.sprintf
      "The wire header carries up to %d bits; full protection outgrows \
       headers long before radius-1 protection does — the loose-source-\
       routing trade-off of section 2.3.\n"
      Wire.Header.max_route_bits

let multipath_to_string () =
  let rows =
    Util.Pool.run [| 16; 32; 64; 128 |] ~f:(fun ~idx:_ n ->
        let g, src, dst, _ = scenario_for n in
        let plans = Kar.Controller.disjoint_plans g ~src ~dst ~k:3 in
        let bits = List.map (fun p -> p.Kar.Route.bit_length) plans in
        let radius1 path = Kar.Protection.off_path_members g ~path ~radius:1 in
        let _, protected_bits = plan_bits g ~src ~dst ~members:radius1 in
        [
          string_of_int n;
          string_of_int (List.length plans);
          String.concat "+" (List.map string_of_int bits);
          string_of_int (List.fold_left ( + ) 0 bits);
          string_of_int protected_bits;
        ])
    |> Array.to_list
  in
  "Multipath vs driven deflection: header cost of k disjoint route IDs \
   (future work)\n"
  ^ Util.Texttab.render
      ~header:
        [ "Nodes"; "Disjoint paths"; "Bits per path"; "Total multipath bits";
          "One radius-1-protected ID" ]
      rows
  ^ "At small scale the costs are comparable, but multipath headers grow \
     with path length only, while protected route IDs grow with the size of \
     the protected neighbourhood — an order of magnitude apart by ~100 \
     nodes.  What multipath cannot do is save the packets already in \
     flight: only deflection reacts before the ingress learns anything.\n"
