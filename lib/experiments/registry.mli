(** The experiment catalogue: every runnable experiment by id, grouped for
    display, plus the name-resolution used by the [kar_experiments] CLI.

    Groups carry a lowercase [alias] that is itself runnable
    ([kar_experiments ablations] runs the whole group), and the
    typo-suggestion machinery ({!nearest}) searches ids {e and} aliases so
    a near-miss on either gets a useful hint. *)

type entry = {
  id : string;
  doc : string;
  run : Profile.t -> string;
  metrics : (Profile.t -> string) option;
      (** metrics-capable entries only (the ones instrumented on the
          unified {!Kar_obs.Registry}): the renderer used under
          [kar_experiments --metrics], which appends the registry summary
          and span table to the normal output.  [None] means the entry
          runs identically with and without [--metrics]. *)
}

type group = {
  name : string;  (** display name, e.g. "Beyond the paper" *)
  alias : string;  (** runnable lowercase alias, e.g. "beyond" *)
  entries : entry list;
}

val groups : group list

(** All entries in display order — the run-all order. *)
val all : entry list

(** Resolve a CLI name: an experiment id, a group alias, or unknown. *)
val find : string -> [ `Entry of entry | `Group of group | `Unknown ]

(** Every runnable name (ids then aliases). *)
val names : string list

(** [nearest name] is the runnable name with the smallest edit distance,
    and that distance. *)
val nearest : string -> string * int

(** Two-row Levenshtein distance (exposed for tests). *)
val edit_distance : string -> string -> int
