module Net = Netsim.Net
module Engine = Netsim.Engine
module Graph = Topo.Graph
module Nets = Topo.Nets

type point = {
  policy : Kar.Policy.t;
  failed : bool;
  primary_mbps : float;
  bystander_mbps : float;
}

(* Both flows terminate at AS3: the bystander rides AS2 -> 23 -> 29 -> AS3
   while the primary rides the protected 10 -> 7 -> 13 -> 29 route; they
   share the SW29 egress, and deflected primary traffic wanders into the
   bystander's neighbourhood. *)
let run_one policy ~failed ~duration_s =
  let sc = Nets.net15 in
  let g = sc.Nets.graph in
  let engine = Engine.create () in
  let net = Net.create ~graph:g ~engine () in
  Netsim.Karnet.install_switches net ~policy ~seed:42;
  let stack = Tcp.Stack.create ~net () in
  (* primary: the scenario's protected plan *)
  let fwd1 = Kar.Controller.scenario_plan sc Kar.Controller.Full in
  let rev1 = Kar.Controller.scenario_reverse_plan sc Kar.Controller.Full in
  let sampler1 = Tcp.Sampler.create ~bin_s:0.25 () in
  let flow1 =
    Tcp.Flow.start ~net ~id:1 ~src:sc.Nets.ingress ~dst:sc.Nets.egress
      ~fwd_route:fwd1.Kar.Route.route_id ~rev_route:rev1.Kar.Route.route_id
      ~sampler:sampler1 ()
  in
  Tcp.Stack.register stack flow1;
  (* bystander: plain shortest routes AS2 <-> AS3 *)
  let as2 = Graph.node_of_label g 1002 in
  let fwd2 = Kar.Controller.route g ~src:as2 ~dst:sc.Nets.egress ~protection:[] in
  let rev2 = Kar.Controller.route g ~src:sc.Nets.egress ~dst:as2 ~protection:[] in
  let sampler2 = Tcp.Sampler.create ~bin_s:0.25 () in
  let flow2 =
    Tcp.Flow.start ~net ~id:2 ~src:as2 ~dst:sc.Nets.egress
      ~fwd_route:fwd2.Kar.Route.route_id ~rev_route:rev2.Kar.Route.route_id
      ~sampler:sampler2 ()
  in
  Tcp.Stack.register stack flow2;
  if failed then
    Net.fail_link net (List.nth sc.Nets.failures 1).Nets.link;
  Engine.run_until engine duration_s;
  Tcp.Flow.stop flow1;
  Tcp.Flow.stop flow2;
  let mean s = Tcp.Sampler.mean_mbps s ~from_s:(duration_s /. 4.0) ~until:duration_s in
  {
    policy;
    failed;
    primary_mbps = mean sampler1;
    bystander_mbps = mean sampler2;
  }

let run ?(profile = Profile.from_env ()) () =
  let duration_s = profile.Profile.iperf_duration_s in
  List.concat_map
    (fun policy ->
      [ run_one policy ~failed:false ~duration_s;
        run_one policy ~failed:true ~duration_s ])
    [ Kar.Policy.Not_input_port; Kar.Policy.Any_valid_port; Kar.Policy.Hot_potato ]

let to_string ?(profile = Profile.from_env ()) () =
  let points = run ~profile () in
  "Bystander interference (net15: protected AS1->AS3 beside plain AS2->AS3, \
   SW7-SW13 failure)\n"
  ^ Util.Texttab.render
      ~header:[ "Policy"; "Failure"; "Primary (Mb/s)"; "Bystander (Mb/s)" ]
      (List.map
         (fun p ->
           [
             Kar.Policy.to_string p.policy;
             (if p.failed then "SW7-SW13" else "none");
             Printf.sprintf "%.1f" p.primary_mbps;
             Printf.sprintf "%.1f" p.bystander_mbps;
           ])
         points)
  ^ "Deflection keeps the primary flow alive at the bystander's expense \
     where their paths now overlap; the gentler the policy (NIP < AVP < \
     HP in wandering), the smaller the collateral damage.\n"
