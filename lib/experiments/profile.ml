type t = {
  name : string;
  fig4_phase_s : float;
  iperf_reps : int;
  iperf_duration_s : float;
  walk_trials : int;
  cbr_duration_s : float;
}

let quick =
  {
    name = "quick";
    fig4_phase_s = 3.0;
    iperf_reps = 10;
    iperf_duration_s = 3.0;
    walk_trials = 20_000;
    cbr_duration_s = 2.0;
  }

let paper =
  {
    name = "paper";
    fig4_phase_s = 30.0;
    iperf_reps = 30;
    iperf_duration_s = 5.0;
    walk_trials = 100_000;
    cbr_duration_s = 10.0;
  }

let from_env () =
  match Sys.getenv_opt "KAR_PROFILE" with
  | Some "paper" -> paper
  | Some _ | None -> quick
