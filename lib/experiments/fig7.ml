type point = {
  case : string;
  goodput : Util.Stats.summary;
  analysis : Kar.Markov.analysis option;
}

let paper_note =
  "Paper: SW7-SW13 drops <5% (deterministic one-extra-hop detour via \
   11->17->71); SW13-SW41 drops ~40% with the highest variance (2 of 5 \
   alternatives driven); SW41-SW73 drops ~30% (both alternatives driven, \
   different lengths)."

let run ?(profile = Profile.from_env ()) () =
  let sc = Topo.Nets.rnp28 in
  let config failure =
    {
      Workload.Runner.default_iperf with
      policy = Workload.Runner.Kar Kar.Policy.Not_input_port;
      level = Kar.Controller.Partial;
      failure;
      reps = profile.Profile.iperf_reps;
      rep_duration_s = profile.Profile.iperf_duration_s;
    }
  in
  (* All four cases run at the same protection level, so the route plans
     are encoded exactly once and shared (immutably) by every rep. *)
  let plans = Workload.Runner.scenario_plans sc Kar.Controller.Partial in
  let plan = fst plans in
  let cases =
    Array.of_list (None :: List.map Option.some sc.Topo.Nets.failures)
  in
  let reps = profile.Profile.iperf_reps in
  (* One task per (case, rep): with only four cases, flattening to rep
     granularity keeps every domain busy.  Seeds come from the rep index,
     and samples are regrouped in case-major order, so the summaries are
     the ones the serial loop computed. *)
  let units =
    Array.init (Array.length cases * reps) (fun u -> (u / reps, u mod reps))
  in
  let samples =
    Util.Pool.run units ~f:(fun ~idx:_ (ci, ri) ->
        let cfg = config cases.(ci) in
        Workload.Runner.one_iperf ~plans sc cfg
          ~seed:(Workload.Runner.rep_seed cfg ri))
  in
  let goodput ci =
    Util.Stats.summarize (Array.to_list (Array.sub samples (ci * reps) reps))
  in
  Array.to_list
    (Array.mapi
       (fun ci case ->
         match case with
         | None -> { case = "no failure"; goodput = goodput ci; analysis = None }
         | Some fc ->
           {
             case = fc.Topo.Nets.name;
             goodput = goodput ci;
             analysis =
               Some
                 (Kar.Markov.analyze sc.Topo.Nets.graph ~plan
                    ~policy:Kar.Policy.Not_input_port
                    ~failed:[ fc.Topo.Nets.link ] ~src:sc.Topo.Nets.ingress
                    ~dst:sc.Topo.Nets.egress);
           })
       cases)

let to_string ?(profile = Profile.from_env ()) () =
  let points = run ~profile () in
  let nominal =
    match points with
    | { goodput; _ } :: _ -> goodput.Util.Stats.mean
    | [] -> nan
  in
  let header =
    [ "Case"; "Goodput (Mb/s)"; "95% CI"; "vs no-failure"; "P(deliver)"; "E[hops|del]" ]
  in
  let body =
    List.map
      (fun p ->
        [
          p.case;
          Printf.sprintf "%.1f" p.goodput.Util.Stats.mean;
          Printf.sprintf "+/- %.1f" p.goodput.Util.Stats.ci95;
          Printf.sprintf "%+.1f%%"
            ((p.goodput.Util.Stats.mean -. nominal) /. nominal *. 100.0);
          (match p.analysis with
           | None -> "-"
           | Some a -> Printf.sprintf "%.3f" a.Kar.Markov.p_delivered);
          (match p.analysis with
           | None -> "-"
           | Some a -> Printf.sprintf "%.2f" a.Kar.Markov.expected_hops_delivered);
        ])
      points
  in
  Printf.sprintf
    "Fig. 7: RNP backbone goodput, NIP + partial protection (%d reps x %gs)\n"
    profile.Profile.iperf_reps profile.Profile.iperf_duration_s
  ^ Util.Texttab.render ~header body
  ^ paper_note ^ "\n"
