(** Fig. 7 reproduction: TCP goodput on the RNP 28-node backbone with no
    failure and with failures at SW7-SW13, SW13-SW41 and SW41-SW73 (NIP
    deflection, the partial protection of Fig. 6: hops 17->71, 61->67,
    67->71, 71->73).

    Paper findings this experiment targets: SW7-SW13 costs under 5 % (the
    deflected path is fully driven: 7->11->17->71->73, one extra hop, no
    disorder); SW13-SW41 costs ~40 % with the highest variance (only 2 of
    5 deflection alternatives are driven); SW41-SW73 costs ~30 % (both
    alternatives driven but of different lengths). *)

type point = {
  case : string; (** "no failure" or the failed link *)
  goodput : Util.Stats.summary;
  analysis : Kar.Markov.analysis option;
      (** the exact deflection-walk analysis for failure cases *)
}

val run : ?profile:Profile.t -> unit -> point list

val to_string : ?profile:Profile.t -> unit -> string

val paper_note : string
