module Graph = Topo.Graph
module Nets = Topo.Nets

let policy_hops_table () =
  let cases =
    [ ("net15", Nets.net15, Kar.Controller.Full);
      ("rnp28", Nets.rnp28, Kar.Controller.Partial);
      ("fig8", Nets.rnp_fig8, Kar.Controller.Partial) ]
  in
  (* Plans are encoded once per scenario (serial, shared immutably); the
     (scenario, failure, policy) cells then run one pool task each.  The
     Monte-Carlo walk is seeded per cell, so rows are order-independent. *)
  let units =
    List.concat_map
      (fun (name, sc, level) ->
        let plan = Kar.Controller.scenario_plan sc level in
        List.concat_map
          (fun fc ->
            List.map (fun policy -> (name, sc, plan, fc, policy)) Kar.Policy.all)
          sc.Nets.failures)
      cases
    |> Array.of_list
  in
  let rows =
    Util.Pool.run units ~f:(fun ~idx:_ (name, sc, plan, fc, policy) ->
        let a =
          Kar.Markov.analyze sc.Nets.graph ~plan ~policy
            ~failed:[ fc.Nets.link ] ~src:sc.Nets.ingress ~dst:sc.Nets.egress
        in
        let mc =
          Kar.Walk.run sc.Nets.graph ~plan ~policy ~failed:[ fc.Nets.link ]
            ~src:sc.Nets.ingress ~dst:sc.Nets.egress ~trials:5000 ~seed:3 ()
        in
        [
          name;
          fc.Nets.name;
          Kar.Policy.to_string policy;
          Printf.sprintf "%.4f" a.Kar.Markov.p_delivered;
          Printf.sprintf "%.4f" a.Kar.Markov.p_stranded;
          (if Float.is_nan a.Kar.Markov.expected_hops_delivered then "-"
           else Printf.sprintf "%.2f" a.Kar.Markov.expected_hops_delivered);
          Printf.sprintf "%.4f" mc.Kar.Walk.p_delivery;
          (if Float.is_nan mc.Kar.Walk.mean_hops then "-"
           else Printf.sprintf "%.2f" mc.Kar.Walk.mean_hops);
        ])
  in
  "Ablation: exact vs Monte-Carlo deflection-walk metrics per policy\n"
  ^ Util.Texttab.render
      ~header:
        [ "Net"; "Failure"; "Policy"; "P(del)"; "P(strand)"; "E[hops|del]";
          "MC P(del)"; "MC hops" ]
      (Array.to_list rows)

let ids_table () =
  let topologies =
    [
      ("ring16", Topo.Gen.ring 16);
      ("grid4x4", Topo.Gen.grid ~w:4 ~h:4);
      ("gnp24", Topo.Gen.gnp ~n:24 ~p:0.18 ~seed:5);
      ("waxman32", Topo.Gen.waxman ~n:32 ~alpha:0.9 ~beta:0.3 ~seed:9);
    ]
  in
  let strategies =
    [ Kar.Ids.Primes_ascending; Kar.Ids.Degree_descending; Kar.Ids.Prime_powers;
      Kar.Ids.Random_primes 17 ]
  in
  let units =
    List.concat_map
      (fun (name, g) -> List.map (fun strategy -> (name, g, strategy)) strategies)
      topologies
    |> Array.of_list
  in
  let rows =
    Util.Pool.run units ~f:(fun ~idx:_ (name, g, strategy) ->
        let relabeled = Kar.Ids.assign g strategy in
        let issues = Kar.Ids.validate relabeled in
        [
          name;
          Kar.Ids.strategy_to_string strategy;
          Printf.sprintf "%.1f" (Kar.Ids.mean_route_bits relabeled ~trials:200 ~seed:1);
          Printf.sprintf "%d"
            (List.fold_left max 0
               (List.map (Graph.label relabeled) (Graph.core_nodes relabeled)));
          (if issues = [] then "ok" else String.concat "; " issues);
        ])
    |> Array.to_list
  in
  "Ablation: switch-ID assignment strategy vs route-ID bit growth\n"
  ^ Util.Texttab.render
      ~header:[ "Topology"; "Strategy"; "Mean route bits"; "Max ID"; "Valid" ]
      rows

let budget_table () =
  let sc = Nets.net15 in
  let g = sc.Nets.graph in
  let fc = List.nth sc.Nets.failures 2 (* SW13-SW29 *) in
  let base = Kar.Controller.scenario_plan sc Kar.Controller.Unprotected in
  let dest = Graph.node_of_label g 29 in
  let members =
    Kar.Protection.off_path_members g
      ~path:(List.map (Graph.node_of_label g) sc.Nets.primary)
      ~radius:max_int
  in
  let rows =
    Util.Pool.run [| 15; 20; 28; 36; 43; 52; 64; 96; 128 |]
      ~f:(fun ~idx:_ bits ->
        let plan, chosen =
          Kar.Protection.select_within_budget g ~plan:base ~dest ~members ~bits
        in
        let a =
          Kar.Markov.analyze g ~plan ~policy:Kar.Policy.Not_input_port
            ~failed:[ fc.Nets.link ] ~src:sc.Nets.ingress ~dst:sc.Nets.egress
        in
        [
          string_of_int bits;
          string_of_int plan.Kar.Route.bit_length;
          string_of_int (List.length chosen);
          Printf.sprintf "%.4f" a.Kar.Markov.p_delivered;
          (if Float.is_nan a.Kar.Markov.expected_hops_delivered then "-"
           else Printf.sprintf "%.2f" a.Kar.Markov.expected_hops_delivered);
        ])
    |> Array.to_list
  in
  "Ablation: protection bit budget vs exact delivery (net15, SW13-SW29 down, NIP)\n"
  ^ Util.Texttab.render
      ~header:[ "Budget (bits)"; "Used (bits)"; "Hops added"; "P(del)"; "E[hops|del]" ]
      rows

(* Distance-ordered greedy vs analysis-guided protection placement, at the
   same bit budgets, on the net15 SW13-SW29 failure (the case where naive
   placement is known to dip below the unprotected baseline). *)
let planner_table () =
  let sc = Nets.net15 in
  let g = sc.Nets.graph in
  let failures = List.map (fun fc -> fc.Nets.link) sc.Nets.failures in
  let base = Kar.Controller.scenario_plan sc Kar.Controller.Unprotected in
  let dest = Graph.node_of_label g 29 in
  let members =
    Kar.Protection.off_path_members g
      ~path:(List.map (Graph.node_of_label g) sc.Nets.primary)
      ~radius:max_int
  in
  let evaluate plan =
    Kar.Optimizer.score g ~plan ~policy:Kar.Policy.Not_input_port ~failures
      ~src:sc.Nets.ingress ~dst:sc.Nets.egress
      ~objective:Kar.Optimizer.Worst_delivery
  in
  let rows =
    Util.Pool.run [| 20; 28; 43; 64 |] ~f:(fun ~idx:_ bits ->
        let naive_plan, naive_hops =
          Kar.Protection.select_within_budget g ~plan:base ~dest ~members ~bits
        in
        let optimized =
          Kar.Optimizer.optimize g ~plan:base ~policy:Kar.Policy.Not_input_port
            ~failures ~src:sc.Nets.ingress ~dst:sc.Nets.egress ~candidates:[]
            ~bits ~objective:Kar.Optimizer.Worst_delivery
        in
        [
          string_of_int bits;
          Printf.sprintf "%.4f (%d hops, %d bits)" (evaluate naive_plan)
            (List.length naive_hops) naive_plan.Kar.Route.bit_length;
          Printf.sprintf "%.4f (%d hops, %d bits)" optimized.Kar.Optimizer.score
            (List.length optimized.Kar.Optimizer.steps)
            optimized.Kar.Optimizer.plan.Kar.Route.bit_length;
        ])
    |> Array.to_list
  in
  "Ablation: protection placement — distance-ordered greedy vs "
  ^ "exact-analysis guided (net15, worst-case delivery over all three "
  ^ "failures, NIP)\n"
  ^ Util.Texttab.render
      ~header:[ "Bit budget"; "Distance-ordered"; "Analysis-guided" ]
      rows
  ^ "The analysis-guided planner never includes a hop that hurts, so it "
  ^ "dominates at every budget; the distance-ordered planner can dip "
  ^ "below the unprotected baseline (the Fig. 8 funnel effect).\n"

(* Reno vs CUBIC under deflection-induced reordering: does the congestion
   controller change who wins? *)
let cc_table ?(profile = Profile.from_env ()) () =
  let sc = Nets.net15 in
  let fc = List.nth sc.Nets.failures 1 in
  let run policy cc =
    let r =
      Workload.Runner.timeline sc
        {
          Workload.Runner.default_timeline with
          policy = Workload.Runner.Kar policy;
          level = Kar.Controller.Full;
          failure = Some fc;
          pre_s = profile.Profile.iperf_duration_s /. 2.0;
          fail_s = profile.Profile.iperf_duration_s;
          post_s = profile.Profile.iperf_duration_s /. 2.0;
          tcp = { Tcp.Flow.default_config with Tcp.Flow.cc };
        }
    in
    r.Workload.Runner.mean_fail
  in
  let units =
    List.concat_map
      (fun policy ->
        List.map
          (fun (cc_name, cc) -> (policy, cc_name, cc))
          [ ("Reno", Tcp.Flow.Reno); ("CUBIC", Tcp.Flow.Cubic) ])
      [ Kar.Policy.Not_input_port; Kar.Policy.Any_valid_port; Kar.Policy.Hot_potato ]
    |> Array.of_list
  in
  let rows =
    Util.Pool.run units ~f:(fun ~idx:_ (policy, cc_name, cc) ->
        [
          Kar.Policy.to_string policy;
          cc_name;
          Printf.sprintf "%.1f" (run policy cc);
        ])
    |> Array.to_list
  in
  "Ablation: congestion control vs deflection policy (net15, SW7-SW13 "
  ^ "failure; goodput during the failure window, Mb/s)\n"
  ^ Util.Texttab.render ~header:[ "Policy"; "CC"; "During failure" ] rows
  ^ "The policy ordering (NIP > AVP > HP) is robust to the congestion "
  ^ "controller; under heavy reordering CUBIC's slower post-reduction ramp "
  ^ "makes it marginally worse than Reno here.\n"

let delivery_table ?(profile = Profile.from_env ()) () =
  let sc = Nets.net15 in
  let fc = List.nth sc.Nets.failures 1 in
  let rows =
    Util.Pool.run (Array.of_list Kar.Policy.all) ~f:(fun ~idx:_ policy ->
        let r =
          Workload.Cbr.run sc ~policy ~level:Kar.Controller.Full ~rate_pps:12000
            ~duration_s:profile.Profile.cbr_duration_s ~failure:fc ~seed:23 ()
        in
        let m = r.Workload.Cbr.reordering in
        [
          Kar.Policy.to_string policy;
          Printf.sprintf "%d/%d" r.Workload.Cbr.received r.Workload.Cbr.sent;
          Printf.sprintf "%.4f" r.Workload.Cbr.delivery_ratio;
          (if Float.is_nan r.Workload.Cbr.mean_hops then "-"
           else Printf.sprintf "%.2f" r.Workload.Cbr.mean_hops);
          (if Float.is_nan r.Workload.Cbr.mean_latency_s then "-"
           else Printf.sprintf "%.2f ms" (1e3 *. r.Workload.Cbr.mean_latency_s));
          string_of_int r.Workload.Cbr.reencoded;
          Printf.sprintf "%.2f%%" (100.0 *. m.Netsim.Reorder.reordered_fraction);
          string_of_int m.Netsim.Reorder.buffer_packets;
        ])
    |> Array.to_list
  in
  "Ablation: UDP delivery and network reordering during SW7-SW13 failure \
   (net15, full protection)\n"
  ^ Util.Texttab.render
      ~header:
        [ "Policy"; "Received/sent"; "Delivery"; "Mean hops"; "Mean latency";
          "Re-encoded"; "Reordered"; "Buffer (pkts)" ]
      rows
