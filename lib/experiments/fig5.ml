type point = {
  failure : string;
  level : Kar.Controller.level;
  policy : Kar.Policy.t;
  goodput : Util.Stats.summary;
}

let paper_note =
  "Paper: full protection achieves the highest goodput regardless of failure \
   location or technique (~30% disorder penalty); partial matches full for \
   SW7-SW13 and SW13-SW29 but loses ~1/3 of packets' goodput at SW10-SW7 \
   (only one of SW10's three alternatives is protected)."

(* Every (failure, protection, technique) cell is an independent sweep
   unit: enumerate them up front, fan out on the domain pool, and keep
   the original enumeration order in the result.  Each unit's reps are
   seeded by rep index inside [iperf_reps], so the rendered figure is
   byte-identical at any [-j]. *)
let run ?(profile = Profile.from_env ()) () =
  let sc = Topo.Nets.net15 in
  let cases =
    List.concat_map
      (fun fc ->
        List.concat_map
          (fun level ->
            List.map
              (fun policy -> (fc, level, policy))
              [ Kar.Policy.Any_valid_port; Kar.Policy.Not_input_port ])
          Kar.Controller.all_levels)
      sc.Topo.Nets.failures
    |> Array.of_list
  in
  let points =
    Util.Pool.run cases ~f:(fun ~idx:_ (fc, level, policy) ->
        let config =
          {
            Workload.Runner.default_iperf with
            policy = Workload.Runner.Kar policy;
            level;
            failure = Some fc;
            reps = profile.Profile.iperf_reps;
            rep_duration_s = profile.Profile.iperf_duration_s;
          }
        in
        let goodput = Workload.Runner.iperf_reps sc config in
        { failure = fc.Topo.Nets.name; level; policy; goodput })
  in
  Array.to_list points

let to_string ?(profile = Profile.from_env ()) () =
  let points = run ~profile () in
  let header = [ "Failure"; "Protection"; "Technique"; "Goodput (Mb/s)"; "95% CI" ] in
  let body =
    List.map
      (fun p ->
        [
          p.failure;
          Kar.Controller.level_to_string p.level;
          Kar.Policy.to_string p.policy;
          Printf.sprintf "%.1f" p.goodput.Util.Stats.mean;
          Printf.sprintf "+/- %.1f" p.goodput.Util.Stats.ci95;
        ])
      points
  in
  Printf.sprintf
    "Fig. 5: goodput vs failure location x protection x technique (net15, %d \
     reps x %gs)\n"
    profile.Profile.iperf_reps profile.Profile.iperf_duration_s
  ^ Util.Texttab.render ~header body
  ^ paper_note ^ "\n"
