type point = {
  failure : string;
  level : Kar.Controller.level;
  policy : Kar.Policy.t;
  goodput : Util.Stats.summary;
}

let paper_note =
  "Paper: full protection achieves the highest goodput regardless of failure \
   location or technique (~30% disorder penalty); partial matches full for \
   SW7-SW13 and SW13-SW29 but loses ~1/3 of packets' goodput at SW10-SW7 \
   (only one of SW10's three alternatives is protected)."

let run ?(profile = Profile.from_env ()) () =
  let sc = Topo.Nets.net15 in
  let points = ref [] in
  List.iter
    (fun fc ->
      List.iter
        (fun level ->
          List.iter
            (fun policy ->
              let config =
                {
                  Workload.Runner.default_iperf with
                  policy = Workload.Runner.Kar policy;
                  level;
                  failure = Some fc;
                  reps = profile.Profile.iperf_reps;
                  rep_duration_s = profile.Profile.iperf_duration_s;
                }
              in
              let goodput = Workload.Runner.iperf_reps sc config in
              points :=
                { failure = fc.Topo.Nets.name; level; policy; goodput }
                :: !points)
            [ Kar.Policy.Any_valid_port; Kar.Policy.Not_input_port ])
        Kar.Controller.all_levels)
    sc.Topo.Nets.failures;
  List.rev !points

let to_string ?(profile = Profile.from_env ()) () =
  let points = run ~profile () in
  let header = [ "Failure"; "Protection"; "Technique"; "Goodput (Mb/s)"; "95% CI" ] in
  let body =
    List.map
      (fun p ->
        [
          p.failure;
          Kar.Controller.level_to_string p.level;
          Kar.Policy.to_string p.policy;
          Printf.sprintf "%.1f" p.goodput.Util.Stats.mean;
          Printf.sprintf "+/- %.1f" p.goodput.Util.Stats.ci95;
        ])
      points
  in
  Printf.sprintf
    "Fig. 5: goodput vs failure location x protection x technique (net15, %d \
     reps x %gs)\n"
    profile.Profile.iperf_reps profile.Profile.iperf_duration_s
  ^ Util.Texttab.render ~header body
  ^ paper_note ^ "\n"
