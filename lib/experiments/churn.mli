(** Beyond the paper: KAR vs the three baselines under sustained
    instability — the same deterministic {!Kar_scenario} event stream
    driven through both planes.

    Data plane: a CBR flow rides each technique (KAR full protection
    under NIP, stateful fast failover, controller reroute, 1+1 ingress
    failover) while the scenario fails and repairs links; we report
    delivery ratio, deflections and re-encodes.  Control plane: the
    identical stream replays through {!Kar_service.Server} as its
    failure schedule; we report p99, stale-serve rate, plans computed
    and epochs — replan-storm pressure under churn rather than a
    one-shot event. *)

type schedule = [ `Flap | `Regional | `Adversarial ]

val schedule_name : schedule -> string

(** The canonical [--scenario] spec string per schedule (fixed seeds). *)
val spec_for : schedule -> string

(** The canonical event stream for a paper topology: {!spec_for} parsed
    and generated with the scenario's ingress/egress as the tracked
    adversarial pair. *)
val events_for :
  Topo.Nets.scenario -> horizon:float -> schedule -> Kar_scenario.Event.t list

type technique = Kar | Fast_failover | Reroute | One_plus_one

val technique_name : technique -> string
val all_techniques : technique list

type data_result = {
  sent : int;
  delivered : int;
  delivery_ratio : float;
  deflections : int;
  reencodes : int;
  dropped : int;
}

(** [run_data sc ~events ~technique ~rate_pps ~duration_s ~seed ()] — one
    CBR run under the event stream.  [regions > 1] runs the sharded
    simulator (identical results, exercised by the determinism tests);
    [recorder] attaches a flight recorder (flushed before return). *)
val run_data :
  Topo.Nets.scenario ->
  events:Kar_scenario.Event.t list ->
  technique:technique ->
  ?regions:int ->
  ?recorder:Trace.Recorder.t ->
  rate_pps:int ->
  duration_s:float ->
  seed:int ->
  unit ->
  data_result

(** [run_control g ~events ~requests ~rate ~seed] serves a workload with
    the stream as the failure schedule. *)
val run_control :
  Topo.Graph.t ->
  events:Kar_scenario.Event.t list ->
  requests:int ->
  rate:float ->
  seed:int ->
  Kar_service.Server.report

(** The golden-fixture stream: net15 under the canonical flap spec,
    horizon 3 s, rendered as JSONL lines. *)
val fixture_lines : unit -> string

val to_string : ?profile:Profile.t -> ?metrics:bool -> unit -> string
