(** Beyond the paper: resilience under {e simultaneous} multiple failures.

    Table 2 claims KAR supports multiple link failures; the paper never
    measures it.  This experiment samples random sets of [k] simultaneous
    core-link failures on the RNP backbone (keeping ingress and egress
    connected) and reports, per [k]:

    - KAR's exact delivery probability (NIP, the Fig. 6 partial
      protection), counting edge re-encoding as the design intends;
    - the fraction of failure sets the single-backup fast-failover
      baseline survives at all.

    Everything is computed with the exact chain analysis — no sampling
    noise inside a scenario, only over the failure sets. *)

type row = {
  k : int; (** simultaneous failures *)
  samples : int; (** failure sets evaluated (connected ones) *)
  kar_mean_delivery : float; (** mean of exact P(deliver or re-encode) *)
  kar_min_delivery : float; (** worst sampled set *)
  kar_mean_direct : float;
      (** mean probability of delivery without any edge re-encode *)
  kar_guaranteed : int; (** sets with delivery probability 1.0 *)
  ff_survives : int; (** sets the stateful baseline still delivers *)
}

val run : ?samples:int -> ?seed:int -> unit -> row list

val to_string : ?samples:int -> ?seed:int -> unit -> string
