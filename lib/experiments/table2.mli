(** Table 2 reproduction: the design-space comparison of resilient-routing
    schemes (multiple-failure support / source routing / core state), with
    the qualitative matrix from the paper backed by measured evidence from
    the implemented systems:

    - KAR's statelessness is demonstrated by the zero-entry core tables;
    - the fast-failover baseline's statefulness by its per-destination
      table sizes;
    - multi-failure support by delivery analysis under two simultaneous
      link failures (KAR deflects around both; single-backup fast failover
      black-holes when primary and backup both die). *)

type scheme_row = {
  scheme : string;
  multiple_failures : string;
  source_routing : string;
  core_state : string;
}

(** The qualitative matrix, one row per scheme the paper compares. *)
val matrix : scheme_row list

type evidence = {
  kar_table_entries : int; (** flow entries per KAR core switch: 0 *)
  ff_table_entries : int; (** per-switch entries of the stateful baseline *)
  pairs_considered : int;
      (** double link failures on net15 that keep ingress and egress
          connected *)
  kar_survives : int;
      (** pairs where KAR (NIP, full protection) loses no probability mass
          to drops or loops (stranded packets are edge re-encoded) *)
  ff_survives : int; (** pairs the single-backup baseline still delivers *)
}

(** [measure ()] sweeps every double core-link failure, one pool task per
    pair, and folds the counts in enumeration order (so the result is
    independent of parallelism).  [pool] overrides the shared pool — the
    bench harness uses it to time the sweep at j ∈ {1,2,4,8}. *)
val measure : ?pool:Util.Pool.t -> unit -> evidence

val to_string : unit -> string
