(** Fig. 8 reproduction: the redundant-path worst case on the RNP graph.

    Route 7 -> 13 -> 41 -> 73 -> 107 -> 113 with protection hops 71->17 and
    17->41; failing SW73-SW107.  The KAR constraint (one residue per
    switch) prevents using the redundant SW73-SW109-SW113 path as a second
    default, so deflected packets loop 73 -> 71 -> 17 -> 41 -> 73 until
    SW109 is drawn (probability 1/2 per visit).  The paper measures
    throughput falling to 54.8 % of nominal; the exact chain analysis here
    shows the geometric hop inflation that causes it. *)

type result = {
  nominal : Util.Stats.summary; (** no failure *)
  failed : Util.Stats.summary; (** SW73-SW107 down *)
  ratio : float; (** failed/nominal means *)
  analysis : Kar.Markov.analysis; (** exact walk analysis under failure *)
  loop_hops_histogram : int array; (** Monte-Carlo delivered-hops histogram *)
}

val run : ?profile:Profile.t -> unit -> result

val to_string : ?profile:Profile.t -> unit -> string

val paper_note : string
