(** The serving-control-plane experiment ([svc]): the online route-plan
    server ({!Kar_service}) under open-loop load.

    Three studies, all on virtual time (byte-identical at any pool width):

    - {b steady state}: throughput and latency percentiles of a Zipf
      workload against the default cache/batcher configuration;
    - {b skew sweep}: cache hit ratio and tail latency as a function of the
      Zipf exponent — the knob that decides whether a bounded cache pays;
    - {b replan storm}: a link failure mid-run bumps the topology epoch,
      invalidating the cache; the timeline shows the hit-ratio collapse,
      the batched replan storm, and the recovery as the cache refills. *)

(** [testbed ()] is the serving testbed: a KAR-labelled Waxman core with an
    edge host attached to every switch (so the (src, dst) universe is large
    enough for cache pressure), deterministic in its defaults. *)
val testbed : ?n_core:int -> ?seed:int -> unit -> Topo.Graph.t

(** The workload used by the steady-state study and by the bench gauges;
    exposed so the bench harness times serving without timing generation. *)
val bench_workload :
  requests:int -> Topo.Graph.t * Kar_service.Workload.request array

(** [bench_serve ?pool g reqs] serves the workload on a fresh server
    (private [pool] if given) and returns the report. *)
val bench_serve :
  ?pool:Util.Pool.t ->
  Topo.Graph.t ->
  Kar_service.Workload.request array ->
  Kar_service.Server.report

(** The failure-at-t timeline data, exposed for the invariant test: the
    report plus the bucketed hit ratios (bucket width, per-bucket ratio)
    and the failure/repair times used. *)
type storm = {
  report : Kar_service.Server.report;
  bucket_s : float;
  hit_ratio_per_bucket : float array;
  fail_at : float;
  repair_at : float;
  metrics_summary : string;
      (** end-of-run {!Kar_obs.Export.summary} of the server registry *)
  span_summary : string; (** {!Kar_obs.Span.summary} of the control plane *)
}

(** The link the storm study fails: a core-core link on the most popular
    pair's primary path (fallback: the first core-core link).  Exposed for
    the [kar_service] CLI's default on generated topologies. *)
val storm_link : Topo.Graph.t -> Topo.Graph.link_id

val storm : ?profile:Profile.t -> unit -> storm

(** The canonical seeded 1k-request event stream (JSONL, one event per
    line) behind the committed [test/fixtures/service_1k.jsonl]: a 16-core
    testbed with a failure at half-horizon and a repair at three quarters.
    Byte-identical at any pool width. *)
val canonical_trace : unit -> string

(** The canonical metrics time series (one {!Kar_obs.Export.snapshot_line}
    per horizon/16) behind the committed
    [test/fixtures/service_metrics_1k.jsonl]: the same 16-core testbed and
    seed with one failure at half-horizon — the replan storm as data.
    Byte-identical at any pool width. *)
val canonical_metrics : unit -> string

(** [metrics_to_string ()] renders the storm run's end-of-run registry and
    span summaries (the [--metrics] view of the [svc] experiment). *)
val metrics_to_string : ?profile:Profile.t -> unit -> string

(** [to_string ?metrics ()] — [metrics] (default false) appends the
    registry-snapshot section. *)
val to_string : ?profile:Profile.t -> ?metrics:bool -> unit -> string
