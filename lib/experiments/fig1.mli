(** Section 2 worked example on the six-node network of Fig. 1: the
    primary route ID 44 over switches {4, 7, 11} with ports {0, 2, 0}, the
    protected route ID 660 after folding in SW5 -> SW11, and the hop-by-hop
    forwarding trace showing driven deflection on a SW7-SW11 failure. *)

type result = {
  primary_route_id : Bignum.Z.t; (** expected 44 *)
  primary_modulus : Bignum.Z.t; (** expected 308 *)
  protected_route_id : Bignum.Z.t; (** expected 660 *)
  protected_modulus : Bignum.Z.t; (** expected 1540 *)
  ports_of_660 : int list; (** residues at [4;7;11;5]: expected [0;2;0;0] *)
  healthy_hops : int; (** exact switch hops without failure: 3 *)
  deflected_delivery : float; (** exact delivery prob. with SW7-SW11 down *)
  deflected_hops : float; (** exact expected hops with the failure *)
}

val run : unit -> result

val to_string : unit -> string
