type row = {
  mechanism : string;
  bit_length : int;
  switches_in_route_id : int;
  route_id : Bignum.Z.t;
}

let paper_values =
  [ ("Unprotected", 15, 4); ("Partial protection", 28, 7); ("Full protection", 43, 10) ]

let mechanism_of_level = function
  | Kar.Controller.Unprotected -> "Unprotected"
  | Kar.Controller.Partial -> "Partial protection"
  | Kar.Controller.Full -> "Full protection"

let rows () =
  let sc = Topo.Nets.net15 in
  List.map
    (fun level ->
      let plan = Kar.Controller.scenario_plan sc level in
      {
        mechanism = mechanism_of_level level;
        bit_length = plan.Kar.Route.bit_length;
        switches_in_route_id = List.length plan.Kar.Route.residues;
        route_id = plan.Kar.Route.route_id;
      })
    Kar.Controller.all_levels

let to_string () =
  let header = [ "Protection mechanism"; "Bit length"; "Switches in route ID"; "(paper)" ] in
  let body =
    List.map2
      (fun r (_, pbits, pn) ->
        [
          r.mechanism;
          string_of_int r.bit_length;
          string_of_int r.switches_in_route_id;
          Printf.sprintf "%d bits / %d sw" pbits pn;
        ])
      (rows ()) paper_values
  in
  "Table 1: maximum bit length required by each protection mechanism (15-node network)\n"
  ^ Util.Texttab.render ~header body
