type link_ref = Id of int | Between of int * int

type t =
  | Flap of { links : int; period : float; duty : float; seed : int }
  | Regional of { groups : int; mtbf : float; mttr : float; seed : int }
  | Adversarial of {
      k : int;
      period : float;
      hold : float;
      level : Kar.Controller.level;
    }
  | Events of (float * Event.action * link_ref) list

let ( let* ) = Result.bind

let split_fields s =
  if String.trim s = "" then [] else String.split_on_char ',' s

let parse_kv field =
  match String.index_opt field '=' with
  | Some i ->
    Ok
      ( String.sub field 0 i,
        String.sub field (i + 1) (String.length field - i - 1) )
  | None -> Error (Printf.sprintf "field %S is not key=value" field)

let parse_int key v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%s: bad integer %S" key v)

let parse_float key v =
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s: bad number %S" key v)

let parse_level v =
  match v with
  | "unprotected" -> Ok Kar.Controller.Unprotected
  | "partial" -> Ok Kar.Controller.Partial
  | "full" -> Ok Kar.Controller.Full
  | _ -> Error (Printf.sprintf "level: unknown %S" v)

(* fold key=value fields over a record-updating step function *)
let fold_kv fields init step =
  List.fold_left
    (fun acc field ->
      let* acc = acc in
      let* k, v = parse_kv field in
      step acc k v)
    (Ok init) fields

let check cond msg v = if cond then Ok v else Error msg

let parse_flap body =
  let* f =
    fold_kv (split_fields body)
      (4, 0.5, 0.4, 7)
      (fun (links, period, duty, seed) k v ->
        match k with
        | "links" -> let* n = parse_int k v in Ok (n, period, duty, seed)
        | "period" -> let* x = parse_float k v in Ok (links, x, duty, seed)
        | "duty" -> let* x = parse_float k v in Ok (links, period, x, seed)
        | "seed" -> let* n = parse_int k v in Ok (links, period, duty, n)
        | _ -> Error (Printf.sprintf "flap: unknown key %S" k))
  in
  let links, period, duty, seed = f in
  let* () = check (links > 0) "flap: links must be positive" () in
  let* () = check (period > 0.0) "flap: period must be positive" () in
  let* () = check (duty > 0.0 && duty < 1.0) "flap: duty must be in (0,1)" () in
  Ok (Flap { links; period; duty; seed })

let parse_regional body =
  let* f =
    fold_kv (split_fields body)
      (3, 0.6, 0.25, 7)
      (fun (groups, mtbf, mttr, seed) k v ->
        match k with
        | "groups" -> let* n = parse_int k v in Ok (n, mtbf, mttr, seed)
        | "mtbf" -> let* x = parse_float k v in Ok (groups, x, mttr, seed)
        | "mttr" -> let* x = parse_float k v in Ok (groups, mtbf, x, seed)
        | "seed" -> let* n = parse_int k v in Ok (groups, mtbf, mttr, n)
        | _ -> Error (Printf.sprintf "regional: unknown key %S" k))
  in
  let groups, mtbf, mttr, seed = f in
  let* () = check (groups > 0) "regional: groups must be positive" () in
  let* () = check (mtbf > 0.0) "regional: mtbf must be positive" () in
  let* () = check (mttr > 0.0) "regional: mttr must be positive" () in
  Ok (Regional { groups; mtbf; mttr; seed })

let parse_adversarial body =
  let* f =
    fold_kv (split_fields body)
      (2, 0.5, 0.45, Kar.Controller.Full)
      (fun (k_, period, hold, level) key v ->
        match key with
        | "k" -> let* n = parse_int key v in Ok (n, period, hold, level)
        | "period" -> let* x = parse_float key v in Ok (k_, x, hold, level)
        | "hold" -> let* x = parse_float key v in Ok (k_, period, x, level)
        | "level" -> let* l = parse_level v in Ok (k_, period, hold, l)
        | _ -> Error (Printf.sprintf "adversarial: unknown key %S" key))
  in
  let k, period, hold, level = f in
  let* () = check (k > 0) "adversarial: k must be positive" () in
  let* () = check (period > 0.0) "adversarial: period must be positive" () in
  let* () = check (hold > 0.0) "adversarial: hold must be positive" () in
  Ok (Adversarial { k; period; hold; level })

(* one explicit event: fail@0.5=7-13 | repair@0.8=7-13 | fail@1.2=#12 *)
let parse_event field =
  let* action, rest =
    match String.index_opt field '@' with
    | None -> Error (Printf.sprintf "events: %S is not action@time=link" field)
    | Some i ->
      let action = String.sub field 0 i
      and rest = String.sub field (i + 1) (String.length field - i - 1) in
      (match action with
       | "fail" -> Ok (Event.Fail, rest)
       | "repair" -> Ok (Event.Repair, rest)
       | _ -> Error (Printf.sprintf "events: unknown action %S" action))
  in
  let* at, link = parse_kv rest in
  let* at = parse_float "time" at in
  let* () = check (at >= 0.0) "events: time must be non-negative" () in
  let* link =
    if String.length link > 0 && link.[0] = '#' then
      let* id =
        parse_int "link" (String.sub link 1 (String.length link - 1))
      in
      Ok (Id id)
    else
      match String.split_on_char '-' link with
      | [ a; b ] ->
        let* a = parse_int "link endpoint" a in
        let* b = parse_int "link endpoint" b in
        Ok (Between (a, b))
      | _ -> Error (Printf.sprintf "events: bad link %S (A-B or #ID)" link)
  in
  Ok (at, action, link)

let parse_events body =
  let* evs =
    List.fold_left
      (fun acc field ->
        let* acc = acc in
        let* e = parse_event field in
        Ok (e :: acc))
      (Ok []) (split_fields body)
  in
  match evs with
  | [] -> Error "events: empty event list"
  | evs -> Ok (Events (List.rev evs))

let parse s =
  let model, body =
    match String.index_opt s ':' with
    | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> (s, "")
  in
  match model with
  | "flap" -> parse_flap body
  | "regional" -> parse_regional body
  | "adversarial" -> parse_adversarial body
  | "events" -> parse_events body
  | _ ->
    Error
      (Printf.sprintf
         "unknown scenario model %S (flap|regional|adversarial|events)" model)

let to_string = function
  | Flap { links; period; duty; seed } ->
    Printf.sprintf "flap:links=%d,period=%g,duty=%g,seed=%d" links period duty
      seed
  | Regional { groups; mtbf; mttr; seed } ->
    Printf.sprintf "regional:groups=%d,mtbf=%g,mttr=%g,seed=%d" groups mtbf
      mttr seed
  | Adversarial { k; period; hold; level } ->
    Printf.sprintf "adversarial:k=%d,period=%g,hold=%g,level=%s" k period hold
      (Kar.Controller.level_to_string level)
  | Events evs ->
    "events:"
    ^ String.concat ","
        (List.map
           (fun (at, action, link) ->
             Printf.sprintf "%s@%g=%s"
               (Event.action_to_string action)
               at
               (match link with
                | Id id -> Printf.sprintf "#%d" id
                | Between (a, b) -> Printf.sprintf "%d-%d" a b))
           evs)
