module Net = Netsim.Net
module Registry = Kar_obs.Registry
module Span = Kar_obs.Span

let arm net ?spans events =
  let reg = Net.registry net in
  let events_c = Registry.counter reg "scenario/events" in
  let flap_c = Registry.counter reg "scenario/flaps" in
  let repair_c = Registry.counter reg "scenario/repairs" in
  let down_g = Registry.gauge reg "scenario/links-down" in
  let max_down_g = Registry.gauge reg "scenario/max-links-down" in
  let down = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      Net.schedule_admin net ~at:e.Event.at (fun () ->
          Registry.incr events_c;
          (match e.Event.action with
           | Event.Fail ->
             if Net.link_up net e.Event.link then begin
               Net.fail_link net e.Event.link;
               Registry.incr flap_c;
               incr down;
               Registry.set down_g !down;
               Registry.set_max max_down_g !down
             end
           | Event.Repair ->
             if not (Net.link_up net e.Event.link) then begin
               Net.repair_link net e.Event.link;
               Registry.incr repair_c;
               down := max 0 (!down - 1);
               Registry.set down_g !down
             end);
          Option.iter
            (fun s ->
              Span.record s Span.Scenario_event ~t0:e.Event.at ~t1:e.Event.at
                ~detail:e.Event.link)
            spans))
    (Event.normalize events)
