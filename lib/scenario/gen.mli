(** Scenario generation: compile a {!Spec.t} against a topology into a
    canonical {!Event.t} stream.

    Generation is pure and deterministic — every random draw comes from
    {!Util.Prng} streams split from the spec's seed, and the adversarial
    model is a deterministic greedy computation — so the same
    [(graph, spec, horizon, pairs)] always yields byte-identical streams
    at any [-j], before the stream ever reaches an engine.

    Each model first produces per-link {e down-windows}, then the window
    sets are interval-unioned per link, so the emitted stream is always
    well-formed: per link, strictly alternating fail/repair, no
    same-instant churn.

    The adversarial model tracks [pairs] (default: every ordered
    edge-node pair by ascending labels, capped at 8): each decision
    round it replans every tracked pair on the surviving topology at the
    spec's protection level, counts how many plan residues (primary path
    and protection tree alike) cross each link, and greedily fails the
    highest-scoring links — ties broken by link id — subject to two
    invariants: at most [k] links down at once, and every tracked pair
    stays connected (so delivery loss measures transient damage, not
    partition). *)

module Graph = Topo.Graph

(** [generate g ~horizon ?pairs spec] — events strictly before
    [horizon]; a window still open at the horizon emits no repair.
    [pairs] only affects the adversarial model. *)
val generate :
  Graph.t ->
  horizon:float ->
  ?pairs:(Graph.node * Graph.node) list ->
  Spec.t ->
  (Event.t list, string) result

(** The links a plan depends on: one link per residue — the port each
    switch (on the primary path or in a protection tree) forwards or
    deflects toward.  Exposed as the adversarial dependency oracle, for
    tests. *)
val plan_links : Graph.t -> Kar.Route.plan -> Graph.link_id list
