(** Timed topology events — the unit every scenario model compiles down
    to.

    A scenario is an ordered stream of [{at; action; link}] records.  The
    stream is the {e only} interface between generation and consumption:
    the data plane applies it through {!Driver.arm} (admin actions, so it
    lands at sharded-region barriers), and the control plane converts it
    with {!to_failures} into the [Kar_service.Server.run ~failures]
    schedule.  Both planes therefore replay the identical stream. *)

module Graph = Topo.Graph

type action = Fail | Repair

type t = { at : float; action : action; link : Graph.link_id }

(** Canonical stream order: time, then repairs before fails at the same
    instant (a link cycling within one instant nets to down), then link
    id. *)
val compare : t -> t -> int

(** Sort into canonical order and drop exact duplicates. *)
val normalize : t list -> t list

val action_to_string : action -> string

(** One-line JSONL rendering with both the link id and its endpoint
    switch labels — the golden-fixture and [--trace] format. *)
val to_jsonl : Graph.t -> t -> string

(** The whole stream as JSONL, one event per line (trailing newline). *)
val to_jsonl_lines : Graph.t -> t list -> string

(** Normalized stream as a control-plane failure schedule — structurally
    the [failures] argument of [Kar_service.Server.run], without this
    library depending on [kar_service]. *)
val to_failures :
  t list -> (float * [ `Fail of Graph.link_id | `Repair of Graph.link_id ]) list

(** [links_down events ~at] — links down just after every event [<= at]
    has applied, ascending.  Pure replay, used by tests and the
    adversarial generator's bookkeeping. *)
val links_down : t list -> at:float -> Graph.link_id list
