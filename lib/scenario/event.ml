module Graph = Topo.Graph

type action = Fail | Repair

type t = { at : float; action : action; link : Graph.link_id }

let rank = function Repair -> 0 | Fail -> 1

let compare a b =
  match Float.compare a.at b.at with
  | 0 ->
    (match Int.compare (rank a.action) (rank b.action) with
     | 0 -> Int.compare a.link b.link
     | c -> c)
  | c -> c

let normalize evs = List.sort_uniq compare evs

let action_to_string = function Fail -> "fail" | Repair -> "repair"

let to_jsonl g e =
  let l = Graph.link g e.link in
  Printf.sprintf {|{"t":%.9g,"event":"%s","link":%d,"a":%d,"b":%d}|} e.at
    (action_to_string e.action)
    e.link
    (Graph.label g l.Graph.ep0.Graph.node)
    (Graph.label g l.Graph.ep1.Graph.node)

let to_jsonl_lines g evs =
  String.concat "" (List.map (fun e -> to_jsonl g e ^ "\n") evs)

let to_failures evs =
  List.map
    (fun e ->
      ( e.at,
        match e.action with Fail -> `Fail e.link | Repair -> `Repair e.link ))
    (normalize evs)

let links_down evs ~at =
  let down = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if e.at <= at then
        match e.action with
        | Fail -> Hashtbl.replace down e.link ()
        | Repair -> Hashtbl.remove down e.link)
    (normalize evs);
  List.sort Int.compare (Hashtbl.fold (fun l () acc -> l :: acc) down [])
