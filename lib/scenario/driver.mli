(** Feed an event stream into the packet simulator.

    Events are applied through {!Netsim.Net.schedule_admin}, so on a
    sharded net they land at epoch barriers in the global single-threaded
    context — scenario runs stay byte-identical at any [--regions] and
    any [-j], and on solo nets they degrade to ordinary engine events.

    Arming registers [scenario/*] instrumentation on the net's registry
    (so call it once per net): the [scenario/events] counter (events
    delivered), [scenario/flaps] (effective down transitions),
    [scenario/repairs] (effective up transitions), and the
    [scenario/links-down] / [scenario/max-links-down] gauges.  Events
    that would not change liveness (failing a dead link, repairing a
    live one) are counted as delivered but applied as no-ops, matching
    the generator's well-formed-stream guarantee.

    With [?spans], each applied event records one
    {!Kar_obs.Span.Scenario_event} span ([detail] = link id). *)

val arm : Netsim.Net.t -> ?spans:Kar_obs.Span.t -> Event.t list -> unit
