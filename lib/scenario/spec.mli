(** Scenario specifications: the parsed form of the [--scenario] CLI
    string, one constructor per failure model.

    Grammar (all key=value fields optional, shown with defaults):

    - [flap:links=4,period=0.5,duty=0.4,seed=7] — [links] independently
      flapping core links; each cycles down for [duty * period] seconds
      out of every [period], with a per-link random phase.
    - [regional:groups=3,mtbf=0.6,mttr=0.25,seed=7] — the graph is cut
      into [groups] shared-risk regions ({!Topo.Partition}); whole
      regions fail together at exponential inter-arrival [mtbf] and
      repair [mttr] later.
    - [adversarial:k=2,period=0.5,hold=0.45,level=full] — every
      [period] the adversary replans the tracked flows on the surviving
      topology, scores links by how many plan residues depend on them,
      and greedily fails the top scorers (up to [k] concurrently, each
      held down for [hold] seconds), never disconnecting a tracked pair.
    - [events:fail@T=A-B,repair@T=A-B,fail@T=#ID] — an explicit event
      list by endpoint labels ([A-B]) or raw link id ([#ID]); the
      degenerate scenario the repeatable [--fail-at]/[--repair-at] flags
      compile to. *)

type link_ref = Id of int | Between of int * int

type t =
  | Flap of { links : int; period : float; duty : float; seed : int }
  | Regional of { groups : int; mtbf : float; mttr : float; seed : int }
  | Adversarial of {
      k : int;
      period : float;
      hold : float;
      level : Kar.Controller.level;
    }
  | Events of (float * Event.action * link_ref) list

val parse : string -> (t, string) result

(** Round-trips through {!parse}. *)
val to_string : t -> string
