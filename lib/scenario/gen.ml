module Graph = Topo.Graph
module Prng = Util.Prng

let ( let* ) = Result.bind

let core_links g =
  List.filter
    (fun (l : Graph.link) ->
      Graph.is_core g l.Graph.ep0.Graph.node
      && Graph.is_core g l.Graph.ep1.Graph.node)
    (Graph.links g)

(* Per-link interval union: overlapping or touching down-windows merge, so
   the emitted stream alternates strictly per link.  A window still open
   at the horizon emits no repair. *)
let events_of_windows ~horizon windows =
  let by_link = Hashtbl.create 16 in
  List.iter
    (fun (l, t0, t1) ->
      let prev = try Hashtbl.find by_link l with Not_found -> [] in
      Hashtbl.replace by_link l ((t0, t1) :: prev))
    windows;
  let links =
    List.sort Int.compare (Hashtbl.fold (fun l _ acc -> l :: acc) by_link [])
  in
  let events = ref [] in
  List.iter
    (fun l ->
      let ws =
        List.sort
          (fun (a0, a1) (b0, b1) ->
            match Float.compare a0 b0 with
            | 0 -> Float.compare a1 b1
            | c -> c)
          (Hashtbl.find by_link l)
      in
      let emit (t0, t1) =
        if t0 < horizon then begin
          events := { Event.at = t0; action = Event.Fail; link = l } :: !events;
          if t1 < horizon then
            events :=
              { Event.at = t1; action = Event.Repair; link = l } :: !events
        end
      in
      let rec merge cur = function
        | [] -> emit cur
        | (t0, t1) :: rest ->
          let c0, c1 = cur in
          if t0 <= c1 then merge (c0, Float.max c1 t1) rest
          else begin
            emit cur;
            merge (t0, t1) rest
          end
      in
      match ws with [] -> () | w :: rest -> merge w rest)
    links;
  Event.normalize !events

let flap g ~links ~period ~duty ~seed ~horizon =
  let candidates = Array.of_list (core_links g) in
  if Array.length candidates = 0 then Ok []
  else begin
    let master = Prng.of_int seed in
    Prng.shuffle master candidates;
    let n = min links (Array.length candidates) in
    let streams = Prng.split_n master n in
    let windows = ref [] in
    for i = 0 to n - 1 do
      let link = candidates.(i).Graph.id in
      let phase = Prng.float streams.(i) *. period in
      let c = ref 0 in
      let continue = ref true in
      while !continue do
        let t0 = phase +. (float_of_int !c *. period) in
        if t0 >= horizon then continue := false
        else begin
          windows := (link, t0, t0 +. (duty *. period)) :: !windows;
          incr c
        end
      done
    done;
    Ok (events_of_windows ~horizon !windows)
  end

let regional g ~groups ~mtbf ~mttr ~seed ~horizon =
  let groups = min groups (Graph.n_nodes g) in
  match Topo.Partition.make g ~regions:groups with
  | exception Invalid_argument msg -> Error ("regional: " ^ msg)
  | p ->
    let srlg =
      Array.init groups (fun r ->
          List.filter
            (fun (l : Graph.link) ->
              p.Topo.Partition.region_of.(l.Graph.ep0.Graph.node) = r
              && p.Topo.Partition.region_of.(l.Graph.ep1.Graph.node) = r)
            (core_links g))
    in
    let master = Prng.of_int seed in
    let windows = ref [] in
    let t = ref (Prng.exponential master ~mean:mtbf) in
    while !t < horizon do
      let r = Prng.int master groups in
      List.iter
        (fun (l : Graph.link) ->
          windows := (l.Graph.id, !t, !t +. mttr) :: !windows)
        srlg.(r);
      t := !t +. Prng.exponential master ~mean:mtbf
    done;
    Ok (events_of_windows ~horizon !windows)

(* --- the adversarial scheduler --- *)

let plan_links g (plan : Kar.Route.plan) =
  List.filter_map
    (fun (r : Rns.residue) ->
      match Graph.node_of_label g r.Rns.modulus with
      | exception Not_found -> None
      | v ->
        (match Graph.link_at g v r.Rns.value with
         | exception Invalid_argument _ -> None
         | l -> Some l.Graph.id))
    plan.Kar.Route.residues

(* A protected plan on the surviving topology: shortest path over usable
   links, then the level's protection members folded in one hop at a time
   — the same construction the serving control plane uses, so the
   adversary attacks exactly the dependency set a live replan would
   install. *)
let plan_under g ~usable ~src ~dst ~level =
  match Kar.Controller.route ~usable g ~src ~dst ~protection:[] with
  | exception Invalid_argument _ -> None
  | base ->
    (match level with
     | Kar.Controller.Unprotected -> Some base
     | Kar.Controller.Partial | Kar.Controller.Full ->
       let path = base.Kar.Route.core_path in
       let members =
         match level with
         | Kar.Controller.Partial ->
           Kar.Protection.off_path_members g ~path ~radius:1
         | _ -> Kar.Protection.full_members g ~path
       in
       (match List.rev path with
        | [] -> Some base
        | dest_core :: _ ->
          let path_labels = List.map (Graph.label g) path in
          let hops =
            Kar.Protection.tree_hops g ~dest:dest_core members
            |> List.filter (fun (s, _) -> not (List.mem s path_labels))
          in
          Some
            (List.fold_left
               (fun acc hop ->
                 match Kar.Route.protect g acc [ hop ] with
                 | Ok plan -> plan
                 | Error _ -> acc)
               base hops)))

let default_pairs g =
  let edges =
    List.sort
      (fun a b -> Int.compare (Graph.label g a) (Graph.label g b))
      (Graph.edge_nodes g)
  in
  let rec pairs acc = function
    | [] -> List.rev acc
    | u :: rest ->
      pairs (List.rev_append (List.map (fun v -> (u, v)) rest) acc) rest
  in
  let all = pairs [] edges in
  List.filteri (fun i _ -> i < 8) all

let connected g ~downs pairs =
  let usable (l : Graph.link) = not (List.mem l.Graph.id downs) in
  List.for_all
    (fun (src, dst) -> Topo.Paths.shortest_path g ~usable src dst <> None)
    pairs

let adversarial g ~pairs ~k ~period ~hold ~level ~horizon =
  let pairs = match pairs with Some ps -> ps | None -> default_pairs g in
  if pairs = [] then Error "adversarial: no edge pairs to track"
  else begin
    let windows = ref [] in
    let down = ref [] in
    (* (link, repair time) *)
    let t = ref period in
    while !t < horizon do
      down := List.filter (fun (_, until) -> until > !t) !down;
      let downs = List.map fst !down in
      let usable (l : Graph.link) = not (List.mem l.Graph.id downs) in
      let score = Hashtbl.create 32 in
      let bump w lid =
        Hashtbl.replace score lid
          (w + (try Hashtbl.find score lid with Not_found -> 0))
      in
      List.iter
        (fun (src, dst) ->
          match plan_under g ~usable ~src ~dst ~level with
          | None -> ()
          | Some plan ->
            (* every residue is a dependency (protection tree membership);
               links carrying the primary path weigh heavier — they are
               what the flow rides right now *)
            List.iter (bump 1) (plan_links g plan);
            let ppath = Topo.Paths.path_links g plan.Kar.Route.core_path in
            List.iter (bump 8) ppath;
            (* one-step lookahead: if a primary link died, the best detour
               is where local backups / replans / standby paths would send
               the flow — its links are dependencies too *)
            List.iter
              (fun dead ->
                let usable' (l : Graph.link) =
                  usable l && l.Graph.id <> dead
                in
                match
                  Kar.Controller.route ~usable:usable' g ~src ~dst
                    ~protection:[]
                with
                | exception Invalid_argument _ -> ()
                | alt ->
                  List.iter (bump 4)
                    (Topo.Paths.path_links g alt.Kar.Route.core_path))
              ppath)
        pairs;
      let candidates =
        Hashtbl.fold (fun lid s acc -> (lid, s) :: acc) score []
        |> List.filter (fun (lid, _) -> not (List.mem lid downs))
        |> List.sort (fun (l1, s1) (l2, s2) ->
               match Int.compare s2 s1 with
               | 0 -> Int.compare l1 l2
               | c -> c)
      in
      let budget = ref (k - List.length !down) in
      List.iter
        (fun (lid, _) ->
          if
            !budget > 0
            && connected g ~downs:(lid :: List.map fst !down) pairs
          then begin
            down := (lid, !t +. hold) :: !down;
            windows := (lid, !t, !t +. hold) :: !windows;
            decr budget
          end)
        candidates;
      t := !t +. period
    done;
    Ok (events_of_windows ~horizon !windows)
  end

let resolve_events g evs =
  let* resolved =
    List.fold_left
      (fun acc (at, action, link) ->
        let* acc = acc in
        let* link =
          match link with
          | Spec.Id id ->
            if id >= 0 && id < Graph.n_links g then Ok id
            else Error (Printf.sprintf "events: no link #%d in this topology" id)
          | Spec.Between (a, b) ->
            (match Graph.link_between_labels g a b with
             | id -> Ok id
             | exception Not_found ->
               Error (Printf.sprintf "events: %d-%d is not a link" a b))
        in
        Ok ({ Event.at; action; link } :: acc))
      (Ok []) evs
  in
  Ok (Event.normalize resolved)

let generate g ~horizon ?pairs spec =
  if horizon <= 0.0 then Error "scenario horizon must be positive"
  else
    match spec with
    | Spec.Flap { links; period; duty; seed } ->
      flap g ~links ~period ~duty ~seed ~horizon
    | Spec.Regional { groups; mtbf; mttr; seed } ->
      regional g ~groups ~mtbf ~mttr ~seed ~horizon
    | Spec.Adversarial { k; period; hold; level } ->
      adversarial g ~pairs ~k ~period ~hold ~level ~horizon
    | Spec.Events evs -> resolve_events g evs
