module Z = Bignum.Z

type residue = { modulus : int; value : int }

type error =
  | Not_pairwise_coprime of int * int
  | Residue_out_of_range of residue
  | Nonpositive_modulus of int
  | Empty_system
  | Modulus_conflict of int

let rec gcd_int a b = if b = 0 then a else gcd_int b (a mod b)

let pp_error ppf = function
  | Not_pairwise_coprime (a, b) ->
    Format.fprintf ppf "switch IDs %d and %d are not coprime (gcd %d)" a b
      (gcd_int a b)
  | Residue_out_of_range { modulus; value } ->
    Format.fprintf ppf "port %d is not representable at switch ID %d (need 0 <= port < id)"
      value modulus
  | Nonpositive_modulus m -> Format.fprintf ppf "switch ID %d is not positive" m
  | Empty_system -> Format.fprintf ppf "empty residue system"
  | Modulus_conflict id ->
    Format.fprintf ppf
      "switch ID %d shares a factor with the existing route modulus" id

let error_to_string e = Format.asprintf "%a" pp_error e

let coprime a b = gcd_int (abs a) (abs b) = 1

let pairwise_coprime ids =
  let rec outer = function
    | [] -> Ok ()
    | id :: rest ->
      if id <= 0 then Error (Nonpositive_modulus id)
      else begin
        let rec inner = function
          | [] -> outer rest
          | other :: more ->
            if not (coprime id other) then Error (Not_pairwise_coprime (id, other))
            else inner more
        in
        inner rest
      end
  in
  outer ids

let modulus_product ids = Z.product (List.map Z.of_int ids)

let validate residues =
  if residues = [] then Error Empty_system
  else begin
    let rec check = function
      | [] -> pairwise_coprime (List.map (fun r -> r.modulus) residues)
      | r :: rest ->
        if r.modulus <= 1 then Error (Nonpositive_modulus r.modulus)
        else if r.value < 0 || r.value >= r.modulus then Error (Residue_out_of_range r)
        else check rest
    in
    check residues
  end

(* Direct CRT summation (paper Eq. 4): R = < sum p_i * M_i * L_i >_M with
   M_i = M / s_i and L_i = <M_i^{-1}>_{s_i}. *)
let crt_sum residues =
  let m = modulus_product (List.map (fun r -> r.modulus) residues) in
  let term acc r =
    let s = Z.of_int r.modulus in
    let mi = Z.div m s in
    let li =
      match Z.invmod mi s with
      | Some inv -> inv
      | None -> assert false (* validated pairwise coprime *)
    in
    Z.add acc (Z.mul (Z.of_int r.value) (Z.mul mi li))
  in
  let total = List.fold_left term Z.zero residues in
  (Z.erem total m, m)

let encode residues =
  match validate residues with
  | Error _ as e -> e
  | Ok () -> Ok (crt_sum residues)

let encode_exn residues =
  match encode residues with
  | Ok v -> v
  | Error e -> invalid_arg ("Rns.encode: " ^ error_to_string e)

(* Garner's algorithm: build the value as a mixed-radix expansion
   R = d_1 + d_2*s_1 + d_3*s_1*s_2 + ...; each digit needs only one modular
   inverse modulo a single small s_i. *)
let garner_digits residues =
  let rec go acc prefix_product digits = function
    | [] -> List.rev digits
    | r :: rest ->
      let s = Z.of_int r.modulus in
      (* digit = (p_i - acc) * prefix_product^{-1} mod s_i *)
      let inv =
        match Z.invmod prefix_product s with
        | Some inv -> inv
        | None -> assert false
      in
      let d = Z.erem (Z.mul (Z.sub (Z.of_int r.value) acc) inv) s in
      let acc = Z.add acc (Z.mul d prefix_product) in
      go acc (Z.mul prefix_product s) (d :: digits) rest
  in
  go Z.zero Z.one [] residues

let encode_garner residues =
  match validate residues with
  | Error _ as e -> e
  | Ok () ->
    let digits = garner_digits residues in
    let value, modulus =
      List.fold_left2
        (fun (acc, prod) d r ->
          (Z.add acc (Z.mul d prod), Z.mul prod (Z.of_int r.modulus)))
        (Z.zero, Z.one) digits residues
    in
    Ok (value, modulus)

let mixed_radix residues =
  match validate residues with
  | Error _ as e -> e
  | Ok () -> Ok (garner_digits residues)

(* The single validated entry point for the data-plane operation: the
   [switch_id > 0] check lives in [Z.rem_int] (which every caller funnels
   through), not in a second guard here. *)
let port_fast route_id switch_id = Z.rem_int route_id switch_id
let port = port_fast

let decode route_id ids = List.map (port route_id) ids

let extend ~route_id ~modulus extra =
  match validate extra with
  | Error _ as e -> e
  | Ok () ->
    (* Also require the new moduli to be coprime with the existing one. *)
    let conflict =
      List.find_opt
        (fun r -> not (Z.equal (Z.gcd modulus (Z.of_int r.modulus)) Z.one))
        extra
    in
    (match conflict with
     | Some r -> Error (Modulus_conflict r.modulus)
     | None ->
       (* Combine (route_id mod modulus) with each new residue by pairwise
          CRT: R' = route_id + modulus * t where
          t = (p - route_id) * modulus^{-1} mod s. *)
       let step (rid, m) r =
         let s = Z.of_int r.modulus in
         let inv =
           match Z.invmod m s with Some inv -> inv | None -> assert false
         in
         let t = Z.erem (Z.mul (Z.sub (Z.of_int r.value) rid) inv) s in
         (Z.add rid (Z.mul m t), Z.mul m s)
       in
       Ok (List.fold_left step (route_id, modulus) extra))

let bit_length_bound m =
  if Z.compare m Z.one <= 0 then 0 else Z.bit_length (Z.sub m Z.one)
