(** Residue Number System encoding for KAR route identifiers.

    A KAR route is the pair of a modulus set [S = {s_1, ..., s_N}] (the
    pairwise-coprime switch IDs on the desired path, plus any protection
    switches) and a residue set [P = {p_1, ..., p_N}] (the output-port index
    each of those switches must use).  The route ID is the unique
    [R in [0, M)], [M = prod s_i], with [R mod s_i = p_i] — reconstructed by
    the Chinese Remainder Theorem (paper Eq. 4-8).

    Switch IDs and ports are small native integers in this API; route IDs
    are {!Bignum.Z.t} since [M] grows with the number of protected
    switches. *)

module Z = Bignum.Z

type residue = {
  modulus : int; (* switch ID, pairwise coprime with the others *)
  value : int; (* output port index, 0 <= value < modulus *)
}

type error =
  | Not_pairwise_coprime of int * int (* the offending pair *)
  | Residue_out_of_range of residue
  | Nonpositive_modulus of int
  | Empty_system
  | Modulus_conflict of int (* new switch ID shares a factor with the
                               existing route modulus (see {!extend}) *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** [coprime a b] is [true] iff [gcd a b = 1]. *)
val coprime : int -> int -> bool

(** [pairwise_coprime ids] is [Ok ()] or the first offending pair.  O(n^2)
    gcds; the sets here are small (path lengths). *)
val pairwise_coprime : int list -> (unit, error) result

(** [modulus_product ids] is [M = prod ids] (Eq. 1). *)
val modulus_product : int list -> Z.t

(** [encode residues] is [Ok (route_id, m)] where [route_id] is the CRT
    reconstruction (Eq. 4) and [m] the modulus product, or an [error] when
    the system is invalid. *)
val encode : residue list -> (Z.t * Z.t, error) result

(** [encode_exn residues] is [encode], raising [Invalid_argument] with the
    rendered error. *)
val encode_exn : residue list -> Z.t * Z.t

(** [encode_garner residues] reconstructs the same route ID with Garner's
    mixed-radix algorithm — fewer large multiplications than the direct CRT
    summation; used as an ablation and a cross-check. *)
val encode_garner : residue list -> (Z.t * Z.t, error) result

(** [decode route_id ids] extracts the output port at each switch:
    [R mod s_i] (Eq. 3, the data-plane operation). *)
val decode : Z.t -> int list -> int list

(** [port route_id switch_id] is the single-switch forwarding computation
    [<R>_s].  This is all a KAR core switch ever evaluates.
    @raise Invalid_argument when [switch_id <= 0]. *)
val port : Z.t -> int -> int

(** [port_fast] is {!port}: the remainder-only small-modulus kernel
    ({!Bignum.Z.rem_int}) — no quotient, no allocation.  Exposed under its
    own name so data-plane call sites document that they are on the fast
    path; validation ([switch_id > 0]) happens inside the kernel itself. *)
val port_fast : Z.t -> int -> int

(** [extend ~route_id ~modulus extra] folds additional residues into an
    existing route ID without re-encoding the original residues: the result
    [R'] satisfies [R' mod m = route_id] for the old system and the new
    residues.  This implements incremental driven-deflection protection
    (adding path segments to an already computed route).  Returns the new
    [(route_id, modulus)]. *)
val extend : route_id:Z.t -> modulus:Z.t -> residue list -> (Z.t * Z.t, error) result

(** [bit_length_bound m] is the number of bits needed to store any route ID
    in [\[0, m)] — the paper's Eq. 9 bound on the field width.  (Eq. 9's
    literal [ceil (log2 (m - 1))] under-counts by one exactly when [m - 1]
    is a power of two, since the ID can be [m - 1] itself; all Table 1
    values agree under both readings.)  0 for [m <= 1]. *)
val bit_length_bound : Z.t -> int

(** [mixed_radix residues] is the mixed-radix digit expansion of the encoded
    value with respect to the moduli order given (Garner coefficients);
    exposed for tests and the encoding ablation. *)
val mixed_radix : residue list -> (Z.t list, error) result
