(** Windowed goodput sampling: bytes delivered in-order per time bin,
    reported in Mb/s — the quantity plotted in the paper's Fig. 4/5/7. *)

type t

(** [create ~bin_s ()] starts a sampler with bins of [bin_s] seconds
    anchored at time 0. *)
val create : bin_s:float -> unit -> t

(** [add s ~time ~bytes] credits [bytes] to the bin containing [time]. *)
val add : t -> time:float -> bytes:int -> unit

(** [series_mbps s ~until] is one value per bin from time 0 to [until]
    (zero-filled where nothing was delivered). *)
val series_mbps : t -> until:float -> float list

(** [mean_mbps s ~from_s ~until] averages goodput over a time window. *)
val mean_mbps : t -> from_s:float -> until:float -> float

val bin_s : t -> float
