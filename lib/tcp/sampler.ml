type t = { bin_s : float; mutable bytes : float array }

let create ~bin_s () =
  if bin_s <= 0.0 then invalid_arg "Sampler.create: bin must be positive";
  { bin_s; bytes = Array.make 64 0.0 }

let ensure s idx =
  if idx >= Array.length s.bytes then begin
    let bigger = Array.make (max (idx + 1) (2 * Array.length s.bytes)) 0.0 in
    Array.blit s.bytes 0 bigger 0 (Array.length s.bytes);
    s.bytes <- bigger
  end

let add s ~time ~bytes =
  if time < 0.0 then invalid_arg "Sampler.add: negative time";
  let idx = int_of_float (time /. s.bin_s) in
  ensure s idx;
  s.bytes.(idx) <- s.bytes.(idx) +. float_of_int bytes

let mbps_of_bytes s b = b *. 8.0 /. s.bin_s /. 1e6

let series_mbps s ~until =
  let n = int_of_float (ceil (until /. s.bin_s)) in
  List.init n (fun i ->
      if i < Array.length s.bytes then mbps_of_bytes s s.bytes.(i) else 0.0)

let mean_mbps s ~from_s ~until =
  if until <= from_s then invalid_arg "Sampler.mean_mbps: empty window";
  let first = int_of_float (from_s /. s.bin_s) in
  let last = int_of_float (ceil (until /. s.bin_s)) - 1 in
  let total = ref 0.0 in
  for i = first to last do
    if i >= 0 && i < Array.length s.bytes then total := !total +. s.bytes.(i)
  done;
  !total *. 8.0 /. (until -. from_s) /. 1e6

let bin_s s = s.bin_s
