(** Host-side plumbing: installs edge-node handlers that deliver TCP
    payloads to the right {!Flow} and re-encode stranded packets through the
    controller (the paper's second edge-handling approach). *)

module Net = Netsim.Net
module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Karnet = Netsim.Karnet


type t

(** [create ~net ()] installs handlers on every edge node of the network's
    graph.  [reencode_delay_s] models the edge-to-controller round trip for
    stranded packets (default 1 ms). *)
val create : net:Net.t -> ?reencode_delay_s:float -> unit -> t

(** [register stack flow] makes the stack dispatch [Data]/[Ack] payloads of
    this flow id to [flow]'s receiver and sender. *)
val register : t -> Flow.t -> unit

(** [unregister stack flow_id] stops dispatching this id (late packets are
    counted delivered but ignored). *)
val unregister : t -> int -> unit
