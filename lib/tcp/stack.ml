module Net = Netsim.Net
module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Karnet = Netsim.Karnet

module Graph = Topo.Graph

type t = {
  flows : (int, Flow.t) Hashtbl.t;
  controller : Kar.Controller.cache;
}

let dispatch stack net (packet : Packet.t) =
  match Packet.payload packet with
  | Flow.Data { flow; seq } ->
    (match Hashtbl.find_opt stack.flows flow with
     | Some f -> Flow.handle_data f net ~seq
     | None -> ())
  | Flow.Ack { flow; ackno; sacks; dsack } ->
    (match Hashtbl.find_opt stack.flows flow with
     | Some f -> Flow.handle_ack f net ~ackno ~sacks ~dsack
     | None -> ())
  | _ -> ()

let create ~net ?(reencode_delay_s = 1e-3) () =
  let stack =
    { flows = Hashtbl.create 16; controller = Kar.Controller.create_cache (Net.graph net) }
  in
  (* The re-encode cache is one hashtable shared by every edge node; on a
     sharded net different regions may re-encode concurrently, so the
     lookup is serialised.  Re-encodes are control-plane-rate (they model
     a controller round trip) and the result is a pure function of
     (node, dst), so the lock affects neither throughput nor
     determinism. *)
  let controller_lock = Mutex.create () in
  List.iter
    (fun v ->
      Karnet.install_edge net v ~reencode_delay_s
        ~reencode:(fun packet ->
          Mutex.lock controller_lock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock controller_lock)
            (fun () ->
              Kar.Controller.reencode stack.controller ~at:v
                ~dst:(Packet.dst packet)))
        ~receive:(fun net packet -> dispatch stack net packet)
        ())
    (Graph.edge_nodes (Net.graph net));
  stack

let register stack flow = Hashtbl.replace stack.flows (Flow.id flow) flow
let unregister stack flow_id = Hashtbl.remove stack.flows flow_id
