module Net = Netsim.Net
module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Karnet = Netsim.Karnet

module Z = Bignum.Z
module Graph = Topo.Graph

(* Congestion-control flavour: classic Reno AIMD, or CUBIC's time-based
   window function (the Linux default since 2.6.19 — what the paper's
   Mininet hosts would have run). *)
type cc_algorithm =
  | Reno
  | Cubic

type config = {
  cc : cc_algorithm;
  mss : int;
  header_bytes : int;
  initial_cwnd_segments : int;
  initial_ssthresh_segments : int;
  max_window_segments : int;
  rto_initial_s : float;
  rto_min_s : float;
  rto_max_s : float;
  ack_bytes : int;
}

let default_config =
  {
    cc = Reno;
    mss = 1460;
    header_bytes = 40;
    initial_cwnd_segments = 10;
    initial_ssthresh_segments = 64;
    max_window_segments = 256;
    rto_initial_s = 1.0;
    rto_min_s = 0.2;
    rto_max_s = 60.0;
    ack_bytes = 40;
  }

type stats = {
  segments_sent : int;
  retransmissions : int;
  fast_retransmits : int;
  timeouts : int;
  acks_received : int;
  dupacks : int;
  bytes_acked : int;
  bytes_delivered : int;
  reorder_events : int;
  max_reorder_gap : int;
  spurious_rexmits : int; (* retransmissions proven unnecessary by DSACK *)
  dupthresh : int; (* adapted duplicate threshold at sampling time *)
}

type Packet.payload += Data of { flow : int; seq : int }

type Packet.payload +=
  | Ack of {
      flow : int;
      ackno : int;
      sacks : (int * int) list;
      dsack : (int * int) option; (* duplicate arrival report (RFC 2883) *)
    }

type t = {
  flow_id : int;
  net : Net.t;
  config : config;
  src : Graph.node;
  dst : Graph.node;
  mutable fwd_route : Z.t;
  rev_route : Z.t;
  sampler : Sampler.t option;
  (* sender *)
  mutable running : bool;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable cwnd : float; (* bytes *)
  mutable ssthresh : float; (* bytes *)
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recovery_via_rto : bool;
      (* timeout recovery: every unacked segment is presumed lost and
         retransmitted cwnd-paced in slow start (classic post-RTO
         behaviour); false = NewReno fast recovery *)
  mutable recover : int;
  mutable srtt : float;
  mutable rttvar : float;
  mutable rto_base : float; (* estimator output, before backoff *)
  mutable backoff : float; (* multiplier, doubled per timeout *)
  mutable have_rtt_sample : bool;
  mutable timer : Engine.event option;
  (* Single-segment RTT timing with Karn's algorithm: one segment is timed
     at a time; retransmitting it aborts the measurement. *)
  mutable timed_seq : int option;
  mutable timed_at : float;
  (* CUBIC state: the window before the last reduction and the epoch the
     cubic clock counts from *)
  mutable cubic_wmax : float;
  mutable cubic_epoch : float;
  (* receiver *)
  (* SACK scoreboard (sender side) *)
  sacked : (int, unit) Hashtbl.t;
  mutable highest_sacked : int;
  rexmitted_in_recovery : (int, unit) Hashtbl.t;
  (* Reordering adaptation (Linux-style): every retransmission is logged
     with the SACK gap that justified it; a DSACK for such a sequence
     proves the retransmission spurious, raising the duplicate threshold
     and undoing the associated cwnd reduction when possible. *)
  rexmit_log : (int, int) Hashtbl.t; (* seq -> gap (segments) at rexmit *)
  mutable dupthresh_dyn : int;
  mutable undo : (float * float) option; (* (prior cwnd, prior ssthresh) *)
  mutable undo_retrans : int;
      (* retransmissions of the current episode not yet proven spurious;
         reaching zero with [undo] pending restores the window (Linux's
         tcp_try_undo_dsack) *)
  mutable spurious_rexmits : int;
  (* receiver *)
  mutable rcv_nxt : int;
  ooo : (int, unit) Hashtbl.t;
  (* stats *)
  mutable segments_sent : int;
  mutable retransmissions : int;
  mutable fast_retransmits : int;
  mutable timeouts : int;
  mutable acks_received : int;
  mutable dupacks_total : int;
  mutable bytes_delivered : int;
  mutable reorder_events : int;
  mutable max_reorder_gap : int;
}

let id t = t.flow_id

let stats t =
  {
    segments_sent = t.segments_sent;
    retransmissions = t.retransmissions;
    fast_retransmits = t.fast_retransmits;
    timeouts = t.timeouts;
    acks_received = t.acks_received;
    dupacks = t.dupacks_total;
    bytes_acked = t.snd_una;
    bytes_delivered = t.bytes_delivered;
    reorder_events = t.reorder_events;
    max_reorder_gap = t.max_reorder_gap;
    spurious_rexmits = t.spurious_rexmits;
    dupthresh = t.dupthresh_dyn;
  }

let now t = Engine.now (Net.engine t.net)
let mssf t = float_of_int t.config.mss

let flight t = t.snd_nxt - t.snd_una

let effective_rto t = Stdlib.min t.config.rto_max_s (t.rto_base *. t.backoff)

let window_bytes t =
  let rwnd = t.config.max_window_segments * t.config.mss in
  min (int_of_float t.cwnd) rwnd

(* --- wire --- *)

let emit_segment t ~seq ~retransmission =
  let packet =
    Net.alloc t.net ~src:t.src ~dst:t.dst
      ~size_bytes:(t.config.mss + t.config.header_bytes)
      ~route_id:t.fwd_route
      (Data { flow = t.flow_id; seq })
  in
  t.segments_sent <- t.segments_sent + 1;
  if retransmission then begin
    t.retransmissions <- t.retransmissions + 1;
    t.undo_retrans <- t.undo_retrans + 1;
    let gap = Stdlib.max 0 ((t.highest_sacked - seq) / t.config.mss) in
    Hashtbl.replace t.rexmit_log seq gap;
    (* Karn: a retransmitted segment yields no RTT sample. *)
    if t.timed_seq = Some seq then t.timed_seq <- None
  end
  else if t.timed_seq = None then begin
    t.timed_seq <- Some seq;
    t.timed_at <- now t
  end;
  Net.inject t.net ~at:t.src packet

(* Up to three SACK blocks [lo, hi) assembled from the out-of-order set,
   highest block first (most recent data tends to be highest under
   reordering). *)
let sack_blocks t =
  match Hashtbl.length t.ooo with
  | 0 -> []
  | _ ->
    let seqs =
      Hashtbl.fold (fun seq () acc -> seq :: acc) t.ooo []
      |> List.sort (fun a b -> Stdlib.compare b a)
    in
    let rec blocks acc current = function
      | [] -> (match current with None -> acc | Some b -> b :: acc)
      | seq :: rest ->
        (match current with
         | None -> blocks acc (Some (seq, seq + t.config.mss)) rest
         | Some (lo, hi) ->
           if seq + t.config.mss = lo then blocks acc (Some (seq, hi)) rest
           else blocks ((lo, hi) :: acc) (Some (seq, seq + t.config.mss)) rest)
    in
    let all = List.rev (blocks [] None seqs) in
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    take 3 all

let emit_ack t ~ackno ~dsack =
  let packet =
    Net.alloc t.net ~src:t.dst ~dst:t.src ~size_bytes:t.config.ack_bytes
      ~route_id:t.rev_route
      (Ack { flow = t.flow_id; ackno; sacks = sack_blocks t; dsack })
  in
  Net.inject t.net ~at:t.dst packet

(* Multiplicative-decrease factor and window target on loss.  CUBIC
   reduces less (beta = 0.7) and remembers the pre-loss window as the
   plateau of its cubic curve. *)
let cubic_beta = 0.7
let cubic_c = 0.4

let on_window_reduction t =
  match t.config.cc with
  | Reno -> Stdlib.max (float_of_int (flight t) /. 2.0) (2.0 *. mssf t)
  | Cubic ->
    t.cubic_wmax <- Stdlib.max t.cwnd (2.0 *. mssf t);
    t.cubic_epoch <- now t;
    Stdlib.max (t.cwnd *. cubic_beta) (2.0 *. mssf t)

(* Congestion-avoidance growth for one ACK covering [newly_acked] bytes. *)
let congestion_avoidance_growth t newly_acked =
  match t.config.cc with
  | Reno -> mssf t *. float_of_int newly_acked /. t.cwnd
  | Cubic ->
    (* The cubic clock counts from the last window reduction; a flow that
       reaches congestion avoidance without any loss starts the clock at
       that moment (otherwise absolute time would inflate the target). *)
    if t.cubic_epoch <= 0.0 then begin
      t.cubic_epoch <- now t;
      t.cubic_wmax <- t.cwnd
    end;
    (* W(t) = C (t - K)^3 + Wmax, windows in MSS units, t in seconds *)
    let wmax = Stdlib.max t.cubic_wmax t.cwnd /. mssf t in
    let k = Float.cbrt (wmax *. (1.0 -. cubic_beta) /. cubic_c) in
    let elapsed = now t -. t.cubic_epoch in
    let target = (cubic_c *. ((elapsed -. k) ** 3.0)) +. wmax in
    let cwnd_mss = t.cwnd /. mssf t in
    if target > cwnd_mss then
      (* close a fraction of the gap per acked window's worth of data *)
      mssf t *. (target -. cwnd_mss) /. cwnd_mss
        *. (float_of_int newly_acked /. mssf t)
    else
      (* plateau: grow slowly (TCP-friendly region simplified to
         Reno-rate growth) *)
      mssf t *. float_of_int newly_acked /. t.cwnd /. 8.0

(* --- sender timer --- *)

let cancel_timer t =
  match t.timer with
  | Some ev ->
    Engine.cancel ev;
    t.timer <- None
  | None -> ()

let rec arm_timer t =
  cancel_timer t;
  if t.running && flight t > 0 then
    t.timer <-
      Some
        (Engine.schedule_in (Net.engine t.net) (effective_rto t) (fun () ->
             on_timeout t))

and on_timeout t =
  t.timer <- None;
  if t.running && flight t > 0 then begin
    t.timeouts <- t.timeouts + 1;
    t.ssthresh <- on_window_reduction t;
    t.cwnd <- mssf t;
    t.dupacks <- 0;
    (* enter timeout recovery: everything outstanding is presumed lost and
       will be retransmitted cwnd-paced as ACKs return *)
    t.in_recovery <- true;
    t.recovery_via_rto <- true;
    t.recover <- t.snd_nxt;
    Hashtbl.reset t.rexmitted_in_recovery;
    t.undo <- None;
    t.undo_retrans <- 0;
    t.backoff <- t.backoff *. 2.0;
    Hashtbl.replace t.rexmitted_in_recovery t.snd_una ();
    emit_segment t ~seq:t.snd_una ~retransmission:true;
    arm_timer t
  end

let send_available t =
  if t.running then begin
    let budget = window_bytes t in
    while flight t + t.config.mss <= budget do
      emit_segment t ~seq:t.snd_nxt ~retransmission:false;
      t.snd_nxt <- t.snd_nxt + t.config.mss
    done;
    if t.timer = None then arm_timer t
  end

(* --- RTT estimation (RFC 6298) --- *)

let rtt_sample t sample =
  if not t.have_rtt_sample then begin
    t.srtt <- sample;
    t.rttvar <- sample /. 2.0;
    t.have_rtt_sample <- true
  end
  else begin
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. sample));
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. sample)
  end;
  t.rto_base <-
    Stdlib.min t.config.rto_max_s
      (Stdlib.max t.config.rto_min_s (t.srtt +. (4.0 *. t.rttvar)))

let take_rtt_sample t ~upto =
  match t.timed_seq with
  | Some seq when upto > seq ->
    t.timed_seq <- None;
    rtt_sample t (now t -. t.timed_at)
  | Some _ | None -> ()

(* --- SACK scoreboard --- *)

let dupthresh_cap = 300

let register_sacks t sacks =
  List.iter
    (fun (lo, hi) ->
      let seq = ref lo in
      while !seq < hi do
        if !seq >= t.snd_una && not (Hashtbl.mem t.sacked !seq) then begin
          Hashtbl.replace t.sacked !seq ();
          if !seq > t.highest_sacked then t.highest_sacked <- !seq
        end;
        seq := !seq + t.config.mss
      done)
    sacks

(* Linux-style tcp_check_sack_reordering: when a cumulative ACK fills a
   hole that we never retransmitted while data above it had already been
   SACKed, the original packet was merely late — direct evidence of
   reordering extent, learned without waiting for a DSACK round trip. *)
let learn_reordering_from_advance t upto =
  if t.highest_sacked > t.snd_una then begin
    let seq = ref t.snd_una in
    while !seq < upto do
      if (not (Hashtbl.mem t.sacked !seq))
         && (not (Hashtbl.mem t.rexmit_log !seq))
         && t.highest_sacked > !seq
      then begin
        let extent = ((t.highest_sacked - !seq) / t.config.mss) + 1 in
        if extent > t.dupthresh_dyn then
          t.dupthresh_dyn <- Stdlib.min dupthresh_cap extent
      end;
      seq := !seq + t.config.mss
    done
  end

let clear_sacked_below t upto =
  learn_reordering_from_advance t upto;
  let seq = ref t.snd_una in
  while !seq < upto do
    Hashtbl.remove t.sacked !seq;
    Hashtbl.remove t.rexmitted_in_recovery !seq;
    seq := !seq + t.config.mss
  done

(* RFC 6675-style loss inference: a hole is lost once dupthresh segments
   above it have been SACKed. *)
let snd_una_lost t =
  (not (Hashtbl.mem t.sacked t.snd_una))
  && t.highest_sacked >= t.snd_una + (t.dupthresh_dyn * t.config.mss)

(* Retransmit the lowest hole in [snd_una, recover) not yet retransmitted
   during this recovery episode. *)
let retransmit_next_hole t =
  let seq = ref t.snd_una in
  let found = ref false in
  while (not !found) && !seq < t.recover do
    if (not (Hashtbl.mem t.sacked !seq))
       && not (Hashtbl.mem t.rexmitted_in_recovery !seq)
    then begin
      found := true;
      Hashtbl.replace t.rexmitted_in_recovery !seq ();
      emit_segment t ~seq:!seq ~retransmission:true
    end
    else seq := !seq + t.config.mss
  done;
  !found

(* --- sender ACK processing (NewReno + SACK-assisted recovery) --- *)

let process_dsack t = function
  | None -> ()
  | Some (lo, _) ->
    (match Hashtbl.find_opt t.rexmit_log lo with
     | None -> ()
     | Some gap ->
       (* Our retransmission of [lo] was spurious: the original copy also
          arrived.  Learn the reordering extent and undo the associated
          window reduction if that episode had no other retransmission. *)
       Hashtbl.remove t.rexmit_log lo;
       t.spurious_rexmits <- t.spurious_rexmits + 1;
       (* A confirmed spurious retransmission means tolerance must exceed
          the whole window in flight at that moment (Linux jumps its
          reordering metric to fackets_out on DSACK, not by one). *)
       let window_extent = (flight t / t.config.mss) + 1 in
       t.dupthresh_dyn <-
         Stdlib.min dupthresh_cap
           (Stdlib.max t.dupthresh_dyn (Stdlib.max (gap + 1) window_extent));
       t.undo_retrans <- Stdlib.max 0 (t.undo_retrans - 1);
       if t.undo_retrans = 0 then begin
         (* every retransmission of the episode was spurious: restore the
            pre-episode window (Linux's tcp_try_undo_dsack) *)
         match t.undo with
         | Some (prior_cwnd, prior_ssthresh) ->
           t.cwnd <- Stdlib.max t.cwnd prior_cwnd;
           t.ssthresh <- Stdlib.max t.ssthresh prior_ssthresh;
           t.undo <- None
         | None -> ()
       end)

let handle_ack t net ~ackno ~sacks ~dsack =
  ignore net;
  if t.running then begin
    t.acks_received <- t.acks_received + 1;
    register_sacks t sacks;
    process_dsack t dsack;
    if ackno > t.snd_una && ackno <= t.snd_nxt then begin
      take_rtt_sample t ~upto:ackno;
      t.backoff <- 1.0;
      let newly_acked = ackno - t.snd_una in
      clear_sacked_below t ackno;
      if t.in_recovery then begin
        if ackno >= t.recover then begin
          (* full ACK: leave recovery *)
          t.snd_una <- ackno;
          t.in_recovery <- false;
          t.recovery_via_rto <- false;
          t.dupacks <- 0;
          Hashtbl.reset t.rexmitted_in_recovery;
          t.cwnd <- t.ssthresh
        end
        else if t.recovery_via_rto then begin
          (* timeout recovery: slow-start growth, retransmit holes up to
             the window (the whole outstanding window is presumed lost) *)
          t.snd_una <- ackno;
          t.cwnd <- Stdlib.min t.ssthresh (t.cwnd +. float_of_int newly_acked);
          let budget =
            Stdlib.max 1 (int_of_float (t.cwnd /. mssf t) / 2)
          in
          let repaired = ref 0 in
          while !repaired < budget && retransmit_next_hole t do
            incr repaired
          done
        end
        else begin
          (* NewReno partial ACK: repair the next hole the scoreboard
             shows, deflate by the amount acked *)
          t.snd_una <- ackno;
          ignore (retransmit_next_hole t);
          t.cwnd <-
            Stdlib.max (mssf t)
              (t.cwnd -. float_of_int newly_acked +. mssf t)
        end
      end
      else begin
        t.snd_una <- ackno;
        t.dupacks <- 0;
        (* Appropriate byte counting (RFC 3465 / Linux): reordered ACK
           streams arrive as jumps, so growth must credit the bytes acked,
           not the number of ACK packets. *)
        if t.cwnd < t.ssthresh then
          (* slow start: one MSS per acked MSS, capped at the threshold *)
          t.cwnd <-
            Stdlib.min t.ssthresh (t.cwnd +. float_of_int newly_acked)
        else
          (* congestion avoidance: Reno byte counting or CUBIC's curve *)
          t.cwnd <- t.cwnd +. congestion_avoidance_growth t newly_acked
      end;
      arm_timer t;
      send_available t
    end
    else if ackno = t.snd_una && flight t > 0 then begin
      (* duplicate ACK *)
      t.dupacks_total <- t.dupacks_total + 1;
      if t.in_recovery then begin
        t.cwnd <- t.cwnd +. mssf t;
        ignore (retransmit_next_hole t);
        send_available t
      end
      else begin
        t.dupacks <- t.dupacks + 1;
        (* With SACK, enter recovery only when the scoreboard actually
           shows snd_una lost (three segments SACKed above it) — pure
           reordering below that threshold triggers nothing. *)
        if snd_una_lost t then begin
          t.fast_retransmits <- t.fast_retransmits + 1;
          let prior_cwnd = t.cwnd and prior_ssthresh = t.ssthresh in
          t.ssthresh <- on_window_reduction t;
          t.recover <- t.snd_nxt;
          t.in_recovery <- true;
          t.recovery_via_rto <- false;
          Hashtbl.reset t.rexmitted_in_recovery;
          Hashtbl.replace t.rexmitted_in_recovery t.snd_una ();
          t.undo <- Some (prior_cwnd, prior_ssthresh);
          t.undo_retrans <- 0;
          emit_segment t ~seq:t.snd_una ~retransmission:true;
          t.cwnd <- t.ssthresh +. (3.0 *. mssf t);
          send_available t
        end
      end
    end
    (* stale ACK below snd_una: ignore *)
  end

(* --- receiver --- *)

let handle_data t net ~seq =
  let duplicate = seq < t.rcv_nxt || Hashtbl.mem t.ooo seq in
  if duplicate then emit_ack t ~ackno:t.rcv_nxt ~dsack:(Some (seq, seq + t.config.mss))
  else if seq > t.rcv_nxt then begin
    t.reorder_events <- t.reorder_events + 1;
    let gap = (seq - t.rcv_nxt) / t.config.mss in
    if gap > t.max_reorder_gap then t.max_reorder_gap <- gap;
    Hashtbl.replace t.ooo seq ()
  end
  else begin
    (* seq = rcv_nxt: in-order delivery *)
    let before = t.rcv_nxt in
    t.rcv_nxt <- t.rcv_nxt + t.config.mss;
    while Hashtbl.mem t.ooo t.rcv_nxt do
      Hashtbl.remove t.ooo t.rcv_nxt;
      t.rcv_nxt <- t.rcv_nxt + t.config.mss
    done;
    let delivered = t.rcv_nxt - before in
    t.bytes_delivered <- t.bytes_delivered + delivered;
    (match t.sampler with
     | Some s -> Sampler.add s ~time:(Engine.now (Net.engine net)) ~bytes:delivered
     | None -> ())
  end;
  if not duplicate then emit_ack t ~ackno:t.rcv_nxt ~dsack:None

let start ~net ~id ~src ~dst ~fwd_route ~rev_route ?(config = default_config)
    ?sampler ?at () =
  let t =
    {
      flow_id = id;
      net;
      config;
      src;
      dst;
      fwd_route;
      rev_route;
      sampler;
      running = true;
      snd_una = 0;
      snd_nxt = 0;
      cwnd = float_of_int (config.initial_cwnd_segments * config.mss);
      ssthresh = float_of_int (config.initial_ssthresh_segments * config.mss);
      dupacks = 0;
      in_recovery = false;
      recovery_via_rto = false;
      recover = 0;
      srtt = 0.0;
      rttvar = 0.0;
      rto_base = config.rto_initial_s;
      backoff = 1.0;
      have_rtt_sample = false;
      timer = None;
      timed_seq = None;
      timed_at = 0.0;
      cubic_wmax = 0.0;
      cubic_epoch = 0.0;
      sacked = Hashtbl.create 1024;
      highest_sacked = 0;
      rexmitted_in_recovery = Hashtbl.create 256;
      rexmit_log = Hashtbl.create 256;
      dupthresh_dyn = 3;
      undo = None;
      undo_retrans = 0;
      spurious_rexmits = 0;
      rcv_nxt = 0;
      ooo = Hashtbl.create 1024;
      segments_sent = 0;
      retransmissions = 0;
      fast_retransmits = 0;
      timeouts = 0;
      acks_received = 0;
      dupacks_total = 0;
      bytes_delivered = 0;
      reorder_events = 0;
      max_reorder_gap = 0;
    }
  in
  let begin_at =
    match at with
    | None -> Engine.now (Net.engine net)
    | Some time -> time
  in
  let kickoff () = send_available t in
  (* The kickoff must run on the region owning [src]: on a sharded net the
     flow's timers and segments belong to that timeline.  On a solo net
     this is the historical immediate-call / schedule_at behaviour. *)
  Net.schedule_at_node net src ~at:begin_at kickoff;
  t

let set_fwd_route t route = t.fwd_route <- route

type debug = {
  cwnd_bytes : float;
  ssthresh_bytes : float;
  srtt_s : float;
  rto_s : float;
  in_recovery : bool;
  flight_bytes : int;
}

let debug t =
  {
    cwnd_bytes = t.cwnd;
    ssthresh_bytes = t.ssthresh;
    srtt_s = t.srtt;
    rto_s = effective_rto t;
    in_recovery = t.in_recovery;
    flight_bytes = flight t;
  }

let stop t =
  t.running <- false;
  cancel_timer t
