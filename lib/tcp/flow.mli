(** A NewReno-style TCP bulk flow over the simulated KAR network — the
    stand-in for the paper's iperf measurements.

    The model implements the mechanisms that matter for the paper's
    question (how does deflection-induced packet disorder hurt TCP):
    slow start, congestion avoidance, SACK (up to three blocks per ACK,
    RFC 6675-style loss inference, hole-directed retransmission), NewReno
    fast recovery on partial ACKs, DSACK-driven reordering adaptation
    (spurious retransmissions raise the duplicate threshold and undo their
    window reduction, like Linux's tcp_reordering metric), RTO with
    exponential backoff and Karn's algorithm, and cumulative ACKs from an
    out-of-order receive buffer — the feature set of the Linux stacks the
    paper's Mininet hosts ran.
    The sender has unlimited data (iperf-style); the receiver ACKs every
    data packet, so reordered arrivals produce duplicate ACKs exactly as a
    real stack would. *)

module Net = Netsim.Net
module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Karnet = Netsim.Karnet


module Z = Bignum.Z

(** Congestion-control algorithm: Reno AIMD or CUBIC (the Linux default of
    the paper's era; less aggressive backoff, time-based cubic growth). *)
type cc_algorithm =
  | Reno
  | Cubic

type config = {
  cc : cc_algorithm; (** default [Reno] *)
  mss : int; (** data bytes per segment (default 1460) *)
  header_bytes : int; (** L3/L4 header overhead per packet (default 40) *)
  initial_cwnd_segments : int; (** RFC 6928-style initial window (10) *)
  initial_ssthresh_segments : int; (** slow-start threshold at start (64) *)
  max_window_segments : int; (** receiver window cap (256) *)
  rto_initial_s : float; (** before the first RTT sample (1.0) *)
  rto_min_s : float; (** lower bound on the RTO (0.2) *)
  rto_max_s : float; (** backoff ceiling (60.0) *)
  ack_bytes : int; (** ACK packet size on the wire (40) *)
}

val default_config : config

(** Cumulative flow statistics. *)
type stats = {
  segments_sent : int;
  retransmissions : int;
  fast_retransmits : int;
  timeouts : int;
  acks_received : int;
  dupacks : int;
  bytes_acked : int; (** sender-side progress *)
  bytes_delivered : int; (** receiver-side in-order goodput *)
  reorder_events : int; (** data arrivals above the expected sequence *)
  max_reorder_gap : int; (** largest (arrived - expected) gap in segments *)
  spurious_rexmits : int; (** retransmissions proven unnecessary by DSACK *)
  dupthresh : int; (** adapted duplicate-ACK threshold (starts at 3) *)
}

type t

(** [start ~net ~id ~src ~dst ~fwd_route ~rev_route ~sampler ()] creates
    sender state at edge [src] and receiver state at edge [dst], and begins
    transmitting at time [at] (default: now).  Data packets carry
    [fwd_route]; ACKs carry [rev_route].  In-order deliveries are credited
    to [sampler].  The flow must be registered in a {!Stack} that owns the
    two edge nodes before any packet arrives. *)
val start :
  net:Net.t ->
  id:int ->
  src:Topo.Graph.node ->
  dst:Topo.Graph.node ->
  fwd_route:Z.t ->
  rev_route:Z.t ->
  ?config:config ->
  ?sampler:Sampler.t ->
  ?at:float ->
  unit ->
  t

val id : t -> int
val stats : t -> stats

(** [stop f] halts transmission (pending timers are cancelled); in-flight
    packets still drain. *)
val stop : t -> unit

(** [set_fwd_route f route_id] changes the route ID stamped on subsequent
    data segments — the control-plane reroute action of the
    controller-notification baseline. *)
val set_fwd_route : t -> Z.t -> unit

(** Live congestion-control state, for debugging and the examples'
    commentary output. *)
type debug = {
  cwnd_bytes : float;
  ssthresh_bytes : float;
  srtt_s : float;
  rto_s : float;
  in_recovery : bool;
  flight_bytes : int;
}

val debug : t -> debug

(** Internal entry points used by {!Stack} when packets reach the edges. *)

val handle_data : t -> Net.t -> seq:int -> unit
val handle_ack :
  t -> Net.t -> ackno:int -> sacks:(int * int) list -> dsack:(int * int) option -> unit

(** Payload constructors (exposed for the packet-level tests). *)
type Packet.payload += Data of { flow : int; seq : int }

type Packet.payload +=
  | Ack of {
      flow : int;
      ackno : int;
      sacks : (int * int) list;
      dsack : (int * int) option;
    }
        (** cumulative ACK plus up to three SACK blocks [lo, hi) and an
            optional duplicate-arrival report (DSACK, RFC 2883) *)
