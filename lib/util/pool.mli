(** Fixed-size domain pool for the experiment layer.

    Every sweep in the evaluation (replications, failure pairs, sampled
    failure sets, generated graphs, ablation scenarios) is a map over an
    array of independent units of work.  [map] runs such an array on a
    fixed set of OCaml 5 domains while preserving three properties the
    experiments depend on:

    - {b order}: the result array matches the input array index for
      index, whatever order tasks actually executed in;
    - {b determinism}: tasks receive only their index and element; any
      randomness must come from a per-task {!Prng} stream derived {e
      before} dispatch (see {!Prng.split_n}), so output is byte-identical
      at any pool size;
    - {b failure transparency}: a raising task aborts the map with
      {!Task_failed} carrying the task's index and original exception,
      and the pool remains usable afterwards.

    Tasks are claimed one at a time from a shared atomic counter (the
    idle domains steal whatever work remains), so uneven task costs
    balance automatically.  A pool of [jobs = 1] spawns no domains and
    [map] degenerates to a plain serial loop.  Calling [map] from inside
    a task (nested parallelism) is detected and falls back to the serial
    loop rather than deadlocking. *)

type t

(** Raised by {!map} when a task raised: [index] is the position of the
    failing element, [exn] the original exception.  At most one failure
    is reported (the first one recorded); remaining unclaimed tasks are
    skipped. *)
exception Task_failed of { index : int; exn : exn }

(** [create ~jobs] spawns [jobs - 1] worker domains (the caller of
    {!map} is the [jobs]-th worker).  [jobs >= 1]. *)
val create : jobs:int -> t

(** Parallelism of the pool, including the calling domain. *)
val jobs : t -> int

(** [map t input ~f] is [[| f ~idx:0 input.(0); ... |]], computed on the
    pool's domains.  [f] must not depend on shared mutable state.
    @raise Task_failed if any task raises. *)
val map : t -> 'a array -> f:(idx:int -> 'a -> 'b) -> 'b array

(** Terminates and joins the worker domains.  Idempotent.  Must not run
    concurrently with a [map] on the same pool.  A subsequent [map] on a
    shut-down pool runs serially on the caller. *)
val shutdown : t -> unit

(** {1 Persistent worker teams}

    A {!Team.t} complements {!map}: instead of stealing tasks from an
    array, every member runs the {e same} function with its fixed member
    index — the shape a conservative parallel simulation needs, where
    member [w] always drives the same partition regions between epoch
    barriers.  Members are persistent domains parked between sections, so
    a barrier costs condition-variable round-trips, not domain spawns. *)

module Team : sig
  type t

  (** [create ~size] spawns [size - 1] member domains; the caller of
      {!run} acts as member [0].  [size >= 1] (a team of 1 spawns
      nothing and {!run} degenerates to a plain call). *)
  val create : size:int -> t

  (** Members in the team, including the calling domain. *)
  val size : t -> int

  (** [run t f] executes [f 0 .. f (size-1)] concurrently, one call per
      member, and returns when all have finished.  If any call raised,
      the first recorded exception is re-raised in the caller after the
      barrier (the caller's own exception wins ties).  Must not be
      called re-entrantly or concurrently on the same team. *)
  val run : t -> (int -> unit) -> unit

  (** Terminates and joins the member domains.  Idempotent. *)
  val shutdown : t -> unit
end

(** {1 The shared pool}

    The experiment layer runs on one process-wide pool so a single
    [-j]/[KAR_JOBS] setting governs the whole evaluation. *)

(** [KAR_JOBS] when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]; capped at 16. *)
val default_jobs : unit -> int

(** [set_jobs n] replaces the shared pool with one of [n] jobs (clamped
    to [1..16]).  Called once at startup by the CLI [-j] flag; must not
    race a [run] in flight. *)
val set_jobs : int -> unit

(** Parallelism of the shared pool ({!default_jobs} if none exists yet). *)
val current_jobs : unit -> int

(** [run input ~f] is {!map} on the shared pool, creating it on first
    use (workers are joined at exit). *)
val run : 'a array -> f:(idx:int -> 'a -> 'b) -> 'b array
