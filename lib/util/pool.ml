exception Task_failed of { index : int; exn : exn }

(* One map in flight.  Tasks are claimed by fetch-and-add on [next]; a
   worker that drew an index past [total] is done with this job.  [gen]
   distinguishes successive jobs so a worker never re-enters one it
   already drained. *)
type job = {
  gen : int;
  total : int;
  next : int Atomic.t;
  run_task : int -> unit; (* never raises: failures are recorded inside *)
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t; (* workers wait here for the next job *)
  idle : Condition.t; (* the caller waits here for stragglers *)
  mutable current : job option;
  mutable running : int; (* workers currently draining [current] *)
  mutable gen : int;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
}

(* True while this domain is executing a pool task: a [map] issued from
   such a context would deadlock waiting on workers that are themselves
   inside tasks, so it falls back to the serial loop instead. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let drain job =
  let rec go () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.total then begin
      job.run_task i;
      go ()
    end
  in
  go ()

let worker t =
  Domain.DLS.set in_task true;
  let last = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock t.mutex;
    let job = ref None in
    while
      (not t.stopping)
      &&
      match t.current with
      | Some j when j.gen <> !last ->
        job := Some j;
        false
      | _ ->
        Condition.wait t.work t.mutex;
        true
    do
      ()
    done;
    match !job with
    | None ->
      Mutex.unlock t.mutex;
      continue_ := false
    | Some j ->
      t.running <- t.running + 1;
      Mutex.unlock t.mutex;
      drain j;
      Mutex.lock t.mutex;
      t.running <- t.running - 1;
      if t.running = 0 then Condition.signal t.idle;
      Mutex.unlock t.mutex;
      last := j.gen
  done

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      current = None;
      running = 0;
      gen = 0;
      stopping = false;
      workers = [];
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  let to_join = if t.stopping then [] else t.workers in
  t.stopping <- true;
  t.workers <- [];
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join to_join

let serial_map input ~f =
  let n = Array.length input in
  let task i =
    try f ~idx:i input.(i)
    with exn -> raise (Task_failed { index = i; exn })
  in
  if n = 0 then [||]
  else begin
    let out = Array.make n (task 0) in
    for i = 1 to n - 1 do
      out.(i) <- task i
    done;
    out
  end

let map t input ~f =
  let n = Array.length input in
  if n <= 1 || t.jobs = 1 || t.stopping || Domain.DLS.get in_task then
    serial_map input ~f
  else begin
    let results = Array.make n None in
    let failed = Atomic.make None in
    let next = Atomic.make 0 in
    let run_task i =
      match f ~idx:i input.(i) with
      | r -> results.(i) <- Some r
      | exception exn ->
        ignore (Atomic.compare_and_set failed None (Some (i, exn)));
        (* Stop further claims; tasks already claimed finish normally.
           [total] is the least value no claim can start from, so no
           index is ever handed out twice. *)
        Atomic.set next n
    in
    Mutex.lock t.mutex;
    t.gen <- t.gen + 1;
    let job = { gen = t.gen; total = n; next; run_task } in
    t.current <- Some job;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (* The caller is a worker too. *)
    Domain.DLS.set in_task true;
    drain job;
    Domain.DLS.set in_task false;
    Mutex.lock t.mutex;
    while t.running > 0 do
      Condition.wait t.idle t.mutex
    done;
    t.current <- None;
    Mutex.unlock t.mutex;
    match Atomic.get failed with
    | Some (index, exn) -> raise (Task_failed { index; exn })
    | None ->
      Array.map (function Some v -> v | None -> assert false) results
  end

(* --- persistent worker team (barrier-style parallel sections) --- *)

module Team = struct
  (* Unlike [map] above (task stealing over an array), a team runs ONE
     function on every member with the member's fixed index — the shape a
     conservative parallel simulation needs: member [w] always drives the
     same regions, and the caller (member 0) participates.  The members are
     persistent domains parked on a condition variable between sections,
     so an epoch barrier costs two mutex round-trips, not a domain spawn. *)
  type t = {
    size : int;
    mutex : Mutex.t;
    work : Condition.t;
    done_ : Condition.t;
    mutable gen : int;
    mutable fn : int -> unit;
    mutable remaining : int; (* members still inside the current section *)
    mutable failed : exn option; (* first member failure, re-raised by run *)
    mutable stopping : bool;
    mutable members : unit Domain.t list;
  }

  let member t w =
    Domain.DLS.set in_task true;
    let last = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      Mutex.lock t.mutex;
      while (not t.stopping) && t.gen = !last do
        Condition.wait t.work t.mutex
      done;
      if t.stopping then begin
        Mutex.unlock t.mutex;
        continue_ := false
      end
      else begin
        last := t.gen;
        Mutex.unlock t.mutex;
        (try t.fn w
         with exn ->
           Mutex.lock t.mutex;
           if t.failed = None then t.failed <- Some exn;
           Mutex.unlock t.mutex);
        Mutex.lock t.mutex;
        t.remaining <- t.remaining - 1;
        if t.remaining = 0 then Condition.signal t.done_;
        Mutex.unlock t.mutex
      end
    done

  let create ~size =
    if size < 1 then invalid_arg "Pool.Team.create: size must be >= 1";
    let t =
      {
        size;
        mutex = Mutex.create ();
        work = Condition.create ();
        done_ = Condition.create ();
        gen = 0;
        fn = ignore;
        remaining = 0;
        failed = None;
        stopping = false;
        members = [];
      }
    in
    t.members <-
      List.init (size - 1) (fun i -> Domain.spawn (fun () -> member t (i + 1)));
    t

  let size t = t.size

  let run t f =
    if t.stopping then invalid_arg "Pool.Team.run: team is shut down";
    if t.size = 1 then f 0
    else begin
      Mutex.lock t.mutex;
      t.fn <- f;
      t.failed <- None;
      t.remaining <- t.size - 1;
      t.gen <- t.gen + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      let caller_exn = (try f 0; None with exn -> Some exn) in
      Mutex.lock t.mutex;
      while t.remaining > 0 do
        Condition.wait t.done_ t.mutex
      done;
      let member_exn = t.failed in
      Mutex.unlock t.mutex;
      match (caller_exn, member_exn) with
      | Some exn, _ | None, Some exn -> raise exn
      | None, None -> ()
    end

  let shutdown t =
    Mutex.lock t.mutex;
    let to_join = if t.stopping then [] else t.members in
    t.stopping <- true;
    t.members <- [];
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join to_join
end

(* --- the shared pool --- *)

let max_jobs = 16

let default_jobs () =
  let requested =
    match Sys.getenv_opt "KAR_JOBS" with
    | None -> None
    | Some s ->
      (match int_of_string_opt (String.trim s) with
       | Some n when n >= 1 -> Some n
       | Some _ | None -> None)
  in
  match requested with
  | Some n -> min n max_jobs
  | None -> min (Domain.recommended_domain_count ()) max_jobs

let shared : t option ref = ref None
let at_exit_registered = ref false

let register_cleanup () =
  if not !at_exit_registered then begin
    at_exit_registered := true;
    at_exit (fun () ->
        match !shared with
        | Some p ->
          shared := None;
          shutdown p
        | None -> ())
  end

let shared_pool () =
  match !shared with
  | Some p -> p
  | None ->
    let p = create ~jobs:(default_jobs ()) in
    shared := Some p;
    register_cleanup ();
    p

let set_jobs n =
  let n = max 1 (min n max_jobs) in
  (match !shared with
   | Some p when jobs p = n -> ()
   | existing ->
     (match existing with Some p -> shutdown p | None -> ());
     shared := Some (create ~jobs:n);
     register_cleanup ())

let current_jobs () =
  match !shared with Some p -> p.jobs | None -> default_jobs ()

let run input ~f = map (shared_pool ()) input ~f
