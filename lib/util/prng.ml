type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)

let next g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let seed = next g in
  create (mix (Int64.add seed 0x8E38C9A939FF7CB1L))

let split_n g n =
  if n < 0 then invalid_arg "Prng.split_n: n must be >= 0";
  if n = 0 then [||]
  else begin
    (* Explicit ascending loop: the parent must advance exactly as [n]
       successive [split]s would, independent of evaluation-order
       subtleties. *)
    let a = Array.make n (split g) in
    for i = 1 to n - 1 do
      a.(i) <- split g
    done;
    a
  end

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Reject to avoid modulo bias; bound is tiny in practice, so the
     rejection loop terminates almost immediately. *)
  let mask_bits v =
    let rec go m = if m >= v then m else go ((m * 2) + 1) in
    go 1
  in
  let m = mask_bits (bound - 1) in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (next g) 0x7FFFFFFFFFFFFFFFL) land m in
    if v < bound then v else draw ()
  in
  if bound = 1 then 0 else draw ()

let float g =
  let bits = Int64.shift_right_logical (next g) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool g = Int64.logand (next g) 1L = 1L

let exponential g ~mean =
  let u = float g in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let choice g arr =
  if Array.length arr = 0 then invalid_arg "Prng.choice: empty array";
  arr.(int g (Array.length arr))

let choice_list g l =
  match l with
  | [] -> invalid_arg "Prng.choice_list: empty list"
  | _ -> List.nth l (int g (List.length l))

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
