let render ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> width.(i) <- max width.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 256 in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < cols - 1 then
          Buffer.add_string buf (String.make (width.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit header;
  let rule_len =
    Array.fold_left ( + ) 0 width + (2 * (cols - 1))
  in
  Buffer.add_string buf (String.make (max 1 rule_len) '-');
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let render_kv pairs =
  let rows = List.map (fun (k, v) -> [ k; v ]) pairs in
  match pairs with
  | [] -> ""
  | _ ->
    let key_width =
      List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs
    in
    let buf = Buffer.create 128 in
    List.iter
      (fun row ->
        match row with
        | [ k; v ] ->
          Buffer.add_string buf k;
          Buffer.add_string buf (String.make (key_width - String.length k) ' ');
          Buffer.add_string buf "  ";
          Buffer.add_string buf v;
          Buffer.add_char buf '\n'
        | _ -> assert false)
      rows;
    Buffer.contents buf

let spark_levels = [| " "; "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let spark values =
  match values with
  | [] -> ""
  | _ ->
    let hi = List.fold_left Stdlib.max neg_infinity values in
    let hi = if hi <= 0.0 then 1.0 else hi in
    let buf = Buffer.create (List.length values * 3) in
    List.iter
      (fun v ->
        let lvl =
          int_of_float (Float.round (v /. hi *. 8.0)) |> Stdlib.max 0 |> Stdlib.min 8
        in
        Buffer.add_string buf spark_levels.(lvl))
      values;
    Buffer.contents buf

let series ~label ~t0 ~dt values =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "# %s\n" label);
  List.iteri
    (fun i v ->
      Buffer.add_string buf
        (Printf.sprintf "%8.1f  %10.2f\n" (t0 +. (float_of_int i *. dt)) v))
    values;
  Buffer.contents buf

let bar_chart rows =
  match rows with
  | [] -> ""
  | _ ->
    let label_width =
      List.fold_left (fun acc (l, _, _) -> max acc (String.length l)) 0 rows
    in
    let hi = List.fold_left (fun acc (_, v, _) -> Stdlib.max acc v) 0.0 rows in
    let hi = if hi <= 0.0 then 1.0 else hi in
    let buf = Buffer.create 512 in
    List.iter
      (fun (label, v, ci) ->
        let bar_len = int_of_float (v /. hi *. 40.0) |> Stdlib.max 0 in
        Buffer.add_string buf
          (Printf.sprintf "%-*s  %s %8.2f +/- %.2f\n" label_width label
             (String.make bar_len '#') v ci))
      rows;
    Buffer.contents buf
