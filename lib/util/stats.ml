type summary = {
  n : int;
  mean : float;
  stddev : float;
  ci95 : float;
  min : float;
  max : float;
}

let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (List.length xs - 1))

(* Two-sided 95% Student-t critical values; index = degrees of freedom. *)
let t_table =
  [| nan; 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262;
     2.228; 2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093;
     2.086; 2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045;
     2.042 |]

let t_critical_95 df =
  if df <= 0 then invalid_arg "Stats.t_critical_95: df must be positive";
  if df < Array.length t_table then t_table.(df)
  else if df < 40 then 2.030
  else if df < 60 then 2.021
  else if df < 120 then 2.000
  else 1.960

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
    let n = List.length xs in
    let m = mean xs and sd = stddev xs in
    let ci95 = if n < 2 then 0.0 else t_critical_95 (n - 1) *. sd /. sqrt (float_of_int n) in
    {
      n;
      mean = m;
      stddev = sd;
      ci95;
      min = List.fold_left Stdlib.min infinity xs;
      max = List.fold_left Stdlib.max neg_infinity xs;
    }

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = List.sort Float.compare xs in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then arr.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)
  end

let percentile_nearest_rank p xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile_nearest_rank: empty";
  if p <= 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile_nearest_rank: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  (* nearest rank: the ceil(p/100 * n)-th smallest sample (1-based) *)
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let p50 xs = percentile_nearest_rank 50.0 xs
let p95 xs = percentile_nearest_rank 95.0 xs
let p99 xs = percentile_nearest_rank 99.0 xs

let histogram ~bins ~lo ~hi xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if hi <= lo then invalid_arg "Stats.histogram: hi must exceed lo";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  List.iter
    (fun x ->
      let idx = int_of_float ((x -. lo) /. width) in
      let idx = Stdlib.max 0 (Stdlib.min (bins - 1) idx) in
      counts.(idx) <- counts.(idx) + 1)
    xs;
  counts

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f +/-%.2f (sd %.2f, min %.2f, max %.2f)"
    s.n s.mean s.ci95 s.stddev s.min s.max
