(** Small statistics toolkit for the experiment harness: the paper reports
    mean TCP throughput with 95 % confidence intervals over 30 iperf runs
    (Fig. 5/7); this module provides exactly those summaries. *)

type summary = {
  n : int;
  mean : float;
  stddev : float; (* sample standard deviation (n-1 denominator) *)
  ci95 : float; (* half-width of the 95 % Student-t confidence interval *)
  min : float;
  max : float;
}

(** [mean xs] of a non-empty list. *)
val mean : float list -> float

(** [stddev xs] sample standard deviation; 0 for fewer than two samples. *)
val stddev : float list -> float

(** [summarize xs] computes all summary fields.
    @raise Invalid_argument on the empty list. *)
val summarize : float list -> summary

(** [t_critical_95 df] is the two-sided 95 % Student-t critical value for
    [df] degrees of freedom (tabulated; converges to 1.96). *)
val t_critical_95 : int -> float

(** [percentile p xs] with [0 <= p <= 100], linear interpolation between
    order statistics.  @raise Invalid_argument on the empty list. *)
val percentile : float -> float list -> float

(** {2 Nearest-rank percentiles}

    The serving-layer metrics (latency p50/p95/p99) use the {e nearest-rank}
    definition: the [p]-th percentile of [n] samples is the
    [ceil (p/100 * n)]-th smallest — always an {e observed} sample, never an
    interpolated value, so a reported p99 is a latency some request actually
    saw.  The functions take the raw (unsorted) sample array and sort a
    private copy, so a metrics sink can accumulate samples in arrival order
    and summarise once at the end without maintaining sorted state. *)

(** [percentile_nearest_rank p xs] with [0 < p <= 100].
    @raise Invalid_argument on an empty array or [p] out of range. *)
val percentile_nearest_rank : float -> float array -> float

(** [p50 xs], [p95 xs], [p99 xs] are {!percentile_nearest_rank} at the three
    ranks every service report quotes. *)
val p50 : float array -> float

val p95 : float array -> float
val p99 : float array -> float

(** [histogram ~bins ~lo ~hi xs] counts samples per equal-width bin;
    out-of-range samples are clamped to the end bins. *)
val histogram : bins:int -> lo:float -> hi:float -> float list -> int array

val pp_summary : Format.formatter -> summary -> unit
