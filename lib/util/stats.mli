(** Small statistics toolkit for the experiment harness: the paper reports
    mean TCP throughput with 95 % confidence intervals over 30 iperf runs
    (Fig. 5/7); this module provides exactly those summaries. *)

type summary = {
  n : int;
  mean : float;
  stddev : float; (* sample standard deviation (n-1 denominator) *)
  ci95 : float; (* half-width of the 95 % Student-t confidence interval *)
  min : float;
  max : float;
}

(** [mean xs] of a non-empty list. *)
val mean : float list -> float

(** [stddev xs] sample standard deviation; 0 for fewer than two samples. *)
val stddev : float list -> float

(** [summarize xs] computes all summary fields.
    @raise Invalid_argument on the empty list. *)
val summarize : float list -> summary

(** [t_critical_95 df] is the two-sided 95 % Student-t critical value for
    [df] degrees of freedom (tabulated; converges to 1.96). *)
val t_critical_95 : int -> float

(** [percentile p xs] with [0 <= p <= 100], linear interpolation between
    order statistics.  @raise Invalid_argument on the empty list. *)
val percentile : float -> float list -> float

(** [histogram ~bins ~lo ~hi xs] counts samples per equal-width bin;
    out-of-range samples are clamped to the end bins. *)
val histogram : bins:int -> lo:float -> hi:float -> float list -> int array

val pp_summary : Format.formatter -> summary -> unit
