(** Deterministic pseudo-random number generation (SplitMix64).

    Every randomized component in the repository (deflection choices,
    topology generators, workload jitter) draws from an explicit [t] so that
    experiments are reproducible from a seed; no global or wall-clock state
    is used anywhere. *)

type t

(** [create seed] makes an independent stream from a 64-bit seed. *)
val create : int64 -> t

(** [of_int seed] is [create] from a native int. *)
val of_int : int -> t

(** [split g] derives a statistically independent child stream, advancing
    [g].  Used to give each simulated switch its own stream. *)
val split : t -> t

(** [split_n g n] derives [n] independent child streams, advancing [g]
    exactly as [n] successive {!split}s would.  Used to pre-derive one
    stream per unit of parallel work {e before} dispatch to a
    {!Pool}, so results are independent of execution order. *)
val split_n : t -> int -> t array

(** [next g] is the next raw 64-bit output. *)
val next : t -> int64

(** [int g bound] is uniform in [\[0, bound)].  [bound > 0]. *)
val int : t -> int -> int

(** [float g] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [bool g] is a fair coin. *)
val bool : t -> bool

(** [exponential g ~mean] samples an exponential duration. *)
val exponential : t -> mean:float -> float

(** [choice g arr] picks a uniform element.
    @raise Invalid_argument on an empty array. *)
val choice : t -> 'a array -> 'a

(** [choice_list g l] picks a uniform element of a non-empty list. *)
val choice_list : t -> 'a list -> 'a

(** [shuffle g arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
