(** ASCII rendering of tables and series, shared by the benchmark harness,
    the examples and EXPERIMENTS.md regeneration.  Keeps every experiment's
    output in the same row/series format the paper's tables and figures
    use. *)

(** [render ~header rows] lays out a left-aligned ASCII table with a rule
    under the header; column widths fit the widest cell. *)
val render : header:string list -> string list list -> string

(** [render_kv pairs] renders a two-column key/value table without a
    header. *)
val render_kv : (string * string) list -> string

(** [spark values] renders a one-line unicode sparkline scaled to
    [max values] (empty string for an empty list) — used to visualise
    throughput-versus-time figures in terminal output. *)
val spark : float list -> string

(** [series ~label ~t0 ~dt values] renders a labelled time series as
    aligned [time value] rows. *)
val series : label:string -> t0:float -> dt:float -> float list -> string

(** [bar_chart rows] renders labelled horizontal bars with values, scaled to
    the maximum value; each row is [(label, value, ci_halfwidth)] and the CI
    is printed alongside. *)
val bar_chart : (string * float * float) list -> string
