(** Low-level arbitrary-precision natural-number arithmetic.

    A natural number is stored as an [int array] of limbs in little-endian
    order, base [2^31].  The canonical form has no trailing zero limbs; zero
    is the empty array.  All functions expect canonical inputs and produce
    canonical outputs.  This module is the magnitude engine underneath
    {!Bignum.Z}; most users should use {!Bignum.Z} instead. *)

(** Number of value bits per limb (31). *)
val limb_bits : int

(** The limb base, [2^31]. *)
val base : int

(** The canonical representation of zero (the empty array). *)
val zero : int array

(** The canonical representation of one. *)
val one : int array

(** [is_zero a] is [true] iff [a] represents zero. *)
val is_zero : int array -> bool

(** [is_canonical a] checks limb bounds and the absence of trailing zeros.
    Intended for assertions and tests. *)
val is_canonical : int array -> bool

(** [normalize a] strips trailing zero limbs (returns a fresh array unless
    already canonical). *)
val normalize : int array -> int array

(** [of_int n] converts a non-negative native integer.
    @raise Invalid_argument if [n < 0]. *)
val of_int : int -> int array

(** [to_int_opt a] is [Some n] when [a] fits in a native [int]. *)
val to_int_opt : int array -> int option

(** Total order consistent with numeric value. *)
val compare : int array -> int array -> int

val equal : int array -> int array -> bool

(** [add a b] is [a + b]. *)
val add : int array -> int array -> int array

(** [sub a b] is [a - b].
    @raise Invalid_argument if [a < b]. *)
val sub : int array -> int array -> int array

(** [mul a b] is [a * b] (schoolbook below {!karatsuba_threshold},
    Karatsuba above it). *)
val mul : int array -> int array -> int array

(** Limb-count threshold above which {!mul} switches to Karatsuba. *)
val karatsuba_threshold : int

(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= r < b]
    (Knuth Algorithm D).
    @raise Division_by_zero if [b] is zero. *)
val divmod : int array -> int array -> int array * int array

(** [rem_int a s] is [a mod s] for a machine-int modulus [1 <= s < base],
    folding the limbs high-to-low with a precomputed [base mod s].  Unlike
    {!divmod} it builds no quotient and allocates nothing — this is the
    data-plane kernel behind [Rns.port_fast].
    @raise Invalid_argument when [s] is outside [\[1, base)]. *)
val rem_int : int array -> int -> int

(** {2 Byte-backed limb views}

    A magnitude can be stored inside a [Bytes.t] buffer as consecutive
    little-endian unsigned 32-bit words, one per 31-bit limb (the layout of
    the route-ID area in [Wire.Flat]).  The functions below read and write
    that view without materialising an [int array] and without boxing; the
    caller guarantees [pos + 4*limbs <= Bytes.length b]. *)

(** [blit_bytes a b ~pos] writes the limbs of [a] at byte offset [pos] and
    returns the limb count written.  The view is canonical iff [a] is. *)
val blit_bytes : int array -> Bytes.t -> pos:int -> int

(** [of_bytes b ~pos ~limbs] materialises a canonical magnitude from the
    view (normalising, and masking each word to 31 bits). *)
val of_bytes : Bytes.t -> pos:int -> limbs:int -> int array

(** [equal_bytes a b ~pos ~limbs] compares a canonical magnitude against a
    canonical byte view without allocating. *)
val equal_bytes : int array -> Bytes.t -> pos:int -> limbs:int -> bool

(** [rem_int_bytes b ~pos ~limbs s] is {!rem_int} over the byte view:
    the same high-to-low fold with precomputed [base mod s], the same
    0/1/2-limb fast paths, zero allocation.
    @raise Invalid_argument when [s] is outside [\[1, base)]. *)
val rem_int_bytes : Bytes.t -> pos:int -> limbs:int -> int -> int

(** [shift_left a k] is [a * 2^k].  [k >= 0]. *)
val shift_left : int array -> int -> int array

(** [shift_right a k] is [a / 2^k] (floor).  [k >= 0]. *)
val shift_right : int array -> int -> int array

(** [bit_length a] is the position of the highest set bit plus one;
    [bit_length zero = 0]. *)
val bit_length : int array -> int

(** [testbit a i] is bit [i] of [a] (false beyond {!bit_length}). *)
val testbit : int array -> int -> bool
