(** Arbitrary-precision signed integers.

    This is the arithmetic substrate for KAR route identifiers: a protected
    route ID is bounded by the product of all switch IDs folded into it
    (Eq. 1 of the paper), which exceeds the native [int] range as soon as a
    handful of protection switches are added (Table 1 reports 43 bits for
    ten switches; larger deployments go past 63 bits).

    Values are immutable.  The API mirrors the part of [zarith] the rest of
    the repository needs, so the library can be swapped out transparently in
    environments where [zarith] is available. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

(** [of_int n] converts a native integer exactly. *)
val of_int : int -> t

(** [to_int_opt a] is [Some n] iff [a] fits in a native [int]. *)
val to_int_opt : t -> int option

(** [to_int_exn a] converts, raising [Failure] when out of range. *)
val to_int_exn : t -> int

(** [sign a] is [-1], [0] or [1]. *)
val sign : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

(** [divmod a b] is truncated division: [(q, r)] with [a = q*b + r],
    [|r| < |b|] and [r] carrying the sign of [a] (OCaml's [/] and [mod]
    convention).
    @raise Division_by_zero if [b = zero]. *)
val divmod : t -> t -> t * t

val div : t -> t -> t

(** [rem a b] is the remainder of truncated division. *)
val rem : t -> t -> t

(** [erem a b] is the Euclidean remainder: always in [\[0, |b|)].  This is
    the [<a>_b] operation of the paper (Eq. 5). *)
val erem : t -> t -> t

(** [rem_int a s] is [to_int_exn (erem a (of_int s))] computed without the
    quotient: for [s < 2^31] it folds the limbs of [a] with a precomputed
    [2^31 mod s] in machine-int arithmetic and allocates nothing.  This is
    the per-packet forwarding kernel ([<R>_s], Eq. 1).  Requires [s > 0]. *)
val rem_int : t -> int -> int

(** {2 Byte-backed limb views}

    Mirrors of the {!Bignum.Nat} byte-view kernels for non-negative values:
    the route-ID area of a [Wire.Flat] packet buffer stores the canonical
    limbs as little-endian unsigned 32-bit words.  All four functions are
    allocation-free except {!of_limbs} (a boundary materialisation). *)

(** [limb_count a] is the number of 31-bit limbs in [|a|] (0 for zero). *)
val limb_count : t -> int

(** [blit_limbs a b ~pos] writes the limbs of [a] at byte offset [pos],
    returning the limb count.
    @raise Invalid_argument when [a < 0]. *)
val blit_limbs : t -> Bytes.t -> pos:int -> int

(** [of_limbs b ~pos ~limbs] materialises the (non-negative) value. *)
val of_limbs : Bytes.t -> pos:int -> limbs:int -> t

(** [rem_int_bytes b ~pos ~limbs s] is the forwarding kernel [<R>_s]
    directly over the byte view; equals [rem_int (of_limbs b ...) s].
    @raise Invalid_argument when [s] is outside [\[1, 2^31)]. *)
val rem_int_bytes : Bytes.t -> pos:int -> limbs:int -> int -> int

(** [equal_limbs a b ~pos ~limbs] compares without materialising; [false]
    for negative [a]. *)
val equal_limbs : t -> Bytes.t -> pos:int -> limbs:int -> bool

val compare : t -> t -> int
val equal : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t
val is_zero : t -> bool

(** [shift_left a k] is [a * 2^k] ([a >= 0] required). *)
val shift_left : t -> int -> t

(** [shift_right a k] is [a / 2^k] (floor; [a >= 0] required). *)
val shift_right : t -> int -> t

(** [bit_length a] is the bit length of [|a|]; [bit_length zero = 0]. *)
val bit_length : t -> int

(** [testbit a i] is bit [i] of [|a|]. *)
val testbit : t -> int -> bool

(** [gcd a b] is the non-negative greatest common divisor;
    [gcd zero zero = zero]. *)
val gcd : t -> t -> t

(** [egcd a b] is [(g, u, v)] with [g = gcd a b >= 0] and
    [a*u + b*v = g] (extended Euclid, Bezout coefficients). *)
val egcd : t -> t -> t * t * t

(** [invmod a m] is the modular multiplicative inverse of [a] modulo [m]
    (Eq. 7/8 of the paper), in [\[0, m)], or [None] when
    [gcd a m <> 1].  Requires [m > 0]. *)
val invmod : t -> t -> t option

(** [powmod b e m] is [b^e mod m] by square-and-multiply.
    Requires [e >= 0] and [m > 0]; result in [\[0, m)]. *)
val powmod : t -> t -> t -> t

(** [pow b k] is [b^k] for [k >= 0]. *)
val pow : t -> int -> t

(** Decimal rendering, with a leading ['-'] for negatives. *)
val to_string : t -> string

(** [of_string s] parses an optionally signed decimal string, or a
    hexadecimal one with a ["0x"] prefix.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit

(** Infix and literal-friendly shortcuts: [Z.(~$3 * route + ~$1)]. *)
val ( ~$ ) : int -> t

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( mod ) : t -> t -> t

(** Product of a list, [one] for the empty list (Eq. 1, the modulus [M]). *)
val product : t list -> t

val hash : t -> int
