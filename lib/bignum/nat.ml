let limb_bits = 31
let base = 1 lsl limb_bits
let mask = base - 1
let zero = [||]
let one = [| 1 |]
let is_zero a = Array.length a = 0

let is_canonical a =
  let n = Array.length a in
  let ok = ref (n = 0 || a.(n - 1) <> 0) in
  for i = 0 to n - 1 do
    if a.(i) < 0 || a.(i) >= base then ok := false
  done;
  !ok

let normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Nat.of_int: negative";
  if n = 0 then zero
  else if n < base then [| n |]
  else begin
    (* A 63-bit OCaml int needs at most three 31-bit limbs. *)
    let l0 = n land mask in
    let l1 = (n lsr limb_bits) land mask in
    let l2 = n lsr (2 * limb_bits) in
    normalize [| l0; l1; l2 |]
  end

let to_int_opt a =
  match Array.length a with
  | 0 -> Some 0
  | 1 -> Some a.(0)
  | 2 -> Some (a.(0) lor (a.(1) lsl limb_bits))
  | 3 when a.(2) < 1 lsl (Sys.int_size - 1 - (2 * limb_bits)) ->
    Some (a.(0) lor (a.(1) lsl limb_bits) lor (a.(2) lsl (2 * limb_bits)))
  | _ -> None

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let equal a b = compare a b = 0

let add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  assert (!carry = 0);
  normalize r

let sub a b =
  if compare a b < 0 then invalid_arg "Nat.sub: would be negative";
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let d = a.(i) - db - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  normalize r

let mul_schoolbook a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        (* ai*bj + r + carry <= (B-1)^2 + 2(B-1) = B^2 - 1 = 2^62 - 1: no
           overflow on 64-bit OCaml ints. *)
        let t = (ai * b.(j)) + r.(i + j) + !carry in
        r.(i + j) <- t land mask;
        carry := t lsr limb_bits
      done;
      r.(i + lb) <- r.(i + lb) + !carry
    done;
    normalize r
  end

let karatsuba_threshold = 32

(* Split [a] at limb index [k] into (low, high), both canonical. *)
let split_at a k =
  let n = Array.length a in
  if n <= k then (a, zero)
  else (normalize (Array.sub a 0 k), Array.sub a k (n - k))

let rec mul a b =
  let la = Array.length a and lb = Array.length b in
  if la < karatsuba_threshold || lb < karatsuba_threshold then
    mul_schoolbook a b
  else begin
    let k = (max la lb + 1) / 2 in
    let a0, a1 = split_at a k and b0, b1 = split_at b k in
    let z0 = mul a0 b0 in
    let z2 = mul a1 b1 in
    let z1 = sub (mul (add a0 a1) (add b0 b1)) (add z0 z2) in
    let shift_limbs x n =
      if is_zero x then zero
      else Array.append (Array.make n 0) x
    in
    add z0 (add (shift_limbs z1 k) (shift_limbs z2 (2 * k)))
  end

let shift_left a k =
  if k < 0 then invalid_arg "Nat.shift_left";
  if is_zero a || k = 0 then a
  else begin
    let limb_shift = k / limb_bits and bit_shift = k mod limb_bits in
    let la = Array.length a in
    let r = Array.make (la + limb_shift + 1) 0 in
    for i = 0 to la - 1 do
      let v = a.(i) lsl bit_shift in
      r.(i + limb_shift) <- r.(i + limb_shift) lor (v land mask);
      r.(i + limb_shift + 1) <- v lsr limb_bits
    done;
    normalize r
  end

let shift_right a k =
  if k < 0 then invalid_arg "Nat.shift_right";
  if is_zero a || k = 0 then a
  else begin
    let limb_shift = k / limb_bits and bit_shift = k mod limb_bits in
    let la = Array.length a in
    if limb_shift >= la then zero
    else begin
      let lr = la - limb_shift in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = a.(i + limb_shift) lsr bit_shift in
        let hi =
          if bit_shift = 0 || i + limb_shift + 1 >= la then 0
          else (a.(i + limb_shift + 1) lsl (limb_bits - bit_shift)) land mask
        in
        r.(i) <- lo lor hi
      done;
      normalize r
    end
  end

let bit_length a =
  let n = Array.length a in
  if n = 0 then 0
  else begin
    let top = a.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * limb_bits) + width top 0
  end

let testbit a i =
  if i < 0 then invalid_arg "Nat.testbit";
  let limb = i / limb_bits and bit = i mod limb_bits in
  limb < Array.length a && (a.(limb) lsr bit) land 1 = 1

(* Remainder-only reduction by a machine-int modulus: fold the limbs from
   most to least significant with a precomputed [base mod s].  No quotient
   array, no allocation — the loop is a tail recursion over machine ints.
   Overflow-safe for s < base: r, bm <= base - 2 and a.(i) <= base - 1, so
   r*bm + a.(i) <= (2^31-2)^2 + 2^31 - 1 < 2^62 - 1 = max_int. *)
let rem_int a s =
  if s <= 0 || s >= base then invalid_arg "Nat.rem_int: modulus out of range";
  match Array.length a with
  (* magnitudes up to two limbs fit in 62 bits: one machine division,
     skipping even the [base mod s] setup (route IDs of small deployments
     land here) *)
  | 0 -> 0
  | 1 -> Array.unsafe_get a 0 mod s
  | 2 ->
    ((Array.unsafe_get a 1 lsl limb_bits) lor Array.unsafe_get a 0) mod s
  | len ->
    let bm = base mod s in
    let rec fold i r =
      if i < 0 then r
      else fold (i - 1) (((r * bm) + Array.unsafe_get a i) mod s)
    in
    fold (len - 1) 0

(* --- byte-backed limb views ------------------------------------------

   The flat wire format (Wire.Flat) stores a magnitude as consecutive
   unsigned 32-bit little-endian words, one per 31-bit limb, inside a
   [Bytes.t] packet buffer.  The kernels below operate on that view
   without materialising an [int array]: reads are composed from four
   [Bytes.unsafe_get] byte loads (never [Bytes.get_int32_le], which boxes
   on 64-bit OCaml).  Callers guarantee [pos + 4*limbs <= length b]. *)

let get_u32 b pos =
  Char.code (Bytes.unsafe_get b pos)
  lor (Char.code (Bytes.unsafe_get b (pos + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (pos + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (pos + 3)) lsl 24)

let set_u32 b pos v =
  Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b (pos + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set b (pos + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))

let blit_bytes a b ~pos =
  let n = Array.length a in
  for i = 0 to n - 1 do
    set_u32 b (pos + (4 * i)) (Array.unsafe_get a i)
  done;
  n

let of_bytes b ~pos ~limbs =
  if limbs < 0 then invalid_arg "Nat.of_bytes: negative limb count";
  normalize (Array.init limbs (fun i -> get_u32 b (pos + (4 * i)) land mask))

(* top-level so the recursion compiles to a static call, not a heap-
   allocated closure — equal_bytes sits on the per-packet fast path *)
let rec equal_bytes_from a b pos i =
  i < 0 || (Array.unsafe_get a i = get_u32 b (pos + (4 * i)) && equal_bytes_from a b pos (i - 1))

let equal_bytes a b ~pos ~limbs =
  Array.length a = limbs && equal_bytes_from a b pos (limbs - 1)

(* Mirror of [rem_int] over the byte view, including the 0/1/2-limb fast
   paths (two limbs fit in 62 bits: one machine division). *)
let rem_int_bytes b ~pos ~limbs s =
  if s <= 0 || s >= base then
    invalid_arg "Nat.rem_int_bytes: modulus out of range";
  match limbs with
  | 0 -> 0
  | 1 -> get_u32 b pos mod s
  | 2 -> ((get_u32 b (pos + 4) lsl limb_bits) lor get_u32 b pos) mod s
  | len ->
    let bm = base mod s in
    let rec fold i r =
      if i < 0 then r
      else fold (i - 1) (((r * bm) + get_u32 b (pos + (4 * i))) mod s)
    in
    fold (len - 1) 0

(* Division of a canonical magnitude by a single limb [d]; returns the
   quotient and the remainder limb. *)
let divmod_limb a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl limb_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (normalize q, !rem)

(* Knuth TAOCP vol. 2 Algorithm D.  [a] has at least as many limbs as [b],
   and [b] has >= 2 limbs with a nonzero top limb. *)
let divmod_knuth a b =
  let n = Array.length b in
  (* D1: normalize so that the divisor's top limb has its high bit set. *)
  let rec leading_shift v acc =
    if v land (1 lsl (limb_bits - 1)) <> 0 then acc
    else leading_shift (v lsl 1) (acc + 1)
  in
  let s = leading_shift b.(n - 1) 0 in
  let u0 = shift_left a s and v = shift_left b s in
  let m = Array.length u0 - n in
  (* Working copy of the dividend with one extra top limb. *)
  let u = Array.make (Array.length u0 + 1) 0 in
  Array.blit u0 0 u 0 (Array.length u0);
  let q = Array.make (m + 1) 0 in
  let vtop = v.(n - 1) and vsnd = v.(n - 2) in
  for j = m downto 0 do
    (* D3: estimate the quotient digit. *)
    let num = (u.(j + n) lsl limb_bits) lor u.(j + n - 1) in
    let qhat = ref (num / vtop) and rhat = ref (num mod vtop) in
    let adjust = ref true in
    while !adjust do
      if !qhat >= base
         || !qhat * vsnd > (!rhat lsl limb_bits) lor u.(j + n - 2)
      then begin
        decr qhat;
        rhat := !rhat + vtop;
        if !rhat >= base then adjust := false
      end else adjust := false
    done;
    (* D4: multiply and subtract. *)
    let borrow = ref 0 and carry = ref 0 in
    for i = 0 to n - 1 do
      let p = (!qhat * v.(i)) + !carry in
      carry := p lsr limb_bits;
      let d = u.(i + j) - (p land mask) - !borrow in
      if d < 0 then begin
        u.(i + j) <- d + base;
        borrow := 1
      end else begin
        u.(i + j) <- d;
        borrow := 0
      end
    done;
    let d = u.(j + n) - !carry - !borrow in
    (* D5/D6: if the subtraction went negative, add the divisor back. *)
    if d < 0 then begin
      u.(j + n) <- d + base;
      decr qhat;
      let carry2 = ref 0 in
      for i = 0 to n - 1 do
        let sum = u.(i + j) + v.(i) + !carry2 in
        u.(i + j) <- sum land mask;
        carry2 := sum lsr limb_bits
      done;
      u.(j + n) <- (u.(j + n) + !carry2) land mask
    end else u.(j + n) <- d;
    q.(j) <- !qhat
  done;
  let r = shift_right (normalize (Array.sub u 0 n)) s in
  (normalize q, r)

let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then (zero, a)
  else if Array.length b = 1 then begin
    let q, r = divmod_limb a b.(0) in
    (q, if r = 0 then zero else [| r |])
  end
  else divmod_knuth a b
