type t = {
  sign : int; (* -1, 0 or 1; 0 iff mag is empty *)
  mag : int array; (* canonical Nat magnitude *)
}

let mk sign mag =
  if Nat.is_zero mag then { sign = 0; mag = Nat.zero } else { sign; mag }

let zero = { sign = 0; mag = Nat.zero }
let one = { sign = 1; mag = Nat.one }
let two = { sign = 1; mag = [| 2 |] }
let minus_one = { sign = -1; mag = Nat.one }

let of_int n =
  if n = 0 then zero
  else if n > 0 then { sign = 1; mag = Nat.of_int n }
  else if n = min_int then
    (* [-min_int] overflows; build from the magnitude of [min_int + 1]. *)
    { sign = -1; mag = Nat.add (Nat.of_int max_int) Nat.one }
  else { sign = -1; mag = Nat.of_int (-n) }

let min_int_magnitude = Nat.shift_left Nat.one (Sys.int_size - 1)

let to_int_opt a =
  match Nat.to_int_opt a.mag with
  | Some m -> Some (if a.sign < 0 then -m else m)
  | None ->
    (* |min_int| exceeds max_int, so the magnitude alone does not fit; the
       value still does when negative. *)
    if a.sign < 0 && Nat.equal a.mag min_int_magnitude then Some min_int else None

let to_int_exn a =
  match to_int_opt a with
  | Some n -> n
  | None -> failwith "Z.to_int_exn: out of native int range"

let sign a = a.sign
let is_zero a = a.sign = 0
let neg a = mk (-a.sign) a.mag
let abs a = mk (if a.sign = 0 then 0 else 1) a.mag

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then mk a.sign (Nat.add a.mag b.mag)
  else begin
    let c = Nat.compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then mk a.sign (Nat.sub a.mag b.mag)
    else mk b.sign (Nat.sub b.mag a.mag)
  end

let sub a b = add a (neg b)
let mul a b = mk (a.sign * b.sign) (Nat.mul a.mag b.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = Nat.divmod a.mag b.mag in
  (mk (a.sign * b.sign) q, mk a.sign r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let erem a b =
  let r = rem a b in
  if r.sign >= 0 then r else add r (abs b)

(* Euclidean remainder by a small positive machine int, without going
   through [divmod]: for s < Nat.base this is a single limb fold with no
   allocation at all (the KAR data-plane operation, paper Eq. 1).  Larger
   moduli fall back to the generic [erem]. *)
let rem_int a s =
  if s <= 0 then invalid_arg "Z.rem_int: modulus must be positive";
  if s < Nat.base then begin
    let r = Nat.rem_int a.mag s in
    if a.sign >= 0 || r = 0 then r else s - r
  end
  else
    match to_int_opt (erem a (of_int s)) with
    | Some r -> r
    | None -> assert false (* 0 <= r < s <= max_int *)

(* Byte-backed limb views (Wire.Flat route-ID area): non-negative values
   only, stored as the canonical Nat limbs in LE u32 words. *)

let limb_count a = Array.length a.mag

let blit_limbs a b ~pos =
  if a.sign < 0 then invalid_arg "Z.blit_limbs: negative";
  Nat.blit_bytes a.mag b ~pos

let of_limbs b ~pos ~limbs = mk 1 (Nat.of_bytes b ~pos ~limbs)

let rem_int_bytes b ~pos ~limbs s = Nat.rem_int_bytes b ~pos ~limbs s

let equal_limbs a b ~pos ~limbs =
  a.sign >= 0 && Nat.equal_bytes a.mag b ~pos ~limbs

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then Nat.compare a.mag b.mag
  else Nat.compare b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let shift_left a k =
  if a.sign < 0 then invalid_arg "Z.shift_left: negative";
  mk a.sign (Nat.shift_left a.mag k)

let shift_right a k =
  if a.sign < 0 then invalid_arg "Z.shift_right: negative";
  mk a.sign (Nat.shift_right a.mag k)

let bit_length a = Nat.bit_length a.mag
let testbit a i = Nat.testbit a.mag i

let rec gcd_mag a b = if Nat.is_zero b then a else gcd_mag b (snd (Nat.divmod a b))

let gcd a b =
  if Nat.compare a.mag b.mag >= 0 then mk 1 (gcd_mag a.mag b.mag)
  else mk 1 (gcd_mag b.mag a.mag)

let egcd a b =
  (* Iterative extended Euclid on signed values; maintains
     r = a*u + b*v for both tracked rows. *)
  let rec go r0 u0 v0 r1 u1 v1 =
    if is_zero r1 then (r0, u0, v0)
    else begin
      let q, r2 = divmod r0 r1 in
      go r1 u1 v1 r2 (sub u0 (mul q u1)) (sub v0 (mul q v1))
    end
  in
  let g, u, v = go a one zero b zero one in
  if g.sign < 0 then (neg g, neg u, neg v) else (g, u, v)

let invmod a m =
  if compare m zero <= 0 then invalid_arg "Z.invmod: modulus must be positive";
  let g, u, _ = egcd (erem a m) m in
  if equal g one then Some (erem u m) else None

let powmod b e m =
  if compare m zero <= 0 then invalid_arg "Z.powmod: modulus must be positive";
  if e.sign < 0 then invalid_arg "Z.powmod: negative exponent";
  let rec go acc b e =
    if is_zero e then acc
    else begin
      let acc = if testbit e 0 then erem (mul acc b) m else acc in
      go acc (erem (mul b b) m) (shift_right e 1)
    end
  in
  go (erem one m) (erem b m) e

let pow b k =
  if k < 0 then invalid_arg "Z.pow: negative exponent";
  let rec go acc b k =
    if k = 0 then acc
    else begin
      let acc = if k land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (k lsr 1)
    end
  in
  go one b k

(* Decimal I/O goes through chunks of 10^9 (which fits in one limb). *)
let decimal_chunk = 1_000_000_000
let decimal_chunk_digits = 9

let to_string a =
  if a.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec chunks mag acc =
      if Nat.is_zero mag then acc
      else begin
        let q, r = Nat.divmod mag [| decimal_chunk |] in
        let r = match Nat.to_int_opt r with Some n -> n | None -> assert false in
        chunks q (r :: acc)
      end
    in
    (match chunks a.mag [] with
     | [] -> assert false
     | first :: rest ->
       if a.sign < 0 then Buffer.add_char buf '-';
       Buffer.add_string buf (string_of_int first);
       List.iter
         (fun c -> Buffer.add_string buf (Printf.sprintf "%0*d" decimal_chunk_digits c))
         rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Z.of_string: empty string";
  let negative, start =
    match s.[0] with
    | '-' -> (true, 1)
    | '+' -> (false, 1)
    | _ -> (false, 0)
  in
  if start >= len then invalid_arg "Z.of_string: no digits";
  let hex = len - start > 2 && s.[start] = '0' && (s.[start + 1] = 'x' || s.[start + 1] = 'X') in
  let digit_start = if hex then start + 2 else start in
  if digit_start >= len then invalid_arg "Z.of_string: no digits";
  let radix = if hex then of_int 16 else of_int 10 in
  let value = ref zero in
  for i = digit_start to len - 1 do
    let c = s.[i] in
    if c <> '_' then begin
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' when hex -> 10 + Char.code c - Char.code 'a'
        | 'A' .. 'F' when hex -> 10 + Char.code c - Char.code 'A'
        | _ -> invalid_arg (Printf.sprintf "Z.of_string: bad character %C" c)
      in
      value := add (mul !value radix) (of_int d)
    end
  done;
  if negative then neg !value else !value

let pp ppf a = Format.pp_print_string ppf (to_string a)
let ( ~$ ) = of_int
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( mod ) = rem
let product l = List.fold_left mul one l

let hash a =
  let step acc limb = Stdlib.( + ) (Stdlib.( * ) acc 1_000_003) limb in
  Array.fold_left step a.sign a.mag
