module Net = Netsim.Net
module Engine = Netsim.Engine
module Graph = Topo.Graph
module Paths = Topo.Paths
module Nets = Topo.Nets

let plan_avoiding g plans link =
  List.find_opt
    (fun plan ->
      not (List.mem link (Paths.path_links g plan.Kar.Route.core_path)))
    plans

let arm net ~plans ~flow ~failure ~at ~duration ~reaction_s =
  let engine = Net.engine net in
  Net.schedule_failure net failure.Nets.link ~at ~duration;
  match plans with
  | [] -> invalid_arg "Edge_failover.arm: no plans"
  | primary :: _ ->
    (match plan_avoiding (Net.graph net) plans failure.Nets.link with
     | None -> ()
     | Some backup ->
       ignore
         (Engine.schedule_at engine (at +. reaction_s) (fun () ->
              Tcp.Flow.set_fwd_route flow backup.Kar.Route.route_id)));
    ignore
      (Engine.schedule_at engine (at +. duration) (fun () ->
           Tcp.Flow.set_fwd_route flow primary.Kar.Route.route_id))
