module Net = Netsim.Net
module Engine = Netsim.Engine
module Graph = Topo.Graph
module Paths = Topo.Paths
module Nets = Topo.Nets

let reroute_plan sc ~avoiding =
  let g = sc.Nets.graph in
  let usable l = l.Graph.id <> avoiding in
  match Paths.shortest_path g ~usable sc.Nets.ingress sc.Nets.egress with
  | None -> None
  | Some path ->
    (* interior core labels *)
    let rec interior acc = function
      | [] | [ _ ] -> List.rev acc
      | x :: rest -> interior (x :: acc) rest
    in
    (match path with
     | _ :: rest ->
       let core = interior [] rest in
       (match core with
        | [] -> None
        | _ ->
          let labels = List.map (Graph.label g) core in
          (match
             Kar.Route.of_labels g labels
               ~egress_label:(Graph.label g sc.Nets.egress)
           with
           | Ok plan -> Some plan.Kar.Route.route_id
           | Error _ -> None))
     | [] -> None)

let arm net ~scenario ~flow ~failure ~at ~duration ~notification_delay_s =
  let engine = Net.engine net in
  Net.schedule_failure net failure.Nets.link ~at ~duration;
  let original = (Kar.Controller.scenario_plan scenario Kar.Controller.Unprotected).Kar.Route.route_id in
  (match reroute_plan scenario ~avoiding:failure.Nets.link with
   | None -> ()
   | Some detour ->
     ignore
       (Engine.schedule_at engine (at +. notification_delay_s) (fun () ->
            Tcp.Flow.set_fwd_route flow detour)));
  ignore
    (Engine.schedule_at engine (at +. duration) (fun () ->
         Tcp.Flow.set_fwd_route flow original))
