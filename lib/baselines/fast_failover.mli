(** Stateful fast-failover baseline (OpenFlow 1.3 Fast Failover / MPLS FRR
    shaped, the paper's Table 2 comparators).

    Each switch holds a per-destination forwarding table with a primary and
    a precomputed backup output port; on a failed primary it switches
    locally to the backup with no control-plane round trip.  This is the
    "failure reaction within the network" alternative KAR argues against:
    it reacts as fast, but needs per-destination state in every core switch
    and gives no source control. *)

module Net = Netsim.Net
module Graph = Topo.Graph

(** [table_size g] is the number of per-switch entries the scheme installs
    (one per destination edge node) — the statefulness metric reported in
    the Table 2 reproduction. *)
val table_size : Graph.t -> int

(** [install net] replaces every core node's handler with the stateful
    fast-failover forwarder.  Primary ports follow shortest paths; the
    backup port is the neighbour with the best detour distance to the
    destination when the primary link is removed (no backup: drop). *)
val install : Net.t -> unit

(** [hops_between g src dst ~failed] is the hop count the scheme achieves
    between two edge nodes under the given failed links ([None] when
    disconnected or black-holed), for analytical comparison against KAR's
    {!Kar.Markov} results. *)
val hops_between :
  Graph.t -> Graph.node -> Graph.node -> failed:Graph.link_id list -> int option
