(** Controller-notification rerouting baseline: the classical SDN reaction
    the paper's introduction argues is too slow.

    The flow runs unprotected KAR with the {!Kar.Policy.No_deflection}
    data plane; when a link fails, the controller hears about it after a
    notification delay, recomputes a route avoiding the failed link, and
    re-stamps the ingress.  Packets sent between the failure and the
    re-stamp are lost — exactly the loss window KAR's deflections remove. *)

module Net = Netsim.Net

(** [reroute_plan sc ~avoiding] is the route ID of the shortest
    ingress-to-egress route that avoids the given link, or [None] when the
    graph disconnects (exposed for tests and debugging). *)
val reroute_plan :
  Topo.Nets.scenario -> avoiding:Topo.Graph.link_id -> Bignum.Z.t option

(** [arm net ~scenario ~flow ~failure ~at ~duration ~notification_delay_s]
    schedules the failure window on the network and the delayed controller
    reaction: at [at + notification_delay_s] the flow's forward route is
    replaced by a shortest route computed without the failed link, and at
    [at +. duration] (repair) the original route is restored. *)
val arm :
  Net.t ->
  scenario:Topo.Nets.scenario ->
  flow:Tcp.Flow.t ->
  failure:Topo.Nets.failure_case ->
  at:float ->
  duration:float ->
  notification_delay_s:float ->
  unit
