module Net = Netsim.Net
module Packet = Netsim.Packet
module Graph = Topo.Graph
module Paths = Topo.Paths

let table_size g = List.length (Graph.edge_nodes g)

(* Primary port at [v] toward [dst]: first hop of a shortest path.  Backup:
   the neighbour (other than the primary) minimising detour distance to
   [dst] with the primary link removed. *)
let entries g v dst =
  match Paths.shortest_path g v dst with
  | None | Some [] | Some [ _ ] -> None
  | Some (_ :: next :: _) ->
    let primary =
      match Graph.port_towards g v next with
      | Some p -> p
      | None -> assert false
    in
    let primary_link = (Graph.link_at g v primary).Graph.id in
    let without_primary l = l.Graph.id <> primary_link in
    let dist, _ = Paths.bfs g ~usable:without_primary dst in
    let backup =
      List.fold_left
        (fun best (p, _, far) ->
          if p = primary then best
          else if dist.(far) = max_int then best
          else
            match best with
            | Some (_, best_d) when best_d <= dist.(far) + 1 -> best
            | _ -> Some (p, dist.(far) + 1))
        None (Graph.ports g v)
    in
    Some (primary, Option.map fst backup)

let install net =
  let g = Net.graph net in
  let dests = Graph.edge_nodes g in
  (* table.(v) : (dst, primary, backup option) list *)
  let table =
    Array.init (Graph.n_nodes g) (fun v ->
        if not (Graph.is_core g v) then []
        else
          List.filter_map
            (fun dst ->
              match entries g v dst with
              | None -> None
              | Some (primary, backup) -> Some (dst, primary, backup))
            dests)
  in
  List.iter
    (fun v ->
      let handler net _node (packet : Packet.t) ~in_port =
        ignore in_port;
        Packet.set_hops packet (Packet.hops packet + 1);
        if Packet.hops packet > Net.ttl net then Net.drop net packet Net.Ttl_exceeded
        else begin
          match
            List.find_opt (fun (dst, _, _) -> dst = Packet.dst packet) table.(v)
          with
          | None -> Net.drop net packet Net.No_route
          | Some (_, primary, backup) ->
            let usable p = Net.link_up net (Graph.link_at g v p).Graph.id in
            if usable primary then Net.send net ~from_node:v ~port:primary packet
            else begin
              match backup with
              | Some b when usable b ->
                (* local protection switchover, no controller involved *)
                Net.send net ~from_node:v ~port:b packet
              | Some _ | None -> Net.drop net packet Net.No_route
            end
        end
      in
      Net.set_node_handler net v handler)
    (Graph.core_nodes g)

let hops_between g src dst ~failed =
  (* Walk the deterministic primary/backup decisions. *)
  let link_ok id = not (List.mem id failed) in
  let rec step v from_count visited =
    if v = dst then Some from_count
    else if from_count > 4 * Graph.n_nodes g then None
    else if List.mem v visited then None
    else if not (Graph.is_core g v) then None
    else begin
      match entries g v dst with
      | None -> None
      | Some (primary, backup) ->
        let usable p = link_ok (Graph.link_at g v p).Graph.id in
        let choice =
          if usable primary then Some primary
          else
            match backup with
            | Some b when usable b -> Some b
            | Some _ | None -> None
        in
        (match choice with
         | None -> None
         | Some port ->
           let far = (Graph.other_end (Graph.link_at g v port) v).Graph.node in
           step far (from_count + 1) (v :: visited))
    end
  in
  (* enter the core via src's first healthy port *)
  let rec entry p =
    if p >= Graph.degree g src then None
    else begin
      let l = Graph.link_at g src p in
      if link_ok l.Graph.id then Some (Graph.other_end l src).Graph.node
      else entry (p + 1)
    end
  in
  match entry 0 with
  | None -> None
  | Some first -> step first 0 []
