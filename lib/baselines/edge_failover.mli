(** 1+1 ingress failover baseline: the source holds pre-planned
    edge-disjoint route IDs (via {!Kar.Controller.disjoint_plans}) and
    switches the flow to a backup as soon as it learns of the failure.

    This sits between KAR's deflections (zero reaction time, in-network)
    and controller rerouting (full control-plane round trip): the reaction
    is one failure-detection delay, and only the ingress acts.  KAR's
    advantage over it is that in-flight packets are saved too, and no
    per-flow machinery at the edge is needed. *)

module Net = Netsim.Net

(** [arm net ~plans ~flow ~failure ~at ~duration ~reaction_s] schedules the
    failure window and the ingress reaction: at [at + reaction_s] the flow
    is re-stamped with the first plan in [plans] whose path avoids the
    failed link (nothing happens if none does); on repair the original
    first plan is restored. *)
val arm :
  Net.t ->
  plans:Kar.Route.plan list ->
  flow:Tcp.Flow.t ->
  failure:Topo.Nets.failure_case ->
  at:float ->
  duration:float ->
  reaction_s:float ->
  unit

(** [plan_avoiding g plans link] is the first plan whose core path does not
    traverse [link] (exposed for tests). *)
val plan_avoiding :
  Topo.Graph.t -> Kar.Route.plan list -> Topo.Graph.link_id -> Kar.Route.plan option
