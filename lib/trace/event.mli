(** Flight-recorder events: one compact record per forwarding decision (and
    per packet lifecycle step), emitted by both the packet-level simulator
    ({!Netsim}) and the analytic walker ({!Kar.Walk}) so the two planes can
    be diffed event-for-event.

    The action taxonomy follows the paper's forwarding semantics: a switch
    either forwards by the modulo computation ([Forward]), picks a random
    healthy port because the computed one is unusable ([Deflect]), or — the
    driven-deflection case — forwards a {e previously deflected} packet by a
    residue that was folded into the route ID for protection ([Drive]).
    [Drive] versus [Forward] needs to know which switches carry residues;
    the recorder is configured with that set (see {!Recorder.create}). *)

type action =
  | Inject (** packet entered the network at an edge node *)
  | Forward (** computed port [R mod s], packet not previously deflected *)
  | Deflect of string
      (** random pick; the payload is the policy short name (hp/avp/nip) *)
  | Drive
      (** computed port of a protected switch, packet previously deflected
          — the paper's driven deflection (Eq. 4 residues) *)
  | Deliver (** consumed by the destination edge *)
  | Reencode (** stranded at a foreign edge; fresh route ID stamped *)
  | Drop of string (** reason slug: link_down/queue_full/no_route/ttl/... *)

type t = {
  seq : int; (** recorder-assigned global sequence number *)
  vtime : float; (** virtual time (netsim) or hop index (walker) *)
  uid : int; (** packet uid *)
  switch : int; (** node label where the event happened; [-1] = on-wire *)
  in_port : int; (** arrival port; [-1] for local injection / unknown *)
  out_port : int; (** selected output port; [-1] for terminal actions *)
  ttl : int; (** remaining hop budget after this event *)
  action : action;
}

(** [decision_action ~via_computed ~deflected ~protected_ ~policy] is the
    classification shared by Karnet and Walk: a random pick is a [Deflect];
    a modulo forward of a deflected packet at a protected switch is a
    [Drive]; everything else is a plain [Forward]. *)
val decision_action :
  via_computed:bool -> deflected:bool -> protected_:bool -> policy:string -> action

(** [is_decision e] is true for [Forward], [Deflect] and [Drive] — the
    events that constitute the switch-hop sequence of a packet. *)
val is_decision : t -> bool

(** [is_terminal e] is true for [Deliver] and [Drop]. *)
val is_terminal : t -> bool

val action_to_string : action -> string
val pp : Format.formatter -> t -> unit

(** One-line JSON rendering, stable field order — the on-disk trace format
    ([--trace out.jsonl]) and the golden-fixture format. *)
val to_jsonl : t -> string

(** Strict parser for lines produced by {!to_jsonl}. *)
val of_jsonl : string -> (t, string) result
