type violation = { invariant : string; uid : int; detail : string }

let pp_violation ppf v =
  if v.uid >= 0 then
    Format.fprintf ppf "@[[%s] uid=%d: %s@]" v.invariant v.uid v.detail
  else Format.fprintf ppf "@[[%s] %s@]" v.invariant v.detail

(* A ttl value is header-consistent iff Wire.Header can encode it and
   decoding gives it back unchanged. Memoised: only 256 valid values. *)
let ttl_memo : (int, bool) Hashtbl.t = Hashtbl.create 16

let header_roundtrips ttl =
  match Hashtbl.find_opt ttl_memo ttl with
  | Some ok -> ok
  | None ->
      let ok =
        match Wire.Header.encode (Wire.Header.make ~ttl Bignum.Z.one) with
        | Error _ -> false
        | Ok bytes -> (
            match Wire.Header.decode bytes with
            | Ok (h, _) -> h.Wire.Header.ttl = ttl
            | Error _ -> false)
      in
      Hashtbl.add ttl_memo ttl ok;
      ok

let check ?(expect_delivery = false) ?(drained = false) ?(truncated = false)
    events =
  let events =
    List.stable_sort (fun a b -> compare a.Event.seq b.Event.seq) events
  in
  let violations = ref [] in
  let add invariant uid detail =
    violations := { invariant; uid; detail } :: !violations
  in
  (* Split into per-packet streams, preserving order. *)
  let streams : (int, Event.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let uids_rev = ref [] in
  List.iter
    (fun (e : Event.t) ->
      match Hashtbl.find_opt streams e.uid with
      | Some l -> l := e :: !l
      | None ->
          Hashtbl.add streams e.uid (ref [ e ]);
          uids_rev := e.uid :: !uids_rev)
    events;
  let uids = List.rev !uids_rev in
  let stream uid = List.rev !(Hashtbl.find streams uid) in
  (* (1) driven-loop, (2) conservation, (3) ttl, (5) delivery: one pass per
     packet stream. *)
  List.iter
    (fun uid ->
      let evs = stream uid in
      (* A ring-overwritten trace is a suffix: packets whose stream no
         longer starts at its [Inject] lost their prefix, so birth-counting
         checks (exactly-one inject, drain, delivery) are unsound for
         them.  The order-local checks (loop, ttl, fifo, at-most-one
         terminal) remain valid on any suffix. *)
      let prefix_lost =
        truncated
        && (match evs with
            | e :: _ -> e.Event.action <> Event.Inject
            | [] -> true)
      in
      let injects = ref 0 in
      let terminals = ref 0 in
      let after_terminal = ref false in
      let delivered = ref false in
      let driving = ref false in
      let driven_path = ref [] in
      let last_ttl = ref None in
      List.iter
        (fun (e : Event.t) ->
          if !terminals > 0 then after_terminal := true;
          (match e.action with
          | Event.Inject -> incr injects
          | Event.Deliver ->
              incr terminals;
              delivered := true
          | Event.Drop _ -> incr terminals
          | Event.Forward | Event.Deflect _ | Event.Drive | Event.Reencode ->
              ());
          (* driven-loop *)
          (match e.action with
          | Event.Drive ->
              if !driving && List.mem e.switch !driven_path then
                add "driven-loop" uid
                  (Printf.sprintf "switch %d revisited while driven (seq %d)"
                     e.switch e.seq);
              if not !driving then (
                driving := true;
                driven_path := [ e.switch ])
              else driven_path := e.switch :: !driven_path
          | Event.Forward ->
              if !driving then
                if List.mem e.switch !driven_path then
                  add "driven-loop" uid
                    (Printf.sprintf "switch %d revisited while driven (seq %d)"
                       e.switch e.seq)
                else driven_path := e.switch :: !driven_path
          | Event.Deflect _ ->
              (* a fresh deflection legitimately restarts the walk *)
              driving := false;
              driven_path := []
          | _ -> ());
          (* ttl over injection + decisions *)
          if e.action = Event.Inject || Event.is_decision e then (
            if not (header_roundtrips e.ttl) then
              add "ttl" uid
                (Printf.sprintf
                   "ttl %d not representable in Wire.Header (seq %d)" e.ttl
                   e.seq);
            (match !last_ttl with
            | Some prev when e.ttl >= prev ->
                add "ttl" uid
                  (Printf.sprintf "ttl not strictly decreasing: %d -> %d (seq %d)"
                     prev e.ttl e.seq)
            | _ -> ());
            last_ttl := Some e.ttl))
        evs;
      if !injects <> 1 && not prefix_lost then
        add "conservation" uid
          (Printf.sprintf "%d inject events (want exactly 1)" !injects);
      if !terminals > 1 then
        add "conservation" uid
          (Printf.sprintf "%d terminal events (want at most 1)" !terminals);
      if !after_terminal then
        add "conservation" uid "events recorded after terminal event";
      if drained && !terminals = 0 && not prefix_lost then
        add "conservation" uid "still in flight at drain";
      if expect_delivery && (not !delivered) && not prefix_lost then
        add "delivery" uid "packet not delivered")
    uids;
  (* (4) fifo: pair each send (out_port >= 0) with the packet's next event
     that has an arrival port; a queue (switch, out_port) must see arrival
     order match send order. Sequence numbers are assigned in processing
     order, so comparing them compares simulated time (with engine
     tie-breaking included). *)
  let channels : (int * int, (int * int * int) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun uid ->
      let rec pair = function
        | (a : Event.t) :: ((b : Event.t) :: _ as rest) ->
            (if a.out_port >= 0 && b.in_port >= 0 then
               let key = (a.switch, a.out_port) in
               let entry = (a.seq, b.seq, uid) in
               match Hashtbl.find_opt channels key with
               | Some l -> l := entry :: !l
               | None -> Hashtbl.add channels key (ref [ entry ]));
            pair rest
        | _ -> ()
      in
      pair (stream uid))
    uids;
  Hashtbl.iter
    (fun (switch, port) entries ->
      let sends =
        List.sort (fun (s1, _, _) (s2, _, _) -> compare s1 s2) !entries
      in
      let _ =
        List.fold_left
          (fun prev (_, arr, uid) ->
            (match prev with
            | Some (prev_arr, prev_uid) when arr < prev_arr ->
                add "fifo" uid
                  (Printf.sprintf
                     "overtook uid %d on queue (switch %d, port %d)" prev_uid
                     switch port)
            | _ -> ());
            Some (arr, uid))
          None sends
      in
      ())
    channels;
  List.rev !violations
