(** Trace replay and invariant checking.

    [check] replays a flight-recorder trace and verifies the five KAR
    simulation invariants:

    + {b driven-loop}: once a packet is driven (a [Drive] event), no switch
      repeats on its modulo-forwarded path until it is deflected again —
      the paper's loop-freedom claim for driven deflections (Eq. 4).
    + {b conservation}: every packet has exactly one [Inject], at most one
      terminal ([Deliver]/[Drop]), and no events after its terminal; with
      [~drained:true], every injected packet must have reached a terminal
      (injected = delivered + dropped, zero in flight).
    + {b ttl}: the remaining hop budget strictly decreases over the
      injection and every forwarding decision, and every recorded value is
      representable and round-trips through {!Wire.Header}.
    + {b fifo}: for each outgoing queue [(switch, out_port)], packets
      arrive at the next hop in the order they were sent.
    + {b delivery}: with [~expect_delivery:true], every injected packet has
      a [Deliver] event (the full-protection resilience claim, Fig. 5/7).

    The checker needs only the event list — no topology or plan — so it can
    run on a live recorder, a parsed JSONL file, or a synthetic trace. *)

type violation = {
  invariant : string; (** driven-loop | conservation | ttl | fifo | delivery *)
  uid : int; (** offending packet, [-1] if not packet-specific *)
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** [check ?expect_delivery ?drained ?truncated events] returns all
    violations found (empty list = trace is clean). Events may be given in
    any order; they are replayed by sequence number.

    [~truncated:true] declares the trace a suffix (the recorder ring
    overwrote older events): packets whose stream no longer starts with
    their [Inject] then skip the birth-counting checks (exactly-one inject,
    drain, delivery), which are unsound on a suffix — the order-local
    checks still apply. All three flags default to [false]. *)
val check :
  ?expect_delivery:bool ->
  ?drained:bool ->
  ?truncated:bool ->
  Event.t list ->
  violation list
