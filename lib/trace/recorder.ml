type sink = Event.t -> unit

type t = {
  capacity : int;
  mutable buf : Event.t array; (* [||] until first record, then [capacity] *)
  mutable next : int; (* ring write cursor *)
  mutable recorded : int;
  sink : sink option;
  mutable protected_switches : int list;
}

let default_capacity = 65536

let create ?(capacity = default_capacity) ?sink ?(protected_switches = []) () =
  {
    capacity = max 1 capacity;
    buf = [||];
    next = 0;
    recorded = 0;
    sink;
    protected_switches;
  }

let jsonl_sink oc e =
  output_string oc (Event.to_jsonl e);
  output_char oc '\n'

let is_protected t label = List.mem label t.protected_switches
let set_protected t labels = t.protected_switches <- labels

let record t ~vtime ~uid ~switch ~in_port ~out_port ~ttl action =
  let e =
    { Event.seq = t.recorded; vtime; uid; switch; in_port; out_port; ttl; action }
  in
  if Array.length t.buf = 0 then t.buf <- Array.make t.capacity e
  else t.buf.(t.next) <- e;
  t.next <- (t.next + 1) mod t.capacity;
  t.recorded <- t.recorded + 1;
  (match t.sink with None -> () | Some sink -> sink e);
  e

let contents t =
  let live = min t.recorded t.capacity in
  let start = (t.next - live + t.capacity) mod t.capacity in
  List.init live (fun i -> t.buf.((start + i) mod t.capacity))

let recorded t = t.recorded
let overwritten t = max 0 (t.recorded - t.capacity)

let clear t =
  t.next <- 0;
  t.recorded <- 0;
  t.buf <- [||]
