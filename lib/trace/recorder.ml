type sink = Event.t -> unit

(* A record waiting in the current tie group (events sharing one exact
   (vtime, sched, sched2) engine instant).  The group is sorted by
   (uid, causal action rank) before it reaches the ring: a canonical
   content order that any simulation of the same network produces
   identically, however its execution interleaved events that carry the
   very same timestamp key.  This is what makes a sharded run's trace
   byte-identical to the serial one even when two lock-stepped packet
   streams tie beyond their recorded scheduling history. *)
type pending = {
  p_vtime : float;
  p_uid : int;
  p_switch : int;
  p_in : int;
  p_out : int;
  p_ttl : int;
  p_action : Event.action;
}

type t = {
  capacity : int;
  mutable buf : Event.t array; (* [||] until first record, then [capacity] *)
  mutable next : int; (* ring write cursor *)
  mutable recorded : int;
  sink : sink option;
  mutable protected_switches : int list;
  mutable pk_sched : float; (* key of the pending tie group *)
  mutable pk_sched2 : float;
  mutable pk_vtime : float;
  mutable pending : pending list; (* newest first *)
}

let default_capacity = 65536

let create ?(capacity = default_capacity) ?sink ?(protected_switches = []) () =
  {
    capacity = max 1 capacity;
    buf = [||];
    next = 0;
    recorded = 0;
    sink;
    protected_switches;
    pk_sched = nan;
    pk_sched2 = nan;
    pk_vtime = nan;
    pending = [];
  }

let jsonl_sink oc e =
  output_string oc (Event.to_jsonl e);
  output_char oc '\n'

let is_protected t label = List.mem label t.protected_switches
let set_protected t labels = t.protected_switches <- labels
let protected_switches t = t.protected_switches

let append t ~vtime ~uid ~switch ~in_port ~out_port ~ttl action =
  let e =
    { Event.seq = t.recorded; vtime; uid; switch; in_port; out_port; ttl; action }
  in
  if Array.length t.buf = 0 then t.buf <- Array.make t.capacity e
  else t.buf.(t.next) <- e;
  t.next <- (t.next + 1) mod t.capacity;
  t.recorded <- t.recorded + 1;
  match t.sink with None -> () | Some sink -> sink e

(* Causal rank within one instant: a packet can be injected or re-encoded,
   then take a forwarding decision, and then terminate — all at the same
   virtual time (e.g. a send straight into a full queue).  Distinct
   packets never share (uid, rank) at one instant because every link has
   positive delay. *)
let action_rank = function
  | Event.Inject -> 0
  | Event.Reencode -> 1
  | Event.Forward | Event.Deflect _ | Event.Drive -> 2
  | Event.Deliver -> 3
  | Event.Drop _ -> 4

let pending_compare a b =
  let c = compare a.p_uid b.p_uid in
  if c <> 0 then c else compare (action_rank a.p_action) (action_rank b.p_action)

let flush t =
  match t.pending with
  | [] -> ()
  | l ->
    t.pending <- [];
    List.iter
      (fun p ->
        append t ~vtime:p.p_vtime ~uid:p.p_uid ~switch:p.p_switch
          ~in_port:p.p_in ~out_port:p.p_out ~ttl:p.p_ttl p.p_action)
      (List.stable_sort pending_compare (List.rev l))

let record ?key t ~vtime ~uid ~switch ~in_port ~out_port ~ttl action =
  match key with
  | None ->
    (* Unkeyed records (the analytic walker, tests) stream straight
       through in call order. *)
    flush t;
    append t ~vtime ~uid ~switch ~in_port ~out_port ~ttl action
  | Some (sched, sched2) ->
    if
      t.pending <> []
      && not
           (Float.equal t.pk_vtime vtime
           && Float.equal t.pk_sched sched
           && Float.equal t.pk_sched2 sched2)
    then flush t;
    t.pk_vtime <- vtime;
    t.pk_sched <- sched;
    t.pk_sched2 <- sched2;
    t.pending <-
      {
        p_vtime = vtime;
        p_uid = uid;
        p_switch = switch;
        p_in = in_port;
        p_out = out_port;
        p_ttl = ttl;
        p_action = action;
      }
      :: t.pending

let contents t =
  flush t;
  let live = min t.recorded t.capacity in
  let start = (t.next - live + t.capacity) mod t.capacity in
  List.init live (fun i -> t.buf.((start + i) mod t.capacity))

let recorded t =
  flush t;
  t.recorded

let overwritten t =
  flush t;
  max 0 (t.recorded - t.capacity)

let clear t =
  t.next <- 0;
  t.recorded <- 0;
  t.buf <- [||];
  t.pending <- []
