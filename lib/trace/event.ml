type action =
  | Inject
  | Forward
  | Deflect of string
  | Drive
  | Deliver
  | Reencode
  | Drop of string

type t = {
  seq : int;
  vtime : float;
  uid : int;
  switch : int;
  in_port : int;
  out_port : int;
  ttl : int;
  action : action;
}

let decision_action ~via_computed ~deflected ~protected_ ~policy =
  if not via_computed then Deflect policy
  else if deflected && protected_ then Drive
  else Forward

let is_decision e =
  match e.action with Forward | Deflect _ | Drive -> true | _ -> false

let is_terminal e = match e.action with Deliver | Drop _ -> true | _ -> false

let action_to_string = function
  | Inject -> "inject"
  | Forward -> "forward"
  | Deflect p -> "deflect:" ^ p
  | Drive -> "drive"
  | Deliver -> "deliver"
  | Reencode -> "reencode"
  | Drop r -> "drop:" ^ r

let action_of_string s =
  match String.index_opt s ':' with
  | None -> (
      match s with
      | "inject" -> Ok Inject
      | "forward" -> Ok Forward
      | "drive" -> Ok Drive
      | "deliver" -> Ok Deliver
      | "reencode" -> Ok Reencode
      | _ -> Error (Printf.sprintf "unknown action %S" s))
  | Some i -> (
      let head = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match head with
      | "deflect" -> Ok (Deflect arg)
      | "drop" -> Ok (Drop arg)
      | _ -> Error (Printf.sprintf "unknown action %S" s))

let pp ppf e =
  Format.fprintf ppf "@[#%d t=%.9g uid=%d sw=%d in=%d out=%d ttl=%d %s@]" e.seq
    e.vtime e.uid e.switch e.in_port e.out_port e.ttl
    (action_to_string e.action)

(* Fixed key order so traces diff cleanly and golden fixtures are stable.
   %.9g keeps engine timestamps byte-stable across runs without printing
   float noise. *)
let to_jsonl e =
  Printf.sprintf
    {|{"seq":%d,"t":%.9g,"uid":%d,"sw":%d,"in":%d,"out":%d,"ttl":%d,"act":"%s"}|}
    e.seq e.vtime e.uid e.switch e.in_port e.out_port e.ttl
    (action_to_string e.action)

(* Minimal strict parser for the exact shape [to_jsonl] emits: a flat object
   of int/float fields plus one string field, no escapes, no nesting. *)
let of_jsonl line =
  let line = String.trim line in
  let n = String.length line in
  if n < 2 || line.[0] <> '{' || line.[n - 1] <> '}' then
    Error "not a JSON object"
  else
    let body = String.sub line 1 (n - 2) in
    let fields = String.split_on_char ',' body in
    let parse_field acc field =
      match acc with
      | Error _ as e -> e
      | Ok kvs -> (
          match String.index_opt field ':' with
          | None -> Error (Printf.sprintf "malformed field %S" field)
          | Some i ->
              let key = String.trim (String.sub field 0 i) in
              let value =
                String.trim (String.sub field (i + 1) (String.length field - i - 1))
              in
              let key_len = String.length key in
              if key_len < 2 || key.[0] <> '"' || key.[key_len - 1] <> '"' then
                Error (Printf.sprintf "malformed key %S" key)
              else Ok ((String.sub key 1 (key_len - 2), value) :: kvs))
    in
    match List.fold_left parse_field (Ok []) fields with
    | Error _ as e -> e
    | Ok kvs -> (
        let find k =
          match List.assoc_opt k kvs with
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "missing field %S" k)
        in
        let int_field k =
          match find k with
          | Error _ as e -> e
          | Ok v -> (
              match int_of_string_opt v with
              | Some i -> Ok i
              | None -> Error (Printf.sprintf "field %S: bad int %S" k v))
        in
        let float_field k =
          match find k with
          | Error _ as e -> e
          | Ok v -> (
              match float_of_string_opt v with
              | Some f -> Ok f
              | None -> Error (Printf.sprintf "field %S: bad float %S" k v))
        in
        let string_field k =
          match find k with
          | Error _ as e -> e
          | Ok v ->
              let len = String.length v in
              if len < 2 || v.[0] <> '"' || v.[len - 1] <> '"' then
                Error (Printf.sprintf "field %S: bad string %S" k v)
              else Ok (String.sub v 1 (len - 2))
        in
        let ( let* ) r f = Result.bind r f in
        let* seq = int_field "seq" in
        let* vtime = float_field "t" in
        let* uid = int_field "uid" in
        let* switch = int_field "sw" in
        let* in_port = int_field "in" in
        let* out_port = int_field "out" in
        let* ttl = int_field "ttl" in
        let* act = string_field "act" in
        let* action = action_of_string act in
        Ok { seq; vtime; uid; switch; in_port; out_port; ttl; action })
