(** Bounded in-memory flight recorder.

    A recorder is an append-only ring buffer of {!Event.t}: when full, the
    oldest events are overwritten (and counted), so a long simulation can
    keep a recorder attached without unbounded memory growth. An optional
    sink sees every event as it is recorded — including ones later
    overwritten — which is how [--trace out.jsonl] streams full traces.

    The recorder also carries the set of protected switch labels (the plan's
    moduli) so emitters can classify driven deflections without depending on
    route-plan types. *)

type t

type sink = Event.t -> unit

(** [create ?capacity ?sink ?protected_switches ()] makes an empty recorder.
    [capacity] is the ring size in events (default 65536, min 1). *)
val create :
  ?capacity:int -> ?sink:sink -> ?protected_switches:int list -> unit -> t

(** [jsonl_sink oc] is a sink writing one {!Event.to_jsonl} line per event. *)
val jsonl_sink : out_channel -> sink

(** [is_protected t label] — is [label] one of the protected switches? *)
val is_protected : t -> int -> bool

val set_protected : t -> int list -> unit

(** The current protected set, so a derived recorder (per-region trace
    buffer) can classify identically. *)
val protected_switches : t -> int list

(** [record t ~vtime ~uid ~switch ~in_port ~out_port ~ttl action] appends
    an event, assigning the next sequence number.

    With [?key] (the engine's [(sched, sched2)] determinism key), events
    sharing one exact [(vtime, sched, sched2)] instant form a {e tie
    group}: they are held back and emitted in canonical
    [(uid, causal-action-rank)] order when the key advances.  Serial and
    sharded simulations produce the same tie groups, so sorting them
    canonically makes the emitted traces byte-identical even where the
    engine order of same-instant, causally independent events differs.
    Unkeyed records flush any pending group and stream straight through
    in call order. *)
val record :
  ?key:float * float ->
  t ->
  vtime:float ->
  uid:int ->
  switch:int ->
  in_port:int ->
  out_port:int ->
  ttl:int ->
  Event.action ->
  unit

(** Emit any pending tie group.  {!contents}, {!recorded} and
    {!overwritten} flush implicitly; call this before closing a sink's
    channel. *)
val flush : t -> unit

(** Events still in the ring, oldest first. *)
val contents : t -> Event.t list

(** Total events ever recorded (ring + overwritten). *)
val recorded : t -> int

(** Events pushed out of the ring by later ones. *)
val overwritten : t -> int

(** Drop buffered events and reset counters; keeps capacity, sink and
    protected set. *)
val clear : t -> unit
