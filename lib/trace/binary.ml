(* Compact binary trace encoding: length-prefixed fixed records appended to
   a growable byte arena.  Same event vocabulary as Event.t; see binary.mli
   for the record layout.  The writer is the allocation-light counterpart of
   the JSONL sink: appending an event writes bytes into the arena instead of
   formatting a string (the one unavoidable box is [Int64.bits_of_float] for
   the timestamp). *)

let magic = "KARB0001"
let magic_len = 8
let fixed_len = 37
let max_arg = 255 - fixed_len

type writer = { mutable buf : Bytes.t; mutable len : int }

let writer ?(capacity = 65536) () =
  let capacity = max capacity (magic_len + 256) in
  let w = { buf = Bytes.create capacity; len = magic_len } in
  Bytes.blit_string magic 0 w.buf 0 magic_len;
  w

let length w = w.len

let reset w = w.len <- magic_len

let ensure w extra =
  let need = w.len + extra in
  if need > Bytes.length w.buf then begin
    let bigger = Bytes.create (max need (2 * Bytes.length w.buf)) in
    Bytes.blit w.buf 0 bigger 0 w.len;
    w.buf <- bigger
  end

let set8 b pos v = Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xff))

let set16 b pos v =
  set8 b pos v;
  set8 b (pos + 1) (v lsr 8)

let set32 b pos v =
  set16 b pos v;
  set16 b (pos + 2) (v lsr 16)

let set64 b pos v =
  set32 b pos v;
  set32 b (pos + 4) (v lsr 32)

let get8 b pos = Char.code (Bytes.unsafe_get b pos)
let get16 b pos = get8 b pos lor (get8 b (pos + 1) lsl 8)
let get32 b pos = get16 b pos lor (get16 b (pos + 2) lsl 16)
let get64 b pos = get32 b pos lor (get32 b (pos + 4) lsl 32)
let sext16 v = if v land 0x8000 <> 0 then v - 0x10000 else v
let sext32 v = if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let tag_of_action : Event.action -> int = function
  | Event.Inject -> 0
  | Event.Forward -> 1
  | Event.Deflect _ -> 2
  | Event.Drive -> 3
  | Event.Deliver -> 4
  | Event.Reencode -> 5
  | Event.Drop _ -> 6

let action_arg : Event.action -> string = function
  | Event.Deflect s | Event.Drop s -> s
  | _ -> ""

let append w (e : Event.t) =
  let arg = action_arg e.action in
  let arg_len = String.length arg in
  if arg_len > max_arg then
    invalid_arg
      (Printf.sprintf "Trace.Binary.append: action argument longer than %d bytes"
         max_arg);
  let total = fixed_len + arg_len in
  ensure w total;
  let b = w.buf and p = w.len in
  set8 b p total;
  set8 b (p + 1) (tag_of_action e.action);
  set8 b (p + 2) arg_len;
  set32 b (p + 3) e.switch;
  set16 b (p + 7) e.in_port;
  set16 b (p + 9) e.out_port;
  set16 b (p + 11) e.ttl;
  set64 b (p + 13) e.seq;
  set64 b (p + 21) e.uid;
  Bytes.set_int64_le b (p + 29) (Int64.bits_of_float e.vtime);
  Bytes.blit_string arg 0 b (p + 37) arg_len;
  w.len <- w.len + total

let sink w : Event.t -> unit = fun e -> append w e
let contents w = Bytes.sub_string w.buf 0 w.len

let to_file w path =
  let oc = open_out_bin path in
  output_bytes oc (Bytes.sub w.buf 0 w.len);
  close_out oc

let is_binary s =
  String.length s >= magic_len && String.equal (String.sub s 0 magic_len) magic

let action_of_tag tag arg =
  match tag with
  | 0 -> Ok Event.Inject
  | 1 -> Ok Event.Forward
  | 2 -> Ok (Event.Deflect arg)
  | 3 -> Ok Event.Drive
  | 4 -> Ok Event.Deliver
  | 5 -> Ok Event.Reencode
  | 6 -> Ok (Event.Drop arg)
  | _ -> Error (Printf.sprintf "unknown action tag %d" tag)

let decode_string s =
  if not (is_binary s) then Error "missing KARB0001 magic"
  else begin
    let b = Bytes.of_string s in
    let n = Bytes.length b in
    let rec records pos acc =
      if pos = n then Ok (List.rev acc)
      else if pos > n || n - pos < fixed_len then
        Error (Printf.sprintf "truncated record at byte %d" pos)
      else begin
        let total = get8 b pos in
        let arg_len = get8 b (pos + 2) in
        if total <> fixed_len + arg_len then
          Error (Printf.sprintf "inconsistent record length at byte %d" pos)
        else if pos + total > n then
          Error (Printf.sprintf "truncated record at byte %d" pos)
        else begin
          match
            action_of_tag (get8 b (pos + 1))
              (Bytes.sub_string b (pos + 37) arg_len)
          with
          | Error _ as e -> e
          | Ok action ->
            let e : Event.t =
              {
                seq = get64 b (pos + 13);
                vtime = Int64.float_of_bits (Bytes.get_int64_le b (pos + 29));
                uid = get64 b (pos + 21);
                switch = sext32 (get32 b (pos + 3));
                in_port = sext16 (get16 b (pos + 7));
                out_port = sext16 (get16 b (pos + 9));
                ttl = sext16 (get16 b (pos + 11));
                action;
              }
            in
            records (pos + total) (e :: acc)
        end
      end
    in
    records magic_len []
  end

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  decode_string s

let encode_events events =
  let w = writer () in
  List.iter (append w) events;
  contents w
