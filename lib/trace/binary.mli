(** Compact binary trace encoding.

    The JSONL sink formats a string per event — fine for fixtures, hostile
    to the hot path.  This module stores the same {!Event.t} vocabulary as
    length-prefixed fixed binary records appended to a growable arena, and
    converts losslessly to and from the JSONL form (timestamps are kept as
    exact IEEE-754 bits, so a binary trace rendered through
    {!Event.to_jsonl} is byte-identical to one recorded as JSONL directly).

    File/stream layout: the 8-byte magic ["KARB0001"], then records.
    Record layout (little-endian, offsets in bytes):

    {v
     off width field
       0     1 total record length (37 + arg length)
       1     1 action tag: 0 inject, 1 forward, 2 deflect, 3 drive,
               4 deliver, 5 reencode, 6 drop
       2     1 arg length A (deflect policy / drop reason string; 0..218)
       3     4 switch label (signed)
       7     2 in_port  (signed; -1 = none)
       9     2 out_port (signed; -1 = none)
      11     2 remaining ttl (signed)
      13     8 recorder sequence number
      21     8 packet uid
      29     8 virtual time, IEEE-754 double bits
      37     A arg bytes (raw, no escaping)
    v} *)

(** The 8-byte stream magic, ["KARB0001"]. *)
val magic : string

(** {2 Writing} *)

type writer

(** [writer ()] makes an arena with the magic already written.
    [capacity] is the initial arena size in bytes (grows by doubling). *)
val writer : ?capacity:int -> unit -> writer

(** Append one event (one record) to the arena.
    @raise Invalid_argument if the action argument exceeds 218 bytes. *)
val append : writer -> Event.t -> unit

(** [sink w] is [append w] as a {!Recorder} sink. *)
val sink : writer -> Event.t -> unit

(** Bytes written so far, including the magic. *)
val length : writer -> int

(** Drop all records (keeps the arena and the magic); for reuse. *)
val reset : writer -> unit

(** The full stream (magic + records) as a string. *)
val contents : writer -> string

(** Write the stream to a file (binary mode). *)
val to_file : writer -> string -> unit

(** {2 Reading} *)

(** Does this string/file prefix carry the binary trace magic? *)
val is_binary : string -> bool

(** Decode a full stream back to events, in order.  Errors name the byte
    offset of the first malformed record. *)
val decode_string : string -> (Event.t list, string) result

val read_file : string -> (Event.t list, string) result

(** Encode a list of events as a full stream (magic + records). *)
val encode_events : Event.t list -> string
