(** Path computation over {!Graph}.

    All functions take an optional [usable] predicate on links so that
    analyses can exclude failed links without mutating the graph.  Paths are
    node lists from source to destination inclusive. *)

type path = Graph.node list

(** [bfs g ?usable src] is [(dist, parent)]: hop distances (or [max_int]
    when unreachable) and BFS parents ([-1] for the source and unreachable
    nodes). *)
val bfs :
  Graph.t -> ?usable:(Graph.link -> bool) -> Graph.node -> int array * int array

(** [shortest_path g ?usable src dst] is a minimum-hop path, or [None].
    Deterministic: among equal-length paths, prefers lower port numbers. *)
val shortest_path :
  Graph.t -> ?usable:(Graph.link -> bool) -> Graph.node -> Graph.node -> path option

(** [dijkstra g ?usable ?weight src] is [(dist, parent)] with real-valued
    distances ([infinity] when unreachable).  Default weight is 1.0 per
    link. *)
val dijkstra :
  Graph.t ->
  ?usable:(Graph.link -> bool) ->
  ?weight:(Graph.link -> float) ->
  Graph.node ->
  float array * int array

(** [widest_path g src dst] maximises the bottleneck link rate; used for
    traffic-engineering examples.  Returns the path and its bottleneck rate
    in bits per second. *)
val widest_path : Graph.t -> Graph.node -> Graph.node -> (path * float) option

(** [k_shortest g ~k src dst] is up to [k] loopless minimum-hop paths in
    non-decreasing length order (Yen's algorithm). *)
val k_shortest : Graph.t -> k:int -> Graph.node -> Graph.node -> path list

(** [edge_disjoint_paths g src dst] greedily extracts link-disjoint shortest
    paths until the nodes disconnect. *)
val edge_disjoint_paths : Graph.t -> Graph.node -> Graph.node -> path list

(** [is_connected g] considers all links usable. *)
val is_connected : Graph.t -> bool

(** [components g ?usable ()] lists connected components as node lists. *)
val components : Graph.t -> ?usable:(Graph.link -> bool) -> unit -> Graph.node list list

(** [diameter g] is the longest shortest-path hop count between any
    connected pair (0 for a single node). *)
val diameter : Graph.t -> int

(** [path_links g path] maps consecutive node pairs to the connecting link
    ids. @raise Invalid_argument if two consecutive nodes are not
    adjacent. *)
val path_links : Graph.t -> path -> Graph.link_id list

(** [path_ports g path] is, for each node except the last, the output port
    toward its successor (lowest-numbered such port). *)
val path_ports : Graph.t -> path -> (Graph.node * int) list
