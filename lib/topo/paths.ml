type path = Graph.node list

let always_usable (_ : Graph.link) = true

let bfs g ?(usable = always_usable) src =
  let n = Graph.n_nodes g in
  let dist = Array.make n max_int and parent = Array.make n (-1) in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun (_, l, far) ->
        if usable l && dist.(far) = max_int then begin
          dist.(far) <- dist.(v) + 1;
          parent.(far) <- v;
          Queue.add far q
        end)
      (Graph.ports g v)
  done;
  (dist, parent)

let reconstruct parent src dst =
  let rec go acc v = if v = src then src :: acc else go (v :: acc) parent.(v) in
  if dst = src then Some [ src ]
  else if parent.(dst) < 0 then None
  else Some (go [] dst)

let shortest_path g ?usable src dst =
  let _, parent = bfs g ?usable src in
  reconstruct parent src dst

module Heap = struct
  (* Minimal binary heap over (priority, payload). *)
  type 'a t = { mutable data : (float * 'a) array; mutable size : int }

  let create () = { data = [||]; size = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h prio payload =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (max 16 (2 * h.size)) (prio, payload) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- (prio, payload);
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.data.(0) in
      h.size <- h.size - 1;
      h.data.(0) <- h.data.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
        if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          swap h !i !smallest;
          i := !smallest
        end
      done;
      Some top
    end
end

let dijkstra g ?(usable = always_usable) ?(weight = fun _ -> 1.0) src =
  let n = Graph.n_nodes g in
  let dist = Array.make n infinity and parent = Array.make n (-1) in
  dist.(src) <- 0.0;
  let heap = Heap.create () in
  Heap.push heap 0.0 src;
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, v) ->
      if d <= dist.(v) then
        List.iter
          (fun (_, l, far) ->
            if usable l then begin
              let w = weight l in
              if w < 0.0 then invalid_arg "Paths.dijkstra: negative weight";
              let nd = d +. w in
              if nd < dist.(far) then begin
                dist.(far) <- nd;
                parent.(far) <- v;
                Heap.push heap nd far
              end
            end)
          (Graph.ports g v);
      drain ()
  in
  drain ();
  (dist, parent)

let widest_path g src dst =
  (* Dijkstra-like: maximise the minimum rate along the path. *)
  let n = Graph.n_nodes g in
  let width = Array.make n 0.0 and parent = Array.make n (-1) in
  width.(src) <- infinity;
  let heap = Heap.create () in
  (* Negate widths so the min-heap pops the widest candidate first. *)
  Heap.push heap (-.width.(src)) src;
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (nw, v) ->
      let w = -.nw in
      if w >= width.(v) then
        List.iter
          (fun (_, l, far) ->
            let cand = Stdlib.min w l.Graph.rate_bps in
            if cand > width.(far) then begin
              width.(far) <- cand;
              parent.(far) <- v;
              Heap.push heap (-.cand) far
            end)
          (Graph.ports g v);
      drain ()
  in
  drain ();
  if width.(dst) <= 0.0 then None
  else
    match reconstruct parent src dst with
    | None -> None
    | Some p -> Some (p, width.(dst))

let path_links g = function
  | [] | [ _ ] -> []
  | path ->
    let rec go acc = function
      | a :: (b :: _ as rest) ->
        (match Graph.link_between g a b with
         | Some id -> go (id :: acc) rest
         | None ->
           invalid_arg
             (Printf.sprintf "Paths.path_links: %d and %d are not adjacent" a b))
      | _ -> List.rev acc
    in
    go [] path

let path_ports g = function
  | [] | [ _ ] -> []
  | path ->
    let rec go acc = function
      | a :: (b :: _ as rest) ->
        (match Graph.port_towards g a b with
         | Some p -> go ((a, p) :: acc) rest
         | None ->
           invalid_arg
             (Printf.sprintf "Paths.path_ports: %d and %d are not adjacent" a b))
      | _ -> List.rev acc
    in
    go [] path

(* Yen's algorithm for k loopless shortest paths. *)
let k_shortest g ~k src dst =
  if k <= 0 then []
  else begin
    match shortest_path g src dst with
    | None -> []
    | Some first ->
      let accepted = ref [ first ] in
      let candidates : (int * path) list ref = ref [] in
      let add_candidate p =
        let len = List.length p in
        if not (List.exists (fun (_, q) -> q = p) !candidates) then
          candidates := (len, p) :: !candidates
      in
      let rec take_prefix path i =
        (* first i+1 nodes of path *)
        match (path, i) with
        | x :: _, 0 -> [ x ]
        | x :: rest, n -> x :: take_prefix rest (n - 1)
        | [], _ -> []
      in
      let result = ref [ first ] in
      (try
         for _ = 2 to k do
           let prev = List.hd !accepted in
           let prev_len = List.length prev in
           for i = 0 to prev_len - 2 do
             let spur = List.nth prev i in
             let root = take_prefix prev i in
             (* Links to remove: the edge each accepted path with this root
                takes out of the spur node. *)
             let banned_links =
               List.filter_map
                 (fun p ->
                   if List.length p > i && take_prefix p i = root then begin
                     match (List.nth_opt p i, List.nth_opt p (i + 1)) with
                     | Some a, Some b -> Graph.link_between g a b
                     | _ -> None
                   end
                   else None)
                 !result
             in
             let banned_nodes = List.filteri (fun j _ -> j < i) root in
             let usable l =
               (not (List.mem l.Graph.id banned_links))
               && (not (List.mem l.Graph.ep0.node banned_nodes))
               && not (List.mem l.Graph.ep1.node banned_nodes)
             in
             match shortest_path g ~usable spur dst with
             | None -> ()
             | Some tail ->
               let total = root @ List.tl tail in
               if not (List.mem total !result) then add_candidate total
           done;
           match List.sort Stdlib.compare !candidates with
           | [] -> raise Exit
           | (_, best) :: rest ->
             candidates := rest;
             accepted := best :: !accepted;
             result := !result @ [ best ]
         done
       with Exit -> ());
      !result
  end

let edge_disjoint_paths g src dst =
  let used = Hashtbl.create 16 in
  let usable l = not (Hashtbl.mem used l.Graph.id) in
  let rec go acc =
    match shortest_path g ~usable src dst with
    | None -> List.rev acc
    | Some p ->
      List.iter (fun id -> Hashtbl.replace used id ()) (path_links g p);
      go (p :: acc)
  in
  go []

let components g ?(usable = always_usable) () =
  let n = Graph.n_nodes g in
  let seen = Array.make n false in
  let comps = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      let comp = ref [] in
      let q = Queue.create () in
      Queue.add v q;
      seen.(v) <- true;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        comp := u :: !comp;
        List.iter
          (fun (_, l, far) ->
            if usable l && not seen.(far) then begin
              seen.(far) <- true;
              Queue.add far q
            end)
          (Graph.ports g u)
      done;
      comps := List.rev !comp :: !comps
    end
  done;
  List.rev !comps

let is_connected g =
  match components g () with
  | [] | [ _ ] -> true
  | _ -> false

let diameter g =
  let worst = ref 0 in
  Graph.iter_nodes g ~f:(fun v ->
      let dist, _ = bfs g v in
      Array.iter (fun d -> if d <> max_int && d > !worst then worst := d) dist);
  !worst
