let nodes_1n b n = List.init n (fun i -> Graph.Builder.add_node b (i + 1))

let line n =
  if n <= 0 then invalid_arg "Gen.line: need at least one node";
  let b = Graph.Builder.create () in
  let vs = Array.of_list (nodes_1n b n) in
  for i = 0 to n - 2 do
    ignore (Graph.Builder.add_link b vs.(i) vs.(i + 1))
  done;
  Graph.Builder.finish b

let ring n =
  if n < 3 then invalid_arg "Gen.ring: need at least three nodes";
  let b = Graph.Builder.create () in
  let vs = Array.of_list (nodes_1n b n) in
  for i = 0 to n - 1 do
    ignore (Graph.Builder.add_link b vs.(i) vs.((i + 1) mod n))
  done;
  Graph.Builder.finish b

let grid ~w ~h =
  if w <= 0 || h <= 0 then invalid_arg "Gen.grid: dimensions must be positive";
  let b = Graph.Builder.create () in
  let vs = Array.of_list (nodes_1n b (w * h)) in
  let at x y = vs.((y * w) + x) in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x < w - 1 then ignore (Graph.Builder.add_link b (at x y) (at (x + 1) y));
      if y < h - 1 then ignore (Graph.Builder.add_link b (at x y) (at x (y + 1)))
    done
  done;
  Graph.Builder.finish b

let complete n =
  if n <= 0 then invalid_arg "Gen.complete: need at least one node";
  let b = Graph.Builder.create () in
  let vs = Array.of_list (nodes_1n b n) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      ignore (Graph.Builder.add_link b vs.(i) vs.(j))
    done
  done;
  Graph.Builder.finish b

let torus ~w ~h =
  if w < 3 || h < 3 then invalid_arg "Gen.torus: dimensions must be >= 3";
  let b = Graph.Builder.create () in
  let vs = Array.of_list (nodes_1n b (w * h)) in
  let at x y = vs.(((y mod h) * w) + (x mod w)) in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      ignore (Graph.Builder.add_link b (at x y) (at (x + 1) y));
      ignore (Graph.Builder.add_link b (at x y) (at x (y + 1)))
    done
  done;
  Graph.Builder.finish b

let max_connectivity_attempts = 100

let random_graph ~n ~seed ~connect_prob =
  if n <= 1 then invalid_arg "Gen.random_graph: need at least two nodes";
  let rec attempt k rng =
    if k > max_connectivity_attempts then
      failwith "Gen: no connected sample found; raise p or the density"
    else begin
      let b = Graph.Builder.create () in
      let vs = Array.of_list (nodes_1n b n) in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Util.Prng.float rng < connect_prob i j then
            ignore (Graph.Builder.add_link b vs.(i) vs.(j))
        done
      done;
      let g = Graph.Builder.finish b in
      if Paths.is_connected g then g else attempt (k + 1) rng
    end
  in
  attempt 1 (Util.Prng.of_int seed)

let gnp ~n ~p ~seed =
  if p < 0.0 || p > 1.0 then invalid_arg "Gen.gnp: p out of range";
  random_graph ~n ~seed ~connect_prob:(fun _ _ -> p)

let waxman ~n ~alpha ~beta ~seed =
  if alpha <= 0.0 || beta <= 0.0 then invalid_arg "Gen.waxman: parameters must be positive";
  let rng = Util.Prng.of_int (seed lxor 0x5bd1e995) in
  let xs = Array.init n (fun _ -> Util.Prng.float rng) in
  let ys = Array.init n (fun _ -> Util.Prng.float rng) in
  let dist i j = sqrt (((xs.(i) -. xs.(j)) ** 2.0) +. ((ys.(i) -. ys.(j)) ** 2.0)) in
  let l = sqrt 2.0 in
  random_graph ~n ~seed ~connect_prob:(fun i j ->
      alpha *. exp (-.dist i j /. (beta *. l)))

let with_edge_hosts g attach =
  let b = Graph.Builder.create () in
  let max_label =
    Graph.fold_nodes g ~init:0 ~f:(fun acc v -> max acc (Graph.label g v))
  in
  (* Recreate nodes in index order so node indices are preserved. *)
  Graph.iter_nodes g ~f:(fun v ->
      ignore
        (Graph.Builder.add_node b ~kind:(Graph.kind g v) (Graph.label g v)));
  List.iter
    (fun l ->
      ignore
        (Graph.Builder.add_link_at b ~rate_bps:l.Graph.rate_bps
           ~delay_s:l.Graph.delay_s
           (l.Graph.ep0.node, l.Graph.ep0.port)
           (l.Graph.ep1.node, l.Graph.ep1.port)))
    (Graph.links g);
  let base = max max_label 999 + 1 in
  let hosts =
    List.mapi
      (fun i core ->
        let host = Graph.Builder.add_node b ~kind:Graph.Edge (base + i) in
        ignore (Graph.Builder.add_link b core host);
        host)
      attach
  in
  (Graph.Builder.finish b, hosts)
