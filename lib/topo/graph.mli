(** Port-indexed network multigraph.

    KAR forwarding is defined in terms of {e output port indexes}: a core
    switch with ID [s] sends a packet with route ID [R] out of port
    [R mod s].  The graph therefore gives every node a dense array of ports
    ([0 .. degree-1]), each attached to one end of an undirected link.  Port
    numbering is part of the topology (the controller encodes port indexes
    into route IDs), so builders can pin explicit port numbers where a
    scenario requires them (e.g. the paper's Fig. 1 example needs SW7's port
    2 to face SW11).

    Nodes carry an integer [label]; for core switches the label {e is} the
    KAR switch ID (pairwise coprime across the core).  Edge nodes (hosts /
    autonomous systems) are [Edge]-kind and never appear in route IDs.

    The structure is immutable after {!Builder.finish}; transient state
    (link failures, queue contents) lives in the simulator and analyses,
    parameterised by link predicates. *)

type node = int
(** Dense node index in [0 .. n_nodes-1]. *)

type link_id = int
(** Dense link index in [0 .. n_links-1]. *)

type node_kind =
  | Core (** KAR switch: forwards by [route_id mod switch_id] *)
  | Edge (** host / AS attachment point: adds and removes route IDs *)

type endpoint = { node : node; port : int }

type link = {
  id : link_id;
  ep0 : endpoint;
  ep1 : endpoint;
  rate_bps : float; (** capacity of each direction, bits per second *)
  delay_s : float; (** one-way propagation delay, seconds *)
}

type t

(** Incremental construction; see module doc for port semantics. *)
module Builder : sig
  type graph := t
  type t

  val create : unit -> t

  (** [add_node b label] appends a node and returns its index.
      @raise Invalid_argument if the label is already taken. *)
  val add_node : t -> ?kind:node_kind -> int -> node

  (** [add_link b u v] connects [u] and [v] using the lowest free port on
      each side.  Default [rate_bps] is 200 Mb/s (the paper's nominal load)
      and default [delay_s] is 50 us (Mininet-like). *)
  val add_link : t -> ?rate_bps:float -> ?delay_s:float -> node -> node -> link_id

  (** [add_link_at b (u, pu) (v, pv)] connects with explicit port numbers.
      @raise Invalid_argument if a port is already occupied. *)
  val add_link_at :
    t -> ?rate_bps:float -> ?delay_s:float -> node * int -> node * int -> link_id

  (** [finish b] freezes the graph.
      @raise Invalid_argument if any node's ports are not dense
      ([0 .. degree-1] all occupied). *)
  val finish : t -> graph
end

val n_nodes : t -> int
val n_links : t -> int
val label : t -> node -> int
val kind : t -> node -> node_kind
val is_core : t -> node -> bool

(** [node_of_label g l] finds the node carrying label [l].
    @raise Not_found if absent. *)
val node_of_label : t -> int -> node

val find_label : t -> int -> node option

(** [degree g v] is the number of ports of [v]. *)
val degree : t -> node -> int

(** [link_at g v p] is the link attached to port [p] of [v].
    @raise Invalid_argument if [p] is out of range. *)
val link_at : t -> node -> int -> link

(** [peer g v p] is [(u, q)]: the far node of port [p] and the far port. *)
val peer : t -> node -> int -> node * int

(** [neighbors g v] lists far nodes over all ports, in port order
    (duplicates possible on multigraphs). *)
val neighbors : t -> node -> node list

(** [ports g v] lists [(port, link, far_node)] in port order. *)
val ports : t -> node -> (int * link * node) list

(** [port_towards g v u] is the lowest-numbered port of [v] whose link
    reaches [u], if any. *)
val port_towards : t -> node -> node -> int option

val links : t -> link list
val link : t -> link_id -> link

(** [link_between g u v] is the lowest-id link joining [u] and [v]. *)
val link_between : t -> node -> node -> link_id option

(** [link_between_labels g lu lv] is {!link_between} by node label.
    @raise Not_found if either label is absent. *)
val link_between_labels : t -> int -> int -> link_id

(** [other_end l v] is the endpoint of [l] not at [v].
    @raise Invalid_argument if [v] is on neither side. *)
val other_end : link -> node -> endpoint

(** [endpoint_at l v] is the endpoint of [l] at [v]. *)
val endpoint_at : link -> node -> endpoint

val fold_nodes : t -> init:'a -> f:('a -> node -> 'a) -> 'a
val iter_nodes : t -> f:(node -> unit) -> unit
val core_nodes : t -> node list
val edge_nodes : t -> node list

(** [core_labels g] is the sorted list of core switch IDs. *)
val core_labels : t -> int list

(** [relabel g mapping] returns a copy of [g] whose node [v] carries label
    [mapping.(v)]; used by switch-ID assignment strategies.
    @raise Invalid_argument on duplicate labels or wrong array length. *)
val relabel : t -> int array -> t

(** [pp] prints a compact human-readable summary. *)
val pp : Format.formatter -> t -> unit
