let node_name g v =
  match Graph.kind g v with
  | Graph.Core -> Printf.sprintf "SW%d" (Graph.label g v)
  | Graph.Edge -> Printf.sprintf "AS%d" (Graph.label g v)

let to_dot ?(highlight_links = []) ?(highlight_nodes = []) g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph kar {\n  node [shape=circle fontsize=10];\n";
  Graph.iter_nodes g ~f:(fun v ->
      let style =
        if List.mem v highlight_nodes then " [style=bold color=red]"
        else
          match Graph.kind g v with
          | Graph.Edge -> " [shape=box]"
          | Graph.Core -> ""
      in
      Buffer.add_string buf (Printf.sprintf "  %s%s;\n" (node_name g v) style));
  List.iter
    (fun l ->
      let extra =
        if List.mem l.Graph.id highlight_links then " [style=bold color=red]" else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s -- %s [label=\"%d:%d\"]%s;\n"
           (node_name g l.Graph.ep0.node)
           (node_name g l.Graph.ep1.node)
           l.Graph.ep0.port l.Graph.ep1.port extra))
    (Graph.links g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_dot ?highlight_links ?highlight_nodes path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?highlight_links ?highlight_nodes g))
