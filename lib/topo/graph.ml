type node = int
type link_id = int

type node_kind =
  | Core
  | Edge

type endpoint = { node : node; port : int }

type link = {
  id : link_id;
  ep0 : endpoint;
  ep1 : endpoint;
  rate_bps : float;
  delay_s : float;
}

type t = {
  labels : int array;
  kinds : node_kind array;
  ports : link_id array array; (* ports.(v).(p) = link id *)
  link_arr : link array;
  by_label : (int, node) Hashtbl.t;
}

let default_rate_bps = 200e6
let default_delay_s = 50e-6

module Builder = struct
  type bnode = {
    blabel : int;
    bkind : node_kind;
    mutable bports : (int * link_id) list; (* (port, link) assoc, unsorted *)
  }

  type t = {
    mutable nodes : bnode list; (* reversed *)
    mutable n : int;
    mutable links : link list; (* reversed *)
    mutable nl : int;
    seen_labels : (int, unit) Hashtbl.t;
  }

  let create () =
    { nodes = []; n = 0; links = []; nl = 0; seen_labels = Hashtbl.create 64 }

  let add_node b ?(kind = Core) label =
    if Hashtbl.mem b.seen_labels label then
      invalid_arg (Printf.sprintf "Graph.Builder.add_node: duplicate label %d" label);
    Hashtbl.add b.seen_labels label ();
    let v = b.n in
    b.nodes <- { blabel = label; bkind = kind; bports = [] } :: b.nodes;
    b.n <- b.n + 1;
    v

  let node b v =
    if v < 0 || v >= b.n then invalid_arg "Graph.Builder: node out of range";
    List.nth b.nodes (b.n - 1 - v)

  let port_taken bn p = List.mem_assoc p bn.bports

  let next_free_port bn =
    let rec go p = if port_taken bn p then go (p + 1) else p in
    go 0

  let attach bn port link =
    if port < 0 then invalid_arg "Graph.Builder: negative port";
    if port_taken bn port then
      invalid_arg (Printf.sprintf "Graph.Builder: port %d already occupied" port);
    bn.bports <- (port, link) :: bn.bports

  let add_link_at b ?(rate_bps = default_rate_bps) ?(delay_s = default_delay_s)
      (u, pu) (v, pv) =
    if u = v then invalid_arg "Graph.Builder.add_link_at: self-loop";
    let bu = node b u and bv = node b v in
    let id = b.nl in
    attach bu pu id;
    attach bv pv id;
    let l =
      {
        id;
        ep0 = { node = u; port = pu };
        ep1 = { node = v; port = pv };
        rate_bps;
        delay_s;
      }
    in
    b.links <- l :: b.links;
    b.nl <- b.nl + 1;
    id

  let add_link b ?rate_bps ?delay_s u v =
    if u = v then invalid_arg "Graph.Builder.add_link: self-loop";
    let pu = next_free_port (node b u) and pv = next_free_port (node b v) in
    add_link_at b ?rate_bps ?delay_s (u, pu) (v, pv)

  let finish b =
    let nodes = Array.of_list (List.rev b.nodes) in
    let labels = Array.map (fun bn -> bn.blabel) nodes in
    let kinds = Array.map (fun bn -> bn.bkind) nodes in
    let ports =
      Array.mapi
        (fun v bn ->
          let deg = List.length bn.bports in
          let arr = Array.make deg (-1) in
          List.iter
            (fun (p, l) ->
              if p >= deg then
                invalid_arg
                  (Printf.sprintf
                     "Graph.Builder.finish: node %d (label %d) has sparse ports \
                      (port %d but degree %d)"
                     v labels.(v) p deg);
              arr.(p) <- l)
            bn.bports;
          Array.iteri
            (fun p l ->
              if l < 0 then
                invalid_arg
                  (Printf.sprintf "Graph.Builder.finish: node %d port %d unused" v p))
            arr;
          arr)
        nodes
    in
    let by_label = Hashtbl.create (Array.length labels) in
    Array.iteri (fun v l -> Hashtbl.replace by_label l v) labels;
    {
      labels;
      kinds;
      ports;
      link_arr = Array.of_list (List.rev b.links);
      by_label;
    }
end

let n_nodes g = Array.length g.labels
let n_links g = Array.length g.link_arr
let label g v = g.labels.(v)
let kind g v = g.kinds.(v)
let is_core g v = g.kinds.(v) = Core

let find_label g l = Hashtbl.find_opt g.by_label l

let node_of_label g l =
  match find_label g l with
  | Some v -> v
  | None -> raise Not_found

let degree g v = Array.length g.ports.(v)

let link g id = g.link_arr.(id)

let link_at g v p =
  if p < 0 || p >= degree g v then
    invalid_arg (Printf.sprintf "Graph.link_at: port %d out of range at node %d" p v);
  g.link_arr.(g.ports.(v).(p))

let other_end l v =
  if l.ep0.node = v then l.ep1
  else if l.ep1.node = v then l.ep0
  else invalid_arg "Graph.other_end: node not on link"

let endpoint_at l v =
  if l.ep0.node = v then l.ep0
  else if l.ep1.node = v then l.ep1
  else invalid_arg "Graph.endpoint_at: node not on link"

let peer g v p =
  let l = link_at g v p in
  let e = other_end l v in
  (e.node, e.port)

let neighbors g v =
  List.init (degree g v) (fun p -> fst (peer g v p))

let ports g v =
  List.init (degree g v) (fun p ->
      let l = link_at g v p in
      (p, l, (other_end l v).node))

let port_towards g v u =
  let rec go p =
    if p >= degree g v then None
    else if fst (peer g v p) = u then Some p
    else go (p + 1)
  in
  go 0

let links g = Array.to_list g.link_arr

let link_between g u v =
  match port_towards g u v with
  | None -> None
  | Some p -> Some (link_at g u p).id

let link_between_labels g lu lv =
  let u = node_of_label g lu and v = node_of_label g lv in
  match link_between g u v with
  | Some id -> id
  | None -> raise Not_found

let fold_nodes g ~init ~f =
  let acc = ref init in
  for v = 0 to n_nodes g - 1 do
    acc := f !acc v
  done;
  !acc

let iter_nodes g ~f =
  for v = 0 to n_nodes g - 1 do
    f v
  done

let core_nodes g =
  fold_nodes g ~init:[] ~f:(fun acc v -> if is_core g v then v :: acc else acc)
  |> List.rev

let edge_nodes g =
  fold_nodes g ~init:[] ~f:(fun acc v -> if not (is_core g v) then v :: acc else acc)
  |> List.rev

let core_labels g = List.sort Stdlib.compare (List.map (label g) (core_nodes g))

let relabel g mapping =
  if Array.length mapping <> n_nodes g then
    invalid_arg "Graph.relabel: wrong mapping length";
  let by_label = Hashtbl.create (Array.length mapping) in
  Array.iteri
    (fun v l ->
      if Hashtbl.mem by_label l then
        invalid_arg (Printf.sprintf "Graph.relabel: duplicate label %d" l);
      Hashtbl.replace by_label l v)
    mapping;
  { g with labels = Array.copy mapping; by_label }

let pp ppf g =
  Format.fprintf ppf "graph: %d nodes (%d core), %d links@." (n_nodes g)
    (List.length (core_nodes g))
    (n_links g);
  iter_nodes g ~f:(fun v ->
      Format.fprintf ppf "  [%d] label=%d %s:" v (label g v)
        (match kind g v with Core -> "core" | Edge -> "edge");
      List.iter
        (fun (p, _, far) -> Format.fprintf ppf " %d->%d" p (label g far))
        (ports g v);
      Format.fprintf ppf "@.")
