(** The paper's evaluation topologies, reconstructed from the text.

    The figures themselves are not machine-readable, so {!net15} and
    {!rnp28} are reconstructions constrained by every number the text
    states; DESIGN.md section 2 lists the constraints.  Each topology comes
    with the scenario metadata the experiments need: the primary route, the
    driven-deflection protection hops at each protection level, and the
    failure links the paper exercises.

    Protection is expressed as directed hops [(switch_label, next_label)]:
    folding hop [(s, u)] into a route ID adds the residue
    [port_of s toward u] at modulus [s] — exactly the paper's "adding new
    nodes in the computation of the route ID". *)

(** A named failure case: the label pair as the paper writes it
    (e.g. ["SW7-SW13"]) and the link id in the graph. *)
type failure_case = { name : string; link : Graph.link_id }

(** Scenario bundle shared by all reconstructions. *)
type scenario = {
  graph : Graph.t;
  ingress : Graph.node; (** edge host that stamps route IDs *)
  egress : Graph.node; (** edge host that strips route IDs *)
  primary : int list; (** core switch labels of the primary route, in order *)
  partial_protection : (int * int) list;
      (** directed protection hops for the paper's "partial protection" *)
  full_protection : (int * int) list;
      (** additional hops (on top of partial) for "full protection" *)
  failures : failure_case list; (** the failure links the paper evaluates *)
}

(** {1 Fig. 1 — the worked example} *)

(** Six-node network of Fig. 1: edge nodes S and D, switches
    {4, 5, 7, 11}, with port numbers pinned so that the paper's route IDs
    44 (primary) and 660 (protected) forward exactly as printed. *)
val fig1_six : scenario

(** Labels of the two edge nodes in {!fig1_six}. *)
val fig1_source_label : int

val fig1_dest_label : int

(** {1 Section 3.1 — the 15-node experimental network} *)

(** 15 core switches (IDs pairwise coprime:
    3 7 10 11 13 17 19 23 29 31 37 41 43 47 53) plus three edge ASes.
    Primary route AS1 -> 10 -> 7 -> 13 -> 29 -> AS3.  Partial protection
    adds hops 11->13, 19->13, 31->29 (7 switches in the route ID, 28-bit
    bound); full protection additionally 17->13, 37->43, 43->29
    (10 switches, 43-bit bound), matching Table 1. *)
val net15 : scenario

(** {1 Section 3.2 — the RNP national backbone} *)

(** 28 points of presence (IDs = the 28 primes 7..127) and 40 links, with
    heterogeneous link rates.  Primary route 7 (Boa Vista) -> 13 -> 41 ->
    73 (Sao Paulo); partial protection hops 17->71, 61->67, 67->71, 71->73
    as in Fig. 6.  Failure cases: SW7-SW13, SW13-SW41, SW41-SW73. *)
val rnp28 : scenario

(** The Fig. 8 worst case on the same RNP graph: route
    7 -> 13 -> 41 -> 73 -> 107 -> 113 with protection hops 71->17 and
    17->41, failing link SW73-SW107; deflected packets loop
    73 -> 71 -> 17 -> 41 -> 73 until SW109 is chosen. *)
val rnp_fig8 : scenario

(** [protection_residues g hops] converts directed protection hops into
    RNS residues [(switch_id, port)] for encoding.
    @raise Not_found if a label is absent, [Invalid_argument] if a hop pair
    is not adjacent. *)
val protection_residues : Graph.t -> (int * int) list -> (int * int) list
