(** Region partitioning for conservative parallel simulation.

    [make g ~regions] splits the node set of [g] into [regions] connected,
    non-empty regions covering every node, by min-cut-biased multi-source
    BFS growth: seeds are spread by farthest-first traversal, then the
    smallest region repeatedly claims the frontier node with the most
    already-claimed neighbours (fewest new cut edges).  Growth along links
    keeps every region connected by construction.

    The partition quality metrics drive the simulator's lookahead and the
    bench history: [lookahead] is the minimum propagation delay over cut
    links — the conservative-simulation horizon — and [cut_ratio] is
    boundary links / total links. *)

type t = {
  n_regions : int;
  region_of : int array;  (** node -> region index in [0 .. n_regions-1] *)
  cut_links : Graph.link_id list;  (** links whose endpoints differ, ascending *)
  cut_ratio : float;  (** boundary links / total links (0.0 when linkless) *)
  lookahead : float;
      (** minimum [delay_s] over cut links; [infinity] when no link is cut *)
}

(** [make g ~regions] partitions [g].
    @raise Invalid_argument if [regions < 1], if [regions] exceeds the node
    count, or if [g] is disconnected and cannot yield connected regions. *)
val make : Graph.t -> regions:int -> t

(** [validate p g] re-checks the partition invariants (covering, non-empty,
    connected regions) — exposed for property tests.  Returns an error
    description instead of raising. *)
val validate : t -> Graph.t -> (unit, string) result
