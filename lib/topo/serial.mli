(** A plain-text topology interchange format, so operators can feed their
    own networks to the tools (`bin/kar_route` consumes it).

    Line-oriented; [#] starts a comment.  Two record kinds:

    {v
    # nodes: node <label> core|edge
    node 7  core
    node 1001 edge
    # links: link <labelA>:<portA> <labelB>:<portB> [rate_bps] [delay_s]
    link 7:0 13:2  200e6 2e-3
    link 1001:0 7:1
    v}

    Ports are explicit so the format round-trips exactly (port numbering is
    semantically significant in KAR).  Rates/delays default to the graph
    builder's defaults when omitted. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

(** [to_string g] renders a graph in the format above; parseable by
    {!of_string} into an identical graph (same node indices, labels, kinds,
    ports, rates and delays). *)
val to_string : Graph.t -> string

(** [of_string s] parses a topology. *)
val of_string : string -> (Graph.t, error) result

(** [load path] / [save path g]: file convenience wrappers.
    @raise Sys_error on I/O failure. *)
val load : string -> (Graph.t, error) result

val save : string -> Graph.t -> unit
