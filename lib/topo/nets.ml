type failure_case = { name : string; link : Graph.link_id }

type scenario = {
  graph : Graph.t;
  ingress : Graph.node;
  egress : Graph.node;
  primary : int list;
  partial_protection : (int * int) list;
  full_protection : (int * int) list;
  failures : failure_case list;
}

(* Port numbering is part of a topology.  Inserting links in a systematic
   order gives systematically aligned port numbers (e.g. "port 1 faces the
   destination" at every switch), which lets a route ID accidentally encode
   useful ports at switches that are not in it at all — hiding the
   difference between protection levels.  Real cabling is arbitrary, so the
   reconstructions add their links in a deterministically shuffled order. *)
let shuffled_links seed links =
  let arr = Array.of_list links in
  Util.Prng.shuffle (Util.Prng.of_int seed) arr;
  Array.to_list arr

let fig1_source_label = 1
let fig1_dest_label = 2

let fig1_six =
  let b = Graph.Builder.create () in
  let s = Graph.Builder.add_node b ~kind:Graph.Edge fig1_source_label in
  let d = Graph.Builder.add_node b ~kind:Graph.Edge fig1_dest_label in
  let sw4 = Graph.Builder.add_node b 4 in
  let sw5 = Graph.Builder.add_node b 5 in
  let sw7 = Graph.Builder.add_node b 7 in
  let sw11 = Graph.Builder.add_node b 11 in
  (* Port numbers are pinned to reproduce the paper's worked example:
     <44>_4 = 0 faces SW7, <44>_7 = 2 faces SW11, <44>_11 = 0 faces D,
     <660>_5 = 0 faces SW11; SW7's deflection alternatives on a SW7-SW11
     failure are port 0 (SW4) and port 1 (SW5). *)
  ignore (Graph.Builder.add_link_at b (s, 0) (sw4, 1));
  ignore (Graph.Builder.add_link_at b (sw4, 0) (sw7, 0));
  ignore (Graph.Builder.add_link_at b (sw7, 1) (sw5, 1));
  let l7_11 = Graph.Builder.add_link_at b (sw7, 2) (sw11, 1) in
  ignore (Graph.Builder.add_link_at b (sw5, 0) (sw11, 2));
  ignore (Graph.Builder.add_link_at b (sw11, 0) (d, 0));
  let graph = Graph.Builder.finish b in
  {
    graph;
    ingress = s;
    egress = d;
    primary = [ 4; 7; 11 ];
    partial_protection = [ (5, 11) ];
    full_protection = [];
    failures = [ { name = "SW7-SW11"; link = l7_11 } ];
  }

(* 15-node experimental network (paper Fig. 2/3 reconstruction).

   Pairwise-coprime switch IDs; chosen so that the Table 1 bit lengths come
   out exactly: primary product 10*7*13*29 needs 15 bits; partial adds
   11*19*31 (28 bits total); full additionally 17*37*43 (43 bits total). *)
let net15 =
  let b = Graph.Builder.create () in
  let core = Hashtbl.create 16 in
  List.iter
    (fun id -> Hashtbl.replace core id (Graph.Builder.add_node b id))
    [ 3; 7; 10; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53 ];
  let n id = Hashtbl.find core id in
  let as1 = Graph.Builder.add_node b ~kind:Graph.Edge 1001 in
  let as2 = Graph.Builder.add_node b ~kind:Graph.Edge 1002 in
  let as3 = Graph.Builder.add_node b ~kind:Graph.Edge 1003 in
  (* All links run at the paper's nominal 200 Mb/s, as a Mininet testbed
     would configure them; deflection penalties then come purely from path
     inflation and packet disorder, the effects Fig. 4/5 measure. *)
  let primary = 200e6 and mesh = 200e6 in
  let core_links =
    shuffled_links 0x15ca1e
      [
        (primary, 10, 7); (primary, 7, 13); (primary, 13, 29);
        (mesh, 10, 11); (mesh, 10, 17); (mesh, 10, 37);
        (mesh, 11, 13); (mesh, 11, 3);
        (mesh, 7, 19); (mesh, 7, 3);
        (mesh, 19, 13); (mesh, 19, 3);
        (mesh, 3, 23);
        (mesh, 13, 31); (mesh, 13, 41); (mesh, 13, 47); (mesh, 13, 17);
        (mesh, 31, 29);
        (mesh, 41, 43); (mesh, 47, 43); (mesh, 43, 29); (mesh, 43, 37);
        (mesh, 17, 37);
        (mesh, 53, 23); (mesh, 53, 47);
        (mesh, 23, 29);
      ]
  in
  ignore (Graph.Builder.add_link b ~rate_bps:primary as1 (n 10));
  ignore (Graph.Builder.add_link b ~rate_bps:primary (n 29) as3);
  ignore (Graph.Builder.add_link b ~rate_bps:primary (n 23) as2);
  List.iter
    (fun (rate, u, v) ->
      ignore (Graph.Builder.add_link b ~rate_bps:rate (n u) (n v)))
    core_links;
  let graph = Graph.Builder.finish b in
  let l10_7 = Graph.link_between_labels graph 10 7 in
  let l7_13 = Graph.link_between_labels graph 7 13 in
  let l13_29 = Graph.link_between_labels graph 13 29 in
  {
    graph;
    ingress = as1;
    egress = as3;
    primary = [ 10; 7; 13; 29 ];
    partial_protection = [ (11, 13); (19, 13); (31, 29) ];
    full_protection = [ (17, 13); (37, 43); (43, 29) ];
    failures =
      [
        { name = "SW10-SW7"; link = l10_7 };
        { name = "SW7-SW13"; link = l7_13 };
        { name = "SW13-SW29"; link = l13_29 };
      ];
  }

(* RNP backbone reconstruction: 28 PoPs (IDs = primes 7..127), 40 links.

   Every adjacency named in section 3.2 of the paper is present:
   SW7-{11,13}; SW13 adjacent to 7,41,29,17,47,37,71 (so a SW13-SW41
   failure deflects to one of five candidates); SW41 adjacent to
   13,73,17,61 (a SW41-SW73 failure deflects to 17 or 61); the protection
   links 17-71, 61-67, 67-71, 71-73; and the Fig. 8 cluster
   73-{107,109}, 107-113, 109-113 with SW107/SW109 of degree two.  Link
   rates are tiered to mimic the heterogeneous RNP capacities. *)
let rnp_graph_and_links ~east_host () =
  let b = Graph.Builder.create () in
  let core = Hashtbl.create 32 in
  List.iter
    (fun id -> Hashtbl.replace core id (Graph.Builder.add_node b id))
    [ 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71; 73;
      79; 83; 89; 97; 101; 103; 107; 109; 113; 127 ];
  let n id = Hashtbl.find core id in
  (* Hosts are attached only at the experiment's endpoints, as in the
     paper's emulation: Boa Vista plus either Sao Paulo (Fig. 6/7) or the
     Fig. 8 destination SW113. *)
  let as_north = Graph.Builder.add_node b ~kind:Graph.Edge 1001 in
  let as_far =
    Graph.Builder.add_node b ~kind:Graph.Edge (if east_host then 1003 else 1002)
  in
  (* Rates and delays proportional to the real RNP's heterogeneous
     capacities and distances: the northern access around Boa Vista is the
     slow tier (200 Mb/s, 2 ms — it is also the measured flow's nominal
     rate); regional legs run 1 Gb/s at 1 ms; the southern core 3 Gb/s at
     0.5 ms.  Deflected packets therefore never congest the backbone —
     their cost is path inflation and disorder, as in the paper. *)
  let north = (200e6, 2e-3) and regional = (1e9, 1e-3) and backbone = (3e9, 0.5e-3) in
  let core_links =
    shuffled_links 0xb4a21
      [
        (north, 7, 13); (backbone, 13, 41); (backbone, 41, 73);
        (backbone, 73, 107); (backbone, 107, 113); (backbone, 73, 109);
        (backbone, 109, 113);
        (* protection mesh around the primary route *)
        (regional, 7, 11); (regional, 11, 17); (regional, 13, 17);
        (backbone, 17, 71); (backbone, 17, 41); (regional, 41, 61);
        (regional, 61, 67); (regional, 67, 71); (backbone, 71, 73);
        (backbone, 13, 71);
        (* regional links (wandering territory for deflected packets) *)
        (regional, 13, 29); (regional, 13, 47); (regional, 13, 37);
        (regional, 37, 71); (regional, 29, 47); (regional, 47, 43);
        (regional, 43, 53); (regional, 53, 59); (regional, 59, 61);
        (backbone, 71, 79); (backbone, 79, 83); (backbone, 83, 89);
        (backbone, 89, 97);
        (* southern/coastal ring and spurs *)
        (regional, 29, 19); (regional, 19, 23); (regional, 23, 31);
        (regional, 31, 37);
        (backbone, 97, 101); (backbone, 101, 103); (backbone, 103, 113);
        (backbone, 127, 113); (backbone, 127, 89); (regional, 53, 83);
      ]
  in
  (let rate, delay = north in
   ignore (Graph.Builder.add_link b ~rate_bps:rate ~delay_s:delay as_north (n 7)));
  (let rate, delay = regional in
   ignore
     (Graph.Builder.add_link b ~rate_bps:rate ~delay_s:delay
        (n (if east_host then 113 else 73))
        as_far));
  List.iter
    (fun ((rate, delay), u, v) ->
      ignore (Graph.Builder.add_link b ~rate_bps:rate ~delay_s:delay (n u) (n v)))
    core_links;
  let graph = Graph.Builder.finish b in
  let l7_13 = Graph.link_between_labels graph 7 13 in
  let l13_41 = Graph.link_between_labels graph 13 41 in
  let l41_73 = Graph.link_between_labels graph 41 73 in
  let l73_107 = Graph.link_between_labels graph 73 107 in
  (graph, as_north, as_far, l7_13, l13_41, l41_73, l73_107)

let rnp28 =
  let graph, as_north, as_sp, l7_13, l13_41, l41_73, _ =
    rnp_graph_and_links ~east_host:false ()
  in
  {
    graph;
    ingress = as_north;
    egress = as_sp;
    primary = [ 7; 13; 41; 73 ];
    partial_protection = [ (17, 71); (61, 67); (67, 71); (71, 73) ];
    full_protection = [];
    failures =
      [
        { name = "SW7-SW13"; link = l7_13 };
        { name = "SW13-SW41"; link = l13_41 };
        { name = "SW41-SW73"; link = l41_73 };
      ];
  }

let rnp_fig8 =
  let graph, as_north, as_east, _, _, _, l73_107 =
    rnp_graph_and_links ~east_host:true ()
  in
  {
    graph;
    ingress = as_north;
    egress = as_east;
    primary = [ 7; 13; 41; 73; 107; 113 ];
    partial_protection = [ (71, 17); (17, 41) ];
    full_protection = [];
    failures = [ { name = "SW73-SW107"; link = l73_107 } ];
  }

let protection_residues g hops =
  List.map
    (fun (s_label, next_label) ->
      let s = Graph.node_of_label g s_label in
      let next = Graph.node_of_label g next_label in
      match Graph.port_towards g s next with
      | Some p -> (s_label, p)
      | None ->
        invalid_arg
          (Printf.sprintf "Nets.protection_residues: SW%d and SW%d not adjacent"
             s_label next_label))
    hops
