type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# KAR topology\n";
  Graph.iter_nodes g ~f:(fun v ->
      Buffer.add_string buf
        (Printf.sprintf "node %d %s\n" (Graph.label g v)
           (match Graph.kind g v with Graph.Core -> "core" | Graph.Edge -> "edge")));
  List.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "link %d:%d %d:%d %.17g %.17g\n"
           (Graph.label g l.Graph.ep0.Graph.node)
           l.Graph.ep0.Graph.port
           (Graph.label g l.Graph.ep1.Graph.node)
           l.Graph.ep1.Graph.port l.Graph.rate_bps l.Graph.delay_s))
    (Graph.links g);
  Buffer.contents buf

let parse_endpoint line s =
  match String.split_on_char ':' s with
  | [ label; port ] ->
    (try Ok (int_of_string label, int_of_string port)
     with Failure _ -> Error { line; message = "bad endpoint " ^ s })
  | _ -> Error { line; message = "endpoint must be <label>:<port>, got " ^ s }

let of_string s =
  let b = Graph.Builder.create () in
  let nodes = Hashtbl.create 64 in
  let exception Fail of error in
  let fail line message = raise (Fail { line; message }) in
  try
    String.split_on_char '\n' s
    |> List.iteri (fun idx raw ->
           let line = idx + 1 in
           let text =
             match String.index_opt raw '#' with
             | Some i -> String.sub raw 0 i
             | None -> raw
           in
           let fields =
             String.split_on_char ' ' text
             |> List.concat_map (String.split_on_char '\t')
             |> List.filter (fun f -> f <> "")
           in
           match fields with
           | [] -> ()
           | "node" :: label :: kind :: [] ->
             let label =
               try int_of_string label
               with Failure _ -> fail line ("bad node label " ^ label)
             in
             let kind =
               match kind with
               | "core" -> Graph.Core
               | "edge" -> Graph.Edge
               | other -> fail line ("unknown node kind " ^ other)
             in
             if Hashtbl.mem nodes label then fail line "duplicate node label";
             (try Hashtbl.replace nodes label (Graph.Builder.add_node b ~kind label)
              with Invalid_argument m -> fail line m)
           | "link" :: a :: bep :: rest ->
             let la, pa =
               match parse_endpoint line a with Ok v -> v | Error e -> raise (Fail e)
             in
             let lb, pb =
               match parse_endpoint line bep with Ok v -> v | Error e -> raise (Fail e)
             in
             let rate_bps, delay_s =
               match rest with
               | [] -> (None, None)
               | [ r ] ->
                 (try (Some (float_of_string r), None)
                  with Failure _ -> fail line ("bad rate " ^ r))
               | [ r; d ] ->
                 (try (Some (float_of_string r), Some (float_of_string d))
                  with Failure _ -> fail line "bad rate/delay")
               | _ -> fail line "too many link fields"
             in
             let node label =
               match Hashtbl.find_opt nodes label with
               | Some v -> v
               | None -> fail line (Printf.sprintf "unknown node %d" label)
             in
             (try
                ignore
                  (Graph.Builder.add_link_at b ?rate_bps ?delay_s (node la, pa)
                     (node lb, pb))
              with Invalid_argument m -> fail line m)
           | verb :: _ -> fail line ("unknown record " ^ verb));
    (try Ok (Graph.Builder.finish b)
     with Invalid_argument m -> Error { line = 0; message = m })
  with Fail e -> Error e

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))

let save path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))
