(** Graphviz export, for inspecting reconstructed topologies. *)

(** [to_dot ?highlight_links ?highlight_nodes g] renders an undirected DOT
    graph; node names are [SW<label>] for core switches and [AS<label>] for
    edge nodes.  Highlighted elements are drawn bold/red (used to show
    primary routes and protection paths). *)
val to_dot :
  ?highlight_links:Graph.link_id list ->
  ?highlight_nodes:Graph.node list ->
  Graph.t ->
  string

(** [write_dot path g] writes {!to_dot} output to a file. *)
val write_dot :
  ?highlight_links:Graph.link_id list ->
  ?highlight_nodes:Graph.node list ->
  string ->
  Graph.t ->
  unit
