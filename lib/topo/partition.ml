type t = {
  n_regions : int;
  region_of : int array;
  cut_links : Graph.link_id list;
  cut_ratio : float;
  lookahead : float;
}

(* Plain BFS distance vector from [src], hop metric, whole graph. *)
let distances g src =
  let n = Graph.n_nodes g in
  let dist = Array.make n max_int in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun u ->
        if dist.(u) = max_int then begin
          dist.(u) <- dist.(v) + 1;
          Queue.push u q
        end)
      (Graph.neighbors g v)
  done;
  dist

(* Farthest-first seed spreading: node 0, then repeatedly the node
   maximising the distance to its nearest seed (lowest index on ties, so
   the result is deterministic). *)
let spread_seeds g ~regions =
  let n = Graph.n_nodes g in
  let nearest = Array.make n max_int in
  let seeds = ref [ 0 ] in
  let absorb s =
    let d = distances g s in
    for v = 0 to n - 1 do
      if d.(v) < nearest.(v) then nearest.(v) <- d.(v)
    done
  in
  absorb 0;
  for _ = 2 to regions do
    let best = ref (-1) and best_d = ref (-1) in
    for v = 0 to n - 1 do
      if nearest.(v) <> max_int && nearest.(v) > !best_d then begin
        best := v;
        best_d := nearest.(v)
      end
    done;
    if !best < 0 then invalid_arg "Partition.make: graph is disconnected";
    seeds := !best :: !seeds;
    absorb !best
  done;
  Array.of_list (List.rev !seeds)

let make g ~regions =
  let n = Graph.n_nodes g in
  if regions < 1 then invalid_arg "Partition.make: regions must be >= 1";
  if regions > n then
    invalid_arg
      (Printf.sprintf
         "Partition.make: %d regions requested but the graph has only %d \
          nodes"
         regions n);
  let region_of = Array.make n (-1) in
  if regions = 1 then Array.fill region_of 0 n 0
  else begin
    let seeds = spread_seeds g ~regions in
    Array.iteri (fun r s -> region_of.(s) <- r) seeds;
    let size = Array.make regions 1 in
    let assigned = ref regions in
    (* Min-cut-biased growth: the smallest still-growable region claims
       the unassigned neighbour with the most neighbours already inside
       it (ties: lowest node index).  Regions whose whole frontier is
       claimed stop growing; the rest absorb what remains, so the
       partition always covers the graph. *)
    let frontier_pick r =
      let best = ref (-1) and best_score = ref (-1) in
      for v = 0 to n - 1 do
        if region_of.(v) = -1 then begin
          let inside = ref 0 and touches = ref false in
          List.iter
            (fun u ->
              if region_of.(u) = r then begin
                touches := true;
                incr inside
              end)
            (Graph.neighbors g v);
          if !touches && !inside > !best_score then begin
            best := v;
            best_score := !inside
          end
        end
      done;
      !best
    in
    let stalled = Array.make regions false in
    while !assigned < n do
      (* smallest non-stalled region *)
      let r = ref (-1) in
      for c = regions - 1 downto 0 do
        if (not stalled.(c)) && (!r < 0 || size.(c) <= size.(!r)) then r := c
      done;
      if !r < 0 then invalid_arg "Partition.make: graph is disconnected";
      match frontier_pick !r with
      | -1 -> stalled.(!r) <- true
      | v ->
        region_of.(v) <- !r;
        size.(!r) <- size.(!r) + 1;
        incr assigned
    done
  end;
  let cut_links =
    List.filter_map
      (fun (l : Graph.link) ->
        if region_of.(l.Graph.ep0.Graph.node) <> region_of.(l.Graph.ep1.Graph.node)
        then Some l.Graph.id
        else None)
      (Graph.links g)
  in
  let n_links = Graph.n_links g in
  let cut_ratio =
    if n_links = 0 then 0.0
    else float_of_int (List.length cut_links) /. float_of_int n_links
  in
  let lookahead =
    List.fold_left
      (fun acc id -> Float.min acc (Graph.link g id).Graph.delay_s)
      infinity cut_links
  in
  { n_regions = regions; region_of; cut_links; cut_ratio; lookahead }

let validate p g =
  let n = Graph.n_nodes g in
  if Array.length p.region_of <> n then Error "region_of length mismatch"
  else begin
    let bad = ref None in
    Array.iteri
      (fun v r ->
        if r < 0 || r >= p.n_regions then
          bad := Some (Printf.sprintf "node %d has region %d" v r))
      p.region_of;
    match !bad with
    | Some e -> Error e
    | None ->
      let size = Array.make p.n_regions 0 in
      Array.iter (fun r -> size.(r) <- size.(r) + 1) p.region_of;
      (match Array.to_list size |> List.find_opt (fun s -> s = 0) with
       | Some _ -> Error "empty region"
       | None ->
         (* connectivity: BFS inside each region from its first node *)
         let seen = Array.make n false in
         let connected r =
           let start = ref (-1) in
           for v = n - 1 downto 0 do
             if p.region_of.(v) = r then start := v
           done;
           let q = Queue.create () in
           let count = ref 0 in
           seen.(!start) <- true;
           Queue.push !start q;
           while not (Queue.is_empty q) do
             let v = Queue.pop q in
             incr count;
             List.iter
               (fun u ->
                 if p.region_of.(u) = r && not seen.(u) then begin
                   seen.(u) <- true;
                   Queue.push u q
                 end)
               (Graph.neighbors g v)
           done;
           !count = size.(r)
         in
         let rec check r =
           if r = p.n_regions then Ok ()
           else if connected r then check (r + 1)
           else Error (Printf.sprintf "region %d is disconnected" r)
         in
         check 0)
  end
