(** Synthetic topology generators.

    These feed the scalability and ablation studies (route-ID bit growth
    versus network size, deflection behaviour on regular versus random
    graphs).  Generated nodes are all [Core] kind and carry placeholder
    labels [1 .. n]; run a {e switch-ID assignment} (in the [kar] library)
    before encoding routes, since placeholder labels are not pairwise
    coprime. *)

(** [line n] is a path graph of [n] nodes. *)
val line : int -> Graph.t

(** [ring n] is a cycle of [n >= 3] nodes. *)
val ring : int -> Graph.t

(** [grid ~w ~h] is a [w*h] mesh. *)
val grid : w:int -> h:int -> Graph.t

(** [complete n] is the complete graph on [n] nodes. *)
val complete : int -> Graph.t

(** [torus ~w ~h] is a wrap-around mesh (every node degree 4; [w, h >= 3]). *)
val torus : w:int -> h:int -> Graph.t

(** [gnp ~n ~p ~seed] is an Erdos-Renyi random graph conditioned on
    connectivity: edges are re-sampled (up to a bounded number of attempts)
    until the graph is connected.
    @raise Failure if no connected sample is found. *)
val gnp : n:int -> p:float -> seed:int -> Graph.t

(** [waxman ~n ~alpha ~beta ~seed] places nodes uniformly in the unit square
    and connects with the Waxman probability model — the standard generator
    for ISP-like topologies (long links are rarer).  Conditioned on
    connectivity like {!gnp}. *)
val waxman : n:int -> alpha:float -> beta:float -> seed:int -> Graph.t

(** [with_edge_hosts g attach] returns a copy of [g] with one [Edge] host
    attached to each listed core node; the new hosts get labels
    [1000, 1001, ...] above the maximum core label.  Returns the new graph
    and the host nodes in order. *)
val with_edge_hosts : Graph.t -> Graph.node list -> Graph.t * Graph.node list
