(** Counterexample traces: a {!Verifier.refutation} replayed into the
    flight-recorder {!Trace} format and machine-checked by the same
    invariant checker that audits live engine runs.

    The synthesized events mirror the Karnet recorder shapes exactly
    (hop-bump accounting, Reencode at the stranding edge with in=-1 and
    out=0, TTL deaths recording a ttl field of -1), so a refutation trace
    is indistinguishable in format from an engine trace and flows through
    the same tooling — including the golden-fixture diffing. *)

(** [events inst r ~init_stranded] renders the refutation as a complete
    single-packet trace (uid 0): Inject, one decision event per hop —
    loops unrolled until the TTL kills the run — any Reencode events, and
    the terminal Drop.  [init_stranded] is the second component of
    {!Verifier.refute}'s result. *)
val events :
  Verifier.instance ->
  Verifier.refutation ->
  init_stranded:int ->
  Trace.Event.t list

(** [check inst r ~init_stranded] runs {!Trace.Invariant.check} with
    [~expect_delivery:true] over the synthesized trace.  A correct
    refutation yields a [delivery] violation (and, for driven loops, a
    [driven-loop] one) but must stay structurally clean — see
    {!well_formed}. *)
val check :
  Verifier.instance ->
  Verifier.refutation ->
  init_stranded:int ->
  Trace.Invariant.violation list

(** No [conservation], [ttl] or [fifo] violations: the synthesized trace
    is a well-formed packet history.  ([driven-loop] is allowed — an
    adversarial driven loop is a legitimate refutation, not a malformed
    trace.) *)
val well_formed : Trace.Invariant.violation list -> bool

(** At least one [delivery] violation: the trace actually witnesses a
    packet that was never delivered. *)
val refutes : Trace.Invariant.violation list -> bool
