module Graph = Topo.Graph

type outcome = {
  can_deliver : bool;
  can_drop : bool;
  can_loop : bool;
  states : int;
  min_deliver_hops : int;
}

type classification =
  | Guaranteed
  | Policy_dependent
  | Loop
  | Blackhole
  | Disconnected

let classification_to_string = function
  | Guaranteed -> "guaranteed"
  | Policy_dependent -> "policy-dependent"
  | Loop -> "loop"
  | Blackhole -> "blackhole"
  | Disconnected -> "disconnected"

let all_classifications =
  [ Guaranteed; Policy_dependent; Loop; Blackhole; Disconnected ]

type instance = {
  graph : Graph.t;
  src : Graph.node;
  dst : Graph.node;
  policy : Kar.Policy.t;
  ttl : int;
  plans : Compiler.t array;
  plan_of_edge : int array;
}

let prepare ?(ttl = 128) g ~plan ~policy ~src ~dst () =
  let primary = Compiler.compile g ~plan ~policy in
  let compiled = ref [ primary ] in
  let n = ref 1 in
  let plan_of_edge = Array.make (Graph.n_nodes g) (-1) in
  List.iter
    (fun e ->
      if e <> dst then
        (* Mirror Controller.reencode: an unprotected shortest-path plan
           from the stranding edge, computed on the failure-free graph. *)
        match Kar.Controller.route g ~src:e ~dst ~protection:[] with
        | p ->
          compiled := Compiler.compile g ~plan:p ~policy :: !compiled;
          plan_of_edge.(e) <- !n;
          incr n
        | exception Invalid_argument _ -> ())
    (Graph.edge_nodes g);
  {
    graph = g;
    src;
    dst;
    policy;
    ttl;
    plans = Array.of_list (List.rev !compiled);
    plan_of_edge;
  }

(* Physical reachability of dst from src in g - F, transiting core switches
   only (an edge node other than the endpoints cannot relay traffic).  The
   yardstick for the ideal-resilience comparison: when this is false no
   routing scheme could deliver, and the failure set is classified
   [Disconnected] rather than held against KAR. *)
let connected inst ~failed =
  let g = inst.graph in
  let ok v = Graph.is_core g v || v = inst.src || v = inst.dst in
  let seen = Array.make (Graph.n_nodes g) false in
  let q = Queue.create () in
  seen.(inst.src) <- true;
  Queue.push inst.src q;
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let v = Queue.pop q in
    if v = inst.dst then found := true
    else
      List.iter
        (fun (_, (l : Graph.link), far) ->
          if (not failed.(l.Graph.id)) && ok far && not seen.(far) then begin
            seen.(far) <- true;
            Queue.push far q
          end)
        (Graph.ports g v)
  done;
  !found

(* --- the state graph ---

   A state is (plan index, core node, input port, deflected): exactly what
   the compiled data plane consults.  TTL is deliberately not part of the
   state: a reachable cycle in this finite graph is a run that exhausts any
   TTL, and acyclic runs are bounded by the longest path, which [verify]
   checks against the TTL explicitly. *)

type step = {
  switch : int;
  in_port : int;
  out_port : int;
  via_computed : bool;
  deflected_before : bool;
  deflected_after : bool;
  stranded : int;
      (* label of the edge the packet stranded at (and was re-encoded by)
         after this hop, or -1 when it landed on a core switch / terminal *)
}

type refutation =
  | Drops of { steps : step list; at : int; at_in_port : int }
  | Loops of { prefix : step list; cycle : step list }

type target =
  | T_state of int
  | T_deliver
  | T_drop of { at : int; at_in_port : int }

type exploration = {
  n_states : int;
  succs : (target * step option) list array;
      (* per state, the decision's fan-out; [step] is [None] only for the
         drop-at-this-switch pseudo-transition *)
  init : target;
  init_stranded : int;
      (* edge the packet stranded at straight off injection, or -1 *)
}

let explore inst ~failed =
  let g = inst.graph in
  let n_nodes = Graph.n_nodes g in
  let n_plans = Array.length inst.plans in
  let masks =
    Array.init n_nodes (fun v ->
        if Graph.is_core g v then
          Compiler.mask_of_failures g ~node:v ~failed:(fun id -> failed.(id))
        else 0)
  in
  let ids : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let state_of : (int, int * int * int * bool) Hashtbl.t =
    Hashtbl.create 256
  in
  let n_states = ref 0 in
  let todo = Queue.create () in
  let key ~plan ~node ~in_port ~deflected =
    (((plan * n_nodes) + node) * (n_nodes + 2))
    + (in_port + 1)
    + if deflected then n_plans * n_nodes * (n_nodes + 2) else 0
  in
  let state_id ~plan ~node ~in_port ~deflected =
    let k = key ~plan ~node ~in_port ~deflected in
    match Hashtbl.find_opt ids k with
    | Some id -> id
    | None ->
      let id = !n_states in
      incr n_states;
      Hashtbl.add ids k id;
      Hashtbl.add state_of id (plan, node, in_port, deflected);
      Queue.push id todo;
      id
  in
  (* Landing on node [u] via port [q]: a core switch becomes a state; an
     edge node delivers, re-encodes (continuing out its port 0 under the
     edge's own plan with a cleared deflected flag, exactly like Karnet's
     edge handler), or drops the packet when no re-encode plan exists.
     Returns the target and the label of the stranding edge (or -1). *)
  let rec land_on ~depth ~plan ~node:u ~in_port:q ~deflected =
    if depth > n_nodes then
      invalid_arg "Verifier: edge-to-edge relay chain (unsupported topology)";
    if Graph.is_core g u then
      (T_state (state_id ~plan ~node:u ~in_port:q ~deflected), -1)
    else if u = inst.dst then (T_deliver, -1)
    else
      match inst.plan_of_edge.(u) with
      | -1 -> (T_drop { at = Graph.label g u; at_in_port = q }, -1)
      | plan' ->
        let w, r = Graph.peer g u 0 in
        let t, _ =
          land_on ~depth:(depth + 1) ~plan:plan' ~node:w ~in_port:r
            ~deflected:false
        in
        (t, Graph.label g u)
  in
  let init, init_stranded =
    (* injection: the source edge ships the packet out its port 0 *)
    let w, r = Graph.peer g inst.src 0 in
    land_on ~depth:0 ~plan:0 ~node:w ~in_port:r ~deflected:false
  in
  let succs_tbl : (int, (target * step option) list) Hashtbl.t =
    Hashtbl.create 256
  in
  while not (Queue.is_empty todo) do
    let id = Queue.pop todo in
    let plan, v, in_port, deflected = Hashtbl.find state_of id in
    let st = Compiler.table_exn inst.plans.(plan) v in
    let out ports_mask ~via_computed ~deflected_after =
      let rec go p acc =
        if p >= st.Compiler.degree then List.rev acc
        else if ports_mask land (1 lsl p) = 0 then go (p + 1) acc
        else begin
          let u, q = Graph.peer g v p in
          let t, strand =
            land_on ~depth:0 ~plan ~node:u ~in_port:q
              ~deflected:deflected_after
          in
          let step =
            {
              switch = st.Compiler.switch_id;
              in_port;
              out_port = p;
              via_computed;
              deflected_before = deflected;
              deflected_after;
              stranded = strand;
            }
          in
          go (p + 1) ((t, Some step) :: acc)
        end
      in
      go 0 []
    in
    let successors =
      match Compiler.action_of st ~mask:masks.(v) ~in_port ~deflected with
      | Compiler.Drop ->
        [ (T_drop { at = st.Compiler.switch_id; at_in_port = in_port }, None) ]
      | Compiler.Forward p ->
        out (1 lsl p) ~via_computed:true ~deflected_after:deflected
      | Compiler.Deflect m -> out m ~via_computed:false ~deflected_after:true
    in
    Hashtbl.replace succs_tbl id successors
  done;
  let succs =
    Array.init !n_states (fun id ->
        match Hashtbl.find_opt succs_tbl id with Some l -> l | None -> [])
  in
  { n_states = !n_states; succs; init; init_stranded }

(* Reachability of a terminal predicate, by fixpoint over the (small)
   state set. *)
let reaches expl ~terminal =
  let reach = Array.make (max expl.n_states 1) false in
  let direct targets =
    List.exists
      (fun (t, _) ->
        match t with T_state id -> reach.(id) | t -> terminal t)
      targets
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for id = 0 to expl.n_states - 1 do
      if (not reach.(id)) && direct expl.succs.(id) then begin
        reach.(id) <- true;
        changed := true
      end
    done
  done;
  match expl.init with
  | T_state id -> reach.(id)
  | t -> terminal t

let is_deliver = function T_deliver -> true | _ -> false
let is_drop = function T_drop _ -> true | _ -> false

(* Cycle detection over the states reachable from init (every explored
   state is reachable by construction): 3-colour DFS. *)
let has_cycle expl =
  let color = Array.make (max expl.n_states 1) 0 in
  let cycle = ref false in
  let rec visit id =
    if color.(id) = 1 then cycle := true
    else if color.(id) = 0 then begin
      color.(id) <- 1;
      List.iter
        (fun (t, _) -> match t with T_state s -> visit s | _ -> ())
        expl.succs.(id);
      color.(id) <- 2
    end
  in
  (match expl.init with T_state id -> visit id | _ -> ());
  !cycle

(* Hop accounting matches Karnet: a switch arrival bumps the hop count and
   the decision only happens when hops <= ttl.  The init state is arrival
   1; each transition is one further arrival.  Delivery from a state at
   BFS depth d therefore needs d <= ttl. *)
let shortest_deliver expl =
  match expl.init with
  | T_deliver -> Some 0
  | T_drop _ -> None
  | T_state init ->
    let dist = Array.make expl.n_states (-1) in
    dist.(init) <- 1;
    let q = Queue.create () in
    Queue.push init q;
    let best = ref None in
    while !best = None && not (Queue.is_empty q) do
      let id = Queue.pop q in
      if List.exists (fun (t, _) -> is_deliver t) expl.succs.(id) then
        best := Some dist.(id)
      else
        List.iter
          (fun (t, _) ->
            match t with
            | T_state s when dist.(s) < 0 ->
              dist.(s) <- dist.(id) + 1;
              Queue.push s q
            | _ -> ())
          expl.succs.(id)
    done;
    !best

(* Longest run (in switch arrivals) of the acyclic state graph — only
   meaningful when [has_cycle] is false. *)
let longest_run expl =
  match expl.init with
  | T_state init ->
    let memo = Array.make expl.n_states (-1) in
    let rec depth id =
      if memo.(id) >= 0 then memo.(id)
      else begin
        let deepest =
          List.fold_left
            (fun acc (t, _) ->
              match t with T_state s -> max acc (depth s) | _ -> acc)
            0 expl.succs.(id)
        in
        memo.(id) <- 1 + deepest;
        memo.(id)
      end
    in
    depth init
  | _ -> 0

let failed_array g links =
  let failed = Array.make (Graph.n_links g) false in
  List.iter (fun id -> failed.(id) <- true) links;
  failed

let verify inst ~failed:failed_links =
  let failed = failed_array inst.graph failed_links in
  let expl = explore inst ~failed in
  let cyc = has_cycle expl in
  let min_deliver_hops =
    match shortest_deliver expl with Some d -> d | None -> -1
  in
  (* TTL guards: a delivery deeper than the TTL is unreachable in the real
     data plane, and an acyclic run longer than the TTL still dies of TTL
     exhaustion (counted in the loop class — TTL death is how loops
     manifest in the engine). *)
  let can_deliver = min_deliver_hops >= 0 && min_deliver_hops <= inst.ttl in
  let can_drop = reaches expl ~terminal:is_drop in
  let can_loop = cyc || longest_run expl > inst.ttl in
  let outcome =
    {
      can_deliver;
      can_drop;
      can_loop;
      states = expl.n_states;
      min_deliver_hops;
    }
  in
  let classification =
    if not (connected inst ~failed) then Disconnected
    else if can_deliver && (not can_drop) && not can_loop then Guaranteed
    else if can_deliver then Policy_dependent
    else if can_loop then Loop
    else Blackhole
  in
  (classification, outcome)

(* --- refutation witnesses ---

   A refutation is one concrete resolution of the deflection choices that
   fails: a finite run into a drop, or a lasso (prefix + cycle) whose
   unrolling dies of TTL.  {!Counterexample} turns either into a
   Trace-format replay. *)

let steps_of_path path = List.filter_map (fun (_, s) -> s) path

let refute_drop expl =
  match expl.init with
  | T_drop { at; at_in_port } -> Some (Drops { steps = []; at; at_in_port })
  | T_deliver -> None
  | T_state init ->
    (* BFS with parent pointers to the nearest drop *)
    let parent = Array.make expl.n_states None in
    let seen = Array.make expl.n_states false in
    seen.(init) <- true;
    let q = Queue.create () in
    Queue.push init q;
    let found = ref None in
    while !found = None && not (Queue.is_empty q) do
      let id = Queue.pop q in
      List.iter
        (fun (t, s) ->
          match t with
          | T_drop { at; at_in_port } when !found = None ->
            found := Some (id, s, at, at_in_port)
          | T_state nxt when not seen.(nxt) ->
            seen.(nxt) <- true;
            parent.(nxt) <- Some (id, s);
            Queue.push nxt q
          | _ -> ())
        expl.succs.(id)
    done;
    (match !found with
     | None -> None
     | Some (last, last_step, at, at_in_port) ->
       let rec unwind id acc =
         match parent.(id) with
         | None -> acc
         | Some (prev, s) -> unwind prev ((prev, s) :: acc)
       in
       let path = unwind last [] @ [ (last, last_step) ] in
       Some (Drops { steps = steps_of_path path; at; at_in_port }))

let refute_loop expl =
  match expl.init with
  | T_state init ->
    (* DFS lasso search; the trail records (from-state, to-state, step)
       per traversed edge *)
    let color = Array.make expl.n_states 0 in
    let result = ref None in
    let rec visit trail id =
      if !result = None then begin
        color.(id) <- 1;
        List.iter
          (fun (t, s) ->
            match t with
            | T_state nxt when !result = None ->
              if color.(nxt) = 1 then begin
                let trail' = List.rev ((id, nxt, s) :: trail) in
                let rec split acc = function
                  | [] -> None
                  | ((from, _, _) as tr) :: rest ->
                    if from = nxt then Some (List.rev acc, tr :: rest)
                    else split (tr :: acc) rest
                in
                match split [] trail' with
                | Some (prefix, cycle) ->
                  let steps l =
                    steps_of_path (List.map (fun (f, _, s) -> (f, s)) l)
                  in
                  result :=
                    Some (Loops { prefix = steps prefix; cycle = steps cycle })
                | None -> ()
              end
              else if color.(nxt) = 0 then visit ((id, nxt, s) :: trail) nxt
            | _ -> ())
          expl.succs.(id);
        if !result = None then color.(id) <- 2
      end
    in
    visit [] init;
    !result
  | _ -> None

(* [refute inst ~failed] is one concrete failing run under F, or [None]
   when delivery is guaranteed (or immediate).  Prefers the drop witness
   (shorter traces).  Also returns the label of the edge the packet
   stranded at straight off injection (-1 normally) so the emitter can
   reproduce the initial re-encode. *)
let refute inst ~failed:failed_links =
  let failed = failed_array inst.graph failed_links in
  let expl = explore inst ~failed in
  let r =
    match refute_drop expl with Some r -> Some r | None -> refute_loop expl
  in
  (r, expl.init_stranded)
