(** Exhaustive k-failure resilience verification.

    Given a compiled plan ({!Compiler}) and a concrete failure set F, the
    verifier decides — not samples — what can happen to a packet from
    [src] to [dst]: it walks the compiled forwarding tables as a
    finite-state reachability problem whose state is (current plan, core
    switch, input port, deflected flag), treating every deflection draw
    as a {e universal} choice over the compiled candidate set.  Edge
    behaviour mirrors Karnet exactly: landing on the destination edge
    delivers; landing on a foreign edge re-encodes (an unprotected
    shortest-path plan on the failure-free graph, deflected flag cleared)
    or drops when no path exists.

    The verdict is the meet of all resolutions of the choices:

    - {!Guaranteed}: every resolution delivers within the TTL;
    - {!Policy_dependent}: some resolution delivers, some drops or loops
      — delivery hinges on how the deflection draws land;
    - {!Loop}: no resolution delivers and some resolution cycles (dying
      of TTL in the real engine);
    - {!Blackhole}: no resolution delivers, every resolution drops;
    - {!Disconnected}: F physically cuts [src] from [dst] — no routing
      scheme could deliver, so the set is excluded from the resilience
      comparison (the Chiesa et al. ideal-resilience yardstick).

    Adversarial guarantee is strictly stronger than empirical delivery:
    a {!Policy_dependent} pair can deliver every packet of a randomized
    simulation (an unlucky infinite draw sequence has probability zero)
    while still admitting a finite refutation.  The k=1 agreement test in
    test_verify is therefore directional, not an equivalence. *)

module Graph = Topo.Graph

(** What the resolutions of the deflection choices can do, before the
    verdict collapses them. *)
type outcome = {
  can_deliver : bool;  (** some resolution delivers within the TTL *)
  can_drop : bool;  (** some resolution hits a dead end and drops *)
  can_loop : bool;
      (** some resolution cycles, or runs longer than the TTL *)
  states : int;  (** explored (plan, switch, in-port, deflected) states *)
  min_deliver_hops : int;  (** shortest delivering run, -1 when none *)
}

type classification =
  | Guaranteed
  | Policy_dependent
  | Loop
  | Blackhole
  | Disconnected

val classification_to_string : classification -> string
val all_classifications : classification list

(** A prepared (and compiled) verification instance for one (src, dst)
    pair: the primary plan at index 0 plus one re-encode plan per edge
    node that can reach [dst], shared across all failure sets. *)
type instance = {
  graph : Graph.t;
  src : Graph.node;
  dst : Graph.node;
  policy : Kar.Policy.t;
  ttl : int;
  plans : Compiler.t array;
  plan_of_edge : int array;  (** node -> plan index, -1 when unreachable *)
}

(** [prepare ?ttl g ~plan ~policy ~src ~dst ()] compiles the primary plan
    and every re-encode plan once; [ttl] defaults to 128 (Karnet's
    default). *)
val prepare :
  ?ttl:int ->
  Graph.t ->
  plan:Kar.Route.plan ->
  policy:Kar.Policy.t ->
  src:Graph.node ->
  dst:Graph.node ->
  unit ->
  instance

(** [verify inst ~failed] classifies the instance under the failure set
    [failed] (link ids). *)
val verify : instance -> failed:Graph.link_id list -> classification * outcome

(** One hop of a concrete witness run. *)
type step = {
  switch : int;  (** switch id (label) making the decision *)
  in_port : int;
  out_port : int;
  via_computed : bool;  (** modulo answer, vs. a deflection draw *)
  deflected_before : bool;
  deflected_after : bool;
  stranded : int;
      (** label of the edge the packet stranded at (and was re-encoded
          by) after this hop, or -1 *)
}

(** A concrete failing run: a finite walk into a drop, or a lasso whose
    unrolling exhausts the TTL. *)
type refutation =
  | Drops of { steps : step list; at : int; at_in_port : int }
  | Loops of { prefix : step list; cycle : step list }

(** [refute inst ~failed] is one concrete failing run under [failed]
    ([None] when delivery is guaranteed), plus the label of the edge the
    packet stranded at straight off injection (-1 normally) so
    {!Counterexample} can reproduce the initial re-encode. *)
val refute : instance -> failed:Graph.link_id list -> refutation option * int
