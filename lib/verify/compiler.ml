module Graph = Topo.Graph

type action =
  | Forward of int
  | Deflect of int
  | Drop

type switch_table = {
  node : Graph.node;
  switch_id : int;
  degree : int;
  primary : int;
  actions : action array;
}

type t = {
  graph : Graph.t;
  plan : Kar.Route.plan;
  policy : Kar.Policy.t;
  tables : switch_table option array;
}

(* actions.(slot mask in_port deflected): in_port ranges over -1 (local
   injection) and the real ports, so a row is 2 * (degree + 1) entries and
   the whole table 2^degree of them. *)
let slot ~degree ~mask ~in_port ~deflected =
  (((mask * (degree + 1)) + (in_port + 1)) * 2) + if deflected then 1 else 0

let action_of st ~mask ~in_port ~deflected =
  if mask < 0 || mask lsr st.degree <> 0 then
    invalid_arg "Compiler.action_of: mask out of range";
  if in_port < -1 || in_port >= st.degree then
    invalid_arg "Compiler.action_of: in_port out of range";
  st.actions.(slot ~degree:st.degree ~mask ~in_port ~deflected)

let full_mask st = (1 lsl st.degree) - 1

let mask_of_failures g ~node ~failed =
  let degree = Graph.degree g node in
  let rec go p acc =
    if p >= degree then acc
    else
      go (p + 1)
        (if failed (Graph.link_at g node p).Graph.id then acc
         else acc lor (1 lsl p))
  in
  go 0 0

let compile_switch g ~plan ~policy v =
  let switch_id = Graph.label g v in
  let degree = Graph.degree g v in
  let primary =
    Kar.Route.cached_port plan ~route_id:plan.Kar.Route.route_id ~switch_id
  in
  let n_masks = 1 lsl degree in
  let actions = Array.make (n_masks * (degree + 1) * 2) Drop in
  for mask = 0 to n_masks - 1 do
    let up p = mask land (1 lsl p) <> 0 in
    for in_port = -1 to degree - 1 do
      List.iter
        (fun deflected ->
          let a =
            match
              Kar.Policy.enumerate policy ~computed:primary ~in_port
                ~deflected ~degree ~up
            with
            | Kar.Policy.Take p -> Forward p
            | Kar.Policy.Pick m -> Deflect m
            | Kar.Policy.Stuck -> Drop
          in
          actions.(slot ~degree ~mask ~in_port ~deflected) <- a)
        [ false; true ]
    done
  done;
  { node = v; switch_id; degree; primary; actions }

let compile g ~plan ~policy =
  let tables = Array.make (Graph.n_nodes g) None in
  List.iter
    (fun v -> tables.(v) <- Some (compile_switch g ~plan ~policy v))
    (Graph.core_nodes g);
  { graph = g; plan; policy; tables }

let table t v = t.tables.(v)

let table_exn t v =
  match t.tables.(v) with
  | Some st -> st
  | None ->
    invalid_arg
      (Printf.sprintf "Compiler.table_exn: node %d is not a core switch" v)

let is_protected t switch_id =
  let rp = t.plan.Kar.Route.residue_ports in
  switch_id >= 0 && switch_id < Array.length rp && rp.(switch_id) >= 0

let pp_action ppf = function
  | Forward p -> Format.fprintf ppf "forward:%d" p
  | Deflect m ->
    let rec ports p acc =
      if 1 lsl p > m then List.rev acc
      else ports (p + 1) (if m land (1 lsl p) <> 0 then p :: acc else acc)
    in
    Format.fprintf ppf "deflect:{%s}"
      (String.concat "," (List.map string_of_int (ports 0 [])))
  | Drop -> Format.pp_print_string ppf "drop"
