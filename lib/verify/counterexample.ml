module Graph = Topo.Graph

(* Event synthesis mirrors the Karnet recorder shapes exactly (see
   lib/netsim/net.ml / karnet.ml): vtime is the hop index, the ttl field
   is [ttl - hops] with hops bumped at every core-switch arrival, Reencode
   happens at the stranding edge with in=-1/out=0 and no hop bump, and a
   TTL death records ttl = -1 (the engine drops after bumping past the
   budget).  The synthesized trace is then machine-checked by the same
   {!Trace.Invariant} checker that audits live engine runs. *)

let uid = 0

let events (inst : Verifier.instance) (r : Verifier.refutation)
    ~init_stranded =
  let g = inst.graph in
  let ttl0 = inst.ttl in
  let seq = ref 0 in
  let acc = ref [] in
  let emit ~switch ~in_port ~out_port ~hops action =
    let e =
      {
        Trace.Event.seq = !seq;
        vtime = float_of_int hops;
        uid;
        switch;
        in_port;
        out_port;
        ttl = ttl0 - hops;
        action;
      }
    in
    incr seq;
    acc := e :: !acc
  in
  emit
    ~switch:(Graph.label g inst.src)
    ~in_port:(-1) ~out_port:(-1) ~hops:0 Trace.Event.Inject;
  if init_stranded >= 0 then
    emit ~switch:init_stranded ~in_port:(-1) ~out_port:0 ~hops:0
      Trace.Event.Reencode;
  let policy = Kar.Policy.to_string inst.policy in
  let hops = ref 0 in
  let ttl_dead = ref false in
  let decide (s : Verifier.step) =
    (* one core-switch arrival: bump, die of TTL past the budget, else
       record the decision (and any stranding re-encode it led to) *)
    if not !ttl_dead then begin
      incr hops;
      if !hops > ttl0 then begin
        emit ~switch:s.Verifier.switch ~in_port:s.Verifier.in_port
          ~out_port:(-1) ~hops:!hops (Trace.Event.Drop "ttl");
        ttl_dead := true
      end
      else begin
        let action =
          Trace.Event.decision_action ~via_computed:s.Verifier.via_computed
            ~deflected:s.Verifier.deflected_before
            ~protected_:(Compiler.is_protected inst.plans.(0) s.Verifier.switch)
            ~policy
        in
        emit ~switch:s.Verifier.switch ~in_port:s.Verifier.in_port
          ~out_port:s.Verifier.out_port ~hops:!hops action;
        if s.Verifier.stranded >= 0 then
          emit ~switch:s.Verifier.stranded ~in_port:(-1) ~out_port:0
            ~hops:!hops Trace.Event.Reencode
      end
    end
  in
  (match r with
   | Verifier.Drops { steps; at; at_in_port } ->
     List.iter decide steps;
     if not !ttl_dead then begin
       (* final arrival at the dead end: a core switch bumps the hop count
          (and can itself die of TTL), an edge does not *)
       let is_core =
         match Graph.find_label g at with
         | Some v -> Graph.is_core g v
         | None -> false
       in
       if is_core then incr hops;
       if is_core && !hops > ttl0 then
         emit ~switch:at ~in_port:at_in_port ~out_port:(-1) ~hops:!hops
           (Trace.Event.Drop "ttl")
       else
         emit ~switch:at ~in_port:at_in_port ~out_port:(-1) ~hops:!hops
           (Trace.Event.Drop "no_route")
     end
   | Verifier.Loops { prefix; cycle } ->
     List.iter decide prefix;
     (* unroll the cycle until the TTL kills the run *)
     while not !ttl_dead do
       List.iter decide cycle
     done);
  List.rev !acc

let check inst r ~init_stranded =
  Trace.Invariant.check ~expect_delivery:true (events inst r ~init_stranded)

let well_formed violations =
  List.for_all
    (fun (v : Trace.Invariant.violation) ->
      not (List.mem v.Trace.Invariant.invariant [ "conservation"; "ttl"; "fifo" ]))
    violations

let refutes violations =
  List.exists
    (fun (v : Trace.Invariant.violation) ->
      v.Trace.Invariant.invariant = "delivery")
    violations
