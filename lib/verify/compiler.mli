(** The plan compiler: lowering an opaque [(plan, policy)] pair into an
    explicit per-switch match-action structure.

    The KAR data plane evaluates [R mod s] on the fly; nothing in the
    running system ever materialises "what would switch [s] do for every
    liveness pattern".  This module does exactly that lowering (in the
    spirit of frenetic's NetKAT compiler): for every core switch, for
    every live-port mask, input port and deflected flag, the compiled
    {!switch_table} names the decision outright — the primary (computed)
    port taken deterministically, the exact candidate set a deflection
    draw ranges over, or a drop.  The data plane becomes an inspectable
    finite structure; the exhaustive verifier ({!Verifier}) walks it as a
    finite-state reachability problem.

    Faithfulness is not assumed: the differential suite in test_verify
    checks the compiled action against {!Kar.Policy.decide} on the packed
    fast path for every switch of both paper topologies and every mask
    (and over qcheck-random plans), so the compiler is pinned to the data
    plane it abstracts. *)

module Graph = Topo.Graph

(** One compiled match-action entry. *)
type action =
  | Forward of int
      (** deterministic forward out this port (the modulo answer); the
          deflected flag is preserved *)
  | Deflect of int
      (** uniform draw over the ports in this bitmask; the deflected flag
          becomes true.  The verifier treats this as universal choice. *)
  | Drop

(** The complete forwarding behaviour of one switch under one plan: the
    action for every (live-port mask, input port, deflected) triple. *)
type switch_table = {
  node : Graph.node;
  switch_id : int;
  degree : int;
  primary : int;  (** [<R>_s] — may exceed [degree - 1] off the plan *)
  actions : action array;  (** indexed via {!action_of} *)
}

type t = {
  graph : Graph.t;
  plan : Kar.Route.plan;
  policy : Kar.Policy.t;
  tables : switch_table option array;  (** per node; [None] for edges *)
}

(** [compile g ~plan ~policy] lowers the triple into per-switch tables for
    every core switch of [g]. *)
val compile : Graph.t -> plan:Kar.Route.plan -> policy:Kar.Policy.t -> t

(** [action_of st ~mask ~in_port ~deflected] looks up the compiled
    decision.  [mask] bit [p] set means port [p]'s link is live;
    [in_port = -1] means local injection.
    @raise Invalid_argument when [mask] or [in_port] is out of range. *)
val action_of : switch_table -> mask:int -> in_port:int -> deflected:bool -> action

(** All-ports-live mask for this switch. *)
val full_mask : switch_table -> int

(** [mask_of_failures g ~node ~failed] is the live-port mask of [node]
    when exactly the links satisfying [failed] are down. *)
val mask_of_failures :
  Graph.t -> node:Graph.node -> failed:(Graph.link_id -> bool) -> int

val table : t -> Graph.node -> switch_table option

(** @raise Invalid_argument on an edge node. *)
val table_exn : t -> Graph.node -> switch_table

(** [is_protected t switch_id] — does the compiled plan carry a residue at
    this switch (so a modulo forward of a deflected packet is a driven
    deflection)? *)
val is_protected : t -> int -> bool

val pp_action : Format.formatter -> action -> unit
