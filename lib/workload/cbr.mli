(** Constant-bit-rate (UDP-like) workload: unacknowledged packets injected
    at a fixed rate.  Measures raw delivery ratio, hop inflation and loss
    under failures without TCP dynamics — the "packet loss avoidance"
    claims of the paper's conclusion are checked with this generator. *)

module Net = Netsim.Net

type result = {
  sent : int;
  received : int;
  delivery_ratio : float;
  mean_hops : float; (** over received packets; [nan] if none *)
  mean_latency_s : float; (** over received packets; [nan] if none *)
  reencoded : int; (** received packets that had been edge re-encoded *)
  reordering : Netsim.Reorder.metrics;
      (** RFC 4737-style network reordering of the arrival stream *)
}

(** [run sc ~policy ~level ~rate_pps ~duration_s ~failure ~seed ()] injects
    [rate_pps] packets per second from the scenario ingress to its egress
    for [duration_s] seconds (plus drain time), with [failure] active from
    the start when given. *)
val run :
  Topo.Nets.scenario ->
  policy:Kar.Policy.t ->
  level:Kar.Controller.level ->
  rate_pps:int ->
  duration_s:float ->
  ?failure:Topo.Nets.failure_case ->
  seed:int ->
  unit ->
  result
