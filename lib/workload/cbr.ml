module Net = Netsim.Net
module Engine = Netsim.Engine
module Packet = Netsim.Packet
module Nets = Topo.Nets

type result = {
  sent : int;
  received : int;
  delivery_ratio : float;
  mean_hops : float;
  mean_latency_s : float;
  reencoded : int;
  reordering : Netsim.Reorder.metrics;
}

type Packet.payload += Probe of int (* send sequence *)

let run sc ~policy ~level ~rate_pps ~duration_s ?failure ~seed () =
  if rate_pps <= 0 then invalid_arg "Cbr.run: rate must be positive";
  let engine = Engine.create () in
  let net = Net.create ~graph:sc.Nets.graph ~engine () in
  Netsim.Karnet.install_switches net ~policy ~seed;
  let controller = Kar.Controller.create_cache sc.Nets.graph in
  let received = ref 0
  and hop_total = ref 0
  and latency_total = ref 0.0
  and reencoded = ref 0 in
  let analyzer = Netsim.Reorder.create () in
  List.iter
    (fun v ->
      Netsim.Karnet.install_edge net v
        ~reencode:(fun packet ->
          Kar.Controller.reencode controller ~at:v ~dst:(Packet.dst packet))
        ~receive:(fun net packet ->
          ignore net;
          incr received;
          (match Packet.payload packet with
           | Probe seq -> Netsim.Reorder.observe analyzer seq
           | _ -> ());
          hop_total := !hop_total + Packet.hops packet;
          latency_total :=
            !latency_total +. (Engine.now engine -. Packet.born packet);
          if Packet.reencoded packet > 0 then incr reencoded)
        ())
    (Topo.Graph.edge_nodes sc.Nets.graph);
  (match failure with
   | None -> ()
   | Some fc -> Net.fail_link net fc.Nets.link);
  let plan = Kar.Controller.scenario_plan sc level in
  let interval = 1.0 /. float_of_int rate_pps in
  let sent = ref 0 in
  let rec emit t =
    if t <= duration_s then
      ignore
        (Engine.schedule_at engine t (fun () ->
             incr sent;
             let packet =
               Net.alloc net ~src:sc.Nets.ingress ~dst:sc.Nets.egress
                 ~size_bytes:1500 ~route_id:plan.Kar.Route.route_id
                 (Probe !sent)
             in
             Net.inject net ~at:sc.Nets.ingress packet;
             emit (t +. interval)))
  in
  emit 0.0;
  (* generous drain window for wandering packets *)
  Engine.run_until engine (duration_s +. 5.0);
  {
    sent = !sent;
    received = !received;
    delivery_ratio =
      (if !sent = 0 then 0.0 else float_of_int !received /. float_of_int !sent);
    mean_hops =
      (if !received = 0 then nan
       else float_of_int !hop_total /. float_of_int !received);
    mean_latency_s =
      (if !received = 0 then nan else !latency_total /. float_of_int !received);
    reencoded = !reencoded;
    reordering = Netsim.Reorder.metrics analyzer;
  }
