module Net = Netsim.Net
module Engine = Netsim.Engine
module Nets = Topo.Nets

type data_plane =
  | Kar of Kar.Policy.t
  | Fast_failover

(* What reacts to the failure besides the data plane itself. *)
type reaction =
  | Deflection (* KAR: the data plane is the reaction *)
  | Controller_reroute of float (* notification delay, then re-stamp *)
  | Ingress_failover of float (* 1+1: switch to a disjoint backup plan *)

type timeline_config = {
  policy : data_plane;
  level : Kar.Controller.level;
  failure : Nets.failure_case option;
  pre_s : float;
  fail_s : float;
  post_s : float;
  bin_s : float;
  seed : int;
  reaction : reaction;
  detection_delay_s : float;
  tcp : Tcp.Flow.config;
}

let default_timeline =
  {
    policy = Kar Kar.Policy.Not_input_port;
    level = Kar.Controller.Full;
    failure = None;
    pre_s = 3.0;
    fail_s = 3.0;
    post_s = 3.0;
    bin_s = 0.5;
    seed = 42;
    reaction = Deflection;
    detection_delay_s = 0.0;
    tcp = Tcp.Flow.default_config;
  }

type timeline_result = {
  series : float list;
  mean_pre : float;
  mean_onset : float;
  mean_fail : float;
  mean_post : float;
  flow : Tcp.Flow.stats;
  net_deflections : int;
  net_reencodes : int;
  net_drops : int;
}

let install_data_plane ?plan net policy seed =
  match policy with
  | Kar p -> Netsim.Karnet.install_switches ?plan net ~policy:p ~seed
  | Fast_failover -> Baselines.Fast_failover.install net

let scenario_plans sc level =
  ( Kar.Controller.scenario_plan sc level,
    Kar.Controller.scenario_reverse_plan sc level )

(* Builds the net + stack + one flow; returns what the callers sample.
   [plans] lets replication loops encode the (immutable) route plans once
   and share them across reps and worker domains; only the simulator is
   re-seeded per rep. *)
let setup ?plans sc ~policy ~level ~seed ~sampler ?(detection_delay_s = 0.0)
    ?(tcp = Tcp.Flow.default_config) () =
  let engine = Engine.create () in
  let net =
    Net.create ~graph:sc.Nets.graph ~engine ~detection_delay_s ()
  in
  let fwd, rev =
    match plans with Some p -> p | None -> scenario_plans sc level
  in
  (* Threading the forward plan arms the switches' residue cache; packets
     on any other route ID (reverse traffic, edge re-encodes) miss it and
     take the remainder kernel, so decisions are unchanged. *)
  (match policy with
   | Kar _ -> install_data_plane ~plan:fwd net policy seed
   | Fast_failover -> install_data_plane net policy seed);
  let stack = Tcp.Stack.create ~net () in
  let flow =
    Tcp.Flow.start ~net ~id:1 ~src:sc.Nets.ingress ~dst:sc.Nets.egress
      ~fwd_route:fwd.Kar.Route.route_id ~rev_route:rev.Kar.Route.route_id
      ~config:tcp ~sampler ()
  in
  Tcp.Stack.register stack flow;
  (engine, net, flow)

let timeline sc config =
  let sampler = Tcp.Sampler.create ~bin_s:config.bin_s () in
  let engine, net, flow =
    setup sc ~policy:config.policy ~level:config.level ~seed:config.seed
      ~sampler ~detection_delay_s:config.detection_delay_s ~tcp:config.tcp ()
  in
  let fail_at = config.pre_s in
  let repair_at = config.pre_s +. config.fail_s in
  let t_end = repair_at +. config.post_s in
  (match config.failure with
   | None -> ()
   | Some fc ->
     (match config.reaction with
      | Controller_reroute delay ->
        Baselines.Reroute.arm net ~scenario:sc ~flow ~failure:fc ~at:fail_at
          ~duration:config.fail_s ~notification_delay_s:delay
      | Ingress_failover reaction_s ->
        let plans =
          Kar.Controller.disjoint_plans sc.Nets.graph ~src:sc.Nets.ingress
            ~dst:sc.Nets.egress ~k:2
        in
        Baselines.Edge_failover.arm net ~plans ~flow ~failure:fc ~at:fail_at
          ~duration:config.fail_s ~reaction_s
      | Deflection ->
        Net.schedule_failure net fc.Nets.link ~at:fail_at ~duration:config.fail_s));
  Engine.run_until engine t_end;
  Tcp.Flow.stop flow;
  let stats = Net.stats net in
  let margin = Stdlib.min 0.5 (config.fail_s /. 6.0) in
  {
    series = Tcp.Sampler.series_mbps sampler ~until:t_end;
    mean_pre = Tcp.Sampler.mean_mbps sampler ~from_s:(config.pre_s /. 3.0) ~until:fail_at;
    mean_onset =
      Tcp.Sampler.mean_mbps sampler ~from_s:fail_at
        ~until:(Stdlib.min repair_at (fail_at +. 1.0));
    mean_fail =
      Tcp.Sampler.mean_mbps sampler ~from_s:(fail_at +. margin) ~until:repair_at;
    mean_post =
      Tcp.Sampler.mean_mbps sampler ~from_s:(repair_at +. margin) ~until:t_end;
    flow = Tcp.Flow.stats flow;
    net_deflections = stats.Net.deflections;
    net_reencodes = stats.Net.reencodes;
    net_drops =
      stats.Net.dropped_link_down + stats.Net.dropped_queue_full
      + stats.Net.dropped_no_route + stats.Net.dropped_ttl;
  }

type iperf_config = {
  policy : data_plane;
  level : Kar.Controller.level;
  failure : Nets.failure_case option;
  reps : int;
  rep_duration_s : float;
  warmup_s : float;
  seed : int;
  tcp : Tcp.Flow.config;
}

let default_iperf =
  {
    policy = Kar Kar.Policy.Not_input_port;
    level = Kar.Controller.Partial;
    failure = None;
    reps = 10;
    rep_duration_s = 3.0;
    warmup_s = 0.5;
    seed = 42;
    tcp = Tcp.Flow.default_config;
  }

let one_iperf ?plans sc config ~seed =
  let sampler = Tcp.Sampler.create ~bin_s:0.1 () in
  let engine, net, flow =
    setup ?plans sc ~policy:config.policy ~level:config.level ~seed ~sampler
      ~tcp:config.tcp ()
  in
  (match config.failure with
   | None -> ()
   | Some fc -> Net.fail_link net fc.Nets.link);
  Engine.run_until engine config.rep_duration_s;
  Tcp.Flow.stop flow;
  Tcp.Sampler.mean_mbps sampler ~from_s:config.warmup_s ~until:config.rep_duration_s

let rep_seed config i = config.seed + (1000 * i)

(* Reps are independent simulations seeded by rep index, so they run on
   the domain pool; [Pool.map] restores sample order, which keeps the
   summary byte-identical at any [-j]. *)
let iperf_reps sc config =
  if config.reps <= 0 then invalid_arg "Runner.iperf_reps: reps must be positive";
  let plans = scenario_plans sc config.level in
  let seeds = Array.init config.reps (fun i -> rep_seed config i) in
  let samples =
    Util.Pool.run seeds ~f:(fun ~idx:_ seed -> one_iperf ~plans sc config ~seed)
  in
  Util.Stats.summarize (Array.to_list samples)
