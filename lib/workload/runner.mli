(** Scenario runners: the glue that turns a {!Topo.Nets.scenario} plus a
    policy / protection / failure choice into measured TCP numbers.  Every
    experiment and example builds on these two entry points:

    - {!timeline} — one long-lived flow across a failure window (the
      paper's Fig. 4 methodology: 30 s before, 30 s of failure, 30 s
      after, goodput sampled in bins);
    - {!iperf_reps} — independent repetitions of a short fresh-connection
      transfer with the failure active throughout (the paper's Fig. 5/7/8
      methodology: "we run the performance test iperf for 30 times,
      duration of 5 seconds each, to obtain a confidence interval of
      95%"). *)

module Net = Netsim.Net

(** Which data plane the core runs. *)
type data_plane =
  | Kar of Kar.Policy.t (** KAR switches with the given deflection policy *)
  | Fast_failover (** the stateful baseline from {!Baselines.Fast_failover} *)

(** What reacts to the failure besides the data plane itself. *)
type reaction =
  | Deflection (** KAR: the data plane is the whole reaction *)
  | Controller_reroute of float
      (** the classical SDN loop: after this notification delay the
          controller re-stamps the ingress with a route avoiding the
          failure (pair with [Kar No_deflection]) *)
  | Ingress_failover of float
      (** 1+1 protection: after this reaction delay the ingress switches
          the flow to a precomputed edge-disjoint backup route ID *)

type timeline_config = {
  policy : data_plane;
  level : Kar.Controller.level;
  failure : Topo.Nets.failure_case option;
  pre_s : float; (** seconds before the failure *)
  fail_s : float; (** failure duration *)
  post_s : float; (** seconds after repair *)
  bin_s : float; (** goodput sampling bin *)
  seed : int;
  reaction : reaction;
  detection_delay_s : float;
      (** how long switches keep believing a dead link is alive (0 =
          oracle detection, the paper's implicit assumption) *)
  tcp : Tcp.Flow.config; (** sender/receiver parameters, incl. Reno/CUBIC *)
}

val default_timeline : timeline_config

type timeline_result = {
  series : float list; (** goodput per bin, Mb/s *)
  mean_pre : float;
  mean_onset : float;
      (** goodput over the first second after the failure hits — the
          reaction-time window where the schemes differ most *)
  mean_fail : float;
  mean_post : float;
  flow : Tcp.Flow.stats;
  net_deflections : int;
  net_reencodes : int;
  net_drops : int; (** all drop reasons summed *)
}

(** [timeline sc config] runs one long-lived flow ingress->egress. *)
val timeline : Topo.Nets.scenario -> timeline_config -> timeline_result

type iperf_config = {
  policy : data_plane;
  level : Kar.Controller.level;
  failure : Topo.Nets.failure_case option; (** active for the whole run *)
  reps : int;
  rep_duration_s : float;
  warmup_s : float; (** excluded from the mean (slow-start ramp) *)
  seed : int;
  tcp : Tcp.Flow.config;
}

val default_iperf : iperf_config

(** [scenario_plans sc level] is the (forward, reverse) route-plan pair
    for the scenario — the invariant per-rep work.  Replication loops
    encode it once and share the immutable plans across reps (and across
    the {!Util.Pool} worker domains); only the simulator is re-seeded. *)
val scenario_plans :
  Topo.Nets.scenario -> Kar.Controller.level -> Kar.Route.plan * Kar.Route.plan

(** [iperf_reps sc config] runs [reps] independent fresh-connection
    transfers and summarises their mean goodputs (the Fig. 5/7 bars).
    Reps run on the shared {!Util.Pool}; each rep is seeded by
    {!rep_seed}, so the summary is byte-identical at any pool size. *)
val iperf_reps : Topo.Nets.scenario -> iperf_config -> Util.Stats.summary

(** [rep_seed config i] is the engine seed of repetition [i] — derived
    from the config seed and the rep index alone, never from execution
    order. *)
val rep_seed : iperf_config -> int -> int

(** [one_iperf sc config ~seed] is a single repetition's mean goodput in
    Mb/s.  [plans] shares pre-encoded route plans (see
    {!scenario_plans}). *)
val one_iperf :
  ?plans:Kar.Route.plan * Kar.Route.plan ->
  Topo.Nets.scenario -> iperf_config -> seed:int -> float
