(** Flat binary packet image: the zero-copy in-memory representation the
    simulator's hot path runs on.

    Where {!Wire.Header} is the variable-length codec an ingress edge would
    put on a physical wire, [Flat] is a fixed-capacity mutable image of the
    whole simulated packet — header fields and route ID — backed by a single
    [Bytes.t] so a free-list pool can recycle buffers and the steady-state
    forwarding loop allocates zero minor words per packet.

    Byte layout (all fields little-endian, offsets in bytes):

    {v
     off  width  field
       0      8  uid         unsigned packet id (63-bit OCaml int)
       8      4  src         ingress node
      12      4  dst         egress node
      16      4  size_bytes  simulated payload size
      20      2  hops        switch visits so far
      22      2  reencoded   edge re-encodings so far
      24      1  flags       bit0 = deflected, bit1 = live (pool owns clear)
      25      1  limbs       route-ID limb count, 0..32
      26      1  version     Wire.Header.current_version
      27      1  (reserved)
      28    128  route ID    [limbs] x 31-bit limbs as LE u32 words,
                             little-endian limb order, canonical
                             (top limb nonzero); trailing words undefined
    v}

    32 limbs x 31 bits = 992 bits = {!Wire.Header.max_route_bits}, so any
    route ID the wire codec accepts fits.

    Every accessor is built from single-byte loads/stores ([Bytes.get_int32_le]
    and friends box on 64-bit OCaml); none of them allocates except
    {!route_id}, which materialises a {!Bignum.Z.t} and is for boundaries
    only — the data plane uses {!rem_route_id} and {!route_id_equal}. *)

(** Total image size in bytes (156). *)
val size : int

(** Maximum route-ID limb count (32). *)
val max_limbs : int

(** Byte offset of the route-ID limb area, for direct kernel use. *)
val route_pos : int

(** Fresh zeroed image (not live, zero limbs). *)
val create : unit -> Bytes.t

val uid : Bytes.t -> int
val set_uid : Bytes.t -> int -> unit
val src : Bytes.t -> int
val set_src : Bytes.t -> int -> unit
val dst : Bytes.t -> int
val set_dst : Bytes.t -> int -> unit
val size_bytes : Bytes.t -> int
val set_size_bytes : Bytes.t -> int -> unit
val hops : Bytes.t -> int
val set_hops : Bytes.t -> int -> unit
val reencoded : Bytes.t -> int
val set_reencoded : Bytes.t -> int -> unit
val deflected : Bytes.t -> bool
val set_deflected : Bytes.t -> bool -> unit

(** Liveness bit: set by {!stamp}, cleared by the owning pool on release.
    Guards against double-release and use-after-free in tests. *)
val live : Bytes.t -> bool

val set_live : Bytes.t -> bool -> unit
val version : Bytes.t -> int

(** Route-ID limb count currently stored. *)
val limbs : Bytes.t -> int

(** Materialise the route ID (allocates; boundary use only). *)
val route_id : Bytes.t -> Bignum.Z.t

(** Blit a route ID's limbs into the image and store the count.
    @raise Invalid_argument when negative or wider than {!max_limbs}. *)
val set_route_id : Bytes.t -> Bignum.Z.t -> unit

(** [rem_route_id b s] is the forwarding kernel [<R>_s] (paper Eq. 1)
    directly on the limb view — no materialisation, no allocation. *)
val rem_route_id : Bytes.t -> int -> int

(** [route_id_equal b z] compares the stored route ID against [z] without
    materialising (the plan-cache guard). *)
val route_id_equal : Bytes.t -> Bignum.Z.t -> bool

(** Full (re-)initialisation: sets every field, clears hops/reencoded/
    deflected, sets live, stamps the current wire version. *)
val stamp :
  Bytes.t ->
  uid:int ->
  src:int ->
  dst:int ->
  size_bytes:int ->
  route_id:Bignum.Z.t ->
  unit
