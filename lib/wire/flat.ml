(* Fixed binary packet image backed by Bytes.  See flat.mli for the byte
   layout.  All accessors are composed from single-byte unsafe loads and
   stores: [Bytes.get_int32_le]/[get_int64_le] box their result on 64-bit
   OCaml, and this module is the representation the steady-state simulation
   loop runs on, so nothing here may allocate. *)

module Z = Bignum.Z
module Nat = Bignum.Nat

let max_limbs = 32 (* 32 * 31 = 992 bits = Header.max_route_bits *)
let uid_off = 0
let src_off = 8
let dst_off = 12
let size_off = 16
let hops_off = 20
let reencoded_off = 22
let flags_off = 24
let limbs_off = 25
let version_off = 26
let route_pos = 28
let size = route_pos + (4 * max_limbs)
let deflected_bit = 0b01
let live_bit = 0b10

let get8 b pos = Char.code (Bytes.unsafe_get b pos)
let set8 b pos v = Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xff))

let get16 b pos =
  Char.code (Bytes.unsafe_get b pos)
  lor (Char.code (Bytes.unsafe_get b (pos + 1)) lsl 8)

let set16 b pos v =
  Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xff))

let get32 b pos =
  get16 b pos lor (get16 b (pos + 2) lsl 16)

let set32 b pos v =
  set16 b pos v;
  set16 b (pos + 2) (v lsr 16)

let create () = Bytes.make size '\000'
let uid b = get32 b uid_off lor (get32 b (uid_off + 4) lsl 32)

let set_uid b v =
  set32 b uid_off v;
  set32 b (uid_off + 4) (v lsr 32)

let src b = get32 b src_off
let set_src b v = set32 b src_off v
let dst b = get32 b dst_off
let set_dst b v = set32 b dst_off v
let size_bytes b = get32 b size_off
let set_size_bytes b v = set32 b size_off v
let hops b = get16 b hops_off
let set_hops b v = set16 b hops_off v
let reencoded b = get16 b reencoded_off
let set_reencoded b v = set16 b reencoded_off v
let deflected b = get8 b flags_off land deflected_bit <> 0

let set_deflected b v =
  let f = get8 b flags_off in
  set8 b flags_off (if v then f lor deflected_bit else f land lnot deflected_bit)

let live b = get8 b flags_off land live_bit <> 0

let set_live b v =
  let f = get8 b flags_off in
  set8 b flags_off (if v then f lor live_bit else f land lnot live_bit)

let version b = get8 b version_off
let limbs b = get8 b limbs_off
let route_id b = Z.of_limbs b ~pos:route_pos ~limbs:(limbs b)

let set_route_id b z =
  if Z.limb_count z > max_limbs then
    invalid_arg "Wire.Flat.set_route_id: route ID exceeds 992 bits";
  set8 b limbs_off (Z.blit_limbs z b ~pos:route_pos)

let rem_route_id b s = Z.rem_int_bytes b ~pos:route_pos ~limbs:(limbs b) s
let route_id_equal b z = Z.equal_limbs z b ~pos:route_pos ~limbs:(limbs b)

let stamp b ~uid ~src ~dst ~size_bytes ~route_id =
  set_uid b uid;
  set32 b src_off src;
  set32 b dst_off dst;
  set32 b size_off size_bytes;
  set16 b hops_off 0;
  set16 b reencoded_off 0;
  set8 b flags_off live_bit;
  set8 b version_off Header.current_version;
  set_route_id b route_id
