(** The KAR packet header: the concrete bytes an ingress edge prepends and
    core switches read.

    The paper bounds the route-ID field by Eq. 9 but leaves the wire format
    open ("this restriction should be considered for implementation
    purposes"); this module fixes one:

    {v
     0        1        2        3
     +--------+--------+--------+--------+
     | ver/len|  ttl   |   checksum      |
     +--------+--------+--------+--------+
     |     route ID, big-endian,         |
     |     len * 4 bytes                 |
     +-----------------------------------+
    v}

    - [ver/len]: the top 3 bits are the format version (currently 1), the
      low 5 bits the route-ID length in 32-bit words (1..31, so route IDs
      up to 992 bits — far beyond any plausible protection set).
    - [ttl]: decremented by every switch; deflected packets die at zero
      instead of wandering forever.
    - [checksum]: the 16-bit Internet checksum (RFC 1071) over the rest of
      the header, so a corrupted route ID is dropped rather than
      mis-forwarded — a mis-read route ID would silently misroute, the
      worst failure mode for a scheme whose whole state is this integer.

    The codec is total and allocation-light; encoding is deterministic
    (minimal length words). *)

type t = {
  version : int;
  ttl : int;
  route_id : Bignum.Z.t;
}

val current_version : int

(** Maximum representable route-ID bit length (31 words * 32 bits). *)
val max_route_bits : int

type error =
  | Truncated of { expected : int; got : int }
  | Bad_version of int
  | Bad_checksum
  | Route_id_too_large of int (** bit length that did not fit *)
  | Negative_route_id
  | Bad_ttl of int (** outside the 0..255 field range *)

val pp_error : Format.formatter -> error -> unit

(** [encoded_size h] is the exact number of bytes {!encode} will produce. *)
val encoded_size : t -> (int, error) result

(** [encode h] serialises the header.
    @raise Invalid_argument via [Result] never — errors are returned. *)
val encode : t -> (string, error) result

(** [decode s] parses a header from the start of [s] and returns it with
    the number of bytes consumed (the payload follows). *)
val decode : string -> (t * int, error) result

(** [make ~ttl route_id] builds a current-version header. *)
val make : ttl:int -> Bignum.Z.t -> t

(** [checksum s] is the RFC 1071 16-bit one's-complement checksum (exposed
    for tests). *)
val checksum : string -> int
