module Z = Bignum.Z

type t = {
  version : int;
  ttl : int;
  route_id : Z.t;
}

let current_version = 1
let max_words = 31
let max_route_bits = max_words * 32

type error =
  | Truncated of { expected : int; got : int }
  | Bad_version of int
  | Bad_checksum
  | Route_id_too_large of int
  | Negative_route_id
  | Bad_ttl of int

let pp_error ppf = function
  | Truncated { expected; got } ->
    Format.fprintf ppf "truncated header: need %d bytes, have %d" expected got
  | Bad_version v -> Format.fprintf ppf "unsupported header version %d" v
  | Bad_checksum -> Format.fprintf ppf "header checksum mismatch"
  | Route_id_too_large bits ->
    Format.fprintf ppf "route ID of %d bits exceeds the %d-bit field" bits
      max_route_bits
  | Negative_route_id -> Format.fprintf ppf "route IDs are non-negative"
  | Bad_ttl ttl -> Format.fprintf ppf "ttl %d is outside 0..255" ttl

(* RFC 1071: sum 16-bit big-endian words (odd tail zero-padded) with
   end-around carry, then complement. *)
let checksum s =
  let n = String.length s in
  let sum = ref 0 in
  let i = ref 0 in
  while !i + 1 < n do
    sum := !sum + ((Char.code s.[!i] lsl 8) lor Char.code s.[!i + 1]);
    i := !i + 2
  done;
  if n land 1 = 1 then sum := !sum + (Char.code s.[n - 1] lsl 8);
  while !sum lsr 16 <> 0 do
    sum := (!sum land 0xFFFF) + (!sum lsr 16)
  done;
  lnot !sum land 0xFFFF

let words_needed route_id =
  let bits = Z.bit_length route_id in
  max 1 ((bits + 31) / 32)

let encoded_size h =
  if Z.sign h.route_id < 0 then Error Negative_route_id
  else begin
    let words = words_needed h.route_id in
    if words > max_words then Error (Route_id_too_large (Z.bit_length h.route_id))
    else Ok (4 + (4 * words))
  end

let encode h =
  match encoded_size h with
  | Error _ as e -> e
  | Ok size ->
    if h.version < 0 || h.version > 7 then Error (Bad_version h.version)
    else if h.ttl < 0 || h.ttl > 255 then Error (Bad_ttl h.ttl)
    else begin
      let words = (size - 4) / 4 in
      let buf = Bytes.make size '\000' in
      Bytes.set buf 0 (Char.chr (((h.version land 0x7) lsl 5) lor words));
      Bytes.set buf 1 (Char.chr h.ttl);
      (* route ID, big-endian across the word area *)
      let byte_base = Z.of_int 256 in
      let v = ref h.route_id in
      for i = size - 1 downto 4 do
        Bytes.set buf i (Char.chr (Z.to_int_exn (Z.erem !v byte_base)));
        v := Z.shift_right !v 8
      done;
      (* checksum over the header with the checksum field zeroed *)
      let c = checksum (Bytes.to_string buf) in
      Bytes.set buf 2 (Char.chr (c lsr 8));
      Bytes.set buf 3 (Char.chr (c land 0xFF));
      Ok (Bytes.to_string buf)
    end

let decode s =
  let got = String.length s in
  if got < 4 then Error (Truncated { expected = 4; got })
  else begin
    let b0 = Char.code s.[0] in
    let version = b0 lsr 5 and words = b0 land 0x1F in
    if version <> current_version then Error (Bad_version version)
    else begin
      let size = 4 + (4 * max 1 words) in
      if got < size then Error (Truncated { expected = size; got })
      else begin
        let header = String.sub s 0 size in
        (* verify: re-checksum with the field zeroed *)
        let zeroed = Bytes.of_string header in
        Bytes.set zeroed 2 '\000';
        Bytes.set zeroed 3 '\000';
        let want = (Char.code s.[2] lsl 8) lor Char.code s.[3] in
        if checksum (Bytes.to_string zeroed) <> want then Error Bad_checksum
        else begin
          let ttl = Char.code s.[1] in
          let route_id = ref Z.zero in
          for i = 4 to size - 1 do
            route_id := Z.add (Z.shift_left !route_id 8) (Z.of_int (Char.code s.[i]))
          done;
          Ok ({ version; ttl; route_id = !route_id }, size)
        end
      end
    end
  end

let make ~ttl route_id = { version = current_version; ttl; route_id }
