(* Protection coverage analysis: for every single core-link failure on the
   RNP backbone, how well does each protection level keep the Boa Vista ->
   Sao Paulo flow alive?  Uses the exact absorbing-chain analysis, so the
   numbers are free of sampling noise.

   This is the network-operator view of KAR: which links can fail without
   hurting the protected route, and where should the next protection hop
   go?

   Run with:  dune exec examples/coverage_analysis.exe *)

module Graph = Topo.Graph

let () =
  let sc = Topo.Nets.rnp28 in
  let g = sc.Topo.Nets.graph in
  let primary_nodes = List.map (Graph.node_of_label g) sc.Topo.Nets.primary in
  let primary_links = Topo.Paths.path_links g primary_nodes in
  let levels = [ Kar.Controller.Unprotected; Kar.Controller.Partial ] in
  let plans = List.map (fun l -> (l, Kar.Controller.scenario_plan sc l)) levels in

  Printf.printf
    "Exact delivery probability / expected hops for each primary-route link \
     failure (NIP)\n\n";
  let header =
    "Failed link" :: List.concat_map
      (fun (l, _) ->
        [ Kar.Controller.level_to_string l ^ " P(del)"; "E[hops|del]" ])
      plans
  in
  let rows =
    List.map
      (fun link_id ->
        let link = Graph.link g link_id in
        let name =
          Printf.sprintf "SW%d-SW%d"
            (Graph.label g link.Graph.ep0.Graph.node)
            (Graph.label g link.Graph.ep1.Graph.node)
        in
        name
        :: List.concat_map
             (fun (_, plan) ->
               let a =
                 Kar.Markov.analyze g ~plan ~policy:Kar.Policy.Not_input_port
                   ~failed:[ link_id ] ~src:sc.Topo.Nets.ingress
                   ~dst:sc.Topo.Nets.egress
               in
               [
                 Printf.sprintf "%.3f" a.Kar.Markov.p_delivered;
                 (if Float.is_nan a.Kar.Markov.expected_hops_delivered then "-"
                  else Printf.sprintf "%.2f" a.Kar.Markov.expected_hops_delivered);
               ])
             plans)
      primary_links
  in
  print_string (Util.Texttab.render ~header rows);

  (* Static coverage (the share of deflection alternatives that are driven
     straight home) for the partial plan. *)
  let partial = List.assoc Kar.Controller.Partial plans in
  print_endline "\nDriven-deflection coverage of the partial plan:";
  List.iter
    (fun link_id ->
      let link = Graph.link g link_id in
      Printf.printf "  SW%d-SW%d: %.0f%% of deflection alternatives driven\n"
        (Graph.label g link.Graph.ep0.Graph.node)
        (Graph.label g link.Graph.ep1.Graph.node)
        (100.0 *. Kar.Protection.coverage g ~plan:partial ~failed:link_id))
    primary_links;

  (* Where should the next protection hop go?  Greedy: try each candidate
     off-path switch, keep the one that most improves worst-case delivery. *)
  let worst plan =
    List.fold_left
      (fun acc link_id ->
        let a =
          Kar.Markov.analyze g ~plan ~policy:Kar.Policy.Not_input_port
            ~failed:[ link_id ] ~src:sc.Topo.Nets.ingress ~dst:sc.Topo.Nets.egress
        in
        Stdlib.min acc a.Kar.Markov.p_delivered)
      1.0 primary_links
  in
  let base_score = worst partial in
  let dest = Graph.node_of_label g 73 in
  let members =
    Kar.Protection.off_path_members g ~path:primary_nodes ~radius:2
    |> List.filter (fun m ->
           not (List.mem m (List.map fst sc.Topo.Nets.partial_protection)))
  in
  let candidates = Kar.Protection.tree_hops g ~dest members in
  let best =
    List.fold_left
      (fun best (s, next) ->
        match Kar.Route.protect g partial [ (s, next) ] with
        | Error _ -> best
        | Ok plan ->
          let score = worst plan in
          (match best with
           | Some (_, _, best_score) when best_score >= score -> best
           | _ -> Some (s, next, score)))
      None candidates
  in
  (match best with
   | Some (s, next, score) ->
     Printf.printf
       "\nBest next protection hop: SW%d -> SW%d (worst-case delivery %.3f -> %.3f)\n"
       s next base_score score
   | None -> print_endline "\nNo improving protection hop found.")
