(* Bring-your-own-network walkthrough: the full operator workflow on a
   topology loaded from (or, here, generated and saved to) a file.

   1. build/load a topology in the Topo.Serial text format,
   2. assign pairwise-coprime switch IDs,
   3. plan a protected route with the analysis-guided optimizer,
   4. check every single-link failure with the exact chain analysis,
   5. emit the wire header an ingress would stamp.

   Run with:  dune exec examples/custom_topology.exe [file.kar]
   With no argument a demo topology is generated and used. *)

module Graph = Topo.Graph

let demo_topology () =
  (* a ring-of-rings ISP-ish sample, saved so the reader can inspect it *)
  let base = Topo.Gen.waxman ~n:20 ~alpha:0.9 ~beta:0.4 ~seed:7 in
  let g = Kar.Ids.assign base Kar.Ids.Prime_powers in
  let cores = Array.of_list (Graph.core_nodes g) in
  let a = cores.(0) in
  let dist, _ = Topo.Paths.bfs g a in
  let b =
    Array.to_list cores
    |> List.fold_left (fun best v -> if dist.(v) > dist.(best) then v else best) a
  in
  let g, _ = Topo.Gen.with_edge_hosts g [ a; b ] in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "custom_demo.kar" in
  Topo.Serial.save path g;
  Printf.printf "demo topology written to %s\n" path;
  g

let () =
  (* 1. load or generate *)
  let g =
    match Sys.argv with
    | [| _; file |] ->
      (match Topo.Serial.load file with
       | Ok g -> g
       | Error e ->
         Format.eprintf "%s: %a@." file Topo.Serial.pp_error e;
         exit 1)
    | _ -> demo_topology ()
  in
  (* 2. sanity: coprimality is a hard requirement; a switch whose ID
        cannot encode all its ports (like net15's SW3) merely cannot carry
        residues — planning routes around it still works *)
  (match Kar.Ids.validate_issues g with
   | [] -> print_endline "switch-ID assignment: valid (pairwise coprime)"
   | issues ->
     let hard, soft = List.partition Kar.Ids.is_fatal issues in
     List.iter
       (fun i -> Format.printf "warning: %a@." Kar.Ids.pp_issue i)
       soft;
     if hard <> [] then begin
       List.iter (fun i -> Format.eprintf "%a@." Kar.Ids.pp_issue i) hard;
       exit 1
     end);
  (* pick the two edge hosts as endpoints *)
  let src, dst =
    match Graph.edge_nodes g with
    | a :: b :: _ -> (a, b)
    | _ ->
      prerr_endline "need at least two edge nodes in the topology";
      exit 1
  in
  (* 3. a protected plan within a 96-bit header budget, optimizing the
        worst-case delivery over every single link failure of the route *)
  let base = Kar.Controller.route g ~src ~dst ~protection:[] in
  let failures = Topo.Paths.path_links g base.Kar.Route.core_path in
  let optimized =
    Kar.Optimizer.optimize g ~plan:base ~policy:Kar.Policy.Not_input_port
      ~failures ~src ~dst ~candidates:[] ~bits:96
      ~objective:Kar.Optimizer.Worst_delivery
  in
  Printf.printf "route %s  (%d bits unprotected)\n"
    (String.concat "->"
       (List.map (fun v -> string_of_int (Graph.label g v)) base.Kar.Route.core_path))
    base.Kar.Route.bit_length;
  List.iter
    (fun s ->
      Printf.printf "  + protect SW%d -> SW%d   (worst-case delivery %.3f -> %.3f, %d bits)\n"
        (fst s.Kar.Optimizer.hop) (snd s.Kar.Optimizer.hop)
        s.Kar.Optimizer.score_before s.Kar.Optimizer.score_after
        s.Kar.Optimizer.bits_after)
    optimized.Kar.Optimizer.steps;
  (* 4. the exact per-failure report for the final plan *)
  print_endline "per-failure analysis of the protected plan (NIP):";
  List.iter
    (fun link_id ->
      let l = Graph.link g link_id in
      let a =
        Kar.Markov.analyze g ~plan:optimized.Kar.Optimizer.plan
          ~policy:Kar.Policy.Not_input_port ~failed:[ link_id ] ~src ~dst
      in
      Printf.printf "  SW%d-SW%d down: P(deliver)=%.3f, E[hops|del]=%s\n"
        (Graph.label g l.Graph.ep0.Graph.node)
        (Graph.label g l.Graph.ep1.Graph.node)
        a.Kar.Markov.p_delivered
        (if Float.is_nan a.Kar.Markov.expected_hops_delivered then "-"
         else Printf.sprintf "%.2f" a.Kar.Markov.expected_hops_delivered))
    failures;
  (* 5. the bytes the ingress stamps *)
  match
    Wire.Header.encode (Wire.Header.make ~ttl:64 optimized.Kar.Optimizer.plan.Kar.Route.route_id)
  with
  | Ok bytes ->
    Printf.printf "wire header (%d bytes): " (String.length bytes);
    String.iter (fun c -> Printf.printf "%02x" (Char.code c)) bytes;
    print_newline ()
  | Error e -> Format.printf "header: %a@." Wire.Header.pp_error e
