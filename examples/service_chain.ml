(* Service chaining with KAR route IDs (the paper's future-work section).

   A route ID is just a set of (switch, port) residues, so the same
   encoding can steer traffic through an ordered chain of middleboxes: give
   each chain switch the output port that leads toward the next service.
   This example builds a random Waxman topology, assigns pairwise-coprime
   switch IDs automatically, encodes a chain ingress -> fw -> dpi -> lb ->
   egress, and verifies packets traverse the services in order.

   Run with:  dune exec examples/service_chain.exe *)

module Graph = Topo.Graph

let () =
  (* 1. Build a topology and make it KAR-ready with an ID assignment. *)
  let base = Topo.Gen.waxman ~n:24 ~alpha:0.9 ~beta:0.4 ~seed:2024 in
  let g = Kar.Ids.assign base Kar.Ids.Degree_descending in
  (match Kar.Ids.validate g with
   | [] -> ()
   | issues ->
     List.iter print_endline issues;
     failwith "invalid assignment");
  (* Attach hosts to two well-separated switches. *)
  let cores = Array.of_list (Graph.core_nodes g) in
  let src_core = cores.(0) in
  let dist, _ = Topo.Paths.bfs g src_core in
  let dst_core =
    Array.to_list cores
    |> List.fold_left (fun best v -> if dist.(v) > dist.(best) then v else best) src_core
  in
  let g, hosts = Topo.Gen.with_edge_hosts g [ src_core; dst_core ] in
  let src_host, dst_host =
    match hosts with [ a; b ] -> (a, b) | _ -> assert false
  in

  (* 2. Pick three middlebox switches spread along the way. *)
  let path =
    match Topo.Paths.shortest_path g src_core dst_core with
    | Some p -> p
    | None -> failwith "disconnected sample"
  in
  let services =
    (* middleboxes sit OFF the shortest path (that is the point of service
       chaining): pick three off-path switches ordered by distance from the
       source so the stitched walk makes forward progress *)
    let off_path =
      Kar.Protection.off_path_members g ~path ~radius:2
      |> List.map (Graph.node_of_label g)
      |> List.sort (fun a b -> Stdlib.compare dist.(a) dist.(b))
    in
    match off_path with
    | a :: rest ->
      let arr = Array.of_list (a :: rest) in
      [ ("firewall", arr.(0)); ("dpi", arr.(Array.length arr / 2));
        ("load-balancer", arr.(Array.length arr - 1)) ]
    | [] -> failwith "no off-path switches for the chain"
  in
  Printf.printf "service chain: host%d -> %s -> host%d\n"
    (Graph.label g src_host)
    (String.concat " -> "
       (List.map (fun (n, v) -> Printf.sprintf "%s(SW%d)" n (Graph.label g v)) services))
    (Graph.label g dst_host);

  (* 3. Stitch the chain: concatenate shortest paths between services and
        encode the whole walk as one route ID. *)
  let waypoints =
    (src_core :: List.map snd services) @ [ dst_core ]
  in
  (* A switch can carry only one residue per route ID (the paper's
     constraint around Fig. 8), so each leg is routed around the switches
     already visited: the stitched walk is node-disjoint by construction. *)
  let rec stitch visited = function
    | a :: (b :: _ as rest) ->
      let blocked v = List.mem v visited && v <> a && v <> b in
      let usable l =
        (not (blocked l.Graph.ep0.Graph.node))
        && not (blocked l.Graph.ep1.Graph.node)
      in
      (match Topo.Paths.shortest_path g ~usable a b with
       | Some (_ :: tail) -> tail @ stitch (tail @ visited) rest
       | Some [] | None -> failwith "no node-disjoint path between services")
    | _ -> []
  in
  let unique_path = src_core :: stitch [ src_core ] waypoints in
  let labels = List.map (Graph.label g) unique_path in
  let plan = Kar.Route.of_labels_exn g labels ~egress_label:(Graph.label g dst_host) in
  Printf.printf "chain route ID: %s (%d switches, %d bits)\n"
    (Bignum.Z.to_string plan.Kar.Route.route_id)
    (List.length plan.Kar.Route.residues)
    plan.Kar.Route.bit_length;

  (* 4. Verify with the exact analysis and a packet walk that the chain is
        followed and every service is visited in order. *)
  let a =
    Kar.Markov.analyze g ~plan ~policy:Kar.Policy.Not_input_port ~failed:[]
      ~src:src_host ~dst:dst_host
  in
  Printf.printf "delivery probability %.3f over %.0f hops\n"
    a.Kar.Markov.p_delivered a.Kar.Markov.expected_hops_delivered;
  let outcome =
    Kar.Walk.walk g ~plan ~policy:Kar.Policy.Not_input_port ~failed:[]
      ~src:src_host ~dst:dst_host ~ttl:128 (Util.Prng.of_int 5)
  in
  (match outcome with
   | Kar.Walk.Delivered hops -> Printf.printf "sample packet delivered in %d hops\n" hops
   | Kar.Walk.Stranded (v, _) -> Printf.printf "sample packet stranded at %d\n" v
   | Kar.Walk.Dropped _ | Kar.Walk.Ttl_exceeded -> print_endline "sample packet lost");

  (* 5. The chain survives a failure on it, too: fail the first link of the
        chain and watch deflection + re-encode still deliver. *)
  match Topo.Paths.path_links g unique_path with
  | [] -> ()
  | first_link :: _ ->
    let a_fail =
      Kar.Markov.analyze g ~plan ~policy:Kar.Policy.Not_input_port
        ~failed:[ first_link ] ~src:src_host ~dst:dst_host
    in
    Printf.printf
      "with the chain's first link failed: P(deliver)=%.3f, P(re-encode at an \
       edge)=%.3f, expected hops %.2f\n"
      a_fail.Kar.Markov.p_delivered a_fail.Kar.Markov.p_stranded
      a_fail.Kar.Markov.expected_hops_delivered
