(* Failure recovery on the 15-node experimental network.

   One bulk TCP flow AS1 -> AS3; the SW7-SW13 link fails mid-transfer and
   repairs later.  Compare how the four deflection techniques keep (or do
   not keep) the flow alive — the scenario of the paper's Fig. 4.

   Run with:  dune exec examples/failure_recovery.exe [policy]
   where policy is one of: none hp avp nip (default: all four). *)

let run policy =
  let sc = Topo.Nets.net15 in
  let failure = List.nth sc.Topo.Nets.failures 1 in
  let config =
    {
      Workload.Runner.default_timeline with
      policy = Workload.Runner.Kar policy;
      level = Kar.Controller.Full;
      failure = Some failure;
      pre_s = 3.0;
      fail_s = 3.0;
      post_s = 3.0;
    }
  in
  let r = Workload.Runner.timeline sc config in
  Printf.printf "\n--- policy %s ---\n" (Kar.Policy.to_string policy);
  Printf.printf "goodput before/during/after failure: %.1f / %.1f / %.1f Mb/s\n"
    r.Workload.Runner.mean_pre r.Workload.Runner.mean_fail r.Workload.Runner.mean_post;
  Printf.printf "timeline: %s\n" (Util.Texttab.spark r.Workload.Runner.series);
  let f = r.Workload.Runner.flow in
  Printf.printf
    "flow: %d segments, %d retransmissions (%d spurious), %d fast \
     retransmits, %d timeouts, reorder gap up to %d segments\n"
    f.Tcp.Flow.segments_sent f.Tcp.Flow.retransmissions f.Tcp.Flow.spurious_rexmits
    f.Tcp.Flow.fast_retransmits f.Tcp.Flow.timeouts f.Tcp.Flow.max_reorder_gap;
  Printf.printf "network: %d packets deflected, %d edge re-encodes, %d drops\n"
    r.Workload.Runner.net_deflections r.Workload.Runner.net_reencodes
    r.Workload.Runner.net_drops

let () =
  Printf.printf
    "Failure recovery on net15: SW7-SW13 fails at t=3s for 3s (full \
     protection)\n";
  match Sys.argv with
  | [| _ |] -> List.iter run Kar.Policy.all
  | [| _; name |] ->
    (match Kar.Policy.of_string name with
     | Some p -> run p
     | None ->
       Printf.eprintf "unknown policy %S (expected none|hp|avp|nip)\n" name;
       exit 1)
  | _ ->
    Printf.eprintf "usage: %s [none|hp|avp|nip]\n" Sys.argv.(0);
    exit 1
