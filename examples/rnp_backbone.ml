(* The RNP national backbone scenario (paper section 3.2).

   Reconstructs the 28-PoP Brazilian research network, routes a flow from
   Boa Vista (SW7) to the Sao Paulo hub (SW73) with the partial protection
   of Fig. 6, and measures goodput under each failure the paper evaluates.
   Also exports the topology as Graphviz DOT with the primary route
   highlighted.

   Run with:  dune exec examples/rnp_backbone.exe *)

module Graph = Topo.Graph

let () =
  let sc = Topo.Nets.rnp28 in
  let g = sc.Topo.Nets.graph in
  Printf.printf "RNP backbone: %d PoPs, %d links (paper: 28 PoPs, 40 links)\n"
    (List.length (Graph.core_nodes g))
    (List.length
       (List.filter
          (fun l ->
            Graph.is_core g l.Graph.ep0.Graph.node
            && Graph.is_core g l.Graph.ep1.Graph.node)
          (Graph.links g)));

  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Partial in
  Printf.printf "route %s + protection %s\n"
    (String.concat "->" (List.map string_of_int sc.Topo.Nets.primary))
    (String.concat ", "
       (List.map
          (fun (a, b) -> Printf.sprintf "%d->%d" a b)
          sc.Topo.Nets.partial_protection));
  Printf.printf "route ID: %s (%d bits)\n\n"
    (Bignum.Z.to_string plan.Kar.Route.route_id)
    plan.Kar.Route.bit_length;

  (* Goodput per failure case (fresh-connection repetitions). *)
  let iperf failure =
    Workload.Runner.iperf_reps sc
      {
        Workload.Runner.default_iperf with
        policy = Workload.Runner.Kar Kar.Policy.Not_input_port;
        level = Kar.Controller.Partial;
        failure;
        reps = 5;
        rep_duration_s = 3.0;
      }
  in
  let nominal = iperf None in
  Printf.printf "no failure : %6.1f Mb/s +/- %.1f\n" nominal.Util.Stats.mean
    nominal.Util.Stats.ci95;
  List.iter
    (fun fc ->
      let s = iperf (Some fc) in
      let a =
        Kar.Markov.analyze g ~plan ~policy:Kar.Policy.Not_input_port
          ~failed:[ fc.Topo.Nets.link ] ~src:sc.Topo.Nets.ingress
          ~dst:sc.Topo.Nets.egress
      in
      Printf.printf
        "%-11s: %6.1f Mb/s +/- %5.1f  (%+.0f%%; exact: P(del)=%.3f, %.2f \
         hops vs 4 nominal)\n"
        fc.Topo.Nets.name s.Util.Stats.mean s.Util.Stats.ci95
        ((s.Util.Stats.mean -. nominal.Util.Stats.mean)
        /. nominal.Util.Stats.mean *. 100.0)
        a.Kar.Markov.p_delivered a.Kar.Markov.expected_hops_delivered)
    sc.Topo.Nets.failures;

  (* DOT export with the primary route highlighted. *)
  let primary_nodes = List.map (Graph.node_of_label g) sc.Topo.Nets.primary in
  let primary_links = Topo.Paths.path_links g primary_nodes in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "rnp28.dot" in
  Topo.Dot.write_dot ~highlight_links:primary_links ~highlight_nodes:primary_nodes
    path g;
  Printf.printf "\nGraphviz topology written to %s\n" path
