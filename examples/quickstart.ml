(* Quickstart: the paper's worked example, end to end.

   Builds the six-node network of Fig. 1, encodes the route ID for the path
   S -> SW4 -> SW7 -> SW11 -> D (expect 44), folds in the driven-deflection
   protection hop SW5 -> SW11 (expect 660), then traces packets hop by hop
   — first on the healthy network, then with the SW7-SW11 link failed, to
   show deflection driving the packet home through SW5.

   Run with:  dune exec examples/quickstart.exe *)

module Z = Bignum.Z
module Graph = Topo.Graph

let trace_walk g plan ~failed ~src ~dst ~seed =
  (* Follow one packet with the NIP data plane, printing each hop. *)
  let rng = Util.Prng.of_int seed in
  let port_states v =
    Array.init (Graph.degree g v) (fun p ->
        let link = Graph.link_at g v p in
        let far = (Graph.other_end link v).Graph.node in
        {
          Kar.Policy.up = not (List.mem link.Graph.id failed);
          to_host = not (Graph.is_core g far);
        })
  in
  let entry = (Graph.other_end (Graph.link_at g src 0) src).Graph.node in
  let entry_port = (Graph.other_end (Graph.link_at g src 0) src).Graph.port in
  Printf.printf "  S";
  let rec step v in_port deflected budget =
    if v = dst then print_endline " -> D  (delivered)"
    else if budget = 0 then print_endline "  ... (truncated)"
    else begin
      Printf.printf " -> SW%d" (Graph.label g v);
      let packet =
        { Kar.Policy.route_id = plan.Kar.Route.route_id; in_port; deflected }
      in
      let decision, deflected' =
        Kar.Policy.forward Kar.Policy.Not_input_port
          ~switch_id:(Graph.label g v) ~ports:(port_states v) ~packet rng
      in
      match decision with
      | Kar.Policy.Drop -> print_endline "  (dropped)"
      | Kar.Policy.Forward port ->
        let far = Graph.other_end (Graph.link_at g v port) v in
        step far.Graph.node far.Graph.port deflected' (budget - 1)
    end
  in
  step entry entry_port false 16

let () =
  let sc = Topo.Nets.fig1_six in
  let g = sc.Topo.Nets.graph in

  (* 1. Encode the primary route: switches {4, 7, 11}, ports {0, 2, 0}. *)
  let primary = Kar.Controller.scenario_plan sc Kar.Controller.Unprotected in
  Printf.printf "Primary route ID : %s (modulus %s, %d bits)\n"
    (Z.to_string primary.Kar.Route.route_id)
    (Z.to_string primary.Kar.Route.modulus)
    primary.Kar.Route.bit_length;

  (* 2. The forwarding computation each switch performs: R mod switch_id. *)
  List.iter
    (fun id ->
      Printf.printf "  <%s>_%d = %d\n"
        (Z.to_string primary.Kar.Route.route_id)
        id
        (Rns.port primary.Kar.Route.route_id id))
    [ 4; 7; 11 ];

  (* 3. Fold in the protection hop SW5 -> SW11 (driven deflection). *)
  let protected_plan = Kar.Controller.scenario_plan sc Kar.Controller.Partial in
  Printf.printf "Protected route ID: %s (modulus %s)\n"
    (Z.to_string protected_plan.Kar.Route.route_id)
    (Z.to_string protected_plan.Kar.Route.modulus);
  Printf.printf "  residues at {4,7,11,5} = %s   (paper: 0 2 0 0)\n"
    (String.concat " "
       (List.map string_of_int (Rns.decode protected_plan.Kar.Route.route_id [ 4; 7; 11; 5 ])));

  (* 4. Trace packets: healthy, then with SW7-SW11 failed. *)
  print_endline "\nHealthy network:";
  trace_walk g protected_plan ~failed:[] ~src:sc.Topo.Nets.ingress
    ~dst:sc.Topo.Nets.egress ~seed:1;
  let failure = List.hd sc.Topo.Nets.failures in
  Printf.printf "\nWith %s failed (three sample packets):\n" failure.Topo.Nets.name;
  List.iter
    (fun seed ->
      trace_walk g protected_plan ~failed:[ failure.Topo.Nets.link ]
        ~src:sc.Topo.Nets.ingress ~dst:sc.Topo.Nets.egress ~seed)
    [ 1; 2; 3 ];

  (* 5. The exact picture, via the absorbing-chain analysis. *)
  let a =
    Kar.Markov.analyze g ~plan:protected_plan ~policy:Kar.Policy.Not_input_port
      ~failed:[ failure.Topo.Nets.link ] ~src:sc.Topo.Nets.ingress
      ~dst:sc.Topo.Nets.egress
  in
  Printf.printf
    "\nExact analysis under the failure: delivery probability %.3f, expected \
     hops %.2f (3 when healthy)\n"
    a.Kar.Markov.p_delivered a.Kar.Markov.expected_hops_delivered
