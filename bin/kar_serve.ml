(* Command-line entry point for the online route-plan server: generate a
   seeded open-loop workload against a topology, serve it, and report
   latency/cache/batching metrics.  Topology events come from repeatable
   --fail-at/--repair-at flags and/or a --scenario failure schedule
   (flapping, regional, adversarial) — both compile to the same
   Kar_scenario event stream — and the deterministic service event stream
   can be dumped as JSONL. *)

module Workload = Kar_service.Workload
module Server = Kar_service.Server
module Scenario = Kar_scenario

type net =
  | Net15
  | Rnp28
  | Gen of int

let parse_net = function
  | "net15" -> Ok Net15
  | "rnp28" -> Ok Rnp28
  | s ->
    let gen n = if n >= 4 then Ok (Gen n) else Error (`Msg "gen:N needs N >= 4") in
    (match String.split_on_char ':' s with
     | [ "gen" ] -> gen 32
     | [ "gen"; n ] ->
       (match int_of_string_opt n with
        | Some n -> gen n
        | None -> Error (`Msg (Printf.sprintf "bad generated size %S" n)))
     | _ -> Error (`Msg (Printf.sprintf "unknown topology %S (net15|rnp28|gen:N)" s)))

let graph_of_net = function
  | Net15 -> (Topo.Nets.net15.Topo.Nets.graph, Topo.Nets.net15.Topo.Nets.failures)
  | Rnp28 -> (Topo.Nets.rnp28.Topo.Nets.graph, Topo.Nets.rnp28.Topo.Nets.failures)
  | Gen n -> (Experiments.Service.testbed ~n_core:n (), [])

let parse_levels s =
  let one name =
    match name with
    | "unprotected" -> Ok Kar.Controller.Unprotected
    | "partial" -> Ok Kar.Controller.Partial
    | "full" -> Ok Kar.Controller.Full
    | _ -> Error (`Msg (Printf.sprintf "unknown level %S" name))
  in
  let rec all = function
    | [] -> Ok []
    | x :: tl ->
      (match (one x, all tl) with
       | Ok l, Ok ls -> Ok (l :: ls)
       | (Error _ as e), _ | _, (Error _ as e) -> e)
  in
  match all (String.split_on_char ',' s) with
  | Ok [] -> Error (`Msg "empty level list")
  | Ok ls -> Ok (Array.of_list ls)
  | Error _ as e -> e

let report_to_string (r : Server.report) =
  let ms v = Printf.sprintf "%.3f" (v *. 1e3) in
  Util.Texttab.render_kv
    [
      ("requests", string_of_int r.Server.requests);
      ("virtual makespan (s)", Printf.sprintf "%.3f" r.Server.makespan);
      ("virtual throughput (req/s)", Printf.sprintf "%.0f" r.Server.virtual_rps);
      ("cache hit ratio", Printf.sprintf "%.1f%%" (100.0 *. r.Server.hit_ratio));
      ("stale-serve rate", Printf.sprintf "%.1f%%" (100.0 *. r.Server.stale_rate));
      ( "cache hits/misses/stale",
        Printf.sprintf "%d/%d/%d" r.Server.cache_hits r.Server.cache_misses
          r.Server.cache_stale );
      ("cache evictions", string_of_int r.Server.cache_evictions);
      ("topology epoch", string_of_int r.Server.epoch);
      ("latency mean (ms)", ms r.Server.mean_latency);
      ("latency p50 (ms)", ms r.Server.p50);
      ("latency p95 (ms)", ms r.Server.p95);
      ("latency p99 (ms)", ms r.Server.p99);
      ("plans computed", string_of_int r.Server.planned);
      ("batches", string_of_int r.Server.batches);
      ("max batch", string_of_int r.Server.max_batch);
      ("coalesced (single-flight)", string_of_int r.Server.coalesced);
      ("stale in-flight plans", string_of_int r.Server.stale_completions);
      ("max keys queued+in-flight", string_of_int r.Server.max_depth);
      ("max requests waiting", string_of_int r.Server.max_waiting);
      ("unroutable", string_of_int r.Server.unroutable);
    ]

let run net requests rate skew seed levels cache_cap batch_size batch_delay
    workers fail_ats repair_ats fail_link scenario trace metrics metrics_every
    metrics_prom jobs =
  Util.Pool.set_jobs (if jobs > 0 then jobs else Util.Pool.default_jobs ());
  let graph, failure_cases = graph_of_net net in
  let spec =
    {
      Workload.default with
      Workload.n = requests;
      rate;
      skew;
      seed;
      levels;
    }
  in
  let reqs = Workload.generate graph spec in
  let config =
    {
      Server.default_config with
      Server.cache_capacity = cache_cap;
      batch_size;
      batch_delay;
      workers;
    }
  in
  (* Both event sources compile to one Kar_scenario stream: the repeatable
     --fail-at/--repair-at flags become a degenerate explicit-events
     scenario, --scenario generates its model over the arrival horizon,
     and the merged normalized stream is the server's failure schedule. *)
  let horizon =
    let n = Array.length reqs in
    if n = 0 then 1.0 else Stdlib.max 1e-6 reqs.(n - 1).Workload.arrival
  in
  let gen spec =
    match Scenario.Gen.generate graph ~horizon spec with
    | Ok evs -> evs
    | Error e ->
      Printf.eprintf "scenario: %s\n" e;
      exit 1
  in
  let explicit_events =
    match (fail_ats, repair_ats) with
    | [], [] -> []
    | _ ->
      let link =
        match fail_link with
        | Some l when l >= 0 && l < Topo.Graph.n_links graph -> l
        | Some l ->
          Printf.eprintf "no link %d in this topology\n" l;
          exit 1
        | None ->
          (match failure_cases with
           | fc :: _ -> fc.Topo.Nets.link
           | [] -> Experiments.Service.storm_link graph)
      in
      gen
        (Scenario.Spec.Events
           (List.map
              (fun t -> (t, Scenario.Event.Fail, Scenario.Spec.Id link))
              fail_ats
           @ List.map
               (fun t -> (t, Scenario.Event.Repair, Scenario.Spec.Id link))
               repair_ats))
  in
  let scenario_events =
    match scenario with
    | None -> []
    | Some s ->
      (match Scenario.Spec.parse s with
       | Ok spec -> gen spec
       | Error e ->
         Printf.eprintf "scenario: %s\n" e;
         exit 1)
  in
  let events = Scenario.Event.normalize (explicit_events @ scenario_events) in
  if events <> [] then
    Printf.printf "scenario: %d topology events over %.3f s\n"
      (List.length events) horizon;
  let failures = Scenario.Event.to_failures events in
  let trace_out = Option.map open_out trace in
  let sink =
    match trace_out with
    | None -> None
    | Some oc ->
      Some
        (fun e ->
          output_string oc (Kar_service.Event.to_jsonl e);
          output_char oc '\n')
  in
  let metrics_out =
    Option.map (fun f -> if f = "-" then stdout else open_out f) metrics
  in
  let metrics_sink =
    Option.map
      (fun oc line ->
        output_string oc line;
        output_char oc '\n')
      metrics_out
  in
  let server = Server.create ~config ~graph () in
  let report =
    Server.run server ?sink ~failures ?metrics_every ?metrics_sink reqs
  in
  Option.iter close_out trace_out;
  Option.iter (fun oc -> if oc != stdout then close_out oc) metrics_out;
  (match metrics_prom with
   | None -> ()
   | Some f ->
     let oc = open_out f in
     output_string oc (Kar_obs.Export.prometheus (Server.registry server));
     close_out oc);
  print_string (report_to_string report);
  if metrics <> None || metrics_prom <> None then begin
    print_string "\n-- metrics --\n";
    print_string (Kar_obs.Export.summary (Server.registry server));
    print_string (Kar_obs.Span.summary (Server.spans server))
  end

open Cmdliner

let net_arg =
  let net_conv = Arg.conv (parse_net, fun ppf n ->
      Format.pp_print_string ppf
        (match n with Net15 -> "net15" | Rnp28 -> "rnp28" | Gen n -> Printf.sprintf "gen:%d" n))
  in
  let doc = "Topology: the paper's $(b,net15) or $(b,rnp28), or $(b,gen:N) \
             (Waxman testbed, N core switches, one edge host each)." in
  Arg.(value & opt net_conv (Gen 32) & info [ "net" ] ~docv:"NET" ~doc)

let requests_arg =
  let doc = "Number of requests in the open-loop workload." in
  Arg.(value & opt int 10_000 & info [ "n"; "requests" ] ~docv:"N" ~doc)

let rate_arg =
  let doc = "Mean Poisson arrival rate, requests per second." in
  Arg.(value & opt float 10_000.0 & info [ "rate" ] ~docv:"R" ~doc)

let skew_arg =
  let doc = "Zipf exponent over (src, dst) pair popularity (0 = uniform)." in
  Arg.(value & opt float 0.9 & info [ "skew" ] ~docv:"S" ~doc)

let seed_arg =
  let doc = "Workload seed; everything downstream is deterministic in it." in
  Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc)

let levels_arg =
  let levels_conv =
    Arg.conv
      ( parse_levels,
        fun ppf ls ->
          Format.pp_print_string ppf
            (String.concat ","
               (Array.to_list (Array.map Kar.Controller.level_to_string ls))) )
  in
  let doc = "Comma-separated protection levels drawn uniformly per request \
             (unprotected,partial,full)." in
  Arg.(value
       & opt levels_conv [| Kar.Controller.Unprotected; Kar.Controller.Partial |]
       & info [ "levels" ] ~docv:"LEVELS" ~doc)

let cache_arg =
  let doc = "Plan cache capacity (LRU entries)." in
  Arg.(value & opt int 256 & info [ "cache" ] ~docv:"N" ~doc)

let batch_size_arg =
  let doc = "Dispatch a batch at this many distinct missed keys." in
  Arg.(value & opt int 16 & info [ "batch-size" ] ~docv:"N" ~doc)

let batch_delay_arg =
  let doc = "Max seconds a batch stays open before dispatching anyway." in
  Arg.(value & opt float 2e-4 & info [ "batch-delay" ] ~docv:"S" ~doc)

let workers_arg =
  let doc = "Modelled planner threads (virtual-time model; fixed so results \
             do not depend on -j)." in
  Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N" ~doc)

let fail_at_arg =
  let doc = "Fail a link at this virtual time (epoch bump + replan storm). \
             Repeatable." in
  Arg.(value & opt_all float [] & info [ "fail-at" ] ~docv:"T" ~doc)

let repair_at_arg =
  let doc = "Repair the failed link at this virtual time.  Repeatable." in
  Arg.(value & opt_all float [] & info [ "repair-at" ] ~docv:"T" ~doc)

let fail_link_arg =
  let doc = "Link id the --fail-at/--repair-at flags act on (default: the \
             topology's first failure case, or a popular core link on \
             generated topologies)." in
  Arg.(value & opt (some int) None & info [ "fail-link" ] ~docv:"LINK" ~doc)

let scenario_arg =
  let doc = "Failure schedule applied during the run: \
             $(b,flap:links=N,period=S,duty=D,seed=K), \
             $(b,regional:groups=N,mtbf=S,mttr=S,seed=K), \
             $(b,adversarial:k=N,period=S,hold=S,level=L) or \
             $(b,events:fail@T=A-B,repair@T=#ID,...).  Generated over the \
             workload's arrival horizon and merged with any \
             --fail-at/--repair-at events." in
  Arg.(value
       & opt (some string) None
       & info [ "scenario" ] ~docv:"SPEC" ~doc)

let trace_arg =
  let doc = "Write the deterministic service event stream to $(docv) as JSONL." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Emit periodic sim-clock metrics snapshots (the whole registry \
             as one flat JSON object per interval) to $(docv) as a JSONL \
             time series; $(b,-) writes to stdout.  Byte-identical at any \
             $(b,-j)." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let metrics_every_arg =
  let doc = "Virtual seconds between metrics snapshots (default: arrival \
             horizon / 64)." in
  Arg.(value & opt (some float) None & info [ "metrics-every" ] ~docv:"S" ~doc)

let metrics_prom_arg =
  let doc = "Dump the end-of-run registry to $(docv) in Prometheus text \
             exposition format." in
  Arg.(value
       & opt (some string) None
       & info [ "metrics-prom" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc = "Worker domains for batch plan computation.  Reports are \
             byte-identical at any value.  Defaults to $(b,KAR_JOBS) if \
             set, else the machine's recommended domain count." in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let cmd =
  let doc = "Serve route-plan requests from an online KAR control plane" in
  let info = Cmd.info "kar_serve" ~doc in
  Cmd.v info
    Term.(
      const run $ net_arg $ requests_arg $ rate_arg $ skew_arg $ seed_arg
      $ levels_arg $ cache_arg $ batch_size_arg $ batch_delay_arg $ workers_arg
      $ fail_at_arg $ repair_at_arg $ fail_link_arg $ scenario_arg $ trace_arg
      $ metrics_arg $ metrics_every_arg $ metrics_prom_arg $ jobs_arg)

let () = exit (Cmd.eval cmd)
