(* kar_route: an operator's Swiss-army knife for KAR route IDs.

     kar_route encode -r 4:0 -r 7:2 -r 11:0      # -> route ID + modulus
     kar_route decode -R 660 -s 4,7,11,5          # -> ports per switch
     kar_route header -R 660 --ttl 64             # -> wire bytes (hex)
     kar_route parse  -x 2002cb9c00000294         # -> header fields
     kar_route plan   --topo net.kar --src 1001 --dst 1003
     kar_route ids    --topo net.kar --strategy prime-powers *)

open Cmdliner

let residue_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ m; v ] ->
      (try Ok { Rns.modulus = int_of_string m; value = int_of_string v }
       with Failure _ -> Error (`Msg ("bad residue " ^ s)))
    | _ -> Error (`Msg "residue must be <switch>:<port>")
  in
  let print ppf r = Format.fprintf ppf "%d:%d" r.Rns.modulus r.Rns.value in
  Arg.conv (parse, print)

let z_conv =
  let parse s =
    try Ok (Bignum.Z.of_string s) with Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv (parse, Bignum.Z.pp)

let ids_conv =
  let parse s =
    try Ok (List.map int_of_string (String.split_on_char ',' s))
    with Failure _ -> Error (`Msg ("bad id list " ^ s))
  in
  let print ppf ids =
    Format.pp_print_string ppf (String.concat "," (List.map string_of_int ids))
  in
  Arg.conv (parse, print)

(* --- encode --- *)

let encode_cmd =
  let residues =
    Arg.(
      non_empty
      & opt_all residue_conv []
      & info [ "r"; "residue" ] ~docv:"SWITCH:PORT"
          ~doc:"A residue (repeatable, in path order).")
  in
  let run residues =
    match Rns.encode residues with
    | Ok (r, m) ->
      Printf.printf "route_id %s\nmodulus  %s\nbits     %d\n"
        (Bignum.Z.to_string r) (Bignum.Z.to_string m)
        (Rns.bit_length_bound m);
      `Ok ()
    | Error e -> `Error (false, Rns.error_to_string e)
  in
  Cmd.v
    (Cmd.info "encode" ~doc:"Compute a route ID from (switch, port) residues")
    Term.(ret (const run $ residues))

(* --- decode --- *)

let decode_cmd =
  let route =
    Arg.(
      required
      & opt (some z_conv) None
      & info [ "R"; "route" ] ~docv:"ROUTE_ID" ~doc:"The route ID.")
  in
  let switches =
    Arg.(
      required
      & opt (some ids_conv) None
      & info [ "s"; "switches" ] ~docv:"IDS" ~doc:"Comma-separated switch IDs.")
  in
  let run route switches =
    List.iter
      (fun id -> Printf.printf "<R>_%d = %d\n" id (Rns.port route id))
      switches;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "decode" ~doc:"Compute the output port at each switch")
    Term.(ret (const run $ route $ switches))

(* --- header --- *)

let header_cmd =
  let route =
    Arg.(
      required
      & opt (some z_conv) None
      & info [ "R"; "route" ] ~docv:"ROUTE_ID" ~doc:"The route ID.")
  in
  let ttl =
    Arg.(value & opt int 64 & info [ "ttl" ] ~docv:"TTL" ~doc:"Initial TTL.")
  in
  let run route ttl =
    match Wire.Header.encode (Wire.Header.make ~ttl route) with
    | Ok bytes ->
      String.iter (fun c -> Printf.printf "%02x" (Char.code c)) bytes;
      print_newline ();
      Printf.printf "(%d bytes)\n" (String.length bytes);
      `Ok ()
    | Error e -> `Error (false, Format.asprintf "%a" Wire.Header.pp_error e)
  in
  Cmd.v
    (Cmd.info "header" ~doc:"Serialise a route ID into the KAR wire header")
    Term.(ret (const run $ route $ ttl))

(* --- parse --- *)

let parse_cmd =
  let hex =
    Arg.(
      required
      & opt (some string) None
      & info [ "x"; "hex" ] ~docv:"HEX" ~doc:"Header bytes in hex.")
  in
  let run hex =
    if String.length hex mod 2 <> 0 then
      `Error (false, "hex input has an odd number of digits")
    else begin
    let bytes =
      try
        String.init
          (String.length hex / 2)
          (fun i -> Char.chr (int_of_string ("0x" ^ String.sub hex (2 * i) 2)))
      with _ -> ""
    in
    match Wire.Header.decode bytes with
    | Ok (h, consumed) ->
      Printf.printf "version  %d\nttl      %d\nroute_id %s\nheader   %d bytes\n"
        h.Wire.Header.version h.Wire.Header.ttl
        (Bignum.Z.to_string h.Wire.Header.route_id)
        consumed;
      `Ok ()
    | Error e -> `Error (false, Format.asprintf "%a" Wire.Header.pp_error e)
    end
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse a KAR wire header")
    Term.(ret (const run $ hex))

(* --- topology-based commands --- *)

let topo_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "topo" ] ~docv:"FILE" ~doc:"Topology file (Topo.Serial format).")

let load_topo path =
  match Topo.Serial.load path with
  | Ok g -> Ok g
  | Error e -> Error (Format.asprintf "%s: %a" path Topo.Serial.pp_error e)

(* Exhaustive resilience check of one planned route: every failure set of
   up to max_k core links, deflection draws as adversarial choice. *)
let verify_plan g ~plan ~policy ~src ~dst ~max_k =
  let module V = Kar_verify.Verifier in
  let inst = V.prepare g ~plan ~policy ~src ~dst () in
  let links = Experiments.Verify.core_links g in
  for k = 1 to max_k do
    let sets = Experiments.Verify.failure_sets links ~k in
    let counts = Hashtbl.create 8 in
    let first_refuted = ref None in
    List.iter
      (fun failed ->
        let cls, _ = V.verify inst ~failed in
        Hashtbl.replace counts cls
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts cls));
        if !first_refuted = None && cls <> V.Guaranteed && cls <> V.Disconnected
        then first_refuted := Some (failed, cls))
      sets;
    let cells =
      List.filter_map
        (fun cls ->
          match Hashtbl.find_opt counts cls with
          | Some n ->
            Some (Printf.sprintf "%s=%d" (V.classification_to_string cls) n)
          | None -> None)
        V.all_classifications
    in
    Printf.printf "  k=%d (%d failure sets): %s\n" k (List.length sets)
      (String.concat " " cells);
    match !first_refuted with
    | None -> ()
    | Some (failed, cls) ->
      let names =
        List.map
          (fun id ->
            let l = Topo.Graph.link g id in
            Printf.sprintf "SW%d-SW%d"
              (Topo.Graph.label g l.Topo.Graph.ep0.Topo.Graph.node)
              (Topo.Graph.label g l.Topo.Graph.ep1.Topo.Graph.node))
          failed
      in
      (match V.refute inst ~failed with
       | Some r, init_stranded ->
         let violations =
           Kar_verify.Counterexample.check inst r ~init_stranded
         in
         let ok =
           Kar_verify.Counterexample.well_formed violations
           && Kar_verify.Counterexample.refutes violations
         in
         Printf.printf
           "    first refutation [%s] failed={%s}: machine check %s\n"
           (V.classification_to_string cls)
           (String.concat "," names)
           (if ok then "OK" else "FAILED")
       | None, _ -> ())
  done

let plan_cmd =
  let src =
    Arg.(required & opt (some int) None & info [ "src" ] ~docv:"LABEL" ~doc:"Source edge label.")
  in
  let dst =
    Arg.(required & opt (some int) None & info [ "dst" ] ~docv:"LABEL" ~doc:"Destination edge label.")
  in
  let disjoint =
    Arg.(value & opt int 1 & info [ "k" ] ~docv:"K" ~doc:"Edge-disjoint plans to compute.")
  in
  let verify_flag =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Exhaustively verify each printed plan against every failure \
             set of up to $(b,--max-k) core links (deflection draws as \
             adversarial choice) and report the verdict classes.")
  in
  let max_k =
    Arg.(
      value & opt int 1
      & info [ "max-k" ] ~docv:"K"
          ~doc:"Largest failure-set size for --verify (default 1).")
  in
  let policy =
    let policy_conv =
      Arg.enum
        (List.map (fun p -> (Kar.Policy.to_string p, p)) Kar.Policy.all)
    in
    Arg.(
      value
      & opt policy_conv Kar.Policy.Not_input_port
      & info [ "policy" ] ~docv:"P"
          ~doc:"Deflection policy for --verify: none | hp | avp | nip.")
  in
  let run topo src dst k verify max_k policy =
    match load_topo topo with
    | Error m -> `Error (false, m)
    | Ok g ->
      (match (Topo.Graph.find_label g src, Topo.Graph.find_label g dst) with
       | Some s, Some d ->
         let plans = Kar.Controller.disjoint_plans g ~src:s ~dst:d ~k in
         if plans = [] then `Error (false, "no route between the endpoints")
         else begin
           List.iteri
             (fun i plan ->
               Printf.printf "plan %d: route_id=%s bits=%d path=%s\n" i
                 (Bignum.Z.to_string plan.Kar.Route.route_id)
                 plan.Kar.Route.bit_length
                 (String.concat "->"
                    (List.map
                       (fun v -> string_of_int (Topo.Graph.label g v))
                       plan.Kar.Route.core_path));
               if verify then
                 verify_plan g ~plan ~policy ~src:s ~dst:d ~max_k)
             plans;
           `Ok ()
         end
       | _ -> `Error (false, "unknown src or dst label"))
  in
  Cmd.v
    (Cmd.info "plan" ~doc:"Plan route IDs between two edge nodes of a topology")
    Term.(
      ret
        (const run $ topo_arg $ src $ dst $ disjoint $ verify_flag $ max_k
       $ policy))

let ids_cmd =
  let strategy =
    let strategy_conv =
      Arg.enum
        [ ("primes", Kar.Ids.Primes_ascending);
          ("degree", Kar.Ids.Degree_descending);
          ("prime-powers", Kar.Ids.Prime_powers) ]
    in
    Arg.(
      value
      & opt strategy_conv Kar.Ids.Primes_ascending
      & info [ "strategy" ] ~docv:"S"
          ~doc:"Assignment strategy: primes | degree | prime-powers.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE"
           ~doc:"Write the relabelled topology here (default: stdout).")
  in
  let run topo strategy output =
    match load_topo topo with
    | Error m -> `Error (false, m)
    | Ok g ->
      let relabelled = Kar.Ids.assign g strategy in
      (match Kar.Ids.validate relabelled with
       | [] ->
         let text = Topo.Serial.to_string relabelled in
         (match output with
          | None -> print_string text
          | Some path ->
            Out_channel.with_open_text path (fun oc -> output_string oc text));
         `Ok ()
       | issues -> `Error (false, String.concat "; " issues))
  in
  Cmd.v
    (Cmd.info "ids" ~doc:"Assign pairwise-coprime switch IDs to a topology")
    Term.(ret (const run $ topo_arg $ strategy $ output))

let export_cmd =
  let net_arg =
    let net_conv =
      Arg.enum
        [ ("fig1", Topo.Nets.fig1_six); ("net15", Topo.Nets.net15);
          ("rnp28", Topo.Nets.rnp28); ("fig8", Topo.Nets.rnp_fig8) ]
    in
    Arg.(
      value
      & opt net_conv Topo.Nets.net15
      & info [ "net" ] ~docv:"NAME"
          ~doc:"Built-in scenario: fig1 | net15 | rnp28 | fig8.")
  in
  let run sc =
    print_string (Topo.Serial.to_string sc.Topo.Nets.graph);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Print a built-in paper topology in Serial format")
    Term.(ret (const run $ net_arg))

let () =
  let info =
    Cmd.info "kar_route" ~doc:"Encode, decode and plan KAR route IDs"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ encode_cmd; decode_cmd; header_cmd; parse_cmd; plan_cmd; ids_cmd;
            export_cmd ]))
