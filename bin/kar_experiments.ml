(* Command-line entry point: regenerate any of the paper's tables and
   figures, or the ablations, by name.  The catalogue itself (ids, groups,
   aliases, typo suggestions) lives in Experiments.Registry. *)

module Registry = Experiments.Registry

let run_entry ~metrics profile (en : Registry.entry) =
  let render =
    match (metrics, en.Registry.metrics) with
    | true, Some f -> f
    | _ -> en.Registry.run
  in
  print_string (render profile);
  print_newline ()

let unknown_name name =
  let nearest, d = Registry.nearest name in
  if d <= max 2 (String.length name / 2) then
    Printf.eprintf
      "unknown experiment %S; did you mean %S? (--list shows all ids)\n" name
      nearest
  else Printf.eprintf "unknown experiment %S; --list shows all ids\n" name;
  exit 1

let run_one ~metrics profile name =
  match Registry.find name with
  | `Entry en -> run_entry ~metrics profile en
  | `Group g -> List.iter (run_entry ~metrics profile) g.Registry.entries
  | `Unknown -> unknown_name name

(* --list: the whole catalogue, or just the named experiments/groups
   (aliases resolve here exactly as they do when running).  Entries
   instrumented on the unified metrics registry are marked. *)
let print_entry (en : Registry.entry) =
  Printf.printf "  %-10s %s%s\n" en.Registry.id en.Registry.doc
    (if en.Registry.metrics <> None then " [metrics]" else "")

let print_group (g : Registry.group) =
  Printf.printf "%s (alias: %s):\n" g.Registry.name g.Registry.alias;
  List.iter print_entry g.Registry.entries

let list_catalogue names =
  (match names with
   | [] -> List.iter print_group Registry.groups
   | names ->
     List.iter
       (fun name ->
         match Registry.find name with
         | `Entry en -> print_entry en
         | `Group g -> print_group g
         | `Unknown -> unknown_name name)
       names);
  print_string
    "entries marked [metrics] emit unified-registry snapshots under \
     --metrics\n"

open Cmdliner

let names_arg =
  let doc =
    "Experiments to run (default: all).  A group alias (e.g. \
     $(b,ablations)) runs the whole group.  Use --list to see ids."
  in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let list_flag =
  let doc =
    "List available experiment ids and exit (with names: only those \
     experiments or groups).  Entries marked $(b,[metrics]) support \
     --metrics."
  in
  Arg.(value & flag & info [ "list" ] ~doc)

let metrics_flag =
  let doc =
    "Append the unified metrics-registry summary (and span table) to the \
     output of metrics-capable experiments ($(b,--list) marks them); \
     other experiments run unchanged."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let paper_flag =
  let doc =
    "Run with the paper's full durations and repetition counts (slow); the \
     default is a time-compressed profile with identical mechanisms."
  in
  Arg.(value & flag & info [ "paper" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel sweeps (replications, failure pairs, \
     generated graphs).  Output is byte-identical at any value.  Defaults \
     to $(b,KAR_JOBS) if set, else the machine's recommended domain count \
     (capped at 16)."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let max_k_arg =
  let doc =
    "Cap the exhaustive resilience verifier's failure-set size (the \
     $(b,verify) experiment) on every topology; 0 keeps the per-topology \
     defaults (net15 k<=3, rnp28 k<=2)."
  in
  Arg.(value & opt int 0 & info [ "max-k" ] ~docv:"K" ~doc)

(* KAR_LOG=info|debug turns on the simulator's log sources (stderr). *)
let setup_logging () =
  match Sys.getenv_opt "KAR_LOG" with
  | Some level ->
    let level =
      match level with
      | "debug" -> Some Logs.Debug
      | "info" -> Some Logs.Info
      | _ -> Some Logs.Warning
    in
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level level
  | None -> ()

let main names list metrics paper jobs max_k =
  setup_logging ();
  if list then list_catalogue names
  else begin
    Util.Pool.set_jobs (if jobs > 0 then jobs else Util.Pool.default_jobs ());
    if max_k > 0 then Experiments.Verify.max_k_override := Some max_k;
    let profile =
      if paper then Experiments.Profile.paper else Experiments.Profile.from_env ()
    in
    match names with
    | [] -> List.iter (run_entry ~metrics profile) Registry.all
    | names -> List.iter (run_one ~metrics profile) names
  end

let cmd =
  let doc = "Regenerate the KAR paper's tables and figures" in
  let info = Cmd.info "kar_experiments" ~doc in
  Cmd.v info
    Term.(
      const main $ names_arg $ list_flag $ metrics_flag $ paper_flag
      $ jobs_arg $ max_k_arg)

let () = exit (Cmd.eval cmd)
