(* Command-line entry point: regenerate any of the paper's tables and
   figures, or the ablations, by name. *)

(* Experiments grouped by category; --list prints the groups, everything
   else (lookup, nearest-match suggestions, run-all order) works on the
   flattened list. *)
let categories : (string * (string * string * (Experiments.Profile.t -> string)) list) list =
  [
    ( "Figures",
      [
        ("fig1", "Section 2 worked example (route IDs 44 and 660)",
         fun _ -> Experiments.Fig1.to_string ());
        ("fig4", "Fig. 4: goodput timeline across a failure, per policy",
         fun p -> Experiments.Fig4.to_string ~profile:p ());
        ("fig5", "Fig. 5: goodput vs failure x protection x technique",
         fun p -> Experiments.Fig5.to_string ~profile:p ());
        ("fig7", "Fig. 7: RNP backbone failures under NIP + partial protection",
         fun p -> Experiments.Fig7.to_string ~profile:p ());
        ("fig8", "Fig. 8: redundant-path worst case",
         fun p -> Experiments.Fig8.to_string ~profile:p ());
      ] );
    ( "Tables",
      [
        ("table1", "Table 1: route-ID bit lengths per protection level",
         fun _ -> Experiments.Table1.to_string ());
        ("table2", "Table 2: design-space comparison with measured evidence",
         fun _ -> Experiments.Table2.to_string ());
      ] );
    ( "Ablations",
      [
        ("hops", "Ablation: exact vs Monte-Carlo walk metrics per policy",
         fun _ -> Experiments.Ablations.policy_hops_table ());
        ("ids", "Ablation: switch-ID assignment strategies",
         fun _ -> Experiments.Ablations.ids_table ());
        ("budget", "Ablation: protection bit budget vs delivery",
         fun _ -> Experiments.Ablations.budget_table ());
        ("planner", "Ablation: distance-ordered vs analysis-guided protection",
         fun _ -> Experiments.Ablations.planner_table ());
        ("cc", "Ablation: Reno vs CUBIC under deflection",
         fun p -> Experiments.Ablations.cc_table ~profile:p ());
        ("delivery", "Ablation: UDP delivery ratio per policy",
         fun p -> Experiments.Ablations.delivery_table ~profile:p ());
      ] );
    ( "Beyond the paper",
      [
        ("schemes", "Beyond the paper: reaction-scheme comparison",
         fun p -> Experiments.Reaction.compare_to_string ~profile:p ());
        ("detection", "Beyond the paper: failure-detection sensitivity",
         fun p -> Experiments.Reaction.detection_to_string ~profile:p ());
        ("bystander", "Beyond the paper: interference with bystander traffic",
         fun p -> Experiments.Congestion.to_string ~profile:p ());
        ("scaling", "Beyond the paper: route-ID bits vs network size",
         fun _ -> Experiments.Scaling.to_string ());
        ("multipath", "Beyond the paper: multipath header cost",
         fun _ -> Experiments.Scaling.multipath_to_string ());
        ("multifail", "Beyond the paper: simultaneous multiple failures",
         fun _ -> Experiments.Multifailure.to_string ());
        ("invariants", "Trace-checked invariants over every single core-link failure",
         fun _ -> Experiments.Invariants.to_string ());
      ] );
    ( "Service",
      [
        ("svc", "Online plan server: steady state, skew sweep, replan storm",
         fun p -> Experiments.Service.to_string ~profile:p ());
      ] );
  ]

let experiments : (string * string * (Experiments.Profile.t -> string)) list =
  List.concat_map snd categories

(* Classic two-row Levenshtein, for suggesting the closest experiment id
   on a typo. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) (fun j -> j) in
  let curr = Array.make (lb + 1) 0 in
  for i = 1 to la do
    curr.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit curr 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let nearest_experiment name =
  List.fold_left
    (fun (best, d) (candidate, _, _) ->
      let d' = edit_distance name candidate in
      if d' < d then (candidate, d') else (best, d))
    ("", max_int) experiments

let run_one profile name =
  match List.find_opt (fun (n, _, _) -> n = name) experiments with
  | None ->
    let nearest, d = nearest_experiment name in
    if d <= max 2 (String.length name / 2) then
      Printf.eprintf "unknown experiment %S; did you mean %S? (--list shows all ids)\n"
        name nearest
    else Printf.eprintf "unknown experiment %S; --list shows all ids\n" name;
    exit 1
  | Some (_, _, f) ->
    print_string (f profile);
    print_newline ()

open Cmdliner

let names_arg =
  let doc = "Experiments to run (default: all). Use --list to see ids." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let list_flag =
  let doc = "List available experiment ids and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let paper_flag =
  let doc =
    "Run with the paper's full durations and repetition counts (slow); the \
     default is a time-compressed profile with identical mechanisms."
  in
  Arg.(value & flag & info [ "paper" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel sweeps (replications, failure pairs, \
     generated graphs).  Output is byte-identical at any value.  Defaults \
     to $(b,KAR_JOBS) if set, else the machine's recommended domain count \
     (capped at 16)."
  in
  Arg.(value & opt int 0 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* KAR_LOG=info|debug turns on the simulator's log sources (stderr). *)
let setup_logging () =
  match Sys.getenv_opt "KAR_LOG" with
  | Some level ->
    let level =
      match level with
      | "debug" -> Some Logs.Debug
      | "info" -> Some Logs.Info
      | _ -> Some Logs.Warning
    in
    Logs.set_reporter (Logs_fmt.reporter ());
    Logs.set_level level
  | None -> ()

let main names list paper jobs =
  setup_logging ();
  if list then
    List.iter
      (fun (category, entries) ->
        Printf.printf "%s:\n" category;
        List.iter (fun (n, d, _) -> Printf.printf "  %-10s %s\n" n d) entries)
      categories
  else begin
    Util.Pool.set_jobs (if jobs > 0 then jobs else Util.Pool.default_jobs ());
    let profile =
      if paper then Experiments.Profile.paper else Experiments.Profile.from_env ()
    in
    let to_run = match names with [] -> List.map (fun (n, _, _) -> n) experiments | _ -> names in
    List.iter (run_one profile) to_run
  end

let cmd =
  let doc = "Regenerate the KAR paper's tables and figures" in
  let info = Cmd.info "kar_experiments" ~doc in
  Cmd.v info Term.(const main $ names_arg $ list_flag $ paper_flag $ jobs_arg)

let () = exit (Cmd.eval cmd)
