(* kar_sim: packet-level simulation of a KAR network from the command line.

   Completes the operator workflow: author a topology (kar_route export /
   Topo.Serial), plan routes (kar_route plan), then watch TCP traffic ride
   through a failure:

     kar_sim --topo net.kar --src 1001 --dst 1003 \
             --fail 7:13 --fail-at 3 --fail-for 3 --duration 9 \
             --policy nip --protect-bits 64

   Flight records can be written as JSONL or as the compact binary format
   (--trace-format binary); `kar_sim convert` translates losslessly between
   the two. *)

open Cmdliner
module Graph = Topo.Graph

let policy_conv =
  Arg.enum
    (List.map (fun p -> (Kar.Policy.to_string p, p)) Kar.Policy.all)

let link_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ a; b ] ->
      (try Ok (int_of_string a, int_of_string b)
       with Failure _ -> Error (`Msg ("bad link " ^ s)))
    | _ -> Error (`Msg "link must be <labelA>:<labelB>")
  in
  Arg.conv (parse, fun ppf (a, b) -> Format.fprintf ppf "%d:%d" a b)

type trace_format = Jsonl | Binary

let trace_format_conv = Arg.enum [ ("jsonl", Jsonl); ("binary", Binary) ]

let print_stats g net =
  let pool = Netsim.Net.pool net in
  Printf.printf
    "pool: %d hits, %d grows, %d in flight, %d releases\n"
    (Netsim.Packet.Pool.hits pool) (Netsim.Packet.Pool.grows pool)
    (Netsim.Net.pool_in_flight net) (Netsim.Packet.Pool.releases pool);
  List.iter
    (fun v ->
      let d = Netsim.Net.deflections_at net v
      and dr = Netsim.Net.drives_at net v in
      if d > 0 || dr > 0 then
        Printf.printf "switch SW%d: %d deflections, %d driven\n"
          (Graph.label g v) d dr)
    (Graph.core_nodes g);
  for id = 0 to Graph.n_links g - 1 do
    let drops = Netsim.Net.queue_drops_on net id in
    if drops > 0 then begin
      let l = Graph.link g id in
      Printf.printf "link %d (SW%d-SW%d): %d queue drops\n" id
        (Graph.label g l.Graph.ep0.Graph.node)
        (Graph.label g l.Graph.ep1.Graph.node)
        drops
    end
  done

let run topo src_label dst_label policy fail fail_at fail_for scenario duration
    protect_bits seed regions jobs trace_file trace_format stats metrics
    metrics_prom check_invariants =
  Option.iter Util.Pool.set_jobs jobs;
  match Topo.Serial.load topo with
  | Error e -> `Error (false, Format.asprintf "%s: %a" topo Topo.Serial.pp_error e)
  | Ok g ->
    (match (Graph.find_label g src_label, Graph.find_label g dst_label) with
     | Some src, Some dst when not (Graph.is_core g src || Graph.is_core g dst) ->
       (* plan: shortest route, protection optimized within the budget over
          the route's own links *)
       let base = Kar.Controller.route g ~src ~dst ~protection:[] in
       let failures_for_opt = Topo.Paths.path_links g base.Kar.Route.core_path in
       let plan =
         (Kar.Optimizer.optimize g ~plan:base ~policy ~failures:failures_for_opt
            ~src ~dst ~candidates:[] ~bits:protect_bits
            ~objective:Kar.Optimizer.Worst_delivery)
           .Kar.Optimizer.plan
       in
       let rev = Kar.Controller.route g ~src:dst ~dst:src ~protection:[] in
       Printf.printf "route %s (%d bits, %d residues)\n"
         (String.concat "->"
            (List.map (fun v -> string_of_int (Graph.label g v)) plan.Kar.Route.core_path))
         plan.Kar.Route.bit_length
         (List.length plan.Kar.Route.residues);
       (* simulate: --regions 0 keeps the historical single-engine path;
          any positive count goes through the partitioned (sharded)
          simulator, which produces the byte-identical trace. *)
       let net =
         if regions = 0 then
           let engine = Netsim.Engine.create () in
           Netsim.Net.create ~graph:g ~engine ()
         else begin
           let partition = Topo.Partition.make g ~regions in
           Printf.printf
             "sharded: %d regions, %d cut links, lookahead %g s\n" regions
             (List.length partition.Topo.Partition.cut_links)
             partition.Topo.Partition.lookahead;
           Netsim.Net.create_partitioned ~graph:g ~partition ()
         end
       in
       (* Flight recorder: on for --trace, --stats and/or
          --check-invariants (the per-switch tallies --stats prints are
          only maintained while a recorder is attached).  The protected
          set is the moduli of both plans in the air (data and ACK
          direction) — the switches whose modulo forward of a deflected
          packet counts as a driven deflection. *)
       let trace_oc =
         match (trace_file, trace_format) with
         | Some file, Jsonl -> Some (open_out file)
         | _ -> None
       in
       let binary_writer =
         match (trace_file, trace_format) with
         | Some _, Binary -> Some (Trace.Binary.writer ())
         | _ -> None
       in
       let sink =
         match (trace_oc, binary_writer) with
         | Some oc, _ -> Some (Trace.Recorder.jsonl_sink oc)
         | None, Some w -> Some (Trace.Binary.sink w)
         | None, None -> None
       in
       let recorder =
         if sink = None && not (check_invariants || stats) then None
         else
           Some
             (Trace.Recorder.create ?sink ~capacity:(1 lsl 20)
                ~protected_switches:
                  (List.map
                     (fun r -> r.Rns.modulus)
                     (plan.Kar.Route.residues @ rev.Kar.Route.residues))
                ())
       in
       Netsim.Net.set_recorder net recorder;
       Netsim.Karnet.install_switches net ~policy ~seed;
       let stack = Tcp.Stack.create ~net () in
       let sampler = Tcp.Sampler.create ~bin_s:(duration /. 24.0) () in
       let flow =
         Tcp.Flow.start ~net ~id:1 ~src ~dst ~fwd_route:plan.Kar.Route.route_id
           ~rev_route:rev.Kar.Route.route_id ~sampler ()
       in
       Tcp.Stack.register stack flow;
       (match fail with
        | Some (a, b) ->
          (match
             (try Some (Graph.link_between_labels g a b) with Not_found -> None)
           with
           | Some link ->
             Netsim.Net.schedule_failure net link ~at:fail_at ~duration:fail_for
           | None ->
             Printf.eprintf "warning: SW%d-SW%d is not a link; no failure scheduled\n" a b)
        | None -> ());
       (* --scenario: a generated failure schedule rides alongside any
          --fail link.  The event stream is armed as admin actions, which
          apply at sharded-region barriers, so solo and --regions R runs
          see byte-identical topology churn. *)
       (match scenario with
        | None -> ()
        | Some s ->
          let events =
            match Kar_scenario.Spec.parse s with
            | Error e ->
              Printf.eprintf "scenario: %s\n" e;
              exit 1
            | Ok spec ->
              (match
                 Kar_scenario.Gen.generate g ~horizon:duration
                   ~pairs:[ (src, dst) ] spec
               with
               | Error e ->
                 Printf.eprintf "scenario: %s\n" e;
                 exit 1
               | Ok evs -> evs)
          in
          Kar_scenario.Driver.arm net events;
          Printf.printf "scenario: %d topology events over %g s\n"
            (List.length events) duration);
       Netsim.Net.run_until net duration;
       (* The recorder may hold a buffered tie group at the cut-off;
          settle it before any sink output is consumed. *)
       Option.iter Trace.Recorder.flush recorder;
       Tcp.Flow.stop flow;
       let series = Tcp.Sampler.series_mbps sampler ~until:duration in
       Printf.printf "goodput: %s\n" (Util.Texttab.spark series);
       List.iteri
         (fun i v ->
           if i mod 4 = 0 then
             Printf.printf "  t=%5.2fs  %8.2f Mb/s\n"
               (float_of_int i *. duration /. 24.0) v)
         series;
       let st = Tcp.Flow.stats flow in
       let ns = Netsim.Net.stats net in
       Printf.printf
         "flow: %d segments, %d retransmissions (%d spurious), %d timeouts\n"
         st.Tcp.Flow.segments_sent st.Tcp.Flow.retransmissions
         st.Tcp.Flow.spurious_rexmits st.Tcp.Flow.timeouts;
       Printf.printf "network: %d deflections, %d re-encodes, %d drops\n"
         ns.Netsim.Net.deflections ns.Netsim.Net.reencodes
         (ns.Netsim.Net.dropped_link_down + ns.Netsim.Net.dropped_queue_full
        + ns.Netsim.Net.dropped_no_route + ns.Netsim.Net.dropped_ttl);
       if stats then print_stats g net;
       if metrics then begin
         print_string "\n-- metrics --\n";
         print_string (Kar_obs.Export.summary (Netsim.Net.registry net))
       end;
       if metrics_prom then
         print_string (Kar_obs.Export.prometheus (Netsim.Net.registry net));
       Option.iter close_out trace_oc;
       (match (binary_writer, trace_file) with
        | Some w, Some file -> Trace.Binary.to_file w file
        | _ -> ());
       (match (recorder, trace_file) with
        | Some r, Some file ->
          Printf.printf "trace: %d events written to %s\n"
            (Trace.Recorder.recorded r) file
        | _ -> ());
       (match recorder with
        | Some r when check_invariants ->
          (* TCP segments still in flight at the cut-off are legitimate, so
             no drain check; delivery is TCP's business, not the trace's. *)
          let violations =
            Trace.Invariant.check
              ~truncated:(Trace.Recorder.overwritten r > 0)
              (Trace.Recorder.contents r)
          in
          if Trace.Recorder.overwritten r > 0 then
            Printf.printf
              "invariants: checked last %d events only (%d overwritten)\n"
              (List.length (Trace.Recorder.contents r))
              (Trace.Recorder.overwritten r);
          (match violations with
           | [] ->
             Printf.printf "invariants: ok (%d events)\n"
               (Trace.Recorder.recorded r);
             `Ok ()
           | vs ->
             List.iter
               (fun v ->
                 Printf.eprintf "invariant violation: %s\n"
                   (Format.asprintf "%a" Trace.Invariant.pp_violation v))
               vs;
             `Error (false, Printf.sprintf "%d invariant violations" (List.length vs)))
        | _ -> `Ok ())
     | Some _, Some _ -> `Error (false, "src and dst must be edge nodes")
     | _ -> `Error (false, "unknown src or dst label"))

(* --- convert: lossless binary <-> JSONL trace translation --- *)

let read_whole_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_jsonl s =
  let lines = String.split_on_char '\n' s in
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      if String.trim line = "" then go (i + 1) acc rest
      else
        (match Trace.Event.of_jsonl line with
         | Ok e -> go (i + 1) (e :: acc) rest
         | Error msg -> Error (Printf.sprintf "line %d: %s" i msg))
  in
  go 1 [] lines

let convert input output to_format =
  let contents = read_whole_file input in
  let input_binary = Trace.Binary.is_binary contents in
  let events =
    if input_binary then Trace.Binary.decode_string contents
    else parse_jsonl contents
  in
  match events with
  | Error msg -> `Error (false, Printf.sprintf "%s: %s" input msg)
  | Ok events ->
    let target =
      match to_format with
      | Some f -> f
      | None -> if input_binary then Jsonl else Binary
    in
    let oc = open_out_bin output in
    (match target with
     | Jsonl ->
       List.iter
         (fun e ->
           output_string oc (Trace.Event.to_jsonl e);
           output_char oc '\n')
         events
     | Binary -> output_string oc (Trace.Binary.encode_events events));
    close_out oc;
    Printf.printf "%s: %d events -> %s (%s)\n" input (List.length events)
      output
      (match target with Jsonl -> "jsonl" | Binary -> "binary");
    `Ok ()

let sim_term =
  let topo =
    Arg.(required & opt (some file) None & info [ "topo" ] ~docv:"FILE"
           ~doc:"Topology file (Topo.Serial format).")
  in
  let src =
    Arg.(required & opt (some int) None & info [ "src" ] ~docv:"LABEL"
           ~doc:"Source edge node label.")
  in
  let dst =
    Arg.(required & opt (some int) None & info [ "dst" ] ~docv:"LABEL"
           ~doc:"Destination edge node label.")
  in
  let policy =
    Arg.(value & opt policy_conv Kar.Policy.Not_input_port
         & info [ "policy" ] ~docv:"P" ~doc:"Deflection policy: none|hp|avp|nip.")
  in
  let fail =
    Arg.(value & opt (some link_conv) None & info [ "fail" ] ~docv:"A:B"
           ~doc:"Link to fail, by node labels.")
  in
  let fail_at =
    Arg.(value & opt float 3.0 & info [ "fail-at" ] ~docv:"S" ~doc:"Failure time.")
  in
  let fail_for =
    Arg.(value & opt float 3.0 & info [ "fail-for" ] ~docv:"S" ~doc:"Failure duration.")
  in
  let scenario =
    Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"SPEC"
           ~doc:"Failure schedule applied during the run: \
                 $(b,flap:links=N,period=S,duty=D,seed=K), \
                 $(b,regional:groups=N,mtbf=S,mttr=S,seed=K), \
                 $(b,adversarial:k=N,period=S,hold=S,level=L) or \
                 $(b,events:fail\\@T=A-B,...).  Applied at region barriers, \
                 so results are identical at any $(b,--regions)/$(b,-j).")
  in
  let duration =
    Arg.(value & opt float 9.0 & info [ "duration" ] ~docv:"S" ~doc:"Total simulated time.")
  in
  let protect_bits =
    Arg.(value & opt int 64 & info [ "protect-bits" ] ~docv:"N"
           ~doc:"Header budget for optimizer-placed protection (0 = none).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Deflection PRNG seed.")
  in
  let regions =
    Arg.(value & opt int 0 & info [ "regions" ] ~docv:"R"
           ~doc:"Partition the network into $(docv) regions and simulate \
                 them in parallel (conservative synchronisation; the trace \
                 and flow results are byte-identical to a serial run).  \
                 0 (the default) keeps the single-engine simulator.")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Domains to run regions on (clamped to 1-16).  Defaults to \
                 $(b,KAR_JOBS) or the machine's core count; never more \
                 domains than regions are used.")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write the packet flight record to $(docv).")
  in
  let trace_format =
    Arg.(value & opt trace_format_conv Jsonl
         & info [ "trace-format" ] ~docv:"FMT"
             ~doc:"Flight record encoding: $(b,jsonl) (one event per line) \
                   or $(b,binary) (compact KARB records; convert with \
                   $(b,kar_sim convert)).")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print buffer-pool hit/grow/in-flight counters, per-switch \
                 deflection/driven tallies and per-link queue drops after \
                 the run.")
  in
  let metrics =
    Arg.(value & flag & info [ "metrics" ]
           ~doc:"Print the unified metrics registry (netsim/*, engine/* \
                 counters, gauges and probes) as a terminal summary after \
                 the run.")
  in
  let metrics_prom =
    Arg.(value & flag & info [ "metrics-prom" ]
           ~doc:"Dump the metrics registry in Prometheus text exposition \
                 format after the run.")
  in
  let check_invariants =
    Arg.(value & flag & info [ "check-invariants" ]
           ~doc:"Replay the flight record after the run and verify the \
                 simulation invariants (loop-freedom of driven deflections, \
                 conservation, TTL monotonicity, per-queue FIFO); exits \
                 non-zero on any violation.")
  in
  Term.(
    ret
      (const run $ topo $ src $ dst $ policy $ fail $ fail_at $ fail_for
      $ scenario $ duration $ protect_bits $ seed $ regions $ jobs $ trace
      $ trace_format $ stats $ metrics $ metrics_prom $ check_invariants))

let convert_cmd =
  let input =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT"
           ~doc:"Trace to convert (format auto-detected by the KARB magic).")
  in
  let output =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTPUT"
           ~doc:"Destination file.")
  in
  let to_format =
    Arg.(value & opt (some trace_format_conv) None & info [ "to" ] ~docv:"FMT"
           ~doc:"Target encoding ($(b,jsonl) or $(b,binary)); default is \
                 the opposite of the input's.")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:"Convert a flight record between JSONL and binary losslessly")
    Term.(ret (const convert $ input $ output $ to_format))

let cmd =
  Cmd.group
    ~default:sim_term
    (Cmd.info "kar_sim" ~doc:"Simulate TCP over a KAR network with a link failure")
    [ convert_cmd ]

let () = exit (Cmd.eval cmd)
