(* kar_sim: packet-level simulation of a KAR network from the command line.

   Completes the operator workflow: author a topology (kar_route export /
   Topo.Serial), plan routes (kar_route plan), then watch TCP traffic ride
   through a failure:

     kar_sim --topo net.kar --src 1001 --dst 1003 \
             --fail 7:13 --fail-at 3 --fail-for 3 --duration 9 \
             --policy nip --protect-bits 64 *)

open Cmdliner
module Graph = Topo.Graph

let policy_conv =
  Arg.enum
    (List.map (fun p -> (Kar.Policy.to_string p, p)) Kar.Policy.all)

let link_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ a; b ] ->
      (try Ok (int_of_string a, int_of_string b)
       with Failure _ -> Error (`Msg ("bad link " ^ s)))
    | _ -> Error (`Msg "link must be <labelA>:<labelB>")
  in
  Arg.conv (parse, fun ppf (a, b) -> Format.fprintf ppf "%d:%d" a b)

let run topo src_label dst_label policy fail fail_at fail_for duration
    protect_bits seed trace_file check_invariants =
  match Topo.Serial.load topo with
  | Error e -> `Error (false, Format.asprintf "%s: %a" topo Topo.Serial.pp_error e)
  | Ok g ->
    (match (Graph.find_label g src_label, Graph.find_label g dst_label) with
     | Some src, Some dst when not (Graph.is_core g src || Graph.is_core g dst) ->
       (* plan: shortest route, protection optimized within the budget over
          the route's own links *)
       let base = Kar.Controller.route g ~src ~dst ~protection:[] in
       let failures_for_opt = Topo.Paths.path_links g base.Kar.Route.core_path in
       let plan =
         (Kar.Optimizer.optimize g ~plan:base ~policy ~failures:failures_for_opt
            ~src ~dst ~candidates:[] ~bits:protect_bits
            ~objective:Kar.Optimizer.Worst_delivery)
           .Kar.Optimizer.plan
       in
       let rev = Kar.Controller.route g ~src:dst ~dst:src ~protection:[] in
       Printf.printf "route %s (%d bits, %d residues)\n"
         (String.concat "->"
            (List.map (fun v -> string_of_int (Graph.label g v)) plan.Kar.Route.core_path))
         plan.Kar.Route.bit_length
         (List.length plan.Kar.Route.residues);
       (* simulate *)
       let engine = Netsim.Engine.create () in
       let net = Netsim.Net.create ~graph:g ~engine () in
       (* Flight recorder: on for --trace and/or --check-invariants.  The
          protected set is the moduli of both plans in the air (data and
          ACK direction) — the switches whose modulo forward of a deflected
          packet counts as a driven deflection. *)
       let trace_oc = Option.map open_out trace_file in
       let recorder =
         if trace_oc = None && not check_invariants then None
         else
           Some
             (Trace.Recorder.create
                ?sink:(Option.map Trace.Recorder.jsonl_sink trace_oc)
                ~capacity:(1 lsl 20)
                ~protected_switches:
                  (List.map
                     (fun r -> r.Rns.modulus)
                     (plan.Kar.Route.residues @ rev.Kar.Route.residues))
                ())
       in
       Netsim.Net.set_recorder net recorder;
       Netsim.Karnet.install_switches net ~policy ~seed;
       let stack = Tcp.Stack.create ~net () in
       let sampler = Tcp.Sampler.create ~bin_s:(duration /. 24.0) () in
       let flow =
         Tcp.Flow.start ~net ~id:1 ~src ~dst ~fwd_route:plan.Kar.Route.route_id
           ~rev_route:rev.Kar.Route.route_id ~sampler ()
       in
       Tcp.Stack.register stack flow;
       (match fail with
        | Some (a, b) ->
          (match
             (try Some (Graph.link_between_labels g a b) with Not_found -> None)
           with
           | Some link ->
             Netsim.Net.schedule_failure net link ~at:fail_at ~duration:fail_for
           | None ->
             Printf.eprintf "warning: SW%d-SW%d is not a link; no failure scheduled\n" a b)
        | None -> ());
       Netsim.Engine.run_until engine duration;
       Tcp.Flow.stop flow;
       let series = Tcp.Sampler.series_mbps sampler ~until:duration in
       Printf.printf "goodput: %s\n" (Util.Texttab.spark series);
       List.iteri
         (fun i v ->
           if i mod 4 = 0 then
             Printf.printf "  t=%5.2fs  %8.2f Mb/s\n"
               (float_of_int i *. duration /. 24.0) v)
         series;
       let st = Tcp.Flow.stats flow in
       let ns = Netsim.Net.stats net in
       Printf.printf
         "flow: %d segments, %d retransmissions (%d spurious), %d timeouts\n"
         st.Tcp.Flow.segments_sent st.Tcp.Flow.retransmissions
         st.Tcp.Flow.spurious_rexmits st.Tcp.Flow.timeouts;
       Printf.printf "network: %d deflections, %d re-encodes, %d drops\n"
         ns.Netsim.Net.deflections ns.Netsim.Net.reencodes
         (ns.Netsim.Net.dropped_link_down + ns.Netsim.Net.dropped_queue_full
        + ns.Netsim.Net.dropped_no_route + ns.Netsim.Net.dropped_ttl);
       Option.iter close_out trace_oc;
       (match (recorder, trace_file) with
        | Some r, Some file ->
          Printf.printf "trace: %d events written to %s\n"
            (Trace.Recorder.recorded r) file
        | _ -> ());
       (match recorder with
        | Some r when check_invariants ->
          (* TCP segments still in flight at the cut-off are legitimate, so
             no drain check; delivery is TCP's business, not the trace's. *)
          let violations =
            Trace.Invariant.check
              ~truncated:(Trace.Recorder.overwritten r > 0)
              (Trace.Recorder.contents r)
          in
          if Trace.Recorder.overwritten r > 0 then
            Printf.printf
              "invariants: checked last %d events only (%d overwritten)\n"
              (List.length (Trace.Recorder.contents r))
              (Trace.Recorder.overwritten r);
          (match violations with
           | [] ->
             Printf.printf "invariants: ok (%d events)\n"
               (Trace.Recorder.recorded r);
             `Ok ()
           | vs ->
             List.iter
               (fun v ->
                 Printf.eprintf "invariant violation: %s\n"
                   (Format.asprintf "%a" Trace.Invariant.pp_violation v))
               vs;
             `Error (false, Printf.sprintf "%d invariant violations" (List.length vs)))
        | _ -> `Ok ())
     | Some _, Some _ -> `Error (false, "src and dst must be edge nodes")
     | _ -> `Error (false, "unknown src or dst label"))

let cmd =
  let topo =
    Arg.(required & opt (some file) None & info [ "topo" ] ~docv:"FILE"
           ~doc:"Topology file (Topo.Serial format).")
  in
  let src =
    Arg.(required & opt (some int) None & info [ "src" ] ~docv:"LABEL"
           ~doc:"Source edge node label.")
  in
  let dst =
    Arg.(required & opt (some int) None & info [ "dst" ] ~docv:"LABEL"
           ~doc:"Destination edge node label.")
  in
  let policy =
    Arg.(value & opt policy_conv Kar.Policy.Not_input_port
         & info [ "policy" ] ~docv:"P" ~doc:"Deflection policy: none|hp|avp|nip.")
  in
  let fail =
    Arg.(value & opt (some link_conv) None & info [ "fail" ] ~docv:"A:B"
           ~doc:"Link to fail, by node labels.")
  in
  let fail_at =
    Arg.(value & opt float 3.0 & info [ "fail-at" ] ~docv:"S" ~doc:"Failure time.")
  in
  let fail_for =
    Arg.(value & opt float 3.0 & info [ "fail-for" ] ~docv:"S" ~doc:"Failure duration.")
  in
  let duration =
    Arg.(value & opt float 9.0 & info [ "duration" ] ~docv:"S" ~doc:"Total simulated time.")
  in
  let protect_bits =
    Arg.(value & opt int 64 & info [ "protect-bits" ] ~docv:"N"
           ~doc:"Header budget for optimizer-placed protection (0 = none).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Deflection PRNG seed.")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write the packet flight record as JSONL to $(docv).")
  in
  let check_invariants =
    Arg.(value & flag & info [ "check-invariants" ]
           ~doc:"Replay the flight record after the run and verify the \
                 simulation invariants (loop-freedom of driven deflections, \
                 conservation, TTL monotonicity, per-queue FIFO); exits \
                 non-zero on any violation.")
  in
  Cmd.v
    (Cmd.info "kar_sim" ~doc:"Simulate TCP over a KAR network with a link failure")
    Term.(
      ret
        (const run $ topo $ src $ dst $ policy $ fail $ fail_at $ fail_for
        $ duration $ protect_bits $ seed $ trace $ check_invariants))

let () = exit (Cmd.eval cmd)
