(* Benchmark harness.

   Three modes:
   - no arguments: bechamel micro-benchmarks of the compute kernels
     (bignum arithmetic, CRT vs Garner encoding, the per-packet forwarding
     decision, the exact Markov analysis, the event engine) as a text
     table, then regeneration of every table and figure of the paper
     (quick profile by default; KAR_PROFILE=paper for the published
     durations);
   - [--json FILE]: machine-readable run — micro-benchmarks plus an
     end-to-end netsim throughput probe and a steady-state allocation
     counter, written to FILE as one flat JSON object (the perf
     trajectory's data points; BENCH.json at the repo root is the
     committed baseline);
   - [--check BASELINE]: after measuring, compare against a previous
     [--json] output and exit non-zero if any kernel regressed more than
     [regression_factor].

   [--quota SECONDS] shrinks the per-test bechamel quota (CI smoke runs use
   a small one). *)

open Bechamel
open Toolkit

module Z = Bignum.Z

let regression_factor = 3.0

(* --- inputs shared by the micro-benches --- *)

let big_a = Z.of_string "123456789012345678901234567890123456789012345678901234567890"
let big_b = Z.of_string "987654321098765432109876543210987654321"

let residues_full =
  (Kar.Controller.scenario_plan Topo.Nets.net15 Kar.Controller.Full).Kar.Route.residues

let plan_full = Kar.Controller.scenario_plan Topo.Nets.net15 Kar.Controller.Full

let net15 = Topo.Nets.net15
let rnp = Topo.Nets.rnp28

let port_states_of g v =
  Array.init (Topo.Graph.degree g v) (fun p ->
      let link = Topo.Graph.link_at g v p in
      let far = (Topo.Graph.other_end link v).Topo.Graph.node in
      { Kar.Policy.up = true; to_host = not (Topo.Graph.is_core g far) })

let sw13_ports = port_states_of net15.Topo.Nets.graph (Topo.Graph.node_of_label net15.Topo.Nets.graph 13)

let fail_links = List.map (fun fc -> fc.Topo.Nets.link) net15.Topo.Nets.failures

let tests =
  [
    (* bignum kernels *)
    Test.make ~name:"bignum/mul-200bit" (Staged.stage (fun () -> Z.mul big_a big_b));
    Test.make ~name:"bignum/divmod-200bit" (Staged.stage (fun () -> Z.divmod big_a big_b));
    Test.make ~name:"bignum/egcd-200bit" (Staged.stage (fun () -> Z.egcd big_a big_b));
    Test.make ~name:"bignum/to_string" (Staged.stage (fun () -> Z.to_string big_a));
    (* the remainder-only small-modulus kernel vs the full division it
       replaced on the data plane *)
    Test.make ~name:"bignum/rem_int-200bit"
      (Staged.stage (fun () -> Z.rem_int big_a 1009));
    Test.make ~name:"bignum/erem-200bit-reference"
      (Staged.stage
         (let m = Z.of_int 1009 in
          fun () -> Z.to_int_exn (Z.erem big_a m)));
    (* RNS encoding: direct CRT vs Garner (ablation: reconstruction cost) *)
    Test.make ~name:"rns/encode-crt-10sw"
      (Staged.stage (fun () -> Rns.encode residues_full));
    Test.make ~name:"rns/encode-garner-10sw"
      (Staged.stage (fun () -> Rns.encode_garner residues_full));
    Test.make ~name:"rns/port (data plane op)"
      (Staged.stage (fun () -> Rns.port plan_full.Kar.Route.route_id 13));
    (* exactly the seed implementation of Rns.port, [Z.of_int] included *)
    Test.make ~name:"rns/port-erem-reference"
      (Staged.stage (fun () ->
           Z.to_int_exn (Z.erem plan_full.Kar.Route.route_id (Z.of_int 13))));
    Test.make ~name:"kar/residue-cache-lookup"
      (Staged.stage (fun () ->
           Kar.Route.cached_port plan_full
             ~route_id:plan_full.Kar.Route.route_id ~switch_id:13));
    Test.make ~name:"rns/extend-1-residue"
      (Staged.stage (fun () ->
           Rns.extend ~route_id:plan_full.Kar.Route.route_id
             ~modulus:plan_full.Kar.Route.modulus
             [ { Rns.modulus = 59; value = 1 } ]));
    (* forwarding decision (per-packet cost of a KAR switch): the
       zero-allocation fast path Karnet actually runs — residue-cache
       lookup + packed-int decision *)
    Test.make ~name:"kar/forward-nip"
      (Staged.stage
         (let rng = Util.Prng.of_int 9 in
          let route_id = plan_full.Kar.Route.route_id in
          fun () ->
            let c = Kar.Route.cached_port plan_full ~route_id ~switch_id:13 in
            Kar.Policy.decide Kar.Policy.Not_input_port ~computed:c ~in_port:0
              ~deflected:false ~ports:sw13_ports rng));
    (* the boxed compatibility wrapper (what Walk/Markov callers use) *)
    Test.make ~name:"kar/forward-nip-compat"
      (Staged.stage
         (let rng = Util.Prng.of_int 9 in
          let packet =
            {
              Kar.Policy.route_id = plan_full.Kar.Route.route_id;
              in_port = 0;
              deflected = false;
            }
          in
          fun () ->
            Kar.Policy.forward Kar.Policy.Not_input_port ~switch_id:13
              ~ports:sw13_ports ~packet rng));
    (* flat wire image: stamping a pooled buffer and the two data-plane
       reads that replace record access on the hot path *)
    Test.make ~name:"wire/flat-stamp"
      (Staged.stage
         (let buf = Wire.Flat.create () in
          let route_id = plan_full.Kar.Route.route_id in
          fun () ->
            Wire.Flat.stamp buf ~uid:7 ~src:1 ~dst:5 ~size_bytes:512 ~route_id));
    Test.make ~name:"wire/flat-rem-route-id"
      (Staged.stage
         (let buf = Wire.Flat.create () in
          Wire.Flat.stamp buf ~uid:7 ~src:1 ~dst:5 ~size_bytes:512
            ~route_id:plan_full.Kar.Route.route_id;
          fun () -> Wire.Flat.rem_route_id buf 13));
    Test.make ~name:"wire/flat-cached-port"
      (Staged.stage
         (let buf = Wire.Flat.create () in
          Wire.Flat.stamp buf ~uid:7 ~src:1 ~dst:5 ~size_bytes:512
            ~route_id:plan_full.Kar.Route.route_id;
          fun () -> Kar.Route.cached_port_flat plan_full buf ~switch_id:13));
    (* flight recorder: per-event cost while tracing is on (the off case
       records nothing at all) *)
    Test.make ~name:"trace/record"
      (Staged.stage
         (let r = Trace.Recorder.create ~capacity:4096 () in
          fun () ->
            Trace.Recorder.record r ~vtime:1.0 ~uid:1 ~switch:13 ~in_port:0
              ~out_port:2 ~ttl:63 Trace.Event.Forward));
    Test.make ~name:"trace/jsonl-roundtrip"
      (Staged.stage
         (let e : Trace.Event.t =
            {
              seq = 0;
              vtime = 0.00014096;
              uid = 1;
              switch = 13;
              in_port = 0;
              out_port = 2;
              ttl = 63;
              action = Trace.Event.Deflect "nip";
            }
          in
          fun () -> Trace.Event.of_jsonl (Trace.Event.to_jsonl e)));
    (* binary trace sink: per-record append cost into the arena, and the
       full encode/decode cycle for one event *)
    Test.make ~name:"trace/binary-record"
      (Staged.stage
         (let w = Trace.Binary.writer ~capacity:(1 lsl 20) () in
          let e : Trace.Event.t =
            {
              seq = 1;
              vtime = 0.00014096;
              uid = 1;
              switch = 13;
              in_port = 0;
              out_port = 2;
              ttl = 63;
              action = Trace.Event.Forward;
            }
          in
          fun () ->
            if Trace.Binary.length w > 1 lsl 20 then Trace.Binary.reset w;
            Trace.Binary.append w e));
    Test.make ~name:"trace/binary-roundtrip"
      (Staged.stage
         (let e : Trace.Event.t =
            {
              seq = 1;
              vtime = 0.00014096;
              uid = 1;
              switch = 13;
              in_port = 0;
              out_port = 2;
              ttl = 63;
              action = Trace.Event.Deflect "nip";
            }
          in
          fun () -> Trace.Binary.decode_string (Trace.Binary.encode_events [ e ])));
    (* exact analysis and Monte Carlo *)
    Test.make ~name:"kar/markov-net15"
      (Staged.stage (fun () ->
           Kar.Markov.analyze net15.Topo.Nets.graph ~plan:plan_full
             ~policy:Kar.Policy.Not_input_port
             ~failed:[ List.nth fail_links 1 ]
             ~src:net15.Topo.Nets.ingress ~dst:net15.Topo.Nets.egress));
    Test.make ~name:"kar/walk-1000-trials"
      (Staged.stage (fun () ->
           Kar.Walk.run net15.Topo.Nets.graph ~plan:plan_full
             ~policy:Kar.Policy.Not_input_port
             ~failed:[ List.nth fail_links 1 ]
             ~src:net15.Topo.Nets.ingress ~dst:net15.Topo.Nets.egress
             ~trials:1000 ~seed:4 ()));
    (* route planning *)
    Test.make ~name:"kar/plan-net15-full"
      (Staged.stage (fun () -> Kar.Controller.scenario_plan net15 Kar.Controller.Full));
    Test.make ~name:"kar/plan-rnp-partial"
      (Staged.stage (fun () -> Kar.Controller.scenario_plan rnp Kar.Controller.Partial));
    (* event engine throughput *)
    Test.make ~name:"netsim/engine-1000-events"
      (Staged.stage (fun () ->
           let e = Netsim.Engine.create () in
           for i = 1 to 1000 do
             ignore (Netsim.Engine.schedule_at e (float_of_int i) (fun () -> ()))
           done;
           Netsim.Engine.run e));
    (* shortest path on the RNP graph *)
    Test.make ~name:"topo/bfs-rnp"
      (Staged.stage (fun () ->
           Topo.Paths.bfs rnp.Topo.Nets.graph rnp.Topo.Nets.ingress));
    (* plan compiler: lowering one (plan, policy) pair into per-switch
       match-action tables for every core switch of net15 *)
    Test.make ~name:"verify/compile-net15-plan"
      (Staged.stage (fun () ->
           Kar_verify.Compiler.compile net15.Topo.Nets.graph ~plan:plan_full
             ~policy:Kar.Policy.Not_input_port));
    (* metrics registry: the two hot-path update kernels (a handful of ns,
       zero minor words) and the cost of serialising a netsim-sized schema
       to one JSONL snapshot line (paid only at snapshot intervals) *)
    Test.make ~name:"obs/counter-incr"
      (Staged.stage
         (let r = Kar_obs.Registry.create () in
          let c = Kar_obs.Registry.counter r "bench/c" in
          fun () -> Kar_obs.Registry.incr c));
    Test.make ~name:"obs/histogram-observe"
      (Staged.stage
         (let r = Kar_obs.Registry.create () in
          let h = Kar_obs.Registry.histogram r "bench/h-ns" in
          let i = ref 0 in
          fun () ->
            i := (!i + 7919) land 0xFFFFF;
            Kar_obs.Registry.observe h !i));
    Test.make ~name:"obs/snapshot-line"
      (Staged.stage
         (let r = Kar_obs.Registry.create () in
          let engine = Netsim.Engine.create () in
          let net = Netsim.Net.create ~graph:net15.Topo.Nets.graph ~engine ~registry:r () in
          ignore net;
          let h = Kar_obs.Registry.histogram r "bench/lat-ns" in
          for i = 1 to 1000 do Kar_obs.Registry.observe h (i * 997) done;
          fun () -> Kar_obs.Export.snapshot_line ~t:1.0 r))
  ]

let run_benchmarks ~quota () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:(Some 1000) ()
  in
  let to_rows test =
    let results = Benchmark.all cfg instances test in
    let analysis = Analyze.all ols Instance.monotonic_clock results in
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Some est
          | Some [] | None -> None
        in
        (name, ns) :: acc)
      analysis []
  in
  List.concat_map (fun test -> to_rows test) tests |> List.sort Stdlib.compare

let print_benchmarks rows =
  print_endline "=== Micro-benchmarks (ns/run, OLS on monotonic clock) ===";
  print_string
    (Util.Texttab.render ~header:[ "kernel"; "ns/run" ]
       (List.map
          (fun (n, v) ->
            [ n;
              (match v with
               | Some est -> Printf.sprintf "%12.1f" est
               | None -> "n/a") ])
          rows));
  print_newline ()

(* --- end-to-end netsim throughput probe ---

   A fixed workload (net15, full protection, NIP, residue cache on, no
   failures) pushed through the simulator; the score is wall-clock packets
   per second, the whole-stack number the kernel improvements must show up
   in. *)

let netsim_packets_per_sec ?(metrics = false) ~packets () =
  let sc = Topo.Nets.net15 in
  let g = sc.Topo.Nets.graph in
  let engine = Netsim.Engine.create () in
  let net = Netsim.Net.create ~graph:g ~engine () in
  (* [metrics]: the full --metrics export path on top of the always-on
     registry counters — a self-chaining snapshot event serialising the
     whole registry to JSONL 64 times over the run *)
  if metrics then begin
    let sink = Buffer.create 65536 in
    let every = float_of_int packets *. 2e-5 /. 64.0 in
    let reg = Netsim.Net.registry net in
    let rec snap () =
      Buffer.add_string sink
        (Kar_obs.Export.snapshot_line ~t:(Netsim.Engine.now engine) reg);
      Buffer.add_char sink '\n';
      if Netsim.Engine.pending engine > 0 then
        ignore (Netsim.Engine.schedule_in engine every snap)
    in
    ignore (Netsim.Engine.schedule_in engine every snap)
  end;
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Full in
  Netsim.Karnet.install_switches ~plan net ~policy:Kar.Policy.Not_input_port
    ~seed:1;
  let cache = Kar.Controller.create_cache g in
  Netsim.Karnet.install_standard_edges net
    ~controller_reencode:(fun (p : Netsim.Packet.t) ->
      Kar.Controller.reencode cache ~at:(Netsim.Packet.dst p)
        ~dst:(Netsim.Packet.dst p));
  (* Injections self-schedule (each one books the next) instead of being
     queued upfront: the event heap stays a few entries deep rather than
     [packets] deep, so the probe measures forwarding, not heap sifting
     through a mountain of pending injections.  Packets come from the
     net's buffer pool and return to it at delivery — zero minor words per
     packet once the pool is warm. *)
  let rec inject_at i () =
    let packet =
      Netsim.Net.alloc net ~src:sc.Topo.Nets.ingress ~dst:sc.Topo.Nets.egress
        ~size_bytes:512 ~route_id:plan.Kar.Route.route_id Netsim.Packet.Raw
    in
    Netsim.Net.inject net ~at:sc.Topo.Nets.ingress packet;
    if i + 1 < packets then
      ignore
        (Netsim.Engine.schedule_at engine
           (float_of_int (i + 1) *. 2e-5)
           (inject_at (i + 1)))
  in
  if packets > 0 then ignore (Netsim.Engine.schedule_at engine 0.0 (inject_at 0));
  let t0 = Unix.gettimeofday () in
  Netsim.Engine.run engine;
  let wall = Unix.gettimeofday () -. t0 in
  let s = Netsim.Net.stats net in
  if s.Netsim.Net.delivered <> packets then
    Printf.eprintf "netsim probe: %d/%d delivered\n%!" s.Netsim.Net.delivered
      packets;
  float_of_int packets /. wall

(* Minor-heap words per steady-state simulated packet, measured directly:
   pool acquire, stamp of the flat wire image, four hop decisions reading
   the route-ID limbs straight from the buffer, release back to the pool.
   The whole point of the flat path is that this is 0.0 once the pool is
   warm (the engine's event bookkeeping is harness cost, not packet
   cost, and is excluded here; the pps probe covers the full stack). *)
let forward_minor_words_per_packet ~iters =
  let rng = Util.Prng.of_int 9 in
  let route_id = plan_full.Kar.Route.route_id in
  let pool = Netsim.Packet.Pool.create () in
  let born = Sys.opaque_identity 0.0 in
  (* warm: first acquire creates the packet and may grow the free list *)
  Netsim.Packet.Pool.release pool (Netsim.Packet.Pool.acquire pool);
  let w0 = Gc.minor_words () in
  for i = 1 to iters do
    let p = Netsim.Packet.Pool.acquire pool in
    Netsim.Packet.stamp p ~uid:i ~src:1 ~dst:5 ~size_bytes:512 ~route_id
      ~born Netsim.Packet.Raw;
    let buf = Netsim.Packet.bytes p in
    for hop = 0 to 3 do
      Netsim.Packet.set_hops p hop;
      let c = Kar.Route.cached_port_flat plan_full buf ~switch_id:13 in
      ignore
        (Sys.opaque_identity
           (Kar.Policy.decide Kar.Policy.Not_input_port ~computed:c ~in_port:0
              ~deflected:false ~ports:sw13_ports rng))
    done;
    Netsim.Packet.Pool.release pool p
  done;
  let w1 = Gc.minor_words () in
  (w1 -. w0) /. float_of_int iters

(* --- domain-pool benchmarks ---

   [pool/map-overhead-ns] is the dispatch cost per (trivial) task on a
   4-job pool — the floor under which parallelising a sweep cannot pay.
   [pool/table2-sweep-jN-ms] times the Table 2 double-failure sweep (one
   exact chain analysis per connected link pair, ~30 us each) on pools of
   1/2/4/8 jobs; [pool/table2-speedup-j4] is the j1/j4 ratio — the number
   the CI gate watches on multicore hosts.  [pool/cores] records the
   host's recommended domain count so the gate can tell "parallel path
   broken" apart from "host has no cores to parallelise over". *)

let wall f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let pool_map_overhead_ns () =
  let p = Util.Pool.create ~jobs:4 in
  let arr = Array.init 512 (fun i -> i) in
  let one () = ignore (Util.Pool.map p arr ~f:(fun ~idx:_ x -> x)) in
  one () (* warm: domains parked on the condition variable *);
  let reps = 50 in
  let s = wall (fun () -> for _ = 1 to reps do one () done) in
  Util.Pool.shutdown p;
  s /. float_of_int (reps * Array.length arr) *. 1e9

let table2_sweep_ms ~jobs =
  let p = Util.Pool.create ~jobs in
  let one () = ignore (Experiments.Table2.measure ~pool:p ()) in
  one () (* warm *);
  let reps = 25 in
  let s = wall (fun () -> for _ = 1 to reps do one () done) in
  Util.Pool.shutdown p;
  s /. float_of_int reps *. 1e3

let pool_entries () =
  let overhead = pool_map_overhead_ns () in
  let j1 = table2_sweep_ms ~jobs:1 in
  let j2 = table2_sweep_ms ~jobs:2 in
  let j4 = table2_sweep_ms ~jobs:4 in
  let j8 = table2_sweep_ms ~jobs:8 in
  [
    ("pool/cores", float_of_int (Domain.recommended_domain_count ()));
    ("pool/map-overhead-ns", overhead);
    ("pool/table2-sweep-j1-ms", j1);
    ("pool/table2-sweep-j2-ms", j2);
    ("pool/table2-sweep-j4-ms", j4);
    ("pool/table2-sweep-j8-ms", j8);
    ("pool/table2-speedup-j4", j1 /. j4);
  ]

(* --- sharded-simulator benchmarks ---

   [netsim/engine-sharded-rN-ms] is wall-clock for one fixed coarse-grained
   workload — random-walk traffic on an 8x8 torus whose 2 ms links make the
   lookahead (and so the epoch) wide enough that each region executes many
   events between barriers — simulated with N regions;
   [netsim/engine-serial-ms] is the same workload on the historical
   single-engine path.  Two derived gauges feed the core-count-aware gate:
   [netsim/sharded-speedup-r4] (serial / r4, must reach 2x on a >= 4-core
   host) and [netsim/sharded-r1-overhead] (r1 / serial, the price of the
   partitioned structure when there is nothing to parallelise — healthy is
   ~1.0, gated at 1.05).  [topo/cut-edges-ratio] records the partition
   quality (boundary links / total links) of the r4 cut, a deterministic
   function of the partitioner. *)

let sharded_workload_graph () =
  let w = 8 and h = 8 in
  let b = Topo.Graph.Builder.create () in
  let nodes = Array.init (w * h) (fun i -> Topo.Graph.Builder.add_node b (i + 1)) in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let v = nodes.((y * w) + x) in
      ignore
        (Topo.Graph.Builder.add_link b ~delay_s:2e-3 v
           nodes.((y * w) + ((x + 1) mod w)));
      ignore
        (Topo.Graph.Builder.add_link b ~delay_s:2e-3 v
           nodes.((((y + 1) mod h) * w) + x))
    done
  done;
  Topo.Graph.Builder.finish b

(* ~0 regions selects the serial engine.  Packets random-walk [max_hops]
   hops and die; ports are spread by uid so the torus loads evenly. *)
let sharded_workload_s ~regions =
  let g = sharded_workload_graph () in
  let net =
    if regions = 0 then
      Netsim.Net.create ~graph:g ~engine:(Netsim.Engine.create ()) ()
    else
      Netsim.Net.create_partitioned ~graph:g
        ~partition:(Topo.Partition.make g ~regions)
        ()
  in
  let max_hops = 200 in
  Topo.Graph.iter_nodes g ~f:(fun v ->
      Netsim.Net.set_node_handler net v (fun net v (p : Netsim.Packet.t) ~in_port:_ ->
          let hops = Netsim.Packet.hops p + 1 in
          Netsim.Packet.set_hops p hops;
          if hops >= max_hops then Netsim.Net.free net p
          else
            let port =
              (Netsim.Packet.uid p + hops) mod Topo.Graph.degree g v
            in
            Netsim.Net.send net ~from_node:v ~port p));
  Topo.Graph.iter_nodes g ~f:(fun v ->
      Netsim.Net.schedule_at_node net v ~at:1e-6 (fun () ->
          for _ = 1 to 10 do
            let p =
              Netsim.Net.alloc net ~src:v ~dst:v ~size_bytes:512
                ~route_id:Bignum.Z.one Netsim.Packet.Raw
            in
            Netsim.Net.inject net ~at:v p
          done));
  wall (fun () -> Netsim.Net.run_until net 0.45)

let sharded_entries () =
  (* Round-robin over the configurations (rather than best-of-3 per
     config back to back) so slow drift in machine state — GC heap
     growth, thermal throttle — lands on every config equally; the
     r1-overhead gate watches a 5% band, which sequential measurement
     visibly biases. *)
  let configs = [| 0; 1; 2; 4 |] in
  let best = Array.map (fun _ -> infinity) configs in
  for _round = 1 to 3 do
    Array.iteri
      (fun i regions ->
        let s = sharded_workload_s ~regions in
        if s < best.(i) then best.(i) <- s)
      configs
  done;
  let serial = best.(0) *. 1e3 in
  let r1 = best.(1) *. 1e3 in
  let r2 = best.(2) *. 1e3 in
  let r4 = best.(3) *. 1e3 in
  let cut =
    (Topo.Partition.make (sharded_workload_graph ()) ~regions:4)
      .Topo.Partition.cut_ratio
  in
  [
    ("netsim/engine-serial-ms", serial);
    ("netsim/engine-sharded-r1-ms", r1);
    ("netsim/engine-sharded-r2-ms", r2);
    ("netsim/engine-sharded-r4-ms", r4);
    ("netsim/sharded-speedup-r4", serial /. r4);
    ("netsim/sharded-r1-overhead", r1 /. serial);
    ("topo/cut-edges-ratio", cut);
  ]

(* --- serving-layer benchmarks ---

   The svc gauges come in two kinds.  Wall-clock: [svc/requests-per-sec-jN]
   is how fast the plan server chews through a fixed 4k-request Zipf
   workload with batch computation on a private pool of N jobs, and
   [svc/speedup-j4] their ratio (batches are small — mean ~2 keys — so
   this is a sanity ratio, not the pool's table2-style scaling).  Virtual,
   machine-independent: [svc/p99-virtual-ms] and [svc/hit-ratio] are
   deterministic functions of the workload and the server model, so any
   movement is a code change, not noise. *)

let svc_entries () =
  let requests = 4_000 in
  let g, reqs = Experiments.Service.bench_workload ~requests in
  let serve_rps ~jobs =
    let p = Util.Pool.create ~jobs in
    let one () = Experiments.Service.bench_serve ~pool:p g reqs in
    let report = one () (* warm *) in
    let reps = 3 in
    let s = wall (fun () -> for _ = 1 to reps do ignore (one ()) done) in
    Util.Pool.shutdown p;
    (float_of_int (reps * requests) /. s, report)
  in
  let j1, report = serve_rps ~jobs:1 in
  let j4, _ = serve_rps ~jobs:4 in
  [
    ("svc/requests-per-sec-j1", j1);
    ("svc/requests-per-sec-j4", j4);
    ("svc/speedup-j4", j4 /. j1);
    ("svc/p99-virtual-ms", report.Kar_service.Server.p99 *. 1e3);
    ("svc/hit-ratio", report.Kar_service.Server.hit_ratio);
  ]

(* --- resilience-verifier benchmarks ---

   [verify/failure-sets-per-sec-jN] sweeps one prepared net15 instance
   (ingress->egress, full protection, NIP) over every failure set of up to
   2 core links on a private pool of N jobs.  The j1 number is the
   verifier's serial throughput (gated, higher is better); j4 is a
   machine-shape observation.  The compile cost itself is the bechamel
   kernel [verify/compile-net15-plan]. *)

let verify_entries () =
  let sc = Topo.Nets.net15 in
  let g = sc.Topo.Nets.graph in
  let inst =
    Experiments.Verify.instance_for g ~src:sc.Topo.Nets.ingress
      ~dst:sc.Topo.Nets.egress ~policy:Kar.Policy.Not_input_port
  in
  let links = Experiments.Verify.core_links g in
  let sets =
    Array.of_list
      (Experiments.Verify.failure_sets links ~k:1
      @ Experiments.Verify.failure_sets links ~k:2)
  in
  let sweep_rate ~jobs =
    let p = Util.Pool.create ~jobs in
    let one () =
      ignore
        (Util.Pool.map p sets ~f:(fun ~idx:_ failed ->
             Kar_verify.Verifier.verify inst ~failed))
    in
    one () (* warm *);
    let reps = 5 in
    let s = wall (fun () -> for _ = 1 to reps do one () done) in
    Util.Pool.shutdown p;
    float_of_int (reps * Array.length sets) /. s
  in
  let j1 = sweep_rate ~jobs:1 in
  let j4 = sweep_rate ~jobs:4 in
  [
    ("verify/failure-sets-per-sec-j1", j1);
    ("verify/failure-sets-per-sec-j4", j4);
  ]

(* --- scenario-engine and churn gauges ---

   [scenario/gen-*-ms] time the three generator models compiling a 3 s
   schedule against rnp28 (best of 3 wall-clocks, generic 3x gate); the
   adversarial one is the interesting number — every decision round it
   replans the tracked pairs on the surviving topology.  The churn/*
   gauges are deterministic functions of (topology, canonical spec,
   seed): CBR delivery ratios under churn for KAR and for fast failover,
   plus their gap under the adversarial schedule — the headline claim
   that the adversary hurts the baselines more than KAR.  Any movement
   there is a behaviour change, not machine noise, so they are gated on
   absolute drops. *)

let scenario_entries () =
  let spec_of sch =
    match Kar_scenario.Spec.parse (Experiments.Churn.spec_for sch) with
    | Ok spec -> spec
    | Error e -> failwith e
  in
  let gen_ms sch =
    let g = rnp.Topo.Nets.graph in
    let spec = spec_of sch in
    let best = ref infinity in
    for _ = 1 to 3 do
      let s =
        wall (fun () ->
            match
              Kar_scenario.Gen.generate g ~horizon:3.0
                ~pairs:[ (rnp.Topo.Nets.ingress, rnp.Topo.Nets.egress) ]
                spec
            with
            | Ok _ -> ()
            | Error e -> failwith e)
      in
      if s < !best then best := s
    done;
    !best *. 1e3
  in
  let delivery sc sch technique =
    let events = Experiments.Churn.events_for sc ~horizon:3.0 sch in
    (Experiments.Churn.run_data sc ~events ~technique ~rate_pps:500
       ~duration_s:3.0 ~seed:42 ())
      .Experiments.Churn.delivery_ratio
  in
  let kar_adv = delivery rnp `Adversarial Experiments.Churn.Kar in
  let ff_adv = delivery rnp `Adversarial Experiments.Churn.Fast_failover in
  [
    ("scenario/gen-flap-ms", gen_ms `Flap);
    ("scenario/gen-regional-ms", gen_ms `Regional);
    ("scenario/gen-adversarial-ms", gen_ms `Adversarial);
    ("churn/net15-regional-kar-delivery",
     delivery net15 `Regional Experiments.Churn.Kar);
    ("churn/rnp28-adversarial-kar-delivery", kar_adv);
    ("churn/rnp28-adversarial-ff-delivery", ff_adv);
    ("churn/adversarial-kar-ff-gap", kar_adv -. ff_adv);
  ]

(* --- metrics-overhead gauges ---

   [obs/metrics-pps-ratio] is the whole-stack cost of observability: the
   netsim throughput probe with the full --metrics export path (periodic
   JSONL snapshots of the whole registry) over the same probe without it.
   Both sides take the best of 3 runs, which filters scheduler noise; the
   gate is an absolute floor of 0.95 (snapshots may cost at most 5% of
   packet throughput).  The always-on registry counters are part of both
   sides — their cost is bounded separately by the bechamel kernels
   [obs/counter-incr]/[obs/histogram-observe] and by the unchanged
   [netsim/packets-per-sec] baseline. *)

let obs_entries ~packets =
  let best_of ~metrics =
    let best = ref 0.0 in
    for _ = 1 to 3 do
      let pps = netsim_packets_per_sec ~metrics ~packets () in
      if pps > !best then best := pps
    done;
    !best
  in
  let off = best_of ~metrics:false in
  let on = best_of ~metrics:true in
  [ ("obs/metrics-pps-ratio", on /. off) ]

(* --- machine-readable output (a flat {"key": number} JSON object) --- *)

let json_escape name =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length name) (String.get name)))

let write_json file entries =
  let oc = open_out file in
  output_string oc "{\n";
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "  \"%s\": %.6g%s\n" (json_escape k) v
        (if i = List.length entries - 1 then "" else ","))
    entries;
  output_string oc "}\n";
  close_out oc

(* Parse the flat {"key": number, ...} files written by [write_json].  Not
   a general JSON parser: just string keys and numeric values. *)
let parse_json file =
  let ic = open_in file in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  let entries = ref [] in
  let n = String.length content in
  let i = ref 0 in
  while !i < n do
    match String.index_from_opt content !i '"' with
    | None -> i := n
    | Some q0 ->
      (* the key, unescaping the two escapes write_json produces *)
      let buf = Buffer.create 32 in
      let j = ref (q0 + 1) in
      let stop = ref false in
      while (not !stop) && !j < n do
        (match content.[!j] with
         | '\\' when !j + 1 < n ->
           Buffer.add_char buf content.[!j + 1];
           incr j
         | '"' -> stop := true
         | c -> Buffer.add_char buf c);
        incr j
      done;
      let key = Buffer.contents buf in
      (* skip to the value after the colon *)
      (match String.index_from_opt content !j ':' with
       | None -> i := n
       | Some c0 ->
         let v0 = ref (c0 + 1) in
         while
           !v0 < n && (content.[!v0] = ' ' || content.[!v0] = '\t')
         do
           incr v0
         done;
         let v1 = ref !v0 in
         while
           !v1 < n
           && (match content.[!v1] with
               | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
               | _ -> false)
         do
           incr v1
         done;
         (if !v1 > !v0 then
            match float_of_string_opt (String.sub content !v0 (!v1 - !v0)) with
            | Some v -> entries := (key, v) :: !entries
            | None -> ());
         i := !v1)
  done;
  List.rev !entries

let higher_is_better key =
  key = "netsim/packets-per-sec" || key = "verify/failure-sets-per-sec-j1"

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Keys whose scale is not a kernel latency: excluded from the regression
   gate (throughput is checked in the other direction; the allocation
   counter is asserted exactly by the test suite; pool wall-clocks are
   machine-shape numbers checked via the speedup ratio instead). *)
let check_entry (key, baseline) fresh =
  match List.assoc_opt key fresh with
  | None -> None (* kernel renamed/removed: not a regression *)
  | Some now ->
    if key = "gc/forward-minor-words-per-packet" then None
    else if key = "pool/table2-speedup-j4" then
      (* The parallel-path gate: on a host with >= 4 cores, the sweep must
         still actually go parallel.  The floor is 2x (not the ~3.5x a
         healthy pool shows) so CI noise can't trip it; a serialised pool
         measures ~1x and fails.  Skipped on narrow hosts, where there is
         nothing to parallelise over. *)
      (match List.assoc_opt "pool/cores" fresh with
       | Some cores when cores >= 4.0 && now < 2.0 ->
         Some
           (Printf.sprintf
              "%s: %.2fx (< 2x on a %.0f-core host; parallel sweep path \
               no longer scales)"
              key now cores)
       | _ -> None)
    else if starts_with ~prefix:"pool/" key then None
    else if key = "netsim/sharded-speedup-r4" then
      (* The sharded-path gate: on a host with >= 4 cores the 4-region
         simulation of the coarse-grained workload must actually run in
         parallel.  2x is the floor (a healthy run shows ~3x); a
         serialised barrier loop measures ~1x and fails.  On narrow hosts
         the gauge is recorded but not enforced. *)
      (match List.assoc_opt "pool/cores" fresh with
       | Some cores when cores >= 4.0 && now < 2.0 ->
         Some
           (Printf.sprintf
              "%s: %.2fx (< 2x on a %.0f-core host; sharded simulation no \
               longer scales)"
              key now cores)
       | _ -> None)
    else if key = "netsim/sharded-r1-overhead" then
      (* A 1-region partition is structurally the serial simulator; its
         wall-clock may cost at most 5% over the single-engine path.
         Enforced alongside the speedup gate (>= 4 cores), where the
         best-of-3 runs are quiet enough for a 5% band. *)
      (match List.assoc_opt "pool/cores" fresh with
       | Some cores when cores >= 4.0 && now > 1.05 ->
         Some
           (Printf.sprintf
              "%s: %.3fx on a %.0f-core host (single-region sharding costs \
               more than 5%% over the serial engine)"
              key now cores)
       | _ -> None)
    else if
      key = "netsim/engine-serial-ms"
      || starts_with ~prefix:"netsim/engine-sharded-" key
    then None (* machine-shape wall-clocks behind the two gauges above *)
    else if key = "topo/cut-edges-ratio" then
      (* Deterministic in the partitioner and the fixed bench torus: a
         jump means partition quality changed, not machine noise. *)
      if now > baseline +. 0.10 then
        Some
          (Printf.sprintf
             "%s: %.3f -> %.3f (partition cut grew by more than 0.10)" key
             baseline now)
      else None
    else if key = "verify/failure-sets-per-sec-j4" then
      (* machine-shape wall-clock (depends on core count); the serial j1
         throughput is the gated number *)
      None
    else if key = "svc/speedup-j4" then
      (* Sanity ratio, not a scaling target: service batches average ~2
         keys, so j4 buys little — but on a >= 4-core host it must not be
         drastically slower than serial (that would mean the private-pool
         dispatch path went pathological, e.g. a lock convoy per batch). *)
      (match List.assoc_opt "pool/cores" fresh with
       | Some cores when cores >= 4.0 && now < 0.5 ->
         Some
           (Printf.sprintf
              "%s: %.2fx (< 0.5x on a %.0f-core host; parallel batch \
               dispatch is pathologically slow)"
              key now cores)
       | _ -> None)
    else if key = "obs/metrics-pps-ratio" then
      (* Absolute floor, not baseline-relative: the metrics export path
         must never cost more than 5% of netsim packet throughput. *)
      if now < 0.95 then
        Some
          (Printf.sprintf
             "%s: %.3f (metrics-on netsim throughput fell below 95%% of \
              metrics-off)"
             key now)
      else None
    else if key = "churn/adversarial-kar-ff-gap" then
      (* Sign-and-margin floor, not baseline-relative: KAR must keep
         out-delivering fast failover under the canonical adversarial
         schedule.  A collapse to ~0 means the adversary no longer tells
         the techniques apart (or KAR lost its edge). *)
      if now < 0.05 then
        Some
          (Printf.sprintf
             "%s: %.3f (KAR's delivery edge over fast failover under the \
              adversarial schedule collapsed below 0.05)"
             key now)
      else None
    else if starts_with ~prefix:"churn/" key then
      (* Deterministic in (topology, spec, seed): an absolute delivery
         drop is a behaviour change in the scenario engine, a baseline,
         or the simulator — never machine noise. *)
      if now < baseline -. 0.10 then
        Some
          (Printf.sprintf
             "%s: %.3f -> %.3f (delivery under churn dropped by more than \
              0.10)"
             key baseline now)
      else None
    else if key = "svc/hit-ratio" then
      (* Deterministic in the workload: an absolute drop means the cache,
         the epochs, or the generator changed behaviour. *)
      if now < baseline -. 0.10 then
        Some
          (Printf.sprintf "%s: %.3f -> %.3f (hit ratio dropped by more \
                           than 0.10)" key baseline now)
      else None
    else if starts_with ~prefix:"svc/requests-per-sec" key then None
    else if higher_is_better key then
      if baseline > 0.0 && now < baseline /. regression_factor then
        Some
          (Printf.sprintf "%s: %.6g -> %.6g (more than %.1fx slower)" key
             baseline now regression_factor)
      else None
    else if baseline > 0.0 && now > baseline *. regression_factor then
      Some
        (Printf.sprintf "%s: %.6g ns -> %.6g ns (more than %.1fx slower)" key
           baseline now regression_factor)
    else None

let measure_all ~quota ~packets =
  let rows = run_benchmarks ~quota () in
  print_benchmarks rows;
  let kernels =
    List.filter_map (fun (n, v) -> Option.map (fun est -> (n, est)) v) rows
  in
  let pps = netsim_packets_per_sec ~packets () in
  let words = forward_minor_words_per_packet ~iters:100_000 in
  Printf.printf "netsim end-to-end: %.0f packets/s\n" pps;
  Printf.printf "steady-state forward path: %.3f minor words/packet\n" words;
  let pool = pool_entries () in
  List.iter (fun (k, v) -> Printf.printf "%s: %.6g\n" k v) pool;
  let sharded = sharded_entries () in
  List.iter (fun (k, v) -> Printf.printf "%s: %.6g\n" k v) sharded;
  let svc = svc_entries () in
  List.iter (fun (k, v) -> Printf.printf "%s: %.6g\n" k v) svc;
  let verify = verify_entries () in
  List.iter (fun (k, v) -> Printf.printf "%s: %.6g\n" k v) verify;
  let scen = scenario_entries () in
  List.iter (fun (k, v) -> Printf.printf "%s: %.6g\n" k v) scen;
  let obs = obs_entries ~packets in
  List.iter (fun (k, v) -> Printf.printf "%s: %.6g\n" k v) obs;
  print_newline ();
  kernels
  @ [ ("netsim/packets-per-sec", pps);
      ("gc/forward-minor-words-per-packet", words) ]
  @ pool @ sharded @ svc @ verify @ scen @ obs

let run_experiments () =
  let profile = Experiments.Profile.from_env () in
  Printf.printf "=== Paper reproduction (profile: %s) ===\n\n" profile.Experiments.Profile.name;
  print_endline (Experiments.Fig1.to_string ());
  print_endline (Experiments.Table1.to_string ());
  print_endline (Experiments.Fig4.to_string ~profile ());
  print_endline (Experiments.Fig5.to_string ~profile ());
  print_endline (Experiments.Fig7.to_string ~profile ());
  print_endline (Experiments.Fig8.to_string ~profile ());
  print_endline (Experiments.Table2.to_string ());
  print_endline "=== Beyond the paper ===";
  print_endline (Experiments.Reaction.compare_to_string ~profile ());
  print_endline (Experiments.Reaction.detection_to_string ~profile ());
  print_endline (Experiments.Congestion.to_string ~profile ());
  print_endline (Experiments.Scaling.to_string ());
  print_endline (Experiments.Scaling.multipath_to_string ());
  print_endline (Experiments.Multifailure.to_string ());
  print_endline "=== Ablations ===";
  print_endline (Experiments.Ablations.policy_hops_table ());
  print_endline (Experiments.Ablations.ids_table ());
  print_endline (Experiments.Ablations.budget_table ());
  print_endline (Experiments.Ablations.planner_table ());
  print_endline (Experiments.Ablations.cc_table ~profile ());
  print_endline (Experiments.Ablations.delivery_table ~profile ())

let () =
  let json_file = ref None
  and check_file = ref None
  and quota = ref 0.5 in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
      json_file := Some file;
      parse rest
    | "--check" :: file :: rest ->
      check_file := Some file;
      parse rest
    | "--quota" :: q :: rest ->
      quota := float_of_string q;
      parse rest
    | ("-j" | "--jobs") :: j :: rest ->
      Util.Pool.set_jobs (int_of_string j);
      parse rest
    | arg :: _ ->
      Printf.eprintf
        "usage: bench [--json FILE] [--check BASELINE] [--quota SECONDS] \
         [-j JOBS]\n\
         unknown argument: %s\n"
        arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  match (!json_file, !check_file) with
  | None, None ->
    print_benchmarks (run_benchmarks ~quota:!quota ());
    run_experiments ()
  | _ ->
    let results = measure_all ~quota:!quota ~packets:10_000 in
    (match !json_file with
     | Some file ->
       write_json file results;
       Printf.printf "wrote %s\n" file
     | None -> ());
    (match !check_file with
     | None -> ()
     | Some baseline_file ->
       let baseline = parse_json baseline_file in
       let regressions =
         List.filter_map (fun kv -> check_entry kv results) baseline
       in
       (match regressions with
        | [] ->
          Printf.printf "bench check: no kernel regressed more than %.1fx vs %s\n"
            regression_factor baseline_file
        | rs ->
          List.iter (fun r -> Printf.eprintf "REGRESSION %s\n" r) rs;
          exit 1))
