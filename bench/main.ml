(* Benchmark harness.

   Two halves:
   1. bechamel micro-benchmarks of the compute kernels (bignum arithmetic,
      CRT vs Garner encoding, the per-packet forwarding decision, the exact
      Markov analysis, the event engine) — the "design choices" ablations;
   2. regeneration of every table and figure of the paper (quick profile by
      default; KAR_PROFILE=paper for the published durations). *)

open Bechamel
open Toolkit

module Z = Bignum.Z

(* --- inputs shared by the micro-benches --- *)

let big_a = Z.of_string "123456789012345678901234567890123456789012345678901234567890"
let big_b = Z.of_string "987654321098765432109876543210987654321"

let residues_full =
  (Kar.Controller.scenario_plan Topo.Nets.net15 Kar.Controller.Full).Kar.Route.residues

let plan_full = Kar.Controller.scenario_plan Topo.Nets.net15 Kar.Controller.Full

let net15 = Topo.Nets.net15
let rnp = Topo.Nets.rnp28

let port_states_of g v =
  Array.init (Topo.Graph.degree g v) (fun p ->
      let link = Topo.Graph.link_at g v p in
      let far = (Topo.Graph.other_end link v).Topo.Graph.node in
      { Kar.Policy.up = true; to_host = not (Topo.Graph.is_core g far) })

let sw13_ports = port_states_of net15.Topo.Nets.graph (Topo.Graph.node_of_label net15.Topo.Nets.graph 13)

let fail_links = List.map (fun fc -> fc.Topo.Nets.link) net15.Topo.Nets.failures

let tests =
  [
    (* bignum kernels *)
    Test.make ~name:"bignum/mul-200bit" (Staged.stage (fun () -> Z.mul big_a big_b));
    Test.make ~name:"bignum/divmod-200bit" (Staged.stage (fun () -> Z.divmod big_a big_b));
    Test.make ~name:"bignum/egcd-200bit" (Staged.stage (fun () -> Z.egcd big_a big_b));
    Test.make ~name:"bignum/to_string" (Staged.stage (fun () -> Z.to_string big_a));
    (* RNS encoding: direct CRT vs Garner (ablation: reconstruction cost) *)
    Test.make ~name:"rns/encode-crt-10sw"
      (Staged.stage (fun () -> Rns.encode residues_full));
    Test.make ~name:"rns/encode-garner-10sw"
      (Staged.stage (fun () -> Rns.encode_garner residues_full));
    Test.make ~name:"rns/port (data plane op)"
      (Staged.stage (fun () -> Rns.port plan_full.Kar.Route.route_id 13));
    Test.make ~name:"rns/extend-1-residue"
      (Staged.stage (fun () ->
           Rns.extend ~route_id:plan_full.Kar.Route.route_id
             ~modulus:plan_full.Kar.Route.modulus
             [ { Rns.modulus = 59; value = 1 } ]));
    (* forwarding decision (per-packet cost of a KAR switch) *)
    Test.make ~name:"kar/forward-nip"
      (Staged.stage
         (let rng = Util.Prng.of_int 9 in
          let packet =
            {
              Kar.Policy.route_id = plan_full.Kar.Route.route_id;
              in_port = 0;
              deflected = false;
            }
          in
          fun () ->
            Kar.Policy.forward Kar.Policy.Not_input_port ~switch_id:13
              ~ports:sw13_ports ~packet rng));
    (* flight recorder: per-event cost while tracing is on (the off case
       records nothing at all) *)
    Test.make ~name:"trace/record"
      (Staged.stage
         (let r = Trace.Recorder.create ~capacity:4096 () in
          fun () ->
            Trace.Recorder.record r ~vtime:1.0 ~uid:1 ~switch:13 ~in_port:0
              ~out_port:2 ~ttl:63 Trace.Event.Forward));
    Test.make ~name:"trace/jsonl-roundtrip"
      (Staged.stage
         (let e =
            Trace.Recorder.record
              (Trace.Recorder.create ~capacity:1 ())
              ~vtime:0.00014096 ~uid:1 ~switch:13 ~in_port:0 ~out_port:2
              ~ttl:63 (Trace.Event.Deflect "nip")
          in
          fun () -> Trace.Event.of_jsonl (Trace.Event.to_jsonl e)));
    (* exact analysis and Monte Carlo *)
    Test.make ~name:"kar/markov-net15"
      (Staged.stage (fun () ->
           Kar.Markov.analyze net15.Topo.Nets.graph ~plan:plan_full
             ~policy:Kar.Policy.Not_input_port
             ~failed:[ List.nth fail_links 1 ]
             ~src:net15.Topo.Nets.ingress ~dst:net15.Topo.Nets.egress));
    Test.make ~name:"kar/walk-1000-trials"
      (Staged.stage (fun () ->
           Kar.Walk.run net15.Topo.Nets.graph ~plan:plan_full
             ~policy:Kar.Policy.Not_input_port
             ~failed:[ List.nth fail_links 1 ]
             ~src:net15.Topo.Nets.ingress ~dst:net15.Topo.Nets.egress
             ~trials:1000 ~seed:4 ()));
    (* route planning *)
    Test.make ~name:"kar/plan-net15-full"
      (Staged.stage (fun () -> Kar.Controller.scenario_plan net15 Kar.Controller.Full));
    Test.make ~name:"kar/plan-rnp-partial"
      (Staged.stage (fun () -> Kar.Controller.scenario_plan rnp Kar.Controller.Partial));
    (* event engine throughput *)
    Test.make ~name:"netsim/engine-1000-events"
      (Staged.stage (fun () ->
           let e = Netsim.Engine.create () in
           for i = 1 to 1000 do
             ignore (Netsim.Engine.schedule_at e (float_of_int i) (fun () -> ()))
           done;
           Netsim.Engine.run e));
    (* shortest path on the RNP graph *)
    Test.make ~name:"topo/bfs-rnp"
      (Staged.stage (fun () ->
           Topo.Paths.bfs rnp.Topo.Nets.graph rnp.Topo.Nets.ingress));
  ]

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let to_rows test =
    let results = Benchmark.all cfg instances test in
    let analysis = Analyze.all ols Instance.monotonic_clock results in
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (est :: _) -> Printf.sprintf "%12.1f" est
          | Some [] | None -> "n/a"
        in
        (name, ns) :: acc)
      analysis []
  in
  let rows =
    List.concat_map (fun test -> to_rows test) tests
    |> List.sort Stdlib.compare
  in
  print_endline "=== Micro-benchmarks (ns/run, OLS on monotonic clock) ===";
  print_string
    (Util.Texttab.render ~header:[ "kernel"; "ns/run" ]
       (List.map (fun (n, v) -> [ n; v ]) rows));
  print_newline ()

let run_experiments () =
  let profile = Experiments.Profile.from_env () in
  Printf.printf "=== Paper reproduction (profile: %s) ===\n\n" profile.Experiments.Profile.name;
  print_endline (Experiments.Fig1.to_string ());
  print_endline (Experiments.Table1.to_string ());
  print_endline (Experiments.Fig4.to_string ~profile ());
  print_endline (Experiments.Fig5.to_string ~profile ());
  print_endline (Experiments.Fig7.to_string ~profile ());
  print_endline (Experiments.Fig8.to_string ~profile ());
  print_endline (Experiments.Table2.to_string ());
  print_endline "=== Beyond the paper ===";
  print_endline (Experiments.Reaction.compare_to_string ~profile ());
  print_endline (Experiments.Reaction.detection_to_string ~profile ());
  print_endline (Experiments.Congestion.to_string ~profile ());
  print_endline (Experiments.Scaling.to_string ());
  print_endline (Experiments.Scaling.multipath_to_string ());
  print_endline (Experiments.Multifailure.to_string ());
  print_endline "=== Ablations ===";
  print_endline (Experiments.Ablations.policy_hops_table ());
  print_endline (Experiments.Ablations.ids_table ());
  print_endline (Experiments.Ablations.budget_table ());
  print_endline (Experiments.Ablations.planner_table ());
  print_endline (Experiments.Ablations.cc_table ~profile ());
  print_endline (Experiments.Ablations.delivery_table ~profile ())

let () =
  run_benchmarks ();
  run_experiments ()
