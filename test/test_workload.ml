(* Tests for the workload layer: the PRNG and statistics utilities it leans
   on, the CBR generator's delivery accounting, and the TCP scenario
   runners' structural guarantees (determinism per seed, failure windows
   taking effect). *)

module Nets = Topo.Nets

let qtest ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* --- prng --- *)

let test_prng_deterministic () =
  let a = Util.Prng.of_int 42 and b = Util.Prng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Prng.next a) (Util.Prng.next b)
  done

let test_prng_split_independent () =
  let parent = Util.Prng.of_int 42 in
  let c1 = Util.Prng.split parent in
  let c2 = Util.Prng.split parent in
  Alcotest.(check bool) "children differ" true
    (Util.Prng.next c1 <> Util.Prng.next c2)

let prop_prng_int_range =
  qtest "int within bounds"
    QCheck2.Gen.(pair (1 -- 1000) (0 -- 10_000))
    (fun (bound, seed) ->
      let g = Util.Prng.of_int seed in
      let v = Util.Prng.int g bound in
      v >= 0 && v < bound)

let test_prng_uniformity () =
  let g = Util.Prng.of_int 3 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Util.Prng.int g 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let share = float_of_int c /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d share %.3f" i share)
        true
        (Float.abs (share -. 0.1) < 0.01))
    counts

let test_prng_float_range () =
  let g = Util.Prng.of_int 9 in
  for _ = 1 to 1000 do
    let v = Util.Prng.float g in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_shuffle_permutes () =
  let g = Util.Prng.of_int 5 in
  let arr = Array.init 20 (fun i -> i) in
  Util.Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort Stdlib.compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 20 (fun i -> i)) sorted

(* --- stats --- *)

let test_stats_known () =
  let s = Util.Stats.summarize [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 s.Util.Stats.mean;
  Alcotest.(check (float 1e-3)) "stddev (sample)" 2.138 s.Util.Stats.stddev;
  Alcotest.(check int) "n" 8 s.Util.Stats.n;
  Alcotest.(check (float 1e-9)) "min" 2.0 s.Util.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 9.0 s.Util.Stats.max

let test_stats_ci_single () =
  let s = Util.Stats.summarize [ 5.0 ] in
  Alcotest.(check (float 1e-9)) "no CI for one sample" 0.0 s.Util.Stats.ci95

let test_stats_t_table () =
  Alcotest.(check (float 1e-3)) "df=1" 12.706 (Util.Stats.t_critical_95 1);
  Alcotest.(check (float 1e-3)) "df=29 (30 reps)" 2.045 (Util.Stats.t_critical_95 29);
  Alcotest.(check (float 1e-3)) "df large" 1.96 (Util.Stats.t_critical_95 1000)

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Util.Stats.percentile 50.0 xs);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Util.Stats.percentile 0.0 xs);
  Alcotest.(check (float 1e-9)) "max" 5.0 (Util.Stats.percentile 100.0 xs);
  Alcotest.(check (float 1e-9)) "p25" 2.0 (Util.Stats.percentile 25.0 xs)

let test_stats_histogram () =
  let h = Util.Stats.histogram ~bins:4 ~lo:0.0 ~hi:4.0 [ 0.5; 1.5; 1.6; 3.9; -1.0; 9.0 ] in
  Alcotest.(check (array int)) "clamped counts" [| 2; 2; 0; 2 |] h

(* --- texttab --- *)

let test_texttab_render () =
  let s = Util.Texttab.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "has rule" true (String.contains s '-');
  Alcotest.(check bool) "mentions 333" true (Astring.String.is_infix ~affix:"333" s)

let test_spark () =
  Alcotest.(check string) "empty" "" (Util.Texttab.spark []);
  let s = Util.Texttab.spark [ 0.0; 1.0 ] in
  Alcotest.(check bool) "two cells" true (String.length s > 0)

(* --- cbr --- *)

let test_cbr_healthy_delivers_everything () =
  let r =
    Workload.Cbr.run Nets.net15 ~policy:Kar.Policy.Not_input_port
      ~level:Kar.Controller.Full ~rate_pps:500 ~duration_s:1.0 ~seed:1 ()
  in
  Alcotest.(check (float 1e-9)) "delivery 1.0" 1.0 r.Workload.Cbr.delivery_ratio;
  Alcotest.(check (float 1e-6)) "4 hops" 4.0 r.Workload.Cbr.mean_hops;
  Alcotest.(check int) "no re-encodes" 0 r.Workload.Cbr.reencoded

let test_cbr_failure_nip_still_delivers () =
  let sc = Nets.net15 in
  let fc = List.nth sc.Nets.failures 1 in
  let r =
    Workload.Cbr.run sc ~policy:Kar.Policy.Not_input_port
      ~level:Kar.Controller.Full ~rate_pps:500 ~duration_s:1.0 ~failure:fc
      ~seed:1 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "delivery %.3f > 0.99" r.Workload.Cbr.delivery_ratio)
    true
    (r.Workload.Cbr.delivery_ratio > 0.99);
  Alcotest.(check bool) "hops inflated" true (r.Workload.Cbr.mean_hops > 4.0)

let test_cbr_failure_none_drops () =
  let sc = Nets.net15 in
  let fc = List.nth sc.Nets.failures 1 in
  let r =
    Workload.Cbr.run sc ~policy:Kar.Policy.No_deflection
      ~level:Kar.Controller.Full ~rate_pps:500 ~duration_s:1.0 ~failure:fc
      ~seed:1 ()
  in
  Alcotest.(check (float 1e-9)) "everything lost" 0.0 r.Workload.Cbr.delivery_ratio

(* --- runner --- *)

let test_runner_deterministic () =
  let sc = Nets.net15 in
  let config =
    {
      Workload.Runner.default_timeline with
      failure = Some (List.nth sc.Nets.failures 1);
      pre_s = 0.5;
      fail_s = 0.5;
      post_s = 0.5;
    }
  in
  let r1 = Workload.Runner.timeline sc config in
  let r2 = Workload.Runner.timeline sc config in
  Alcotest.(check (list (float 1e-9))) "same series for same seed"
    r1.Workload.Runner.series r2.Workload.Runner.series

let test_runner_failure_takes_effect () =
  let sc = Nets.net15 in
  let no_failure =
    Workload.Runner.timeline sc
      { Workload.Runner.default_timeline with pre_s = 0.5; fail_s = 0.5; post_s = 0.5 }
  in
  let with_failure =
    Workload.Runner.timeline sc
      {
        Workload.Runner.default_timeline with
        policy = Workload.Runner.Kar Kar.Policy.No_deflection;
        failure = Some (List.nth sc.Nets.failures 1);
        pre_s = 0.5;
        fail_s = 0.5;
        post_s = 0.5;
      }
  in
  Alcotest.(check bool) "failure suppresses goodput" true
    (with_failure.Workload.Runner.mean_fail
     < no_failure.Workload.Runner.mean_fail /. 2.0)

let test_runner_iperf_summary () =
  let sc = Nets.net15 in
  let config =
    { Workload.Runner.default_iperf with reps = 4; rep_duration_s = 1.0 }
  in
  let s = Workload.Runner.iperf_reps sc config in
  Alcotest.(check int) "four reps" 4 s.Util.Stats.n;
  Alcotest.(check bool) "positive goodput" true (s.Util.Stats.mean > 0.0)

let test_runner_fast_failover_plane () =
  let sc = Nets.net15 in
  let config =
    {
      Workload.Runner.default_iperf with
      policy = Workload.Runner.Fast_failover;
      reps = 2;
      rep_duration_s = 1.0;
      failure = Some (List.nth sc.Nets.failures 1);
    }
  in
  let s = Workload.Runner.iperf_reps sc config in
  Alcotest.(check bool) "the stateful baseline also carries traffic" true
    (s.Util.Stats.mean > 50.0)

(* --- conservation property on random topologies --- *)

let qtest_slow name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:8 ~name gen f)

let prop_cbr_conservation =
  qtest_slow "CBR conservation: sent = received + dropped (random nets)"
    QCheck2.Gen.(pair (1 -- 200) (0 -- 3))
    (fun (seed, policy_idx) ->
      (* a random labelled topology with hosts, a random single failure *)
      let base = Topo.Gen.gnp ~n:10 ~p:0.35 ~seed in
      let g = Kar.Ids.assign base Kar.Ids.Primes_ascending in
      let cores = Topo.Graph.core_nodes g in
      let src_core = List.nth cores 0 in
      let dist, _ = Topo.Paths.bfs g src_core in
      let dst_core =
        List.fold_left
          (fun best v -> if dist.(v) > dist.(best) then v else best)
          src_core cores
      in
      src_core = dst_core
      ||
      let g, hosts = Topo.Gen.with_edge_hosts g [ src_core; dst_core ] in
      let src, dst = match hosts with [ a; b ] -> (a, b) | _ -> assert false in
      let plan = Kar.Controller.route g ~src ~dst ~protection:[] in
      let policy = List.nth Kar.Policy.all policy_idx in
      (* run a short CBR stream with the first on-path link failed *)
      let engine = Netsim.Engine.create () in
      let net = Netsim.Net.create ~graph:g ~engine ~ttl:64 () in
      Netsim.Karnet.install_switches net ~policy ~seed:(seed + 1);
      let cache = Kar.Controller.create_cache g in
      let received = ref 0 in
      List.iter
        (fun v ->
          Netsim.Karnet.install_edge net v
            ~reencode:(fun p ->
              Kar.Controller.reencode cache ~at:v ~dst:(Netsim.Packet.dst p))
            ~receive:(fun _ _ -> incr received)
            ())
        (Topo.Graph.edge_nodes g);
      (match Topo.Paths.path_links g plan.Kar.Route.core_path with
       | l :: _ -> Netsim.Net.fail_link net l
       | [] -> ());
      let sent = 200 in
      for i = 0 to sent - 1 do
        ignore
          (Netsim.Engine.schedule_at engine (float_of_int i *. 1e-4) (fun () ->
               let p =
                 Netsim.Packet.make ~uid:i ~src ~dst ~size_bytes:500
                   ~route_id:plan.Kar.Route.route_id ~born:0.0 Netsim.Packet.Raw
               in
               Netsim.Net.inject net ~at:src p))
      done;
      Netsim.Engine.run engine;
      let s = Netsim.Net.stats net in
      let drops =
        s.Netsim.Net.dropped_link_down + s.Netsim.Net.dropped_queue_full
        + s.Netsim.Net.dropped_no_route + s.Netsim.Net.dropped_ttl
      in
      (* every injected packet is accounted for exactly once; [received]
         counts only packets reaching [dst], the others ended at [src]'s
         host handler after a walk or were dropped *)
      !received + drops <= sent
      && s.Netsim.Net.delivered + drops = sent)

let () =
  Alcotest.run "workload"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          prop_prng_int_range;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary on known data" `Quick test_stats_known;
          Alcotest.test_case "single-sample CI" `Quick test_stats_ci_single;
          Alcotest.test_case "t table" `Quick test_stats_t_table;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
        ] );
      ( "texttab",
        [
          Alcotest.test_case "render" `Quick test_texttab_render;
          Alcotest.test_case "spark" `Quick test_spark;
        ] );
      ( "cbr",
        [
          Alcotest.test_case "healthy: 100% delivery" `Quick
            test_cbr_healthy_delivers_everything;
          Alcotest.test_case "failure + NIP still delivers" `Quick
            test_cbr_failure_nip_still_delivers;
          Alcotest.test_case "failure + none drops all" `Quick test_cbr_failure_none_drops;
        ] );
      ( "conservation",
        [ prop_cbr_conservation ] );
      ( "runner",
        [
          Alcotest.test_case "deterministic per seed" `Slow test_runner_deterministic;
          Alcotest.test_case "failure takes effect" `Slow test_runner_failure_takes_effect;
          Alcotest.test_case "iperf summary" `Slow test_runner_iperf_summary;
          Alcotest.test_case "fast-failover data plane" `Slow test_runner_fast_failover_plane;
        ] );
    ]
