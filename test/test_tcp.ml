(* Tests for the TCP model: the sampler arithmetic, and end-to-end flow
   behaviours on a minimal host-switch-host network — clean-link goodput
   near capacity, full recovery from a blackout window via RTO, graceful
   behaviour under reordering (DSACK adaptation suppresses spurious
   retransmissions), and loss recovery through SACK. *)

module Engine = Netsim.Engine
module Net = Netsim.Net
module Graph = Topo.Graph

(* --- sampler --- *)

let test_sampler_bins () =
  let s = Tcp.Sampler.create ~bin_s:1.0 () in
  Tcp.Sampler.add s ~time:0.5 ~bytes:125_000;
  (* 1 Mb in bin 0 *)
  Tcp.Sampler.add s ~time:2.5 ~bytes:250_000;
  (* 2 Mb in bin 2 *)
  let series = Tcp.Sampler.series_mbps s ~until:3.0 in
  Alcotest.(check (list (float 1e-6))) "series" [ 1.0; 0.0; 2.0 ] series

let test_sampler_mean () =
  let s = Tcp.Sampler.create ~bin_s:1.0 () in
  Tcp.Sampler.add s ~time:0.2 ~bytes:125_000;
  Tcp.Sampler.add s ~time:1.2 ~bytes:125_000;
  Alcotest.(check (float 1e-6)) "mean over 2s" 1.0
    (Tcp.Sampler.mean_mbps s ~from_s:0.0 ~until:2.0)

let test_sampler_growth () =
  let s = Tcp.Sampler.create ~bin_s:0.1 () in
  Tcp.Sampler.add s ~time:99.95 ~bytes:1000;
  Alcotest.(check int) "1000 bins" 1000 (List.length (Tcp.Sampler.series_mbps s ~until:100.0))

let test_sampler_errors () =
  (match Tcp.Sampler.create ~bin_s:0.0 () with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "zero bin accepted");
  let s = Tcp.Sampler.create ~bin_s:1.0 () in
  match Tcp.Sampler.add s ~time:(-1.0) ~bytes:10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative time accepted"

(* --- flow fixture: A - SW3 - B, configurable rate/delay --- *)

let fixture ?(rate = 10e6) ?(delay = 1e-3) () =
  let b = Graph.Builder.create () in
  let s = Graph.Builder.add_node b 3 in
  let a = Graph.Builder.add_node b ~kind:Graph.Edge 100 in
  let h = Graph.Builder.add_node b ~kind:Graph.Edge 101 in
  ignore (Graph.Builder.add_link b ~rate_bps:rate ~delay_s:delay a s);
  let l_sb = Graph.Builder.add_link b ~rate_bps:rate ~delay_s:delay s h in
  let g = Graph.Builder.finish b in
  let engine = Engine.create () in
  let net = Net.create ~graph:g ~engine () in
  Netsim.Karnet.install_switches net ~policy:Kar.Policy.Not_input_port ~seed:1;
  let stack = Tcp.Stack.create ~net () in
  (net, engine, stack, a, h, l_sb)

(* route ids on the fixture: data toward B needs SW3 -> port 1; ACKs toward
   A need SW3 -> port 0.  With switch id 3: 1 mod 3 = 1, 0 mod 3 = 0. *)
let fwd = Bignum.Z.of_int 1
let rev = Bignum.Z.of_int 0

let start_flow ?config ?sampler (net, _, stack, a, h, _) =
  let flow =
    Tcp.Flow.start ~net ~id:1 ~src:a ~dst:h ~fwd_route:fwd ~rev_route:rev
      ?config ?sampler ()
  in
  Tcp.Stack.register stack flow;
  flow

let test_clean_link_goodput () =
  let fx = fixture ~rate:10e6 () in
  let _, engine, _, _, _, _ = fx in
  let sampler = Tcp.Sampler.create ~bin_s:0.5 () in
  let flow = start_flow ~sampler fx in
  Engine.run_until engine 5.0;
  Tcp.Flow.stop flow;
  let goodput = Tcp.Sampler.mean_mbps sampler ~from_s:1.0 ~until:5.0 in
  (* 10 Mb/s link, 40B/1500B header overhead: expect > 8.5 Mb/s goodput *)
  Alcotest.(check bool) (Printf.sprintf "goodput %.2f near capacity" goodput) true
    (goodput > 8.5 && goodput < 10.0);
  let st = Tcp.Flow.stats flow in
  Alcotest.(check int) "no timeouts on a clean link" 0 st.Tcp.Flow.timeouts

let test_receiver_in_order () =
  (* bytes_delivered only counts in-order data; it can never exceed
     bytes_acked + a window *)
  let fx = fixture () in
  let _, engine, _, _, _, _ = fx in
  let flow = start_flow fx in
  Engine.run_until engine 2.0;
  Tcp.Flow.stop flow;
  let st = Tcp.Flow.stats flow in
  Alcotest.(check bool) "delivered tracks acked" true
    (st.Tcp.Flow.bytes_delivered >= st.Tcp.Flow.bytes_acked
     && st.Tcp.Flow.bytes_delivered > 0)

let test_blackout_recovery () =
  let fx = fixture () in
  let net, engine, _, _, _, l_sb = fx in
  let sampler = Tcp.Sampler.create ~bin_s:0.5 () in
  let flow = start_flow ~sampler fx in
  (* total blackout from 1s to 2s *)
  Net.schedule_failure net l_sb ~at:1.0 ~duration:1.0;
  Engine.run_until engine 6.0;
  Tcp.Flow.stop flow;
  let st = Tcp.Flow.stats flow in
  Alcotest.(check bool) "timeouts occurred" true (st.Tcp.Flow.timeouts > 0);
  let after = Tcp.Sampler.mean_mbps sampler ~from_s:4.0 ~until:6.0 in
  Alcotest.(check bool) (Printf.sprintf "recovered to %.2f Mb/s" after) true
    (after > 8.0)

let test_no_data_before_start_time () =
  let fx = fixture () in
  let net, engine, _, _, _, _ = fx in
  let _, _, stack, a, h, _ = fx in
  let flow =
    Tcp.Flow.start ~net ~id:1 ~src:a ~dst:h ~fwd_route:fwd ~rev_route:rev
      ~at:1.0 ()
  in
  Tcp.Stack.register stack flow;
  Engine.run_until engine 0.9;
  Alcotest.(check int) "nothing sent yet" 0 (Tcp.Flow.stats flow).Tcp.Flow.segments_sent;
  Engine.run_until engine 2.0;
  Alcotest.(check bool) "sending after start" true
    ((Tcp.Flow.stats flow).Tcp.Flow.segments_sent > 0);
  Tcp.Flow.stop flow

let test_stop_halts () =
  let fx = fixture () in
  let _, engine, _, _, _, _ = fx in
  let flow = start_flow fx in
  Engine.run_until engine 1.0;
  Tcp.Flow.stop flow;
  let sent = (Tcp.Flow.stats flow).Tcp.Flow.segments_sent in
  Engine.run_until engine 2.0;
  Alcotest.(check int) "no more segments" sent (Tcp.Flow.stats flow).Tcp.Flow.segments_sent

(* --- reordering: a two-path network that interleaves delays --- *)

(* A - SW3 - {SW5 | SW7} - SW11 - B with distinct delays on the two middle
   paths and a route id whose port at SW3 is invalid, so NIP sprays packets
   across both paths randomly: persistent reordering, no loss. *)
let reorder_fixture () =
  let b = Graph.Builder.create () in
  let s3 = Graph.Builder.add_node b 3 in
  let s5 = Graph.Builder.add_node b 5 in
  let s7 = Graph.Builder.add_node b 7 in
  let s11 = Graph.Builder.add_node b 11 in
  let a = Graph.Builder.add_node b ~kind:Graph.Edge 100 in
  let h = Graph.Builder.add_node b ~kind:Graph.Edge 101 in
  let fast = 20e6 in
  ignore (Graph.Builder.add_link b ~rate_bps:fast ~delay_s:0.5e-3 a s3);
  ignore (Graph.Builder.add_link b ~rate_bps:fast ~delay_s:0.5e-3 s3 s5);
  ignore (Graph.Builder.add_link b ~rate_bps:fast ~delay_s:3e-3 s3 s7);
  ignore (Graph.Builder.add_link b ~rate_bps:fast ~delay_s:0.5e-3 s5 s11);
  ignore (Graph.Builder.add_link b ~rate_bps:fast ~delay_s:0.5e-3 s7 s11);
  ignore (Graph.Builder.add_link b ~rate_bps:fast ~delay_s:0.5e-3 s11 h);
  let g = Graph.Builder.finish b in
  let engine = Engine.create () in
  let net = Net.create ~graph:g ~engine () in
  Netsim.Karnet.install_switches net ~policy:Kar.Policy.Not_input_port ~seed:3;
  let stack = Tcp.Stack.create ~net () in
  (net, engine, stack, a, h)

let test_reordering_tolerated () =
  let net, engine, stack, a, h = reorder_fixture () in
  (* Forward route: at SW3 the computed port (0) is the input port, so NIP
     randomises between SW5 and SW7 on every packet — a persistent two-path
     spray with a 2.5 ms delay skew and no loss.  SW5/SW7 drive to SW11,
     SW11 delivers to B. *)
  let fwd =
    fst
      (Rns.encode_exn
         [ { Rns.modulus = 3; value = 0 }; { Rns.modulus = 5; value = 1 };
           { Rns.modulus = 7; value = 1 }; { Rns.modulus = 11; value = 2 } ])
  in
  (* Reverse route: SW11 -> SW5 -> SW3 -> A, all deterministic. *)
  let rev =
    fst
      (Rns.encode_exn
         [ { Rns.modulus = 11; value = 0 }; { Rns.modulus = 5; value = 0 };
           { Rns.modulus = 3; value = 0 } ])
  in
  let sampler = Tcp.Sampler.create ~bin_s:0.5 () in
  let flow =
    Tcp.Flow.start ~net ~id:1 ~src:a ~dst:h ~fwd_route:fwd ~rev_route:rev
      ~sampler ()
  in
  Tcp.Stack.register stack flow;
  Engine.run_until engine 6.0;
  Tcp.Flow.stop flow;
  let st = Tcp.Flow.stats flow in
  Alcotest.(check bool) "reordering observed" true (st.Tcp.Flow.reorder_events > 100);
  Alcotest.(check bool) "dupthresh adapted above 3" true (st.Tcp.Flow.dupthresh > 3);
  let goodput = Tcp.Sampler.mean_mbps sampler ~from_s:3.0 ~until:6.0 in
  Alcotest.(check bool) (Printf.sprintf "goodput %.2f > 5 Mb/s" goodput) true
    (goodput > 5.0);
  Alcotest.(check bool) "no RTO under pure reordering" true (st.Tcp.Flow.timeouts = 0)

let test_window_limited_throughput () =
  (* cap the receiver window to 4 segments on a 1 ms-delay path: goodput
     must settle near window/RTT, far below the link rate *)
  let fx = fixture ~rate:10e6 ~delay:5e-3 () in
  let _, engine, _, _, _, _ = fx in
  let sampler = Tcp.Sampler.create ~bin_s:0.5 () in
  let flow =
    start_flow
      ~config:{ Tcp.Flow.default_config with Tcp.Flow.max_window_segments = 4 }
      ~sampler fx
  in
  Engine.run_until engine 5.0;
  Tcp.Flow.stop flow;
  let goodput = Tcp.Sampler.mean_mbps sampler ~from_s:1.0 ~until:5.0 in
  (* window = 4 * 1460 B; RTT ~= 4 links * 5 ms + tx ~= 21.2 ms
     -> ~2.2 Mb/s; allow generous slack either side, but it must be far
     below the 10 Mb/s link *)
  Alcotest.(check bool) (Printf.sprintf "window-limited %.2f" goodput) true
    (goodput > 0.5 && goodput < 4.0)

let test_cubic_clean_link () =
  (* CUBIC must also fill a clean link and never time out *)
  let fx = fixture ~rate:10e6 () in
  let _, engine, _, _, _, _ = fx in
  let sampler = Tcp.Sampler.create ~bin_s:0.5 () in
  let flow =
    start_flow
      ~config:{ Tcp.Flow.default_config with Tcp.Flow.cc = Tcp.Flow.Cubic }
      ~sampler fx
  in
  Engine.run_until engine 5.0;
  Tcp.Flow.stop flow;
  let goodput = Tcp.Sampler.mean_mbps sampler ~from_s:1.0 ~until:5.0 in
  Alcotest.(check bool) (Printf.sprintf "cubic goodput %.2f" goodput) true
    (goodput > 8.5 && goodput < 10.0);
  Alcotest.(check int) "no timeouts" 0 (Tcp.Flow.stats flow).Tcp.Flow.timeouts

let test_cubic_backoff_gentler () =
  (* after one loss episode, CUBIC's window floor (0.7x) exceeds Reno's
     (0.5x): compare cwnd just after a forced failure blip *)
  let run cc =
    let fx = fixture ~rate:10e6 () in
    let net, engine, _, _, _, l_sb = fx in
    let flow =
      start_flow ~config:{ Tcp.Flow.default_config with Tcp.Flow.cc } fx
    in
    (* a 30 ms blip loses a handful of segments -> one recovery episode *)
    Net.schedule_failure net l_sb ~at:1.0 ~duration:0.03;
    Engine.run_until engine 1.2;
    let d = Tcp.Flow.debug flow in
    Tcp.Flow.stop flow;
    d.Tcp.Flow.ssthresh_bytes
  in
  let reno = run Tcp.Flow.Reno and cubic = run Tcp.Flow.Cubic in
  Alcotest.(check bool)
    (Printf.sprintf "cubic ssthresh %.0f >= reno %.0f" cubic reno)
    true (cubic >= reno)

let () =
  Alcotest.run "tcp"
    [
      ( "sampler",
        [
          Alcotest.test_case "bins" `Quick test_sampler_bins;
          Alcotest.test_case "mean" `Quick test_sampler_mean;
          Alcotest.test_case "growth" `Quick test_sampler_growth;
          Alcotest.test_case "errors" `Quick test_sampler_errors;
        ] );
      ( "flow",
        [
          Alcotest.test_case "clean-link goodput" `Quick test_clean_link_goodput;
          Alcotest.test_case "in-order delivery" `Quick test_receiver_in_order;
          Alcotest.test_case "blackout recovery" `Quick test_blackout_recovery;
          Alcotest.test_case "deferred start" `Quick test_no_data_before_start_time;
          Alcotest.test_case "stop halts transmission" `Quick test_stop_halts;
          Alcotest.test_case "reordering tolerated (DSACK adaptation)" `Slow
            test_reordering_tolerated;
          Alcotest.test_case "window-limited throughput" `Quick
            test_window_limited_throughput;
          Alcotest.test_case "cubic fills a clean link" `Quick test_cubic_clean_link;
          Alcotest.test_case "cubic backs off less than reno" `Quick
            test_cubic_backoff_gentler;
        ] );
    ]
