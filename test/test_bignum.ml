(* Tests for the arbitrary-precision integer substrate.

   Strategy: unit tests for representative and boundary values, and qcheck
   properties checked in two regimes — against the native-int oracle for
   small operands, and against algebraic identities for operands far beyond
   the native range. *)

module Z = Bignum.Z
module Nat = Bignum.Nat

let z_testable = Alcotest.testable Z.pp Z.equal

let check_z = Alcotest.check z_testable

(* --- generators --- *)

(* A bignum from a random decimal string of up to [digits] digits. *)
let gen_big digits =
  QCheck2.Gen.(
    let* len = 1 -- digits in
    let* first = 1 -- 9 in
    let* rest = list_size (pure (len - 1)) (0 -- 9) in
    let* neg = bool in
    let s = String.concat "" (List.map string_of_int (first :: rest)) in
    pure (if neg then Z.neg (Z.of_string s) else Z.of_string s))

let gen_small = QCheck2.Gen.(map Z.of_int (-1_000_000_000 -- 1_000_000_000))

let qtest ?(count = 500) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* --- unit tests --- *)

let test_of_int_roundtrip () =
  List.iter
    (fun n ->
      Alcotest.(check (option int))
        (Printf.sprintf "roundtrip %d" n)
        (Some n)
        (Z.to_int_opt (Z.of_int n)))
    [ 0; 1; -1; 42; -42; max_int; min_int; max_int - 1; min_int + 1; 1 lsl 31;
      (1 lsl 62) - 1 ]

let test_string_roundtrip_known () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Z.to_string (Z.of_string s)))
    [ "0"; "1"; "-1"; "123456789"; "-987654321";
      "340282366920938463463374607431768211456" (* 2^128 *);
      "99999999999999999999999999999999999999999999999999" ]

let test_hex_parse () =
  check_z "0xff" (Z.of_int 255) (Z.of_string "0xff");
  check_z "0xFF" (Z.of_int 255) (Z.of_string "0XFF");
  check_z "-0x10" (Z.of_int (-16)) (Z.of_string "-0x10");
  check_z "2^64" (Z.of_string "18446744073709551616") (Z.of_string "0x10000000000000000")

let test_underscores () =
  check_z "1_000_000" (Z.of_int 1_000_000) (Z.of_string "1_000_000")

let test_of_string_errors () =
  List.iter
    (fun s ->
      Alcotest.check_raises s (Invalid_argument "Z.of_string: empty string")
        (fun () ->
          if s = "" then ignore (Z.of_string s) else raise (Invalid_argument "Z.of_string: empty string")))
    [ "" ];
  List.iter
    (fun s ->
      match Z.of_string s with
      | exception Invalid_argument _ -> ()
      | v -> Alcotest.failf "expected failure for %S, got %s" s (Z.to_string v))
    [ "abc"; "12x"; "--3"; "0x"; "+" ]

let test_division_by_zero () =
  Alcotest.check_raises "divmod by zero" Division_by_zero (fun () ->
      ignore (Z.divmod Z.one Z.zero))

let test_min_int_magnitude () =
  (* [-min_int] does not exist as an int; the magnitude must still be
     correct. *)
  let v = Z.of_int min_int in
  Alcotest.(check string) "min_int" (string_of_int min_int) (Z.to_string v);
  check_z "abs min_int via string"
    (Z.of_string (string_of_int min_int |> fun s -> String.sub s 1 (String.length s - 1)))
    (Z.abs v)

let test_pow () =
  check_z "2^10" (Z.of_int 1024) (Z.pow Z.two 10);
  check_z "3^0" Z.one (Z.pow (Z.of_int 3) 0);
  check_z "10^20" (Z.of_string "100000000000000000000") (Z.pow (Z.of_int 10) 20)

let test_bit_length () =
  Alcotest.(check int) "bits 0" 0 (Z.bit_length Z.zero);
  Alcotest.(check int) "bits 1" 1 (Z.bit_length Z.one);
  Alcotest.(check int) "bits 255" 8 (Z.bit_length (Z.of_int 255));
  Alcotest.(check int) "bits 256" 9 (Z.bit_length (Z.of_int 256));
  Alcotest.(check int) "bits 2^128" 129 (Z.bit_length (Z.pow Z.two 128))

let test_shifts () =
  check_z "1 << 100 >> 100" Z.one (Z.shift_right (Z.shift_left Z.one 100) 100);
  check_z "5 << 3" (Z.of_int 40) (Z.shift_left (Z.of_int 5) 3);
  check_z "40 >> 3" (Z.of_int 5) (Z.shift_right (Z.of_int 40) 3);
  check_z "7 >> 1" (Z.of_int 3) (Z.shift_right (Z.of_int 7) 1)

let test_known_gcd () =
  check_z "gcd 12 18" (Z.of_int 6) (Z.gcd (Z.of_int 12) (Z.of_int 18));
  check_z "gcd 0 5" (Z.of_int 5) (Z.gcd Z.zero (Z.of_int 5));
  check_z "gcd -12 18" (Z.of_int 6) (Z.gcd (Z.of_int (-12)) (Z.of_int 18))

let test_invmod_paper () =
  (* The paper's worked example: L1 = <77^-1>_4 = 1, L2 = <44^-1>_7 = 4,
     L3 = <28^-1>_11 = 2. *)
  let inv a m = Option.get (Z.invmod (Z.of_int a) (Z.of_int m)) in
  check_z "77^-1 mod 4" Z.one (inv 77 4);
  check_z "44^-1 mod 7" (Z.of_int 4) (inv 44 7);
  check_z "28^-1 mod 11" (Z.of_int 2) (inv 28 11);
  (* and the protected example: <385^-1>_4 = 1, <220^-1>_7 = 5,
     <140^-1>_11 = 7, <308^-1>_5 = 2 *)
  check_z "385^-1 mod 4" Z.one (inv 385 4);
  check_z "220^-1 mod 7" (Z.of_int 5) (inv 220 7);
  check_z "140^-1 mod 11" (Z.of_int 7) (inv 140 11);
  check_z "308^-1 mod 5" Z.two (inv 308 5)

let test_invmod_none () =
  Alcotest.(check bool) "no inverse of 2 mod 4" true (Z.invmod Z.two (Z.of_int 4) = None);
  Alcotest.(check bool) "no inverse of 0 mod 7" true (Z.invmod Z.zero (Z.of_int 7) = None)

let test_powmod () =
  check_z "2^10 mod 1000" (Z.of_int 24) (Z.powmod Z.two (Z.of_int 10) (Z.of_int 1000));
  (* Fermat: a^(p-1) = 1 mod p *)
  check_z "fermat" Z.one
    (Z.powmod (Z.of_int 123456) (Z.of_int 1_000_002) (Z.of_int 1_000_003))

let test_erem_sign () =
  check_z "erem -7 3" Z.two (Z.erem (Z.of_int (-7)) (Z.of_int 3));
  check_z "erem 7 -3" Z.one (Z.erem (Z.of_int 7) (Z.of_int (-3)));
  check_z "erem -7 -3" Z.two (Z.erem (Z.of_int (-7)) (Z.of_int (-3)))

(* --- properties against the int oracle --- *)

let small_pair = QCheck2.Gen.pair gen_small gen_small

let prop_add_oracle =
  qtest "add matches int oracle" small_pair (fun (a, b) ->
      Z.equal (Z.add a b) (Z.of_int (Z.to_int_exn a + Z.to_int_exn b)))

let prop_mul_oracle =
  qtest "mul matches int oracle"
    QCheck2.Gen.(pair (map Z.of_int (-100000 -- 100000)) (map Z.of_int (-100000 -- 100000)))
    (fun (a, b) -> Z.equal (Z.mul a b) (Z.of_int (Z.to_int_exn a * Z.to_int_exn b)))

let prop_divmod_oracle =
  qtest "divmod matches int oracle" small_pair (fun (a, b) ->
      if Z.is_zero b then QCheck2.assume_fail ()
      else begin
        let q, r = Z.divmod a b in
        let ia = Z.to_int_exn a and ib = Z.to_int_exn b in
        Z.to_int_exn q = ia / ib && Z.to_int_exn r = ia mod ib
      end)

let prop_compare_oracle =
  qtest "compare matches int oracle" small_pair (fun (a, b) ->
      Stdlib.compare (Z.to_int_exn a) (Z.to_int_exn b) = Z.compare a b)

(* --- algebraic properties on big operands --- *)

let big_pair = QCheck2.Gen.pair (gen_big 60) (gen_big 60)
let big_triple = QCheck2.Gen.triple (gen_big 40) (gen_big 40) (gen_big 40)

let prop_add_comm =
  qtest "a+b = b+a (big)" big_pair (fun (a, b) -> Z.equal (Z.add a b) (Z.add b a))

let prop_add_assoc =
  qtest "(a+b)+c = a+(b+c) (big)" big_triple (fun (a, b, c) ->
      Z.equal (Z.add (Z.add a b) c) (Z.add a (Z.add b c)))

let prop_mul_comm =
  qtest "a*b = b*a (big)" big_pair (fun (a, b) -> Z.equal (Z.mul a b) (Z.mul b a))

let prop_distrib =
  qtest "a*(b+c) = a*b + a*c (big)" big_triple (fun (a, b, c) ->
      Z.equal (Z.mul a (Z.add b c)) (Z.add (Z.mul a b) (Z.mul a c)))

let prop_sub_inverse =
  qtest "(a+b)-b = a (big)" big_pair (fun (a, b) -> Z.equal (Z.sub (Z.add a b) b) a)

let prop_divmod_invariant =
  qtest "a = q*b + r with |r| < |b| (big)" big_pair (fun (a, b) ->
      if Z.is_zero b then QCheck2.assume_fail ()
      else begin
        let q, r = Z.divmod a b in
        Z.equal a (Z.add (Z.mul q b) r)
        && Z.compare (Z.abs r) (Z.abs b) < 0
        && (Z.is_zero r || Z.sign r = Z.sign a)
      end)

let prop_string_roundtrip =
  qtest "of_string (to_string a) = a (big)" (gen_big 80) (fun a ->
      Z.equal a (Z.of_string (Z.to_string a)))

(* The remainder-only fast kernel against the full euclidean division it
   replaces on the data plane: ~1000-bit operands (both signs), moduli
   across [2, 2^20] — the switch-ID range and beyond. *)
let prop_rem_int_matches_erem =
  qtest ~count:1000 "rem_int a s = erem a s (1000-bit)"
    QCheck2.Gen.(pair (gen_big 300) (2 -- 1_048_576))
    (fun (a, s) ->
      Z.rem_int a s = Z.to_int_exn (Z.erem a (Z.of_int s)))

let prop_rem_int_limb_straddle =
  qtest "rem_int straddling limb counts"
    QCheck2.Gen.(pair (0 -- 93) (2 -- 1000))
    (fun (k, s) ->
      (* 2^k - 1 and 2^k sweep the 0/1/2/3-limb representation boundary
         that the kernel special-cases. *)
      let v = Z.pow Z.two k in
      let pred = Z.sub v Z.one in
      Z.rem_int v s = Z.to_int_exn (Z.erem v (Z.of_int s))
      && Z.rem_int pred s = Z.to_int_exn (Z.erem pred (Z.of_int s)))

let test_rem_int_edges () =
  let big = Z.of_string "123456789012345678901234567890" in
  Alcotest.(check int) "zero" 0 (Z.rem_int Z.zero 7);
  Alcotest.(check int) "s = 1" 0 (Z.rem_int big 1);
  Alcotest.(check int) "negative operand" 5
    (Z.rem_int (Z.of_int (-23)) 7);
  Alcotest.(check int) "negative multiple" 0
    (Z.rem_int (Z.of_int (-21)) 7);
  (* s >= 2^31 takes the erem fallback rather than the limb fold *)
  let s_big = (1 lsl 40) + 7 in
  Alcotest.(check int) "huge modulus fallback"
    (Z.to_int_exn (Z.erem big (Z.of_int s_big)))
    (Z.rem_int big s_big);
  Alcotest.check_raises "zero modulus"
    (Invalid_argument "Z.rem_int: modulus must be positive") (fun () ->
      ignore (Z.rem_int big 0));
  Alcotest.check_raises "negative modulus"
    (Invalid_argument "Z.rem_int: modulus must be positive") (fun () ->
      ignore (Z.rem_int big (-3)))

let prop_erem_range =
  qtest "erem in [0, |b|) (big)" big_pair (fun (a, b) ->
      if Z.is_zero b then QCheck2.assume_fail ()
      else begin
        let r = Z.erem a b in
        Z.sign r >= 0 && Z.compare r (Z.abs b) < 0
        && Z.is_zero (Z.erem (Z.sub a r) b)
      end)

let prop_gcd_divides =
  qtest "gcd divides both (big)" big_pair (fun (a, b) ->
      let g = Z.gcd a b in
      if Z.is_zero g then Z.is_zero a && Z.is_zero b
      else Z.is_zero (Z.rem a g) && Z.is_zero (Z.rem b g))

let prop_egcd_bezout =
  qtest "egcd: a*u + b*v = g (big)" big_pair (fun (a, b) ->
      let g, u, v = Z.egcd a b in
      Z.equal g (Z.add (Z.mul a u) (Z.mul b v)) && Z.sign g >= 0)

let prop_invmod =
  qtest "invmod: a * a^-1 = 1 mod m"
    QCheck2.Gen.(pair (gen_big 30) (map (fun n -> Z.of_int (abs n + 2)) int))
    (fun (a, m) ->
      match Z.invmod a m with
      | None -> not (Z.equal (Z.gcd a m) Z.one)
      | Some inv -> Z.equal (Z.erem (Z.mul a inv) m) Z.one)

let prop_shift_is_mul_pow2 =
  qtest "shift_left = * 2^k"
    QCheck2.Gen.(pair (map Z.abs (gen_big 30)) (0 -- 200))
    (fun (a, k) -> Z.equal (Z.shift_left a k) (Z.mul a (Z.pow Z.two k)))

let prop_bit_length_bound =
  qtest "2^(bits-1) <= |a| < 2^bits" (gen_big 50) (fun a ->
      if Z.is_zero a then Z.bit_length a = 0
      else begin
        let bits = Z.bit_length (Z.abs a) in
        Z.compare (Z.abs a) (Z.pow Z.two bits) < 0
        && Z.compare (Z.pow Z.two (bits - 1)) (Z.abs a) <= 0
      end)

let prop_powmod_matches_pow =
  qtest "powmod b e m = (b^e) mod m (small exponents)"
    QCheck2.Gen.(triple (gen_big 10) (0 -- 40) (map (fun n -> Z.of_int (abs n + 1)) int))
    (fun (b, e, m) ->
      Z.equal (Z.powmod b (Z.of_int e) m) (Z.erem (Z.pow b e) m))

(* Karatsuba threshold: exercise products big enough to take the Karatsuba
   path and compare against a sum-of-shifts reference. *)
let prop_karatsuba_consistent =
  qtest ~count:50 "karatsuba agrees with schoolbook decomposition"
    (QCheck2.Gen.pair (gen_big 700) (gen_big 700))
    (fun (a, b) ->
      let a = Z.abs a and b = Z.abs b in
      (* (a*2^k + c)(b) = a*b*2^k + c*b *)
      let k = 310 in
      let hi = Z.shift_right a k and lo = Z.sub a (Z.shift_left (Z.shift_right a k) k) in
      Z.equal (Z.mul a b)
        (Z.add (Z.shift_left (Z.mul hi b) k) (Z.mul lo b)))

let nat_canonical =
  qtest "Nat stays canonical through add/sub/mul"
    (QCheck2.Gen.pair (gen_big 40) (gen_big 40))
    (fun (a, b) ->
      let na = Nat.of_int (Z.to_int_exn (Z.erem (Z.abs a) (Z.of_int 1_000_000))) in
      let nb = Nat.of_int (Z.to_int_exn (Z.erem (Z.abs b) (Z.of_int 1_000_000))) in
      Nat.is_canonical (Nat.add na nb)
      && Nat.is_canonical (Nat.mul na nb)
      && Nat.is_canonical (fst (Nat.divmod na (Nat.add nb Nat.one))))

let test_limb_boundaries () =
  (* values straddling the 31-bit limb size and the 62-bit double-limb *)
  List.iter
    (fun (a, b) ->
      let za = Z.of_string a and zb = Z.of_string b in
      let q, r = Z.divmod za zb in
      check_z "reconstruct" za (Z.add (Z.mul q zb) r))
    [ ("2147483648", "2147483647"); (* 2^31 / 2^31-1 *)
      ("4611686018427387904", "2147483648"); (* 2^62 / 2^31 *)
      ("4611686018427387903", "3"); ("9223372036854775808", "4294967296") ]

let test_shift_edges () =
  check_z "shift 0" (Z.of_int 12345) (Z.shift_left (Z.of_int 12345) 0);
  check_z "shift by limb size" (Z.mul (Z.of_int 7) (Z.pow Z.two 31))
    (Z.shift_left (Z.of_int 7) 31);
  check_z "shift by 62" (Z.mul (Z.of_int 7) (Z.pow Z.two 62))
    (Z.shift_left (Z.of_int 7) 62);
  check_z "right shift below zero" Z.zero (Z.shift_right (Z.of_int 5) 100)

let test_trivial_identities () =
  check_z "erem by 1" Z.zero (Z.erem (Z.of_string "123456789123456789") Z.one);
  check_z "gcd self" (Z.of_int 42) (Z.gcd (Z.of_int 42) (Z.of_int 42));
  check_z "x - x" Z.zero (Z.sub (Z.of_string "999999999999999999999") (Z.of_string "999999999999999999999"));
  Alcotest.(check int) "sign zero" 0 (Z.sign Z.zero);
  check_z "min" (Z.of_int (-5)) (Z.min (Z.of_int (-5)) (Z.of_int 3));
  check_z "max" (Z.of_int 3) (Z.max (Z.of_int (-5)) (Z.of_int 3))

let () =
  Alcotest.run "bignum"
    [
      ( "unit",
        [
          Alcotest.test_case "of_int/to_int roundtrip" `Quick test_of_int_roundtrip;
          Alcotest.test_case "string roundtrip (known)" `Quick test_string_roundtrip_known;
          Alcotest.test_case "hex parsing" `Quick test_hex_parse;
          Alcotest.test_case "underscores" `Quick test_underscores;
          Alcotest.test_case "of_string errors" `Quick test_of_string_errors;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "min_int magnitude" `Quick test_min_int_magnitude;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "bit_length" `Quick test_bit_length;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "gcd (known)" `Quick test_known_gcd;
          Alcotest.test_case "invmod (paper values)" `Quick test_invmod_paper;
          Alcotest.test_case "invmod absent" `Quick test_invmod_none;
          Alcotest.test_case "powmod" `Quick test_powmod;
          Alcotest.test_case "euclidean remainder signs" `Quick test_erem_sign;
          Alcotest.test_case "limb boundaries" `Quick test_limb_boundaries;
          Alcotest.test_case "shift edges" `Quick test_shift_edges;
          Alcotest.test_case "trivial identities" `Quick test_trivial_identities;
          Alcotest.test_case "rem_int edges" `Quick test_rem_int_edges;
        ] );
      ( "oracle",
        [ prop_add_oracle; prop_mul_oracle; prop_divmod_oracle; prop_compare_oracle ] );
      ( "algebra",
        [
          prop_add_comm; prop_add_assoc; prop_mul_comm; prop_distrib;
          prop_sub_inverse; prop_divmod_invariant; prop_string_roundtrip;
          prop_erem_range; prop_gcd_divides; prop_egcd_bezout; prop_invmod;
          prop_shift_is_mul_pow2; prop_bit_length_bound; prop_powmod_matches_pow;
          prop_karatsuba_consistent; nat_canonical;
          prop_rem_int_matches_erem; prop_rem_int_limb_straddle;
        ] );
    ]
