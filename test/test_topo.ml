(* Tests for the topology substrate: graph builder invariants, path
   algorithms (cross-checked against each other), generators, and the
   reconstructed paper topologies (every adjacency the paper's text
   names). *)

module Graph = Topo.Graph
module Paths = Topo.Paths
module Gen = Topo.Gen
module Nets = Topo.Nets

let qtest ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* --- builder --- *)

let small_graph () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_node b 3 in
  let c = Graph.Builder.add_node b 5 in
  let d = Graph.Builder.add_node b ~kind:Graph.Edge 100 in
  let l1 = Graph.Builder.add_link b a c in
  let l2 = Graph.Builder.add_link b c d in
  (Graph.Builder.finish b, a, c, d, l1, l2)

let test_builder_basic () =
  let g, a, c, d, l1, _ = small_graph () in
  Alcotest.(check int) "nodes" 3 (Graph.n_nodes g);
  Alcotest.(check int) "links" 2 (Graph.n_links g);
  Alcotest.(check int) "deg a" 1 (Graph.degree g a);
  Alcotest.(check int) "deg c" 2 (Graph.degree g c);
  Alcotest.(check int) "label" 5 (Graph.label g c);
  Alcotest.(check bool) "core" true (Graph.is_core g a);
  Alcotest.(check bool) "edge" false (Graph.is_core g d);
  Alcotest.(check int) "node_of_label" c (Graph.node_of_label g 5);
  Alcotest.(check int) "link_between" l1 (Option.get (Graph.link_between g a c));
  Alcotest.(check (pair int int)) "peer" (c, 0) (Graph.peer g a 0)

let test_builder_duplicate_label () =
  let b = Graph.Builder.create () in
  ignore (Graph.Builder.add_node b 3);
  match Graph.Builder.add_node b 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected duplicate-label rejection"

let test_builder_self_loop () =
  let b = Graph.Builder.create () in
  let v = Graph.Builder.add_node b 3 in
  match Graph.Builder.add_link b v v with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected self-loop rejection"

let test_builder_port_pinning () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.add_node b 3 in
  let y = Graph.Builder.add_node b 5 in
  let z = Graph.Builder.add_node b 7 in
  ignore (Graph.Builder.add_link_at b (x, 1) (y, 0));
  ignore (Graph.Builder.add_link_at b (x, 0) (z, 0));
  let g = Graph.Builder.finish b in
  Alcotest.(check (option int)) "x->z is port 0" (Some 0) (Graph.port_towards g x z);
  Alcotest.(check (option int)) "x->y is port 1" (Some 1) (Graph.port_towards g x y)

let test_builder_sparse_ports_rejected () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.add_node b 3 in
  let y = Graph.Builder.add_node b 5 in
  ignore (Graph.Builder.add_link_at b (x, 2) (y, 0));
  match Graph.Builder.finish b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected sparse-port rejection"

let test_builder_port_conflict () =
  let b = Graph.Builder.create () in
  let x = Graph.Builder.add_node b 3 in
  let y = Graph.Builder.add_node b 5 in
  let z = Graph.Builder.add_node b 7 in
  ignore (Graph.Builder.add_link_at b (x, 0) (y, 0));
  match Graph.Builder.add_link_at b (x, 0) (z, 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected port-conflict rejection"

let test_relabel () =
  let g, a, _, _, _, _ = small_graph () in
  let mapping = Array.make 3 0 in
  mapping.(0) <- 11;
  mapping.(1) <- 13;
  mapping.(2) <- 200;
  let g' = Graph.relabel g mapping in
  Alcotest.(check int) "new label" 11 (Graph.label g' a);
  Alcotest.(check int) "lookup" a (Graph.node_of_label g' 11);
  (* original untouched *)
  Alcotest.(check int) "old label" 3 (Graph.label g a)

let test_relabel_duplicate () =
  let g, _, _, _, _, _ = small_graph () in
  match Graph.relabel g [| 1; 1; 2 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected duplicate rejection"

(* --- paths --- *)

let test_bfs_line () =
  let g = Gen.line 5 in
  let dist, parent = Paths.bfs g 0 in
  Alcotest.(check int) "dist to end" 4 dist.(4);
  Alcotest.(check int) "parent chain" 3 parent.(4);
  Alcotest.(check (option (list int)))
    "path" (Some [ 0; 1; 2; 3; 4 ]) (Paths.shortest_path g 0 4)

let test_bfs_usable_filter () =
  let g = Gen.ring 6 in
  (* cut one direction of the ring: path must go the long way *)
  let cut = Option.get (Graph.link_between g 0 1) in
  let usable l = l.Graph.id <> cut in
  match Paths.shortest_path g ~usable 0 1 with
  | Some p -> Alcotest.(check int) "long way" 6 (List.length p)
  | None -> Alcotest.fail "ring should stay connected"

let test_dijkstra_matches_bfs_unit_weights () =
  let g = Gen.grid ~w:4 ~h:3 in
  let bfs_dist, _ = Paths.bfs g 0 in
  let dij_dist, _ = Paths.dijkstra g 0 in
  Graph.iter_nodes g ~f:(fun v ->
      Alcotest.(check int)
        (Printf.sprintf "node %d" v)
        bfs_dist.(v)
        (int_of_float dij_dist.(v)))

let test_widest_path () =
  (* triangle with a fat two-hop route and a thin direct link *)
  let b = Graph.Builder.create () in
  let x = Graph.Builder.add_node b 2 in
  let y = Graph.Builder.add_node b 3 in
  let z = Graph.Builder.add_node b 5 in
  ignore (Graph.Builder.add_link b ~rate_bps:10e6 x z);
  ignore (Graph.Builder.add_link b ~rate_bps:100e6 x y);
  ignore (Graph.Builder.add_link b ~rate_bps:100e6 y z);
  let g = Graph.Builder.finish b in
  match Paths.widest_path g x z with
  | Some (p, width) ->
    Alcotest.(check (list int)) "fat route" [ x; y; z ] p;
    Alcotest.(check (float 0.01)) "width" 100e6 width
  | None -> Alcotest.fail "connected"

let test_k_shortest () =
  let g = Gen.ring 6 in
  let paths = Paths.k_shortest g ~k:2 0 3 in
  Alcotest.(check int) "two paths" 2 (List.length paths);
  (match paths with
   | [ p1; p2 ] ->
     Alcotest.(check int) "first is shortest" 4 (List.length p1);
     Alcotest.(check int) "second same length (other way)" 4 (List.length p2);
     Alcotest.(check bool) "distinct" true (p1 <> p2)
   | _ -> Alcotest.fail "wrong count");
  (* loopless *)
  List.iter
    (fun p ->
      let sorted = List.sort_uniq Stdlib.compare p in
      Alcotest.(check int) "no repeats" (List.length p) (List.length sorted))
    paths

let test_edge_disjoint () =
  let g = Gen.ring 8 in
  let paths = Paths.edge_disjoint_paths g 0 4 in
  Alcotest.(check int) "a ring gives two disjoint paths" 2 (List.length paths);
  let all_links = List.concat_map (Paths.path_links g) paths in
  Alcotest.(check int) "no shared link" (List.length all_links)
    (List.length (List.sort_uniq Stdlib.compare all_links))

let test_components () =
  let b = Graph.Builder.create () in
  let a = Graph.Builder.add_node b 2 in
  let c = Graph.Builder.add_node b 3 in
  let d = Graph.Builder.add_node b 5 in
  let e = Graph.Builder.add_node b 7 in
  ignore (Graph.Builder.add_link b a c);
  ignore (Graph.Builder.add_link b d e);
  let g = Graph.Builder.finish b in
  Alcotest.(check int) "two components" 2 (List.length (Paths.components g ()));
  Alcotest.(check bool) "not connected" false (Paths.is_connected g)

let test_diameter () =
  Alcotest.(check int) "line 5" 4 (Paths.diameter (Gen.line 5));
  Alcotest.(check int) "ring 8" 4 (Paths.diameter (Gen.ring 8));
  Alcotest.(check int) "complete 5" 1 (Paths.diameter (Gen.complete 5))

let test_path_ports () =
  let g = Gen.line 4 in
  let ports = Paths.path_ports g [ 0; 1; 2; 3 ] in
  Alcotest.(check int) "three hops" 3 (List.length ports);
  List.iter2
    (fun (v, p) expect_node ->
      Alcotest.(check int) "node" expect_node v;
      let far, _ = Graph.peer g v p in
      Alcotest.(check int) "port leads forward" (expect_node + 1) far)
    ports [ 0; 1; 2 ]

(* --- generators --- *)

let test_generator_shapes () =
  Alcotest.(check int) "line nodes" 7 (Graph.n_nodes (Gen.line 7));
  Alcotest.(check int) "line links" 6 (Graph.n_links (Gen.line 7));
  Alcotest.(check int) "ring links" 9 (Graph.n_links (Gen.ring 9));
  Alcotest.(check int) "grid nodes" 12 (Graph.n_nodes (Gen.grid ~w:4 ~h:3));
  Alcotest.(check int) "grid links" 17 (Graph.n_links (Gen.grid ~w:4 ~h:3));
  Alcotest.(check int) "complete links" 10 (Graph.n_links (Gen.complete 5));
  Alcotest.(check int) "torus links" 32 (Graph.n_links (Gen.torus ~w:4 ~h:4))

let test_torus_regular () =
  let g = Gen.torus ~w:4 ~h:5 in
  Graph.iter_nodes g ~f:(fun v ->
      Alcotest.(check int) "degree 4" 4 (Graph.degree g v))

let prop_gnp_connected =
  qtest ~count:20 "gnp samples are connected" QCheck2.Gen.(1 -- 1000) (fun seed ->
      Paths.is_connected (Gen.gnp ~n:16 ~p:0.3 ~seed))

let prop_waxman_connected =
  qtest ~count:20 "waxman samples are connected" QCheck2.Gen.(1 -- 1000) (fun seed ->
      Paths.is_connected (Gen.waxman ~n:16 ~alpha:0.9 ~beta:0.5 ~seed))

let prop_gnp_deterministic =
  qtest ~count:20 "gnp is deterministic per seed" QCheck2.Gen.(1 -- 1000) (fun seed ->
      let g1 = Gen.gnp ~n:12 ~p:0.3 ~seed and g2 = Gen.gnp ~n:12 ~p:0.3 ~seed in
      Graph.n_links g1 = Graph.n_links g2
      && List.for_all2
           (fun (a : Graph.link) b ->
             a.Graph.ep0 = b.Graph.ep0 && a.Graph.ep1 = b.Graph.ep1)
           (Graph.links g1) (Graph.links g2))

let test_with_edge_hosts () =
  let g = Gen.ring 5 in
  let g', hosts = Gen.with_edge_hosts g [ 0; 2 ] in
  Alcotest.(check int) "two hosts" 2 (List.length hosts);
  Alcotest.(check int) "nodes" 7 (Graph.n_nodes g');
  List.iter
    (fun h ->
      Alcotest.(check bool) "edge kind" false (Graph.is_core g' h);
      Alcotest.(check int) "degree 1" 1 (Graph.degree g' h))
    hosts;
  (* node indices preserved for the original nodes *)
  Graph.iter_nodes g ~f:(fun v ->
      Alcotest.(check int) "label preserved" (Graph.label g v) (Graph.label g' v))

(* --- the paper topologies --- *)

let adjacency_check g a b =
  Alcotest.(check bool)
    (Printf.sprintf "SW%d-SW%d adjacent" a b)
    true
    (Graph.link_between g (Graph.node_of_label g a) (Graph.node_of_label g b)
     <> None)

let test_fig1_structure () =
  let sc = Nets.fig1_six in
  let g = sc.Nets.graph in
  Alcotest.(check int) "six nodes" 6 (Graph.n_nodes g);
  Alcotest.(check (list int)) "switch IDs" [ 4; 5; 7; 11 ] (Graph.core_labels g);
  (* the pinned ports of the worked example *)
  let n l = Graph.node_of_label g l in
  Alcotest.(check (option int)) "SW4 port 0 -> SW7" (Some 0) (Graph.port_towards g (n 4) (n 7));
  Alcotest.(check (option int)) "SW7 port 2 -> SW11" (Some 2) (Graph.port_towards g (n 7) (n 11));
  Alcotest.(check (option int)) "SW5 port 0 -> SW11" (Some 0) (Graph.port_towards g (n 5) (n 11));
  Alcotest.(check (option int)) "SW11 port 0 -> D" (Some 0)
    (Graph.port_towards g (n 11) sc.Nets.egress)

let test_net15_structure () =
  let sc = Nets.net15 in
  let g = sc.Nets.graph in
  Alcotest.(check int) "15 core switches" 15 (List.length (Graph.core_nodes g));
  Alcotest.(check bool) "connected" true (Paths.is_connected g);
  (* pairwise coprime IDs *)
  Alcotest.(check bool) "coprime IDs" true
    (Rns.pairwise_coprime (Graph.core_labels g) = Ok ());
  (* the primary route and SW10's three deflection alternatives *)
  List.iter (fun (a, b) -> adjacency_check g a b)
    [ (10, 7); (7, 13); (13, 29); (10, 11); (10, 17); (10, 37) ];
  (* failures point at real links *)
  List.iter
    (fun fc -> ignore (Graph.link g fc.Nets.link))
    sc.Nets.failures

let test_rnp_structure () =
  let sc = Nets.rnp28 in
  let g = sc.Nets.graph in
  Alcotest.(check int) "28 PoPs" 28 (List.length (Graph.core_nodes g));
  let core_links =
    List.filter
      (fun l ->
        Graph.is_core g l.Graph.ep0.Graph.node && Graph.is_core g l.Graph.ep1.Graph.node)
      (Graph.links g)
  in
  Alcotest.(check int) "40 links" 40 (List.length core_links);
  Alcotest.(check bool) "connected" true (Paths.is_connected g);
  Alcotest.(check bool) "coprime IDs" true
    (Rns.pairwise_coprime (Graph.core_labels g) = Ok ());
  (* every adjacency the text names *)
  List.iter (fun (a, b) -> adjacency_check g a b)
    [ (7, 11); (7, 13); (11, 17); (13, 41); (13, 29); (13, 17); (13, 47);
      (13, 37); (13, 71); (41, 73); (41, 17); (41, 61); (17, 71); (61, 67);
      (67, 71); (71, 73); (73, 107); (73, 109); (107, 113); (109, 113) ];
  (* the degree facts behind the deflection fan-outs of section 3.2 *)
  let deg l = Graph.degree g (Graph.node_of_label g l) in
  Alcotest.(check int) "SW7 degree (host + 2)" 3 (deg 7);
  Alcotest.(check int) "SW13 degree 7" 7 (deg 13);
  Alcotest.(check int) "SW41 degree 4" 4 (deg 41);
  Alcotest.(check int) "SW107 degree 2" 2 (deg 107);
  Alcotest.(check int) "SW109 degree 2" 2 (deg 109)

let test_fig8_structure () =
  let sc = Nets.rnp_fig8 in
  let g = sc.Nets.graph in
  (* SW73: host attaches at SW113 in this scenario, so 73 keeps degree 4 —
     the text's "two possible next hops" under the failure *)
  Alcotest.(check int) "SW73 degree 4" 4 (Graph.degree g (Graph.node_of_label g 73));
  Alcotest.(check int) "primary length" 6 (List.length sc.Nets.primary);
  Alcotest.(check bool) "egress at SW113" true
    (Graph.port_towards g (Graph.node_of_label g 113) sc.Nets.egress <> None)

let test_protection_residues () =
  let sc = Nets.rnp28 in
  let rs = Nets.protection_residues sc.Nets.graph sc.Nets.partial_protection in
  Alcotest.(check int) "four hops" 4 (List.length rs);
  List.iter
    (fun (s, p) ->
      Alcotest.(check bool) (Printf.sprintf "port %d < id %d" p s) true (p < s))
    rs

let test_serial_file_roundtrip () =
  let path = Filename.temp_file "kar_topo" ".kar" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Topo.Serial.save path Nets.net15.Nets.graph;
      match Topo.Serial.load path with
      | Ok g ->
        Alcotest.(check int) "nodes survive the disk" 18 (Graph.n_nodes g)
      | Error e -> Alcotest.failf "%a" Topo.Serial.pp_error e)

let test_k_shortest_edges () =
  let g = Gen.line 4 in
  Alcotest.(check int) "k=0" 0 (List.length (Paths.k_shortest g ~k:0 0 3));
  Alcotest.(check int) "k=1" 1 (List.length (Paths.k_shortest g ~k:1 0 3));
  (* a line has exactly one loopless path *)
  Alcotest.(check int) "k=5 saturates" 1 (List.length (Paths.k_shortest g ~k:5 0 3))

(* --- region partitioning --- *)

let test_partition_single_region () =
  let g = Nets.net15.Nets.graph in
  let p = Topo.Partition.make g ~regions:1 in
  Alcotest.(check int) "one region" 1 p.Topo.Partition.n_regions;
  Array.iter
    (fun r -> Alcotest.(check int) "all nodes in region 0" 0 r)
    p.Topo.Partition.region_of;
  Alcotest.(check (list int)) "no cut links" [] p.Topo.Partition.cut_links;
  Alcotest.(check (float 0.0)) "cut ratio 0" 0.0 p.Topo.Partition.cut_ratio;
  Alcotest.(check bool) "infinite lookahead" true
    (p.Topo.Partition.lookahead = infinity);
  Alcotest.(check bool) "valid" true
    (Topo.Partition.validate p g = Ok ())

let test_partition_too_many_regions () =
  let g = Gen.line 4 in
  (match Topo.Partition.make g ~regions:5 with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "expected rejection of regions > nodes");
  match Topo.Partition.make g ~regions:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of regions < 1"

let test_partition_net15 () =
  let g = Nets.net15.Nets.graph in
  let p = Topo.Partition.make g ~regions:2 in
  Alcotest.(check bool) "valid" true (Topo.Partition.validate p g = Ok ());
  Alcotest.(check bool) "has cut links" true (p.Topo.Partition.cut_links <> []);
  Alcotest.(check bool) "positive finite lookahead" true
    (p.Topo.Partition.lookahead > 0.0 && p.Topo.Partition.lookahead < infinity);
  Alcotest.(check bool) "ratio in (0,1]" true
    (p.Topo.Partition.cut_ratio > 0.0 && p.Topo.Partition.cut_ratio <= 1.0)

let prop_partition_valid =
  qtest ~count:60 "partitions are connected, non-empty, covering"
    QCheck2.Gen.(pair (1 -- 1000) (1 -- 6))
    (fun (seed, regions) ->
      let g =
        match seed mod 5 with
        | 0 -> Gen.gnp ~n:14 ~p:0.35 ~seed
        | 1 -> Gen.waxman ~n:14 ~alpha:0.9 ~beta:0.5 ~seed
        | 2 -> Gen.torus ~w:4 ~h:4
        | 3 -> Nets.net15.Nets.graph
        | _ -> Nets.rnp28.Nets.graph
      in
      let regions = min regions (Graph.n_nodes g) in
      let p = Topo.Partition.make g ~regions in
      match Topo.Partition.validate p g with
      | Ok () -> true
      | Error e -> QCheck2.Test.fail_report e)

let test_dot_output () =
  let s = Topo.Dot.to_dot Nets.fig1_six.Nets.graph in
  Alcotest.(check bool) "mentions SW4" true
    (Astring.String.is_infix ~affix:"SW4" s);
  Alcotest.(check bool) "graph block" true
    (Astring.String.is_prefix ~affix:"graph" s)

let () =
  Alcotest.run "topo"
    [
      ( "builder",
        [
          Alcotest.test_case "basics" `Quick test_builder_basic;
          Alcotest.test_case "duplicate label" `Quick test_builder_duplicate_label;
          Alcotest.test_case "self loop" `Quick test_builder_self_loop;
          Alcotest.test_case "port pinning" `Quick test_builder_port_pinning;
          Alcotest.test_case "sparse ports rejected" `Quick test_builder_sparse_ports_rejected;
          Alcotest.test_case "port conflict" `Quick test_builder_port_conflict;
          Alcotest.test_case "relabel" `Quick test_relabel;
          Alcotest.test_case "relabel duplicate" `Quick test_relabel_duplicate;
        ] );
      ( "paths",
        [
          Alcotest.test_case "bfs on a line" `Quick test_bfs_line;
          Alcotest.test_case "bfs with failed link" `Quick test_bfs_usable_filter;
          Alcotest.test_case "dijkstra = bfs on unit weights" `Quick
            test_dijkstra_matches_bfs_unit_weights;
          Alcotest.test_case "widest path" `Quick test_widest_path;
          Alcotest.test_case "k shortest on a ring" `Quick test_k_shortest;
          Alcotest.test_case "edge-disjoint paths" `Quick test_edge_disjoint;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "diameter" `Quick test_diameter;
          Alcotest.test_case "path ports" `Quick test_path_ports;
        ] );
      ( "generators",
        [
          Alcotest.test_case "shapes" `Quick test_generator_shapes;
          Alcotest.test_case "torus regularity" `Quick test_torus_regular;
          prop_gnp_connected; prop_waxman_connected; prop_gnp_deterministic;
          Alcotest.test_case "edge hosts" `Quick test_with_edge_hosts;
        ] );
      ( "partition",
        [
          Alcotest.test_case "single region is the whole graph" `Quick
            test_partition_single_region;
          Alcotest.test_case "bad region counts rejected" `Quick
            test_partition_too_many_regions;
          Alcotest.test_case "net15 two-way cut" `Quick test_partition_net15;
          prop_partition_valid;
        ] );
      ( "paper topologies",
        [
          Alcotest.test_case "fig1 structure + pinned ports" `Quick test_fig1_structure;
          Alcotest.test_case "net15 structure" `Quick test_net15_structure;
          Alcotest.test_case "rnp28 structure (all named adjacencies)" `Quick
            test_rnp_structure;
          Alcotest.test_case "fig8 variant" `Quick test_fig8_structure;
          Alcotest.test_case "protection residues" `Quick test_protection_residues;
          Alcotest.test_case "dot export" `Quick test_dot_output;
          Alcotest.test_case "serial file round trip" `Quick test_serial_file_roundtrip;
          Alcotest.test_case "k-shortest edge cases" `Quick test_k_shortest_edges;
        ] );
    ]
