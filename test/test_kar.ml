(* Tests for the KAR core library: the forwarding/deflection policies
   (section 2.1 semantics), route encoding (section 2.2), protection
   planning, switch-ID assignment, the controller, and the agreement
   between the exact Markov analysis and the Monte-Carlo walker. *)

module Z = Bignum.Z
module Graph = Topo.Graph
module Nets = Topo.Nets

let qtest ?(count = 200) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let rng () = Util.Prng.of_int 7

(* --- Policy: exhaustive semantics on a synthetic 4-port switch --- *)

let ports ?(down = []) ?(hosts = []) n =
  Array.init n (fun p ->
      { Kar.Policy.up = not (List.mem p down); to_host = List.mem p hosts })

let view ?(deflected = false) ~route_id ~in_port () =
  { Kar.Policy.route_id = Z.of_int route_id; in_port; deflected }

(* switch_id 13, route_id r: computed port = r mod 13 *)

let test_computed_port () =
  Alcotest.(check int) "44 mod 4" 0 (Kar.Policy.computed_port ~switch_id:4 ~route_id:(Z.of_int 44));
  Alcotest.(check int) "44 mod 7" 2 (Kar.Policy.computed_port ~switch_id:7 ~route_id:(Z.of_int 44));
  Alcotest.(check int) "660 mod 5" 0 (Kar.Policy.computed_port ~switch_id:5 ~route_id:(Z.of_int 660))

let test_none_forwards_valid () =
  let d, defl =
    Kar.Policy.forward Kar.Policy.No_deflection ~switch_id:13 ~ports:(ports 4)
      ~packet:(view ~route_id:2 ~in_port:0 ()) (rng ())
  in
  Alcotest.(check bool) "forward 2" true (d = Kar.Policy.Forward 2);
  Alcotest.(check bool) "not deflected" false defl

let test_none_drops_invalid_port () =
  (* route_id 7 mod 13 = 7 >= 4 ports: invalid *)
  let d, _ =
    Kar.Policy.forward Kar.Policy.No_deflection ~switch_id:13 ~ports:(ports 4)
      ~packet:(view ~route_id:7 ~in_port:0 ()) (rng ())
  in
  Alcotest.(check bool) "drop" true (d = Kar.Policy.Drop)

let test_none_drops_down_port () =
  let d, _ =
    Kar.Policy.forward Kar.Policy.No_deflection ~switch_id:13
      ~ports:(ports ~down:[ 2 ] 4)
      ~packet:(view ~route_id:2 ~in_port:0 ()) (rng ())
  in
  Alcotest.(check bool) "drop" true (d = Kar.Policy.Drop)

let test_avp_uses_computed_even_if_input () =
  (* computed = 2 = in_port: AVP still uses it ("allows to use its incoming
     port as an outgoing port in any case") *)
  let d, _ =
    Kar.Policy.forward Kar.Policy.Any_valid_port ~switch_id:13 ~ports:(ports 4)
      ~packet:(view ~route_id:2 ~in_port:2 ()) (rng ())
  in
  Alcotest.(check bool) "forward back out" true (d = Kar.Policy.Forward 2)

let test_nip_never_uses_input () =
  (* same situation: NIP must pick another port at random *)
  let r = rng () in
  for _ = 1 to 50 do
    let d, defl =
      Kar.Policy.forward Kar.Policy.Not_input_port ~switch_id:13 ~ports:(ports 4)
        ~packet:(view ~route_id:2 ~in_port:2 ()) r
    in
    match d with
    | Kar.Policy.Forward p ->
      Alcotest.(check bool) "not input" true (p <> 2);
      Alcotest.(check bool) "marked deflected" true defl
    | Kar.Policy.Drop -> Alcotest.fail "should deflect, not drop"
  done

let test_nip_random_excludes_input_and_down () =
  let r = rng () in
  for _ = 1 to 50 do
    let d, _ =
      Kar.Policy.forward Kar.Policy.Not_input_port ~switch_id:13
        ~ports:(ports ~down:[ 7 mod 13; 1 ] 4) (* computed invalid anyway *)
        ~packet:(view ~route_id:7 ~in_port:0 ()) r
    in
    match d with
    | Kar.Policy.Forward p ->
      Alcotest.(check bool) "healthy, not input" true (p = 2 || p = 3)
    | Kar.Policy.Drop -> Alcotest.fail "candidates exist"
  done

let test_nip_degree_one_returns () =
  (* only the input port is healthy: NIP sends the packet back rather than
     spinning (documented deviation from the paper's non-terminating
     Algorithm 1) *)
  let d, _ =
    Kar.Policy.forward Kar.Policy.Not_input_port ~switch_id:13
      ~ports:(ports ~down:[ 1; 2; 3 ] 4)
      ~packet:(view ~route_id:7 ~in_port:0 ()) (rng ())
  in
  Alcotest.(check bool) "returns on input port" true (d = Kar.Policy.Forward 0)

let test_hp_random_after_first_deflection () =
  (* once deflected, HP ignores the computed port entirely *)
  let r = rng () in
  let seen = Hashtbl.create 4 in
  for _ = 1 to 200 do
    let d, defl =
      Kar.Policy.forward Kar.Policy.Hot_potato ~switch_id:13 ~ports:(ports 4)
        ~packet:(view ~deflected:true ~route_id:2 ~in_port:0 ()) r
    in
    Alcotest.(check bool) "stays deflected" true defl;
    match d with
    | Kar.Policy.Forward p -> Hashtbl.replace seen p ()
    | Kar.Policy.Drop -> Alcotest.fail "healthy ports exist"
  done;
  Alcotest.(check int) "all four ports seen" 4 (Hashtbl.length seen)

let test_hp_not_deflected_follows_modulo () =
  let d, defl =
    Kar.Policy.forward Kar.Policy.Hot_potato ~switch_id:13 ~ports:(ports 4)
      ~packet:(view ~route_id:2 ~in_port:0 ()) (rng ())
  in
  Alcotest.(check bool) "follows computed" true (d = Kar.Policy.Forward 2);
  Alcotest.(check bool) "not deflected" false defl

let test_all_drop_when_everything_down () =
  List.iter
    (fun policy ->
      let d, _ =
        Kar.Policy.forward policy ~switch_id:13
          ~ports:(ports ~down:[ 0; 1; 2; 3 ] 4)
          ~packet:(view ~route_id:2 ~in_port:0 ()) (rng ())
      in
      Alcotest.(check bool) (Kar.Policy.to_string policy) true (d = Kar.Policy.Drop))
    [ Kar.Policy.No_deflection; Kar.Policy.Hot_potato; Kar.Policy.Any_valid_port;
      Kar.Policy.Not_input_port ]

let test_policy_string_roundtrip () =
  List.iter
    (fun p ->
      Alcotest.(check bool) (Kar.Policy.to_string p) true
        (Kar.Policy.of_string (Kar.Policy.to_string p) = Some p))
    Kar.Policy.all;
  Alcotest.(check bool) "unknown" true (Kar.Policy.of_string "bogus" = None)

(* deflection draws are uniform over the candidate set *)
let test_deflection_uniformity () =
  let r = rng () in
  let counts = Array.make 4 0 in
  let n = 20_000 in
  for _ = 1 to n do
    match
      Kar.Policy.forward Kar.Policy.Not_input_port ~switch_id:13 ~ports:(ports 4)
        ~packet:(view ~route_id:7 ~in_port:0 ()) r
    with
    | Kar.Policy.Forward p, _ -> counts.(p) <- counts.(p) + 1
    | Kar.Policy.Drop, _ -> ()
  done;
  Alcotest.(check int) "input port never drawn" 0 counts.(0);
  (* three candidates, ~n/3 each within 5% *)
  List.iter
    (fun p ->
      let share = float_of_int counts.(p) /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "port %d share %.3f" p share)
        true
        (Float.abs (share -. (1.0 /. 3.0)) < 0.017))
    [ 1; 2; 3 ]

(* forwarding decisions are always safe: the chosen port exists, is up,
   and NIP never returns the input port unless it is the only healthy one *)
let prop_forward_invariants =
  qtest ~count:2000 "forward returns only existing healthy ports"
    QCheck2.Gen.(
      let* degree = 1 -- 8 in
      let* down_mask = 0 -- ((1 lsl degree) - 1) in
      let* in_port = 0 -- (degree - 1) in
      let* route = 0 -- 10_000 in
      let* policy_idx = 0 -- 3 in
      let* deflected = bool in
      pure (degree, down_mask, in_port, route, policy_idx, deflected))
    (fun (degree, down_mask, in_port, route, policy_idx, deflected) ->
      let ports_arr =
        Array.init degree (fun p ->
            { Kar.Policy.up = down_mask land (1 lsl p) = 0; to_host = false })
      in
      let policy = List.nth Kar.Policy.all policy_idx in
      let decision, _ =
        Kar.Policy.forward policy ~switch_id:10007
          ~ports:ports_arr
          ~packet:{ Kar.Policy.route_id = Z.of_int route; in_port; deflected }
          (Util.Prng.of_int (route + down_mask))
      in
      match decision with
      | Kar.Policy.Drop -> true
      | Kar.Policy.Forward p ->
        p >= 0 && p < degree
        && ports_arr.(p).Kar.Policy.up
        && (policy <> Kar.Policy.Not_input_port
           || p <> in_port
           || (* only-healthy-port exception *)
           Array.for_all
             (fun i ->
               (not ports_arr.(i).Kar.Policy.up) || i = in_port)
             (Array.init degree (fun i -> i))))

(* --- the zero-allocation fast path --- *)

(* [decide] (packed-int code, what the simulator's switches run) must agree
   decision-for-decision with [forward] (the boxed API Walk uses) — same
   port, same deflected flag, same PRNG stream consumption. *)
let prop_decide_matches_forward =
  qtest ~count:2000 "decide = forward (packed vs boxed)"
    QCheck2.Gen.(
      let* degree = 1 -- 8 in
      let* down_mask = 0 -- ((1 lsl degree) - 1) in
      let* in_port = 0 -- (degree - 1) in
      let* route = 0 -- 10_000 in
      let* policy_idx = 0 -- 3 in
      let* deflected = bool in
      let* seed = 0 -- 1_000_000 in
      pure (degree, down_mask, in_port, route, policy_idx, deflected, seed))
    (fun (degree, down_mask, in_port, route, policy_idx, deflected, seed) ->
      let ports_arr =
        Array.init degree (fun p ->
            { Kar.Policy.up = down_mask land (1 lsl p) = 0; to_host = false })
      in
      let policy = List.nth Kar.Policy.all policy_idx in
      let route_id = Z.of_int route in
      let decision, defl =
        Kar.Policy.forward policy ~switch_id:10007 ~ports:ports_arr
          ~packet:{ Kar.Policy.route_id; in_port; deflected }
          (Util.Prng.of_int seed)
      in
      let d =
        Kar.Policy.decide policy
          ~computed:(Kar.Policy.computed_port ~switch_id:10007 ~route_id)
          ~in_port ~deflected ~ports:ports_arr (Util.Prng.of_int seed)
      in
      (match decision with
       | Kar.Policy.Forward p -> Kar.Policy.code_port d = p
       | Kar.Policy.Drop -> Kar.Policy.code_port d = -1)
      && Kar.Policy.code_deflected d = defl)

let test_residue_cache () =
  let plan = Kar.Controller.scenario_plan Nets.net15 Kar.Controller.Full in
  let route_id = plan.Kar.Route.route_id in
  (* every residue of the plan answers from the table, identically to the
     remainder kernel *)
  List.iter
    (fun r ->
      let sw = r.Rns.modulus in
      Alcotest.(check int)
        (Printf.sprintf "cached port at SW%d" sw)
        (Kar.Policy.computed_port ~switch_id:sw ~route_id)
        (Kar.Route.cached_port plan ~route_id ~switch_id:sw);
      Alcotest.(check int)
        (Printf.sprintf "residue_table at SW%d" sw)
        r.Rns.value
        (Kar.Route.residue_table plan sw))
    plan.Kar.Route.residues;
  (* switches outside the plan and foreign route IDs fall back to the
     kernel *)
  Alcotest.(check int) "unplanned switch" (Kar.Policy.computed_port ~switch_id:23 ~route_id)
    (Kar.Route.cached_port plan ~route_id ~switch_id:23);
  let other = Z.of_int 44 in
  List.iter
    (fun r ->
      let sw = r.Rns.modulus in
      Alcotest.(check int)
        (Printf.sprintf "re-encoded packet at SW%d" sw)
        (Kar.Policy.computed_port ~switch_id:sw ~route_id:other)
        (Kar.Route.cached_port plan ~route_id:other ~switch_id:sw))
    plan.Kar.Route.residues

(* The acceptance bar of the fast-path work: a steady-state forwarding
   decision (cache lookup + NIP decide, healthy computed port) touches the
   minor heap not at all.  [Gc.minor_words] itself boxes its float result,
   so allow a small constant slack rather than demanding an exact zero. *)
let test_forward_zero_alloc () =
  let plan = Kar.Controller.scenario_plan Nets.net15 Kar.Controller.Full in
  let route_id = plan.Kar.Route.route_id in
  let ports_arr = ports 4 in
  let r = rng () in
  (* warm up: fault in closures/tables before counting *)
  for _ = 1 to 100 do
    let c = Kar.Route.cached_port plan ~route_id ~switch_id:13 in
    ignore
      (Sys.opaque_identity
         (Kar.Policy.decide Kar.Policy.Not_input_port ~computed:c ~in_port:0
            ~deflected:false ~ports:ports_arr r))
  done;
  let iters = 100_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    let c = Kar.Route.cached_port plan ~route_id ~switch_id:13 in
    ignore
      (Sys.opaque_identity
         (Kar.Policy.decide Kar.Policy.Not_input_port ~computed:c ~in_port:0
            ~deflected:false ~ports:ports_arr r))
  done;
  let delta = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f minor words over %d decisions" delta iters)
    true (delta <= 256.0)

(* --- Route encoding --- *)

let test_route_fig1 () =
  let sc = Nets.fig1_six in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Unprotected in
  Alcotest.(check string) "R=44" "44" (Z.to_string plan.Kar.Route.route_id);
  let protected_plan = Kar.Controller.scenario_plan sc Kar.Controller.Partial in
  Alcotest.(check string) "R=660" "660" (Z.to_string protected_plan.Kar.Route.route_id);
  Alcotest.(check (list (triple int int int))) "verify clean" []
    (Kar.Route.verify protected_plan)

let test_route_table1_bits () =
  let sc = Nets.net15 in
  List.iter2
    (fun level (bits, switches) ->
      let plan = Kar.Controller.scenario_plan sc level in
      Alcotest.(check int) "bits" bits plan.Kar.Route.bit_length;
      Alcotest.(check int) "switches" switches (List.length plan.Kar.Route.residues))
    Kar.Controller.all_levels
    [ (15, 4); (28, 7); (43, 10) ]

let test_route_errors () =
  let sc = Nets.net15 in
  let g = sc.Nets.graph in
  (* non-adjacent consecutive switches *)
  (match Kar.Route.of_labels g [ 10; 29 ] ~egress_label:1003 with
   | Error (Kar.Route.Not_adjacent (10, 29)) -> ()
   | Error _ | Ok _ -> Alcotest.fail "expected Not_adjacent 10 29");
  (* duplicate switch *)
  (match
     Kar.Route.of_labels g [ 10; 7; 13; 29 ] ~egress_label:1003
     |> fun plan_result ->
     Result.bind plan_result (fun plan -> Kar.Route.protect g plan [ (10, 11) ])
   with
   | Error (Kar.Route.Duplicate_switch 10) -> ()
   | Error _ | Ok _ -> Alcotest.fail "expected Duplicate_switch 10");
  (* non-core node in the path *)
  match Kar.Route.of_labels g [ 1001; 10 ] ~egress_label:1003 with
  | Error (Kar.Route.Not_core 1001) | Error (Kar.Route.Not_adjacent _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected failure for an edge node in path"

let test_route_verify_catches_mismatch () =
  let sc = Nets.net15 in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Partial in
  (* rebuild the plan with a corrupted route id *)
  let broken = { plan with Kar.Route.route_id = Z.add plan.Kar.Route.route_id Z.one } in
  Alcotest.(check bool) "violations found" true (Kar.Route.verify broken <> [])

let test_next_hop_matches_residues () =
  let sc = Nets.rnp28 in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Partial in
  List.iter
    (fun r ->
      Alcotest.(check int)
        (Printf.sprintf "SW%d" r.Rns.modulus)
        r.Rns.value
        (Kar.Route.next_hop plan ~switch_id:r.Rns.modulus))
    plan.Kar.Route.residues

(* --- Protection --- *)

let test_tree_hops_reach_dest () =
  let sc = Nets.rnp28 in
  let g = sc.Nets.graph in
  let dest = Graph.node_of_label g 73 in
  let members = List.map (Graph.label g) (Graph.core_nodes g) in
  let hops = Kar.Protection.tree_hops g ~dest members in
  (* every core switch except the destination gets a hop *)
  Alcotest.(check int) "27 hops" 27 (List.length hops);
  (* following hops from any member terminates at the destination *)
  let next = List.to_seq hops |> Hashtbl.of_seq in
  List.iter
    (fun (s, _) ->
      let rec follow l steps =
        if l = 73 then ()
        else if steps > 30 then Alcotest.failf "hop chain from %d loops" s
        else
          match Hashtbl.find_opt next l with
          | Some n -> follow n (steps + 1)
          | None -> Alcotest.failf "chain from %d dead-ends at %d" s l
      in
      follow s 0)
    hops

let test_off_path_members_ordering () =
  let sc = Nets.net15 in
  let g = sc.Nets.graph in
  let path = List.map (Graph.node_of_label g) sc.Nets.primary in
  let members = Kar.Protection.off_path_members g ~path ~radius:1 in
  (* radius 1 = the direct neighbours of the path, not the path itself *)
  Alcotest.(check bool) "no path nodes" true
    (List.for_all (fun m -> not (List.mem m sc.Nets.primary)) members);
  List.iter
    (fun m ->
      let v = Graph.node_of_label g m in
      Alcotest.(check bool)
        (Printf.sprintf "SW%d adjacent to path" m)
        true
        (List.exists (fun p -> Graph.link_between g v p <> None) path))
    members

let test_budget_monotone () =
  let sc = Nets.net15 in
  let g = sc.Nets.graph in
  let base = Kar.Controller.scenario_plan sc Kar.Controller.Unprotected in
  let dest = Graph.node_of_label g 29 in
  let path = List.map (Graph.node_of_label g) sc.Nets.primary in
  let members = Kar.Protection.off_path_members g ~path ~radius:max_int in
  let sizes =
    List.map
      (fun bits ->
        let plan, hops =
          Kar.Protection.select_within_budget g ~plan:base ~dest ~members ~bits
        in
        Alcotest.(check bool) "respects budget" true (plan.Kar.Route.bit_length <= bits);
        List.length hops)
      [ 15; 30; 60; 120 ]
  in
  Alcotest.(check bool) "monotone" true (List.sort Stdlib.compare sizes = sizes)

let test_coverage_values () =
  (* the three coverage numbers behind the paper's section 3.2 narrative *)
  let sc = Nets.rnp28 in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Partial in
  let cov name =
    let fc = List.find (fun fc -> fc.Nets.name = name) sc.Nets.failures in
    Kar.Protection.coverage sc.Nets.graph ~plan ~failed:fc.Nets.link
  in
  Alcotest.(check (float 0.001)) "SW7-SW13 fully covered" 1.0 (cov "SW7-SW13");
  Alcotest.(check (float 0.001)) "SW13-SW41: 2 of 5" 0.4 (cov "SW13-SW41");
  Alcotest.(check (float 0.001)) "SW41-SW73 fully covered" 1.0 (cov "SW41-SW73")

(* --- Ids --- *)

let test_primes () =
  Alcotest.(check (list int)) "first 6" [ 2; 3; 5; 7; 11; 13 ] (Kar.Ids.primes 6);
  Alcotest.(check bool) "97 prime" true (Kar.Ids.is_prime 97);
  Alcotest.(check bool) "1 not prime" false (Kar.Ids.is_prime 1);
  Alcotest.(check bool) "91 = 7*13" false (Kar.Ids.is_prime 91)

let strategies =
  [ Kar.Ids.Primes_ascending; Kar.Ids.Degree_descending; Kar.Ids.Prime_powers;
    Kar.Ids.Random_primes 3 ]

let prop_assign_valid =
  qtest ~count:20 "assignment is valid on random graphs"
    QCheck2.Gen.(pair (1 -- 500) (0 -- 3))
    (fun (seed, si) ->
      let g = Topo.Gen.gnp ~n:20 ~p:0.25 ~seed in
      let strategy = List.nth strategies si in
      Kar.Ids.validate (Kar.Ids.assign g strategy) = [])

let test_assign_preserves_edges () =
  let g, hosts = Topo.Gen.with_edge_hosts (Topo.Gen.ring 6) [ 0; 3 ] in
  let g' = Kar.Ids.assign g Kar.Ids.Primes_ascending in
  List.iter
    (fun h ->
      Alcotest.(check int) "edge label kept" (Graph.label g h) (Graph.label g' h))
    hosts

let test_mean_route_bits_sane () =
  let g = Kar.Ids.assign (Topo.Gen.ring 8) Kar.Ids.Primes_ascending in
  let bits = Kar.Ids.mean_route_bits g ~trials:100 ~seed:5 in
  Alcotest.(check bool) "positive and bounded" true (bits > 1.0 && bits < 64.0)

(* Random pairwise-coprime core topologies: a connected G(n,p) graph whose
   core switches get distinct primes larger than their degree.  Any plan
   built over such a labelling must satisfy Eq. 3 literally — every residue
   is recovered by [route_id mod switch_id] — and folding protection hops
   in (which re-runs the CRT with extra residues) must preserve that for
   old and new residues alike. *)

let prop_coprime_plan_residues =
  qtest ~count:50 "Eq. 3 on random coprime topologies (incl. protected)"
    QCheck2.Gen.(triple (1 -- 1000) (6 -- 14) (0 -- 10_000))
    (fun (seed, n, pick) ->
      let g = Topo.Gen.gnp ~n ~p:0.3 ~seed in
      let g = Kar.Ids.assign g (Kar.Ids.Random_primes seed) in
      (* labelling invariants: distinct primes, each > degree *)
      let labelling_ok =
        Kar.Ids.validate g = []
        && List.for_all
             (fun v ->
               let id = Graph.label g v in
               Kar.Ids.is_prime id && id > Graph.degree g v)
             (Graph.core_nodes g)
      in
      let nodes = Array.of_list (Graph.core_nodes g) in
      let src = nodes.(pick mod n) and dst = nodes.((pick / n) mod n) in
      if (not labelling_ok) || src = dst then labelling_ok
      else
        match Topo.Paths.shortest_path g src dst with
        | None -> false (* gnp is conditioned on connectivity *)
        | Some path -> (
            match Kar.Route.of_core_path g path ~egress_port:0 with
            | Error _ -> false
            | Ok plan ->
                let residues_recovered (plan : Kar.Route.plan) =
                  List.for_all
                    (fun r ->
                      Z.equal
                        (Z.rem plan.Kar.Route.route_id (Z.of_int r.Rns.modulus))
                        (Z.of_int r.Rns.value))
                    plan.Kar.Route.residues
                in
                (* one protection hop: an off-path neighbour of a path
                   node, driven back onto the path *)
                let in_plan l =
                  List.exists (fun r -> r.Rns.modulus = l) plan.Kar.Route.residues
                in
                let hop =
                  List.find_map
                    (fun v ->
                      List.find_map
                        (fun w ->
                          if Graph.is_core g w && not (in_plan (Graph.label g w))
                          then Some (Graph.label g w, Graph.label g v)
                          else None)
                        (Graph.neighbors g v))
                    path
                in
                residues_recovered plan
                && (match hop with
                    | None -> true (* path covers the whole graph *)
                    | Some hop -> (
                        match Kar.Route.protect g plan [ hop ] with
                        | Error _ -> false
                        | Ok protected_ ->
                            List.length protected_.Kar.Route.residues
                            = List.length plan.Kar.Route.residues + 1
                            && residues_recovered protected_))))

(* --- Controller --- *)

let test_scenario_plans_verify () =
  List.iter
    (fun sc ->
      List.iter
        (fun level ->
          let plan = Kar.Controller.scenario_plan sc level in
          Alcotest.(check (list (triple int int int))) "forward verifies" []
            (Kar.Route.verify plan);
          let rev = Kar.Controller.scenario_reverse_plan sc level in
          Alcotest.(check (list (triple int int int))) "reverse verifies" []
            (Kar.Route.verify rev))
        Kar.Controller.all_levels)
    [ Nets.fig1_six; Nets.net15; Nets.rnp28; Nets.rnp_fig8 ]

let test_reverse_plan_edge_disjoint () =
  let sc = Nets.rnp28 in
  let g = sc.Nets.graph in
  let fwd_links =
    Topo.Paths.path_links g (List.map (Graph.node_of_label g) sc.Nets.primary)
  in
  let rev = Kar.Controller.scenario_reverse_plan sc Kar.Controller.Partial in
  let rev_links = Topo.Paths.path_links g rev.Kar.Route.core_path in
  List.iter
    (fun l ->
      Alcotest.(check bool) "disjoint" true (not (List.mem l fwd_links)))
    rev_links

let test_reencode_cache () =
  let sc = Nets.net15 in
  let cache = Kar.Controller.create_cache sc.Nets.graph in
  let r1 = Kar.Controller.reencode cache ~at:sc.Nets.ingress ~dst:sc.Nets.egress in
  let r2 = Kar.Controller.reencode cache ~at:sc.Nets.ingress ~dst:sc.Nets.egress in
  Alcotest.(check bool) "some route" true (r1 <> None);
  Alcotest.(check bool) "memoised identical" true (r1 = r2);
  (* the counter proves the second call reused the plan *)
  Alcotest.(check int) "one plan computed" 1 (Kar.Controller.plans_computed cache);
  let _ = Kar.Controller.reencode cache ~at:sc.Nets.egress ~dst:sc.Nets.ingress in
  Alcotest.(check int) "direction is part of the key" 2
    (Kar.Controller.plans_computed cache)

(* A stranded packet already at its destination edge has no route to plan:
   re-encode answers None (the edge delivers locally) rather than raising. *)
let test_reencode_at_destination () =
  let sc = Nets.net15 in
  let cache = Kar.Controller.create_cache sc.Nets.graph in
  Alcotest.(check bool) "self is None" true
    (Kar.Controller.reencode cache ~at:sc.Nets.egress ~dst:sc.Nets.egress = None);
  Alcotest.(check int) "failure was computed once" 1
    (Kar.Controller.plans_computed cache);
  (* and the failure is negative-cached, not recomputed *)
  Alcotest.(check bool) "still None" true
    (Kar.Controller.reencode cache ~at:sc.Nets.egress ~dst:sc.Nets.egress = None);
  Alcotest.(check int) "negative-cached" 1 (Kar.Controller.plans_computed cache)

(* An edge node with no links at all: unreachable destination -> None,
   negative-cached like any other failed plan. *)
let test_reencode_unreachable () =
  let b = Graph.Builder.create () in
  let c2 = Graph.Builder.add_node b ~kind:Graph.Core 2 in
  let c3 = Graph.Builder.add_node b ~kind:Graph.Core 3 in
  let e0 = Graph.Builder.add_node b ~kind:Graph.Edge 1000 in
  let island = Graph.Builder.add_node b ~kind:Graph.Edge 1001 in
  let _ = Graph.Builder.add_link b e0 c2 in
  let _ = Graph.Builder.add_link b c2 c3 in
  let g = Graph.Builder.finish b in
  let cache = Kar.Controller.create_cache g in
  Alcotest.(check bool) "unreachable is None" true
    (Kar.Controller.reencode cache ~at:e0 ~dst:island = None);
  Alcotest.(check bool) "still None on retry" true
    (Kar.Controller.reencode cache ~at:e0 ~dst:island = None);
  Alcotest.(check int) "planned once" 1 (Kar.Controller.plans_computed cache)

let test_disjoint_plans () =
  let sc = Nets.net15 in
  let g = sc.Nets.graph in
  let plans =
    Kar.Controller.disjoint_plans g ~src:sc.Nets.ingress ~dst:sc.Nets.egress ~k:3
  in
  Alcotest.(check bool) "at least two" true (List.length plans >= 2);
  (* pairwise edge-disjoint over core links *)
  let link_sets =
    List.map (fun p -> Topo.Paths.path_links g p.Kar.Route.core_path) plans
  in
  let rec pairwise = function
    | [] -> ()
    | s :: rest ->
      List.iter
        (fun t ->
          List.iter
            (fun l ->
              Alcotest.(check bool) "disjoint core links" false (List.mem l t))
            s)
        rest;
      pairwise rest
  in
  pairwise link_sets;
  (* every plan verifies and delivers on the healthy network *)
  List.iter
    (fun plan ->
      Alcotest.(check (list (triple int int int))) "verifies" [] (Kar.Route.verify plan);
      let a =
        Kar.Markov.analyze g ~plan ~policy:Kar.Policy.Not_input_port ~failed:[]
          ~src:sc.Nets.ingress ~dst:sc.Nets.egress
      in
      Alcotest.(check (float 1e-9)) "delivers" 1.0 a.Kar.Markov.p_delivered)
    plans

let test_disjoint_plans_survive_each_other () =
  (* failing any link of plan 0 leaves plan 1 deliverable: the 1+1 basis *)
  let sc = Nets.net15 in
  let g = sc.Nets.graph in
  match Kar.Controller.disjoint_plans g ~src:sc.Nets.ingress ~dst:sc.Nets.egress ~k:2 with
  | p0 :: p1 :: _ ->
    List.iter
      (fun failed_link ->
        let a =
          Kar.Markov.analyze g ~plan:p1 ~policy:Kar.Policy.No_deflection
            ~failed:[ failed_link ] ~src:sc.Nets.ingress ~dst:sc.Nets.egress
        in
        Alcotest.(check (float 1e-9)) "backup unaffected" 1.0 a.Kar.Markov.p_delivered)
      (Topo.Paths.path_links g p0.Kar.Route.core_path)
  | _ -> Alcotest.fail "need two disjoint plans"

let test_controller_route_follows_shortest () =
  let sc = Nets.net15 in
  let plan =
    Kar.Controller.route sc.Nets.graph ~src:sc.Nets.ingress ~dst:sc.Nets.egress
      ~protection:[]
  in
  (* shortest AS1 -> AS3 is via the primary 10-7-13-29 (4 core hops) *)
  Alcotest.(check int) "4 switches" 4 (List.length plan.Kar.Route.residues)

(* --- Walk vs Markov agreement --- *)

let walk_matches_markov sc level policy fidx =
  let g = sc.Nets.graph in
  let plan = Kar.Controller.scenario_plan sc level in
  let failed =
    match fidx with
    | Some i -> [ (List.nth sc.Nets.failures i).Nets.link ]
    | None -> []
  in
  let exact =
    Kar.Markov.analyze g ~plan ~policy ~failed ~src:sc.Nets.ingress
      ~dst:sc.Nets.egress
  in
  let mc =
    Kar.Walk.run g ~plan ~policy ~failed ~src:sc.Nets.ingress ~dst:sc.Nets.egress
      ~trials:30_000 ~seed:13 ()
  in
  Alcotest.(check (float 0.015))
    "delivery probability" exact.Kar.Markov.p_delivered mc.Kar.Walk.p_delivery;
  if exact.Kar.Markov.p_delivered > 0.2 && Float.is_finite exact.Kar.Markov.expected_hops_delivered
  then
    Alcotest.(check bool) "hops within 10%" true
      (Float.abs (exact.Kar.Markov.expected_hops_delivered -. mc.Kar.Walk.mean_hops)
       /. exact.Kar.Markov.expected_hops_delivered
       < 0.1)

let test_walk_markov_nip () =
  walk_matches_markov Nets.net15 Kar.Controller.Partial Kar.Policy.Not_input_port (Some 0);
  walk_matches_markov Nets.net15 Kar.Controller.Full Kar.Policy.Not_input_port (Some 2);
  walk_matches_markov Nets.rnp28 Kar.Controller.Partial Kar.Policy.Not_input_port (Some 1)

let test_walk_markov_avp () =
  walk_matches_markov Nets.net15 Kar.Controller.Partial Kar.Policy.Any_valid_port (Some 1)

let test_markov_healthy_deterministic () =
  (* without failures the chain is the deterministic path: P(del)=1, hops =
     path length *)
  List.iter
    (fun (sc, expected_hops) ->
      let plan = Kar.Controller.scenario_plan sc Kar.Controller.Partial in
      let a =
        Kar.Markov.analyze sc.Nets.graph ~plan ~policy:Kar.Policy.Not_input_port
          ~failed:[] ~src:sc.Nets.ingress ~dst:sc.Nets.egress
      in
      Alcotest.(check (float 1e-9)) "P(del)=1" 1.0 a.Kar.Markov.p_delivered;
      Alcotest.(check (float 1e-6)) "hops" expected_hops
        a.Kar.Markov.expected_hops_delivered)
    [ (Nets.fig1_six, 3.0); (Nets.net15, 4.0); (Nets.rnp28, 4.0);
      (Nets.rnp_fig8, 6.0) ]

let test_markov_fig8_geometric () =
  (* the fig8 loop: 1/2 escape per visit via SW109 (4 hops/loop) means
     E[hops] = 6 + 4 * E[loops] = 6 + 4 = 10 *)
  let sc = Nets.rnp_fig8 in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Partial in
  let a =
    Kar.Markov.analyze sc.Nets.graph ~plan ~policy:Kar.Policy.Not_input_port
      ~failed:[ (List.hd sc.Nets.failures).Nets.link ]
      ~src:sc.Nets.ingress ~dst:sc.Nets.egress
  in
  Alcotest.(check (float 1e-6)) "P(del)=1" 1.0 a.Kar.Markov.p_delivered;
  Alcotest.(check (float 0.01)) "E[hops]=10" 10.0 a.Kar.Markov.expected_hops_delivered

let test_markov_no_deflection_drops () =
  let sc = Nets.net15 in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Full in
  let a =
    Kar.Markov.analyze sc.Nets.graph ~plan ~policy:Kar.Policy.No_deflection
      ~failed:[ (List.nth sc.Nets.failures 1).Nets.link ]
      ~src:sc.Nets.ingress ~dst:sc.Nets.egress
  in
  Alcotest.(check (float 1e-9)) "everything drops" 1.0 a.Kar.Markov.p_dropped

let test_markov_disconnected_source () =
  (* fail the ingress uplink: nothing can even enter the core *)
  let sc = Nets.fig1_six in
  let g = sc.Nets.graph in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Partial in
  let uplink = (Graph.link_at g sc.Nets.ingress 0).Graph.id in
  let a =
    Kar.Markov.analyze g ~plan ~policy:Kar.Policy.Not_input_port
      ~failed:[ uplink ] ~src:sc.Nets.ingress ~dst:sc.Nets.egress
  in
  Alcotest.(check (float 1e-9)) "all dropped" 1.0 a.Kar.Markov.p_dropped;
  (* the Monte-Carlo walker agrees *)
  let mc =
    Kar.Walk.run g ~plan ~policy:Kar.Policy.Not_input_port ~failed:[ uplink ]
      ~src:sc.Nets.ingress ~dst:sc.Nets.egress ~trials:100 ~seed:1 ()
  in
  Alcotest.(check int) "walker drops everything" 100 mc.Kar.Walk.dropped

let test_markov_rejects_core_source () =
  let sc = Nets.fig1_six in
  let g = sc.Nets.graph in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Partial in
  match
    Kar.Markov.analyze g ~plan ~policy:Kar.Policy.Not_input_port ~failed:[]
      ~src:(Graph.node_of_label g 7) ~dst:sc.Nets.egress
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "core source accepted"

let test_markov_solver () =
  (* 2x2 system: x + y = 3, x - y = 1 *)
  let x = Kar.Markov.solve [| [| 1.0; 1.0 |]; [| 1.0; -1.0 |] |] [| 3.0; 1.0 |] in
  Alcotest.(check (float 1e-9)) "x" 2.0 x.(0);
  Alcotest.(check (float 1e-9)) "y" 1.0 x.(1);
  (* singular *)
  match Kar.Markov.solve [| [| 1.0; 1.0 |]; [| 2.0; 2.0 |] |] [| 1.0; 2.0 |] with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected singular failure"

let test_optimizer_improves_or_equals () =
  let sc = Nets.net15 in
  let g = sc.Nets.graph in
  let failures = List.map (fun fc -> fc.Nets.link) sc.Nets.failures in
  let base = Kar.Controller.scenario_plan sc Kar.Controller.Unprotected in
  let score plan =
    Kar.Optimizer.score g ~plan ~policy:Kar.Policy.Not_input_port ~failures
      ~src:sc.Nets.ingress ~dst:sc.Nets.egress
      ~objective:Kar.Optimizer.Worst_delivery
  in
  let before = score base in
  let r =
    Kar.Optimizer.optimize g ~plan:base ~policy:Kar.Policy.Not_input_port
      ~failures ~src:sc.Nets.ingress ~dst:sc.Nets.egress ~candidates:[] ~bits:64
      ~objective:Kar.Optimizer.Worst_delivery
  in
  Alcotest.(check bool) "never worse" true (r.Kar.Optimizer.score >= before);
  Alcotest.(check bool) "budget respected" true
    (r.Kar.Optimizer.plan.Kar.Route.bit_length <= 64);
  (* every recorded step strictly improved the objective *)
  List.iter
    (fun s ->
      Alcotest.(check bool) "monotone step" true
        (s.Kar.Optimizer.score_after > s.Kar.Optimizer.score_before))
    r.Kar.Optimizer.steps;
  (* final score equals re-evaluating the final plan *)
  Alcotest.(check (float 1e-9)) "score consistent" r.Kar.Optimizer.score
    (score r.Kar.Optimizer.plan);
  (* with a generous budget it should reach certain delivery on net15 *)
  Alcotest.(check (float 1e-6)) "perfect worst-case delivery" 1.0
    r.Kar.Optimizer.score

let test_optimizer_tiny_budget_noop () =
  (* a budget below the unprotected size leaves the plan untouched *)
  let sc = Nets.net15 in
  let g = sc.Nets.graph in
  let base = Kar.Controller.scenario_plan sc Kar.Controller.Unprotected in
  let r =
    Kar.Optimizer.optimize g ~plan:base ~policy:Kar.Policy.Not_input_port
      ~failures:[ (List.hd sc.Nets.failures).Nets.link ] ~src:sc.Nets.ingress
      ~dst:sc.Nets.egress ~candidates:[] ~bits:base.Kar.Route.bit_length
      ~objective:Kar.Optimizer.Mean_delivery
  in
  Alcotest.(check int) "no steps" 0 (List.length r.Kar.Optimizer.steps);
  Alcotest.(check bool) "same plan" true
    (Bignum.Z.equal r.Kar.Optimizer.plan.Kar.Route.route_id base.Kar.Route.route_id)

let test_optimizer_hop_objective () =
  (* optimizing expected hops must not reduce delivery below the
     delivery-optimal plan's value on this topology (both reach 1.0) *)
  let sc = Nets.net15 in
  let g = sc.Nets.graph in
  let failures = List.map (fun fc -> fc.Nets.link) sc.Nets.failures in
  let base = Kar.Controller.scenario_plan sc Kar.Controller.Unprotected in
  let r =
    Kar.Optimizer.optimize g ~plan:base ~policy:Kar.Policy.Not_input_port
      ~failures ~src:sc.Nets.ingress ~dst:sc.Nets.egress ~candidates:[] ~bits:96
      ~objective:Kar.Optimizer.Expected_hops
  in
  let delivery =
    Kar.Optimizer.score g ~plan:r.Kar.Optimizer.plan
      ~policy:Kar.Policy.Not_input_port ~failures ~src:sc.Nets.ingress
      ~dst:sc.Nets.egress ~objective:Kar.Optimizer.Worst_delivery
  in
  Alcotest.(check (float 1e-6)) "hops objective also secures delivery" 1.0 delivery

let test_walk_ttl () =
  (* with protection absent and HP, walks can die of TTL *)
  let sc = Nets.net15 in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Unprotected in
  let r =
    Kar.Walk.run sc.Nets.graph ~plan ~policy:Kar.Policy.Hot_potato
      ~failed:[ (List.nth sc.Nets.failures 1).Nets.link ]
      ~src:sc.Nets.ingress ~dst:sc.Nets.egress ~trials:2000 ~seed:3 ~ttl:16 ()
  in
  Alcotest.(check int) "conservation" r.Kar.Walk.trials
    (r.Kar.Walk.delivered + r.Kar.Walk.stranded + r.Kar.Walk.dropped
   + r.Kar.Walk.ttl_exceeded);
  Alcotest.(check bool) "some walks die of ttl" true (r.Kar.Walk.ttl_exceeded > 0)

let () =
  Alcotest.run "kar"
    [
      ( "policy",
        [
          Alcotest.test_case "computed port (paper values)" `Quick test_computed_port;
          Alcotest.test_case "none forwards valid" `Quick test_none_forwards_valid;
          Alcotest.test_case "none drops invalid" `Quick test_none_drops_invalid_port;
          Alcotest.test_case "none drops down" `Quick test_none_drops_down_port;
          Alcotest.test_case "avp may bounce back" `Quick test_avp_uses_computed_even_if_input;
          Alcotest.test_case "nip never uses input" `Quick test_nip_never_uses_input;
          Alcotest.test_case "nip random excludes input+down" `Quick
            test_nip_random_excludes_input_and_down;
          Alcotest.test_case "nip degree-one dead end" `Quick test_nip_degree_one_returns;
          Alcotest.test_case "hp random after deflection" `Quick
            test_hp_random_after_first_deflection;
          Alcotest.test_case "hp follows modulo until deflected" `Quick
            test_hp_not_deflected_follows_modulo;
          Alcotest.test_case "all drop when isolated" `Quick test_all_drop_when_everything_down;
          Alcotest.test_case "policy names roundtrip" `Quick test_policy_string_roundtrip;
          Alcotest.test_case "deflection uniformity" `Quick test_deflection_uniformity;
          prop_forward_invariants;
        ] );
      ( "fastpath",
        [
          prop_decide_matches_forward;
          Alcotest.test_case "residue cache" `Quick test_residue_cache;
          Alcotest.test_case "steady-state zero allocation" `Quick
            test_forward_zero_alloc;
        ] );
      ( "route",
        [
          Alcotest.test_case "fig1 route IDs" `Quick test_route_fig1;
          Alcotest.test_case "table 1 bit lengths" `Quick test_route_table1_bits;
          Alcotest.test_case "error paths" `Quick test_route_errors;
          Alcotest.test_case "verify catches corruption" `Quick test_route_verify_catches_mismatch;
          Alcotest.test_case "next_hop matches residues" `Quick test_next_hop_matches_residues;
        ] );
      ( "protection",
        [
          Alcotest.test_case "tree hops reach destination" `Quick test_tree_hops_reach_dest;
          Alcotest.test_case "off-path member selection" `Quick test_off_path_members_ordering;
          Alcotest.test_case "budget selection is monotone" `Quick test_budget_monotone;
          Alcotest.test_case "coverage (paper narrative values)" `Quick test_coverage_values;
        ] );
      ( "ids",
        [
          Alcotest.test_case "primes" `Quick test_primes;
          prop_assign_valid;
          Alcotest.test_case "edges preserved" `Quick test_assign_preserves_edges;
          Alcotest.test_case "mean route bits sane" `Quick test_mean_route_bits_sane;
          prop_coprime_plan_residues;
        ] );
      ( "controller",
        [
          Alcotest.test_case "all scenario plans verify" `Quick test_scenario_plans_verify;
          Alcotest.test_case "reverse plan edge-disjoint" `Quick test_reverse_plan_edge_disjoint;
          Alcotest.test_case "re-encode cache" `Quick test_reencode_cache;
          Alcotest.test_case "re-encode at destination" `Quick
            test_reencode_at_destination;
          Alcotest.test_case "re-encode unreachable" `Quick test_reencode_unreachable;
          Alcotest.test_case "route follows shortest path" `Quick
            test_controller_route_follows_shortest;
          Alcotest.test_case "disjoint plans" `Quick test_disjoint_plans;
          Alcotest.test_case "disjoint plans survive each other" `Quick
            test_disjoint_plans_survive_each_other;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "walk = markov (nip)" `Slow test_walk_markov_nip;
          Alcotest.test_case "walk = markov (avp)" `Slow test_walk_markov_avp;
          Alcotest.test_case "healthy = deterministic path" `Quick
            test_markov_healthy_deterministic;
          Alcotest.test_case "fig8 geometric loop" `Quick test_markov_fig8_geometric;
          Alcotest.test_case "no-deflection drops all" `Quick test_markov_no_deflection_drops;
          Alcotest.test_case "linear solver" `Quick test_markov_solver;
          Alcotest.test_case "disconnected source" `Quick test_markov_disconnected_source;
          Alcotest.test_case "core source rejected" `Quick test_markov_rejects_core_source;
          Alcotest.test_case "walk ttl + conservation" `Quick test_walk_ttl;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "improves monotonically" `Slow test_optimizer_improves_or_equals;
          Alcotest.test_case "tiny budget is a no-op" `Quick test_optimizer_tiny_budget_noop;
          Alcotest.test_case "hop objective keeps delivery" `Slow test_optimizer_hop_objective;
        ] );
    ]
