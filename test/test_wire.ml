(* Tests for the wire codec (the KAR packet header) and the topology file
   format — both must round-trip exactly, and both must reject corruption
   rather than mis-forward. *)

module Z = Bignum.Z
module H = Wire.Header

let qtest ?(count = 500) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* --- header: unit --- *)

let test_header_roundtrip_known () =
  List.iter
    (fun (rid, ttl) ->
      let h = H.make ~ttl (Z.of_string rid) in
      match H.encode h with
      | Error e -> Alcotest.failf "encode: %a" H.pp_error e
      | Ok bytes ->
        (match H.decode bytes with
         | Error e -> Alcotest.failf "decode: %a" H.pp_error e
         | Ok (h', consumed) ->
           Alcotest.(check int) "consumed all" (String.length bytes) consumed;
           Alcotest.(check int) "ttl" ttl h'.H.ttl;
           Alcotest.(check string) "route id" rid (Z.to_string h'.H.route_id)))
    [ ("0", 0); ("44", 64); ("660", 1); ("4409424109091", 255);
      ("340282366920938463463374607431768211455", 17) ]

let test_header_sizes () =
  let size rid =
    match H.encoded_size (H.make ~ttl:64 (Z.of_string rid)) with
    | Ok n -> n
    | Error e -> Alcotest.failf "%a" H.pp_error e
  in
  Alcotest.(check int) "small id: 1 word" 8 (size "44");
  Alcotest.(check int) "43-bit id: 2 words" 12 (size "4409424109091");
  Alcotest.(check int) "zero" 8 (size "0")

let test_header_rejects_oversize () =
  let huge = Z.pow Z.two 1000 in
  match H.encode (H.make ~ttl:1 huge) with
  | Error (H.Route_id_too_large _) -> ()
  | Error e -> Alcotest.failf "wrong error %a" H.pp_error e
  | Ok _ -> Alcotest.fail "expected rejection"

let test_header_rejects_negative () =
  match H.encode (H.make ~ttl:1 (Z.of_int (-5))) with
  | Error H.Negative_route_id -> ()
  | Error e -> Alcotest.failf "wrong error %a" H.pp_error e
  | Ok _ -> Alcotest.fail "expected rejection"

let test_header_rejects_truncation () =
  let bytes = Result.get_ok (H.encode (H.make ~ttl:9 (Z.of_int 660))) in
  match H.decode (String.sub bytes 0 (String.length bytes - 1)) with
  | Error (H.Truncated _) -> ()
  | Error e -> Alcotest.failf "wrong error %a" H.pp_error e
  | Ok _ -> Alcotest.fail "expected truncation error"

let test_header_detects_corruption () =
  let bytes = Result.get_ok (H.encode (H.make ~ttl:9 (Z.of_int 660))) in
  (* flip one bit of the route-ID area: checksum must catch it *)
  let corrupted = Bytes.of_string bytes in
  Bytes.set corrupted 6 (Char.chr (Char.code (Bytes.get corrupted 6) lxor 0x10));
  match H.decode (Bytes.to_string corrupted) with
  | Error H.Bad_checksum -> ()
  | Error e -> Alcotest.failf "wrong error %a" H.pp_error e
  | Ok _ -> Alcotest.fail "corruption slipped through"

let test_header_bad_version () =
  let bytes = Result.get_ok (H.encode (H.make ~ttl:9 (Z.of_int 44))) in
  let tweaked = Bytes.of_string bytes in
  Bytes.set tweaked 0 (Char.chr ((3 lsl 5) lor (Char.code (Bytes.get tweaked 0) land 0x1F)));
  match H.decode (Bytes.to_string tweaked) with
  | Error (H.Bad_version 3) -> ()
  | Error e -> Alcotest.failf "wrong error %a" H.pp_error e
  | Ok _ -> Alcotest.fail "expected version rejection"

let test_header_ttl_boundaries () =
  (* both ends of the ttl field must round-trip exactly *)
  List.iter
    (fun ttl ->
      match H.encode (H.make ~ttl (Z.of_int 660)) with
      | Error e -> Alcotest.failf "encode ttl=%d: %a" ttl H.pp_error e
      | Ok bytes ->
        (match H.decode bytes with
         | Ok (h, _) -> Alcotest.(check int) (Printf.sprintf "ttl %d" ttl) ttl h.H.ttl
         | Error e -> Alcotest.failf "decode ttl=%d: %a" ttl H.pp_error e))
    [ 0; 1; 254; 255 ]

let test_header_bad_ttl () =
  List.iter
    (fun ttl ->
      match H.encode (H.make ~ttl (Z.of_int 44)) with
      | Error (H.Bad_ttl reported) ->
        Alcotest.(check int) "reported ttl" ttl reported
      | Error e -> Alcotest.failf "ttl=%d wrong error %a" ttl H.pp_error e
      | Ok _ -> Alcotest.failf "ttl=%d accepted" ttl)
    [ -1; 256; 1000; -256 ]

let test_header_ttl_corruption_detected () =
  (* the ttl byte is under the checksum: a corrupted ttl must not decode *)
  let bytes = Result.get_ok (H.encode (H.make ~ttl:128 (Z.of_int 660))) in
  List.iter
    (fun bit ->
      let corrupted = Bytes.of_string bytes in
      Bytes.set corrupted 1
        (Char.chr (Char.code (Bytes.get corrupted 1) lxor (1 lsl bit)));
      match H.decode (Bytes.to_string corrupted) with
      | Error H.Bad_checksum -> ()
      | Error e -> Alcotest.failf "bit %d: wrong error %a" bit H.pp_error e
      | Ok (h, _) -> Alcotest.failf "bit %d: decoded with ttl %d" bit h.H.ttl)
    [ 0; 3; 7 ]

let test_checksum_rfc1071 () =
  (* the classic RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2,
     checksum = complement = 220d *)
  let s = "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  Alcotest.(check int) "rfc1071 example" 0x220d (H.checksum s)

(* --- header: properties --- *)

let gen_route =
  QCheck2.Gen.(
    let* words = 1 -- 8 in
    let* parts = list_size (pure words) (map Int64.abs int64) in
    pure
      (List.fold_left
         (fun acc p ->
           Z.add (Z.shift_left acc 32)
             (Z.of_int (Int64.to_int (Int64.logand p 0xFFFFFFFFL))))
         Z.zero parts))

let prop_roundtrip =
  qtest "encode/decode roundtrip with trailing payload"
    QCheck2.Gen.(pair gen_route (0 -- 255))
    (fun (rid, ttl) ->
      match H.encode (H.make ~ttl rid) with
      | Error _ -> false
      | Ok bytes ->
        (* decoding must also work with payload appended *)
        (match H.decode (bytes ^ "payload-bytes") with
         | Ok (h, consumed) ->
           consumed = String.length bytes
           && h.H.ttl = ttl
           && Z.equal h.H.route_id rid
         | Error _ -> false))

let prop_bitflip_detected =
  qtest ~count:300 "any single bit flip is detected or changes nothing"
    QCheck2.Gen.(pair gen_route (0 -- 200))
    (fun (rid, flip) ->
      match H.encode (H.make ~ttl:7 rid) with
      | Error _ -> false
      | Ok bytes ->
        let bit = flip mod (8 * String.length bytes) in
        let corrupted = Bytes.of_string bytes in
        let i = bit / 8 in
        Bytes.set corrupted i
          (Char.chr (Char.code (Bytes.get corrupted i) lxor (1 lsl (bit mod 8))));
        (match H.decode (Bytes.to_string corrupted) with
         | Error _ -> true (* rejected: good *)
         | Ok (h, _) ->
           (* a flip in the ttl byte changes only the ttl (not covered by a
              dedicated integrity goal? it IS covered by the checksum) —
              anything decoded must not silently change the route id *)
           Z.equal h.H.route_id rid))

(* --- serial: topology files --- *)

let graphs_equal g1 g2 =
  Topo.Graph.n_nodes g1 = Topo.Graph.n_nodes g2
  && Topo.Graph.n_links g1 = Topo.Graph.n_links g2
  && List.for_all2
       (fun (a : Topo.Graph.link) (b : Topo.Graph.link) ->
         a.Topo.Graph.ep0 = b.Topo.Graph.ep0
         && a.Topo.Graph.ep1 = b.Topo.Graph.ep1
         && a.Topo.Graph.rate_bps = b.Topo.Graph.rate_bps
         && a.Topo.Graph.delay_s = b.Topo.Graph.delay_s)
       (Topo.Graph.links g1) (Topo.Graph.links g2)
  && List.for_all
       (fun v ->
         Topo.Graph.label g1 v = Topo.Graph.label g2 v
         && Topo.Graph.kind g1 v = Topo.Graph.kind g2 v)
       (List.init (Topo.Graph.n_nodes g1) (fun i -> i))

let test_serial_roundtrip_paper_nets () =
  List.iter
    (fun (name, sc) ->
      let g = sc.Topo.Nets.graph in
      match Topo.Serial.of_string (Topo.Serial.to_string g) with
      | Ok g' -> Alcotest.(check bool) name true (graphs_equal g g')
      | Error e -> Alcotest.failf "%s: %a" name Topo.Serial.pp_error e)
    [ ("fig1", Topo.Nets.fig1_six); ("net15", Topo.Nets.net15);
      ("rnp28", Topo.Nets.rnp28) ]

let test_serial_comments_and_blank_lines () =
  let text =
    "# a comment\n\nnode 3 core\nnode 5 core # trailing comment\n\nlink 3:0 5:0\n"
  in
  match Topo.Serial.of_string text with
  | Ok g ->
    Alcotest.(check int) "two nodes" 2 (Topo.Graph.n_nodes g);
    Alcotest.(check int) "one link" 1 (Topo.Graph.n_links g)
  | Error e -> Alcotest.failf "%a" Topo.Serial.pp_error e

let expect_error text fragment =
  match Topo.Serial.of_string text with
  | Ok _ -> Alcotest.failf "expected a parse error mentioning %S" fragment
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "error mentions %S (got %S)" fragment e.Topo.Serial.message)
      true
      (Astring.String.is_infix ~affix:fragment e.Topo.Serial.message)

let test_serial_errors () =
  expect_error "node 3 core\nnode 3 edge\n" "duplicate";
  expect_error "frobnicate 1 2\n" "unknown record";
  expect_error "node 3 core\nlink 3:0 9:0\n" "unknown node";
  expect_error "node 3 blue\n" "unknown node kind";
  expect_error "node 3 core\nnode 5 core\nlink 3:zero 5:0\n" "bad endpoint";
  (* sparse ports are a finish-time error reported at line 0 *)
  match Topo.Serial.of_string "node 3 core\nnode 5 core\nlink 3:4 5:0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sparse ports accepted"

let prop_serial_roundtrip_generated =
  qtest ~count:30 "generated topologies round-trip"
    QCheck2.Gen.(1 -- 1000)
    (fun seed ->
      let g = Topo.Gen.gnp ~n:14 ~p:0.25 ~seed in
      match Topo.Serial.of_string (Topo.Serial.to_string g) with
      | Ok g' -> graphs_equal g g'
      | Error _ -> false)

(* decoders must be total: random bytes are rejected or parsed, never a
   crash *)
let prop_decode_total =
  qtest ~count:1000 "Header.decode never raises on random bytes"
    QCheck2.Gen.(string_size ~gen:char (0 -- 64))
    (fun s ->
      match H.decode s with
      | Ok _ | Error _ -> true)

let prop_serial_total =
  qtest ~count:300 "Serial.of_string never raises on random text"
    QCheck2.Gen.(string_size ~gen:printable (0 -- 200))
    (fun s ->
      match Topo.Serial.of_string s with
      | Ok _ | Error _ -> true)

(* --- flat packet image --- *)

module F = Wire.Flat
module Packet = Netsim.Packet

let stamp_all b ~uid ~src ~dst ~size_bytes ~route_id ~hops ~reencoded
    ~deflected =
  F.stamp b ~uid ~src ~dst ~size_bytes ~route_id;
  F.set_hops b hops;
  F.set_reencoded b reencoded;
  F.set_deflected b deflected

let test_flat_roundtrip_known () =
  let b = F.create () in
  Alcotest.(check bool) "fresh image not live" false (F.live b);
  Alcotest.(check int) "fresh image zero limbs" 0 (F.limbs b);
  List.iter
    (fun (uid, src, dst, size_bytes, rid) ->
      let route_id = Z.of_string rid in
      F.stamp b ~uid ~src ~dst ~size_bytes ~route_id;
      Alcotest.(check int) "uid" uid (F.uid b);
      Alcotest.(check int) "src" src (F.src b);
      Alcotest.(check int) "dst" dst (F.dst b);
      Alcotest.(check int) "size" size_bytes (F.size_bytes b);
      Alcotest.(check string) "route id" rid (Z.to_string (F.route_id b));
      Alcotest.(check int) "hops cleared" 0 (F.hops b);
      Alcotest.(check int) "reencoded cleared" 0 (F.reencoded b);
      Alcotest.(check bool) "deflected cleared" false (F.deflected b);
      Alcotest.(check bool) "live after stamp" true (F.live b);
      Alcotest.(check int) "wire version" H.current_version (F.version b);
      Alcotest.(check bool) "route_id_equal self" true
        (F.route_id_equal b route_id);
      Alcotest.(check bool) "route_id_equal other" false
        (F.route_id_equal b (Z.add route_id Z.one)))
    [ (0, 0, 0, 0, "0");
      (7, 1, 5, 512, "44");
      (max_int, 0xFFFF_FFFF, 0xFFFF_FFFF, 0xFFFF_FFFF, "660");
      (42, 1001, 1003, 1500, "340282366920938463463374607431768211455") ]

let test_flat_field_edges () =
  (* hops/reencoded are u16 counters, deflected is a flag bit next to live:
     each must round-trip at both ends without disturbing its neighbours *)
  let b = F.create () in
  let rid = Z.of_string "4409424109091" in
  F.stamp b ~uid:9 ~src:2 ~dst:3 ~size_bytes:64 ~route_id:rid;
  List.iter
    (fun v ->
      F.set_hops b v;
      Alcotest.(check int) (Printf.sprintf "hops %d" v) v (F.hops b))
    [ 0; 1; 255; 256; 65535 ];
  List.iter
    (fun v ->
      F.set_reencoded b v;
      Alcotest.(check int) (Printf.sprintf "reencoded %d" v) v (F.reencoded b))
    [ 0; 1; 65535 ];
  F.set_deflected b true;
  Alcotest.(check bool) "deflected set" true (F.deflected b);
  Alcotest.(check bool) "live undisturbed" true (F.live b);
  F.set_live b false;
  Alcotest.(check bool) "deflected undisturbed" true (F.deflected b);
  F.set_deflected b false;
  Alcotest.(check bool) "deflected cleared" false (F.deflected b);
  Alcotest.(check string) "route id undisturbed by flag churn"
    "4409424109091" (Z.to_string (F.route_id b))

let test_flat_rejects_oversize () =
  let b = F.create () in
  (match F.set_route_id b (Z.pow Z.two 1000) with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "oversize route id accepted");
  match F.set_route_id b (Z.of_int (-5)) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative route id accepted"

(* random route IDs across the full width range, weighted to include the
   992-bit maximum (32 limbs) the image can hold *)
let gen_route_wide =
  QCheck2.Gen.(
    let* limbs = 1 -- 32 in
    let* full_width = bool in
    let* parts = list_size (pure limbs) (map Int64.abs int64) in
    (* fold MSB-first; when asked, pin the top limb's high bit so max-width
       (992-bit, 32-limb) images are exercised without overflowing them *)
    let z =
      List.fold_left
        (fun (acc, first) p ->
          let limb = Int64.to_int (Int64.logand p 0x7FFFFFFFL) in
          let limb =
            if first && full_width then limb lor 0x4000_0000 else limb
          in
          (Z.add (Z.shift_left acc 31) (Z.of_int limb), false))
        (Z.zero, true) parts
      |> fst
    in
    pure z)

let prop_flat_roundtrip =
  qtest ~count:300 "flat image round-trips every field"
    QCheck2.Gen.(
      tup4 gen_route_wide (0 -- 0xFFFF) (0 -- 65535) (pair bool (0 -- 1000)))
    (fun (rid, src, hops, (deflected, uid)) ->
      let b = F.create () in
      stamp_all b ~uid ~src ~dst:(src + 1) ~size_bytes:1500 ~route_id:rid
        ~hops ~reencoded:(hops lsr 4) ~deflected;
      F.uid b = uid && F.src b = src
      && F.dst b = src + 1
      && F.size_bytes b = 1500 && F.hops b = hops
      && F.reencoded b = hops lsr 4
      && F.deflected b = deflected
      && Z.equal (F.route_id b) rid
      && F.route_id_equal b rid
      && F.rem_route_id b 13 = Z.rem_int rid 13)

(* the Packet record wraps the image: its accessors and the raw image must
   never disagree *)
let prop_packet_accessors_match_flat =
  qtest ~count:200 "Packet accessors agree with the underlying image"
    QCheck2.Gen.(pair gen_route_wide (1 -- 1_000_000))
    (fun (rid, uid) ->
      let p =
        Packet.make ~uid ~src:3 ~dst:9 ~size_bytes:256 ~route_id:rid
          ~born:0.25 Packet.Raw
      in
      Packet.set_hops p 7;
      Packet.set_reencoded p 2;
      Packet.set_deflected p true;
      let b = Packet.bytes p in
      Packet.uid p = F.uid b && Packet.src p = F.src b
      && Packet.dst p = F.dst b
      && Packet.size_bytes p = F.size_bytes b
      && Packet.hops p = F.hops b
      && Packet.reencoded p = F.reencoded b
      && Packet.deflected p = F.deflected b
      && Z.equal (Packet.route_id p) (F.route_id b)
      && Packet.born p = 0.25)

(* --- flat vs record forwarding: the data plane must be indistinguishable —
   same computed port, same packed decision, same PRNG stream — for every
   net15 core switch, every port-liveness mask, every policy *)

let test_flat_vs_record_decide () =
  let sc = Topo.Nets.net15 in
  let g = sc.Topo.Nets.graph in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Full in
  let other = Z.add plan.Kar.Route.route_id Z.one in
  let b = F.create () in
  List.iter
    (fun (r : Rns.residue) ->
      let sw = r.Rns.modulus in
      let v = Topo.Graph.node_of_label g sw in
      let degree = Topo.Graph.degree g v in
      List.iter
        (fun route_id ->
          F.stamp b ~uid:1 ~src:0 ~dst:1 ~size_bytes:64 ~route_id;
          Alcotest.(check int)
            (Printf.sprintf "computed_port SW%d" sw)
            (Kar.Policy.computed_port ~switch_id:sw ~route_id)
            (Kar.Policy.computed_port_flat ~switch_id:sw b);
          Alcotest.(check int)
            (Printf.sprintf "cached_port SW%d" sw)
            (Kar.Route.cached_port plan ~route_id ~switch_id:sw)
            (Kar.Route.cached_port_flat plan b ~switch_id:sw);
          let computed_rec =
            Kar.Route.cached_port plan ~route_id ~switch_id:sw
          in
          let computed_flat = Kar.Route.cached_port_flat plan b ~switch_id:sw in
          for mask = 0 to (1 lsl degree) - 1 do
            let ports =
              Array.init degree (fun p ->
                  let far =
                    (Topo.Graph.other_end (Topo.Graph.link_at g v p) v)
                      .Topo.Graph.node
                  in
                  {
                    Kar.Policy.up = mask land (1 lsl p) <> 0;
                    to_host = not (Topo.Graph.is_core g far);
                  })
            in
            List.iter
              (fun policy ->
                List.iter
                  (fun deflected ->
                    let seed = (sw * 7919) + (mask * 31) + 1 in
                    let rng_rec = Util.Prng.of_int seed in
                    let rng_flat = Util.Prng.of_int seed in
                    let d_rec =
                      Kar.Policy.decide policy ~computed:computed_rec
                        ~in_port:0 ~deflected ~ports rng_rec
                    in
                    let d_flat =
                      Kar.Policy.decide policy ~computed:computed_flat
                        ~in_port:0 ~deflected ~ports rng_flat
                    in
                    if d_rec <> d_flat then
                      Alcotest.failf
                        "SW%d mask %#x policy %s deflected %b: record %d, \
                         flat %d"
                        sw mask
                        (Kar.Policy.to_string policy)
                        deflected d_rec d_flat;
                    (* the PRNG streams must stay draw-for-draw aligned *)
                    if Util.Prng.next rng_rec <> Util.Prng.next rng_flat then
                      Alcotest.failf
                        "SW%d mask %#x policy %s: PRNG streams diverged" sw
                        mask
                        (Kar.Policy.to_string policy))
                  [ false; true ])
              Kar.Policy.all
          done)
        [ plan.Kar.Route.route_id; other ])
    plan.Kar.Route.residues

(* The acceptance bar of this layer: a whole steady-state simulated packet
   — pool acquire, stamp, four hop decisions off the limb view, release —
   touches the minor heap not at all once the pool is warm.  (The bench
   gauge gc/forward-minor-words-per-packet reports the same quantity;
   this pins it in the suite.) *)
let test_flat_packet_zero_alloc () =
  let sc = Topo.Nets.net15 in
  let g = sc.Topo.Nets.graph in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Full in
  let route_id = plan.Kar.Route.route_id in
  let v13 = Topo.Graph.node_of_label g 13 in
  let ports =
    Array.init (Topo.Graph.degree g v13) (fun p ->
        let far =
          (Topo.Graph.other_end (Topo.Graph.link_at g v13 p) v13)
            .Topo.Graph.node
        in
        { Kar.Policy.up = true; to_host = not (Topo.Graph.is_core g far) })
  in
  let rng = Util.Prng.of_int 9 in
  let pool = Packet.Pool.create () in
  let born = Sys.opaque_identity 0.0 in
  let packet_round i =
    let p = Packet.Pool.acquire pool in
    Packet.stamp p ~uid:i ~src:1 ~dst:5 ~size_bytes:512 ~route_id ~born
      Packet.Raw;
    let b = Packet.bytes p in
    for hop = 0 to 3 do
      Packet.set_hops p hop;
      let c = Kar.Route.cached_port_flat plan b ~switch_id:13 in
      ignore
        (Sys.opaque_identity
           (Kar.Policy.decide Kar.Policy.Not_input_port ~computed:c
              ~in_port:0 ~deflected:false ~ports rng))
    done;
    Packet.Pool.release pool p
  in
  for i = 1 to 100 do packet_round i done;
  let iters = 100_000 in
  let w0 = Gc.minor_words () in
  for i = 1 to iters do packet_round i done;
  let delta = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f minor words over %d packets" delta iters)
    true (delta <= 256.0)

let () =
  Alcotest.run "wire"
    [
      ( "header",
        [
          Alcotest.test_case "roundtrip (known values)" `Quick test_header_roundtrip_known;
          Alcotest.test_case "sizes" `Quick test_header_sizes;
          Alcotest.test_case "oversize rejected" `Quick test_header_rejects_oversize;
          Alcotest.test_case "negative rejected" `Quick test_header_rejects_negative;
          Alcotest.test_case "truncation rejected" `Quick test_header_rejects_truncation;
          Alcotest.test_case "corruption detected" `Quick test_header_detects_corruption;
          Alcotest.test_case "bad version rejected" `Quick test_header_bad_version;
          Alcotest.test_case "ttl boundaries round-trip" `Quick test_header_ttl_boundaries;
          Alcotest.test_case "out-of-range ttl rejected" `Quick test_header_bad_ttl;
          Alcotest.test_case "ttl corruption detected" `Quick
            test_header_ttl_corruption_detected;
          Alcotest.test_case "RFC 1071 checksum" `Quick test_checksum_rfc1071;
          prop_roundtrip; prop_bitflip_detected; prop_decode_total;
        ] );
      ( "serial",
        [
          Alcotest.test_case "paper topologies round-trip" `Quick
            test_serial_roundtrip_paper_nets;
          Alcotest.test_case "comments and blanks" `Quick test_serial_comments_and_blank_lines;
          Alcotest.test_case "parse errors" `Quick test_serial_errors;
          prop_serial_roundtrip_generated; prop_serial_total;
        ] );
      ( "flat",
        [
          Alcotest.test_case "roundtrip (known values)" `Quick
            test_flat_roundtrip_known;
          Alcotest.test_case "counter and flag edges" `Quick
            test_flat_field_edges;
          Alcotest.test_case "oversize/negative rejected" `Quick
            test_flat_rejects_oversize;
          prop_flat_roundtrip;
          prop_packet_accessors_match_flat;
          Alcotest.test_case
            "flat vs record: every switch x mask x policy" `Quick
            test_flat_vs_record_decide;
          Alcotest.test_case "whole packet allocates nothing" `Quick
            test_flat_packet_zero_alloc;
        ] );
    ]
