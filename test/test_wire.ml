(* Tests for the wire codec (the KAR packet header) and the topology file
   format — both must round-trip exactly, and both must reject corruption
   rather than mis-forward. *)

module Z = Bignum.Z
module H = Wire.Header

let qtest ?(count = 500) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* --- header: unit --- *)

let test_header_roundtrip_known () =
  List.iter
    (fun (rid, ttl) ->
      let h = H.make ~ttl (Z.of_string rid) in
      match H.encode h with
      | Error e -> Alcotest.failf "encode: %a" H.pp_error e
      | Ok bytes ->
        (match H.decode bytes with
         | Error e -> Alcotest.failf "decode: %a" H.pp_error e
         | Ok (h', consumed) ->
           Alcotest.(check int) "consumed all" (String.length bytes) consumed;
           Alcotest.(check int) "ttl" ttl h'.H.ttl;
           Alcotest.(check string) "route id" rid (Z.to_string h'.H.route_id)))
    [ ("0", 0); ("44", 64); ("660", 1); ("4409424109091", 255);
      ("340282366920938463463374607431768211455", 17) ]

let test_header_sizes () =
  let size rid =
    match H.encoded_size (H.make ~ttl:64 (Z.of_string rid)) with
    | Ok n -> n
    | Error e -> Alcotest.failf "%a" H.pp_error e
  in
  Alcotest.(check int) "small id: 1 word" 8 (size "44");
  Alcotest.(check int) "43-bit id: 2 words" 12 (size "4409424109091");
  Alcotest.(check int) "zero" 8 (size "0")

let test_header_rejects_oversize () =
  let huge = Z.pow Z.two 1000 in
  match H.encode (H.make ~ttl:1 huge) with
  | Error (H.Route_id_too_large _) -> ()
  | Error e -> Alcotest.failf "wrong error %a" H.pp_error e
  | Ok _ -> Alcotest.fail "expected rejection"

let test_header_rejects_negative () =
  match H.encode (H.make ~ttl:1 (Z.of_int (-5))) with
  | Error H.Negative_route_id -> ()
  | Error e -> Alcotest.failf "wrong error %a" H.pp_error e
  | Ok _ -> Alcotest.fail "expected rejection"

let test_header_rejects_truncation () =
  let bytes = Result.get_ok (H.encode (H.make ~ttl:9 (Z.of_int 660))) in
  match H.decode (String.sub bytes 0 (String.length bytes - 1)) with
  | Error (H.Truncated _) -> ()
  | Error e -> Alcotest.failf "wrong error %a" H.pp_error e
  | Ok _ -> Alcotest.fail "expected truncation error"

let test_header_detects_corruption () =
  let bytes = Result.get_ok (H.encode (H.make ~ttl:9 (Z.of_int 660))) in
  (* flip one bit of the route-ID area: checksum must catch it *)
  let corrupted = Bytes.of_string bytes in
  Bytes.set corrupted 6 (Char.chr (Char.code (Bytes.get corrupted 6) lxor 0x10));
  match H.decode (Bytes.to_string corrupted) with
  | Error H.Bad_checksum -> ()
  | Error e -> Alcotest.failf "wrong error %a" H.pp_error e
  | Ok _ -> Alcotest.fail "corruption slipped through"

let test_header_bad_version () =
  let bytes = Result.get_ok (H.encode (H.make ~ttl:9 (Z.of_int 44))) in
  let tweaked = Bytes.of_string bytes in
  Bytes.set tweaked 0 (Char.chr ((3 lsl 5) lor (Char.code (Bytes.get tweaked 0) land 0x1F)));
  match H.decode (Bytes.to_string tweaked) with
  | Error (H.Bad_version 3) -> ()
  | Error e -> Alcotest.failf "wrong error %a" H.pp_error e
  | Ok _ -> Alcotest.fail "expected version rejection"

let test_header_ttl_boundaries () =
  (* both ends of the ttl field must round-trip exactly *)
  List.iter
    (fun ttl ->
      match H.encode (H.make ~ttl (Z.of_int 660)) with
      | Error e -> Alcotest.failf "encode ttl=%d: %a" ttl H.pp_error e
      | Ok bytes ->
        (match H.decode bytes with
         | Ok (h, _) -> Alcotest.(check int) (Printf.sprintf "ttl %d" ttl) ttl h.H.ttl
         | Error e -> Alcotest.failf "decode ttl=%d: %a" ttl H.pp_error e))
    [ 0; 1; 254; 255 ]

let test_header_bad_ttl () =
  List.iter
    (fun ttl ->
      match H.encode (H.make ~ttl (Z.of_int 44)) with
      | Error (H.Bad_ttl reported) ->
        Alcotest.(check int) "reported ttl" ttl reported
      | Error e -> Alcotest.failf "ttl=%d wrong error %a" ttl H.pp_error e
      | Ok _ -> Alcotest.failf "ttl=%d accepted" ttl)
    [ -1; 256; 1000; -256 ]

let test_header_ttl_corruption_detected () =
  (* the ttl byte is under the checksum: a corrupted ttl must not decode *)
  let bytes = Result.get_ok (H.encode (H.make ~ttl:128 (Z.of_int 660))) in
  List.iter
    (fun bit ->
      let corrupted = Bytes.of_string bytes in
      Bytes.set corrupted 1
        (Char.chr (Char.code (Bytes.get corrupted 1) lxor (1 lsl bit)));
      match H.decode (Bytes.to_string corrupted) with
      | Error H.Bad_checksum -> ()
      | Error e -> Alcotest.failf "bit %d: wrong error %a" bit H.pp_error e
      | Ok (h, _) -> Alcotest.failf "bit %d: decoded with ttl %d" bit h.H.ttl)
    [ 0; 3; 7 ]

let test_checksum_rfc1071 () =
  (* the classic RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2,
     checksum = complement = 220d *)
  let s = "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  Alcotest.(check int) "rfc1071 example" 0x220d (H.checksum s)

(* --- header: properties --- *)

let gen_route =
  QCheck2.Gen.(
    let* words = 1 -- 8 in
    let* parts = list_size (pure words) (map Int64.abs int64) in
    pure
      (List.fold_left
         (fun acc p ->
           Z.add (Z.shift_left acc 32)
             (Z.of_int (Int64.to_int (Int64.logand p 0xFFFFFFFFL))))
         Z.zero parts))

let prop_roundtrip =
  qtest "encode/decode roundtrip with trailing payload"
    QCheck2.Gen.(pair gen_route (0 -- 255))
    (fun (rid, ttl) ->
      match H.encode (H.make ~ttl rid) with
      | Error _ -> false
      | Ok bytes ->
        (* decoding must also work with payload appended *)
        (match H.decode (bytes ^ "payload-bytes") with
         | Ok (h, consumed) ->
           consumed = String.length bytes
           && h.H.ttl = ttl
           && Z.equal h.H.route_id rid
         | Error _ -> false))

let prop_bitflip_detected =
  qtest ~count:300 "any single bit flip is detected or changes nothing"
    QCheck2.Gen.(pair gen_route (0 -- 200))
    (fun (rid, flip) ->
      match H.encode (H.make ~ttl:7 rid) with
      | Error _ -> false
      | Ok bytes ->
        let bit = flip mod (8 * String.length bytes) in
        let corrupted = Bytes.of_string bytes in
        let i = bit / 8 in
        Bytes.set corrupted i
          (Char.chr (Char.code (Bytes.get corrupted i) lxor (1 lsl (bit mod 8))));
        (match H.decode (Bytes.to_string corrupted) with
         | Error _ -> true (* rejected: good *)
         | Ok (h, _) ->
           (* a flip in the ttl byte changes only the ttl (not covered by a
              dedicated integrity goal? it IS covered by the checksum) —
              anything decoded must not silently change the route id *)
           Z.equal h.H.route_id rid))

(* --- serial: topology files --- *)

let graphs_equal g1 g2 =
  Topo.Graph.n_nodes g1 = Topo.Graph.n_nodes g2
  && Topo.Graph.n_links g1 = Topo.Graph.n_links g2
  && List.for_all2
       (fun (a : Topo.Graph.link) (b : Topo.Graph.link) ->
         a.Topo.Graph.ep0 = b.Topo.Graph.ep0
         && a.Topo.Graph.ep1 = b.Topo.Graph.ep1
         && a.Topo.Graph.rate_bps = b.Topo.Graph.rate_bps
         && a.Topo.Graph.delay_s = b.Topo.Graph.delay_s)
       (Topo.Graph.links g1) (Topo.Graph.links g2)
  && List.for_all
       (fun v ->
         Topo.Graph.label g1 v = Topo.Graph.label g2 v
         && Topo.Graph.kind g1 v = Topo.Graph.kind g2 v)
       (List.init (Topo.Graph.n_nodes g1) (fun i -> i))

let test_serial_roundtrip_paper_nets () =
  List.iter
    (fun (name, sc) ->
      let g = sc.Topo.Nets.graph in
      match Topo.Serial.of_string (Topo.Serial.to_string g) with
      | Ok g' -> Alcotest.(check bool) name true (graphs_equal g g')
      | Error e -> Alcotest.failf "%s: %a" name Topo.Serial.pp_error e)
    [ ("fig1", Topo.Nets.fig1_six); ("net15", Topo.Nets.net15);
      ("rnp28", Topo.Nets.rnp28) ]

let test_serial_comments_and_blank_lines () =
  let text =
    "# a comment\n\nnode 3 core\nnode 5 core # trailing comment\n\nlink 3:0 5:0\n"
  in
  match Topo.Serial.of_string text with
  | Ok g ->
    Alcotest.(check int) "two nodes" 2 (Topo.Graph.n_nodes g);
    Alcotest.(check int) "one link" 1 (Topo.Graph.n_links g)
  | Error e -> Alcotest.failf "%a" Topo.Serial.pp_error e

let expect_error text fragment =
  match Topo.Serial.of_string text with
  | Ok _ -> Alcotest.failf "expected a parse error mentioning %S" fragment
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "error mentions %S (got %S)" fragment e.Topo.Serial.message)
      true
      (Astring.String.is_infix ~affix:fragment e.Topo.Serial.message)

let test_serial_errors () =
  expect_error "node 3 core\nnode 3 edge\n" "duplicate";
  expect_error "frobnicate 1 2\n" "unknown record";
  expect_error "node 3 core\nlink 3:0 9:0\n" "unknown node";
  expect_error "node 3 blue\n" "unknown node kind";
  expect_error "node 3 core\nnode 5 core\nlink 3:zero 5:0\n" "bad endpoint";
  (* sparse ports are a finish-time error reported at line 0 *)
  match Topo.Serial.of_string "node 3 core\nnode 5 core\nlink 3:4 5:0\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sparse ports accepted"

let prop_serial_roundtrip_generated =
  qtest ~count:30 "generated topologies round-trip"
    QCheck2.Gen.(1 -- 1000)
    (fun seed ->
      let g = Topo.Gen.gnp ~n:14 ~p:0.25 ~seed in
      match Topo.Serial.of_string (Topo.Serial.to_string g) with
      | Ok g' -> graphs_equal g g'
      | Error _ -> false)

(* decoders must be total: random bytes are rejected or parsed, never a
   crash *)
let prop_decode_total =
  qtest ~count:1000 "Header.decode never raises on random bytes"
    QCheck2.Gen.(string_size ~gen:char (0 -- 64))
    (fun s ->
      match H.decode s with
      | Ok _ | Error _ -> true)

let prop_serial_total =
  qtest ~count:300 "Serial.of_string never raises on random text"
    QCheck2.Gen.(string_size ~gen:printable (0 -- 200))
    (fun s ->
      match Topo.Serial.of_string s with
      | Ok _ | Error _ -> true)

let () =
  Alcotest.run "wire"
    [
      ( "header",
        [
          Alcotest.test_case "roundtrip (known values)" `Quick test_header_roundtrip_known;
          Alcotest.test_case "sizes" `Quick test_header_sizes;
          Alcotest.test_case "oversize rejected" `Quick test_header_rejects_oversize;
          Alcotest.test_case "negative rejected" `Quick test_header_rejects_negative;
          Alcotest.test_case "truncation rejected" `Quick test_header_rejects_truncation;
          Alcotest.test_case "corruption detected" `Quick test_header_detects_corruption;
          Alcotest.test_case "bad version rejected" `Quick test_header_bad_version;
          Alcotest.test_case "ttl boundaries round-trip" `Quick test_header_ttl_boundaries;
          Alcotest.test_case "out-of-range ttl rejected" `Quick test_header_bad_ttl;
          Alcotest.test_case "ttl corruption detected" `Quick
            test_header_ttl_corruption_detected;
          Alcotest.test_case "RFC 1071 checksum" `Quick test_checksum_rfc1071;
          prop_roundtrip; prop_bitflip_detected; prop_decode_total;
        ] );
      ( "serial",
        [
          Alcotest.test_case "paper topologies round-trip" `Quick
            test_serial_roundtrip_paper_nets;
          Alcotest.test_case "comments and blanks" `Quick test_serial_comments_and_blank_lines;
          Alcotest.test_case "parse errors" `Quick test_serial_errors;
          prop_serial_roundtrip_generated; prop_serial_total;
        ] );
    ]
