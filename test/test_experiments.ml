(* Integration tests for the experiment harness: the paper-anchored facts
   every reproduction must preserve (Table 1's exact bit lengths, the
   worked example's route IDs, the exact deflection analyses behind the
   Fig. 7/8 narratives, and the Table 2 statelessness evidence), plus
   structural checks on the rendered outputs. *)

let contains ~affix s = Astring.String.is_infix ~affix s

(* --- fig1 --- *)

let test_fig1_values () =
  let r = Experiments.Fig1.run () in
  Alcotest.(check string) "R primary" "44" (Bignum.Z.to_string r.Experiments.Fig1.primary_route_id);
  Alcotest.(check string) "M primary" "308" (Bignum.Z.to_string r.Experiments.Fig1.primary_modulus);
  Alcotest.(check string) "R protected" "660" (Bignum.Z.to_string r.Experiments.Fig1.protected_route_id);
  Alcotest.(check string) "M protected" "1540" (Bignum.Z.to_string r.Experiments.Fig1.protected_modulus);
  Alcotest.(check (list int)) "ports" [ 0; 2; 0; 0 ] r.Experiments.Fig1.ports_of_660;
  Alcotest.(check int) "3 hops healthy" 3 r.Experiments.Fig1.healthy_hops;
  Alcotest.(check (float 1e-6)) "delivery 1.0 under failure" 1.0
    r.Experiments.Fig1.deflected_delivery;
  (* S->4->7->5->11->D: exactly one extra switch *)
  Alcotest.(check (float 1e-6)) "4 hops deflected" 4.0 r.Experiments.Fig1.deflected_hops

(* --- table 1 --- *)

let test_table1_matches_paper () =
  List.iter2
    (fun row (mech, bits, switches) ->
      Alcotest.(check string) "mechanism" mech row.Experiments.Table1.mechanism;
      Alcotest.(check int) "bits" bits row.Experiments.Table1.bit_length;
      Alcotest.(check int) "switches" switches row.Experiments.Table1.switches_in_route_id)
    (Experiments.Table1.rows ())
    Experiments.Table1.paper_values

let test_table1_rendering () =
  let s = Experiments.Table1.to_string () in
  List.iter
    (fun affix -> Alcotest.(check bool) affix true (contains ~affix s))
    [ "Unprotected"; "Partial protection"; "Full protection"; "15"; "28"; "43" ]

(* --- table 2 --- *)

let test_table2_matrix_matches_paper () =
  let kar = List.find (fun r -> r.Experiments.Table2.scheme = "KAR") Experiments.Table2.matrix in
  Alcotest.(check string) "multiple failures" "Yes" kar.Experiments.Table2.multiple_failures;
  Alcotest.(check string) "source routing" "Yes" kar.Experiments.Table2.source_routing;
  Alcotest.(check string) "stateless" "Stateless" kar.Experiments.Table2.core_state;
  Alcotest.(check int) "eight schemes" 8 (List.length Experiments.Table2.matrix)

let test_table2_evidence () =
  let e = Experiments.Table2.measure () in
  Alcotest.(check int) "KAR needs no core state" 0 e.Experiments.Table2.kar_table_entries;
  Alcotest.(check bool) "baseline needs state" true (e.Experiments.Table2.ff_table_entries > 0);
  Alcotest.(check bool) "sweep nonempty" true (e.Experiments.Table2.pairs_considered > 100);
  (* KAR must survive at least as many double failures as the single-backup
     baseline, and survive all of them on net15 *)
  Alcotest.(check int) "KAR survives all pairs" e.Experiments.Table2.pairs_considered
    e.Experiments.Table2.kar_survives;
  Alcotest.(check bool) "baseline misses some" true
    (e.Experiments.Table2.ff_survives <= e.Experiments.Table2.kar_survives)

(* --- the exact analyses behind fig 7 / fig 8 --- *)

let test_fig7_analysis_narrative () =
  let sc = Topo.Nets.rnp28 in
  let plan = Kar.Controller.scenario_plan sc Kar.Controller.Partial in
  let analyze fc_name =
    let fc = List.find (fun fc -> fc.Topo.Nets.name = fc_name) sc.Topo.Nets.failures in
    Kar.Markov.analyze sc.Topo.Nets.graph ~plan ~policy:Kar.Policy.Not_input_port
      ~failed:[ fc.Topo.Nets.link ] ~src:sc.Topo.Nets.ingress ~dst:sc.Topo.Nets.egress
  in
  (* SW7-SW13: deterministic detour, exactly one extra hop *)
  let a = analyze "SW7-SW13" in
  Alcotest.(check (float 1e-9)) "deterministic delivery" 1.0 a.Kar.Markov.p_delivered;
  Alcotest.(check (float 1e-6)) "5 hops (one extra)" 5.0 a.Kar.Markov.expected_hops_delivered;
  (* SW13-SW41: 2 of 5 alternatives driven; longest expected walk *)
  let b = analyze "SW13-SW41" in
  Alcotest.(check bool) "some re-encodes" true (b.Kar.Markov.p_stranded > 0.0);
  Alcotest.(check bool) "longest expected walk" true
    (b.Kar.Markov.expected_hops_delivered > a.Kar.Markov.expected_hops_delivered);
  (* SW41-SW73: both alternatives driven -> still delivery 1.0 *)
  let c = analyze "SW41-SW73" in
  Alcotest.(check (float 1e-9)) "both driven" 1.0 c.Kar.Markov.p_delivered;
  Alcotest.(check (float 1e-6)) "6.5 hops (5 or 7, 50/50, one visit)" 6.5
    c.Kar.Markov.expected_hops_delivered

let test_fig8_geometric_loop () =
  let r = Experiments.Fig8.run ~profile:{ Experiments.Profile.quick with
                                          Experiments.Profile.iperf_reps = 2;
                                          iperf_duration_s = 1.0;
                                          walk_trials = 5000 } () in
  (* escape probability 1/2 per visit, 4 hops per loop: E[hops] = 6 + 4 = 10 *)
  Alcotest.(check (float 0.01)) "E[hops] = 10" 10.0
    r.Experiments.Fig8.analysis.Kar.Markov.expected_hops_delivered;
  Alcotest.(check (float 1e-6)) "always delivered" 1.0
    r.Experiments.Fig8.analysis.Kar.Markov.p_delivered;
  (* histogram: mass at 6, 10, 14, ... and roughly halving *)
  let h = r.Experiments.Fig8.loop_hops_histogram in
  Alcotest.(check bool) "mass at 6" true (h.(6) > 0);
  Alcotest.(check bool) "mass at 10" true (h.(10) > 0);
  Alcotest.(check int) "nothing at 7" 0 h.(7);
  Alcotest.(check int) "nothing at 8" 0 h.(8);
  Alcotest.(check bool) "roughly halving" true
    (let ratio = float_of_int h.(10) /. float_of_int h.(6) in
     ratio > 0.4 && ratio < 0.65);
  Alcotest.(check bool) "throughput degrades" true (r.Experiments.Fig8.ratio < 0.9)

(* --- ablation tables render with content --- *)

let test_ablation_tables_render () =
  let hops = Experiments.Ablations.policy_hops_table () in
  List.iter
    (fun affix -> Alcotest.(check bool) affix true (contains ~affix hops))
    [ "net15"; "rnp28"; "nip"; "hp"; "P(del)" ];
  let ids = Experiments.Ablations.ids_table () in
  List.iter
    (fun affix -> Alcotest.(check bool) affix true (contains ~affix ids))
    [ "primes-ascending"; "prime-powers"; "ok" ];
  let budget = Experiments.Ablations.budget_table () in
  Alcotest.(check bool) "budget rows" true (contains ~affix:"43" budget)

let test_budget_ablation_monotone_delivery () =
  (* more protection bits must never hurt exact delivery probability *)
  let sc = Topo.Nets.net15 in
  let g = sc.Topo.Nets.graph in
  let fc = List.nth sc.Topo.Nets.failures 2 in
  let base = Kar.Controller.scenario_plan sc Kar.Controller.Unprotected in
  let dest = Topo.Graph.node_of_label g 29 in
  let members =
    Kar.Protection.off_path_members g
      ~path:(List.map (Topo.Graph.node_of_label g) sc.Topo.Nets.primary)
      ~radius:max_int
  in
  let deliveries =
    List.map
      (fun bits ->
        let plan, _ =
          Kar.Protection.select_within_budget g ~plan:base ~dest ~members ~bits
        in
        (Kar.Markov.analyze g ~plan ~policy:Kar.Policy.Not_input_port
           ~failed:[ fc.Topo.Nets.link ] ~src:sc.Topo.Nets.ingress
           ~dst:sc.Topo.Nets.egress)
          .Kar.Markov.p_delivered)
      [ 15; 43; 128 ]
  in
  match deliveries with
  | [ a; b; c ] ->
    Alcotest.(check bool) "15 <= 43" true (a <= b +. 1e-9);
    Alcotest.(check bool) "43 <= 128" true (b <= c +. 1e-9)
  | _ -> Alcotest.fail "three budgets"

(* --- scaling / multipath / congestion --- *)

let test_scaling_monotone_bits () =
  let rows = Experiments.Scaling.run () in
  Alcotest.(check int) "five sizes" 5 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "unprotected <= radius1" true
        (r.Experiments.Scaling.bits_unprotected <= r.Experiments.Scaling.bits_radius1);
      Alcotest.(check bool) "radius1 <= full" true
        (r.Experiments.Scaling.bits_radius1 <= r.Experiments.Scaling.bits_full);
      Alcotest.(check bool) "fits flag consistent" true
        (r.Experiments.Scaling.fits_header
         = (r.Experiments.Scaling.bits_full <= Wire.Header.max_route_bits)))
    rows

let test_congestion_shape () =
  let profile =
    { Experiments.Profile.quick with Experiments.Profile.iperf_duration_s = 1.5 }
  in
  let points = Experiments.Congestion.run ~profile () in
  Alcotest.(check int) "six points" 6 (List.length points);
  (* without failure, all policies behave identically (no deflection) *)
  let healthy =
    List.filter (fun p -> not p.Experiments.Congestion.failed) points
  in
  (match healthy with
   | first :: rest ->
     List.iter
       (fun p ->
         Alcotest.(check (float 0.5)) "identical healthy baseline"
           first.Experiments.Congestion.primary_mbps
           p.Experiments.Congestion.primary_mbps)
       rest
   | [] -> Alcotest.fail "no healthy points");
  (* both flows share the egress: each gets roughly half of 200 Mb/s *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "fair share" true
        (p.Experiments.Congestion.primary_mbps > 60.0
         && p.Experiments.Congestion.primary_mbps < 140.0))
    healthy

(* --- random-topology agreement of the exact chain and Monte Carlo --- *)

let test_markov_walk_random_topologies () =
  (* generated graph, generated plan, one failed on-path link: the two
     analyses must agree within Monte-Carlo noise *)
  List.iter
    (fun seed ->
      let base = Topo.Gen.gnp ~n:12 ~p:0.3 ~seed in
      let g = Kar.Ids.assign base Kar.Ids.Primes_ascending in
      let cores = Topo.Graph.core_nodes g in
      let src_core = List.nth cores (seed mod List.length cores) in
      let dist, _ = Topo.Paths.bfs g src_core in
      let dst_core =
        List.fold_left
          (fun best v -> if dist.(v) > dist.(best) then v else best)
          src_core cores
      in
      if dst_core <> src_core then begin
        let g, hosts = Topo.Gen.with_edge_hosts g [ src_core; dst_core ] in
        let src, dst =
          match hosts with [ a; b ] -> (a, b) | _ -> assert false
        in
        let plan = Kar.Controller.route g ~src ~dst ~protection:[] in
        let failed =
          match Topo.Paths.path_links g plan.Kar.Route.core_path with
          | l :: _ -> [ l ]
          | [] -> []
        in
        let exact =
          Kar.Markov.analyze g ~plan ~policy:Kar.Policy.Not_input_port ~failed
            ~src ~dst
        in
        let mc =
          Kar.Walk.run g ~plan ~policy:Kar.Policy.Not_input_port ~failed ~src
            ~dst ~trials:8000 ~seed:(seed * 7) ()
        in
        Alcotest.(check (float 0.03))
          (Printf.sprintf "seed %d delivery" seed)
          exact.Kar.Markov.p_delivered mc.Kar.Walk.p_delivery
      end)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* --- a fast end-to-end TCP smoke of fig4's key contrast --- *)

let test_fig4_contrast_none_vs_nip () =
  let sc = Topo.Nets.net15 in
  let fc = List.nth sc.Topo.Nets.failures 1 in
  let run policy =
    Workload.Runner.timeline sc
      {
        Workload.Runner.default_timeline with
        policy = Workload.Runner.Kar policy;
        level = Kar.Controller.Full;
        failure = Some fc;
        pre_s = 1.0;
        fail_s = 1.5;
        post_s = 0.5;
      }
  in
  let none = run Kar.Policy.No_deflection in
  let nip = run Kar.Policy.Not_input_port in
  Alcotest.(check bool) "no deflection stalls" true
    (none.Workload.Runner.mean_fail < 5.0);
  Alcotest.(check bool) "NIP keeps most of the goodput" true
    (nip.Workload.Runner.mean_fail > 100.0);
  Alcotest.(check int) "no deflections without failures... on the none plane" 0
    none.Workload.Runner.net_deflections;
  Alcotest.(check bool) "NIP deflects" true (nip.Workload.Runner.net_deflections > 0)

(* --- the experiment registry and its CLI typo suggestions --- *)

let test_registry_resolution () =
  let module R = Experiments.Registry in
  (match R.find "verify" with
  | `Entry e -> Alcotest.(check string) "verify is an entry" "verify" e.R.id
  | `Group _ | `Unknown -> Alcotest.fail "verify must resolve to an entry");
  (match R.find "verification" with
  | `Group g ->
    Alcotest.(check bool) "verification group carries verify" true
      (List.exists (fun (e : R.entry) -> e.R.id = "verify") g.R.entries);
    Alcotest.(check bool) "verification group carries invariants" true
      (List.exists (fun (e : R.entry) -> e.R.id = "invariants") g.R.entries)
  | `Entry _ | `Unknown ->
    Alcotest.fail "verification must resolve to a group");
  (match R.find "no-such-experiment" with
  | `Unknown -> ()
  | `Entry _ | `Group _ -> Alcotest.fail "nonsense name resolved");
  Alcotest.(check bool) "aliases are runnable names" true
    (List.mem "verification" R.names && List.mem "beyond" R.names);
  (* every id and alias resolves, and ids stay unique *)
  List.iter
    (fun n ->
      match R.find n with
      | `Unknown -> Alcotest.failf "registered name %s does not resolve" n
      | `Entry _ | `Group _ -> ())
    R.names;
  let ids = List.map (fun (e : R.entry) -> e.R.id) R.all in
  Alcotest.(check int) "ids unique"
    (List.length ids)
    (List.length (List.sort_uniq compare ids))

(* Near-misses on group aliases must suggest the alias — the suggestion
   search covers ids AND aliases (kar_experiments's unknown-id hint). *)
let test_registry_suggestions () =
  let module R = Experiments.Registry in
  List.iter
    (fun (typo, expect) ->
      let name, d = R.nearest typo in
      Alcotest.(check string)
        (Printf.sprintf "suggestion for %S" typo)
        expect name;
      Alcotest.(check bool)
        (Printf.sprintf "suggestion for %S within CLI threshold" typo)
        true
        (d <= max 2 (String.length typo / 2)))
    [
      ("verfy", "verify");
      ("verificaton", "verification");
      ("abblations", "ablations");
      ("invarients", "invariants");
      ("tabels", "tables");
    ];
  Alcotest.(check int) "edit distance kitten/sitting" 3
    (R.edit_distance "kitten" "sitting");
  Alcotest.(check int) "edit distance identity" 0
    (R.edit_distance "verify" "verify")

let () =
  Alcotest.run "experiments"
    [
      ( "fig1",
        [ Alcotest.test_case "worked example exact" `Quick test_fig1_values ] );
      ( "table1",
        [
          Alcotest.test_case "matches the paper" `Quick test_table1_matches_paper;
          Alcotest.test_case "rendering" `Quick test_table1_rendering;
        ] );
      ( "table2",
        [
          Alcotest.test_case "matrix as published" `Quick test_table2_matrix_matches_paper;
          Alcotest.test_case "measured evidence" `Slow test_table2_evidence;
        ] );
      ( "analysis narratives",
        [
          Alcotest.test_case "fig7 exact narrative" `Quick test_fig7_analysis_narrative;
          Alcotest.test_case "fig8 geometric loop" `Slow test_fig8_geometric_loop;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "tables render" `Slow test_ablation_tables_render;
          Alcotest.test_case "budget monotone delivery" `Quick
            test_budget_ablation_monotone_delivery;
        ] );
      ( "beyond the paper",
        [
          Alcotest.test_case "multi-failure certainty" `Slow
            (fun () ->
              let rows = Experiments.Multifailure.run ~samples:15 ~seed:5 () in
              List.iter
                (fun r ->
                  Alcotest.(check bool) "samples found" true
                    (r.Experiments.Multifailure.samples > 0);
                  (* on connected failure sets, NIP + re-encode always
                     delivers *)
                  Alcotest.(check (float 1e-6)) "certain delivery" 1.0
                    r.Experiments.Multifailure.kar_mean_delivery;
                  Alcotest.(check bool) "direct <= total" true
                    (r.Experiments.Multifailure.kar_mean_direct <= 1.0 +. 1e-9))
                rows);
          Alcotest.test_case "scaling bits monotone" `Slow test_scaling_monotone_bits;
          Alcotest.test_case "bystander congestion shape" `Slow test_congestion_shape;
          Alcotest.test_case "markov = walk on random topologies" `Slow
            test_markov_walk_random_topologies;
        ] );
      ( "tcp integration",
        [
          Alcotest.test_case "fig4 contrast none vs nip" `Slow
            test_fig4_contrast_none_vs_nip;
        ] );
      ( "registry",
        [
          Alcotest.test_case "names resolve" `Quick test_registry_resolution;
          Alcotest.test_case "typo suggestions cover group aliases" `Quick
            test_registry_suggestions;
        ] );
    ]
