(* Tests for the Residue Number System encoding — the heart of KAR.

   Anchored on the paper's worked examples (R = 44 and R = 660), plus
   randomized CRT properties: roundtrip, uniqueness below the modulus
   product, order independence of the residue list (the commutativity that
   makes driven-deflection protection possible), incremental extension, and
   agreement between the direct CRT summation and Garner's algorithm. *)

module Z = Bignum.Z

let z = Alcotest.testable Z.pp Z.equal

let residue modulus value = { Rns.modulus; value }

(* --- unit: the paper's example --- *)

let test_paper_primary () =
  let r, m = Rns.encode_exn [ residue 4 0; residue 7 2; residue 11 0 ] in
  Alcotest.check z "R" (Z.of_int 44) r;
  Alcotest.check z "M" (Z.of_int 308) m

let test_paper_protected () =
  let r, m =
    Rns.encode_exn [ residue 4 0; residue 7 2; residue 11 0; residue 5 0 ]
  in
  Alcotest.check z "R" (Z.of_int 660) r;
  Alcotest.check z "M" (Z.of_int 1540) m

let test_paper_decode () =
  Alcotest.(check (list int))
    "ports of 660" [ 0; 2; 0; 0 ]
    (Rns.decode (Z.of_int 660) [ 4; 7; 11; 5 ]);
  Alcotest.(check (list int))
    "ports of 44" [ 0; 2; 0 ]
    (Rns.decode (Z.of_int 44) [ 4; 7; 11 ])

let test_paper_extend () =
  (* extending 44 (mod 308) with SW5 port 0 must give 660 (mod 1540) *)
  match Rns.extend ~route_id:(Z.of_int 44) ~modulus:(Z.of_int 308) [ residue 5 0 ] with
  | Ok (r, m) ->
    Alcotest.check z "R" (Z.of_int 660) r;
    Alcotest.check z "M" (Z.of_int 1540) m
  | Error e -> Alcotest.fail (Rns.error_to_string e)

(* --- unit: error paths --- *)

let test_not_coprime () =
  match Rns.encode [ residue 4 1; residue 6 1 ] with
  | Error (Rns.Not_pairwise_coprime (a, b)) ->
    Alcotest.(check bool) "pair" true ((a, b) = (4, 6) || (a, b) = (6, 4))
  | Error e -> Alcotest.failf "wrong error: %s" (Rns.error_to_string e)
  | Ok _ -> Alcotest.fail "expected failure"

let test_residue_out_of_range () =
  match Rns.encode [ residue 5 5 ] with
  | Error (Rns.Residue_out_of_range _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Rns.error_to_string e)
  | Ok _ -> Alcotest.fail "expected failure"

let test_empty () =
  match Rns.encode [] with
  | Error Rns.Empty_system -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Rns.error_to_string e)
  | Ok _ -> Alcotest.fail "expected failure"

let test_nonpositive () =
  match Rns.encode [ residue 1 0 ] with
  | Error (Rns.Nonpositive_modulus 1) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Rns.error_to_string e)
  | Ok _ -> Alcotest.fail "expected failure"

let test_extend_conflict () =
  match Rns.extend ~route_id:(Z.of_int 44) ~modulus:(Z.of_int 308) [ residue 14 3 ] with
  | Error (Rns.Modulus_conflict 14) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Rns.error_to_string e)
  | Ok _ -> Alcotest.fail "expected failure (14 shares factor 7 with 308)"

let test_coprime () =
  Alcotest.(check bool) "4,7" true (Rns.coprime 4 7);
  Alcotest.(check bool) "4,6" false (Rns.coprime 4 6);
  Alcotest.(check bool) "1,n" true (Rns.coprime 1 99);
  Alcotest.(check bool) "9,10" true (Rns.coprime 9 10)

let test_bit_length_bound () =
  Alcotest.(check int) "M=308" 9 (Rns.bit_length_bound (Z.of_int 308));
  Alcotest.(check int) "M=1540" 11 (Rns.bit_length_bound (Z.of_int 1540));
  Alcotest.(check int) "M=1" 0 (Rns.bit_length_bound Z.one);
  Alcotest.(check int) "M=2" 1 (Rns.bit_length_bound Z.two);
  (* The route ID can equal M-1 itself, so for M = 2^20 + 1 the field needs
     21 bits; the paper's literal ceil(log2(M-1)) would say 20 only because
     the formula has a corner case at exact powers of two. *)
  Alcotest.(check int) "M=2^20+1" 21 (Rns.bit_length_bound (Z.add (Z.pow Z.two 20) Z.one))

(* --- generators: random pairwise-coprime residue systems --- *)

let primes_pool =
  [| 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71; 73 |]

let gen_system =
  QCheck2.Gen.(
    let* n = 1 -- 8 in
    let* start = 0 -- (Array.length primes_pool - 9) in
    let moduli = Array.to_list (Array.sub primes_pool start n) in
    let* values = flatten_l (List.map (fun m -> 0 -- (m - 1)) moduli) in
    pure (List.map2 (fun modulus value -> { Rns.modulus; value }) moduli values))

let qtest ?(count = 300) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let prop_roundtrip =
  qtest "decode (encode rs) recovers every residue" gen_system (fun rs ->
      let r, _ = Rns.encode_exn rs in
      List.for_all (fun { Rns.modulus; value } -> Rns.port r modulus = value) rs)

let prop_range =
  qtest "0 <= R < M" gen_system (fun rs ->
      let r, m = Rns.encode_exn rs in
      Z.sign r >= 0 && Z.compare r m < 0)

let prop_unique =
  qtest "R is the unique solution below M" gen_system (fun rs ->
      let r, m = Rns.encode_exn rs in
      let other = Z.erem (Z.add r Z.one) m in
      Z.equal other r
      || not
           (List.for_all
              (fun { Rns.modulus; value } -> Rns.port other modulus = value)
              rs))

let prop_order_independent =
  qtest "residue order does not change R (Eq. 4 commutativity)" gen_system
    (fun rs ->
      let r1, m1 = Rns.encode_exn rs in
      let r2, m2 = Rns.encode_exn (List.rev rs) in
      Z.equal r1 r2 && Z.equal m1 m2)

let prop_garner_agrees =
  qtest "Garner's algorithm = direct CRT" gen_system (fun rs ->
      match (Rns.encode rs, Rns.encode_garner rs) with
      | Ok (r1, m1), Ok (r2, m2) -> Z.equal r1 r2 && Z.equal m1 m2
      | _ -> false)

let prop_extend_incremental =
  qtest "extend = re-encode from scratch" gen_system (fun rs ->
      match rs with
      | [] | [ _ ] -> true
      | first :: rest ->
        let r0, m0 = Rns.encode_exn [ first ] in
        (match Rns.extend ~route_id:r0 ~modulus:m0 rest with
         | Error _ -> false
         | Ok (r, m) ->
           let r', m' = Rns.encode_exn rs in
           Z.equal r r' && Z.equal m m'))

let prop_mixed_radix_reconstructs =
  qtest "mixed-radix digits rebuild R" gen_system (fun rs ->
      match Rns.mixed_radix rs with
      | Error _ -> false
      | Ok digits ->
        let r, _ = Rns.encode_exn rs in
        let value, _ =
          List.fold_left2
            (fun (acc, prod) d { Rns.modulus; _ } ->
              (Z.add acc (Z.mul d prod), Z.mul prod (Z.of_int modulus)))
            (Z.zero, Z.one) digits rs
        in
        Z.equal value r)

let prop_pairwise_coprime_check =
  qtest "pairwise_coprime accepts prime subsets"
    QCheck2.Gen.(1 -- 10)
    (fun n ->
      let ids = Array.to_list (Array.sub primes_pool 0 n) in
      Rns.pairwise_coprime ids = Ok ())

let prop_modulus_product =
  qtest "modulus_product = fold of multiplication" gen_system (fun rs ->
      let ids = List.map (fun r -> r.Rns.modulus) rs in
      Z.equal (Rns.modulus_product ids)
        (List.fold_left (fun acc m -> Z.mul acc (Z.of_int m)) Z.one ids))

let test_single_residue () =
  let r, m = Rns.encode_exn [ residue 7 3 ] in
  Alcotest.check z "R" (Z.of_int 3) r;
  Alcotest.check z "M" (Z.of_int 7) m

let test_modulus_two () =
  let r, _ = Rns.encode_exn [ residue 2 1; residue 3 0 ] in
  Alcotest.(check int) "port at 2" 1 (Rns.port r 2);
  Alcotest.(check int) "port at 3" 0 (Rns.port r 3)

let test_extend_empty () =
  match Rns.extend ~route_id:(Z.of_int 44) ~modulus:(Z.of_int 308) [] with
  | Error Rns.Empty_system -> ()
  | Error e -> Alcotest.failf "wrong error %s" (Rns.error_to_string e)
  | Ok _ -> Alcotest.fail "empty extension should be rejected"

let test_port_invalid_switch () =
  match Rns.port (Z.of_int 5) 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "switch id 0 accepted"

(* The single validated entry point behind both port functions: switch ID 1
   is degenerate but legal (everything is 0 mod 1); non-positive IDs raise
   through the same check. *)
let test_port_switch_one () =
  Alcotest.(check int) "R mod 1" 0 (Rns.port (Z.of_int 660) 1);
  Alcotest.(check int) "0 mod 1" 0 (Rns.port Z.zero 1)

let test_port_negative_switch () =
  List.iter
    (fun f ->
      match f (Z.of_int 5) (-3) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "negative switch id accepted")
    [ Rns.port; Rns.port_fast ]

let prop_port_fast_agrees =
  qtest "port_fast = port over random systems" gen_system (fun rs ->
      let r, _ = Rns.encode_exn rs in
      List.for_all
        (fun { Rns.modulus; _ } ->
          Rns.port_fast r modulus = Rns.port r modulus)
        rs)

let () =
  Alcotest.run "rns"
    [
      ( "paper",
        [
          Alcotest.test_case "primary route ID = 44" `Quick test_paper_primary;
          Alcotest.test_case "protected route ID = 660" `Quick test_paper_protected;
          Alcotest.test_case "decode paper values" `Quick test_paper_decode;
          Alcotest.test_case "extend 44 -> 660" `Quick test_paper_extend;
        ] );
      ( "errors",
        [
          Alcotest.test_case "not coprime" `Quick test_not_coprime;
          Alcotest.test_case "residue out of range" `Quick test_residue_out_of_range;
          Alcotest.test_case "empty system" `Quick test_empty;
          Alcotest.test_case "nonpositive modulus" `Quick test_nonpositive;
          Alcotest.test_case "extend modulus conflict" `Quick test_extend_conflict;
          Alcotest.test_case "coprime predicate" `Quick test_coprime;
          Alcotest.test_case "bit length bound (Eq. 9)" `Quick test_bit_length_bound;
          Alcotest.test_case "single residue" `Quick test_single_residue;
          Alcotest.test_case "modulus two" `Quick test_modulus_two;
          Alcotest.test_case "extend with nothing" `Quick test_extend_empty;
          Alcotest.test_case "port at invalid switch" `Quick test_port_invalid_switch;
          Alcotest.test_case "port at switch 1" `Quick test_port_switch_one;
          Alcotest.test_case "port at negative switch" `Quick test_port_negative_switch;
        ] );
      ( "properties",
        [
          prop_roundtrip; prop_range; prop_unique; prop_order_independent;
          prop_garner_agrees; prop_extend_incremental; prop_mixed_radix_reconstructs;
          prop_pairwise_coprime_check; prop_modulus_product;
          prop_port_fast_agrees;
        ] );
    ]
