(* Tests for the comparison baselines: stateful fast failover (primary +
   precomputed backup per destination) and controller-notification
   rerouting. *)

module Engine = Netsim.Engine
module Net = Netsim.Net
module Graph = Topo.Graph
module Nets = Topo.Nets

let test_table_size () =
  Alcotest.(check int) "net15 has 3 destinations" 3
    (Baselines.Fast_failover.table_size Nets.net15.Nets.graph)

let test_hops_healthy () =
  let sc = Nets.net15 in
  match
    Baselines.Fast_failover.hops_between sc.Nets.graph sc.Nets.ingress
      sc.Nets.egress ~failed:[]
  with
  | Some h -> Alcotest.(check int) "follows shortest (4 switches)" 4 h
  | None -> Alcotest.fail "healthy network must route"

let test_hops_single_failure () =
  let sc = Nets.net15 in
  List.iter
    (fun fc ->
      match
        Baselines.Fast_failover.hops_between sc.Nets.graph sc.Nets.ingress
          sc.Nets.egress ~failed:[ fc.Nets.link ]
      with
      | Some h ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: detour longer or equal" fc.Nets.name)
          true (h >= 4)
      | None ->
        Alcotest.failf "%s: single failure must be survivable" fc.Nets.name)
    sc.Nets.failures

let test_simulated_failover_delivers () =
  let sc = Nets.net15 in
  let engine = Engine.create () in
  let net = Net.create ~graph:sc.Nets.graph ~engine () in
  Baselines.Fast_failover.install net;
  let delivered = ref 0 in
  Netsim.Karnet.install_edge net sc.Nets.egress ~reencode:(fun _ -> None)
    ~receive:(fun _ _ -> incr delivered)
    ();
  Netsim.Karnet.install_edge net sc.Nets.ingress ~reencode:(fun _ -> None)
    ~receive:(fun _ _ -> ())
    ();
  Net.fail_link net (List.nth sc.Nets.failures 1).Nets.link;
  for _ = 1 to 10 do
    let p =
      Netsim.Packet.make ~uid:(Net.fresh_uid net) ~src:sc.Nets.ingress
        ~dst:sc.Nets.egress ~size_bytes:1000 ~route_id:Bignum.Z.zero ~born:0.0
        Netsim.Packet.Raw
    in
    Net.inject net ~at:sc.Nets.ingress p
  done;
  Engine.run engine;
  Alcotest.(check int) "all delivered around the failure" 10 !delivered

let test_failover_is_stateful () =
  (* the scheme cannot forward to a destination absent from its table *)
  let sc = Nets.net15 in
  let engine = Engine.create () in
  let net = Net.create ~graph:sc.Nets.graph ~engine () in
  Baselines.Fast_failover.install net;
  (* address a packet to a core switch (not an edge): no table entry *)
  let p =
    Netsim.Packet.make ~uid:0 ~src:sc.Nets.ingress
      ~dst:(Graph.node_of_label sc.Nets.graph 53)
      ~size_bytes:1000 ~route_id:Bignum.Z.zero ~born:0.0 Netsim.Packet.Raw
  in
  Netsim.Karnet.install_edge net sc.Nets.ingress ~reencode:(fun _ -> None)
    ~receive:(fun _ _ -> ())
    ();
  Net.inject net ~at:sc.Nets.ingress p;
  Engine.run engine;
  Alcotest.(check int) "dropped for want of state" 1
    (Net.stats net).Net.dropped_no_route

let test_reroute_baseline_recovers_after_notification () =
  (* with no deflection, traffic dies at the failure and resumes once the
     controller installs the detour after its notification delay *)
  let sc = Nets.net15 in
  let fc = List.nth sc.Nets.failures 1 in
  let config =
    {
      Workload.Runner.default_timeline with
      policy = Workload.Runner.Kar Kar.Policy.No_deflection;
      level = Kar.Controller.Unprotected;
      failure = Some fc;
      pre_s = 1.0;
      fail_s = 2.0;
      post_s = 1.0;
      reaction = Workload.Runner.Controller_reroute 0.3;
    }
  in
  let r = Workload.Runner.timeline sc config in
  Alcotest.(check bool) "healthy before" true (r.Workload.Runner.mean_pre > 150.0);
  (* after the 0.3 s notification the detour carries traffic again *)
  Alcotest.(check bool)
    (Printf.sprintf "recovers during failure window (%.1f)" r.Workload.Runner.mean_fail)
    true
    (r.Workload.Runner.mean_fail > 50.0);
  Alcotest.(check bool) "back to normal after repair" true
    (r.Workload.Runner.mean_post > 150.0)

let test_reroute_slower_than_deflection () =
  (* the loss window costs the reroute baseline throughput that KAR's NIP
     does not lose — the paper's core claim *)
  let sc = Nets.net15 in
  let fc = List.nth sc.Nets.failures 1 in
  let run policy reaction =
    let config =
      {
        Workload.Runner.default_timeline with
        policy;
        level = Kar.Controller.Full;
        failure = Some fc;
        pre_s = 1.0;
        fail_s = 2.0;
        post_s = 1.0;
        reaction;
      }
    in
    (Workload.Runner.timeline sc config).Workload.Runner.mean_fail
  in
  let kar =
    run (Workload.Runner.Kar Kar.Policy.Not_input_port) Workload.Runner.Deflection
  in
  let reroute =
    run (Workload.Runner.Kar Kar.Policy.No_deflection)
      (Workload.Runner.Controller_reroute 0.5)
  in
  Alcotest.(check bool)
    (Printf.sprintf "KAR (%.0f) beats reroute (%.0f)" kar reroute)
    true (kar > reroute)

let test_edge_failover_plan_selection () =
  let sc = Nets.net15 in
  let g = sc.Nets.graph in
  let plans =
    Kar.Controller.disjoint_plans g ~src:sc.Nets.ingress ~dst:sc.Nets.egress ~k:2
  in
  match plans with
  | primary :: _ ->
    let on_primary = Topo.Paths.path_links g primary.Kar.Route.core_path in
    List.iter
      (fun link ->
        match Baselines.Edge_failover.plan_avoiding g plans link with
        | Some p ->
          Alcotest.(check bool) "avoids the link" false
            (List.mem link (Topo.Paths.path_links g p.Kar.Route.core_path))
        | None -> Alcotest.fail "a disjoint backup must avoid the link")
      on_primary
  | [] -> Alcotest.fail "plans expected"

let test_edge_failover_recovers_fast () =
  let sc = Nets.net15 in
  let fc = List.nth sc.Nets.failures 1 in
  let r =
    Workload.Runner.timeline sc
      {
        Workload.Runner.default_timeline with
        policy = Workload.Runner.Kar Kar.Policy.No_deflection;
        level = Kar.Controller.Unprotected;
        failure = Some fc;
        pre_s = 1.0;
        fail_s = 2.0;
        post_s = 1.0;
        reaction = Workload.Runner.Ingress_failover 0.01;
      }
  in
  Alcotest.(check bool)
    (Printf.sprintf "fast recovery (%.1f during failure)" r.Workload.Runner.mean_fail)
    true
    (r.Workload.Runner.mean_fail > 150.0);
  Alcotest.(check bool) "post-repair fine" true (r.Workload.Runner.mean_post > 150.0)

let () =
  Alcotest.run "baselines"
    [
      ( "fast failover",
        [
          Alcotest.test_case "table size" `Quick test_table_size;
          Alcotest.test_case "healthy hops" `Quick test_hops_healthy;
          Alcotest.test_case "single-failure detours" `Quick test_hops_single_failure;
          Alcotest.test_case "simulated failover delivers" `Quick
            test_simulated_failover_delivers;
          Alcotest.test_case "statefulness bites" `Quick test_failover_is_stateful;
        ] );
      ( "edge failover",
        [
          Alcotest.test_case "backup avoids failed link" `Quick
            test_edge_failover_plan_selection;
          Alcotest.test_case "recovers within the reaction delay" `Slow
            test_edge_failover_recovers_fast;
        ] );
      ( "controller reroute",
        [
          Alcotest.test_case "recovers after notification" `Slow
            test_reroute_baseline_recovers_after_notification;
          Alcotest.test_case "slower than deflection" `Slow
            test_reroute_slower_than_deflection;
        ] );
    ]
